//! End-to-end corpus scenarios beyond the per-fault validation suite:
//! cross-fault comparisons, the Figure 5 ablation at corpus scale, and
//! determinism of the whole pipeline.

use omislice::{LocateConfig, UserOracle, VerifierMode};
use omislice_corpus::all_benchmarks;

#[test]
fn verify_all_uses_only_adds_work_and_edges() {
    // Algorithm 2 lines 12-18 at corpus scale: enabling the extra
    // verifications never loses the root cause and never removes edges.
    for b in all_benchmarks() {
        for fault in &b.faults {
            let with = b
                .session(fault)
                .unwrap()
                .locate(&LocateConfig::default())
                .unwrap();
            let without = b
                .session(fault)
                .unwrap()
                .locate(&LocateConfig {
                    verify_all_uses: false,
                    ..LocateConfig::default()
                })
                .unwrap();
            assert!(with.found && without.found, "{} {}", b.name, fault.id);
            assert!(
                with.expanded_edges >= without.expanded_edges,
                "{} {}",
                b.name,
                fault.id
            );
            assert!(
                with.verifications >= without.verifications,
                "{} {}",
                b.name,
                fault.id
            );
        }
    }
}

#[test]
fn all_verifier_modes_locate_every_fault() {
    for b in all_benchmarks() {
        for fault in &b.faults {
            for mode in [
                VerifierMode::Edge,
                VerifierMode::Path,
                VerifierMode::ValueChange,
            ] {
                let out = b
                    .session(fault)
                    .unwrap()
                    .locate(&LocateConfig {
                        mode,
                        ..LocateConfig::default()
                    })
                    .unwrap();
                assert!(out.found, "{} {} under {mode:?}", b.name, fault.id);
            }
        }
    }
}

#[test]
fn union_graph_pd_works_when_the_suite_covers_the_definition() {
    // The §4 prototype configuration: union-graph-based potential
    // dependences. flex V3-F10's skipped definition (`kind = base[cl]`)
    // executes for letter tokens in every profiled run, so the union
    // graph has the edge and the locator succeeds without extra cost.
    use omislice::omislice_analysis::ProgramAnalysis;
    use omislice::omislice_interp::{run_traced, RunConfig};
    use omislice::omislice_slicing::UnionGraph;

    let benchmarks = all_benchmarks();
    let flex = benchmarks.iter().find(|b| b.name == "flex").unwrap();
    let fault = flex.fault("V3-F10").unwrap();
    let prepared = flex.prepare(fault).unwrap();
    let analysis = ProgramAnalysis::build(&prepared.faulty);
    let mut union = UnionGraph::new();
    for inputs in std::iter::once(&fault.failing_input).chain(&fault.passing_inputs) {
        let cfg = RunConfig::with_inputs(inputs.clone());
        union.add_trace(&run_traced(&prepared.faulty, &analysis, &cfg).trace);
    }
    let baseline = flex
        .session(fault)
        .unwrap()
        .locate(&LocateConfig::default())
        .unwrap();
    let with_union = flex
        .session(fault)
        .unwrap()
        .locate(&LocateConfig {
            union_graph: Some(union),
            ..LocateConfig::default()
        })
        .unwrap();
    assert!(baseline.found && with_union.found);
    assert!(with_union.verifications <= baseline.verifications);
}

#[test]
fn union_graph_pd_misses_uncovered_omissions() {
    // The coverage caveat: gzip V2-F3's skipped definition never executes
    // in any faulty run, so the union graph offers no candidate and the
    // locator cannot expand — the documented trade-off vs static PD.
    use omislice::omislice_slicing::UnionGraph;

    let benchmarks = all_benchmarks();
    let gzip = benchmarks.iter().find(|b| b.name == "gzip").unwrap();
    let fault = gzip.fault("V2-F3").unwrap();
    let session = gzip.session(fault).unwrap();
    let mut union = UnionGraph::new();
    union.add_trace(session.trace());
    let outcome = session
        .locate(&LocateConfig {
            union_graph: Some(union),
            ..LocateConfig::default()
        })
        .unwrap();
    assert!(!outcome.found);
    assert_eq!(outcome.expanded_edges, 0);
}

#[test]
fn interprocedural_pd_mode_locates_every_fault() {
    // The opt-in interprocedural potential-dependence reach (callee
    // guards propagate through the call graph) must never lose a root
    // cause; it may verify more candidates.
    use omislice::omislice_analysis::PdMode;
    for b in all_benchmarks() {
        for fault in &b.faults {
            let prepared = b.prepare(fault).unwrap();
            let session = omislice::DebugSession::builder(&prepared.faulty_src)
                .reference(b.fixed_src)
                .failing_input(fault.failing_input.clone())
                .profile_inputs(fault.passing_inputs.iter().cloned())
                .root_cause_stmts(prepared.roots.iter().copied())
                .pd_mode(PdMode::InterproceduralGuards)
                .build()
                .unwrap();
            let outcome = session.locate(&LocateConfig::default()).unwrap();
            assert!(outcome.found, "{} {}", b.name, fault.id);
        }
    }
}

#[test]
fn locate_is_deterministic() {
    let benchmarks = all_benchmarks();
    let gzip = benchmarks.iter().find(|b| b.name == "gzip").unwrap();
    let fault = gzip.fault("V2-F3").unwrap();
    let a = gzip
        .session(fault)
        .unwrap()
        .locate(&LocateConfig::default())
        .unwrap();
    let b = gzip
        .session(fault)
        .unwrap()
        .locate(&LocateConfig::default())
        .unwrap();
    assert_eq!(a.iterations, b.iterations);
    assert_eq!(a.verifications, b.verifications);
    assert_eq!(a.expanded_edges, b.expanded_edges);
    assert_eq!(a.ips.insts(), b.ips.insts());
    assert_eq!(a.os, b.os);
}

#[test]
fn ips_stays_close_to_os() {
    // Table 3's "nearly optimal slices" claim: IPS within a small factor
    // of the hand-identifiable failure chain OS.
    for b in all_benchmarks() {
        for fault in &b.faults {
            let session = b.session(fault).unwrap();
            let out = session.locate(&LocateConfig::default()).unwrap();
            let os = out.os_slice(session.trace()).expect("found implies chain");
            assert!(
                out.ips.dynamic_size() <= os.dynamic_size() * 4 + 8,
                "{} {}: IPS {} vs OS {}",
                b.name,
                fault.id,
                out.ips.dynamic_size(),
                os.dynamic_size()
            );
        }
    }
}

#[test]
fn reference_runs_classify_full_output_prefixes() {
    // The oracle marks exactly the prefix of agreeing outputs as correct.
    for b in all_benchmarks() {
        for fault in &b.faults {
            let session = b.session(fault).unwrap();
            let trace = session.trace();
            let class = session.oracle().classify_outputs(trace).unwrap();
            let expected = session.oracle().reference().output_values();
            for (i, out) in trace.outputs().iter().enumerate() {
                if out.inst == class.wrong {
                    assert_ne!(Some(&out.value), expected.get(i), "{} {}", b.name, fault.id);
                    break;
                }
                assert_eq!(Some(&out.value), expected.get(i));
                assert!(class.correct.contains(&out.inst));
            }
        }
    }
}
