//! Differential properties pinning the columnar trace engine to its
//! row-major oracle.
//!
//! `run_traced` produces traces through the pipelined recorder: events
//! stream through a bounded queue into a builder thread that packs the
//! columns and pre-builds the query index concurrently with the
//! interpreter. [`Trace::from_parts`] is the legacy inline constructor,
//! kept precisely as the oracle for these tests: it re-packs the same
//! events on the calling thread and builds every index lazily. For any
//! generated program × input vector the two must be observationally
//! identical — same events, same per-statement postings, same
//! control-dependence (Euler-tour) answers, same relevant slices at any
//! worker count — and the on-disk `omitrace/v1` round trip must be the
//! identity.

mod generator;

use generator::program_strategy;
use omislice::omislice_slicing::relevant_slice_jobs;
use omislice::omislice_trace::{decode_trace, encode_trace};
use omislice::prelude::*;
use proptest::prelude::*;

fn compiled(src: &str) -> (Program, ProgramAnalysis) {
    let p = compile(src).unwrap_or_else(|e| panic!("generated program invalid: {e}\n{src}"));
    let a = ProgramAnalysis::build(&p);
    (p, a)
}

/// Rebuilds `trace` through the legacy row-major constructor.
fn oracle_of(trace: &Trace) -> Trace {
    Trace::from_parts(
        trace.events_vec(),
        trace.outputs().to_vec(),
        trace.termination().clone(),
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn recorded_events_match_the_row_major_oracle((src, inputs) in program_strategy()) {
        let (program, analysis) = compiled(&src);
        let run = run_traced(&program, &analysis, &RunConfig::with_inputs(inputs));
        let oracle = oracle_of(&run.trace);
        prop_assert_eq!(run.trace.len(), oracle.len());
        prop_assert_eq!(run.trace.termination(), oracle.termination());
        prop_assert_eq!(run.trace.outputs(), oracle.outputs());
        for inst in run.trace.insts() {
            prop_assert_eq!(
                run.trace.event(inst),
                oracle.event(inst),
                "event {} diverged on:\n{}", inst, src
            );
        }
    }

    #[test]
    fn index_postings_match_the_oracle((src, inputs) in program_strategy()) {
        let (program, analysis) = compiled(&src);
        let run = run_traced(&program, &analysis, &RunConfig::with_inputs(inputs));
        let oracle = oracle_of(&run.trace);
        for s in 0..program.stmt_count() {
            let stmt = StmtId(s);
            prop_assert_eq!(
                run.trace.instances_of(stmt),
                oracle.instances_of(stmt),
                "postings of {} diverged on:\n{}", stmt, src
            );
        }
        for inst in run.trace.insts() {
            let k = run.trace.occurrence_index(inst);
            prop_assert_eq!(k, oracle.occurrence_index(inst));
            let stmt = run.trace.event(inst).stmt;
            prop_assert_eq!(run.trace.nth_instance(stmt, k), Some(inst));
            prop_assert_eq!(oracle.nth_instance(stmt, k), Some(inst));
        }
    }

    #[test]
    fn cd_queries_match_the_oracle((src, inputs) in program_strategy()) {
        let (program, analysis) = compiled(&src);
        let run = run_traced(&program, &analysis, &RunConfig::with_inputs(inputs));
        let oracle = oracle_of(&run.trace);
        // The recorder pre-builds the Euler tour on its builder thread;
        // the oracle derives it lazily. Every ancestor chain must agree.
        for inst in run.trace.insts() {
            prop_assert_eq!(
                run.trace.cd_ancestors(inst),
                oracle.cd_ancestors(inst),
                "cd ancestors of {} diverged on:\n{}", inst, src
            );
        }
        let regions = RegionTree::build(&run.trace);
        let oracle_regions = RegionTree::build(&oracle);
        for inst in run.trace.insts() {
            prop_assert_eq!(regions.parent(inst), oracle_regions.parent(inst));
            prop_assert_eq!(regions.children(inst), oracle_regions.children(inst));
        }
    }

    #[test]
    fn relevant_slices_agree_across_worker_counts((src, inputs) in program_strategy()) {
        let (program, analysis) = compiled(&src);
        let run = run_traced(&program, &analysis, &RunConfig::with_inputs(inputs));
        let Some(last) = run.trace.outputs().last() else { return Ok(()); };
        let oracle = oracle_of(&run.trace);
        let want = relevant_slice_jobs(&oracle, &analysis, last.inst, 1);
        for jobs in [1usize, 2, 4] {
            let got = relevant_slice_jobs(&run.trace, &analysis, last.inst, jobs);
            prop_assert_eq!(
                got.insts(),
                want.insts(),
                "relevant slice (jobs {}) diverged on:\n{}", jobs, src
            );
        }
    }

    #[test]
    fn omitrace_round_trip_is_identity((src, inputs) in program_strategy()) {
        let (program, analysis) = compiled(&src);
        let run = run_traced(&program, &analysis, &RunConfig::with_inputs(inputs));
        let bytes = encode_trace(&run.trace);
        let reloaded = decode_trace(&bytes).expect("freshly encoded trace decodes");
        prop_assert_eq!(run.trace.len(), reloaded.len());
        prop_assert_eq!(run.trace.termination(), reloaded.termination());
        prop_assert_eq!(run.trace.outputs(), reloaded.outputs());
        for inst in run.trace.insts() {
            prop_assert_eq!(run.trace.event(inst), reloaded.event(inst));
        }
        // Encoding is canonical: re-encoding the reload is byte-identical.
        prop_assert_eq!(bytes, encode_trace(&reloaded));
    }
}
