//! Shared structured-program generator for the cross-crate property
//! tests: terminating programs (loops are bounded counters) over a few
//! global scalars, one eight-slot array, and a helper procedure.
//!
//! Included via `mod generator;` by each property-test target
//! ([`pipeline.rs`](./pipeline.rs),
//! [`columnar_equivalence.rs`](./columnar_equivalence.rs)); the file is
//! not a test target itself.

use proptest::prelude::*;

#[derive(Debug, Clone)]
pub enum GenStmt {
    Assign(usize, GenExpr),
    Store(GenExpr, GenExpr),
    Print(GenExpr),
    If(GenExpr, Vec<GenStmt>, Vec<GenStmt>),
    /// Bounded loop: a fresh counter runs to a small constant.
    Loop(u8, Vec<GenStmt>),
    Call(GenExpr),
}

#[derive(Debug, Clone)]
pub enum GenExpr {
    Lit(i8),
    Var(usize),
    Load(Box<GenExpr>),
    Add(Box<GenExpr>, Box<GenExpr>),
    Sub(Box<GenExpr>, Box<GenExpr>),
    Rem(Box<GenExpr>, u8),
    Input,
}

const GLOBALS: [&str; 4] = ["g0", "g1", "g2", "g3"];

fn expr_strategy() -> impl Strategy<Value = GenExpr> {
    let leaf = prop_oneof![
        (-5i8..10).prop_map(GenExpr::Lit),
        (0usize..GLOBALS.len()).prop_map(GenExpr::Var),
        Just(GenExpr::Input),
    ];
    leaf.prop_recursive(3, 16, 4, |inner| {
        prop_oneof![
            (inner.clone(), inner.clone())
                .prop_map(|(a, b)| GenExpr::Add(Box::new(a), Box::new(b))),
            (inner.clone(), inner.clone())
                .prop_map(|(a, b)| GenExpr::Sub(Box::new(a), Box::new(b))),
            (inner.clone(), 1u8..7).prop_map(|(a, k)| GenExpr::Rem(Box::new(a), k)),
            inner.prop_map(|a| GenExpr::Load(Box::new(a))),
        ]
    })
}

fn stmt_strategy() -> impl Strategy<Value = GenStmt> {
    let leaf = prop_oneof![
        ((0usize..GLOBALS.len()), expr_strategy()).prop_map(|(v, e)| GenStmt::Assign(v, e)),
        (expr_strategy(), expr_strategy()).prop_map(|(i, e)| GenStmt::Store(i, e)),
        expr_strategy().prop_map(GenStmt::Print),
        expr_strategy().prop_map(GenStmt::Call),
    ];
    leaf.prop_recursive(3, 24, 5, |inner| {
        prop_oneof![
            (
                expr_strategy(),
                prop::collection::vec(inner.clone(), 0..4),
                prop::collection::vec(inner.clone(), 0..3)
            )
                .prop_map(|(c, t, e)| GenStmt::If(c, t, e)),
            ((0u8..4), prop::collection::vec(inner, 1..4))
                .prop_map(|(k, body)| GenStmt::Loop(k, body)),
        ]
    })
}

pub fn program_strategy() -> impl Strategy<Value = (String, Vec<i64>)> {
    (
        prop::collection::vec(stmt_strategy(), 1..8),
        prop::collection::vec(-20i64..20, 0..12),
    )
        .prop_map(|(stmts, inputs)| (render_program(&stmts), inputs))
}

fn render_expr(e: &GenExpr, out: &mut String) {
    match e {
        GenExpr::Lit(n) => {
            if *n < 0 {
                out.push_str(&format!("(0 - {})", -(*n as i64)));
            } else {
                out.push_str(&n.to_string());
            }
        }
        GenExpr::Var(v) => out.push_str(GLOBALS[*v]),
        GenExpr::Load(i) => {
            out.push_str("arr[((");
            render_expr(i, out);
            out.push_str(") % 8 + 8) % 8]");
        }
        GenExpr::Add(a, b) => {
            out.push('(');
            render_expr(a, out);
            out.push_str(" + ");
            render_expr(b, out);
            out.push(')');
        }
        GenExpr::Sub(a, b) => {
            out.push('(');
            render_expr(a, out);
            out.push_str(" - ");
            render_expr(b, out);
            out.push(')');
        }
        GenExpr::Rem(a, k) => {
            out.push('(');
            render_expr(a, out);
            out.push_str(&format!(" % {k})"));
        }
        GenExpr::Input => out.push_str("input()"),
    }
}

fn render_stmts(stmts: &[GenStmt], out: &mut String, counter: &mut usize) {
    for s in stmts {
        match s {
            GenStmt::Assign(v, e) => {
                out.push_str(GLOBALS[*v]);
                out.push_str(" = ");
                render_expr(e, out);
                out.push_str(";\n");
            }
            GenStmt::Store(i, e) => {
                out.push_str("arr[((");
                render_expr(i, out);
                out.push_str(") % 8 + 8) % 8] = ");
                render_expr(e, out);
                out.push_str(";\n");
            }
            GenStmt::Print(e) => {
                out.push_str("print(");
                render_expr(e, out);
                out.push_str(");\n");
            }
            GenStmt::Call(e) => {
                out.push_str("note(");
                render_expr(e, out);
                out.push_str(");\n");
            }
            GenStmt::If(c, t, e) => {
                out.push_str("if (");
                render_expr(c, out);
                out.push_str(") % 2 == 0 {\n");
                render_stmts(t, out, counter);
                if e.is_empty() {
                    out.push_str("}\n");
                } else {
                    out.push_str("} else {\n");
                    render_stmts(e, out, counter);
                    out.push_str("}\n");
                }
            }
            GenStmt::Loop(k, body) => {
                let c = *counter;
                *counter += 1;
                out.push_str(&format!("let w{c} = 0;\nwhile w{c} < {k} {{\n"));
                render_stmts(body, out, counter);
                out.push_str(&format!("w{c} = w{c} + 1;\n}}\n"));
            }
        }
    }
}

fn render_program(stmts: &[GenStmt]) -> String {
    let mut body = String::new();
    let mut counter = 0usize;
    render_stmts(stmts, &mut body, &mut counter);
    format!(
        "global g0 = 0; global g1 = 1; global g2 = 2; global g3 = 3;\n\
         global arr = [0; 8];\n\
         global noted = 0;\n\
         fn note(v) {{ noted = noted + v; return noted; }}\n\
         fn main() {{\n{body}print(noted);\n}}\n"
    )
}
