//! Every figure and discussion example of the paper, as executable tests.
//!
//! * Figure 1 — the gzip motivating example (`fig1_*`);
//! * Figure 2 — region alignment across a switched loop (`fig2_*`);
//! * Figure 3 — the single-entry-multiple-exit case (`fig3_*`);
//! * Figure 4 — confidence analysis values (`fig4_*`);
//! * Figure 5 — verifying other uses of a switched predicate enables
//!   more pruning (`fig5_*`);
//! * Table 5(a) — feasibility: switched paths may be statically
//!   infeasible yet must still be explored (`discussion_feasibility`);
//! * Table 5(b) — soundness: nested predicates over one definition can
//!   hide an implicit dependence (`discussion_soundness_miss`).

use omislice::omislice_slicing::{analyze_confidence, ConfidenceParams};
use omislice::prelude::*;
use omislice::{LocateConfig, UserOracle, Verifier, VerifierMode};
use std::collections::HashSet;

// --- Figure 1 ---------------------------------------------------------

const FIG1_FIXED: &str = "\
    global flags = 0; global deflated = 8;\
    fn main() {\
        let save_orig_name = input();\
        flags = 1;\
        if save_orig_name == 1 { flags = flags + 8; }\
        print(deflated);\
        print(flags);\
    }";

fn fig1_session() -> DebugSession {
    let faulty = FIG1_FIXED.replace("input()", "input() - 1");
    DebugSession::builder(&faulty)
        .reference(FIG1_FIXED)
        .failing_input(vec![1])
        .profile_inputs([vec![0], vec![2]])
        .root_cause_stmts([StmtId(0)])
        .build()
        .expect("session builds")
}

#[test]
fn fig1_dynamic_slice_misses_the_root() {
    let session = fig1_session();
    let class = session
        .oracle()
        .classify_outputs(session.trace())
        .expect("wrong output exists");
    // DEFLATED prints correctly; flags is the wrong output.
    assert_eq!(class.correct.len(), 1);
    assert_eq!(class.expected, Some(Value::Int(9)));
    let ds = DepGraph::new(session.trace()).backward_slice(class.wrong);
    assert!(!ds.contains_stmt(StmtId(0)), "S1 missing from the DS");
    assert!(!ds.contains_stmt(StmtId(2)), "S4 missing from the DS");
}

#[test]
fn fig1_locator_reproduces_the_walkthrough() {
    let session = fig1_session();
    let outcome = session.locate(&LocateConfig::default()).unwrap();
    assert!(outcome.found);
    assert_eq!(outcome.iterations, 1, "one expansion, as in §3.2");
    assert!(outcome.strong_edges >= 1, "S4 → S6 is strong");
    // The final pruned slice mirrors {S1, S2, S4, S6, S10}: it contains
    // the root, the guard, and the failure point.
    assert!(outcome.ips.contains_stmt(StmtId(0)));
    assert!(outcome.ips.contains_stmt(StmtId(2)));
    let os = outcome.os.unwrap();
    assert_eq!(session.trace().event(*os.last().unwrap()).stmt, StmtId(0));
}

// --- Figures 2 and 3 --------------------------------------------------

const FIG2: &str = "\
    global i = 0; global t = 0; global x = 0;\
    global p1 = 0; global c1 = 0; global c2 = 0;\
    fn main() {\
        if p1 == 1 { t = 1; x = 7; }\
        while i < t {\
            x = x;\
            if c1 == 1 { x = x; }\
            i = i + 1;\
        }\
        if 1 == 1 {\
            if c2 == 0 { print(x); }\
            i = i;\
        }\
    }";

#[test]
fn fig2_alignment_finds_the_use_through_the_loop() {
    let program = compile(FIG2).unwrap();
    let analysis = ProgramAnalysis::build(&program);
    let config = RunConfig::default();
    let orig = run_traced(&program, &analysis, &config);
    let sw = run_traced(
        &program,
        &analysis,
        &config.switched(SwitchSpec::new(StmtId(0), 0)),
    );
    let aligner = Aligner::new(&orig.trace, &sw.trace);
    let p = orig.trace.instances_of(StmtId(0))[0];
    let u = orig.trace.instances_of(StmtId(10))[0];
    let m = aligner.match_inst(p, u).expect("15(1) matches in (2)");
    // The switched run executed loop iterations in between, so the
    // matched instance has a later timestamp.
    assert!(m > u);
    assert_eq!(sw.trace.event(m).value, Some(Value::Int(7)));
}

#[test]
fn fig2_region_rendering_shows_loop_chaining() {
    let program = compile(FIG2).unwrap();
    let analysis = ProgramAnalysis::build(&program);
    let sw = run_traced(
        &program,
        &analysis,
        &RunConfig::default().switched(SwitchSpec::new(StmtId(0), 0)),
    );
    let regions = RegionTree::build(&sw.trace);
    let rendered = regions.render_all(&sw.trace);
    // The loop head (S3) heads a region containing its re-evaluation —
    // the paper's [6,7,8,11,12,6] unit.
    assert!(rendered.contains("[3,"), "loop region exists: {rendered}");
}

#[test]
fn fig3_break_case_reports_no_match() {
    let src = "\
        global i = 0; global x = 5; global p1 = 0; global c0 = 0; global c1 = 1;\
        fn main() {\
            if p1 == 1 { c0 = 1; }\
            while i < 3 {\
                if c0 == 1 { break; }\
                if c1 == 1 { print(x); }\
                i = i + 1;\
            }\
            print(9);\
        }";
    let program = compile(src).unwrap();
    let analysis = ProgramAnalysis::build(&program);
    let config = RunConfig::default();
    let orig = run_traced(&program, &analysis, &config);
    let sw = run_traced(
        &program,
        &analysis,
        &config.switched(SwitchSpec::new(StmtId(0), 0)),
    );
    let aligner = Aligner::new(&orig.trace, &sw.trace);
    let p = orig.trace.instances_of(StmtId(0))[0];
    let u = orig.trace.instances_of(StmtId(6))[0];
    assert_eq!(aligner.match_inst(p, u), None, "the sibling walk ends");
}

// --- Figure 4 ---------------------------------------------------------

#[test]
fn fig4_confidence_values() {
    let src = "global a = 0; global b = 0; global c = 0;\
        fn main() { a = input(); b = a % 2; c = a + 2; print(b); print(c); }";
    let program = compile(src).unwrap();
    let analysis = ProgramAnalysis::build(&program);
    let mut profile = ValueProfile::new();
    for input in [1i64, 3, 5, 7, 9] {
        profile.add_trace(
            &run_traced(&program, &analysis, &RunConfig::with_inputs(vec![input])).trace,
        );
    }
    let trace = run_traced(&program, &analysis, &RunConfig::with_inputs(vec![1])).trace;
    let outs = trace.outputs();
    let graph = DepGraph::new(&trace);
    let conf = analyze_confidence(&ConfidenceParams {
        graph: &graph,
        analysis: &analysis,
        profile: &profile,
        correct_outputs: &[outs[0].inst],
        wrong_output: outs[1].inst,
        benign: &HashSet::new(),
        corrupted: &HashSet::new(),
    });
    let inst = |s: u32| trace.instances_of(StmtId(s))[0];
    assert!(conf.is_prunable(inst(1)), "C(b) = 1");
    assert_eq!(conf.of(inst(2)), 0.0, "C(c) = 0");
    let a = conf.of(inst(0));
    assert!(a > 0.0 && a < 1.0, "C(a) = f(range(A)), got {a}");
}

// --- Figure 5 ---------------------------------------------------------

#[test]
fn fig5_verified_edge_from_benign_use_exonerates_the_predicate() {
    // The Figure 5 mechanism in isolation: u and t both (implicitly)
    // depend on predicate p. With only the u → p edge, p stays a fault
    // candidate; once the t → p edge is also verified and added, t's
    // benign state propagates across it and p is pruned.
    use omislice::omislice_slicing::{prune_slice, Feedback};

    let src = "global x = 0; global y = 0;\
        fn main() {\
            let c = input();\
            if c > 0 { x = 1; y = 1; }\
            print(y);\
            print(x);\
        }";
    let program = compile(src).unwrap();
    let analysis = ProgramAnalysis::build(&program);
    let trace = run_traced(&program, &analysis, &RunConfig::with_inputs(vec![-1])).trace;
    let outs = trace.outputs();
    let (t_use, wrong) = (outs[0].inst, outs[1].inst);
    let guard = trace.instances_of(StmtId(1))[0];
    let profile = ValueProfile::from_traces([&trace]);
    // The user has judged print(y)'s state benign.
    let mut feedback = Feedback::default();
    feedback.benign.insert(t_use);

    // Only the u → p edge: the guard remains a candidate.
    let mut graph = DepGraph::new(&trace);
    graph.add_edge(wrong, guard);
    let ps = prune_slice(&graph, &analysis, &profile, &[], wrong, &feedback);
    assert!(ps.keeps(guard), "guard is a fault candidate");

    // Adding the verified t → p edge propagates t's confidence to p.
    graph.add_edge(t_use, guard);
    let ps = prune_slice(&graph, &analysis, &profile, &[], wrong, &feedback);
    assert!(!ps.keeps(guard), "benign t exonerates the guard (Figure 5)");
}

// --- §5 discussion ----------------------------------------------------

#[test]
fn discussion_feasibility() {
    // Table 5(a): A = 15 → P1 taken (A reassigned), P2 untaken. The path
    // "P2 taken" is infeasible in this program version, yet switching P2
    // exposes a dependence — deliberately, because either predicate might
    // be the error.
    let src = "global a = 0; global x = 0;\
        fn main() {\
            a = input();\
            x = 1;\
            if a > 10 { a = 2; }\
            if a > 100 { x = 9; }\
            print(x);\
        }";
    let program = compile(src).unwrap();
    let analysis = ProgramAnalysis::build(&program);
    let config = RunConfig::with_inputs(vec![15]);
    let trace = run_traced(&program, &analysis, &config).trace;
    let mut verifier = Verifier::new(&program, &analysis, &config, &trace, VerifierMode::Edge);
    let p2 = trace.instances_of(StmtId(4))[0];
    let out = trace.outputs()[0].inst;
    let x = analysis.index().vars().global("x").unwrap();
    let v = verifier.verify(p2, out, x, out, None);
    assert_eq!(
        v.verdict,
        omislice::Verdict::Id,
        "the infeasible path still exposes the dependence"
    );
}

#[test]
fn discussion_soundness_miss() {
    // Table 5(b): A = 5 → P1 false. Switching P1 alone makes P2 evaluate
    // (A < 5 → false), so S3 still does not execute and the implicit
    // dependence P1 → S4 is missed — the documented unsoundness.
    let src = "global a = 0; global x = 0;\
        fn main() {\
            a = input();\
            x = 1;\
            if a > 10 {\
                if a < 5 { x = 9; }\
            }\
            print(x);\
        }";
    let program = compile(src).unwrap();
    let analysis = ProgramAnalysis::build(&program);
    let config = RunConfig::with_inputs(vec![5]);
    let trace = run_traced(&program, &analysis, &config).trace;
    let mut verifier = Verifier::new(&program, &analysis, &config, &trace, VerifierMode::Edge);
    let p1 = trace.instances_of(StmtId(2))[0];
    let out = trace.outputs()[0].inst;
    let x = analysis.index().vars().global("x").unwrap();
    let v = verifier.verify(p1, out, x, out, None);
    assert_eq!(
        v.verdict,
        omislice::Verdict::NotId,
        "nested predicates over one definition hide the dependence"
    );
    // The safe path-based mode misses it too (no path materializes), so
    // this is inherent to single-predicate switching, as §5 explains.
    let mut safe = Verifier::new(&program, &analysis, &config, &trace, VerifierMode::Path);
    assert_eq!(
        safe.verify(p1, out, x, out, None).verdict,
        omislice::Verdict::NotId
    );
}

#[test]
fn discussion_soundness_recovered_by_value_perturbation() {
    // §5's proposed remedy, implemented: perturbing the *value* of A
    // (instead of one branch outcome) drives both nested predicates and
    // exposes the dependence that switching misses. The paper declines
    // this because "A has an integer domain while a predicate has a
    // binary domain" — visible here as extra re-executions.
    use omislice::{perturbation_candidates, verify_by_perturbation};

    let src = "global a = 0; global x = 0;        fn main() {            a = input();            x = 1;            if a > 10 {                if a > 20 { x = 9; }            }            print(x);        }";
    let program = compile(src).unwrap();
    let analysis = ProgramAnalysis::build(&program);
    let config = RunConfig::with_inputs(vec![5]);
    let trace = run_traced(&program, &analysis, &config).trace;
    // Profile over a suite that exercises the deep branch.
    let mut profile = ValueProfile::new();
    for i in [5i64, 12, 25] {
        profile.add_trace(&run_traced(&program, &analysis, &RunConfig::with_inputs(vec![i])).trace);
    }
    let def = trace.instances_of(StmtId(0))[0];
    let u = trace.outputs()[0].inst;
    let candidates = perturbation_candidates(&profile, &trace, def);
    let result = verify_by_perturbation(&program, &analysis, &config, &trace, def, u, &candidates);
    assert!(
        result.affected,
        "perturbation exposes the hidden dependence"
    );
    assert!(
        result.reexecutions > 1,
        "and costs more than a single binary switch ({})",
        result.reexecutions
    );
}

// --- instance precision -------------------------------------------------

#[test]
fn locator_is_instance_precise_in_loops() {
    // The paper's §2 argument for dynamic techniques: when an erroneous
    // predicate executes many times and only one instance matters, the
    // fault candidate set should contain *that* instance, not all of
    // them. Here the guard evaluates five times; only iteration 3's
    // outcome corrupts the output.
    use omislice::{DebugSession, LocateConfig};

    let fixed = "global marked = 0;\
        fn main() {\
            let target = input();\
            let i = 0;\
            while i < 5 {\
                if i == target { marked = i + 10; }\
                i = i + 1;\
            }\
            print(marked);\
        }";
    // The fault shifts the comparison so the guard never fires.
    let faulty = fixed.replace("if i == target", "if i == target + 9");
    let session = DebugSession::builder(&faulty)
        .reference(fixed)
        .failing_input(vec![3])
        .profile_inputs([vec![0], vec![4], vec![9]])
        .root_cause_stmts([StmtId(3)])
        .build()
        .unwrap();
    let outcome = session.locate(&LocateConfig::default()).unwrap();
    assert!(outcome.found, "{}", session.report(&outcome));

    // Exactly one of the five guard instances sits on the failure chain:
    // the one from iteration 3 (occurrence index 3).
    let trace = session.trace();
    let os = outcome.os.as_ref().unwrap();
    let guard_instances_on_chain: Vec<usize> = os
        .iter()
        .filter(|&&i| trace.event(i).stmt == StmtId(3))
        .map(|&i| trace.occurrence_index(i))
        .collect();
    assert_eq!(
        guard_instances_on_chain,
        vec![3],
        "only iteration 3's instance"
    );
    // And the IPS keeps at most a couple of the 5 instances (instance-
    // level pruning), rather than pulling in every iteration.
    let guard_in_ips = outcome
        .ips
        .insts()
        .iter()
        .filter(|&&i| trace.event(i).stmt == StmtId(3))
        .count();
    assert!(
        guard_in_ips <= 2,
        "IPS keeps {guard_in_ips} of 5 guard instances"
    );
}
