//! Cross-crate property tests over randomly generated programs.
//!
//! A small structured-program generator produces terminating programs
//! (loops are bounded counters), and properties assert agreement and
//! well-formedness across the whole pipeline:
//!
//! * plain and traced interpreters produce identical outputs;
//! * pretty-print → re-parse → re-run is observationally identical;
//! * trace dependence edges always point backwards in time;
//! * region trees are properly nested;
//! * the dynamic slice is contained in the relevant slice;
//! * a switched re-execution shares the prefix up to the switch point,
//!   and the aligner maps prefix instances to themselves.

use omislice::omislice_lang::printer::print_program;
use omislice::omislice_slicing::relevant_slice;
use omislice::prelude::*;
use proptest::prelude::*;

// --- program generator -------------------------------------------------

mod generator;
use generator::program_strategy;

// --- properties ---------------------------------------------------------

fn compiled(src: &str) -> (Program, ProgramAnalysis) {
    let p = compile(src).unwrap_or_else(|e| panic!("generated program invalid: {e}\n{src}"));
    let a = ProgramAnalysis::build(&p);
    (p, a)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn plain_and_traced_interpreters_agree((src, inputs) in program_strategy()) {
        let (program, analysis) = compiled(&src);
        let config = RunConfig::with_inputs(inputs);
        let plain = run_plain(&program, &config);
        let traced = run_traced(&program, &analysis, &config);
        prop_assert_eq!(&plain.outputs, &traced.trace.output_values(), "src:\n{}", src);
        prop_assert_eq!(
            plain.is_normal(),
            traced.trace.termination().is_normal(),
            "termination mismatch on:\n{}", src
        );
    }

    #[test]
    fn printer_roundtrip_is_observational_identity((src, inputs) in program_strategy()) {
        let (program, _) = compiled(&src);
        let printed = print_program(&program);
        let reparsed = compile(&printed)
            .unwrap_or_else(|e| panic!("re-parse failed: {e}\n{printed}"));
        prop_assert_eq!(program.stmt_count(), reparsed.stmt_count());
        let config = RunConfig::with_inputs(inputs);
        let a = run_plain(&program, &config);
        let b = run_plain(&reparsed, &config);
        prop_assert_eq!(a.outputs, b.outputs);
    }

    #[test]
    fn trace_edges_point_backwards((src, inputs) in program_strategy()) {
        let (program, analysis) = compiled(&src);
        let run = run_traced(&program, &analysis, &RunConfig::with_inputs(inputs));
        for inst in run.trace.insts() {
            let ev = run.trace.event(inst);
            for &d in ev.data_deps {
                prop_assert!(d < inst, "forward data edge {d} -> {inst}");
            }
            if let Some(cd) = ev.cd_parent {
                prop_assert!(cd < inst);
            }
            if let Some(rp) = ev.region_parent {
                prop_assert!(rp < inst);
            }
        }
    }

    #[test]
    fn region_trees_are_properly_nested((src, inputs) in program_strategy()) {
        let (program, analysis) = compiled(&src);
        let run = run_traced(&program, &analysis, &RunConfig::with_inputs(inputs));
        let regions = RegionTree::build(&run.trace);
        for inst in run.trace.insts() {
            for anc in regions.ancestors(inst) {
                prop_assert!(regions.in_region(anc, inst));
            }
            for &child in regions.children(inst) {
                prop_assert_eq!(regions.parent(child), Some(inst));
            }
        }
    }

    #[test]
    fn dynamic_slice_is_contained_in_relevant_slice((src, inputs) in program_strategy()) {
        let (program, analysis) = compiled(&src);
        let run = run_traced(&program, &analysis, &RunConfig::with_inputs(inputs));
        let Some(last) = run.trace.outputs().last() else { return Ok(()); };
        let ds = DepGraph::new(&run.trace).backward_slice(last.inst);
        let rs = relevant_slice(&run.trace, &analysis, last.inst);
        for &i in ds.insts() {
            prop_assert!(rs.contains(i), "DS instance {i} missing from RS");
        }
    }

    #[test]
    fn switched_runs_share_the_prefix((src, inputs, pick) in (program_strategy(), any::<prop::sample::Index>())
        .prop_map(|((s, i), p)| (s, i, p)))
    {
        let (program, analysis) = compiled(&src);
        let config = RunConfig::with_inputs(inputs);
        let base = run_traced(&program, &analysis, &config);
        // Pick a predicate instance from the base run, if any.
        let preds: Vec<InstId> = base
            .trace
            .insts()
            .filter(|&i| base.trace.event(i).is_predicate())
            .collect();
        if preds.is_empty() {
            return Ok(());
        }
        let target = preds[pick.index(preds.len())];
        let stmt = base.trace.event(target).stmt;
        let occurrence = base.trace.occurrence_index(target) as u32;
        let sw = run_traced(
            &program,
            &analysis,
            &config.switched(SwitchSpec::new(stmt, occurrence)),
        );
        let Some(switched_at) = sw.switched else {
            return Ok(());
        };
        prop_assert_eq!(switched_at, target, "switch lands at the same timestamp");
        for i in 0..switched_at.index() {
            prop_assert_eq!(
                base.trace.event(InstId(i as u32)),
                sw.trace.event(InstId(i as u32)),
                "prefix diverged at {} on:\n{}", i, src
            );
        }
        // The switched instance itself: same statement, opposite branch.
        let b0 = base.trace.event(target).branch;
        let b1 = sw.trace.event(target).branch;
        prop_assert_eq!(b0.map(|b| !b), b1);
        // The aligner maps prefix instances to themselves.
        let aligner = Aligner::new(&base.trace, &sw.trace);
        if switched_at.index() > 0 {
            let probe = InstId((switched_at.index() / 2) as u32);
            prop_assert_eq!(aligner.match_inst(target, probe), Some(probe));
        }
    }
}
