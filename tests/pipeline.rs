//! Cross-crate property tests over randomly generated programs.
//!
//! A small structured-program generator produces terminating programs
//! (loops are bounded counters), and properties assert agreement and
//! well-formedness across the whole pipeline:
//!
//! * plain and traced interpreters produce identical outputs;
//! * pretty-print → re-parse → re-run is observationally identical;
//! * trace dependence edges always point backwards in time;
//! * region trees are properly nested;
//! * the dynamic slice is contained in the relevant slice;
//! * a switched re-execution shares the prefix up to the switch point,
//!   and the aligner maps prefix instances to themselves.

use omislice::omislice_lang::printer::print_program;
use omislice::omislice_slicing::relevant_slice;
use omislice::prelude::*;
use proptest::prelude::*;

// --- program generator -------------------------------------------------

#[derive(Debug, Clone)]
enum GenStmt {
    Assign(usize, GenExpr),
    Store(GenExpr, GenExpr),
    Print(GenExpr),
    If(GenExpr, Vec<GenStmt>, Vec<GenStmt>),
    /// Bounded loop: a fresh counter runs to a small constant.
    Loop(u8, Vec<GenStmt>),
    Call(GenExpr),
}

#[derive(Debug, Clone)]
enum GenExpr {
    Lit(i8),
    Var(usize),
    Load(Box<GenExpr>),
    Add(Box<GenExpr>, Box<GenExpr>),
    Sub(Box<GenExpr>, Box<GenExpr>),
    Rem(Box<GenExpr>, u8),
    Input,
}

const GLOBALS: [&str; 4] = ["g0", "g1", "g2", "g3"];

fn expr_strategy() -> impl Strategy<Value = GenExpr> {
    let leaf = prop_oneof![
        (-5i8..10).prop_map(GenExpr::Lit),
        (0usize..GLOBALS.len()).prop_map(GenExpr::Var),
        Just(GenExpr::Input),
    ];
    leaf.prop_recursive(3, 16, 4, |inner| {
        prop_oneof![
            (inner.clone(), inner.clone())
                .prop_map(|(a, b)| GenExpr::Add(Box::new(a), Box::new(b))),
            (inner.clone(), inner.clone())
                .prop_map(|(a, b)| GenExpr::Sub(Box::new(a), Box::new(b))),
            (inner.clone(), 1u8..7).prop_map(|(a, k)| GenExpr::Rem(Box::new(a), k)),
            inner.prop_map(|a| GenExpr::Load(Box::new(a))),
        ]
    })
}

fn stmt_strategy() -> impl Strategy<Value = GenStmt> {
    let leaf = prop_oneof![
        ((0usize..GLOBALS.len()), expr_strategy()).prop_map(|(v, e)| GenStmt::Assign(v, e)),
        (expr_strategy(), expr_strategy()).prop_map(|(i, e)| GenStmt::Store(i, e)),
        expr_strategy().prop_map(GenStmt::Print),
        expr_strategy().prop_map(GenStmt::Call),
    ];
    leaf.prop_recursive(3, 24, 5, |inner| {
        prop_oneof![
            (
                expr_strategy(),
                prop::collection::vec(inner.clone(), 0..4),
                prop::collection::vec(inner.clone(), 0..3)
            )
                .prop_map(|(c, t, e)| GenStmt::If(c, t, e)),
            ((0u8..4), prop::collection::vec(inner, 1..4))
                .prop_map(|(k, body)| GenStmt::Loop(k, body)),
        ]
    })
}

fn program_strategy() -> impl Strategy<Value = (String, Vec<i64>)> {
    (
        prop::collection::vec(stmt_strategy(), 1..8),
        prop::collection::vec(-20i64..20, 0..12),
    )
        .prop_map(|(stmts, inputs)| (render_program(&stmts), inputs))
}

fn render_expr(e: &GenExpr, out: &mut String) {
    match e {
        GenExpr::Lit(n) => {
            if *n < 0 {
                out.push_str(&format!("(0 - {})", -(*n as i64)));
            } else {
                out.push_str(&n.to_string());
            }
        }
        GenExpr::Var(v) => out.push_str(GLOBALS[*v]),
        GenExpr::Load(i) => {
            out.push_str("arr[((");
            render_expr(i, out);
            out.push_str(") % 8 + 8) % 8]");
        }
        GenExpr::Add(a, b) => {
            out.push('(');
            render_expr(a, out);
            out.push_str(" + ");
            render_expr(b, out);
            out.push(')');
        }
        GenExpr::Sub(a, b) => {
            out.push('(');
            render_expr(a, out);
            out.push_str(" - ");
            render_expr(b, out);
            out.push(')');
        }
        GenExpr::Rem(a, k) => {
            out.push('(');
            render_expr(a, out);
            out.push_str(&format!(" % {k})"));
        }
        GenExpr::Input => out.push_str("input()"),
    }
}

fn render_stmts(stmts: &[GenStmt], out: &mut String, counter: &mut usize) {
    for s in stmts {
        match s {
            GenStmt::Assign(v, e) => {
                out.push_str(GLOBALS[*v]);
                out.push_str(" = ");
                render_expr(e, out);
                out.push_str(";\n");
            }
            GenStmt::Store(i, e) => {
                out.push_str("arr[((");
                render_expr(i, out);
                out.push_str(") % 8 + 8) % 8] = ");
                render_expr(e, out);
                out.push_str(";\n");
            }
            GenStmt::Print(e) => {
                out.push_str("print(");
                render_expr(e, out);
                out.push_str(");\n");
            }
            GenStmt::Call(e) => {
                out.push_str("note(");
                render_expr(e, out);
                out.push_str(");\n");
            }
            GenStmt::If(c, t, e) => {
                out.push_str("if (");
                render_expr(c, out);
                out.push_str(") % 2 == 0 {\n");
                render_stmts(t, out, counter);
                if e.is_empty() {
                    out.push_str("}\n");
                } else {
                    out.push_str("} else {\n");
                    render_stmts(e, out, counter);
                    out.push_str("}\n");
                }
            }
            GenStmt::Loop(k, body) => {
                let c = *counter;
                *counter += 1;
                out.push_str(&format!("let w{c} = 0;\nwhile w{c} < {k} {{\n"));
                render_stmts(body, out, counter);
                out.push_str(&format!("w{c} = w{c} + 1;\n}}\n"));
            }
        }
    }
}

fn render_program(stmts: &[GenStmt]) -> String {
    let mut body = String::new();
    let mut counter = 0usize;
    render_stmts(stmts, &mut body, &mut counter);
    format!(
        "global g0 = 0; global g1 = 1; global g2 = 2; global g3 = 3;\n\
         global arr = [0; 8];\n\
         global noted = 0;\n\
         fn note(v) {{ noted = noted + v; return noted; }}\n\
         fn main() {{\n{body}print(noted);\n}}\n"
    )
}

// --- properties ---------------------------------------------------------

fn compiled(src: &str) -> (Program, ProgramAnalysis) {
    let p = compile(src).unwrap_or_else(|e| panic!("generated program invalid: {e}\n{src}"));
    let a = ProgramAnalysis::build(&p);
    (p, a)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn plain_and_traced_interpreters_agree((src, inputs) in program_strategy()) {
        let (program, analysis) = compiled(&src);
        let config = RunConfig::with_inputs(inputs);
        let plain = run_plain(&program, &config);
        let traced = run_traced(&program, &analysis, &config);
        prop_assert_eq!(&plain.outputs, &traced.trace.output_values(), "src:\n{}", src);
        prop_assert_eq!(
            plain.is_normal(),
            traced.trace.termination().is_normal(),
            "termination mismatch on:\n{}", src
        );
    }

    #[test]
    fn printer_roundtrip_is_observational_identity((src, inputs) in program_strategy()) {
        let (program, _) = compiled(&src);
        let printed = print_program(&program);
        let reparsed = compile(&printed)
            .unwrap_or_else(|e| panic!("re-parse failed: {e}\n{printed}"));
        prop_assert_eq!(program.stmt_count(), reparsed.stmt_count());
        let config = RunConfig::with_inputs(inputs);
        let a = run_plain(&program, &config);
        let b = run_plain(&reparsed, &config);
        prop_assert_eq!(a.outputs, b.outputs);
    }

    #[test]
    fn trace_edges_point_backwards((src, inputs) in program_strategy()) {
        let (program, analysis) = compiled(&src);
        let run = run_traced(&program, &analysis, &RunConfig::with_inputs(inputs));
        for inst in run.trace.insts() {
            let ev = run.trace.event(inst);
            for &d in &ev.data_deps {
                prop_assert!(d < inst, "forward data edge {d} -> {inst}");
            }
            if let Some(cd) = ev.cd_parent {
                prop_assert!(cd < inst);
            }
            if let Some(rp) = ev.region_parent {
                prop_assert!(rp < inst);
            }
        }
    }

    #[test]
    fn region_trees_are_properly_nested((src, inputs) in program_strategy()) {
        let (program, analysis) = compiled(&src);
        let run = run_traced(&program, &analysis, &RunConfig::with_inputs(inputs));
        let regions = RegionTree::build(&run.trace);
        for inst in run.trace.insts() {
            for anc in regions.ancestors(inst) {
                prop_assert!(regions.in_region(anc, inst));
            }
            for &child in regions.children(inst) {
                prop_assert_eq!(regions.parent(child), Some(inst));
            }
        }
    }

    #[test]
    fn dynamic_slice_is_contained_in_relevant_slice((src, inputs) in program_strategy()) {
        let (program, analysis) = compiled(&src);
        let run = run_traced(&program, &analysis, &RunConfig::with_inputs(inputs));
        let Some(last) = run.trace.outputs().last() else { return Ok(()); };
        let ds = DepGraph::new(&run.trace).backward_slice(last.inst);
        let rs = relevant_slice(&run.trace, &analysis, last.inst);
        for &i in ds.insts() {
            prop_assert!(rs.contains(i), "DS instance {i} missing from RS");
        }
    }

    #[test]
    fn switched_runs_share_the_prefix((src, inputs, pick) in (program_strategy(), any::<prop::sample::Index>())
        .prop_map(|((s, i), p)| (s, i, p)))
    {
        let (program, analysis) = compiled(&src);
        let config = RunConfig::with_inputs(inputs);
        let base = run_traced(&program, &analysis, &config);
        // Pick a predicate instance from the base run, if any.
        let preds: Vec<InstId> = base
            .trace
            .insts()
            .filter(|&i| base.trace.event(i).is_predicate())
            .collect();
        if preds.is_empty() {
            return Ok(());
        }
        let target = preds[pick.index(preds.len())];
        let stmt = base.trace.event(target).stmt;
        let occurrence = base.trace.occurrence_index(target) as u32;
        let sw = run_traced(
            &program,
            &analysis,
            &config.switched(SwitchSpec::new(stmt, occurrence)),
        );
        let Some(switched_at) = sw.switched else {
            return Ok(());
        };
        prop_assert_eq!(switched_at, target, "switch lands at the same timestamp");
        for i in 0..switched_at.index() {
            prop_assert_eq!(
                &base.trace.events()[i],
                &sw.trace.events()[i],
                "prefix diverged at {} on:\n{}", i, src
            );
        }
        // The switched instance itself: same statement, opposite branch.
        let b0 = base.trace.event(target).branch;
        let b1 = sw.trace.event(target).branch;
        prop_assert_eq!(b0.map(|b| !b), b1);
        // The aligner maps prefix instances to themselves.
        let aligner = Aligner::new(&base.trace, &sw.trace);
        if switched_at.index() > 0 {
            let probe = InstId((switched_at.index() / 2) as u32);
            prop_assert_eq!(aligner.match_inst(target, probe), Some(probe));
        }
    }
}
