//! Region-based execution alignment — the paper's Figures 2 and 3, live.
//!
//! Shows the region decomposition of an execution (Definition 3), and how
//! `Match` (Algorithm 1) finds the counterpart of a statement instance in
//! a switched re-execution — or proves there is none, including the
//! single-entry-multiple-exit (`break`) case of Figure 3.
//!
//! Run with: `cargo run --example alignment_demo`

use omislice::prelude::*;

fn demo(title: &str, src: &str, pred: StmtId, watch: StmtId) {
    println!("=== {title} ===");
    let program = compile(src).expect("demo program compiles");
    let analysis = ProgramAnalysis::build(&program);
    let config = RunConfig::default();

    let orig = run_traced(&program, &analysis, &config);
    let switched = run_traced(
        &program,
        &analysis,
        &config.switched(SwitchSpec::new(pred, 0)),
    );

    let orig_regions = RegionTree::build(&orig.trace);
    let switched_regions = RegionTree::build(&switched.trace);
    println!(
        "original regions : {}",
        orig_regions.render_all(&orig.trace)
    );
    println!(
        "switched regions : {}",
        switched_regions.render_all(&switched.trace)
    );

    let aligner = Aligner::new(&orig.trace, &switched.trace);
    let p = orig.trace.instances_of(pred)[0];
    for &u in orig.trace.instances_of(watch) {
        match aligner.match_inst(p, u) {
            Some(m) => println!(
                "{u} ({} = {:?})  matches  {m} ({} = {:?})",
                orig.trace.event(u).stmt,
                orig.trace.event(u).value,
                switched.trace.event(m).stmt,
                switched.trace.event(m).value,
            ),
            None => println!(
                "{u} ({} = {:?})  has NO counterpart in the switched run",
                orig.trace.event(u).stmt,
                orig.trace.event(u).value,
            ),
        }
    }
    println!();
}

fn main() {
    // Figure 2: switching P makes the loop run; the use of x at the end
    // still has a counterpart — and observes a different value, exposing
    // the implicit dependence.
    demo(
        "Figure 2: the use survives the switch (and changes value)",
        "global i = 0; global t = 0; global x = 0;
         global p1 = 0; global c1 = 0; global c2 = 0;
         fn main() {
             if p1 == 1 { t = 1; x = 7; }
             while i < t {
                 x = x;
                 if c1 == 1 { x = x; }
                 i = i + 1;
             }
             if 1 == 1 {
                 if c2 == 0 { print(x); }
                 i = i;
             }
         }",
        StmtId(0),
        StmtId(10),
    );

    // Figure 2, execution (3): statement 3 also sets C2, so the guard of
    // the use flips and the matcher must report "no counterpart".
    demo(
        "Figure 2 variant: the use disappears",
        "global i = 0; global t = 0; global x = 0;
         global p1 = 0; global c1 = 0; global c2 = 0;
         fn main() {
             if p1 == 1 { t = 1; c2 = 1; x = 7; }
             while i < t {
                 x = x;
                 if c1 == 1 { x = x; }
                 i = i + 1;
             }
             if 1 == 1 {
                 if c2 == 0 { print(x); }
                 i = i;
             }
         }",
        StmtId(0),
        StmtId(11),
    );

    // Figure 3: the switched predicate arms a break; the loop exits early
    // and the in-loop use runs out of sibling regions.
    demo(
        "Figure 3: break exits the region early",
        "global i = 0; global x = 5; global p1 = 0; global c0 = 0; global c1 = 1;
         fn main() {
             if p1 == 1 { c0 = 1; }
             while i < 3 {
                 if c0 == 1 { break; }
                 if c1 == 1 { print(x); }
                 i = i + 1;
             }
             print(9);
         }",
        StmtId(0),
        StmtId(6),
    );
}
