//! A guided tour of one corpus subject: runs sed's two-stage omission
//! error (the paper's "real" sed V3-F2) and narrates every step of the
//! demand-driven process — the error that needs *two* implicit dependence
//! expansions before the root cause becomes reachable.
//!
//! Run with: `cargo run --example corpus_tour`

use omislice::prelude::*;
use omislice::{LocateConfig, UserOracle};
use omislice_corpus::all_benchmarks;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let benchmarks = all_benchmarks();
    let sed = benchmarks
        .iter()
        .find(|b| b.name == "sed")
        .expect("sed exists");
    let fault = sed.fault("V3-F2").expect("V3-F2 exists");

    println!("subject     : sed (stream editor), fault {}", fault.id);
    println!("description : {}", fault.description);
    println!();

    let session = sed.session(fault)?;
    let trace = session.trace();
    println!(
        "failing run : {} statement instances, outputs {:?}",
        trace.len(),
        trace.output_values()
    );
    let reference = session.oracle().reference();
    println!("expected    : outputs {:?}", reference.output_values());

    let class = session
        .oracle()
        .classify_outputs(trace)
        .expect("a wrong value exists");
    println!(
        "failure     : output #{} is wrong (expected {:?})",
        class.correct.len(),
        class.expected
    );
    println!();

    // Stage one: the dynamic slice dead-ends.
    let ds = DepGraph::new(trace).backward_slice(class.wrong);
    println!(
        "dynamic slice: {} instances — the substitution never executed, so",
        ds.dynamic_size()
    );
    println!("               no dynamic dependence reaches the arming logic.");
    println!();

    // Stage two: the locator expands twice.
    let outcome = session.locate(&LocateConfig::default())?;
    println!("{}", session.report(&outcome));
    assert!(outcome.found);
    assert!(
        outcome.iterations >= 2,
        "two expansions: print → armed-guard, armed-guard → enable-guard"
    );
    println!(
        "The failure chain crosses {} verified implicit edges ({} strong):",
        outcome.expanded_edges, outcome.strong_edges
    );
    println!("print(linebuf[k]) → [if armed == 1] → [if enable_subst == 1] → root.");
    Ok(())
}
