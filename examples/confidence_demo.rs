//! Confidence analysis — the paper's Figure 4, live.
//!
//! `a = input(); b = a % 2; c = a + 2; print(b) ✓; print(c) ✗`
//!
//! * `b` has confidence 1: the correct output pins it through the
//!   identity of `print`;
//! * `a` gets a *range-based* partial confidence: `%2` is many-to-one, so
//!   the correct `b` only narrows `a` to half its observed range;
//! * `c` has confidence 0: its only evidence is the wrong output.
//!
//! Run with: `cargo run --example confidence_demo`

use omislice::omislice_slicing::{analyze_confidence, ConfidenceParams};
use omislice::prelude::*;
use std::collections::HashSet;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let src = "global a = 0; global b = 0; global c = 0;
        fn main() {
            a = input();
            b = a % 2;
            c = a + 2;
            print(b);
            print(c);
        }";
    let program = compile(src)?;
    let analysis = ProgramAnalysis::build(&program);

    // Value profiles over a small test suite (the paper's range(A)).
    let mut profile = ValueProfile::new();
    for input in [1i64, 3, 5, 7, 9, 11, 13, 15] {
        let run = run_traced(&program, &analysis, &RunConfig::with_inputs(vec![input]));
        profile.add_trace(&run.trace);
    }

    let run = run_traced(&program, &analysis, &RunConfig::with_inputs(vec![1]));
    let trace = &run.trace;
    let outs = trace.outputs();
    let graph = DepGraph::new(trace);
    let conf = analyze_confidence(&ConfidenceParams {
        graph: &graph,
        analysis: &analysis,
        profile: &profile,
        correct_outputs: &[outs[0].inst],
        wrong_output: outs[1].inst,
        benign: &HashSet::new(),
        corrupted: &HashSet::new(),
    });

    println!("statement                 confidence");
    println!("-------------------------------------");
    for inst in trace.insts() {
        let info = analysis.index().stmt(trace.event(inst).stmt);
        println!("{:24}  {:.3}", info.head, conf.of(inst));
    }

    let inst_of = |s: u32| trace.instances_of(StmtId(s))[0];
    assert!(conf.of(inst_of(1)) >= 1.0, "b is certain");
    assert_eq!(conf.of(inst_of(2)), 0.0, "c is fully suspect");
    let a = conf.of(inst_of(0));
    assert!(a > 0.0 && a < 1.0, "a is range-limited: {a}");
    println!("\nFigure 4 reproduced: C(b)=1, C(c)=0, C(a)=f(range(A)).");
    Ok(())
}
