//! Quickstart: the paper's Figure 1 in twenty lines.
//!
//! gzip's `save_orig_name` is computed wrong, so the header guard is not
//! taken, `flags` never receives its ORIG_NAME bit, and the stale value
//! is printed. A classic dynamic slice of the wrong output misses the
//! root cause entirely; the omission locator finds it by verifying one
//! implicit dependence through predicate switching.
//!
//! Run with: `cargo run --example quickstart`

use omislice::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // The paper's Figure 1, transcribed: S1 sets save_orig_name (the
    // seeded error), S4 guards the flags update, S10 observes the stale
    // value.
    let fixed = r#"
        global flags = 0;
        global deflated = 8;
        fn main() {
            let save_orig_name = input();
            flags = 1;
            if save_orig_name == 1 {
                flags = flags + 8;
            }
            print(deflated);
            print(flags);
        }
    "#;
    // The fault: save_orig_name is computed wrong (stays 0).
    let faulty = fixed.replace("input()", "input() - 1");

    let session = DebugSession::builder(&faulty)
        .reference(fixed)
        .failing_input(vec![1])
        .profile_inputs([vec![0], vec![2], vec![5]])
        .root_cause_stmts([StmtId(0)])
        .build()?;

    // 1. The failure: print(flags) emits 1, but 9 was expected.
    println!("faulty output : {:?}", session.trace().output_values());

    // 2. Classic dynamic slicing misses the root cause: the guard was not
    //    taken, so no dynamic dependence connects S1 to the output.
    let wrong = session.trace().outputs().last().unwrap().inst;
    let ds = DepGraph::new(session.trace()).backward_slice(wrong);
    println!(
        "dynamic slice contains the root cause? {}",
        ds.contains_stmt(StmtId(0))
    );

    // 3. The omission locator verifies the implicit dependence by
    //    switching the guard and aligning the two runs, then walks the
    //    expanded graph back to the root cause.
    let outcome = session.locate(&LocateConfig::default())?;
    println!("{}", session.report(&outcome));

    assert!(outcome.found);
    assert!(outcome.ips.contains_stmt(StmtId(0)));
    Ok(())
}
