//! Using the locator *without* a fixed reference program, by implementing
//! [`UserOracle`] directly — the way a real debugging session works: you
//! know which outputs look right and what the failing one should have
//! been, and you can judge presented program state, but nobody hands you
//! the patched program.
//!
//! Run with: `cargo run --example custom_oracle`

use omislice::omislice_slicing::ValueProfile;
use omislice::prelude::*;
use omislice::{LocateConfig, OutputClassification, UserOracle};

/// A scripted "programmer": knows the expected output values and judges
/// instances by a handful of domain rules instead of a reference run.
struct ScriptedOracle {
    /// The outputs the program *should* produce.
    expected: Vec<Value>,
}

impl UserOracle for ScriptedOracle {
    fn classify_outputs(&self, trace: &Trace) -> Option<OutputClassification> {
        let mut correct = Vec::new();
        for (i, out) in trace.outputs().iter().enumerate() {
            match self.expected.get(i) {
                Some(e) if *e == out.value => correct.push(out.inst),
                other => {
                    return Some(OutputClassification {
                        correct,
                        wrong: out.inst,
                        expected: other.copied(),
                    })
                }
            }
        }
        None
    }

    fn is_benign(&self, trace: &Trace, inst: InstId) -> bool {
        // The "programmer" recognizes obviously-healthy state: the input
        // echo and the header constant are known-good in this scenario.
        matches!(
            trace.event(inst).value,
            Some(Value::Int(31)) | Some(Value::Int(139))
        )
    }

    fn is_root_cause(&self, _stmt: StmtId) -> bool {
        // Exploratory mode: the programmer does not know the root cause
        // in advance, so the locator runs until nothing is left to
        // expand and reports its fault candidate set.
        false
    }
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A header writer with the Figure 1 bug baked in: the flags guard is
    // never taken because `save` is computed wrong.
    let faulty = r#"
        global flags = 0;
        fn main() {
            let save = input() - 1;
            print(31);
            print(139);
            flags = 1;
            if save == 1 { flags = flags + 8; }
            print(flags);
        }
    "#;
    let program = compile(faulty)?;
    let analysis = ProgramAnalysis::build(&program);
    let config = RunConfig::with_inputs(vec![1]);
    let trace = run_traced(&program, &analysis, &config).trace;

    let mut profile = ValueProfile::new();
    profile.add_trace(&trace);
    for other in [0i64, 2, 5] {
        let cfg = RunConfig::with_inputs(vec![other]);
        profile.add_trace(&run_traced(&program, &analysis, &cfg).trace);
    }

    // The programmer knows the archive should read 31, 139, 9.
    let oracle = ScriptedOracle {
        expected: vec![Value::Int(31), Value::Int(139), Value::Int(9)],
    };

    let outcome = omislice::locate_fault(
        &program,
        &analysis,
        &config,
        &trace,
        &profile,
        &oracle,
        &LocateConfig::default(),
    )?;

    // Exploratory mode never "confirms" a root (is_root_cause is always
    // false), but the expanded, pruned fault candidate set contains it.
    println!("{}", omislice::render_report(&outcome, &trace, &analysis));
    assert!(!outcome.found, "exploratory mode has no confirmation step");
    assert!(
        outcome.ips.contains_stmt(StmtId(0)),
        "the candidate set reaches `let save = input() - 1;`"
    );
    assert!(outcome.expanded_edges >= 1, "an implicit edge was verified");
    println!("The fault candidate set above contains the seeded root (S0),");
    println!("reached through a verified implicit dependence — no reference");
    println!("program was consulted.");
    Ok(())
}
