//! Relevant slicing vs demand-driven implicit dependences, head to head
//! on the full corpus — the paper's core comparison (Tables 2 and 3 in
//! one view).
//!
//! For every fault: the dynamic slice misses the root cause, the relevant
//! slice drowns it in a much larger candidate set, and the demand-driven
//! locator pinpoints it with a handful of verified edges.
//!
//! Run with: `cargo run --example relevant_vs_implicit`

use omislice::omislice_slicing::{relevant_slice, DepGraph};
use omislice::{LocateConfig, UserOracle};
use omislice_corpus::all_benchmarks;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    println!(
        "{:10} {:8} {:>12} {:>12} {:>12} {:>8} {:>8}",
        "benchmark", "fault", "DS(dyn)", "RS(dyn)", "IPS(dyn)", "verifs", "found"
    );
    for b in all_benchmarks() {
        for fault in &b.faults {
            let prepared = b.prepare(fault)?;
            let session = b.session(fault)?;
            let trace = session.trace();
            let class = session
                .oracle()
                .classify_outputs(trace)
                .expect("corpus failures expose a wrong value");

            let ds = DepGraph::new(trace).backward_slice(class.wrong);
            let rs = relevant_slice(trace, session.analysis(), class.wrong);
            let outcome = session.locate(&LocateConfig::default())?;

            let root = prepared.roots[0];
            assert!(!ds.contains_stmt(root), "DS misses the root by design");
            assert!(rs.contains_stmt(root), "RS always captures it");

            println!(
                "{:10} {:8} {:>12} {:>12} {:>12} {:>8} {:>8}",
                b.name,
                fault.id,
                ds.dynamic_size(),
                rs.dynamic_size(),
                outcome.ips.dynamic_size(),
                outcome.verifications,
                if outcome.found { "yes" } else { "NO" },
            );
        }
    }
    println!("\nRS always contains the root cause but is far larger than the");
    println!("pruned, expanded slice the demand-driven technique produces.");
    Ok(())
}
