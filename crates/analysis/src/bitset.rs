//! A dense fixed-capacity bit set used by the dataflow analyses.

/// A fixed-capacity set of small integers backed by `u64` words.
///
/// All dataflow lattices in this crate (dominators, reaching definitions)
/// are powersets of dense id spaces, so a flat bit set is both the fastest
/// and the simplest representation.
///
/// # Examples
///
/// ```
/// use omislice_analysis::bitset::BitSet;
///
/// let mut s = BitSet::new(100);
/// s.insert(3);
/// s.insert(64);
/// assert!(s.contains(3) && s.contains(64) && !s.contains(4));
/// assert_eq!(s.iter().collect::<Vec<_>>(), vec![3, 64]);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BitSet {
    words: Vec<u64>,
    capacity: usize,
}

impl BitSet {
    /// Creates an empty set able to hold values `0..capacity`.
    pub fn new(capacity: usize) -> Self {
        BitSet {
            words: vec![0; capacity.div_ceil(64)],
            capacity,
        }
    }

    /// Creates a set containing every value in `0..capacity`.
    pub fn full(capacity: usize) -> Self {
        let mut s = BitSet::new(capacity);
        for w in &mut s.words {
            *w = u64::MAX;
        }
        s.trim();
        s
    }

    fn trim(&mut self) {
        let extra = self.words.len() * 64 - self.capacity;
        if extra > 0 {
            if let Some(last) = self.words.last_mut() {
                *last &= u64::MAX >> extra;
            }
        }
    }

    /// The capacity this set was created with.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Adds `value`; returns true if it was newly inserted.
    ///
    /// # Panics
    ///
    /// Panics if `value >= capacity`.
    pub fn insert(&mut self, value: usize) -> bool {
        assert!(
            value < self.capacity,
            "bit {value} out of capacity {}",
            self.capacity
        );
        let (w, b) = (value / 64, value % 64);
        let had = self.words[w] & (1 << b) != 0;
        self.words[w] |= 1 << b;
        !had
    }

    /// Removes `value`; returns true if it was present.
    pub fn remove(&mut self, value: usize) -> bool {
        if value >= self.capacity {
            return false;
        }
        let (w, b) = (value / 64, value % 64);
        let had = self.words[w] & (1 << b) != 0;
        self.words[w] &= !(1 << b);
        had
    }

    /// Whether `value` is in the set.
    pub fn contains(&self, value: usize) -> bool {
        if value >= self.capacity {
            return false;
        }
        self.words[value / 64] & (1 << (value % 64)) != 0
    }

    /// Number of elements in the set.
    pub fn len(&self) -> usize {
        self.words.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// Whether the set is empty.
    pub fn is_empty(&self) -> bool {
        self.words.iter().all(|&w| w == 0)
    }

    /// Removes all elements.
    pub fn clear(&mut self) {
        for w in &mut self.words {
            *w = 0;
        }
    }

    /// `self ∪= other`; returns true if `self` changed.
    ///
    /// # Panics
    ///
    /// Panics if capacities differ.
    pub fn union_with(&mut self, other: &BitSet) -> bool {
        assert_eq!(self.capacity, other.capacity, "bitset capacity mismatch");
        let mut changed = false;
        for (a, b) in self.words.iter_mut().zip(&other.words) {
            let next = *a | b;
            changed |= next != *a;
            *a = next;
        }
        changed
    }

    /// `self ∩= other`; returns true if `self` changed.
    ///
    /// # Panics
    ///
    /// Panics if capacities differ.
    pub fn intersect_with(&mut self, other: &BitSet) -> bool {
        assert_eq!(self.capacity, other.capacity, "bitset capacity mismatch");
        let mut changed = false;
        for (a, b) in self.words.iter_mut().zip(&other.words) {
            let next = *a & b;
            changed |= next != *a;
            *a = next;
        }
        changed
    }

    /// `self −= other` (set difference).
    pub fn subtract(&mut self, other: &BitSet) {
        assert_eq!(self.capacity, other.capacity, "bitset capacity mismatch");
        for (a, b) in self.words.iter_mut().zip(&other.words) {
            *a &= !b;
        }
    }

    /// Iterates over the elements in increasing order.
    pub fn iter(&self) -> impl Iterator<Item = usize> + '_ {
        self.words.iter().enumerate().flat_map(|(wi, &w)| {
            let mut bits = w;
            std::iter::from_fn(move || {
                if bits == 0 {
                    None
                } else {
                    let b = bits.trailing_zeros() as usize;
                    bits &= bits - 1;
                    Some(wi * 64 + b)
                }
            })
        })
    }
}

impl FromIterator<usize> for BitSet {
    /// Collects values into a set sized to hold the largest one.
    fn from_iter<I: IntoIterator<Item = usize>>(iter: I) -> Self {
        let values: Vec<usize> = iter.into_iter().collect();
        let cap = values.iter().max().map_or(0, |m| m + 1);
        let mut s = BitSet::new(cap);
        for v in values {
            s.insert(v);
        }
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_contains_remove() {
        let mut s = BitSet::new(130);
        assert!(s.insert(0));
        assert!(s.insert(129));
        assert!(!s.insert(0));
        assert!(s.contains(0) && s.contains(129));
        assert!(!s.contains(64));
        assert!(s.remove(0));
        assert!(!s.remove(0));
        assert!(!s.contains(0));
        assert_eq!(s.len(), 1);
    }

    #[test]
    #[should_panic(expected = "out of capacity")]
    fn insert_past_capacity_panics() {
        BitSet::new(4).insert(4);
    }

    #[test]
    fn full_respects_capacity() {
        let s = BitSet::full(70);
        assert_eq!(s.len(), 70);
        assert!(s.contains(69));
        assert!(!s.contains(70));
    }

    #[test]
    fn full_zero_capacity() {
        let s = BitSet::full(0);
        assert!(s.is_empty());
    }

    #[test]
    fn union_and_intersection() {
        let mut a: BitSet = [1usize, 3, 5].into_iter().collect();
        let b: BitSet = [3usize, 4].into_iter().collect();
        // Align capacities.
        let mut a2 = BitSet::new(6);
        for v in a.iter() {
            a2.insert(v);
        }
        let mut b2 = BitSet::new(6);
        for v in b.iter() {
            b2.insert(v);
        }
        a = a2.clone();
        assert!(a.union_with(&b2));
        assert_eq!(a.iter().collect::<Vec<_>>(), vec![1, 3, 4, 5]);
        assert!(!a2.union_with(&a2.clone()));
        let mut c = a.clone();
        assert!(c.intersect_with(&b2));
        assert_eq!(c.iter().collect::<Vec<_>>(), vec![3, 4]);
    }

    #[test]
    fn subtract_removes_members() {
        let mut a = BitSet::new(10);
        a.insert(1);
        a.insert(2);
        let mut b = BitSet::new(10);
        b.insert(2);
        b.insert(3);
        a.subtract(&b);
        assert_eq!(a.iter().collect::<Vec<_>>(), vec![1]);
    }

    #[test]
    fn iter_crosses_word_boundaries() {
        let mut s = BitSet::new(200);
        for v in [0, 63, 64, 127, 128, 199] {
            s.insert(v);
        }
        assert_eq!(s.iter().collect::<Vec<_>>(), vec![0, 63, 64, 127, 128, 199]);
    }

    #[test]
    fn clear_empties() {
        let mut s = BitSet::full(10);
        s.clear();
        assert!(s.is_empty());
        assert_eq!(s.len(), 0);
    }
}
