//! Static control dependence.
//!
//! Node `n` is control dependent on branch edge `(p, β)` iff `n`
//! post-dominates the β-successor of `p` but does not post-dominate `p`
//! itself (Ferrante–Ottenstein–Warren). We expose both the immediate
//! relation and its transitive closure at *statement* granularity, which
//! is what the interpreter (dynamic control dependences), relevant
//! slicing, and potential-dependence computation consume.

use crate::cfg::{Cfg, NodeKind};
use crate::dom::{post_dominators, DomSets};
use omislice_lang::StmtId;
use std::collections::{HashMap, HashSet};

/// A control-dependence parent: a predicate and the branch outcome under
/// which the dependent statement executes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct CdParent {
    /// The controlling predicate.
    pub pred: StmtId,
    /// The branch outcome of `pred` that leads to the dependent statement.
    pub branch: bool,
}

/// Statement-level control dependences of one function.
#[derive(Debug, Clone)]
pub struct ControlDeps {
    /// Immediate control-dependence parents per statement.
    imm: HashMap<StmtId, Vec<CdParent>>,
    /// Statements immediately control dependent on each `(pred, branch)`.
    children: HashMap<CdParent, Vec<StmtId>>,
}

impl ControlDeps {
    /// Computes statement-level control dependences for `cfg`.
    pub fn compute(cfg: &Cfg) -> Self {
        let pdom = post_dominators(cfg);
        let mut imm: HashMap<StmtId, Vec<CdParent>> = HashMap::new();
        let mut children: HashMap<CdParent, Vec<StmtId>> = HashMap::new();

        for (from, edge) in cfg.edges() {
            let NodeKind::Branch(pred) = cfg.kind(from) else {
                continue;
            };
            let branch = edge.label.expect("branch edges are labeled");
            for n in cfg.node_ids() {
                let Some(stmt) = cfg.kind(n).stmt() else {
                    continue;
                };
                if dominates_or_is(&pdom, n, edge.to) && !pdom.strictly_dominates(n, from) {
                    let parent = CdParent { pred, branch };
                    imm.entry(stmt).or_default().push(parent);
                    children.entry(parent).or_default().push(stmt);
                }
            }
        }
        for v in imm.values_mut() {
            v.sort();
            v.dedup();
        }
        for v in children.values_mut() {
            v.sort();
            v.dedup();
        }
        ControlDeps { imm, children }
    }

    /// Immediate control-dependence parents of `stmt` (empty for
    /// top-level statements).
    pub fn parents(&self, stmt: StmtId) -> &[CdParent] {
        self.imm.get(&stmt).map_or(&[], Vec::as_slice)
    }

    /// Statements immediately control dependent on `(pred, branch)`.
    pub fn children(&self, pred: StmtId, branch: bool) -> &[StmtId] {
        self.children
            .get(&CdParent { pred, branch })
            .map_or(&[], Vec::as_slice)
    }

    /// Transitive control-dependence ancestors of `stmt`, including the
    /// branch outcomes (a statement may depend on several `(pred, branch)`
    /// pairs in the presence of `break`).
    pub fn ancestors(&self, stmt: StmtId) -> HashSet<CdParent> {
        let mut out = HashSet::new();
        let mut stack: Vec<StmtId> = vec![stmt];
        let mut seen: HashSet<StmtId> = HashSet::new();
        while let Some(s) = stack.pop() {
            for &p in self.parents(s) {
                if out.insert(p) && seen.insert(p.pred) {
                    stack.push(p.pred);
                }
            }
        }
        out
    }

    /// Statements transitively control dependent on `(pred, branch)`:
    /// the statements that execute *because* `pred` took `branch`.
    pub fn region_stmts(&self, pred: StmtId, branch: bool) -> HashSet<StmtId> {
        let mut out = HashSet::new();
        let mut stack: Vec<StmtId> = self.children(pred, branch).to_vec();
        while let Some(s) = stack.pop() {
            if out.insert(s) {
                for b in [true, false] {
                    stack.extend(self.children(s, b).iter().copied());
                }
            }
        }
        out
    }

    /// Whether `stmt` transitively depends on `pred` under *either* branch.
    pub fn depends_on(&self, stmt: StmtId, pred: StmtId) -> bool {
        self.ancestors(stmt).iter().any(|p| p.pred == pred)
    }
}

fn dominates_or_is(pdom: &DomSets, a: crate::cfg::NodeId, b: crate::cfg::NodeId) -> bool {
    a == b || pdom.dominates(a, b)
}

#[cfg(test)]
mod tests {
    use super::*;
    use omislice_lang::compile;

    fn deps(src: &str) -> ControlDeps {
        let p = compile(src).unwrap();
        ControlDeps::compute(&Cfg::build(&p, "main").unwrap())
    }

    #[test]
    fn then_branch_depends_on_if_true() {
        let d = deps("fn main() { if 1 < 2 { print(1); } print(2); }");
        assert_eq!(
            d.parents(StmtId(1)),
            &[CdParent {
                pred: StmtId(0),
                branch: true
            }]
        );
        // The join point depends on nothing.
        assert!(d.parents(StmtId(2)).is_empty());
    }

    #[test]
    fn else_branch_depends_on_if_false() {
        let d = deps("fn main() { if 1 < 2 { print(1); } else { print(2); } }");
        assert_eq!(
            d.parents(StmtId(2)),
            &[CdParent {
                pred: StmtId(0),
                branch: false
            }]
        );
    }

    #[test]
    fn loop_body_and_head_depend_on_head() {
        let d = deps("fn main() { while 1 < 2 { print(1); } print(2); }");
        assert_eq!(
            d.parents(StmtId(1)),
            &[CdParent {
                pred: StmtId(0),
                branch: true
            }]
        );
        // The loop head re-evaluation is control dependent on itself.
        assert_eq!(
            d.parents(StmtId(0)),
            &[CdParent {
                pred: StmtId(0),
                branch: true
            }]
        );
        assert!(d.parents(StmtId(2)).is_empty());
    }

    #[test]
    fn nested_if_transitive_ancestors() {
        let d = deps("fn main() { if 1 < 2 { if 2 < 3 { print(1); } } }");
        let anc = d.ancestors(StmtId(2));
        assert!(anc.contains(&CdParent {
            pred: StmtId(0),
            branch: true
        }));
        assert!(anc.contains(&CdParent {
            pred: StmtId(1),
            branch: true
        }));
        assert!(d.depends_on(StmtId(2), StmtId(0)));
        assert!(!d.depends_on(StmtId(0), StmtId(2)));
    }

    #[test]
    fn break_makes_loop_tail_depend_on_guard() {
        // while c { if g { break; } tail; }
        let d = deps("fn main() { while 1 < 2 { if 2 < 3 { break; } print(7); } print(9); }");
        // tail (print(7)) executes only when g is false.
        let parents = d.parents(StmtId(3));
        assert!(parents.contains(&CdParent {
            pred: StmtId(1),
            branch: false
        }));
        // The loop head re-test depends on the guard being false too.
        assert!(d.parents(StmtId(0)).contains(&CdParent {
            pred: StmtId(1),
            branch: false
        }));
        // The post-loop print(9) depends on nothing: it always runs.
        assert!(d.parents(StmtId(4)).is_empty());
    }

    #[test]
    fn region_stmts_of_then_branch() {
        let d = deps("fn main() { if 1 < 2 { print(1); if 2 < 3 { print(2); } } print(3); }");
        let region = d.region_stmts(StmtId(0), true);
        assert!(region.contains(&StmtId(1)));
        assert!(region.contains(&StmtId(2)));
        assert!(region.contains(&StmtId(3)));
        assert!(!region.contains(&StmtId(4)));
        // False branch region is empty (no else).
        assert!(d.region_stmts(StmtId(0), false).is_empty());
    }

    #[test]
    fn children_inverse_of_parents() {
        let d = deps("fn main() { if 1 < 2 { print(1); print(2); } }");
        assert_eq!(d.children(StmtId(0), true), &[StmtId(1), StmtId(2)]);
        assert!(d.children(StmtId(0), false).is_empty());
    }

    #[test]
    fn return_in_branch_makes_tail_dependent() {
        let d = deps("fn main() { if 1 < 2 { return; } print(1); }");
        // print(1) executes only when the condition is false.
        assert_eq!(
            d.parents(StmtId(2)),
            &[CdParent {
                pred: StmtId(0),
                branch: false
            }]
        );
    }
}
