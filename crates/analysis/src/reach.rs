//! Intraprocedural reaching-definition analysis.
//!
//! Definition sites per function are:
//!
//! * **Statement defs** — `let`/assignment (strong: kill other defs of the
//!   same variable), array stores and `return` (weak: kill nothing);
//! * **Call mods** — a statement whose evaluation calls `f` weakly defines
//!   every global in MOD(`f`);
//! * **Boundary defs** — at function entry, one per parameter and per
//!   global, representing values flowing in from outside; boundary defs
//!   are excluded from potential-dependence candidates because they are
//!   not controlled by any predicate of this function.
//!
//! Uses of synthetic return slots are not modelled statically (their
//! dataflow crosses function boundaries); the dynamic analyses handle
//! them precisely.

use crate::bitset::BitSet;
use crate::cfg::{Cfg, NodeId};
use crate::modref::ModSummaries;
use omislice_lang::{ProgramIndex, StmtId, StmtRole, VarId, VarKind};
use std::collections::HashMap;

/// Dense id of a definition site within one function's analysis.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct DefId(pub u32);

impl DefId {
    /// Returns the id as a `usize` index.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// A definition site.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DefSite {
    /// The statement's own definition (strong unless `weak`).
    Stmt {
        /// Defining statement.
        stmt: StmtId,
        /// Variable defined.
        var: VarId,
        /// Whether the definition kills earlier ones.
        strong: bool,
    },
    /// A possible write of `var` performed by a call occurring in `stmt`.
    CallMod {
        /// Statement containing the call.
        stmt: StmtId,
        /// Global possibly written.
        var: VarId,
    },
    /// The value of `var` at function entry.
    Boundary {
        /// Variable flowing in.
        var: VarId,
    },
}

impl DefSite {
    /// The variable this site defines.
    pub fn var(self) -> VarId {
        match self {
            DefSite::Stmt { var, .. }
            | DefSite::CallMod { var, .. }
            | DefSite::Boundary { var } => var,
        }
    }

    /// The statement carrying this definition, if any.
    pub fn stmt(self) -> Option<StmtId> {
        match self {
            DefSite::Stmt { stmt, .. } | DefSite::CallMod { stmt, .. } => Some(stmt),
            DefSite::Boundary { .. } => None,
        }
    }
}

/// Reaching-definition solution for one function.
#[derive(Debug, Clone)]
pub struct ReachingDefs {
    defs: Vec<DefSite>,
    r#in: Vec<BitSet>,
    node_of_stmt: HashMap<StmtId, NodeId>,
}

impl ReachingDefs {
    /// Runs the analysis for the function `cfg` describes.
    pub fn compute(cfg: &Cfg, index: &ProgramIndex, mods: &ModSummaries) -> Self {
        let func = cfg.func();
        // 1. Enumerate definition sites.
        let mut defs: Vec<DefSite> = Vec::new();
        // Boundary defs: parameters and all globals.
        for (v, info) in index.vars().iter() {
            let belongs = match &info.kind {
                VarKind::Global { .. } => true,
                VarKind::Local { func: f } => f == func,
                VarKind::Ret { .. } => false,
            };
            if belongs {
                defs.push(DefSite::Boundary { var: v });
            }
        }
        let mut node_defs: HashMap<NodeId, Vec<DefId>> = HashMap::new();
        for node in cfg.node_ids() {
            let Some(stmt) = cfg.kind(node).stmt() else {
                continue;
            };
            let info = index.stmt(stmt);
            if let Some(var) = info.def {
                // Skip return-slot defs: not modelled statically.
                if !matches!(index.vars().info(var).kind, VarKind::Ret { .. }) {
                    let strong = !info.weak_def && info.role != StmtRole::Return;
                    let id = DefId(defs.len() as u32);
                    defs.push(DefSite::Stmt { stmt, var, strong });
                    node_defs.entry(node).or_default().push(id);
                }
            }
            for callee in &info.calls {
                for var in mods.mods(callee) {
                    // The statement's own strong def (if to the same var)
                    // happens after the call; keep both, the kill handles it.
                    let id = DefId(defs.len() as u32);
                    defs.push(DefSite::CallMod { stmt, var });
                    node_defs.entry(node).or_default().push(id);
                }
            }
        }

        // 2. Per-variable def lists for kill sets.
        let mut defs_of_var: HashMap<VarId, Vec<DefId>> = HashMap::new();
        for (i, d) in defs.iter().enumerate() {
            defs_of_var
                .entry(d.var())
                .or_default()
                .push(DefId(i as u32));
        }

        // 3. Gen/kill per node.
        let n_defs = defs.len();
        let n_nodes = cfg.node_count();
        let mut gen: Vec<BitSet> = vec![BitSet::new(n_defs); n_nodes];
        let mut kill: Vec<BitSet> = vec![BitSet::new(n_defs); n_nodes];
        // Entry generates boundary defs.
        for (i, d) in defs.iter().enumerate() {
            if matches!(d, DefSite::Boundary { .. }) {
                gen[cfg.entry().index()].insert(i);
            }
        }
        for (&node, ids) in &node_defs {
            for &id in ids {
                gen[node.index()].insert(id.index());
                if let DefSite::Stmt {
                    var, strong: true, ..
                } = defs[id.index()]
                {
                    for &other in &defs_of_var[&var] {
                        if other != id {
                            kill[node.index()].insert(other.index());
                        }
                    }
                }
            }
        }

        // 4. Iterative forward dataflow.
        let mut r#in: Vec<BitSet> = vec![BitSet::new(n_defs); n_nodes];
        let mut out: Vec<BitSet> = vec![BitSet::new(n_defs); n_nodes];
        let mut changed = true;
        while changed {
            changed = false;
            for node in cfg.node_ids() {
                let mut new_in = BitSet::new(n_defs);
                for &p in cfg.preds(node) {
                    new_in.union_with(&out[p.index()]);
                }
                let mut new_out = new_in.clone();
                new_out.subtract(&kill[node.index()]);
                new_out.union_with(&gen[node.index()]);
                if new_in != r#in[node.index()] || new_out != out[node.index()] {
                    r#in[node.index()] = new_in;
                    out[node.index()] = new_out;
                    changed = true;
                }
            }
        }

        let node_of_stmt = cfg
            .node_ids()
            .filter_map(|n| cfg.kind(n).stmt().map(|s| (s, n)))
            .collect();

        ReachingDefs {
            defs,
            r#in,
            node_of_stmt,
        }
    }

    /// All definition sites of this function's analysis.
    pub fn defs(&self) -> &[DefSite] {
        &self.defs
    }

    /// Definitions of `var` that may reach statement `stmt` (its node's
    /// IN set, i.e. just before the statement evaluates).
    pub fn reaching(&self, stmt: StmtId, var: VarId) -> Vec<DefSite> {
        let Some(&node) = self.node_of_stmt.get(&stmt) else {
            return Vec::new();
        };
        self.r#in[node.index()]
            .iter()
            .map(|i| self.defs[i])
            .filter(|d| d.var() == var)
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use omislice_lang::compile;

    struct Setup {
        cfg: Cfg,
        idx: ProgramIndex,
        mods: ModSummaries,
    }

    fn setup(src: &str) -> (ReachingDefs, Setup) {
        let p = compile(src).unwrap();
        let idx = ProgramIndex::build(&p);
        let mods = ModSummaries::compute(&idx);
        let cfg = Cfg::build(&p, "main").unwrap();
        let rd = ReachingDefs::compute(&cfg, &idx, &mods);
        (rd, Setup { cfg, idx, mods })
    }

    fn stmt_defs(sites: &[DefSite]) -> Vec<StmtId> {
        sites.iter().filter_map(|d| d.stmt()).collect()
    }

    #[test]
    fn strong_def_kills_previous() {
        let (rd, s) = setup("global x = 0; fn main() { x = 1; x = 2; print(x); }");
        let x = s.idx.vars().global("x").unwrap();
        let reaching = rd.reaching(StmtId(2), x);
        assert_eq!(stmt_defs(&reaching), vec![StmtId(1)]);
        // No boundary def survives either.
        assert!(!reaching
            .iter()
            .any(|d| matches!(d, DefSite::Boundary { .. })));
    }

    #[test]
    fn both_branches_reach_join() {
        let (rd, s) =
            setup("global x = 0; fn main() { if 1 < 2 { x = 1; } else { x = 2; } print(x); }");
        let x = s.idx.vars().global("x").unwrap();
        let mut ids = stmt_defs(&rd.reaching(StmtId(3), x));
        ids.sort();
        assert_eq!(ids, vec![StmtId(1), StmtId(2)]);
    }

    #[test]
    fn untaken_branch_def_still_reaches_statically() {
        // The definition inside `if` reaches the print regardless of the
        // actual branch outcome: reaching defs are path-insensitive, which
        // is exactly what potential dependence needs.
        let (rd, s) = setup("global x = 0; fn main() { if 1 > 2 { x = 1; } print(x); }");
        let x = s.idx.vars().global("x").unwrap();
        let reaching = rd.reaching(StmtId(2), x);
        assert!(stmt_defs(&reaching).contains(&StmtId(1)));
        assert!(reaching
            .iter()
            .any(|d| matches!(d, DefSite::Boundary { .. })));
    }

    #[test]
    fn array_store_is_weak() {
        let (rd, s) = setup("global a = [0; 4]; fn main() { a[0] = 1; a[1] = 2; print(a[0]); }");
        let a = s.idx.vars().global("a").unwrap();
        let reaching = rd.reaching(StmtId(2), a);
        let ids = stmt_defs(&reaching);
        assert!(ids.contains(&StmtId(0)) && ids.contains(&StmtId(1)));
        assert!(reaching
            .iter()
            .any(|d| matches!(d, DefSite::Boundary { .. })));
    }

    #[test]
    fn loop_body_def_reaches_head() {
        let (rd, s) = setup(
            "global x = 0; fn main() { let i = 0; while i < 3 { x = i; i = i + 1; } print(x); }",
        );
        let x = s.idx.vars().global("x").unwrap();
        let ids = stmt_defs(&rd.reaching(StmtId(4), x));
        assert_eq!(ids, vec![StmtId(2)]);
        // And x=i reaches the loop head itself (back edge).
        let at_head = stmt_defs(&rd.reaching(StmtId(1), x));
        assert!(at_head.contains(&StmtId(2)));
    }

    #[test]
    fn call_mod_creates_weak_def() {
        let (rd, s) = setup("global g = 0; fn f() { g = 5; } fn main() { g = 1; f(); print(g); }");
        let g = s.idx.vars().global("g").unwrap();
        assert!(s.mods.may_write("f", g));
        let reaching = rd.reaching(StmtId(3), g);
        // Both the direct def and the call-mod def reach the print.
        assert!(reaching
            .iter()
            .any(|d| matches!(d, DefSite::CallMod { stmt, .. } if *stmt == StmtId(2))));
        assert!(stmt_defs(&reaching).contains(&StmtId(1)));
    }

    #[test]
    fn boundary_def_for_parameters() {
        let p = compile("fn f(a) { print(a); } fn main() { f(1); }").unwrap();
        let idx = ProgramIndex::build(&p);
        let mods = ModSummaries::compute(&idx);
        let cfg = Cfg::build(&p, "f").unwrap();
        let rd = ReachingDefs::compute(&cfg, &idx, &mods);
        let a = idx.vars().resolve("f", "a").unwrap();
        let reaching = rd.reaching(StmtId(0), a);
        assert_eq!(reaching.len(), 1);
        assert!(matches!(reaching[0], DefSite::Boundary { .. }));
    }

    #[test]
    fn unknown_stmt_returns_empty() {
        let (rd, s) = setup("global x = 0; fn main() { print(x); }");
        let x = s.idx.vars().global("x").unwrap();
        assert!(rd.reaching(StmtId(99), x).is_empty());
        let _ = &s.cfg;
    }

    #[test]
    fn def_site_accessors() {
        let d = DefSite::Stmt {
            stmt: StmtId(3),
            var: VarId(1),
            strong: true,
        };
        assert_eq!(d.var(), VarId(1));
        assert_eq!(d.stmt(), Some(StmtId(3)));
        assert_eq!(DefSite::Boundary { var: VarId(0) }.stmt(), None);
    }
}
