//! Dominator and post-dominator analysis.
//!
//! Iterative bit-set dataflow: `dom(n) = {n} ∪ ⋂ dom(preds(n))`, and the
//! dual over successors for post-dominators. Functions in the
//! mini-language are small, so the simple O(N²) fixpoint is plenty fast
//! and easy to audit.
//!
//! Nodes that cannot reach exit (e.g. bodies of `while true {}` without a
//! `break`) keep the full post-dominator set; the paper assumes analysed
//! executions terminate, and the control-dependence pass tolerates these
//! saturated sets conservatively.

use crate::bitset::BitSet;
use crate::cfg::{Cfg, NodeId};

/// Dominator (or post-dominator) sets for one CFG.
#[derive(Debug, Clone)]
pub struct DomSets {
    sets: Vec<BitSet>,
    root: NodeId,
}

impl DomSets {
    /// Whether `a` dominates `b` (reflexive: every node dominates itself).
    pub fn dominates(&self, a: NodeId, b: NodeId) -> bool {
        self.sets[b.index()].contains(a.index())
    }

    /// Whether `a` strictly dominates `b`.
    pub fn strictly_dominates(&self, a: NodeId, b: NodeId) -> bool {
        a != b && self.dominates(a, b)
    }

    /// The root of the analysis (entry for dominators, exit for
    /// post-dominators).
    pub fn root(&self) -> NodeId {
        self.root
    }

    /// All dominators of `n`, in node-id order.
    pub fn dominators_of(&self, n: NodeId) -> Vec<NodeId> {
        self.sets[n.index()]
            .iter()
            .map(|i| NodeId(i as u32))
            .collect()
    }

    /// The immediate dominator of `n`: the unique strict dominator that is
    /// dominated by every other strict dominator of `n`.
    ///
    /// Returns `None` for the root and for nodes unreachable from the root.
    pub fn immediate(&self, n: NodeId) -> Option<NodeId> {
        let strict: Vec<NodeId> = self
            .dominators_of(n)
            .into_iter()
            .filter(|&d| d != n)
            .collect();
        strict
            .iter()
            .copied()
            .find(|&cand| strict.iter().all(|&o| self.dominates(o, cand)))
    }
}

/// Computes dominator sets rooted at the CFG entry.
pub fn dominators(cfg: &Cfg) -> DomSets {
    solve(cfg, cfg.entry(), |cfg, n| cfg.preds(n).to_vec())
}

/// Computes post-dominator sets rooted at the CFG exit.
pub fn post_dominators(cfg: &Cfg) -> DomSets {
    solve(cfg, cfg.exit(), |cfg, n| {
        cfg.succs(n).iter().map(|e| e.to).collect()
    })
}

fn solve(cfg: &Cfg, root: NodeId, inputs: impl Fn(&Cfg, NodeId) -> Vec<NodeId>) -> DomSets {
    let n = cfg.node_count();
    let mut sets: Vec<BitSet> = (0..n)
        .map(|i| {
            if i == root.index() {
                let mut s = BitSet::new(n);
                s.insert(i);
                s
            } else {
                BitSet::full(n)
            }
        })
        .collect();

    let mut changed = true;
    while changed {
        changed = false;
        for node in cfg.node_ids() {
            if node == root {
                continue;
            }
            let ins = inputs(cfg, node);
            let mut next = if ins.is_empty() {
                // Unreachable from root in this direction: keep ⊤.
                BitSet::full(n)
            } else {
                let mut acc = sets[ins[0].index()].clone();
                for p in &ins[1..] {
                    acc.intersect_with(&sets[p.index()]);
                }
                acc
            };
            next.insert(node.index());
            if next != sets[node.index()] {
                sets[node.index()] = next;
                changed = true;
            }
        }
    }
    DomSets { sets, root }
}

#[cfg(test)]
mod tests {
    use super::*;
    use omislice_lang::{compile, StmtId};

    fn cfg(src: &str) -> Cfg {
        Cfg::build(&compile(src).unwrap(), "main").unwrap()
    }

    fn node(c: &Cfg, s: u32) -> NodeId {
        c.node_of(StmtId(s)).unwrap()
    }

    #[test]
    fn entry_dominates_everything() {
        let c = cfg("fn main() { if true { print(1); } print(2); }");
        let dom = dominators(&c);
        for n in c.node_ids() {
            assert!(dom.dominates(c.entry(), n));
        }
    }

    #[test]
    fn exit_postdominates_everything() {
        let c = cfg("fn main() { if true { print(1); } print(2); }");
        let pdom = post_dominators(&c);
        for n in c.node_ids() {
            assert!(pdom.dominates(c.exit(), n));
        }
    }

    #[test]
    fn branch_does_not_dominate_join_sides_unequally() {
        let c = cfg("fn main() { if true { print(1); } else { print(2); } print(3); }");
        let dom = dominators(&c);
        // The branch dominates both arms and the join.
        assert!(dom.strictly_dominates(node(&c, 0), node(&c, 1)));
        assert!(dom.strictly_dominates(node(&c, 0), node(&c, 2)));
        assert!(dom.strictly_dominates(node(&c, 0), node(&c, 3)));
        // Neither arm dominates the join.
        assert!(!dom.dominates(node(&c, 1), node(&c, 3)));
        assert!(!dom.dominates(node(&c, 2), node(&c, 3)));
    }

    #[test]
    fn join_postdominates_branch_but_arms_do_not() {
        let c = cfg("fn main() { if true { print(1); } else { print(2); } print(3); }");
        let pdom = post_dominators(&c);
        assert!(pdom.strictly_dominates(node(&c, 3), node(&c, 0)));
        assert!(!pdom.dominates(node(&c, 1), node(&c, 0)));
        assert!(!pdom.dominates(node(&c, 2), node(&c, 0)));
    }

    #[test]
    fn loop_body_does_not_postdominate_head() {
        let c = cfg("fn main() { while true { print(1); } print(2); }");
        let pdom = post_dominators(&c);
        assert!(!pdom.dominates(node(&c, 1), node(&c, 0)));
        assert!(pdom.strictly_dominates(node(&c, 2), node(&c, 0)));
    }

    #[test]
    fn immediate_dominator_chain() {
        let c = cfg("fn main() { let a = 1; let b = 2; print(b); }");
        let dom = dominators(&c);
        assert_eq!(dom.immediate(node(&c, 1)), Some(node(&c, 0)));
        assert_eq!(dom.immediate(node(&c, 2)), Some(node(&c, 1)));
        assert_eq!(dom.immediate(c.entry()), None);
    }

    #[test]
    fn post_loop_statement_postdominates_break() {
        let c = cfg("fn main() { while true { if 1 < 2 { break; } } print(9); }");
        let pdom = post_dominators(&c);
        // print(9) postdominates the loop head and the break.
        assert!(pdom.dominates(node(&c, 3), node(&c, 0)));
        assert!(pdom.dominates(node(&c, 3), node(&c, 2)));
        // The loop head does not postdominate the break (break bypasses it).
        assert!(!pdom.dominates(node(&c, 0), node(&c, 2)));
    }

    #[test]
    fn infinite_loop_keeps_saturated_postdom() {
        let c = cfg("fn main() { while true { print(1); } }");
        let pdom = post_dominators(&c);
        // The body can't reach exit... actually `while true` still has a
        // false edge in our CFG (condition is an expression, statically
        // unknown), so exit is reachable and postdominates.
        assert!(pdom.dominates(c.exit(), node(&c, 1)));
    }

    #[test]
    fn dominators_of_lists_root() {
        let c = cfg("fn main() { print(1); }");
        let dom = dominators(&c);
        let doms = dom.dominators_of(node(&c, 0));
        assert!(doms.contains(&c.entry()));
        assert!(doms.contains(&node(&c, 0)));
        assert_eq!(dom.root(), c.entry());
    }
}
