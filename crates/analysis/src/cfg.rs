//! Per-function control-flow graphs.
//!
//! One node per statement (predicates become branch nodes with labeled
//! successors) plus synthetic entry/exit nodes. `break`, `continue`, and
//! `return` get their natural edges. This plays the role of the paper's
//! diablo-built binary CFG.

use omislice_lang::{Block, FnDecl, Program, Stmt, StmtId, StmtKind};
use std::collections::HashMap;
use std::fmt;

/// Identifier of a CFG node, local to one function's graph.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct NodeId(pub u32);

impl NodeId {
    /// Returns the id as a `usize` index.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}

/// What a CFG node represents.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum NodeKind {
    /// Synthetic function entry.
    Entry,
    /// Synthetic function exit.
    Exit,
    /// A non-branching statement.
    Stmt(StmtId),
    /// A predicate (`if`/`while`) with true/false successors.
    Branch(StmtId),
}

impl NodeKind {
    /// The statement this node carries, if any.
    pub fn stmt(self) -> Option<StmtId> {
        match self {
            NodeKind::Stmt(s) | NodeKind::Branch(s) => Some(s),
            NodeKind::Entry | NodeKind::Exit => None,
        }
    }
}

/// An outgoing CFG edge; `label` is the branch outcome for branch nodes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Edge {
    /// Target node.
    pub to: NodeId,
    /// `Some(outcome)` when the source is a branch node.
    pub label: Option<bool>,
}

#[derive(Debug, Clone)]
struct Node {
    kind: NodeKind,
    succs: Vec<Edge>,
    preds: Vec<NodeId>,
}

/// Control-flow graph of one function.
///
/// # Examples
///
/// ```
/// use omislice_analysis::cfg::Cfg;
/// use omislice_lang::compile;
///
/// let program = compile("fn main() { if 1 < 2 { print(1); } print(2); }")?;
/// let cfg = Cfg::build(&program, "main").unwrap();
/// // entry, exit, branch, two prints
/// assert_eq!(cfg.node_count(), 5);
/// # Ok::<(), omislice_lang::FrontendError>(())
/// ```
#[derive(Debug, Clone)]
pub struct Cfg {
    func: String,
    nodes: Vec<Node>,
    entry: NodeId,
    exit: NodeId,
    stmt_nodes: HashMap<StmtId, NodeId>,
}

impl Cfg {
    /// Builds the CFG of function `func` in `program`.
    ///
    /// Returns `None` if the function does not exist.
    pub fn build(program: &Program, func: &str) -> Option<Cfg> {
        let decl = program.function(func)?;
        Some(Builder::new(func).run(decl))
    }

    /// Builds CFGs for every function, keyed by name.
    pub fn build_all(program: &Program) -> HashMap<String, Cfg> {
        program
            .functions()
            .map(|f| (f.name.clone(), Builder::new(&f.name).run(f)))
            .collect()
    }

    /// The function this graph belongs to.
    pub fn func(&self) -> &str {
        &self.func
    }

    /// Synthetic entry node.
    pub fn entry(&self) -> NodeId {
        self.entry
    }

    /// Synthetic exit node.
    pub fn exit(&self) -> NodeId {
        self.exit
    }

    /// Number of nodes (including entry/exit).
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// What node `id` represents.
    pub fn kind(&self, id: NodeId) -> NodeKind {
        self.nodes[id.index()].kind
    }

    /// Outgoing edges of `id`.
    pub fn succs(&self, id: NodeId) -> &[Edge] {
        &self.nodes[id.index()].succs
    }

    /// Predecessor nodes of `id`.
    pub fn preds(&self, id: NodeId) -> &[NodeId] {
        &self.nodes[id.index()].preds
    }

    /// The node carrying statement `stmt`, if it is in this function.
    pub fn node_of(&self, stmt: StmtId) -> Option<NodeId> {
        self.stmt_nodes.get(&stmt).copied()
    }

    /// Iterates over all node ids.
    pub fn node_ids(&self) -> impl Iterator<Item = NodeId> {
        (0..self.nodes.len() as u32).map(NodeId)
    }

    /// Iterates over all edges as `(from, edge)` pairs.
    pub fn edges(&self) -> impl Iterator<Item = (NodeId, Edge)> + '_ {
        self.node_ids()
            .flat_map(move |n| self.succs(n).iter().map(move |&e| (n, e)))
    }

    /// Renders the graph in Graphviz DOT form, labelling statement nodes
    /// with `labels` (typically the statement heads from a
    /// [`ProgramIndex`](omislice_lang::ProgramIndex)); branch edges carry
    /// their outcome.
    pub fn to_dot(&self, labels: impl Fn(StmtId) -> String) -> String {
        use std::fmt::Write as _;
        let mut out = format!(
            "digraph cfg_{} {{\n  node [shape=box, fontsize=10];\n",
            self.func
        );
        for n in self.node_ids() {
            let label = match self.kind(n) {
                NodeKind::Entry => "ENTRY".to_string(),
                NodeKind::Exit => "EXIT".to_string(),
                NodeKind::Stmt(s) | NodeKind::Branch(s) => {
                    let text = labels(s).replace('\\', "\\\\").replace('"', "\\\"");
                    format!("{s} {text}")
                }
            };
            let _ = writeln!(out, "  n{} [label=\"{label}\"];", n.0);
        }
        for (from, e) in self.edges() {
            match e.label {
                Some(b) => {
                    let _ = writeln!(out, "  n{} -> n{} [label=\"{b}\"];", from.0, e.to.0);
                }
                None => {
                    let _ = writeln!(out, "  n{} -> n{};", from.0, e.to.0);
                }
            }
        }
        out.push_str("}\n");
        out
    }
}

struct Builder {
    func: String,
    nodes: Vec<Node>,
    stmt_nodes: HashMap<StmtId, NodeId>,
}

/// Targets for `break`/`continue`/fallthrough while building a block.
#[derive(Clone, Copy)]
struct LoopCtx {
    /// Where `continue` goes (the loop head).
    head: NodeId,
    /// Where `break` goes (the statement after the loop).
    after: NodeId,
}

impl Builder {
    fn new(func: &str) -> Self {
        Builder {
            func: func.to_string(),
            nodes: Vec::new(),
            stmt_nodes: HashMap::new(),
        }
    }

    fn add(&mut self, kind: NodeKind) -> NodeId {
        let id = NodeId(self.nodes.len() as u32);
        self.nodes.push(Node {
            kind,
            succs: Vec::new(),
            preds: Vec::new(),
        });
        if let Some(s) = kind.stmt() {
            self.stmt_nodes.insert(s, id);
        }
        id
    }

    fn edge(&mut self, from: NodeId, to: NodeId, label: Option<bool>) {
        self.nodes[from.index()].succs.push(Edge { to, label });
        self.nodes[to.index()].preds.push(from);
    }

    fn run(mut self, decl: &FnDecl) -> Cfg {
        let entry = self.add(NodeKind::Entry);
        let exit = self.add(NodeKind::Exit);
        let body_entry = self.block(&decl.body, exit, exit, None);
        self.edge(entry, body_entry, None);
        Cfg {
            func: self.func,
            nodes: self.nodes,
            entry,
            exit,
            stmt_nodes: self.stmt_nodes,
        }
    }

    /// Builds nodes for `block`; control falls through to `follow`.
    /// Returns the block's entry node (or `follow` when empty).
    fn block(
        &mut self,
        block: &Block,
        follow: NodeId,
        exit: NodeId,
        loop_ctx: Option<LoopCtx>,
    ) -> NodeId {
        let mut next = follow;
        for stmt in block.stmts.iter().rev() {
            next = self.stmt(stmt, next, exit, loop_ctx);
        }
        next
    }

    fn stmt(
        &mut self,
        stmt: &Stmt,
        follow: NodeId,
        exit: NodeId,
        loop_ctx: Option<LoopCtx>,
    ) -> NodeId {
        match &stmt.kind {
            StmtKind::If {
                then_blk, else_blk, ..
            } => {
                let node = self.add(NodeKind::Branch(stmt.id));
                let then_entry = self.block(then_blk, follow, exit, loop_ctx);
                let else_entry = match else_blk {
                    Some(b) => self.block(b, follow, exit, loop_ctx),
                    None => follow,
                };
                self.edge(node, then_entry, Some(true));
                self.edge(node, else_entry, Some(false));
                node
            }
            StmtKind::While { body, .. } => {
                let head = self.add(NodeKind::Branch(stmt.id));
                let ctx = LoopCtx {
                    head,
                    after: follow,
                };
                let body_entry = self.block(body, head, exit, Some(ctx));
                self.edge(head, body_entry, Some(true));
                self.edge(head, follow, Some(false));
                head
            }
            StmtKind::Break => {
                let node = self.add(NodeKind::Stmt(stmt.id));
                let target = loop_ctx.expect("checker rejects break outside loop").after;
                self.edge(node, target, None);
                node
            }
            StmtKind::Continue => {
                let node = self.add(NodeKind::Stmt(stmt.id));
                let target = loop_ctx
                    .expect("checker rejects continue outside loop")
                    .head;
                self.edge(node, target, None);
                node
            }
            StmtKind::Return(_) => {
                let node = self.add(NodeKind::Stmt(stmt.id));
                self.edge(node, exit, None);
                node
            }
            _ => {
                let node = self.add(NodeKind::Stmt(stmt.id));
                self.edge(node, follow, None);
                node
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use omislice_lang::compile;

    fn cfg(src: &str) -> Cfg {
        Cfg::build(&compile(src).unwrap(), "main").unwrap()
    }

    fn succ_stmts(cfg: &Cfg, stmt: StmtId) -> Vec<(Option<StmtId>, Option<bool>)> {
        let n = cfg.node_of(stmt).unwrap();
        cfg.succs(n)
            .iter()
            .map(|e| (cfg.kind(e.to).stmt(), e.label))
            .collect()
    }

    #[test]
    fn straight_line_chains() {
        let c = cfg("fn main() { let a = 1; let b = 2; print(b); }");
        assert_eq!(succ_stmts(&c, StmtId(0)), vec![(Some(StmtId(1)), None)]);
        assert_eq!(succ_stmts(&c, StmtId(1)), vec![(Some(StmtId(2)), None)]);
        // Last statement flows to exit.
        let n = c.node_of(StmtId(2)).unwrap();
        assert_eq!(c.succs(n)[0].to, c.exit());
    }

    #[test]
    fn if_without_else_branches_to_join() {
        let c = cfg("fn main() { if true { print(1); } print(2); }");
        let succs = succ_stmts(&c, StmtId(0));
        assert!(succs.contains(&(Some(StmtId(1)), Some(true))));
        assert!(succs.contains(&(Some(StmtId(2)), Some(false))));
        assert_eq!(succ_stmts(&c, StmtId(1)), vec![(Some(StmtId(2)), None)]);
    }

    #[test]
    fn if_else_both_reach_join() {
        let c = cfg("fn main() { if true { print(1); } else { print(2); } print(3); }");
        let succs = succ_stmts(&c, StmtId(0));
        assert!(succs.contains(&(Some(StmtId(1)), Some(true))));
        assert!(succs.contains(&(Some(StmtId(2)), Some(false))));
        assert_eq!(succ_stmts(&c, StmtId(1)), vec![(Some(StmtId(3)), None)]);
        assert_eq!(succ_stmts(&c, StmtId(2)), vec![(Some(StmtId(3)), None)]);
    }

    #[test]
    fn while_loops_back() {
        let c = cfg("fn main() { while true { print(1); } print(2); }");
        let succs = succ_stmts(&c, StmtId(0));
        assert!(succs.contains(&(Some(StmtId(1)), Some(true))));
        assert!(succs.contains(&(Some(StmtId(2)), Some(false))));
        // Body loops back to head.
        assert_eq!(succ_stmts(&c, StmtId(1)), vec![(Some(StmtId(0)), None)]);
    }

    #[test]
    fn break_exits_loop() {
        let c = cfg("fn main() { while true { break; print(1); } print(2); }");
        assert_eq!(succ_stmts(&c, StmtId(1)), vec![(Some(StmtId(3)), None)]);
    }

    #[test]
    fn continue_returns_to_head() {
        let c = cfg("fn main() { while true { continue; } }");
        assert_eq!(succ_stmts(&c, StmtId(1)), vec![(Some(StmtId(0)), None)]);
    }

    #[test]
    fn return_goes_to_exit() {
        let c = cfg("fn main() { if true { return; } print(1); }");
        let n = c.node_of(StmtId(1)).unwrap();
        assert_eq!(c.succs(n)[0].to, c.exit());
    }

    #[test]
    fn nested_loop_break_targets_inner() {
        let c = cfg("fn main() { while true { while false { break; } print(1); } print(2); }");
        // Inner break jumps to print(1), not print(2).
        assert_eq!(succ_stmts(&c, StmtId(2)), vec![(Some(StmtId(3)), None)]);
    }

    #[test]
    fn preds_are_symmetric_with_succs() {
        let c = cfg("fn main() { if 1 < 2 { print(1); } else { print(2); } print(3); }");
        for n in c.node_ids() {
            for e in c.succs(n) {
                assert!(
                    c.preds(e.to).contains(&n),
                    "missing pred edge {n}->{}",
                    e.to
                );
            }
            for &p in c.preds(n) {
                assert!(c.succs(p).iter().any(|e| e.to == n));
            }
        }
    }

    #[test]
    fn empty_function_links_entry_to_exit() {
        let c = cfg("fn main() { }");
        assert_eq!(c.node_count(), 2);
        assert_eq!(c.succs(c.entry())[0].to, c.exit());
    }

    #[test]
    fn build_all_covers_every_function() {
        let p = compile("fn f() { } fn main() { f(); }").unwrap();
        let all = Cfg::build_all(&p);
        assert_eq!(all.len(), 2);
        assert!(all.contains_key("f") && all.contains_key("main"));
    }

    #[test]
    fn build_missing_function_is_none() {
        let p = compile("fn main() { }").unwrap();
        assert!(Cfg::build(&p, "ghost").is_none());
    }

    #[test]
    fn to_dot_renders_nodes_and_labeled_edges() {
        let p = compile("fn main() { if true { print(1); } print(2); }").unwrap();
        let idx = omislice_lang::ProgramIndex::build(&p);
        let c = Cfg::build(&p, "main").unwrap();
        let dot = c.to_dot(|s| idx.stmt(s).head.clone());
        assert!(dot.starts_with("digraph cfg_main {"));
        assert!(dot.contains("ENTRY") && dot.contains("EXIT"));
        assert!(dot.contains("if true"));
        assert!(dot.contains("[label=\"true\"]"));
        assert!(dot.contains("[label=\"false\"]"));
        assert!(dot.ends_with("}\n"));
    }

    #[test]
    fn edges_iterator_counts() {
        let c = cfg("fn main() { if true { print(1); } print(2); }");
        // entry->branch, branch->print1(T), branch->print2(F),
        // print1->print2, print2->exit
        assert_eq!(c.edges().count(), 5);
    }
}
