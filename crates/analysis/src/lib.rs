//! # omislice-analysis
//!
//! Static analyses over [`omislice-lang`](omislice_lang) programs:
//! control-flow graphs, dominance and post-dominance, control dependence,
//! interprocedural MOD summaries, reaching definitions, and the static
//! part of *potential dependence* (Definition 1 of the PLDI 2007 paper).
//!
//! These play the role of the paper's diablo-based static component. The
//! umbrella type [`ProgramAnalysis`] bundles everything downstream crates
//! need (the tracing interpreter consumes per-statement control-dependence
//! parents; relevant slicing consumes potential dependences).
//!
//! ```
//! use omislice_analysis::ProgramAnalysis;
//! use omislice_lang::{compile, StmtId};
//!
//! let program = compile(
//!     "global x = 0; fn main() { if input() > 0 { x = 1; } print(x); }",
//! )?;
//! let analysis = ProgramAnalysis::build(&program);
//! // `x = 1` is control dependent on the `if`.
//! assert_eq!(analysis.cd_parents(StmtId(1))[0].pred, StmtId(0));
//! # Ok::<(), omislice_lang::FrontendError>(())
//! ```

pub mod bitset;
pub mod cfg;
pub mod ctrl_dep;
pub mod dom;
pub mod modref;
pub mod potential;
pub mod reach;

pub use cfg::{Cfg, NodeId, NodeKind};
pub use ctrl_dep::{CdParent, ControlDeps};
pub use dom::{dominators, post_dominators, DomSets};
pub use modref::ModSummaries;
pub use potential::{PdMode, PotentialDeps};
pub use reach::{DefId, DefSite, ReachingDefs};

use omislice_lang::{Program, ProgramIndex, StmtId, VarId};
use std::collections::HashMap;

/// All static analysis results for one program.
#[derive(Debug, Clone)]
pub struct ProgramAnalysis {
    index: ProgramIndex,
    cfgs: HashMap<String, Cfg>,
    cds: HashMap<String, ControlDeps>,
    mods: ModSummaries,
    potential: PotentialDeps,
    /// Flattened statement-level CD parents (StmtIds are program-unique).
    cd_by_stmt: HashMap<StmtId, Vec<CdParent>>,
}

impl ProgramAnalysis {
    /// Runs every analysis on a checked program (with the default
    /// intraprocedural potential-dependence reach).
    pub fn build(program: &Program) -> Self {
        Self::build_with(program, potential::PdMode::default())
    }

    /// Runs every analysis with an explicit potential-dependence mode.
    pub fn build_with(program: &Program, pd_mode: potential::PdMode) -> Self {
        let _span = omislice_obs::span("analyze");
        let index = ProgramIndex::build(program);
        let cfgs = Cfg::build_all(program);
        let cds: HashMap<String, ControlDeps> = cfgs
            .iter()
            .map(|(name, cfg)| (name.clone(), ControlDeps::compute(cfg)))
            .collect();
        let mods = ModSummaries::compute(&index);
        let potential = PotentialDeps::compute_with(program, &index, &cfgs, &cds, &mods, pd_mode);
        let mut cd_by_stmt: HashMap<StmtId, Vec<CdParent>> = HashMap::new();
        for info in index.stmts() {
            let parents = cds[&info.func].parents(info.id).to_vec();
            cd_by_stmt.insert(info.id, parents);
        }
        ProgramAnalysis {
            index,
            cfgs,
            cds,
            mods,
            potential,
            cd_by_stmt,
        }
    }

    /// The def/use index the analyses were computed against.
    pub fn index(&self) -> &ProgramIndex {
        &self.index
    }

    /// The CFG of `func`, if it exists.
    pub fn cfg(&self, func: &str) -> Option<&Cfg> {
        self.cfgs.get(func)
    }

    /// Control dependences of `func`, if it exists.
    pub fn control_deps(&self, func: &str) -> Option<&ControlDeps> {
        self.cds.get(func)
    }

    /// Immediate static control-dependence parents of a statement.
    pub fn cd_parents(&self, stmt: StmtId) -> &[CdParent] {
        self.cd_by_stmt.get(&stmt).map_or(&[], Vec::as_slice)
    }

    /// Whether `stmt` transitively statically depends on `pred` (in the
    /// same function).
    pub fn cd_depends_on(&self, stmt: StmtId, pred: StmtId) -> bool {
        let func = &self.index.stmt(stmt).func;
        self.cds
            .get(func)
            .is_some_and(|cd| cd.depends_on(stmt, pred))
    }

    /// MOD summaries.
    pub fn mods(&self) -> &ModSummaries {
        &self.mods
    }

    /// The static potential-dependence relation.
    pub fn potential(&self) -> &PotentialDeps {
        &self.potential
    }

    /// Shorthand for [`PotentialDeps::static_pd`].
    pub fn static_pd(&self, stmt: StmtId, var: VarId) -> &[CdParent] {
        self.potential.static_pd(stmt, var)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use omislice_lang::compile;

    #[test]
    fn umbrella_builds_and_answers_queries() {
        let p = compile("global x = 0; fn main() { if input() > 0 { x = 1; } print(x); }").unwrap();
        let a = ProgramAnalysis::build(&p);
        assert!(a.cfg("main").is_some());
        assert!(a.cfg("ghost").is_none());
        assert!(a.control_deps("main").is_some());
        assert_eq!(a.cd_parents(StmtId(1)).len(), 1);
        assert!(a.cd_parents(StmtId(0)).is_empty());
        assert!(a.cd_depends_on(StmtId(1), StmtId(0)));
        let x = a.index().vars().global("x").unwrap();
        assert_eq!(a.static_pd(StmtId(2), x).len(), 1);
    }

    #[test]
    fn cd_parents_cover_all_functions() {
        let p =
            compile("fn helper(n) { if n > 0 { print(n); } } fn main() { helper(3); }").unwrap();
        let a = ProgramAnalysis::build(&p);
        // print(n) in helper is CD on the if in helper.
        assert_eq!(a.cd_parents(StmtId(1)).len(), 1);
        assert_eq!(a.cd_parents(StmtId(1))[0].pred, StmtId(0));
    }
}
