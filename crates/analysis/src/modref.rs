//! Interprocedural MOD summaries.
//!
//! For each function, the set of *global* variables (scalars and arrays)
//! it may write, directly or through callees. These summaries stand in for
//! the paper's points-to facts when modelling calls in reaching-definition
//! and potential-dependence analysis: a call site conservatively acts as a
//! weak definition of everything in the callee's MOD set.

use omislice_lang::{ProgramIndex, VarId};
use std::collections::{HashMap, HashSet};

/// MOD sets for every function of a program.
#[derive(Debug, Clone)]
pub struct ModSummaries {
    per_fn: HashMap<String, HashSet<VarId>>,
}

impl ModSummaries {
    /// Computes MOD sets with a fixpoint over the call graph (handles
    /// recursion and mutual recursion).
    pub fn compute(index: &ProgramIndex) -> Self {
        let mut direct: HashMap<String, HashSet<VarId>> = HashMap::new();
        let mut calls: HashMap<String, HashSet<String>> = HashMap::new();
        for info in index.stmts() {
            let entry = direct.entry(info.func.clone()).or_default();
            if let Some(v) = info.def {
                if index.vars().is_global(v) {
                    entry.insert(v);
                }
            }
            calls
                .entry(info.func.clone())
                .or_default()
                .extend(info.calls.iter().cloned());
        }
        // Ensure every function appears even if it has no statements.
        for info in index.stmts() {
            direct.entry(info.func.clone()).or_default();
        }

        let mut changed = true;
        while changed {
            changed = false;
            let snapshot: Vec<(String, HashSet<String>)> = calls
                .iter()
                .map(|(f, cs)| (f.clone(), cs.clone()))
                .collect();
            for (f, callees) in snapshot {
                for callee in callees {
                    let callee_mods: Vec<VarId> = direct
                        .get(&callee)
                        .map(|s| s.iter().copied().collect())
                        .unwrap_or_default();
                    let entry = direct.entry(f.clone()).or_default();
                    for v in callee_mods {
                        changed |= entry.insert(v);
                    }
                }
            }
        }
        ModSummaries { per_fn: direct }
    }

    /// Globals function `func` may write (directly or transitively).
    pub fn mods(&self, func: &str) -> impl Iterator<Item = VarId> + '_ {
        self.per_fn
            .get(func)
            .into_iter()
            .flat_map(|s| s.iter().copied())
    }

    /// Whether `func` may write global `var`.
    pub fn may_write(&self, func: &str, var: VarId) -> bool {
        self.per_fn.get(func).is_some_and(|s| s.contains(&var))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use omislice_lang::{compile, ProgramIndex};

    fn summaries(src: &str) -> (ModSummaries, ProgramIndex) {
        let p = compile(src).unwrap();
        let idx = ProgramIndex::build(&p);
        (ModSummaries::compute(&idx), idx)
    }

    #[test]
    fn direct_global_write() {
        let (m, idx) = summaries("global g = 0; fn f() { g = 1; } fn main() { f(); }");
        let g = idx.vars().global("g").unwrap();
        assert!(m.may_write("f", g));
        assert!(m.may_write("main", g), "MOD propagates to callers");
    }

    #[test]
    fn locals_do_not_escape() {
        let (m, _) = summaries("fn f() { let x = 1; } fn main() { f(); }");
        assert_eq!(m.mods("f").count(), 0);
        assert_eq!(m.mods("main").count(), 0);
    }

    #[test]
    fn array_store_counts_as_mod() {
        let (m, idx) = summaries("global buf = [0; 4]; fn f() { buf[0] = 1; } fn main() { f(); }");
        let buf = idx.vars().global("buf").unwrap();
        assert!(m.may_write("f", buf));
        assert!(m.may_write("main", buf));
    }

    #[test]
    fn transitive_chain_of_calls() {
        let (m, idx) = summaries(
            "global g = 0; fn c() { g = 1; } fn b() { c(); } fn a() { b(); } fn main() { a(); }",
        );
        let g = idx.vars().global("g").unwrap();
        for f in ["a", "b", "c", "main"] {
            assert!(m.may_write(f, g), "{f} should MOD g");
        }
    }

    #[test]
    fn recursion_reaches_fixpoint() {
        let (m, idx) = summaries(
            "global g = 0; fn f(n) { if n > 0 { f(n - 1); g = n; } } fn main() { f(3); }",
        );
        let g = idx.vars().global("g").unwrap();
        assert!(m.may_write("f", g));
        assert!(m.may_write("main", g));
    }

    #[test]
    fn mutual_recursion_reaches_fixpoint() {
        let (m, idx) = summaries(
            "global g = 0; fn even(n) { if n > 0 { odd(n - 1); } } \
             fn odd(n) { if n > 0 { even(n - 1); } g = 1; } fn main() { even(4); }",
        );
        let g = idx.vars().global("g").unwrap();
        assert!(m.may_write("even", g));
        assert!(m.may_write("odd", g));
        assert!(m.may_write("main", g));
    }

    #[test]
    fn unrelated_function_is_clean() {
        let (m, idx) = summaries(
            "global g = 0; fn dirty() { g = 1; } fn clean() { let x = 2; } fn main() { clean(); }",
        );
        let g = idx.vars().global("g").unwrap();
        assert!(!m.may_write("clean", g));
        assert!(!m.may_write("main", g));
        assert!(m.may_write("dirty", g));
    }

    #[test]
    fn calls_in_expressions_propagate() {
        let (m, idx) =
            summaries("global g = 0; fn f() { g = 1; return 2; } fn main() { let x = f() + 1; }");
        let g = idx.vars().global("g").unwrap();
        assert!(m.may_write("main", g));
    }
}
