//! Static component of *potential dependence* (Definition 1 of the paper).
//!
//! A use `u` of variable `v` *potentially depends* on predicate `p` with
//! outcome β iff flipping `p` to β could execute a definition of `v` that
//! reaches `u`. This module computes the static, path-insensitive part:
//!
//! > `(p, β) ∈ PD_static(u, v)` iff some definition site `d` of `v` is
//! > transitively control dependent on `(p, β)` and `d` reaches `u`'s
//! > program point per reaching-definition analysis.
//!
//! The paper's remaining conditions are evaluated against the dynamic
//! trace by the slicing crate: (i) the instance of `p` executes before
//! `u`, (ii) `u` is not control dependent on `p`, (iii) the definition
//! actually reaching `u` occurs before `p`, and the runtime branch of `p`
//! must be the *opposite* of β.
//!
//! Exactly like the paper's static points-to-based computation, this is
//! conservative — it is the source of the false dependences (e.g. S7→S9
//! in Figure 1) that relevant slicing suffers from and that implicit-
//! dependence verification eliminates.

use crate::cfg::Cfg;
use crate::ctrl_dep::{CdParent, ControlDeps};
use crate::modref::ModSummaries;
use crate::reach::{DefSite, ReachingDefs};
use omislice_lang::{Program, ProgramIndex, StmtId, VarId};
use std::collections::HashMap;

/// How far the static component of potential dependence reaches.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum PdMode {
    /// Predicates of the use's own function only; a definition performed
    /// by a callee contributes the predicates controlling the *call*.
    /// This is the default and what the evaluation uses.
    #[default]
    Intraprocedural,
    /// Additionally include the predicates *inside* callees (and their
    /// callees, via a call-graph fixpoint) that guard definitions of the
    /// variable — lifting the documented intraprocedural limitation at
    /// the cost of more candidates to verify.
    InterproceduralGuards,
}

/// The static potential-dependence relation for a whole program.
#[derive(Debug, Clone)]
pub struct PotentialDeps {
    map: HashMap<(StmtId, VarId), Vec<CdParent>>,
}

/// For each function, the predicates (with branch) inside it — or inside
/// its callees — that guard a definition of each global. The fixpoint
/// mirrors [`ModSummaries`].
fn internal_guards(
    program: &Program,
    index: &ProgramIndex,
    cds: &HashMap<String, ControlDeps>,
) -> HashMap<(String, VarId), Vec<CdParent>> {
    let mut out: HashMap<(String, VarId), Vec<CdParent>> = HashMap::new();
    // Direct: defs of globals under predicates of their own function.
    for info in index.stmts() {
        if let Some(var) = info.def {
            if index.vars().is_global(var) {
                let entry = out.entry((info.func.clone(), var)).or_default();
                entry.extend(cds[&info.func].ancestors(info.id));
            }
        }
    }
    // Transitive: a call inherits the callee's internal guards, plus the
    // predicates controlling the call itself.
    let mut changed = true;
    while changed {
        changed = false;
        for info in index.stmts() {
            for callee in &info.calls {
                let inherited: Vec<(VarId, Vec<CdParent>)> = out
                    .iter()
                    .filter(|((f, _), _)| f == callee)
                    .map(|((_, v), ps)| (*v, ps.clone()))
                    .collect();
                let call_guards: Vec<CdParent> =
                    cds[&info.func].ancestors(info.id).into_iter().collect();
                for (var, mut parents) in inherited {
                    parents.extend(call_guards.iter().copied());
                    let entry = out.entry((info.func.clone(), var)).or_default();
                    for p in parents {
                        if !entry.contains(&p) {
                            entry.push(p);
                            changed = true;
                        }
                    }
                }
            }
        }
    }
    let _ = program;
    for v in out.values_mut() {
        v.sort();
        v.dedup();
    }
    out
}

impl PotentialDeps {
    /// Computes `PD_static` for every (statement, used-variable) pair,
    /// with the default [`PdMode::Intraprocedural`] reach.
    pub fn compute(
        program: &Program,
        index: &ProgramIndex,
        cfgs: &HashMap<String, Cfg>,
        cds: &HashMap<String, ControlDeps>,
        mods: &ModSummaries,
    ) -> Self {
        Self::compute_with(program, index, cfgs, cds, mods, PdMode::default())
    }

    /// Computes `PD_static` with an explicit [`PdMode`].
    pub fn compute_with(
        program: &Program,
        index: &ProgramIndex,
        cfgs: &HashMap<String, Cfg>,
        cds: &HashMap<String, ControlDeps>,
        mods: &ModSummaries,
        mode: PdMode,
    ) -> Self {
        let guards = match mode {
            PdMode::Intraprocedural => HashMap::new(),
            PdMode::InterproceduralGuards => internal_guards(program, index, cds),
        };
        let mut map: HashMap<(StmtId, VarId), Vec<CdParent>> = HashMap::new();
        for f in program.functions() {
            let cfg = &cfgs[&f.name];
            let cd = &cds[&f.name];
            let rd = ReachingDefs::compute(cfg, index, mods);
            for info in index.stmts().iter().filter(|s| s.func == f.name) {
                for &var in &info.uses {
                    let key = (info.id, var);
                    if map.contains_key(&key) {
                        continue;
                    }
                    let mut parents: Vec<CdParent> = Vec::new();
                    for def in rd.reaching(info.id, var) {
                        let Some(def_stmt) = def.stmt() else {
                            continue; // boundary defs are uncontrolled
                        };
                        parents.extend(cd.ancestors(def_stmt));
                        // Interprocedural mode: a call-performed def also
                        // contributes the callee's internal guards.
                        if mode == PdMode::InterproceduralGuards {
                            if let DefSite::CallMod { stmt, .. } = def {
                                for callee in &index.stmt(stmt).calls {
                                    if let Some(ps) = guards.get(&(callee.clone(), var)) {
                                        parents.extend(ps.iter().copied());
                                    }
                                }
                            }
                        }
                    }
                    parents.sort();
                    parents.dedup();
                    map.insert(key, parents);
                }
            }
        }
        PotentialDeps { map }
    }

    /// Predicates (with the branch that would execute a relevant
    /// definition) that the use of `var` at `stmt` potentially depends on.
    pub fn static_pd(&self, stmt: StmtId, var: VarId) -> &[CdParent] {
        self.map.get(&(stmt, var)).map_or(&[], Vec::as_slice)
    }

    /// Iterates over all `(stmt, var)` keys with non-empty PD sets.
    pub fn iter(&self) -> impl Iterator<Item = ((StmtId, VarId), &[CdParent])> {
        self.map
            .iter()
            .filter(|(_, v)| !v.is_empty())
            .map(|(&k, v)| (k, v.as_slice()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use omislice_lang::compile;

    fn potential(src: &str) -> (PotentialDeps, ProgramIndex) {
        let p = compile(src).unwrap();
        let idx = ProgramIndex::build(&p);
        let cfgs = Cfg::build_all(&p);
        let cds = cfgs
            .iter()
            .map(|(k, c)| (k.clone(), ControlDeps::compute(c)))
            .collect();
        let mods = ModSummaries::compute(&idx);
        let pd = PotentialDeps::compute(&p, &idx, &cfgs, &cds, &mods);
        (pd, idx)
    }

    #[test]
    fn figure1_shape_use_depends_on_untaken_guard() {
        // Miniature of the paper's Figure 1: flags is defined at S0,
        // conditionally redefined under the guard, and printed at the end.
        let (pd, idx) = potential(
            "global flags = 0; global save = 0; fn main() {\
               flags = 1;\
               if save == 1 { flags = 2; }\
               print(flags);\
             }",
        );
        let flags = idx.vars().global("flags").unwrap();
        // Statement ids: 0 flags=1; 1 if; 2 flags=2; 3 print.
        let parents = pd.static_pd(StmtId(3), flags);
        assert_eq!(
            parents,
            &[CdParent {
                pred: StmtId(1),
                branch: true
            }]
        );
    }

    #[test]
    fn killed_definition_is_excluded() {
        // The paper's condition-(iii) illustration: when a later strong
        // definition kills everything from the branch, the use does not
        // potentially depend on the predicate.
        let (pd, idx) = potential(
            "global x = 0; fn main() {\
               if 1 > 2 { x = 1; }\
               x = 2;\
               print(x);\
             }",
        );
        let x = idx.vars().global("x").unwrap();
        assert!(pd.static_pd(StmtId(3), x).is_empty());
    }

    #[test]
    fn nested_predicates_both_appear() {
        let (pd, idx) = potential(
            "global x = 0; fn main() {\
               if 1 > 2 { if 2 > 3 { x = 1; } }\
               print(x);\
             }",
        );
        let x = idx.vars().global("x").unwrap();
        let parents = pd.static_pd(StmtId(3), x);
        assert!(parents.contains(&CdParent {
            pred: StmtId(0),
            branch: true
        }));
        assert!(parents.contains(&CdParent {
            pred: StmtId(1),
            branch: true
        }));
    }

    #[test]
    fn array_use_depends_on_conditional_store() {
        // Figure 1's outbuf case: a conditional store into the array makes
        // later array reads potentially dependent on the guard.
        let (pd, idx) = potential(
            "global buf = [0; 4]; global c = 0; fn main() {\
               buf[0] = 1;\
               if c == 1 { buf[1] = 7; }\
               print(buf[1]);\
             }",
        );
        let buf = idx.vars().global("buf").unwrap();
        let parents = pd.static_pd(StmtId(3), buf);
        assert!(parents.contains(&CdParent {
            pred: StmtId(1),
            branch: true
        }));
    }

    #[test]
    fn unconditional_def_gives_no_pd() {
        let (pd, idx) = potential("global x = 0; fn main() { x = 1; print(x); }");
        let x = idx.vars().global("x").unwrap();
        assert!(pd.static_pd(StmtId(1), x).is_empty());
    }

    #[test]
    fn call_under_predicate_yields_pd_through_mod() {
        let (pd, idx) = potential(
            "global g = 0; fn f() { g = 5; } fn main() {\
               g = 1;\
               if 1 > 2 { f(); }\
               print(g);\
             }",
        );
        let g = idx.vars().global("g").unwrap();
        let parents = pd.static_pd(StmtId(4), g);
        assert!(parents.contains(&CdParent {
            pred: StmtId(2),
            branch: true
        }));
    }

    #[test]
    fn loop_body_definition_creates_pd_on_loop_head() {
        let (pd, idx) = potential(
            "global x = 0; fn main() {\
               let i = input();\
               while i > 0 { x = i; i = i - 1; }\
               print(x);\
             }",
        );
        let x = idx.vars().global("x").unwrap();
        let parents = pd.static_pd(StmtId(4), x);
        assert!(parents.contains(&CdParent {
            pred: StmtId(1),
            branch: true
        }));
    }

    #[test]
    fn interprocedural_mode_sees_callee_guards() {
        // The guard lives inside the callee: intraprocedural PD only sees
        // predicates controlling the *call*; the interprocedural mode
        // also surfaces the callee's internal guard.
        let src = "\
            global g = 0; global c = 0;\
            fn update() { if c == 1 { g = 5; } }\
            fn main() {\
                c = input();\
                g = 1;\
                update();\
                print(g);\
            }";
        let p = compile(src).unwrap();
        let idx = ProgramIndex::build(&p);
        let cfgs = Cfg::build_all(&p);
        let cds: HashMap<String, ControlDeps> = cfgs
            .iter()
            .map(|(k, c)| (k.clone(), ControlDeps::compute(c)))
            .collect();
        let mods = ModSummaries::compute(&idx);
        let g = idx.vars().global("g").unwrap();
        // Statements: S0 `if c==1` S1 `g=5` S2 `c=input` S3 `g=1`
        // S4 `update();` S5 `print(g)`.
        let intra =
            PotentialDeps::compute_with(&p, &idx, &cfgs, &cds, &mods, PdMode::Intraprocedural);
        assert!(
            intra.static_pd(StmtId(5), g).is_empty(),
            "the unguarded call contributes nothing intraprocedurally"
        );
        let inter = PotentialDeps::compute_with(
            &p,
            &idx,
            &cfgs,
            &cds,
            &mods,
            PdMode::InterproceduralGuards,
        );
        assert!(inter.static_pd(StmtId(5), g).contains(&CdParent {
            pred: StmtId(0),
            branch: true
        }));
    }

    #[test]
    fn interprocedural_mode_crosses_nested_calls() {
        let src = "\
            global g = 0; global c = 0;\
            fn inner() { if c == 1 { g = 5; } }\
            fn outer() { inner(); }\
            fn main() { c = input(); g = 1; outer(); print(g); }";
        let p = compile(src).unwrap();
        let idx = ProgramIndex::build(&p);
        let cfgs = Cfg::build_all(&p);
        let cds: HashMap<String, ControlDeps> = cfgs
            .iter()
            .map(|(k, c)| (k.clone(), ControlDeps::compute(c)))
            .collect();
        let mods = ModSummaries::compute(&idx);
        let g = idx.vars().global("g").unwrap();
        let inter = PotentialDeps::compute_with(
            &p,
            &idx,
            &cfgs,
            &cds,
            &mods,
            PdMode::InterproceduralGuards,
        );
        // print(g) is the last statement; the inner guard is S0.
        let print_stmt = StmtId(p.stmt_count() - 1);
        assert!(inter.static_pd(print_stmt, g).contains(&CdParent {
            pred: StmtId(0),
            branch: true
        }));
    }

    #[test]
    fn modes_agree_on_single_function_programs() {
        let src = "global x = 0; fn main() { if input() == 1 { x = 1; } print(x); }";
        let p = compile(src).unwrap();
        let idx = ProgramIndex::build(&p);
        let cfgs = Cfg::build_all(&p);
        let cds: HashMap<String, ControlDeps> = cfgs
            .iter()
            .map(|(k, c)| (k.clone(), ControlDeps::compute(c)))
            .collect();
        let mods = ModSummaries::compute(&idx);
        let x = idx.vars().global("x").unwrap();
        let a = PotentialDeps::compute_with(&p, &idx, &cfgs, &cds, &mods, PdMode::Intraprocedural);
        let b = PotentialDeps::compute_with(
            &p,
            &idx,
            &cfgs,
            &cds,
            &mods,
            PdMode::InterproceduralGuards,
        );
        assert_eq!(a.static_pd(StmtId(2), x), b.static_pd(StmtId(2), x));
    }

    #[test]
    fn iter_exposes_nonempty_sets_only() {
        let (pd, _) = potential("global x = 0; fn main() { if 1 > 2 { x = 1; } print(x); }");
        assert!(pd.iter().count() >= 1);
        for (_, parents) in pd.iter() {
            assert!(!parents.is_empty());
        }
    }
}
