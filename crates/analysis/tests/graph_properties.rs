//! Property tests over the static analyses: dominance is a partial
//! order, control dependence relates only predicates, potential
//! dependence candidates are well-formed, and reaching definitions
//! respect variables — all over randomly generated structured programs.

use omislice_analysis::{dominators, post_dominators, Cfg, ControlDeps, ProgramAnalysis};
use omislice_lang::{compile, Program};
use proptest::prelude::*;

// --- tiny structured-program generator ----------------------------------

#[derive(Debug, Clone)]
enum S {
    Assign(usize, usize, i8),
    Print(usize),
    If(usize, Vec<S>, Vec<S>),
    While(u8, Vec<S>),
    Break,
    Ret,
}

const VARS: [&str; 3] = ["a", "b", "c"];

fn stmt_strategy() -> impl Strategy<Value = S> {
    let leaf = prop_oneof![
        ((0usize..3), (0usize..3), any::<i8>()).prop_map(|(d, u, k)| S::Assign(d, u, k)),
        (0usize..3).prop_map(S::Print),
    ];
    leaf.prop_recursive(3, 20, 4, |inner| {
        prop_oneof![
            (
                0usize..3,
                prop::collection::vec(inner.clone(), 1..4),
                prop::collection::vec(inner.clone(), 0..3),
            )
                .prop_map(|(v, t, e)| S::If(v, t, e)),
            ((1u8..4), prop::collection::vec(inner.clone(), 1..4))
                .prop_map(|(k, b)| S::While(k, b)),
            Just(S::Break),
            Just(S::Ret),
        ]
    })
}

fn render(stmts: &[S], out: &mut String, counter: &mut usize, in_loop: bool) {
    for s in stmts {
        match s {
            S::Assign(d, u, k) => {
                out.push_str(&format!("{} = {} + {};\n", VARS[*d], VARS[*u], k));
            }
            S::Print(v) => out.push_str(&format!("print({});\n", VARS[*v])),
            S::If(v, t, e) => {
                out.push_str(&format!("if {} > 0 {{\n", VARS[*v]));
                render(t, out, counter, in_loop);
                if e.is_empty() {
                    out.push_str("}\n");
                } else {
                    out.push_str("} else {\n");
                    render(e, out, counter, in_loop);
                    out.push_str("}\n");
                }
            }
            S::While(k, b) => {
                let c = *counter;
                *counter += 1;
                out.push_str(&format!("let w{c} = 0;\nwhile w{c} < {k} {{\n"));
                render(b, out, counter, true);
                out.push_str(&format!("w{c} = w{c} + 1;\n}}\n"));
            }
            S::Break => {
                if in_loop {
                    out.push_str("break;\n");
                }
            }
            S::Ret => out.push_str("return;\n"),
        }
    }
}

fn program_strategy() -> impl Strategy<Value = Program> {
    prop::collection::vec(stmt_strategy(), 1..8).prop_map(|stmts| {
        let mut body = String::new();
        let mut counter = 0;
        render(&stmts, &mut body, &mut counter, false);
        let src = format!("global a = 1; global b = 2; global c = 3;\nfn main() {{\n{body}}}\n");
        compile(&src).unwrap_or_else(|e| panic!("generated program invalid: {e}\n{src}"))
    })
}

// --- properties ----------------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    #[test]
    fn dominance_is_a_partial_order_on_reachable_nodes(program in program_strategy()) {
        let cfg = Cfg::build(&program, "main").expect("main exists");
        let dom = dominators(&cfg);
        // Dominance is only meaningful for nodes reachable from entry;
        // unreachable ones (e.g. code after `return;`) keep the saturated
        // top set by convention.
        let mut reachable = vec![false; cfg.node_count()];
        let mut stack = vec![cfg.entry()];
        while let Some(n) = stack.pop() {
            if std::mem::replace(&mut reachable[n.index()], true) {
                continue;
            }
            stack.extend(cfg.succs(n).iter().map(|e| e.to));
        }
        let nodes: Vec<_> = cfg.node_ids().filter(|n| reachable[n.index()]).collect();
        for &x in &nodes {
            prop_assert!(dom.dominates(x, x), "reflexive");
            prop_assert!(dom.dominates(cfg.entry(), x), "entry dominates all");
            for &y in &nodes {
                if dom.dominates(x, y) && dom.dominates(y, x) {
                    prop_assert_eq!(x, y, "antisymmetric");
                }
                for &z in &nodes {
                    if dom.dominates(x, y) && dom.dominates(y, z) {
                        prop_assert!(dom.dominates(x, z), "transitive");
                    }
                }
            }
        }
    }

    #[test]
    fn postdominance_is_rooted_at_exit(program in program_strategy()) {
        let cfg = Cfg::build(&program, "main").expect("main exists");
        let pdom = post_dominators(&cfg);
        for x in cfg.node_ids() {
            prop_assert!(pdom.dominates(cfg.exit(), x), "exit postdominates all");
            prop_assert!(pdom.dominates(x, x));
        }
    }

    #[test]
    fn immediate_dominators_are_strict_and_dominated(program in program_strategy()) {
        let cfg = Cfg::build(&program, "main").expect("main exists");
        let dom = dominators(&cfg);
        for x in cfg.node_ids() {
            if let Some(idom) = dom.immediate(x) {
                prop_assert!(dom.strictly_dominates(idom, x));
                // Every other strict dominator of x dominates the idom.
                for d in dom.dominators_of(x) {
                    if d != x {
                        prop_assert!(dom.dominates(d, idom));
                    }
                }
            }
        }
    }

    #[test]
    fn control_dependence_parents_are_predicates(program in program_strategy()) {
        let cfg = Cfg::build(&program, "main").expect("main exists");
        let cd = ControlDeps::compute(&cfg);
        let analysis = ProgramAnalysis::build(&program);
        let index = analysis.index();
        let mut all = Vec::new();
        program.visit_stmts(&mut |s| all.push(s.id));
        for stmt in all {
            for parent in cd.parents(stmt) {
                prop_assert!(
                    index.stmt(parent.pred).is_predicate(),
                    "CD parent {:?} of {stmt} is not a predicate",
                    parent
                );
            }
            // parents/children are mutually consistent.
            for parent in cd.parents(stmt) {
                prop_assert!(
                    cd.children(parent.pred, parent.branch).contains(&stmt)
                );
            }
        }
    }

    #[test]
    fn potential_dependence_is_well_formed(program in program_strategy()) {
        let analysis = ProgramAnalysis::build(&program);
        let index = analysis.index();
        for ((use_stmt, var), parents) in analysis.potential().iter() {
            prop_assert!(index.stmt(use_stmt).uses.contains(&var));
            for cp in parents {
                prop_assert!(index.stmt(cp.pred).is_predicate());
            }
        }
    }
}
