//! The verification engine's execution strategy must be invisible in the
//! result: locating a real corpus fault yields the identical
//! [`LocateOutcome`](omislice::LocateOutcome) whether switched runs
//! resume from checkpoints or re-execute from scratch, and for any
//! thread count. This is the contract that lets `--jobs`/`ResumeMode` be
//! pure performance knobs.

use omislice::omislice_interp::ResumeMode;
use omislice::omislice_trace::InstId;
use omislice::{LocateConfig, LocateOutcome};
use omislice_corpus::all_benchmarks;

/// Everything outcome-relevant except wall-clock times.
#[derive(Debug, PartialEq)]
struct Fingerprint {
    found: bool,
    iterations: usize,
    verifications: usize,
    reexecutions: usize,
    user_prunings: usize,
    expanded_edges: usize,
    strong_edges: usize,
    ips: Vec<InstId>,
    full_slice: Vec<InstId>,
    os: Option<Vec<InstId>>,
    wrong_output: InstId,
    cache_hits: usize,
}

fn fingerprint(out: &LocateOutcome) -> Fingerprint {
    Fingerprint {
        found: out.found,
        iterations: out.iterations,
        verifications: out.verifications,
        reexecutions: out.reexecutions,
        user_prunings: out.user_prunings,
        expanded_edges: out.expanded_edges,
        strong_edges: out.strong_edges,
        ips: out.ips.insts().to_vec(),
        full_slice: out.full_slice.insts().to_vec(),
        os: out.os.clone(),
        wrong_output: out.wrong_output,
        cache_hits: out.stats.cache_hits,
    }
}

#[test]
fn corpus_outcomes_identical_across_modes_and_jobs() {
    let benchmarks = all_benchmarks();
    for (bench_name, fault_id) in [("gzip", "V2-F3"), ("sed", "V3-F3")] {
        let b = benchmarks
            .iter()
            .find(|b| b.name == bench_name)
            .expect(bench_name);
        let fault = b.fault(fault_id).expect(fault_id);
        let session = b.session(fault).expect("session builds");
        let mut reference = None;
        for jobs in [1usize, 4] {
            for resume in [ResumeMode::Auto, ResumeMode::Disabled] {
                let out = session
                    .locate(&LocateConfig {
                        jobs,
                        resume,
                        ..LocateConfig::default()
                    })
                    .expect("locates");
                assert!(out.found, "{bench_name} {fault_id}");
                if resume == ResumeMode::Disabled {
                    assert_eq!(out.stats.resumed_runs, 0);
                    assert_eq!(out.stats.steps_saved, 0);
                    assert_eq!(out.stats.capture_runs, 0);
                }
                let fp = fingerprint(&out);
                match &reference {
                    Some(r) => {
                        assert_eq!(*r, fp, "{bench_name} {fault_id} jobs={jobs} {resume:?}")
                    }
                    None => reference = Some(fp),
                }
            }
        }
    }
}
