//! Quick-mode entry point for the differential harness: a fixed seed
//! window that must always pass (the CI smoke gate runs the same sweep
//! through the `diffcheck` binary) plus a proptest that moves the window
//! around so fresh seeds keep entering the pool over time.

use omislice_bench::diffcheck::{run_diffcheck, DiffcheckOptions};
use proptest::prelude::*;

#[test]
fn fixed_seed_window_holds_and_is_deterministic() {
    let opts = DiffcheckOptions {
        seeds: 12,
        start_seed: 0,
        quick: true,
        chaos: false,
    };
    let first = run_diffcheck(&opts);
    assert_eq!(first.failures, Vec::<String>::new());
    assert_eq!(first.cases, 12);
    assert_eq!(first.exposed, 12);
    assert_eq!(first.located, 12);
    assert!(
        first.alignment_probes > 0,
        "alignment oracle must be probed"
    );
    assert!(first.verifier_configs > 0, "verifier configs must be swept");
    assert!(first.journals_compared > 0, "journals must be compared");
    let second = run_diffcheck(&opts);
    assert_eq!(first, second, "same seeds must give identical summaries");
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    #[test]
    fn random_seed_windows_hold(start in 0u64..100_000) {
        let summary = run_diffcheck(&DiffcheckOptions {
            seeds: 2,
            start_seed: start,
            quick: true,
            chaos: false,
        });
        prop_assert_eq!(summary.failures, Vec::<String>::new());
        prop_assert_eq!(summary.located, 2);
    }

    /// The chaos sweep (invariant 7) must hold for arbitrary seeds: a
    /// pipeline that absorbed injected faults produces the same journal
    /// as the clean one, for random programs — not just the fixtures.
    #[test]
    fn random_seeds_survive_chaos(start in 0u64..100_000) {
        let summary = run_diffcheck(&DiffcheckOptions {
            seeds: 1,
            start_seed: start,
            quick: true,
            chaos: true,
        });
        prop_assert_eq!(summary.failures, Vec::<String>::new());
        prop_assert_eq!(summary.chaos_pipelines, 3);
        prop_assert!(summary.chaos_recoveries > 0, "chaos sweep was vacuous");
    }
}
