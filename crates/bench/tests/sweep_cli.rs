//! End-to-end flag validation for the `sweep` binary: malformed values
//! exit 2 with a message naming the flag, never a panic or a silently
//! defaulted run.

use std::process::Command;

fn sweep(args: &[&str]) -> std::process::Output {
    Command::new(env!("CARGO_BIN_EXE_sweep"))
        .args(args)
        .output()
        .expect("binary runs")
}

#[test]
fn malformed_flags_exit_2_with_a_named_message() {
    for (args, expected) in [
        (&["--scales", "x"] as &[&str], "bad --scales `x`"),
        (&["--jobs", "0"], "bad --jobs `0`"),
        (&["--jobs", "many"], "bad --jobs `many`"),
        (&["--reps", "-1"], "bad --reps `-1`"),
        (&["--via", "noport"], "bad --via `noport`"),
        (&["--frobnicate", "1"], "unknown flag `--frobnicate`"),
        (&["--out"], "--out needs a value"),
    ] {
        let out = sweep(args);
        assert_eq!(
            out.status.code(),
            Some(2),
            "{args:?} must exit 2, stderr: {}",
            String::from_utf8_lossy(&out.stderr)
        );
        let stderr = String::from_utf8_lossy(&out.stderr);
        assert!(
            stderr.contains(expected) && stderr.contains("usage:"),
            "{args:?}: expected `{expected}` and the usage line in:\n{stderr}"
        );
    }
}

#[test]
fn unreachable_via_server_degrades_to_null_serve_columns() {
    let dir = std::env::temp_dir();
    let out_path = dir.join(format!("omislice-sweep-cli-{}.json", std::process::id()));
    // Nothing listens on the reserved TEST-NET-3 address: every serve
    // measurement fails and the sweep must still complete with null
    // serve columns rather than abort.
    let out = sweep(&[
        "--scales",
        "10",
        "--reps",
        "1",
        "--via",
        "127.0.0.1:1",
        "--out",
        out_path.to_str().unwrap(),
    ]);
    assert!(
        out.status.success(),
        "sweep must survive an unreachable server: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let json = std::fs::read_to_string(&out_path).expect("sweep JSON written");
    std::fs::remove_file(&out_path).ok();
    assert!(
        json.contains("\"serve\":null"),
        "serve columns must be null"
    );
    assert!(
        String::from_utf8_lossy(&out.stderr).contains("no serve columns"),
        "the dropped measurement must be reported, not silent"
    );
}
