//! Smoke test for the sweep harness: a scale-10 sweep completes without
//! panicking, produces a row per benchmark, and — the regression this
//! pins — actually exercises the verifier's verdict memo. The harness
//! used to build a fresh verifier per timing pass, so every published
//! row reported `cache_hits: 0` and the memo was dead weight.

use omislice_bench::sweep::{run_sweep, to_json, SweepOptions};

#[test]
fn sweep_scale10_hits_the_verifier_memo() {
    let samples = run_sweep(&SweepOptions {
        scales: vec![10],
        jobs: 2,
        reps: 1,
        via: None,
    });
    assert!(!samples.is_empty(), "sweep produced no samples");

    let mut verified_rows = 0;
    for s in &samples {
        assert!(s.trace_len > 0, "{}: empty trace", s.benchmark);
        if let Some(v) = &s.verify {
            verified_rows += 1;
            assert!(
                v.stats.cache_hits > 0,
                "{}: verifier memo is dead (cache_hits == 0)",
                s.benchmark
            );
            assert_eq!(
                v.stats.cache_hits, v.batch,
                "{}: re-submitted batch must hit the memo for every request",
                s.benchmark
            );
            assert_eq!(
                v.batches.len(),
                4,
                "{}: batch-size scaling series is incomplete",
                s.benchmark
            );
            for b in &v.batches {
                assert!(
                    b.batch <= b.requested,
                    "{}: scaling batch exceeds the requested size",
                    s.benchmark
                );
            }
        }
    }
    assert!(verified_rows > 0, "no row exercised the verifier");

    for s in &samples {
        assert!(
            s.phases.trace_ns > 0 && s.phases.graph_ns > 0,
            "{}: instrumented pass produced no phase spans",
            s.benchmark
        );
    }

    let json = to_json(&samples);
    assert!(json.contains("\"cache_hits\":"), "JSON drops the memo stat");
    assert!(
        json.contains("\"batch_scaling\":[{\"requested\":4,"),
        "JSON drops the batch-size scaling series"
    );
    assert!(
        json.contains("\"phases\":{\"trace_us\":"),
        "JSON drops the phase columns"
    );
    assert!(
        !json.contains("\"cache_hits\":0,"),
        "published JSON would report a dead memo"
    );
    assert!(
        json.contains("\"serve\":null"),
        "a sweep without --via must publish explicit null serve columns"
    );
}
