//! Shared measurement pipeline for the table-regeneration binaries.
//!
//! One [`FaultMeasurement`] per corpus fault collects everything the
//! paper's Tables 2 and 3 report; Table 4's timings are taken separately
//! (see the `table4` binary and the Criterion benches).

use omislice::omislice_analysis::ProgramAnalysis;
use omislice::omislice_interp::{run_traced, ResumeMode, RunConfig};
use omislice::omislice_slicing::{prune_slice, relevant_slice, DepGraph, Feedback};
use omislice::omislice_trace::VerificationStats;
use omislice::{LocateConfig, LocateOutcome, UserOracle};
use omislice_corpus::{all_benchmarks, Benchmark, Fault};

/// Everything measured for one benchmark fault.
#[derive(Debug, Clone)]
pub struct FaultMeasurement {
    /// Benchmark name (Table 1 column).
    pub bench: String,
    /// Fault id, e.g. `V1-F9`.
    pub fault: String,
    /// Relevant slice, unique statements.
    pub rs_static: usize,
    /// Relevant slice, dynamic instances.
    pub rs_dynamic: usize,
    /// Dynamic slice, unique statements.
    pub ds_static: usize,
    /// Dynamic slice, dynamic instances.
    pub ds_dynamic: usize,
    /// Automatically pruned slice, unique statements.
    pub ps_static: usize,
    /// Automatically pruned slice, dynamic instances.
    pub ps_dynamic: usize,
    /// Whether DS captured the root cause (always false for this corpus).
    pub ds_captures_root: bool,
    /// Whether RS captured the root cause (always true, at a price).
    pub rs_captures_root: bool,
    /// The full Algorithm 2 outcome (Table 3 counters).
    pub outcome: LocateOutcome,
    /// IPS sizes (static, dynamic).
    pub ips: (usize, usize),
    /// OS sizes (static, dynamic), when the chain was found.
    pub os: Option<(usize, usize)>,
}

/// Runs the full pipeline (DS, RS, PS, Algorithm 2) on one fault.
///
/// # Panics
///
/// Panics if the corpus entry is malformed (compile failure, no wrong
/// output); the corpus test suite guarantees these cannot happen.
pub fn measure_fault(bench: &Benchmark, fault: &Fault) -> FaultMeasurement {
    let prepared = bench.prepare(fault).expect("corpus compiles");
    let session = bench.session(fault).expect("session builds");
    let trace = session.trace();
    let analysis = session.analysis();
    let class = session
        .oracle()
        .classify_outputs(trace)
        .expect("corpus failures expose a wrong value");

    let graph = DepGraph::new(trace);
    let ds = graph.backward_slice(class.wrong);
    let rs = relevant_slice(trace, analysis, class.wrong);
    let ps = prune_slice(
        &graph,
        analysis,
        session.profile(),
        &class.correct,
        class.wrong,
        &Feedback::default(),
    )
    .pruned_slice(&graph);

    let outcome = session.locate(&LocateConfig::default()).expect("locates");
    let ips = (outcome.ips.static_size(), outcome.ips.dynamic_size());
    let os = outcome
        .os_slice(trace)
        .map(|s| (s.static_size(), s.dynamic_size()));

    let root = prepared.roots[0];
    FaultMeasurement {
        bench: bench.name.to_string(),
        fault: fault.id.to_string(),
        rs_static: rs.static_size(),
        rs_dynamic: rs.dynamic_size(),
        ds_static: ds.static_size(),
        ds_dynamic: ds.dynamic_size(),
        ps_static: ps.static_size(),
        ps_dynamic: ps.dynamic_size(),
        ds_captures_root: ds.contains_stmt(root),
        rs_captures_root: rs.contains_stmt(root),
        outcome,
        ips,
        os,
    }
}

/// Measures every fault of every corpus benchmark, in Table 2 order.
pub fn measure_all() -> Vec<FaultMeasurement> {
    let mut out = Vec::new();
    for b in all_benchmarks() {
        for f in &b.faults {
            out.push(measure_fault(&b, f));
        }
    }
    out
}

/// Wall-clock timings for Table 4, in nanoseconds (best of `reps`).
#[derive(Debug, Clone)]
pub struct FaultTiming {
    /// Un-instrumented execution (the paper's "Plain").
    pub plain_ns: u128,
    /// Traced execution building the dependence graph ("Graph").
    pub graph_ns: u128,
    /// The verification procedure: all switched re-executions plus
    /// alignment inside the demand-driven loop ("Verif."), run with the
    /// default checkpoint-resume engine.
    pub verif_ns: u128,
    /// The same procedure with resumption disabled — every switched run
    /// re-executes from the beginning, the engine before this
    /// optimization.
    pub verif_scratch_ns: u128,
    /// Engine counters from a resumed locate run (not wall-timed).
    pub stats: VerificationStats,
}

impl FaultTiming {
    /// The Graph/Plain slowdown factor.
    pub fn slowdown(&self) -> f64 {
        self.graph_ns as f64 / self.plain_ns.max(1) as f64
    }

    /// How much faster the resumed engine verifies than from-scratch.
    pub fn resume_speedup(&self) -> f64 {
        self.verif_scratch_ns as f64 / self.verif_ns.max(1) as f64
    }
}

/// Times one fault's executions (best of `reps` repetitions).
pub fn time_fault(bench: &Benchmark, fault: &Fault, reps: usize) -> FaultTiming {
    use std::time::Instant;
    let prepared = bench.prepare(fault).expect("corpus compiles");
    let analysis = ProgramAnalysis::build(&prepared.faulty);
    let config = RunConfig::with_inputs(fault.failing_input.clone());

    let best = |f: &mut dyn FnMut()| -> u128 {
        (0..reps.max(1))
            .map(|_| {
                let t = Instant::now();
                f();
                t.elapsed().as_nanos()
            })
            .min()
            .expect("at least one rep")
    };

    let plain_ns = best(&mut || {
        std::hint::black_box(omislice::omislice_interp::run_plain(
            &prepared.faulty,
            &config,
        ));
    });
    let graph_ns = best(&mut || {
        std::hint::black_box(run_traced(&prepared.faulty, &analysis, &config));
    });

    let session = bench.session(fault).expect("session builds");
    let verif_ns = best(&mut || {
        std::hint::black_box(session.locate(&LocateConfig::default()).expect("locates"));
    });
    let verif_scratch_ns = best(&mut || {
        std::hint::black_box(
            session
                .locate(&LocateConfig {
                    resume: ResumeMode::Disabled,
                    ..LocateConfig::default()
                })
                .expect("locates"),
        );
    });
    let stats = session
        .locate(&LocateConfig::default())
        .expect("locates")
        .stats;

    FaultTiming {
        plain_ns,
        graph_ns,
        verif_ns,
        verif_scratch_ns,
        stats,
    }
}
