//! Regenerates **Table 1** — characteristics of benchmarks: LOC, number
//! of procedures, error type, description.

use omislice_bench::table::render;
use omislice_corpus::all_benchmarks;

fn main() {
    let mut rows = Vec::new();
    for b in all_benchmarks() {
        let kinds: Vec<String> = {
            let mut ks: Vec<String> = b.faults.iter().map(|f| f.kind.to_string()).collect();
            ks.sort();
            ks.dedup();
            ks
        };
        rows.push(vec![
            b.name.to_string(),
            b.loc().to_string(),
            b.procedures().to_string(),
            b.faults.len().to_string(),
            kinds.join(" & "),
            b.description.to_string(),
        ]);
    }
    println!("Table 1. Characteristics of benchmarks");
    println!(
        "{}",
        render(
            &[
                "Benchmark",
                "LOC",
                "# of procedures",
                "# of faults",
                "Error type",
                "Description"
            ],
            &rows
        )
    );
}
