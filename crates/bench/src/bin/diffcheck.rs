//! Differential correctness sweep: generate seeded omission-fault cases
//! and check every pipeline invariant (see `omislice_bench::diffcheck`).
//!
//! ```text
//! diffcheck [--seeds N] [--start S] [--quick] [--chaos]
//! ```
//!
//! Exits nonzero (after printing every divergence) if any invariant
//! fails. Same seeds ⇒ same programs ⇒ same verdicts, so a failing seed
//! is reproducible with `--start <seed> --seeds 1`.

use omislice_bench::diffcheck::{run_diffcheck, DiffcheckOptions};

fn main() {
    let mut opts = DiffcheckOptions::default();
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--seeds" => opts.seeds = parse_num(args.next(), "--seeds"),
            "--start" => opts.start_seed = parse_num(args.next(), "--start"),
            "--quick" => opts.quick = true,
            "--chaos" => opts.chaos = true,
            "--help" | "-h" => {
                println!("usage: diffcheck [--seeds N] [--start S] [--quick] [--chaos]");
                return;
            }
            other => {
                eprintln!("unknown argument `{other}` (try --help)");
                std::process::exit(2);
            }
        }
    }

    // The sweep injects `panic`/`panic-harness` faults (and, with
    // `--chaos`, builder-thread panics) on purpose; keep their (caught)
    // panics from spraying backtraces over the report while leaving
    // genuine panics visible. Literal panics carry `&str` payloads,
    // formatted ones carry `String` — check both.
    let default_hook = std::panic::take_hook();
    std::panic::set_hook(Box::new(move |info| {
        let payload = info.payload();
        let message = payload
            .downcast_ref::<String>()
            .map(String::as_str)
            .or_else(|| payload.downcast_ref::<&str>().copied());
        if !message.is_some_and(|m| m.starts_with("injected")) {
            default_hook(info);
        }
    }));

    let summary = run_diffcheck(&opts);
    println!(
        "diffcheck: {} case(s) from seed {} ({} mode)",
        summary.cases,
        opts.start_seed,
        if opts.quick { "quick" } else { "full" }
    );
    println!(
        "  exposed {} · located {} · alignment probes {} over {} switches · \
         verifier configs {} · journals compared {}",
        summary.exposed,
        summary.located,
        summary.alignment_probes,
        summary.alignment_switches,
        summary.verifier_configs,
        summary.journals_compared,
    );
    if opts.chaos {
        println!(
            "  chaos pipelines {} · recoveries exercised {}",
            summary.chaos_pipelines, summary.chaos_recoveries
        );
        if summary.chaos_pipelines > 0 && summary.chaos_recoveries == 0 {
            eprintln!("FAIL chaos sweep was vacuous: no recovery was exercised");
            std::process::exit(1);
        }
    }
    if summary.failures.is_empty() {
        println!("  all invariants held");
    } else {
        for f in &summary.failures {
            eprintln!("FAIL {f}");
        }
        eprintln!("{} divergence(s)", summary.failures.len());
        std::process::exit(1);
    }
}

fn parse_num(value: Option<String>, flag: &str) -> u64 {
    value.and_then(|v| v.parse().ok()).unwrap_or_else(|| {
        eprintln!("{flag} needs a number");
        std::process::exit(2);
    })
}
