//! End-to-end probe for a running `omislice serve` instance.
//!
//! ```text
//! serveprobe --addr host:port [--chaos-check]
//! ```
//!
//! Round-trips every endpoint and checks the serving contract: liveness,
//! slice and locate responses, warm repeats answered from the artifact
//! cache with byte-identical reports, structured errors for malformed
//! bodies and unknown routes, and the metrics exporter. With
//! `--chaos-check` it additionally fires a `handler=panic` chaos request
//! concurrently with clean locates and requires the panic to come back
//! as a structured 500 while the clean requests succeed untouched.
//!
//! Exit codes: 0 all checks pass, 1 a check failed, 2 usage.

use omislice_bench::client::ServeClient;
use omislice_obs::Json;

const FAULTY: &str = "fn main() { let a = input(); let s = 0; while a > 0 { if a > 3 { s = s + a; } a = a - 1; } print(s); }";
const FIXED: &str = "fn main() { let a = input(); let s = 0; while a > 0 { if a > 2 { s = s + a; } a = a - 1; } print(s); }";

fn usage(msg: &str) -> ! {
    eprintln!("serveprobe: {msg}");
    eprintln!("usage: serveprobe --addr host:port [--chaos-check]");
    std::process::exit(2);
}

fn fail(msg: &str) -> ! {
    eprintln!("serveprobe: FAIL: {msg}");
    std::process::exit(1);
}

fn locate_body() -> Json {
    Json::object([
        ("faulty", Json::str(FAULTY)),
        ("fixed", Json::str(FIXED)),
        ("input", Json::Array(vec![Json::Int(6)])),
    ])
}

fn field<'a>(v: &'a Json, key: &str) -> &'a Json {
    v.get(key)
        .unwrap_or_else(|| fail(&format!("response lacks `{key}`: {v}")))
}

/// The report with warmth-dependent counters dropped: a warm repeat is
/// answered from the shared verification memo without re-executing, so
/// the `re-executions` line legitimately differs between a cold and a
/// warm run of the same request. Everything else must be byte-identical.
fn normalized_report(doc: &Json) -> String {
    field(doc, "report")
        .as_str()
        .unwrap_or_else(|| fail("`report` is not a string"))
        .lines()
        .filter(|l| !l.starts_with("re-executions"))
        .collect::<Vec<_>>()
        .join("\n")
}

fn main() {
    let mut addr = None;
    let mut chaos_check = false;
    let mut args = std::env::args().skip(1);
    while let Some(flag) = args.next() {
        match flag.as_str() {
            "--addr" => match args.next() {
                Some(v) if v.contains(':') => addr = Some(v),
                Some(v) => usage(&format!("bad --addr `{v}` (need host:port)")),
                None => usage("--addr needs a value"),
            },
            "--chaos-check" => chaos_check = true,
            other => usage(&format!("unknown flag `{other}`")),
        }
    }
    let Some(addr) = addr else {
        usage("serveprobe needs --addr");
    };
    let client = ServeClient::new(addr);

    // Liveness.
    let health = client
        .get("/healthz")
        .unwrap_or_else(|e| fail(&format!("healthz: {e}")));
    if health.status != 200 {
        fail(&format!("healthz returned {}", health.status));
    }
    let doc = health.json().unwrap_or_else(|e| fail(&e));
    if field(&doc, "ok").as_bool() != Some(true) {
        fail("healthz body is not ok");
    }

    // Slice round-trip.
    let slice = client
        .post(
            "/slice",
            &Json::object([
                ("source", Json::str(FIXED)),
                ("input", Json::Array(vec![Json::Int(6)])),
            ]),
        )
        .unwrap_or_else(|e| fail(&format!("slice: {e}")));
    if slice.status != 200 {
        fail(&format!("slice returned {}: {}", slice.status, slice.body));
    }
    let doc = slice.json().unwrap_or_else(|e| fail(&e));
    if field(&doc, "static_size").as_int().unwrap_or(0) == 0 {
        fail("slice reported an empty static slice");
    }

    // Locate: cold miss, then a warm hit with a byte-identical report.
    let cold = client
        .post("/locate", &locate_body())
        .unwrap_or_else(|e| fail(&format!("locate: {e}")));
    if cold.status != 200 {
        fail(&format!("locate returned {}: {}", cold.status, cold.body));
    }
    let cold_doc = cold.json().unwrap_or_else(|e| fail(&e));
    let warm = client
        .post("/locate", &locate_body())
        .unwrap_or_else(|e| fail(&format!("warm locate: {e}")));
    let warm_doc = warm.json().unwrap_or_else(|e| fail(&e));
    if field(&warm_doc, "cache").as_str() != Some("hit") {
        fail("second locate did not hit the artifact cache");
    }
    if normalized_report(&cold_doc) != normalized_report(&warm_doc) {
        fail("cold and warm reports differ beyond warmth counters");
    }

    // Structured errors.
    let bad = client
        .request("POST", "/locate", Some("{not json"))
        .unwrap_or_else(|e| fail(&e));
    if bad.status != 400 {
        fail(&format!("malformed body returned {}", bad.status));
    }
    let lost = client.get("/nope").unwrap_or_else(|e| fail(&e));
    if lost.status != 404 {
        fail(&format!("unknown route returned {}", lost.status));
    }

    // Metrics exporter.
    let metrics = client.get("/metrics").unwrap_or_else(|e| fail(&e));
    if metrics.status != 200 || !metrics.body.contains("omislice_serve_requests_total") {
        fail("metrics exporter is missing serve counters");
    }

    if chaos_check {
        run_chaos_check(&client, &cold_doc);
    }
    println!("serveprobe: all checks passed");
}

/// Fires an injected handler panic concurrently with clean locates: the
/// panic must come back as a structured 500 and the clean requests must
/// succeed with the same report as before.
fn run_chaos_check(client: &ServeClient, baseline: &Json) {
    let mut chaos_body = locate_body();
    if let Json::Object(pairs) = &mut chaos_body {
        pairs.push(("chaos".to_string(), Json::str("handler=panic")));
    }
    let addr = client.addr().to_string();
    let clean_threads: Vec<_> = (0..2)
        .map(|_| {
            let addr = addr.clone();
            std::thread::spawn(move || ServeClient::new(addr).post("/locate", &locate_body()))
        })
        .collect();
    let crashed = client
        .post("/locate", &chaos_body)
        .unwrap_or_else(|e| fail(&format!("chaos locate: {e}")));
    if crashed.status != 500 {
        fail(&format!(
            "injected panic returned {} instead of a structured 500",
            crashed.status
        ));
    }
    let doc = crashed.json().unwrap_or_else(|e| fail(&e));
    let code = doc
        .get("error")
        .and_then(|e| e.get("code"))
        .and_then(Json::as_str);
    if code != Some("panic") {
        fail(&format!("injected panic reported code {code:?}"));
    }
    for t in clean_threads {
        let r = t
            .join()
            .unwrap_or_else(|_| fail("clean locate thread panicked"))
            .unwrap_or_else(|e| fail(&format!("clean locate: {e}")));
        if r.status != 200 {
            fail(&format!(
                "clean locate alongside chaos returned {}",
                r.status
            ));
        }
        let doc = r.json().unwrap_or_else(|e| fail(&e));
        if normalized_report(&doc) != normalized_report(baseline) {
            fail("clean locate report drifted while chaos was in flight");
        }
    }
    println!("serveprobe: chaos check passed (panic isolated, clean requests byte-identical)");
}
