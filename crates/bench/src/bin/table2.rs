//! Regenerates **Table 2** — execution omission errors: relevant slice
//! (RS), dynamic slice (DS), and pruned slice (PS) sizes, static/dynamic,
//! plus the RS/DS and RS/PS ratios.
//!
//! The paper's headline observations, all checked by the corpus test
//! suite and visible in this table's output:
//!
//! * RS captures every root cause but is large (especially dynamically);
//! * DS and PS miss every root cause (the omission property);
//! * PS is much smaller than RS — the motivation for starting from the
//!   pruned slice and expanding on demand.

use omislice_bench::measure::measure_all;
use omislice_bench::table::render;

fn ratio(a: usize, b: usize) -> String {
    format!("{:.2}", a as f64 / b.max(1) as f64)
}

fn main() {
    let mut rows = Vec::new();
    for m in measure_all() {
        rows.push(vec![
            m.bench.clone(),
            m.fault.clone(),
            format!("{}/{}", m.rs_static, m.rs_dynamic),
            format!("{}/{}", m.ds_static, m.ds_dynamic),
            format!("{}/{}", m.ps_static, m.ps_dynamic),
            format!(
                "{}/{}",
                ratio(m.rs_static, m.ds_static),
                ratio(m.rs_dynamic, m.ds_dynamic)
            ),
            format!(
                "{}/{}",
                ratio(m.rs_static, m.ps_static),
                ratio(m.rs_dynamic, m.ps_dynamic)
            ),
            if m.rs_captures_root { "yes" } else { "NO" }.to_string(),
            if m.ds_captures_root { "yes" } else { "no" }.to_string(),
        ]);
    }
    println!("Table 2. Execution Omission Errors (sizes are static/dynamic)");
    println!(
        "{}",
        render(
            &[
                "Benchmark",
                "Error",
                "RS (st/dyn)",
                "DS (st/dyn)",
                "PS (st/dyn)",
                "RS/DS",
                "RS/PS",
                "RS has root",
                "DS has root",
            ],
            &rows
        )
    );
    println!("DS/PS miss every root cause; RS captures all of them (as in the paper).");
}
