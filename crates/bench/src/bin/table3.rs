//! Regenerates **Table 3** — effectiveness of the demand-driven locator:
//! number of user prunings, verifications, iterations, expanded implicit
//! edges, and the IPS and OS sizes (static/dynamic).

use omislice_bench::measure::measure_all;
use omislice_bench::table::render;

fn main() {
    let mut rows = Vec::new();
    for m in measure_all() {
        let os =
            m.os.map(|(s, d)| format!("{s}/{d}"))
                .unwrap_or_else(|| "-".to_string());
        rows.push(vec![
            m.bench.clone(),
            m.fault.clone(),
            m.outcome.user_prunings.to_string(),
            m.outcome.verifications.to_string(),
            m.outcome.iterations.to_string(),
            m.outcome.expanded_edges.to_string(),
            m.outcome.strong_edges.to_string(),
            format!("{}/{}", m.ips.0, m.ips.1),
            os,
            if m.outcome.found { "yes" } else { "NO" }.to_string(),
        ]);
    }
    println!("Table 3. Effectiveness");
    println!(
        "{}",
        render(
            &[
                "Benchmark",
                "Error",
                "# user prunings",
                "# verifications",
                "# iterations",
                "# expanded edges",
                "(strong)",
                "IPS (st/dyn)",
                "OS (st/dyn)",
                "root captured",
            ],
            &rows
        )
    );
}
