//! Regenerates **Table 4** — performance: un-instrumented execution
//! ("Plain"), traced execution with dependence-graph construction
//! ("Graph"), the verification procedure ("Verif."), and the Graph/Plain
//! slowdown factor.
//!
//! Absolute numbers differ wildly from the paper (their substrate was
//! Valgrind dynamic binary instrumentation; ours is an AST interpreter),
//! but the *structure* holds: Graph costs a constant factor over Plain,
//! and Verif. scales with the number of verifications.
//!
//! Beyond the paper's columns, "Scratch" is the verification time with
//! checkpoint resumption disabled and "Resume x" the speedup the
//! default engine gains over it; "Saved" counts trace events the
//! resumed switched runs did not have to re-execute.

use omislice_bench::measure::time_fault;
use omislice_bench::table::render;
use omislice_corpus::all_benchmarks;

fn micros(ns: u128) -> String {
    format!("{:.1}", ns as f64 / 1_000.0)
}

fn main() {
    let reps = 5;
    let mut rows = Vec::new();
    for b in all_benchmarks() {
        for f in &b.faults {
            let t = time_fault(&b, f, reps);
            rows.push(vec![
                b.name.to_string(),
                f.id.to_string(),
                micros(t.plain_ns),
                micros(t.graph_ns),
                micros(t.verif_ns),
                micros(t.verif_scratch_ns),
                format!("{:.1}", t.slowdown()),
                format!("{:.1}", t.resume_speedup()),
                t.stats.steps_saved.to_string(),
            ]);
        }
    }
    println!("Table 4. Performance (best of {reps} runs; times in microseconds)");
    println!(
        "{}",
        render(
            &[
                "Benchmark",
                "Error",
                "Plain (us)",
                "Graph (us)",
                "Verif. (us)",
                "Scratch (us)",
                "Graph/Plain",
                "Resume x",
                "Saved",
            ],
            &rows
        )
    );
}
