//! Parameter sweep: how trace size, slice sizes, and analysis costs
//! scale with workload size — the data-series companion to the paper's
//! tables (its evaluation has no scaling figure; this harness provides
//! the series a replication would plot).
//!
//! For each corpus benchmark, generated workloads of increasing size run
//! through the tracing interpreter; the series reports trace length, DS
//! and RS sizes for the last output, wall-clock for Plain, Graph, and RS
//! computation, and the verification engine's cost for a LEFS-style
//! batch of `VerifyDep` queries executed from scratch vs. resumed from
//! checkpoints.
//!
//! Besides the table on stdout, the same series is written as
//! `BENCH_sweep.json` (in the working directory) so plots and regression
//! checks can consume it without screen-scraping.

use omislice::omislice_analysis::ProgramAnalysis;
use omislice::omislice_interp::{run_plain, run_traced, ResumeMode, RunConfig};
use omislice::omislice_lang::compile;
use omislice::omislice_slicing::{relevant_slice, DepGraph};
use omislice::omislice_trace::{Trace, VerificationStats};
use omislice::{Verifier, VerifierMode, VerifyRequest};
use omislice_bench::table::render;
use omislice_corpus::{all_benchmarks, WorkloadGen};
use std::time::Instant;

/// A workload of roughly `payload` units (characters or lines; clamped
/// to the program's buffer capacities where the format is bounded).
fn workload_of_size(gen: &mut WorkloadGen, bench: &str, payload: usize) -> Vec<i64> {
    gen.sized_for_benchmark(bench, payload)
}

fn micros(ns: u128) -> String {
    format!("{:.1}", ns as f64 / 1_000.0)
}

/// The last `n` predicate instances before the final output, each paired
/// with that output as the use under test — the same batch shape the
/// `resume` Criterion bench runs. Empty when the trace has no output or
/// the output statement uses no variable.
fn verify_batch(trace: &Trace, analysis: &ProgramAnalysis, n: usize) -> Vec<VerifyRequest> {
    let Some(last) = trace.outputs().last() else {
        return Vec::new();
    };
    let u = last.inst;
    let Some(&var) = analysis.index().stmt(trace.event(u).stmt).uses.first() else {
        return Vec::new();
    };
    let preds: Vec<_> = trace
        .insts()
        .filter(|&i| i < u && trace.event(i).is_predicate())
        .collect();
    preds
        .iter()
        .rev()
        .take(n)
        .map(|&p| VerifyRequest {
            p,
            u,
            var,
            wrong_output: u,
            expected: None,
        })
        .collect()
}

/// One measured point of the sweep.
struct Sample {
    benchmark: String,
    scale: usize,
    input_len: usize,
    trace_len: usize,
    ds_dyn: Option<usize>,
    rs_dyn: Option<usize>,
    plain_ns: u128,
    graph_ns: u128,
    rs_ns: u128,
    verify: Option<VerifySample>,
}

/// Verification-engine cost for the sample's batch, from scratch and
/// resumed, with the engine's own counters from the resumed run.
struct VerifySample {
    batch: usize,
    scratch_ns: u128,
    resumed_ns: u128,
    stats: VerificationStats,
}

fn json_opt(v: Option<usize>) -> String {
    v.map_or_else(|| "null".to_string(), |n| n.to_string())
}

fn json_us(ns: u128) -> String {
    format!("{:.1}", ns as f64 / 1_000.0)
}

fn sample_json(s: &Sample) -> String {
    let verify = match &s.verify {
        None => "null".to_string(),
        Some(v) => format!(
            concat!(
                "{{\"batch\":{},\"scratch_us\":{},\"resumed_us\":{},",
                "\"capture_runs\":{},\"resumed_runs\":{},\"scratch_runs\":{},",
                "\"steps_saved\":{},\"cache_hits\":{},\"reexecutions\":{},",
                "\"resume_ratio\":{:.3}}}"
            ),
            v.batch,
            json_us(v.scratch_ns),
            json_us(v.resumed_ns),
            v.stats.capture_runs,
            v.stats.resumed_runs,
            v.stats.scratch_runs,
            v.stats.steps_saved,
            v.stats.cache_hits,
            v.stats.reexecutions,
            v.stats.resume_ratio(),
        ),
    };
    format!(
        concat!(
            "{{\"benchmark\":\"{}\",\"scale\":{},\"input_len\":{},",
            "\"trace_len\":{},\"ds_dyn\":{},\"rs_dyn\":{},",
            "\"plain_us\":{},\"graph_us\":{},\"rs_us\":{},\"verify\":{}}}"
        ),
        s.benchmark,
        s.scale,
        s.input_len,
        s.trace_len,
        json_opt(s.ds_dyn),
        json_opt(s.rs_dyn),
        json_us(s.plain_ns),
        json_us(s.graph_ns),
        json_us(s.rs_ns),
        verify,
    )
}

fn main() {
    let mut samples = Vec::new();
    for b in all_benchmarks() {
        let program = compile(b.fixed_src).expect("corpus compiles");
        let analysis = ProgramAnalysis::build(&program);
        let mut gen = WorkloadGen::new(0x5EED);
        for scale in [10usize, 50, 250] {
            let inputs = workload_of_size(&mut gen, b.name, scale);
            let config = RunConfig::with_inputs(inputs.clone());

            let t = Instant::now();
            let plain = run_plain(&program, &config);
            let plain_ns = t.elapsed().as_nanos();
            assert!(plain.is_normal(), "{}: {:?}", b.name, plain.termination);

            let t = Instant::now();
            let run = run_traced(&program, &analysis, &config);
            let graph_ns = t.elapsed().as_nanos();

            let (ds_dyn, rs_dyn, rs_ns) = match run.trace.outputs().last() {
                Some(last) => {
                    let ds = DepGraph::new(&run.trace).backward_slice(last.inst);
                    let t = Instant::now();
                    let rs = relevant_slice(&run.trace, &analysis, last.inst);
                    (
                        Some(ds.dynamic_size()),
                        Some(rs.dynamic_size()),
                        t.elapsed().as_nanos(),
                    )
                }
                None => (None, None, 0),
            };

            let requests = verify_batch(&run.trace, &analysis, 16);
            let verify = (!requests.is_empty()).then(|| {
                let measure = |resume: ResumeMode| {
                    let mut v =
                        Verifier::new(&program, &analysis, &config, &run.trace, VerifierMode::Edge)
                            .with_resume(resume);
                    let t = Instant::now();
                    v.verify_all(&requests);
                    (t.elapsed().as_nanos(), v.stats().clone())
                };
                let (scratch_ns, _) = measure(ResumeMode::Disabled);
                let (resumed_ns, stats) = measure(ResumeMode::Auto);
                VerifySample {
                    batch: requests.len(),
                    scratch_ns,
                    resumed_ns,
                    stats,
                }
            });

            samples.push(Sample {
                benchmark: b.name.to_string(),
                scale,
                input_len: inputs.len(),
                trace_len: run.trace.len(),
                ds_dyn,
                rs_dyn,
                plain_ns,
                graph_ns,
                rs_ns,
                verify,
            });
        }
    }

    let rows: Vec<Vec<String>> = samples
        .iter()
        .map(|s| {
            let (scratch, resumed) = match &s.verify {
                Some(v) => (micros(v.scratch_ns), micros(v.resumed_ns)),
                None => ("-".to_string(), "-".to_string()),
            };
            vec![
                s.benchmark.clone(),
                format!("x{}", s.scale),
                s.input_len.to_string(),
                s.trace_len.to_string(),
                s.ds_dyn.map_or_else(|| "-".to_string(), |n| n.to_string()),
                s.rs_dyn.map_or_else(|| "-".to_string(), |n| n.to_string()),
                micros(s.plain_ns),
                micros(s.graph_ns),
                micros(s.rs_ns),
                scratch,
                resumed,
            ]
        })
        .collect();
    println!("Workload sweep (sizes are dynamic instances; times in microseconds)");
    println!(
        "{}",
        render(
            &[
                "Benchmark",
                "scale",
                "input len",
                "trace len",
                "DS(dyn)",
                "RS(dyn)",
                "Plain (us)",
                "Graph (us)",
                "RS (us)",
                "Verif scratch (us)",
                "Verif resumed (us)",
            ],
            &rows
        )
    );

    let body: Vec<String> = samples.iter().map(sample_json).collect();
    let json = format!(
        "{{\n  \"seed\": \"0x5EED\",\n  \"rows\": [\n    {}\n  ]\n}}\n",
        body.join(",\n    ")
    );
    std::fs::write("BENCH_sweep.json", &json).expect("writes BENCH_sweep.json");
    println!("wrote BENCH_sweep.json ({} rows)", samples.len());
}
