//! Thin driver for the workload sweep (see `omislice_bench::sweep`).
//!
//! ```text
//! sweep [--scales 10,50,250,1000,10000] [--jobs N] [--reps N] [--out BENCH_sweep.json]
//! ```

use omislice_bench::sweep::{render_table, run_sweep, to_json, SweepOptions};

fn usage() -> ! {
    eprintln!(
        "usage: sweep [--scales 10,50,250,1000,10000] [--jobs N] [--reps N] [--out BENCH_sweep.json]"
    );
    std::process::exit(2);
}

fn main() {
    let mut opts = SweepOptions::default();
    let mut out = "BENCH_sweep.json".to_string();
    let mut args = std::env::args().skip(1);
    while let Some(flag) = args.next() {
        let Some(value) = args.next() else { usage() };
        match flag.as_str() {
            "--scales" => {
                opts.scales = value
                    .split(',')
                    .map(|s| s.trim().parse().unwrap_or_else(|_| usage()))
                    .collect();
                if opts.scales.is_empty() {
                    usage();
                }
            }
            "--jobs" => {
                opts.jobs = value.parse().unwrap_or_else(|_| usage());
                if opts.jobs == 0 {
                    usage();
                }
            }
            "--reps" => {
                opts.reps = value.parse().unwrap_or_else(|_| usage());
                if opts.reps == 0 {
                    usage();
                }
            }
            "--out" => out = value,
            _ => usage(),
        }
    }

    let samples = run_sweep(&opts);
    println!("Workload sweep (sizes are dynamic instances; times in microseconds)");
    println!("{}", render_table(&samples));
    std::fs::write(&out, to_json(&samples)).expect("writes the sweep JSON");
    println!("wrote {out} ({} rows)", samples.len());
}
