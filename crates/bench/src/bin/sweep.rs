//! Parameter sweep: how trace size, slice sizes, and analysis costs
//! scale with workload size — the data-series companion to the paper's
//! tables (its evaluation has no scaling figure; this harness provides
//! the series a replication would plot).
//!
//! For each corpus benchmark, generated workloads of increasing size run
//! through the tracing interpreter; the series reports trace length, DS
//! and RS sizes for the last output, and wall-clock for Plain, Graph,
//! and RS computation.

use omislice::omislice_analysis::ProgramAnalysis;
use omislice::omislice_interp::{run_plain, run_traced, RunConfig};
use omislice::omislice_lang::compile;
use omislice::omislice_slicing::{relevant_slice, DepGraph};
use omislice_bench::table::render;
use omislice_corpus::{all_benchmarks, WorkloadGen};
use std::time::Instant;

/// A workload of roughly `payload` units (characters or lines; clamped
/// to the program's buffer capacities where the format is bounded).
fn workload_of_size(gen: &mut WorkloadGen, bench: &str, payload: usize) -> Vec<i64> {
    gen.sized_for_benchmark(bench, payload)
}

fn micros(ns: u128) -> String {
    format!("{:.1}", ns as f64 / 1_000.0)
}

fn main() {
    let mut rows = Vec::new();
    for b in all_benchmarks() {
        let program = compile(b.fixed_src).expect("corpus compiles");
        let analysis = ProgramAnalysis::build(&program);
        let mut gen = WorkloadGen::new(0x5EED);
        for scale in [10usize, 50, 250] {
            let inputs = workload_of_size(&mut gen, b.name, scale);
            let config = RunConfig::with_inputs(inputs.clone());

            let t = Instant::now();
            let plain = run_plain(&program, &config);
            let plain_ns = t.elapsed().as_nanos();
            assert!(plain.is_normal(), "{}: {:?}", b.name, plain.termination);

            let t = Instant::now();
            let run = run_traced(&program, &analysis, &config);
            let graph_ns = t.elapsed().as_nanos();

            let (ds, rs, rs_ns) = match run.trace.outputs().last() {
                Some(last) => {
                    let ds = DepGraph::new(&run.trace).backward_slice(last.inst);
                    let t = Instant::now();
                    let rs = relevant_slice(&run.trace, &analysis, last.inst);
                    (
                        ds.dynamic_size().to_string(),
                        rs.dynamic_size().to_string(),
                        t.elapsed().as_nanos(),
                    )
                }
                None => ("-".to_string(), "-".to_string(), 0),
            };

            rows.push(vec![
                b.name.to_string(),
                format!("x{scale}"),
                inputs.len().to_string(),
                run.trace.len().to_string(),
                ds,
                rs,
                micros(plain_ns),
                micros(graph_ns),
                micros(rs_ns),
            ]);
        }
    }
    println!("Workload sweep (sizes are dynamic instances; times in microseconds)");
    println!(
        "{}",
        render(
            &[
                "Benchmark",
                "scale",
                "input len",
                "trace len",
                "DS(dyn)",
                "RS(dyn)",
                "Plain (us)",
                "Graph (us)",
                "RS (us)",
            ],
            &rows
        )
    );
}
