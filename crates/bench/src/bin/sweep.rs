//! Thin driver for the workload sweep (see `omislice_bench::sweep`).
//!
//! ```text
//! sweep [--scales 10,50,250,1000,10000] [--jobs N] [--reps N] [--out BENCH_sweep.json]
//!       [--via host:port]
//! ```
//!
//! `--via` points at a running `omislice serve` instance; each sample
//! then carries served locate latency (cold cache, warm cache) next to
//! the cold process-start CLI baseline.

use omislice_bench::sweep::{render_table, run_sweep, to_json, SweepOptions};

fn usage(msg: &str) -> ! {
    eprintln!("sweep: {msg}");
    eprintln!(
        "usage: sweep [--scales 10,50,250,1000,10000] [--jobs N] [--reps N] \
         [--out BENCH_sweep.json] [--via host:port]"
    );
    std::process::exit(2);
}

fn main() {
    let mut opts = SweepOptions::default();
    let mut out = "BENCH_sweep.json".to_string();
    let mut args = std::env::args().skip(1);
    while let Some(flag) = args.next() {
        let Some(value) = args.next() else {
            usage(&format!("{flag} needs a value"));
        };
        match flag.as_str() {
            "--scales" => {
                opts.scales = value
                    .split(',')
                    .map(|s| {
                        s.trim().parse().unwrap_or_else(|_| {
                            usage(&format!("bad --scales `{value}` (need integers)"))
                        })
                    })
                    .collect();
                if opts.scales.is_empty() {
                    usage("bad --scales `` (need at least one integer)");
                }
            }
            "--jobs" => {
                opts.jobs = value.parse().unwrap_or(0);
                if opts.jobs == 0 {
                    usage(&format!("bad --jobs `{value}` (need a positive integer)"));
                }
            }
            "--reps" => {
                opts.reps = value.parse().unwrap_or(0);
                if opts.reps == 0 {
                    usage(&format!("bad --reps `{value}` (need a positive integer)"));
                }
            }
            "--out" => out = value,
            "--via" => {
                if !value.contains(':') {
                    usage(&format!("bad --via `{value}` (need host:port)"));
                }
                opts.via = Some(value);
            }
            other => usage(&format!("unknown flag `{other}`")),
        }
    }

    let samples = run_sweep(&opts);
    println!("Workload sweep (sizes are dynamic instances; times in microseconds)");
    println!("{}", render_table(&samples));
    std::fs::write(&out, to_json(&samples)).expect("writes the sweep JSON");
    println!("wrote {out} ({} rows)", samples.len());
}
