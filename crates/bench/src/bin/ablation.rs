//! Ablation study over the design choices the paper calls out:
//!
//! 1. **Verifier mode** (§3.2): the paper's edge-based `VerifyDep` vs the
//!    safe path-based variant vs the value-comparison extension — does
//!    each still capture the root cause, and at what slice size?
//! 2. **Algorithm 2 lines 12–18** (Figure 5): verifying the switched
//!    predicate against *other* potentially dependent uses costs extra
//!    verifications but enables more pruning.
//! 3. **Relevant slicing + confidence analysis directly** (the "plausible
//!    alternative" the paper rejects): propagating confidence along
//!    unverified potential edges can sanitize the root cause.
//! 4. **Critical-predicate search (ICSE 2006) vs the demand-driven
//!    locator**: re-execution counts for the brute-force baseline the
//!    paper's related-work section contrasts against.

use omislice::omislice_slicing::{
    analyze_confidence, potential_dep_instances, ConfidenceParams, DepGraph,
};
use omislice::{LocateConfig, UserOracle, VerifierMode};
use omislice_bench::table::render;
use omislice_corpus::all_benchmarks;
use std::collections::HashSet;

fn main() {
    verifier_modes();
    extra_verification();
    relevant_plus_confidence();
    switching_vs_demand_driven();
    union_graph_pd();
    pd_reach();
}

fn verifier_modes() {
    println!("Ablation 1. Verifier mode (found / verifications / IPS dynamic size)");
    let mut rows = Vec::new();
    for b in all_benchmarks() {
        for f in &b.faults {
            let mut cells = vec![b.name.to_string(), f.id.to_string()];
            for mode in [
                VerifierMode::Edge,
                VerifierMode::Path,
                VerifierMode::ValueChange,
            ] {
                let session = b.session(f).expect("session builds");
                let out = session
                    .locate(&LocateConfig {
                        mode,
                        ..LocateConfig::default()
                    })
                    .expect("locates");
                cells.push(format!(
                    "{}/{}/{}",
                    if out.found { "y" } else { "N" },
                    out.verifications,
                    out.ips.dynamic_size()
                ));
            }
            rows.push(cells);
        }
    }
    println!(
        "{}",
        render(
            &[
                "Benchmark",
                "Error",
                "Edge (paper)",
                "Path (safe)",
                "ValueChange"
            ],
            &rows
        )
    );
}

fn extra_verification() {
    println!("Ablation 2. Algorithm 2 lines 12-18 (verify other uses of a switched predicate)");
    let mut rows = Vec::new();
    for b in all_benchmarks() {
        for f in &b.faults {
            let mut cells = vec![b.name.to_string(), f.id.to_string()];
            for verify_all in [true, false] {
                let session = b.session(f).expect("session builds");
                let out = session
                    .locate(&LocateConfig {
                        verify_all_uses: verify_all,
                        ..LocateConfig::default()
                    })
                    .expect("locates");
                cells.push(format!(
                    "{}/{}/{}/{}",
                    if out.found { "y" } else { "N" },
                    out.verifications,
                    out.expanded_edges,
                    out.ips.dynamic_size()
                ));
            }
            rows.push(cells);
        }
    }
    println!(
        "{}",
        render(
            &[
                "Benchmark",
                "Error",
                "with 12-18 (found/verif/edges/IPS)",
                "without",
            ],
            &rows
        )
    );
}

/// The paper's §3.2 warning, measured: add *all* potential dependence
/// edges (unverified, as relevant slicing would) and run confidence
/// analysis. Count how often the root cause's instances end up with
/// confidence 1 — i.e. sanitized away.
fn relevant_plus_confidence() {
    println!("Ablation 3. Relevant slicing + confidence analysis directly");
    let mut rows = Vec::new();
    for b in all_benchmarks() {
        for f in &b.faults {
            let prepared = b.prepare(f).expect("corpus compiles");
            let session = b.session(f).expect("session builds");
            let trace = session.trace();
            let analysis = session.analysis();
            let class = session
                .oracle()
                .classify_outputs(trace)
                .expect("wrong output exists");
            // Build the graph with every potential edge, unverified.
            let mut graph = DepGraph::new(trace);
            for u in trace.insts() {
                for p in potential_dep_instances(trace, analysis, u) {
                    graph.add_edge(u, p);
                }
            }
            let conf = analyze_confidence(&ConfidenceParams {
                graph: &graph,
                analysis,
                profile: session.profile(),
                correct_outputs: &class.correct,
                wrong_output: class.wrong,
                benign: &HashSet::new(),
                corrupted: &HashSet::new(),
            });
            let root = prepared.roots[0];
            let insts = trace.instances_of(root);
            let sanitized = insts.iter().all(|&i| conf.is_prunable(i));
            let in_slice = graph.backward_slice(class.wrong).contains_stmt(root);
            rows.push(vec![
                b.name.to_string(),
                f.id.to_string(),
                graph.extra_edge_count().to_string(),
                if in_slice { "yes" } else { "NO" }.to_string(),
                if sanitized { "SANITIZED" } else { "kept" }.to_string(),
            ]);
        }
    }
    println!(
        "{}",
        render(
            &[
                "Benchmark",
                "Error",
                "potential edges",
                "root in RS",
                "root after confidence",
            ],
            &rows
        )
    );
}

/// The ICSE 2006 baseline head-to-head: how many re-executions does a
/// brute-force critical-predicate search need vs the demand-driven
/// verifier, and does it even find an answer?
fn switching_vs_demand_driven() {
    use omislice::omislice_analysis::ProgramAnalysis;
    use omislice::omislice_interp::run_traced;
    use omislice::{find_critical_predicate, SearchOrder};

    println!("Ablation 4. Critical-predicate search (ICSE 2006) vs demand-driven (this paper)");
    let mut rows = Vec::new();
    for b in all_benchmarks() {
        for f in &b.faults {
            let prepared = b.prepare(f).expect("corpus compiles");
            let session = b.session(f).expect("session builds");
            let expected = session.oracle().reference().output_values();

            let analysis = ProgramAnalysis::build(&prepared.faulty);
            let config = omislice::omislice_interp::RunConfig::with_inputs(f.failing_input.clone());
            let trace = run_traced(&prepared.faulty, &analysis, &config).trace;
            let search = find_critical_predicate(
                &prepared.faulty,
                &analysis,
                &config,
                &trace,
                &expected,
                SearchOrder::Prioritized,
            );
            let outcome = session.locate(&LocateConfig::default()).expect("locates");
            rows.push(vec![
                b.name.to_string(),
                f.id.to_string(),
                search.candidates.to_string(),
                match search.instance {
                    Some(_) => format!("found/{}", search.reexecutions),
                    None => format!("none/{}", search.reexecutions),
                },
                format!(
                    "{}/{}",
                    if outcome.found { "found" } else { "miss" },
                    outcome.reexecutions
                ),
            ]);
        }
    }
    println!(
        "{}",
        render(
            &[
                "Benchmark",
                "Error",
                "pred instances",
                "ICSE06 (result/re-execs)",
                "demand-driven (result/re-execs)",
            ],
            &rows
        )
    );
    println!("The critical-predicate search needs no oracle beyond the expected");
    println!("output, but pays one re-execution per candidate and produces a single");
    println!("predicate, not a failure-inducing chain.");
}

/// The paper's §4 prototype configuration: potential dependences computed
/// from a union dependence graph instead of pure static analysis. The
/// union graph only knows definitions some profiled run *exercised*, so
/// it can cut verifications — or miss the omission entirely when the
/// fault suppresses the defining code on every available input.
fn union_graph_pd() {
    use omislice::omislice_analysis::ProgramAnalysis;
    use omislice::omislice_interp::{run_traced, RunConfig};
    use omislice::omislice_slicing::UnionGraph;
    use omislice_corpus::WorkloadGen;

    println!("Ablation 5. Potential dependences from the union dependence graph (§4)");
    let mut rows = Vec::new();
    for b in all_benchmarks() {
        for f in &b.faults {
            let prepared = b.prepare(f).expect("corpus compiles");
            let analysis = ProgramAnalysis::build(&prepared.faulty);
            // Build the union graph over the whole test suite (failing +
            // passing + generated), as the prototype did.
            let mut union = UnionGraph::new();
            let mut runs: Vec<Vec<i64>> = vec![f.failing_input.clone()];
            runs.extend(f.passing_inputs.iter().cloned());
            let mut gen = WorkloadGen::new(0xA11CE);
            for _ in 0..10 {
                runs.push(gen.for_benchmark(b.name));
            }
            for inputs in runs {
                let cfg = RunConfig::with_inputs(inputs);
                union.add_trace(&run_traced(&prepared.faulty, &analysis, &cfg).trace);
            }

            let baseline = b
                .session(f)
                .expect("session builds")
                .locate(&LocateConfig::default())
                .expect("locates");
            let with_union = b
                .session(f)
                .expect("session builds")
                .locate(&LocateConfig {
                    union_graph: Some(union),
                    ..LocateConfig::default()
                })
                .expect("locates");
            rows.push(vec![
                b.name.to_string(),
                f.id.to_string(),
                format!(
                    "{}/{}",
                    if baseline.found { "found" } else { "miss" },
                    baseline.verifications
                ),
                format!(
                    "{}/{}",
                    if with_union.found { "found" } else { "MISS" },
                    with_union.verifications
                ),
            ]);
        }
    }
    println!(
        "{}",
        render(
            &[
                "Benchmark",
                "Error",
                "static PD (result/verifs)",
                "union-graph PD (result/verifs)",
            ],
            &rows
        )
    );
    println!("A MISS means no profiled run ever executed the omitted definition,");
    println!("so the union graph offers no candidate — static PD does not depend");
    println!("on test coverage, which is why this reproduction defaults to it.");
}

/// Intraprocedural vs interprocedural potential-dependence reach: the
/// wider reach can only add candidates (and thus verifications), never
/// lose the root cause.
fn pd_reach() {
    use omislice::omislice_analysis::PdMode;
    use omislice::DebugSession;

    println!("Ablation 6. Potential-dependence reach (found / verifications / edges)");
    let mut rows = Vec::new();
    for b in all_benchmarks() {
        for f in &b.faults {
            let prepared = b.prepare(f).expect("corpus compiles");
            let mut cells = vec![b.name.to_string(), f.id.to_string()];
            for mode in [PdMode::Intraprocedural, PdMode::InterproceduralGuards] {
                let session = DebugSession::builder(&prepared.faulty_src)
                    .reference(b.fixed_src)
                    .failing_input(f.failing_input.clone())
                    .profile_inputs(f.passing_inputs.iter().cloned())
                    .root_cause_stmts(prepared.roots.iter().copied())
                    .pd_mode(mode)
                    .build()
                    .expect("session builds");
                let out = session.locate(&LocateConfig::default()).expect("locates");
                cells.push(format!(
                    "{}/{}/{}",
                    if out.found { "found" } else { "MISS" },
                    out.verifications,
                    out.expanded_edges
                ));
            }
            rows.push(cells);
        }
    }
    println!(
        "{}",
        render(
            &[
                "Benchmark",
                "Error",
                "intraprocedural",
                "interprocedural guards"
            ],
            &rows
        )
    );
}
