//! Overhead guard for the observability layer.
//!
//! ```text
//! overhead_guard [--tolerance 0.05] [--reps 7]
//! overhead_guard --against <old.json> <new.json> [--tolerance 0.10]
//! ```
//!
//! Default mode runs the sed trace → graph → slice → verify pipeline
//! back-to-back with the recorder disabled, enabled, and enabled with
//! the timeline profiler armed (min of N reps each) and fails if either
//! instrumented run exceeds the disabled run by more than the
//! tolerance. Because the disabled path costs one relaxed atomic load
//! per guarded site, *enabled* staying within tolerance of *disabled*
//! bounds the disabled path's drift from the pre-obs code far tighter
//! than the 5% budget; the profiled pass holds `--profile-out` to the
//! same contract.
//!
//! `--against` compares two `BENCH_sweep.json` files row by row:
//! deterministic columns must match exactly; timing columns of the new
//! file must not regress past the tolerance (with a small absolute
//! floor so microsecond-scale cells don't trip on noise). Run it when
//! regenerating the committed sweep so no column regresses >10%.

use omislice::omislice_analysis::ProgramAnalysis;
use omislice::omislice_interp::{run_traced, ResumeMode, RunConfig};
use omislice::omislice_lang::compile;
use omislice::omislice_slicing::{relevant_slice_on, DepGraph};
use omislice::{Verifier, VerifierMode};
use omislice_bench::sweep::{verify_batch, SWEEP_SEED};
use omislice_corpus::{all_benchmarks, WorkloadGen};
use omislice_obs::json::{parse, Json};
use std::process::ExitCode;
use std::time::Instant;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match run(&args) {
        Ok(summary) => {
            println!("{summary}");
            ExitCode::SUCCESS
        }
        Err(msg) => {
            eprintln!("overhead_guard: {msg}");
            ExitCode::FAILURE
        }
    }
}

fn run(args: &[String]) -> Result<String, String> {
    let mut tolerance: Option<f64> = None;
    let mut reps = 7usize;
    let mut against: Option<(String, String)> = None;
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--tolerance" => {
                let v = it.next().ok_or("--tolerance needs a value")?;
                tolerance = Some(v.parse().map_err(|_| format!("bad --tolerance `{v}`"))?);
            }
            "--reps" => {
                let v = it.next().ok_or("--reps needs a value")?;
                reps = v.parse().map_err(|_| format!("bad --reps `{v}`"))?;
            }
            "--against" => {
                let old = it.next().ok_or("--against needs two files")?.clone();
                let new = it.next().ok_or("--against needs two files")?.clone();
                against = Some((old, new));
            }
            other => return Err(format!("unexpected argument `{other}`")),
        }
    }
    match against {
        Some((old, new)) => compare_sweeps(&old, &new, tolerance.unwrap_or(0.10)),
        None => in_process_guard(tolerance.unwrap_or(0.05), reps.max(1)),
    }
}

/// One full pipeline pass over the sed scale-50 workload; returns
/// elapsed nanoseconds. Deterministic, so min-of-N is a stable
/// measurement.
fn pipeline_ns(
    program: &omislice::omislice_lang::Program,
    analysis: &ProgramAnalysis,
    config: &RunConfig,
) -> u128 {
    let t = Instant::now();
    let run = run_traced(program, analysis, config);
    run.trace.build_index(1);
    let graph = DepGraph::with_jobs(&run.trace, 1);
    if let Some(last) = run.trace.outputs().last() {
        let _ = relevant_slice_on(&graph, analysis, last.inst, 1);
    }
    let requests = verify_batch(&run.trace, analysis, 16);
    if !requests.is_empty() {
        let mut v = Verifier::new(program, analysis, config, &run.trace, VerifierMode::Edge)
            .with_resume(ResumeMode::Auto);
        v.verify_all(&requests);
    }
    t.elapsed().as_nanos()
}

fn in_process_guard(tolerance: f64, reps: usize) -> Result<String, String> {
    let benchmarks = all_benchmarks();
    let b = benchmarks
        .iter()
        .find(|b| b.name == "sed")
        .ok_or("no sed benchmark in the corpus")?;
    let program = compile(b.fixed_src).map_err(|e| format!("corpus compile: {e}"))?;
    let analysis = ProgramAnalysis::build(&program);
    let inputs = WorkloadGen::new(SWEEP_SEED).sized_for_benchmark(b.name, 50);
    let config = RunConfig::with_inputs(inputs);

    // Three attempts damp scheduler noise: one flaky spike must not
    // fail CI, a systematic regression fails all three.
    let mut last = (0.0, 0.0, 0u128, 0u128, 0u128);
    for attempt in 1..=3 {
        omislice_obs::set_enabled(false);
        let mut disabled = u128::MAX;
        let mut enabled = u128::MAX;
        let mut profiled = u128::MAX;
        // Interleave the three modes so drift (thermal, cache warmup)
        // hits all equally. The third mode arms the timeline profiler on
        // top of the span recorder — the `--profile-out` configuration.
        for _ in 0..reps {
            omislice_obs::set_enabled(false);
            disabled = disabled.min(pipeline_ns(&program, &analysis, &config));
            omislice_obs::set_enabled(true);
            enabled = enabled.min(pipeline_ns(&program, &analysis, &config));
            omislice_obs::profile::profile_reset();
            omislice_obs::profile::set_profiling(true);
            profiled = profiled.min(pipeline_ns(&program, &analysis, &config));
            omislice_obs::profile::set_profiling(false);
            let _ = omislice_obs::profile::profile_drain();
        }
        omislice_obs::set_enabled(false);
        let _ = omislice_obs::drain();
        let ratio = enabled as f64 / disabled as f64;
        let prof_ratio = profiled as f64 / disabled as f64;
        last = (ratio, prof_ratio, disabled, enabled, profiled);
        if ratio <= 1.0 + tolerance && prof_ratio <= 1.0 + tolerance {
            return Ok(format!(
                "overhead OK (attempt {attempt}): disabled {:.1}us, enabled {:.1}us (ratio {:.3}), profiled {:.1}us (ratio {:.3}) <= {:.2}",
                disabled as f64 / 1e3,
                enabled as f64 / 1e3,
                ratio,
                profiled as f64 / 1e3,
                prof_ratio,
                1.0 + tolerance
            ));
        }
    }
    Err(format!(
        "recorder overhead out of budget: disabled {:.1}us, enabled {:.1}us (ratio {:.3}), profiled {:.1}us (ratio {:.3}) > {:.2}",
        last.2 as f64 / 1e3,
        last.3 as f64 / 1e3,
        last.0,
        last.4 as f64 / 1e3,
        last.1,
        1.0 + tolerance
    ))
}

// --- sweep-file comparison ----------------------------------------------

/// Timing columns (microseconds) checked with relative tolerance plus
/// a 250us absolute floor; everything else numeric must match exactly.
const TIMING_COLS: [&str; 3] = ["plain_us", "graph_us", "rs_us"];
const VERIFY_TIMING_COLS: [&str; 3] = ["scratch_us", "resumed_us", "memo_us"];
const FLOOR_US: f64 = 250.0;

fn as_f64(v: &Json) -> Option<f64> {
    match v {
        Json::Int(i) => Some(*i as f64),
        Json::UInt(u) => Some(*u as f64),
        Json::Float(f) => Some(*f),
        _ => None,
    }
}

fn load_rows(path: &str) -> Result<Vec<Json>, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("cannot read `{path}`: {e}"))?;
    let doc = parse(&text).map_err(|e| format!("{path}: {e}"))?;
    doc.get("rows")
        .and_then(Json::as_array)
        .map(<[Json]>::to_vec)
        .ok_or_else(|| format!("{path}: no `rows` array"))
}

fn row_key(r: &Json) -> Option<(String, i64)> {
    Some((
        r.get("benchmark")?.as_str()?.to_string(),
        r.get("scale")?.as_int()?,
    ))
}

fn check_timing(
    key: &(String, i64),
    col: &str,
    old: &Json,
    new: &Json,
    tolerance: f64,
    failures: &mut Vec<String>,
) {
    let (Some(o), Some(n)) = (old.get(col).and_then(as_f64), new.get(col).and_then(as_f64)) else {
        return;
    };
    if n > o * (1.0 + tolerance) + FLOOR_US {
        failures.push(format!(
            "{}/x{} {col}: {o:.1}us -> {n:.1}us (> {:.0}% + {FLOOR_US:.0}us floor)",
            key.0,
            key.1,
            tolerance * 100.0
        ));
    }
}

fn compare_sweeps(old_path: &str, new_path: &str, tolerance: f64) -> Result<String, String> {
    let old_rows = load_rows(old_path)?;
    let new_rows = load_rows(new_path)?;
    let mut failures = Vec::new();
    let mut compared = 0usize;
    for old in &old_rows {
        let Some(key) = row_key(old) else { continue };
        let Some(new) = new_rows.iter().find(|r| row_key(r).as_ref() == Some(&key)) else {
            failures.push(format!("{}/x{}: row missing from {new_path}", key.0, key.1));
            continue;
        };
        compared += 1;
        for col in ["trace_len", "ds_dyn", "rs_dyn", "input_len"] {
            if old.get(col) != new.get(col) {
                failures.push(format!(
                    "{}/x{} {col}: deterministic column changed ({:?} -> {:?})",
                    key.0,
                    key.1,
                    old.get(col),
                    new.get(col)
                ));
            }
        }
        for col in TIMING_COLS {
            check_timing(&key, col, old, new, tolerance, &mut failures);
        }
        if let (Some(ov), Some(nv)) = (old.get("verify"), new.get("verify")) {
            for col in VERIFY_TIMING_COLS {
                check_timing(&key, col, ov, nv, tolerance, &mut failures);
            }
        }
    }
    if compared == 0 {
        return Err(format!(
            "no comparable rows between {old_path} and {new_path}"
        ));
    }
    if failures.is_empty() {
        Ok(format!(
            "sweep comparison OK: {compared} rows, no column regressed past {:.0}%",
            tolerance * 100.0
        ))
    } else {
        Err(format!("sweep regression:\n  {}", failures.join("\n  ")))
    }
}
