//! The differential correctness harness: generate random programs with
//! seeded omission faults ([`omislice_lang::generate_case`]) and
//! cross-check every optimized pipeline against naive oracles and
//! against itself under every execution-strategy knob.
//!
//! Per generated `(program, failing input, fault)` case the harness
//! asserts the paper's invariants:
//!
//! 1. **Exposure / ground truth** — the failing input makes the faulty
//!    run's output diverge from the fixed run's, every passing input
//!    keeps them identical, and the plain and tracing interpreters
//!    print the same values;
//! 2. **DS ⊆ RS** — the dynamic slice of the wrong output is contained
//!    in the relevant slice (relevant slicing only *adds* potential
//!    dependences, §2 of the paper);
//! 3. **PS ⊆ DS** — confidence pruning only removes candidates, never
//!    invents them;
//! 4. **Alignment** — the indexed [`Aligner::match_inst`] agrees with
//!    the naive O(n·depth) region-walk oracle on every probed use, for
//!    every sampled landed switch (Definition 3 / Algorithm 1);
//! 5. **Verifier determinism** — [`Verifier::verify_all`] verdicts,
//!    outcomes, and scheduling-independent counters are identical
//!    across `jobs` × resume × fault-plan settings;
//! 6. **Locate + journal** — [`locate_fault`] terminates, finds the
//!    planted root cause (the oracle knows `v_exp` by construction),
//!    its final slice contains the root statement, and the normalized
//!    `--obs-out` journal is byte-identical across `jobs` × resume;
//! 7. **Chaos recovery** (`--chaos`) — the full pipeline (trace →
//!    save → load → locate) run under every injected-fault plan of the
//!    [`omislice_trace::ChaosPlan`] sweep recovers without aborting and
//!    produces the *same* normalized journal as the clean pipeline;
//! 8. **Scheduler equivalence** — the checkpoint-trie verification
//!    scheduler is a pure execution-plan optimization: locate journals
//!    under the trie scheduler (dense and sparse capture thresholds)
//!    and the legacy flat scheduler are byte-identical to the
//!    invariant-6 reference across `jobs` × resume, and (`--chaos`)
//!    both schedulers agree on every recovered chaos pipeline.
//!
//! Divergences are returned as human-readable failure strings carrying
//! the seed, so every finding is reproducible with
//! `diffcheck --start <seed> --seeds 1`.

use omislice::{
    build_journal, locate_fault, GroundTruthOracle, JournalMeta, LocateConfig, SchedulerMode,
    UserOracle, Verification, Verifier, VerifierMode, VerifyRequest,
};
use omislice_align::Aligner;
use omislice_analysis::ProgramAnalysis;
use omislice_interp::{
    run_plain, run_traced, FaultAction, FaultPlan, ResumeMode, RunConfig, SwitchSpec,
};
use omislice_lang::{generate_case, GenOptions, GeneratedCase};
use omislice_obs::{parse, strip_timing, to_jsonl, Json};
use omislice_slicing::{prune_slice, relevant_slice, DepGraph, Feedback, ValueProfile};
use omislice_trace::{take_recovery, ChaosPlan, InstId, Supervisor, Trace, Value};

/// What to run. `seeds` cases are checked, starting at `start_seed`;
/// `quick` trades probe density for speed (CI smoke mode) without
/// changing *which* invariants run.
#[derive(Debug, Clone)]
pub struct DiffcheckOptions {
    /// Number of consecutive seeds to check.
    pub seeds: u64,
    /// First seed (seed `s` always generates the same case).
    pub start_seed: u64,
    /// Sample fewer alignment probes and verifier configurations.
    pub quick: bool,
    /// Also run invariant 7: the chaos-plan sweep cross-checking
    /// faulted-and-recovered pipelines against the clean oracle.
    pub chaos: bool,
}

impl Default for DiffcheckOptions {
    fn default() -> Self {
        DiffcheckOptions {
            seeds: 50,
            start_seed: 0,
            quick: false,
            chaos: false,
        }
    }
}

/// Aggregate result of a [`run_diffcheck`] sweep. The counters exist so
/// callers (and the CI gate) can assert the sweep was not vacuous.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct DiffcheckSummary {
    /// Cases generated and checked.
    pub cases: usize,
    /// Cases whose failing input exposed the fault (must equal `cases`).
    pub exposed: usize,
    /// `match_inst` probes compared against the naive oracle.
    pub alignment_probes: usize,
    /// Switched runs sampled for alignment (landed switches only).
    pub alignment_switches: usize,
    /// `verify_all` configuration snapshots compared.
    pub verifier_configs: usize,
    /// `locate_fault` runs that found the planted root.
    pub located: usize,
    /// Normalized journals compared byte-for-byte.
    pub journals_compared: usize,
    /// Scheduler configurations (trie thresholds × flat) whose journals
    /// matched the invariant-6 reference byte-for-byte.
    pub scheduler_configs: usize,
    /// Faulted pipelines cross-checked against the clean oracle
    /// (`--chaos` only).
    pub chaos_pipelines: usize,
    /// Recovery actions the chaos pipelines performed (`--chaos` only;
    /// must be nonzero or the chaos sweep was vacuous).
    pub chaos_recoveries: u64,
    /// Human-readable divergence reports (empty ⇔ all invariants held).
    pub failures: Vec<String>,
}

/// Per-case probe counts folded into the summary.
struct CaseStats {
    alignment_probes: usize,
    alignment_switches: usize,
    verifier_configs: usize,
    journals_compared: usize,
    scheduler_configs: usize,
    chaos_pipelines: usize,
    chaos_recoveries: u64,
}

/// Runs the harness over `opts.seeds` consecutive seeds. Never panics on
/// a divergence — failures are collected per seed so one bad case does
/// not hide the rest of the sweep.
pub fn run_diffcheck(opts: &DiffcheckOptions) -> DiffcheckSummary {
    let mut summary = DiffcheckSummary::default();
    for seed in opts.start_seed..opts.start_seed + opts.seeds {
        summary.cases += 1;
        match check_case(seed, opts.quick, opts.chaos) {
            Ok(stats) => {
                summary.exposed += 1;
                summary.alignment_probes += stats.alignment_probes;
                summary.alignment_switches += stats.alignment_switches;
                summary.verifier_configs += stats.verifier_configs;
                summary.located += 1;
                summary.journals_compared += stats.journals_compared;
                summary.scheduler_configs += stats.scheduler_configs;
                summary.chaos_pipelines += stats.chaos_pipelines;
                summary.chaos_recoveries += stats.chaos_recoveries;
            }
            Err(report) => summary.failures.push(format!("seed {seed}: {report}")),
        }
    }
    summary
}

/// Checks every invariant on the case generated by `seed`; the error
/// string names the first invariant that failed.
fn check_case(seed: u64, quick: bool, chaos: bool) -> Result<CaseStats, String> {
    let case = generate_case(seed, &GenOptions::default());
    let fixed_analysis = ProgramAnalysis::build(&case.fixed);
    let analysis = ProgramAnalysis::build(&case.faulty);
    let config = RunConfig::with_inputs(case.failing_input.clone());

    // --- invariant 1: exposure, benign inputs, interpreter agreement ---
    let fixed_run = run_traced(&case.fixed, &fixed_analysis, &config);
    let run = run_traced(&case.faulty, &analysis, &config);
    if !fixed_run.trace.termination().is_normal() || !run.trace.termination().is_normal() {
        return Err("generated run did not terminate normally".to_string());
    }
    let trace = &run.trace;
    if output_values(trace) == output_values(&fixed_run.trace) {
        return Err("failing input does not expose the planted fault".to_string());
    }
    for (which, program, reference) in [
        ("faulty", &case.faulty, trace),
        ("fixed", &case.fixed, &fixed_run.trace),
    ] {
        let plain = run_plain(program, &config);
        if plain.outputs != output_values(reference) {
            return Err(format!(
                "plain and tracing interpreters disagree on the {which} program"
            ));
        }
    }
    let mut profile = ValueProfile::new();
    profile.add_trace(trace);
    for input in &case.passing_inputs {
        let pass_cfg = RunConfig::with_inputs(input.clone());
        let pass_fixed = run_plain(&case.fixed, &pass_cfg);
        let pass_faulty = run_traced(&case.faulty, &analysis, &pass_cfg);
        if pass_fixed.outputs != output_values(&pass_faulty.trace) {
            return Err(format!("passing input {:?} is not benign", input[0]));
        }
        profile.add_trace(&pass_faulty.trace);
    }

    let oracle = GroundTruthOracle::new(&case.fixed, &fixed_analysis, &config, [case.root]);
    let class = oracle
        .classify_outputs(trace)
        .ok_or("oracle found no wrong output in an exposed run")?;
    if class.expected.is_none() {
        return Err("oracle does not know v_exp for the wrong output".to_string());
    }
    let wrong = class.wrong;

    // --- invariant 2: DS ⊆ RS -----------------------------------------
    let graph = DepGraph::new(trace);
    let ds = graph.backward_slice(wrong);
    let rs = relevant_slice(trace, &analysis, wrong);
    if let Some(&escapee) = ds.insts().iter().find(|&&i| !rs.contains(i)) {
        return Err(format!("DS ⊄ RS: {escapee} is in DS but not in RS"));
    }

    // --- invariant 3: PS ⊆ DS -----------------------------------------
    let ps = prune_slice(
        &graph,
        &analysis,
        &profile,
        &class.correct,
        wrong,
        &Feedback::default(),
    );
    let pruned = ps.pruned_slice(&graph);
    if let Some(&escapee) = pruned.insts().iter().find(|&&i| !ds.contains(i)) {
        return Err(format!("PS ⊄ DS: {escapee} survived pruning outside DS"));
    }

    // --- invariant 4: indexed alignment == naive oracle ----------------
    let preds: Vec<InstId> = trace
        .insts()
        .filter(|&i| trace.event(i).is_predicate())
        .collect();
    let mut stats = CaseStats {
        alignment_probes: 0,
        alignment_switches: 0,
        verifier_configs: 0,
        journals_compared: 0,
        scheduler_configs: 0,
        chaos_pipelines: 0,
        chaos_recoveries: 0,
    };
    let max_switches = if quick { 3 } else { 8 };
    let stride = (preds.len() / max_switches).max(1);
    for &p in preds.iter().step_by(stride).take(max_switches) {
        let spec = SwitchSpec::new(trace.event(p).stmt, trace.occurrence_index(p) as u32);
        let switched = run_traced(&case.faulty, &analysis, &config.switched(spec));
        if switched.switched != Some(p) || !switched.trace.termination().is_normal() {
            continue; // the switch was cut off or crashed: nothing to align
        }
        stats.alignment_switches += 1;
        let aligner = Aligner::new(trace, &switched.trace);
        let u_stride = if quick { (trace.len() / 64).max(1) } else { 1 };
        for u in (0..trace.len()).step_by(u_stride) {
            let u = InstId(u as u32);
            let fast = aligner.match_inst(p, u);
            let naive = aligner.match_inst_naive(p, u);
            if fast != naive {
                return Err(format!(
                    "alignment divergence at switch {p}, use {u}: indexed {fast:?} vs naive {naive:?}"
                ));
            }
            stats.alignment_probes += 1;
        }
    }

    // --- invariant 5: verify_all determinism ---------------------------
    let use_var = *analysis
        .index()
        .stmt(trace.event(wrong).stmt)
        .uses
        .first()
        .ok_or("wrong output has no used variable")?;
    let requests: Vec<VerifyRequest> = preds
        .iter()
        .filter(|&&p| p < wrong)
        .take(if quick { 6 } else { 16 })
        .map(|&p| VerifyRequest {
            p,
            u: wrong,
            var: use_var,
            wrong_output: wrong,
            expected: class.expected,
        })
        .collect();
    if requests.is_empty() {
        return Err("no predicate precedes the wrong output".to_string());
    }
    let plan_target = trace.event(requests[0].p).stmt;
    let plans = [
        None,
        Some(FaultPlan::new(plan_target, 0, FaultAction::ExhaustBudget)),
        Some(FaultPlan::new(plan_target, 0, FaultAction::PanicHarness)),
    ];
    for plan in plans {
        let mut reference: Option<(Vec<Verification>, Vec<usize>)> = None;
        for jobs in [1usize, 4] {
            for resume in [ResumeMode::Auto, ResumeMode::Disabled] {
                let mut v =
                    Verifier::new(&case.faulty, &analysis, &config, trace, VerifierMode::Edge)
                        .with_jobs(jobs)
                        .with_resume(resume)
                        .with_fault_plan(plan);
                let verdicts = v.verify_all(&requests);
                let s = v.stats();
                let got = (
                    verdicts,
                    vec![
                        s.verifications,
                        s.reexecutions,
                        s.cache_hits,
                        s.completed_runs,
                        s.budget_exhausted_runs,
                        s.crashed_runs,
                        s.switch_not_landed_runs,
                        s.panics_isolated,
                        s.input_underflows,
                    ],
                );
                stats.verifier_configs += 1;
                match &reference {
                    Some(r) if r != &got => {
                        return Err(format!(
                            "verify_all diverged: jobs={jobs} resume={resume:?} plan={plan:?}"
                        ));
                    }
                    Some(_) => {}
                    None => reference = Some(got),
                }
            }
        }
    }

    // --- invariant 6: locate finds the root; journals byte-identical ---
    let meta = JournalMeta {
        program: format!("diffcheck-{seed}"),
    };
    let jobs_set: &[usize] = if quick { &[1, 4] } else { &[1, 2, 4] };
    let mut reference: Option<String> = None;
    for &jobs in jobs_set {
        for resume in [ResumeMode::Auto, ResumeMode::Disabled] {
            let lc = LocateConfig {
                jobs,
                resume,
                ..LocateConfig::default()
            };
            let outcome = locate_fault(
                &case.faulty,
                &analysis,
                &config,
                trace,
                &profile,
                &oracle,
                &lc,
            )
            .map_err(|e| format!("locate_fault failed: {e}"))?;
            if !outcome.found {
                return Err(format!(
                    "locate_fault missed the planted root {} (jobs={jobs} resume={resume:?})",
                    case.root
                ));
            }
            if !outcome.full_slice.contains_stmt(case.root) && !outcome.ips.contains_stmt(case.root)
            {
                return Err(format!(
                    "final slice does not contain the planted root {}",
                    case.root
                ));
            }
            let journal = normalize(&to_jsonl(&build_journal(
                &meta, &lc, &outcome, trace, None, None, None,
            )))?;
            stats.journals_compared += 1;
            match &reference {
                Some(r) if r != &journal => {
                    return Err(format!("journal diverged at jobs={jobs} resume={resume:?}"));
                }
                Some(_) => {}
                None => reference = Some(journal),
            }
        }
    }

    // --- invariant 8: the trie scheduler is a pure plan optimization ---
    // The invariant-6 reference ran the default configuration (trie,
    // default threshold). Every other scheduler shape must reproduce it
    // byte for byte: a dense trie (capture everything), a sparse trie
    // (ancestor resumes only), and the legacy flat scheduler.
    let clean = reference
        .clone()
        .expect("invariant 6 set the journal reference");
    let shapes: &[(SchedulerMode, Option<usize>)] = if quick {
        &[(SchedulerMode::Trie, Some(1)), (SchedulerMode::Flat, None)]
    } else {
        &[
            (SchedulerMode::Trie, Some(1)),
            (SchedulerMode::Trie, Some(1000)),
            (SchedulerMode::Flat, None),
            (SchedulerMode::Flat, Some(1)),
        ]
    };
    for &(scheduler, capture_threshold) in shapes {
        for &jobs in jobs_set {
            for resume in [ResumeMode::Auto, ResumeMode::Disabled] {
                let lc = LocateConfig {
                    jobs,
                    resume,
                    scheduler,
                    capture_threshold,
                    ..LocateConfig::default()
                };
                let outcome = locate_fault(
                    &case.faulty,
                    &analysis,
                    &config,
                    trace,
                    &profile,
                    &oracle,
                    &lc,
                )
                .map_err(|e| format!("locate_fault ({scheduler:?}) failed: {e}"))?;
                let journal = normalize(&to_jsonl(&build_journal(
                    &meta, &lc, &outcome, trace, None, None, None,
                )))?;
                if journal != clean {
                    return Err(format!(
                        "journal diverged from the reference under {scheduler:?} \
                         threshold={capture_threshold:?} jobs={jobs} resume={resume:?}"
                    ));
                }
                stats.scheduler_configs += 1;
            }
        }
    }

    // --- invariant 7 (--chaos): faulted pipelines match the clean one ---
    if chaos {
        let clean = reference.as_deref().expect("invariant 6 set the reference");
        check_chaos_pipelines(
            &case, &analysis, &config, &profile, &oracle, &meta, clean, seed, quick, &mut stats,
        )?;
    }

    Ok(stats)
}

/// Invariant 7: for every chaos plan of the sweep, run the *whole*
/// pipeline — supervised trace, atomic save, supervised load, locate —
/// with the plan installed, and require the normalized journal to be
/// byte-identical to the clean pipeline's. The injected faults must be
/// absorbed by the degradation ladders, never change a verdict, and
/// never abort the process.
#[allow(clippy::too_many_arguments)]
fn check_chaos_pipelines(
    case: &GeneratedCase,
    analysis: &ProgramAnalysis,
    config: &RunConfig,
    profile: &ValueProfile,
    oracle: &GroundTruthOracle,
    meta: &JournalMeta,
    clean_journal: &str,
    seed: u64,
    quick: bool,
    stats: &mut CaseStats,
) -> Result<(), String> {
    // Recorder-side sites only fire on traces long enough to rotate a
    // chunk; the file-side sites (encode/save/decode/mmap) fire on every
    // save/load roundtrip, so the sweep is never vacuous.
    let plans: &[&str] = if quick {
        &[
            "builder=panic",
            "encode=corrupt,decode=corrupt",
            "save=short-write,mmap=fail",
        ]
    } else {
        &[
            "builder=panic",
            "channel=disconnect",
            "queue=stall",
            "encode=corrupt,decode=corrupt",
            "save=short-write",
            "save=enospc,mmap=fail",
        ]
    };
    let tmp = std::env::temp_dir().join(format!(
        "omislice-diffcheck-{}-{seed}.omitrace",
        std::process::id()
    ));
    for text in plans {
        let plan =
            ChaosPlan::parse(text).map_err(|e| format!("chaos plan `{text}` rejected: {e}"))?;
        let sup = Supervisor::new().with_chaos(Some(plan));
        let _ = take_recovery();
        let chaos_run = sup.run(|| run_traced(&case.faulty, analysis, config));
        sup.save_trace(&chaos_run.trace, &tmp)
            .map_err(|e| format!("chaos `{text}`: supervised save failed: {e}"))?;
        let loaded = sup
            .load_trace(&tmp)
            .map_err(|e| format!("chaos `{text}`: supervised load failed: {e}"))?;
        // Invariant 8 under chaos: both verification schedulers must
        // agree with the clean pipeline on the recovered trace.
        for scheduler in [SchedulerMode::Trie, SchedulerMode::Flat] {
            let lc = LocateConfig {
                scheduler,
                ..LocateConfig::default()
            };
            let outcome = locate_fault(
                &case.faulty,
                analysis,
                config,
                &loaded,
                profile,
                oracle,
                &lc,
            )
            .map_err(|e| {
                format!("chaos `{text}`: locate ({scheduler:?}) on the recovered trace failed: {e}")
            })?;
            if !outcome.found {
                std::fs::remove_file(&tmp).ok();
                return Err(format!(
                    "chaos `{text}`: recovered pipeline ({scheduler:?}) missed the planted root {}",
                    case.root
                ));
            }
            let journal = normalize(&to_jsonl(&build_journal(
                meta, &lc, &outcome, &loaded, None, None, None,
            )))?;
            if journal != clean_journal {
                std::fs::remove_file(&tmp).ok();
                return Err(format!(
                    "chaos `{text}`: recovered pipeline's journal ({scheduler:?}) differs \
                     from the clean one"
                ));
            }
        }
        stats.chaos_pipelines += 1;
        stats.chaos_recoveries += take_recovery().total();
    }
    std::fs::remove_file(&tmp).ok();
    Ok(())
}

/// The printed values of a traced run, in order.
fn output_values(trace: &Trace) -> Vec<Value> {
    trace.outputs().iter().map(|o| o.value).collect()
}

/// Strips timing, then drops the header's `jobs`/`resume` fields — the
/// only journal content allowed to differ between configurations.
fn normalize(jsonl: &str) -> Result<String, String> {
    let stripped = strip_timing(jsonl).map_err(|e| format!("journal strip failed: {e}"))?;
    let mut out = String::new();
    for line in stripped.lines() {
        let record = parse(line).map_err(|e| format!("journal line does not parse: {e}"))?;
        if record.get("type").and_then(Json::as_str) == Some("header") {
            let Json::Object(fields) = record else {
                return Err("journal header is not an object".to_string());
            };
            let kept: Vec<(String, Json)> = fields
                .into_iter()
                .filter(|(k, _)| k != "jobs" && k != "resume")
                .collect();
            out.push_str(&Json::Object(kept).to_string());
        } else {
            out.push_str(line);
        }
        out.push('\n');
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_seed_passes_all_invariants() {
        let summary = run_diffcheck(&DiffcheckOptions {
            seeds: 2,
            start_seed: 0,
            quick: true,
            chaos: false,
        });
        assert_eq!(summary.failures, Vec::<String>::new());
        assert_eq!(summary.cases, 2);
        assert_eq!(summary.exposed, 2);
        assert_eq!(summary.located, 2);
        assert!(summary.alignment_probes > 0);
        assert!(summary.verifier_configs > 0);
        assert!(summary.journals_compared > 0);
        assert!(summary.scheduler_configs > 0, "invariant 8 must run");
        assert_eq!(summary.chaos_pipelines, 0);
    }

    #[test]
    fn chaos_mode_recovers_and_matches_the_clean_pipeline() {
        let summary = run_diffcheck(&DiffcheckOptions {
            seeds: 1,
            start_seed: 0,
            quick: true,
            chaos: true,
        });
        assert_eq!(summary.failures, Vec::<String>::new());
        assert_eq!(
            summary.chaos_pipelines, 3,
            "every plan of the quick sweep ran"
        );
        // The file-side chaos sites fire on every save/load roundtrip,
        // so a sweep with zero recoveries means injection is broken.
        assert!(
            summary.chaos_recoveries > 0,
            "chaos sweep was vacuous: no recovery was exercised"
        );
    }
}
