//! Parameter sweep: how trace size, slice sizes, and analysis costs
//! scale with workload size — the data-series companion to the paper's
//! tables (its evaluation has no scaling figure; this harness provides
//! the series a replication would plot).
//!
//! For each corpus benchmark, generated workloads of increasing size run
//! through the tracing interpreter; the series reports trace length, DS
//! and RS sizes for the last output, wall-clock for Plain, Graph, and RS
//! computation, and the verification engine's cost for a LEFS-style
//! batch of `VerifyDep` queries executed from scratch, resumed from
//! checkpoints, and re-submitted against the warm verdict memo.
//!
//! The library entry point is [`run_sweep`]; the `sweep` binary wraps it
//! with flag parsing, prints [`render_table`], and writes [`to_json`] so
//! plots and regression checks can consume the series without
//! screen-scraping.

use omislice::omislice_analysis::ProgramAnalysis;
use omislice::omislice_interp::{run_plain, run_traced, ResumeMode, RunConfig};
use omislice::omislice_lang::compile;
use omislice::omislice_slicing::{relevant_slice_on, DepGraph};
use omislice::omislice_trace::{load_trace, save_trace, Trace, VerificationStats};
use omislice::{Verifier, VerifierMode, VerifyRequest};
use omislice_corpus::{all_benchmarks, Benchmark, WorkloadGen};
use omislice_obs::Json;
use std::collections::HashSet;
use std::time::Instant;

/// The seed every sweep run uses, recorded in the JSON header.
pub const SWEEP_SEED: u64 = 0x5EED;

/// What to sweep: workload scales (per benchmark) and the worker-thread
/// count for index construction and frontier-parallel discovery.
pub struct SweepOptions {
    /// Workload payload sizes, one series point per scale.
    pub scales: Vec<usize>,
    /// Worker threads for the indexed slicers.
    pub jobs: usize,
    /// Repetitions of each timed section; the minimum is reported (the
    /// Table 4 "best of N" methodology — every section is deterministic,
    /// so the minimum is the least-perturbed measurement). Verification
    /// passes run once: they take seconds and self-average.
    pub reps: usize,
    /// Address of a running `omislice serve` instance. When set, each
    /// sample additionally measures served locate latency (cold cache,
    /// warm cache) against the cold process-start CLI baseline.
    pub via: Option<String>,
}

impl Default for SweepOptions {
    fn default() -> Self {
        SweepOptions {
            scales: vec![10, 50, 250, 1000, 10000],
            jobs: 1,
            reps: 5,
            via: None,
        }
    }
}

/// Runs `f` `reps` times (at least once), returning the last value and
/// the minimum elapsed time. `f` must be deterministic.
fn timed_min<T>(reps: usize, mut f: impl FnMut() -> T) -> (T, u128) {
    let mut best = u128::MAX;
    let mut out = None;
    for _ in 0..reps.max(1) {
        let t = Instant::now();
        let v = f();
        best = best.min(t.elapsed().as_nanos());
        out = Some(v);
    }
    (out.expect("at least one rep"), best)
}

/// One measured point of the sweep.
pub struct Sample {
    pub benchmark: String,
    pub scale: usize,
    pub input_len: usize,
    pub trace_len: usize,
    pub ds_dyn: Option<usize>,
    pub rs_dyn: Option<usize>,
    pub plain_ns: u128,
    pub graph_ns: u128,
    pub rs_ns: u128,
    pub verify: Option<VerifySample>,
    pub phases: PhaseSample,
    pub sched: SchedSample,
    pub io: IoSample,
    pub serve: Option<ServeSample>,
}

/// Served-locate latency for the sample's workload, measured when
/// [`SweepOptions::via`] names a running server: the cold process-start
/// CLI baseline (spawn + parse + trace + locate), the first served
/// request (cold `ArtifactCache`), and the best warm repeat, all for the
/// first benchmark fault the scaled workload exposes.
#[derive(Debug, Clone)]
pub struct ServeSample {
    /// The fault id the workload exposes.
    pub fault: String,
    /// Cold CLI baseline: best-of-reps wall time of one full `omislice
    /// locate` process.
    pub cli_cold_ns: u128,
    /// First served request, artifact cache cold for this version.
    pub served_cold_ns: u128,
    /// Best-of-reps served repeat, artifact cache warm.
    pub served_warm_ns: u128,
    /// The `cache` field of the first served response (`miss` proves the
    /// cold measurement really built artifacts).
    pub cold_cache: String,
    /// `cli_cold_ns / served_warm_ns`.
    pub warm_speedup: f64,
}

/// On-disk `omitrace/v1` round-trip cost for the sample's trace:
/// encode-and-write (`save_ns`), map-and-decode (`load_ns`), the
/// resulting file size, and the resident columnar footprint the
/// encoder starts from.
#[derive(Debug, Clone, Copy, Default)]
pub struct IoSample {
    pub save_ns: u128,
    pub load_ns: u128,
    pub file_bytes: u64,
    pub columnar_bytes: usize,
}

/// Per-phase wall time from the recorder's span histogram, measured in
/// one dedicated instrumented pass so the timed sections above it run
/// with the recorder off and stay comparable across PRs. Future perf
/// work reads these columns to attribute a win to a phase instead of
/// re-deriving the split.
#[derive(Debug, Clone, Copy, Default)]
pub struct PhaseSample {
    pub trace_ns: u64,
    pub graph_ns: u64,
    pub slice_ns: u64,
    pub verify_ns: u64,
    /// Self time per phase: wall time exclusive of child spans, so the
    /// four columns attribute each nanosecond to exactly one phase.
    pub trace_self_ns: u64,
    pub graph_self_ns: u64,
    pub slice_self_ns: u64,
    pub verify_self_ns: u64,
}

/// Scheduler-level counters from the timeline profiler, captured in the
/// same instrumented pass as [`PhaseSample`].
#[derive(Debug, Clone, Default)]
pub struct SchedSample {
    /// Per-worker busy fraction of the profiled window (verify workers
    /// only; the coordinating thread is excluded).
    pub utilization: Vec<f64>,
    /// Verification tasks completed across all workers.
    pub tasks: u64,
    /// Tasks taken from another worker's queue.
    pub steals: u64,
    /// Profiler events lost to ring overflow or drain contention.
    pub drops: u64,
}

/// Verification-engine cost for the sample's batch: from scratch, resumed
/// from checkpoints, and a re-submission of the identical batch to the
/// same verifier (`memo_ns`) that must be answered entirely from the
/// verdict cache. `stats` are the shared verifier's counters after the
/// memo pass, so `cache_hits == batch` proves the memo is alive.
/// `batches` is the batch-size scaling series: one cold trie-scheduled
/// `verify_all` per requested batch size, the data behind the
/// "verify_us grows sublinearly in batch size" acceptance check
/// (shared-prefix checkpoints amortize the replay cost across leaves).
pub struct VerifySample {
    pub batch: usize,
    pub scratch_ns: u128,
    pub resumed_ns: u128,
    pub memo_ns: u128,
    pub stats: VerificationStats,
    pub batches: Vec<BatchPoint>,
}

/// One point of the batch-size scaling series.
#[derive(Debug, Clone, Copy)]
pub struct BatchPoint {
    /// Batch size asked of [`verify_batch`].
    pub requested: usize,
    /// Requests actually available at this scale (the trace may not have
    /// `requested` distinct predicate instances).
    pub batch: usize,
    /// Cold-verifier `verify_all` wall time for the batch.
    pub wall_ns: u128,
}

/// The batch sizes of the scaling series.
pub const BATCH_SIZES: [usize; 4] = [4, 16, 64, 256];

/// The last `n` predicate instances before the final output, each paired
/// with that output as the use under test — the same batch shape the
/// `resume` Criterion bench runs, deduplicated by `(p, u, var)`. Empty
/// when the trace has no output or the output statement uses no variable.
pub fn verify_batch(trace: &Trace, analysis: &ProgramAnalysis, n: usize) -> Vec<VerifyRequest> {
    let Some(last) = trace.outputs().last() else {
        return Vec::new();
    };
    let u = last.inst;
    let Some(&var) = analysis.index().stmt(trace.event(u).stmt).uses.first() else {
        return Vec::new();
    };
    let preds: Vec<_> = trace
        .insts()
        .filter(|&i| i < u && trace.event(i).is_predicate())
        .collect();
    let mut seen = HashSet::new();
    let mut reqs: Vec<VerifyRequest> = preds
        .iter()
        .rev()
        .take(n)
        .filter(|&&p| seen.insert((p, u, var)))
        .map(|&p| VerifyRequest {
            p,
            u,
            var,
            wrong_output: u,
            expected: None,
        })
        .collect();
    // Ascending trace position: each verification wave's spine then
    // resumes from the previous wave's deepest checkpoint instead of
    // replaying the whole prefix from scratch.
    reqs.reverse();
    reqs
}

/// Locates the sibling `omislice` binary next to the current executable
/// (`target/{debug,release}` directly, or one level up from `deps/`).
fn sibling_omislice() -> Option<std::path::PathBuf> {
    let exe = std::env::current_exe().ok()?;
    let name = format!("omislice{}", std::env::consts::EXE_SUFFIX);
    let mut dir = exe.parent()?;
    for _ in 0..2 {
        let candidate = dir.join(&name);
        if candidate.exists() {
            return Some(candidate);
        }
        dir = dir.parent()?;
    }
    None
}

/// Measures served locate latency for one benchmark × workload against
/// a server at `via`, using the first fault the workload exposes under
/// the same default budgets the CLI and server run with. Returns `None`
/// (with a note on stderr, so the dropped column is never silent) when
/// no fault is exposed or a leg of the measurement fails.
fn serve_sample(via: &str, b: &Benchmark, inputs: &[i64], reps: usize) -> Option<ServeSample> {
    let skip = |why: String| {
        eprintln!("sweep: no serve columns for {} ({why})", b.name);
    };
    let fixed = match compile(b.fixed_src) {
        Ok(p) => p,
        Err(_) => return None,
    };
    let plain_cfg = RunConfig::with_inputs(inputs.to_vec());
    let want = run_plain(&fixed, &plain_cfg);
    if !want.is_normal() {
        skip("fixed run not normal at this scale".to_string());
        return None;
    }
    let mut chosen = None;
    for f in &b.faults {
        let faulty_src = f.apply(b.fixed_src);
        let Ok(faulty) = compile(&faulty_src) else {
            continue;
        };
        let got = run_plain(&faulty, &plain_cfg);
        if got.is_normal() && got.outputs != want.outputs {
            chosen = Some((f.id.to_string(), faulty_src));
            break;
        }
    }
    let Some((fault, faulty_src)) = chosen else {
        skip("no fault exposed by this workload".to_string());
        return None;
    };

    // Cold CLI baseline: a fresh process per run, parsing and tracing
    // from scratch — what a one-shot invocation actually costs.
    let cli = match sibling_omislice() {
        Some(p) => p,
        None => {
            skip("no sibling omislice binary".to_string());
            return None;
        }
    };
    let dir = std::env::temp_dir();
    let tag = format!("omislice-sweep-serve-{}-{}", std::process::id(), b.name);
    let faulty_path = dir.join(format!("{tag}-faulty.oml"));
    let fixed_path = dir.join(format!("{tag}-fixed.oml"));
    if std::fs::write(&faulty_path, &faulty_src).is_err()
        || std::fs::write(&fixed_path, b.fixed_src).is_err()
    {
        skip("cannot write temp sources".to_string());
        return None;
    }
    let csv = inputs
        .iter()
        .map(|v| v.to_string())
        .collect::<Vec<_>>()
        .join(",");
    let mut cli_cold_ns = u128::MAX;
    for _ in 0..reps.max(1) {
        let t = Instant::now();
        let out = std::process::Command::new(&cli)
            .args(["locate", "--faulty"])
            .arg(&faulty_path)
            .arg("--fixed")
            .arg(&fixed_path)
            .args(["--input", &csv])
            .output();
        let elapsed = t.elapsed().as_nanos();
        match out {
            Ok(o) if o.status.success() => cli_cold_ns = cli_cold_ns.min(elapsed),
            Ok(o) => {
                skip(format!("cli locate failed with {:?}", o.status.code()));
                return None;
            }
            Err(e) => {
                skip(format!("cannot spawn cli: {e}"));
                return None;
            }
        }
    }
    std::fs::remove_file(&faulty_path).ok();
    std::fs::remove_file(&fixed_path).ok();

    // Served legs: the first request for this (sources, input) version
    // misses the artifact cache and builds; the repeats hit it.
    let client = crate::client::ServeClient::new(via);
    let body = Json::object([
        ("faulty", Json::str(&faulty_src)),
        ("fixed", Json::str(b.fixed_src)),
        (
            "input",
            Json::Array(inputs.iter().map(|&v| Json::Int(v)).collect()),
        ),
    ]);
    let cache_of = |r: &crate::client::ServeResponse| {
        r.json()
            .ok()
            .and_then(|v| v.get("cache").and_then(|c| c.as_str().map(str::to_string)))
            .unwrap_or_default()
    };
    let t = Instant::now();
    let cold = match client.post("/locate", &body) {
        Ok(r) if r.status == 200 => r,
        Ok(r) => {
            skip(format!("served cold request failed with {}", r.status));
            return None;
        }
        Err(e) => {
            skip(e);
            return None;
        }
    };
    let served_cold_ns = t.elapsed().as_nanos();
    let cold_cache = cache_of(&cold);
    let mut served_warm_ns = u128::MAX;
    for _ in 0..reps.max(1) {
        let t = Instant::now();
        match client.post("/locate", &body) {
            Ok(r) if r.status == 200 && cache_of(&r) == "hit" => {
                served_warm_ns = served_warm_ns.min(t.elapsed().as_nanos());
            }
            Ok(r) => {
                skip(format!(
                    "served warm request was not a 200 cache hit (status {})",
                    r.status
                ));
                return None;
            }
            Err(e) => {
                skip(e);
                return None;
            }
        }
    }
    Some(ServeSample {
        fault,
        cli_cold_ns,
        served_cold_ns,
        served_warm_ns,
        cold_cache,
        warm_speedup: cli_cold_ns as f64 / served_warm_ns.max(1) as f64,
    })
}

/// Runs the sweep and returns one sample per benchmark × scale.
pub fn run_sweep(opts: &SweepOptions) -> Vec<Sample> {
    let mut samples = Vec::new();
    for b in all_benchmarks() {
        let program = compile(b.fixed_src).expect("corpus compiles");
        let analysis = ProgramAnalysis::build(&program);
        let mut gen = WorkloadGen::new(SWEEP_SEED);
        for &scale in &opts.scales {
            let inputs = gen.sized_for_benchmark(b.name, scale);
            let mut config = RunConfig::with_inputs(inputs.clone());
            // The default step budget guards *switched* runs against
            // infinite loops; the sweep's base runs are known-terminating
            // and the ×10000 tier legitimately exceeds it, so let the
            // ceiling grow with the tier.
            config.step_budget = config.step_budget.max(scale as u64 * 1024);

            let (plain, plain_ns) = timed_min(opts.reps, || run_plain(&program, &config));
            assert!(plain.is_normal(), "{}: {:?}", b.name, plain.termination);

            let (run, graph_ns) = timed_min(opts.reps, || run_traced(&program, &analysis, &config));

            // The trace index and CSR dependence graph are built once per
            // trace and amortized over every slice/locate query on it (the
            // locator builds both up front the same way), so their
            // construction is charged to neither slice timing.
            run.trace.build_index(opts.jobs);
            let graph = DepGraph::with_jobs(&run.trace, opts.jobs);

            let (ds_dyn, rs_dyn, rs_ns) = match run.trace.outputs().last() {
                Some(last) => {
                    let ds = graph.backward_slice(last.inst);
                    let (rs, rs_ns) = timed_min(opts.reps, || {
                        relevant_slice_on(&graph, &analysis, last.inst, opts.jobs)
                    });
                    (Some(ds.dynamic_size()), Some(rs.dynamic_size()), rs_ns)
                }
                None => (None, None, 0),
            };

            let requests = verify_batch(&run.trace, &analysis, 16);
            let verify = (!requests.is_empty()).then(|| {
                let scratch_ns = {
                    let mut v =
                        Verifier::new(&program, &analysis, &config, &run.trace, VerifierMode::Edge)
                            .with_resume(ResumeMode::Disabled);
                    let t = Instant::now();
                    v.verify_all(&requests);
                    t.elapsed().as_nanos()
                };
                // One verifier shared across the resumed pass and a
                // re-submission of the identical batch: the second pass
                // must be answered entirely from the verdict memo, which
                // is what `cache_hits == batch` asserts downstream.
                let mut v =
                    Verifier::new(&program, &analysis, &config, &run.trace, VerifierMode::Edge)
                        .with_resume(ResumeMode::Auto);
                let t = Instant::now();
                v.verify_all(&requests);
                let resumed_ns = t.elapsed().as_nanos();
                let t = Instant::now();
                v.verify_all(&requests);
                let memo_ns = t.elapsed().as_nanos();
                let batches = BATCH_SIZES
                    .iter()
                    .map(|&n| {
                        let reqs = verify_batch(&run.trace, &analysis, n);
                        let mut v = Verifier::new(
                            &program,
                            &analysis,
                            &config,
                            &run.trace,
                            VerifierMode::Edge,
                        )
                        .with_resume(ResumeMode::Auto);
                        let t = Instant::now();
                        v.verify_all(&reqs);
                        BatchPoint {
                            requested: n,
                            batch: reqs.len(),
                            wall_ns: t.elapsed().as_nanos(),
                        }
                    })
                    .collect();
                VerifySample {
                    batch: requests.len(),
                    scratch_ns,
                    resumed_ns,
                    memo_ns,
                    stats: v.stats().clone(),
                    batches,
                }
            });

            let (phases, sched) = instrumented_pass(&program, &analysis, &config, opts.jobs);

            let io = {
                let path = std::env::temp_dir().join(format!(
                    "omislice-sweep-{}-{}-{scale}.omitrace",
                    std::process::id(),
                    b.name,
                ));
                let (_, save_ns) = timed_min(opts.reps, || {
                    save_trace(&run.trace, &path).expect("saves the sweep trace")
                });
                let file_bytes = std::fs::metadata(&path).map(|m| m.len()).unwrap_or(0);
                let (reloaded, load_ns) = timed_min(opts.reps, || {
                    load_trace(&path).expect("reloads the sweep trace")
                });
                assert_eq!(reloaded.len(), run.trace.len(), "{}: reload drift", b.name);
                std::fs::remove_file(&path).ok();
                IoSample {
                    save_ns,
                    load_ns,
                    file_bytes,
                    columnar_bytes: run.trace.columns().bytes(),
                }
            };

            let serve = opts
                .via
                .as_deref()
                .and_then(|via| serve_sample(via, &b, &inputs, opts.reps));

            samples.push(Sample {
                benchmark: b.name.to_string(),
                scale,
                input_len: inputs.len(),
                trace_len: run.trace.len(),
                ds_dyn,
                rs_dyn,
                plain_ns,
                graph_ns,
                rs_ns,
                verify,
                phases,
                sched,
                io,
                serve,
            });
        }
    }
    samples
}

/// Re-runs the trace → graph → slice → verify pipeline once with the
/// span recorder on and folds the drained histogram into a
/// [`PhaseSample`]. Kept separate from the `timed_min` sections: those
/// measure the recorder-off product path.
fn instrumented_pass(
    program: &omislice::omislice_lang::Program,
    analysis: &ProgramAnalysis,
    config: &RunConfig,
    jobs: usize,
) -> (PhaseSample, SchedSample) {
    omislice_obs::reset();
    omislice_obs::set_enabled(true);
    omislice_obs::profile::profile_reset();
    omislice_obs::profile::set_profiling(true);
    let run = run_traced(program, analysis, config);
    run.trace.build_index(jobs);
    let graph = DepGraph::with_jobs(&run.trace, jobs);
    if let Some(last) = run.trace.outputs().last() {
        let _ = relevant_slice_on(&graph, analysis, last.inst, jobs);
    }
    let requests = verify_batch(&run.trace, analysis, 16);
    if !requests.is_empty() {
        let mut v = Verifier::new(program, analysis, config, &run.trace, VerifierMode::Edge)
            .with_resume(ResumeMode::Auto);
        v.verify_all(&requests);
    }
    omislice_obs::profile::set_profiling(false);
    let profile = omislice_obs::profile::profile_drain();
    omislice_obs::set_enabled(false);
    let report = omislice_obs::drain();
    let self_times = report.self_times();
    let self_of = |name: &str| self_times.get(name).copied().unwrap_or(0);
    let summary = profile.summarize();
    let sched = SchedSample {
        utilization: summary
            .workers
            .iter()
            .filter(|w| w.worker != omislice_obs::profile::WORKER_MAIN)
            .map(|w| summary.utilization(w))
            .collect(),
        tasks: summary.workers.iter().map(|w| w.tasks).sum(),
        steals: summary.workers.iter().map(|w| w.steals).sum(),
        drops: summary.drops,
    };
    let phases = PhaseSample {
        trace_ns: report.total_ns("trace"),
        graph_ns: report.total_ns("graph"),
        slice_ns: report.total_ns("slice"),
        verify_ns: report.total_ns("verify"),
        trace_self_ns: self_of("trace"),
        graph_self_ns: self_of("graph"),
        slice_self_ns: self_of("slice"),
        verify_self_ns: self_of("verify"),
    };
    (phases, sched)
}

fn micros(ns: u128) -> String {
    format!("{:.1}", ns as f64 / 1_000.0)
}

fn json_opt(v: Option<usize>) -> String {
    v.map_or_else(|| "null".to_string(), |n| n.to_string())
}

fn json_us(ns: u128) -> String {
    format!("{:.1}", ns as f64 / 1_000.0)
}

fn sample_json(s: &Sample) -> String {
    let verify = match &s.verify {
        None => "null".to_string(),
        Some(v) => {
            let scaling: Vec<String> = v
                .batches
                .iter()
                .map(|b| {
                    format!(
                        "{{\"requested\":{},\"batch\":{},\"verify_us\":{}}}",
                        b.requested,
                        b.batch,
                        json_us(b.wall_ns),
                    )
                })
                .collect();
            format!(
                concat!(
                    "{{\"batch\":{},\"scratch_us\":{},\"resumed_us\":{},\"memo_us\":{},",
                    "\"capture_runs\":{},\"inline_captures\":{},\"captures_skipped\":{},",
                    "\"resumed_runs\":{},\"scratch_runs\":{},",
                    "\"steps_saved\":{},\"cache_hits\":{},\"reexecutions\":{},",
                    "\"resume_ratio\":{:.3},\"batch_scaling\":[{}]}}"
                ),
                v.batch,
                json_us(v.scratch_ns),
                json_us(v.resumed_ns),
                json_us(v.memo_ns),
                v.stats.capture_runs,
                v.stats.inline_captures,
                v.stats.captures_skipped,
                v.stats.resumed_runs,
                v.stats.scratch_runs,
                v.stats.steps_saved,
                v.stats.cache_hits,
                v.stats.reexecutions,
                v.stats.resume_ratio(),
                scaling.join(","),
            )
        }
    };
    // `trace_us` stays the first phases key: `bench_smoke` greps for the
    // literal prefix `"phases":{"trace_us":`.
    let phases = format!(
        concat!(
            "{{\"trace_us\":{},\"graph_us\":{},\"slice_us\":{},\"verify_us\":{},",
            "\"trace_self_us\":{},\"graph_self_us\":{},\"slice_self_us\":{},",
            "\"verify_self_us\":{}}}"
        ),
        json_us(s.phases.trace_ns as u128),
        json_us(s.phases.graph_ns as u128),
        json_us(s.phases.slice_ns as u128),
        json_us(s.phases.verify_ns as u128),
        json_us(s.phases.trace_self_ns as u128),
        json_us(s.phases.graph_self_ns as u128),
        json_us(s.phases.slice_self_ns as u128),
        json_us(s.phases.verify_self_ns as u128),
    );
    let sched = format!(
        concat!(
            "{{\"sched_utilization\":[{}],\"tasks\":{},\"steals\":{},",
            "\"profile_drops\":{}}}"
        ),
        s.sched
            .utilization
            .iter()
            .map(|u| format!("{u:.3}"))
            .collect::<Vec<_>>()
            .join(","),
        s.sched.tasks,
        s.sched.steals,
        s.sched.drops,
    );
    let trace_io = format!(
        "{{\"save_us\":{},\"load_us\":{},\"file_bytes\":{},\"columnar_bytes\":{}}}",
        json_us(s.io.save_ns),
        json_us(s.io.load_ns),
        s.io.file_bytes,
        s.io.columnar_bytes,
    );
    let serve = match &s.serve {
        None => "null".to_string(),
        Some(v) => format!(
            concat!(
                "{{\"fault\":\"{}\",\"cli_cold_us\":{},\"served_cold_us\":{},",
                "\"served_warm_us\":{},\"cold_cache\":\"{}\",\"warm_speedup\":{:.1}}}"
            ),
            v.fault,
            json_us(v.cli_cold_ns),
            json_us(v.served_cold_ns),
            json_us(v.served_warm_ns),
            v.cold_cache,
            v.warm_speedup,
        ),
    };
    format!(
        concat!(
            "{{\"benchmark\":\"{}\",\"scale\":{},\"input_len\":{},",
            "\"trace_len\":{},\"ds_dyn\":{},\"rs_dyn\":{},",
            "\"plain_us\":{},\"graph_us\":{},\"rs_us\":{},",
            "\"phases\":{},\"sched\":{},\"trace_io\":{},\"serve\":{},\"verify\":{}}}"
        ),
        s.benchmark,
        s.scale,
        s.input_len,
        s.trace_len,
        json_opt(s.ds_dyn),
        json_opt(s.rs_dyn),
        json_us(s.plain_ns),
        json_us(s.graph_ns),
        json_us(s.rs_ns),
        phases,
        sched,
        trace_io,
        serve,
        verify,
    )
}

/// Renders the sweep as the harness's aligned text table.
pub fn render_table(samples: &[Sample]) -> String {
    let rows: Vec<Vec<String>> = samples
        .iter()
        .map(|s| {
            let (scratch, resumed, memo, scaling) = match &s.verify {
                Some(v) => (
                    micros(v.scratch_ns),
                    micros(v.resumed_ns),
                    micros(v.memo_ns),
                    v.batches
                        .iter()
                        .map(|b| micros(b.wall_ns))
                        .collect::<Vec<_>>()
                        .join("/"),
                ),
                None => (
                    "-".to_string(),
                    "-".to_string(),
                    "-".to_string(),
                    "-".to_string(),
                ),
            };
            vec![
                s.benchmark.clone(),
                format!("x{}", s.scale),
                s.input_len.to_string(),
                s.trace_len.to_string(),
                s.ds_dyn.map_or_else(|| "-".to_string(), |n| n.to_string()),
                s.rs_dyn.map_or_else(|| "-".to_string(), |n| n.to_string()),
                micros(s.plain_ns),
                micros(s.graph_ns),
                micros(s.rs_ns),
                if s.sched.utilization.is_empty() {
                    "-".to_string()
                } else {
                    s.sched
                        .utilization
                        .iter()
                        .map(|u| format!("{:.0}%", u * 100.0))
                        .collect::<Vec<_>>()
                        .join("/")
                },
                micros(s.io.save_ns),
                micros(s.io.load_ns),
                format!("{:.1}", s.io.file_bytes as f64 / 1024.0),
                scratch,
                resumed,
                memo,
                scaling,
                match &s.serve {
                    Some(v) => format!(
                        "{}/{}/{} ({:.1}x)",
                        micros(v.cli_cold_ns),
                        micros(v.served_cold_ns),
                        micros(v.served_warm_ns),
                        v.warm_speedup,
                    ),
                    None => "-".to_string(),
                },
            ]
        })
        .collect();
    crate::table::render(
        &[
            "Benchmark",
            "scale",
            "input len",
            "trace len",
            "DS(dyn)",
            "RS(dyn)",
            "Plain (us)",
            "Graph (us)",
            "RS (us)",
            "Sched util",
            "Save (us)",
            "Load (us)",
            "File (KB)",
            "Verif scratch (us)",
            "Verif resumed (us)",
            "Verif memo (us)",
            "Verif batch 4/16/64/256 (us)",
            "Serve cli/cold/warm (us)",
        ],
        &rows,
    )
}

/// Serializes the sweep in the `BENCH_sweep.json` format.
pub fn to_json(samples: &[Sample]) -> String {
    let body: Vec<String> = samples.iter().map(sample_json).collect();
    format!(
        "{{\n  \"seed\": \"0x5EED\",\n  \"rows\": [\n    {}\n  ]\n}}\n",
        body.join(",\n    ")
    )
}
