//! # omislice-bench
//!
//! The evaluation harness: one binary per table of the paper plus an
//! ablation driver, backed by shared measurement ([`measure`]) and
//! rendering ([`table`]) modules. Criterion benches live in `benches/`.
//!
//! | Binary | Regenerates |
//! |---|---|
//! | `table1` | Table 1 — benchmark characteristics |
//! | `table2` | Table 2 — RS/DS/PS sizes and ratios |
//! | `table3` | Table 3 — effectiveness counters, IPS, OS |
//! | `table4` | Table 4 — Plain/Graph/Verif timings |
//! | `ablation` | design-choice ablations (verifier mode, Alg. 2 lines 12-18) |

pub mod client;
pub mod diffcheck;
pub mod measure;
pub mod sweep;
pub mod table;
