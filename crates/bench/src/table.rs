//! Plain-text table rendering shared by the table-regeneration binaries.

/// Renders rows as a fixed-width text table with a header rule.
pub fn render(headers: &[&str], rows: &[Vec<String>]) -> String {
    let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate() {
            if i < widths.len() {
                widths[i] = widths[i].max(cell.len());
            }
        }
    }
    let mut out = String::new();
    let fmt_row = |cells: Vec<String>, widths: &[usize]| -> String {
        cells
            .iter()
            .enumerate()
            .map(|(i, c)| format!("{:width$}", c, width = widths[i]))
            .collect::<Vec<_>>()
            .join("  ")
    };
    out.push_str(&fmt_row(
        headers.iter().map(|s| s.to_string()).collect(),
        &widths,
    ));
    out.push('\n');
    out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * (widths.len() - 1)));
    out.push('\n');
    for row in rows {
        out.push_str(&fmt_row(row.clone(), &widths));
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned_columns() {
        let t = render(
            &["name", "n"],
            &[
                vec!["alpha".into(), "1".into()],
                vec!["b".into(), "22".into()],
            ],
        );
        let lines: Vec<&str> = t.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].starts_with("name"));
        assert!(lines[2].starts_with("alpha"));
    }
}
