//! Minimal HTTP/1.1 client for the `omislice serve` endpoints.
//!
//! Hand-rolled over `std::net::TcpStream` for the same reason the server
//! is hand-rolled: the build environment is offline. One request per
//! connection (the server answers `Connection: close`), so the client is
//! a thin `request` wrapper plus JSON helpers. Used by the sweep's
//! `--via` client mode, the `serveprobe` smoke binary, and the serve
//! crate's own integration tests.

use omislice_obs::Json;
use std::io::{Read, Write};
use std::net::TcpStream;
use std::time::Duration;

/// One parsed response: status code and decoded JSON body (or raw text
/// for non-JSON endpoints like the Prometheus exporter).
#[derive(Debug)]
pub struct ServeResponse {
    pub status: u16,
    pub body: String,
}

impl ServeResponse {
    /// Decodes the body as JSON.
    ///
    /// # Errors
    ///
    /// Returns the parse error when the body is not valid JSON.
    pub fn json(&self) -> Result<Json, String> {
        omislice_obs::json::parse(&self.body)
    }
}

/// A client bound to one server address.
pub struct ServeClient {
    addr: String,
    timeout: Duration,
}

impl ServeClient {
    pub fn new(addr: impl Into<String>) -> ServeClient {
        ServeClient {
            addr: addr.into(),
            timeout: Duration::from_secs(120),
        }
    }

    /// Overrides the per-request read/write timeout (default 120 s).
    #[must_use]
    pub fn with_timeout(mut self, timeout: Duration) -> ServeClient {
        self.timeout = timeout;
        self
    }

    /// The server address this client talks to.
    pub fn addr(&self) -> &str {
        &self.addr
    }

    /// Sends one request and reads the response to EOF.
    ///
    /// # Errors
    ///
    /// Returns a message on connect/read/write failures or an
    /// unparsable response head.
    pub fn request(
        &self,
        method: &str,
        path: &str,
        body: Option<&str>,
    ) -> Result<ServeResponse, String> {
        let mut stream = TcpStream::connect(&self.addr)
            .map_err(|e| format!("cannot connect to `{}`: {e}", self.addr))?;
        stream.set_read_timeout(Some(self.timeout)).ok();
        stream.set_write_timeout(Some(self.timeout)).ok();
        let payload = body.unwrap_or("");
        let head = format!(
            "{method} {path} HTTP/1.1\r\nHost: {}\r\nContent-Length: {}\r\nConnection: close\r\n\r\n",
            self.addr,
            payload.len(),
        );
        stream
            .write_all(head.as_bytes())
            .and_then(|()| stream.write_all(payload.as_bytes()))
            .map_err(|e| format!("cannot send request: {e}"))?;
        let mut raw = Vec::new();
        stream
            .read_to_end(&mut raw)
            .map_err(|e| format!("cannot read response: {e}"))?;
        parse_response(&raw)
    }

    /// `GET path`, returning the response whatever its status.
    ///
    /// # Errors
    ///
    /// Propagates transport failures from [`request`](Self::request).
    pub fn get(&self, path: &str) -> Result<ServeResponse, String> {
        self.request("GET", path, None)
    }

    /// `POST path` with a JSON document.
    ///
    /// # Errors
    ///
    /// Propagates transport failures from [`request`](Self::request).
    pub fn post(&self, path: &str, body: &Json) -> Result<ServeResponse, String> {
        self.request("POST", path, Some(&body.to_string()))
    }
}

fn parse_response(raw: &[u8]) -> Result<ServeResponse, String> {
    let text = std::str::from_utf8(raw).map_err(|_| "response is not UTF-8".to_string())?;
    let head_end = text
        .find("\r\n\r\n")
        .ok_or_else(|| "response has no header terminator".to_string())?;
    let mut lines = text[..head_end].lines();
    let status_line = lines.next().ok_or_else(|| "empty response".to_string())?;
    let status = status_line
        .split_whitespace()
        .nth(1)
        .and_then(|s| s.parse::<u16>().ok())
        .ok_or_else(|| format!("bad status line `{status_line}`"))?;
    Ok(ServeResponse {
        status,
        body: text[head_end + 4..].to_string(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_a_complete_response() {
        let raw = b"HTTP/1.1 200 OK\r\nContent-Type: application/json\r\n\r\n{\"ok\":true}\n";
        let r = parse_response(raw).unwrap();
        assert_eq!(r.status, 200);
        assert!(r.json().unwrap().get("ok").is_some());
    }

    #[test]
    fn rejects_a_truncated_head() {
        assert!(parse_response(b"HTTP/1.1 200 OK\r\n").is_err());
        assert!(parse_response(b"garbage\r\n\r\n").is_err());
    }
}
