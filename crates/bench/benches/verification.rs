//! Criterion counterpart of Table 4's "Verif." column: the cost of one
//! implicit-dependence verification (switched re-execution + region
//! alignment) and of the whole demand-driven locator, per corpus fault.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use omislice::omislice_align::Aligner;
use omislice::omislice_analysis::ProgramAnalysis;
use omislice::omislice_interp::{run_traced, RunConfig, SwitchSpec};
use omislice::{LocateConfig, UserOracle, Verifier, VerifierMode};
use omislice_corpus::all_benchmarks;
use std::hint::black_box;
use std::time::Duration;

fn single_verification(c: &mut Criterion) {
    let mut group = c.benchmark_group("verify_dep");
    group.warm_up_time(Duration::from_millis(300));
    group.measurement_time(Duration::from_secs(1));
    let benchmarks = all_benchmarks();
    let gzip = benchmarks.iter().find(|b| b.name == "gzip").expect("gzip");
    let fault = gzip.fault("V2-F3").expect("V2-F3");
    let session = gzip.session(fault).expect("session builds");
    let trace = session.trace();
    let analysis = session.analysis();
    let class = session
        .oracle()
        .classify_outputs(trace)
        .expect("wrong output");
    // The guard instance and the flags use from the Figure 1 walkthrough.
    let guard_stmt = analysis
        .index()
        .stmts()
        .iter()
        .find(|s| s.is_predicate() && s.head.contains("save_orig_name"))
        .expect("guard exists")
        .id;
    let guard = trace.instances_of(guard_stmt)[0];
    let flags = analysis.index().vars().global("flags").expect("flags");

    group.bench_function("gzip_guard_fresh", |bench| {
        // A fresh verifier each iteration: re-execution + alignment.
        bench.iter(|| {
            let mut v = Verifier::new(
                session.program(),
                analysis,
                session.config(),
                trace,
                VerifierMode::Edge,
            );
            black_box(v.verify(guard, class.wrong, flags, class.wrong, class.expected))
        });
    });
    group.finish();
}

fn alignment_only(c: &mut Criterion) {
    // Region alignment in isolation: match the wrong output across a
    // switched gzip run (trace construction hoisted out of the loop).
    let benchmarks = all_benchmarks();
    let gzip = benchmarks.iter().find(|b| b.name == "gzip").expect("gzip");
    let fault = gzip.fault("V2-F3").expect("V2-F3");
    let prepared = gzip.prepare(fault).expect("prepares");
    let analysis = ProgramAnalysis::build(&prepared.faulty);
    let config = RunConfig::with_inputs(fault.failing_input.clone());
    let orig = run_traced(&prepared.faulty, &analysis, &config);
    let guard_stmt = analysis
        .index()
        .stmts()
        .iter()
        .find(|s| s.is_predicate() && s.head.contains("save_orig_name"))
        .expect("guard exists")
        .id;
    let p = orig.trace.instances_of(guard_stmt)[0];
    let occurrence = orig.trace.occurrence_index(p) as u32;
    let sw = run_traced(
        &prepared.faulty,
        &analysis,
        &config.switched(SwitchSpec::new(guard_stmt, occurrence)),
    );
    let last_out = orig.trace.outputs().last().expect("outputs").inst;

    c.bench_function("align_gzip_output", |bench| {
        bench.iter(|| {
            let aligner = Aligner::new(&orig.trace, &sw.trace);
            black_box(aligner.match_inst(p, last_out))
        });
    });
}

fn full_locate(c: &mut Criterion) {
    let mut group = c.benchmark_group("locate_fault");
    group.warm_up_time(Duration::from_millis(300));
    group.measurement_time(Duration::from_secs(1));
    group.sample_size(10);
    for b in all_benchmarks() {
        for fault in &b.faults {
            let session = b.session(fault).expect("session builds");
            let id = format!("{}-{}", b.name, fault.id);
            group.bench_function(BenchmarkId::from_parameter(id), |bench| {
                bench.iter(|| black_box(session.locate(&LocateConfig::default()).unwrap()));
            });
        }
    }
    group.finish();
}

criterion_group!(benches, single_verification, alignment_only, full_locate);
criterion_main!(benches);
