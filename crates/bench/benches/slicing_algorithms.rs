//! Slicing-algorithm costs: classic dynamic slicing vs relevant slicing
//! vs confidence-based pruning, over the corpus failing runs. The RS/DS
//! cost gap grows with the number of potential-dependence candidates —
//! the computational face of Table 2's size gap.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use omislice::omislice_slicing::{prune_slice, relevant_slice, DepGraph, Feedback};
use omislice::UserOracle;
use omislice_corpus::all_benchmarks;
use std::hint::black_box;
use std::time::Duration;

fn slicing(c: &mut Criterion) {
    let mut group = c.benchmark_group("slicing");
    group.warm_up_time(Duration::from_millis(300));
    group.measurement_time(Duration::from_secs(1));
    for b in all_benchmarks() {
        for fault in &b.faults {
            let session = b.session(fault).expect("session builds");
            let trace = session.trace();
            let analysis = session.analysis();
            let class = session
                .oracle()
                .classify_outputs(trace)
                .expect("wrong output");
            let id = format!("{}-{}", b.name, fault.id);

            group.bench_function(BenchmarkId::new("dynamic", &id), |bench| {
                bench.iter(|| {
                    let graph = DepGraph::new(trace);
                    black_box(graph.backward_slice(class.wrong))
                });
            });
            group.bench_function(BenchmarkId::new("relevant", &id), |bench| {
                bench.iter(|| black_box(relevant_slice(trace, analysis, class.wrong)));
            });
            group.bench_function(BenchmarkId::new("prune", &id), |bench| {
                let graph = DepGraph::new(trace);
                bench.iter(|| {
                    black_box(prune_slice(
                        &graph,
                        analysis,
                        session.profile(),
                        &class.correct,
                        class.wrong,
                        &Feedback::default(),
                    ))
                });
            });
        }
    }
    group.finish();
}

criterion_group!(benches, slicing);
criterion_main!(benches);
