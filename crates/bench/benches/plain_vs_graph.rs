//! Criterion counterpart of Table 4's Plain-vs-Graph comparison: the
//! cost of building the dynamic dependence graph during execution, per
//! corpus benchmark (failing input), plus a scaling series over loop
//! iteration counts.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use omislice::omislice_analysis::ProgramAnalysis;
use omislice::omislice_interp::{run_plain, run_traced, RunConfig};
use omislice::omislice_lang::compile;
use omislice_corpus::all_benchmarks;
use std::hint::black_box;
use std::time::Duration;

fn corpus_plain_vs_graph(c: &mut Criterion) {
    let mut group = c.benchmark_group("plain_vs_graph");
    group.warm_up_time(Duration::from_millis(300));
    group.measurement_time(Duration::from_secs(1));
    for b in all_benchmarks() {
        for fault in &b.faults {
            let prepared = b.prepare(fault).expect("corpus compiles");
            let analysis = ProgramAnalysis::build(&prepared.faulty);
            let config = RunConfig::with_inputs(fault.failing_input.clone());
            let id = format!("{}-{}", b.name, fault.id);
            group.bench_with_input(BenchmarkId::new("plain", &id), &config, |bench, cfg| {
                bench.iter(|| black_box(run_plain(&prepared.faulty, cfg)));
            });
            group.bench_with_input(BenchmarkId::new("graph", &id), &config, |bench, cfg| {
                bench.iter(|| black_box(run_traced(&prepared.faulty, &analysis, cfg)));
            });
        }
    }
    group.finish();
}

fn scaling_with_trace_length(c: &mut Criterion) {
    // How the tracing overhead scales with trace length: a loop-heavy
    // synthetic program at increasing iteration counts.
    let mut group = c.benchmark_group("trace_length_scaling");
    group.warm_up_time(Duration::from_millis(300));
    group.measurement_time(Duration::from_secs(1));
    for n in [100i64, 1_000, 10_000] {
        let src = format!(
            "global acc = 0;\
             fn main() {{\
                 let i = 0;\
                 while i < {n} {{\
                     if i % 3 == 0 {{ acc = acc + i; }}\
                     i = i + 1;\
                 }}\
                 print(acc);\
             }}"
        );
        let program = compile(&src).expect("scaling program compiles");
        let analysis = ProgramAnalysis::build(&program);
        let config = RunConfig::default();
        group.bench_with_input(BenchmarkId::new("plain", n), &n, |bench, _| {
            bench.iter(|| black_box(run_plain(&program, &config)));
        });
        group.bench_with_input(BenchmarkId::new("graph", n), &n, |bench, _| {
            bench.iter(|| black_box(run_traced(&program, &analysis, &config)));
        });
    }
    group.finish();
}

criterion_group!(benches, corpus_plain_vs_graph, scaling_with_trace_length);
criterion_main!(benches);
