//! Criterion evidence for the checkpoint-resumed, parallel verification
//! engine: one batch of `VerifyDep` queries against the corpus programs
//! the paper discusses (gzip V2-F3, sed V3-F3), executed three ways —
//!
//! * `serial_scratch` — jobs = 1, resumption disabled: every switched
//!   run re-executes the program from the beginning (the engine before
//!   this optimization);
//! * `serial_resumed` — jobs = 1, checkpoints on: one instrumented base
//!   re-run captures a checkpoint per candidate, each switched run
//!   replays the recorded prefix verbatim and re-executes only the
//!   suffix;
//! * `parallel_resumed` — resumption plus `jobs =
//!   available_parallelism()` (on a single-core host this equals
//!   `serial_resumed`; threads only help when cores exist).
//!
//! The corpus *failing* inputs are deliberately tiny (tens to hundreds
//! of events), so the batches here run on generated workloads a few
//! hundred units long — big enough that execution, not fixed per-run
//! setup, dominates. The batch mimics a LEFS-ordered sweep: the last 16
//! predicate instances before the final output, each tested against it.
//! Late predicates carry almost the whole trace as their prefix, which
//! is exactly the case resumption targets: `serial_resumed` comes out
//! well over 2× faster than `serial_scratch` on both programs.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use omislice::omislice_analysis::ProgramAnalysis;
use omislice::omislice_interp::{run_traced, ResumeMode, RunConfig};
use omislice::omislice_trace::Trace;
use omislice::{Verifier, VerifierMode, VerifyRequest};
use omislice_corpus::{all_benchmarks, WorkloadGen};
use std::hint::black_box;
use std::time::Duration;

/// The last `n` predicate instances before the final output, each paired
/// with that output as the use under test.
fn batch_for(trace: &Trace, analysis: &ProgramAnalysis, n: usize) -> Vec<VerifyRequest> {
    let u = trace.outputs().last().expect("workload prints").inst;
    let use_stmt = trace.event(u).stmt;
    let var = *analysis
        .index()
        .stmt(use_stmt)
        .uses
        .first()
        .expect("the output uses a variable");
    let preds: Vec<_> = trace
        .insts()
        .filter(|&i| i < u && trace.event(i).is_predicate())
        .collect();
    preds
        .iter()
        .rev()
        .take(n)
        .map(|&p| VerifyRequest {
            p,
            u,
            var,
            wrong_output: u,
            expected: None,
        })
        .collect()
}

fn resume_batches(c: &mut Criterion) {
    let mut group = c.benchmark_group("verify_all_batch");
    group.warm_up_time(Duration::from_millis(300));
    group.measurement_time(Duration::from_secs(2));
    group.sample_size(10);
    let hw_jobs = std::thread::available_parallelism().map_or(1, |n| n.get());
    let benchmarks = all_benchmarks();
    for (bench_name, fault_id, scale) in [("gzip", "V2-F3", 250usize), ("sed", "V3-F3", 100)] {
        let b = benchmarks
            .iter()
            .find(|b| b.name == bench_name)
            .expect(bench_name);
        let fault = b.fault(fault_id).expect(fault_id);
        let prepared = b.prepare(fault).expect("corpus compiles");
        let analysis = ProgramAnalysis::build(&prepared.faulty);
        let mut gen = WorkloadGen::new(0x5EED);
        let config = RunConfig::with_inputs(gen.sized_for_benchmark(bench_name, scale));
        let trace = run_traced(&prepared.faulty, &analysis, &config).trace;
        assert!(trace.termination().is_normal());
        let requests = batch_for(&trace, &analysis, 16);
        assert!(requests.len() >= 8, "{bench_name}: batch too small");
        for (label, jobs, resume) in [
            ("serial_scratch", 1usize, ResumeMode::Disabled),
            ("serial_resumed", 1, ResumeMode::Auto),
            ("parallel_resumed", hw_jobs, ResumeMode::Auto),
        ] {
            let id = format!("{bench_name}-{fault_id}/{label}");
            group.bench_function(BenchmarkId::from_parameter(id), |bench| {
                bench.iter(|| {
                    let mut v = Verifier::new(
                        &prepared.faulty,
                        &analysis,
                        &config,
                        &trace,
                        VerifierMode::Edge,
                    )
                    .with_jobs(jobs)
                    .with_resume(resume);
                    black_box(v.verify_all(&requests))
                });
            });
        }
    }
    group.finish();
}

criterion_group!(benches, resume_batches);
criterion_main!(benches);
