//! Graphviz (DOT) export of traces: the dynamic dependence graph and the
//! region tree, with statement text on the nodes. Handy for inspecting
//! small runs (`omislice trace --dot ...` in the CLI) and for figures.

use crate::region::RegionTree;
use crate::trace::Trace;
use omislice_lang::ProgramIndex;
use std::fmt::Write as _;

fn escape(s: &str) -> String {
    s.replace('\\', "\\\\").replace('"', "\\\"")
}

fn node_label(trace: &Trace, index: &ProgramIndex, i: usize) -> String {
    let ev = trace.event(crate::event::InstId(i as u32));
    let head = &index.stmt(ev.stmt).head;
    let value = ev.value.map(|v| format!(" = {v}")).unwrap_or_default();
    escape(&format!("t{i} {}\n{}{}", ev.stmt, head, value))
}

/// Renders the dynamic dependence graph: solid edges are data
/// dependences, dashed edges dynamic control dependences.
pub fn ddg_to_dot(trace: &Trace, index: &ProgramIndex) -> String {
    let mut out = String::from("digraph ddg {\n  rankdir=BT;\n  node [shape=box, fontsize=10];\n");
    for (i, ev) in trace.iter_events().enumerate() {
        let _ = writeln!(out, "  n{i} [label=\"{}\"];", node_label(trace, index, i));
        for d in ev.data_deps {
            let _ = writeln!(out, "  n{i} -> n{};", d.index());
        }
        if let Some(cd) = ev.cd_parent {
            let _ = writeln!(out, "  n{i} -> n{} [style=dashed];", cd.index());
        }
    }
    out.push_str("}\n");
    out
}

/// Renders the region tree (Definition 3) as a top-down hierarchy.
pub fn regions_to_dot(trace: &Trace, index: &ProgramIndex) -> String {
    let regions = RegionTree::build(trace);
    let mut out =
        String::from("digraph regions {\n  rankdir=TB;\n  node [shape=box, fontsize=10];\n");
    for i in 0..trace.len() {
        let _ = writeln!(out, "  n{i} [label=\"{}\"];", node_label(trace, index, i));
    }
    for inst in trace.insts() {
        for &child in regions.children(inst) {
            let _ = writeln!(out, "  n{} -> n{};", inst.index(), child.index());
        }
    }
    out.push_str("}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::{Event, InstId};
    use crate::trace::Termination;
    use omislice_lang::{compile, StmtId};

    fn sample() -> (Trace, ProgramIndex) {
        let program = compile("fn main() { if 1 < 2 { print(3); } }").unwrap();
        let index = ProgramIndex::build(&program);
        let mut guard = Event::new(StmtId(0));
        guard.branch = Some(true);
        let mut body = Event::new(StmtId(1));
        body.cd_parent = Some(InstId(0));
        body.region_parent = Some(InstId(0));
        body.value = Some(crate::value::Value::Int(3));
        let trace = Trace::from_parts(vec![guard, body], vec![], Termination::Normal);
        (trace, index)
    }

    #[test]
    fn ddg_dot_contains_nodes_and_edges() {
        let (trace, index) = sample();
        let dot = ddg_to_dot(&trace, &index);
        assert!(dot.starts_with("digraph ddg {"));
        assert!(dot.contains("n0 [label=\"t0 S0"));
        assert!(dot.contains("if (1 < 2)"));
        assert!(dot.contains("n1 -> n0 [style=dashed];"));
        assert!(dot.ends_with("}\n"));
    }

    #[test]
    fn regions_dot_contains_hierarchy_edge() {
        let (trace, index) = sample();
        let dot = regions_to_dot(&trace, &index);
        assert!(dot.contains("n0 -> n1;"));
        assert!(dot.contains("print(3);"));
    }

    #[test]
    fn labels_are_escaped() {
        assert_eq!(escape("a\"b\\c"), "a\\\"b\\\\c");
    }
}
