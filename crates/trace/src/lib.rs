//! # omislice-trace
//!
//! Execution traces for the omislice system: statement instances with
//! timestamps and values, dynamic data/control dependence edges (the
//! dynamic dependence graph the paper builds with Valgrind), observable
//! outputs, and the *region trees* of Definition 3 that the execution
//! alignment algorithm navigates.
//!
//! Traces are produced by [`omislice-interp`](../omislice_interp) and
//! consumed by the slicing, alignment, and fault-locating crates.
//!
//! ```
//! use omislice_trace::{Event, InstId, RegionTree, Termination, Trace};
//! use omislice_lang::StmtId;
//!
//! let mut guard = Event::new(StmtId(0));
//! guard.branch = Some(true);
//! let mut body = Event::new(StmtId(1));
//! body.region_parent = Some(InstId(0));
//! body.cd_parent = Some(InstId(0));
//! let trace = Trace::from_parts(vec![guard, body], vec![], Termination::Normal);
//! let regions = RegionTree::build(&trace);
//! assert!(regions.in_region(InstId(0), InstId(1)));
//! ```

pub mod columnar;
pub mod dot;
pub mod event;
pub mod format;
pub mod index;
mod mmap;
pub mod outcome;
pub mod recorder;
pub mod region;
pub mod stats;
pub mod supervisor;
#[allow(clippy::module_inception)]
pub mod trace;
pub mod value;

pub use columnar::{ColumnarTrace, RawEvent};
pub use dot::{ddg_to_dot, regions_to_dot};
pub use event::{Event, EventRef, InstId, OutputRecord};
pub use format::{decode_trace, encode_trace, load_trace, save_trace, TraceFileError};
pub use index::TraceIndex;
pub use outcome::{CrashKind, RunOutcome};
pub use recorder::{Recorder, RecorderError, RecorderStats};
pub use region::RegionTree;
pub use stats::{TraceStats, VerificationStats};
pub use supervisor::{
    note_recovery, take_recovery, ChaosAction, ChaosPlan, ChaosSite, Deadline, PipelineError,
    RecoveryKind, RecoveryLog, Supervisor,
};
pub use trace::{Termination, Trace};
pub use value::Value;
