//! Statement instances (trace events) and their dependence annotations.

use crate::value::Value;
use omislice_lang::{StmtId, VarId};
use std::fmt;

/// Identifier of one statement *instance* in a trace: its timestamp.
///
/// Instance ids are dense and execution-ordered, so comparing ids compares
/// execution times — the paper's "timestamp annotations".
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct InstId(pub u32);

impl InstId {
    /// Returns the id as a `usize` index.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for InstId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t{}", self.0)
    }
}

/// One executed statement instance, with the dynamic dependences observed
/// while executing it.
///
/// Two parent pointers coexist deliberately:
///
/// * [`Event::cd_parent`] is the *dynamic control dependence* used for
///   slicing edges — the most recent instance, in the same call frame, of
///   a predicate the statement is statically control dependent on (with
///   the matching branch outcome). Top-level statements of a called
///   function inherit the caller's guarding predicate, so slices cross
///   call boundaries correctly.
/// * [`Event::region_parent`] is the *nesting* parent that defines the
///   region tree of Definition 3 — the innermost predicate instance whose
///   guarded block (or loop-iteration chain) was being executed, crossing
///   call boundaries. Regions are properly nested by construction, which
///   is what Algorithm 1's alignment relies on.
///
/// For structured code without `break`/`continue`/`return`-in-branch the
/// two coincide.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Event {
    /// The statement that executed.
    pub stmt: StmtId,
    /// The value this instance computed: the assigned value, the printed
    /// value, the returned value, or the predicate's outcome.
    pub value: Option<Value>,
    /// For predicates: the branch outcome taken.
    pub branch: Option<bool>,
    /// Instances whose definitions this instance read (dynamic data
    /// dependences), in evaluation order, deduplicated.
    pub data_deps: Vec<InstId>,
    /// Dynamic control-dependence parent (slicing edge).
    pub cd_parent: Option<InstId>,
    /// Region-nesting parent (alignment structure).
    pub region_parent: Option<InstId>,
    /// Variable defined by this instance, if any.
    pub def_var: Option<VarId>,
    /// For array stores: the concrete cell index written.
    pub cell_index: Option<i64>,
    /// Call depth at which the instance executed (0 = `main`).
    pub call_depth: u32,
}

impl Event {
    /// Creates an event with no dependences; the interpreter fills in the
    /// rest while executing.
    pub fn new(stmt: StmtId) -> Self {
        Event {
            stmt,
            value: None,
            branch: None,
            data_deps: Vec::new(),
            cd_parent: None,
            region_parent: None,
            def_var: None,
            cell_index: None,
            call_depth: 0,
        }
    }

    /// Whether this instance is a predicate evaluation.
    pub fn is_predicate(&self) -> bool {
        self.branch.is_some()
    }
}

/// A borrowed view of one statement instance, assembled on demand from
/// the columnar store (see [`crate::columnar::ColumnarTrace`]).
///
/// Field names and meanings match [`Event`], so query code reads the
/// same whether it holds an owned event or a view; `data_deps` borrows
/// the CSR arena instead of owning a vector.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EventRef<'a> {
    /// The statement that executed.
    pub stmt: StmtId,
    /// The value this instance computed.
    pub value: Option<Value>,
    /// For predicates: the branch outcome taken.
    pub branch: Option<bool>,
    /// Dynamic data dependences, in evaluation order, deduplicated.
    pub data_deps: &'a [InstId],
    /// Dynamic control-dependence parent (slicing edge).
    pub cd_parent: Option<InstId>,
    /// Region-nesting parent (alignment structure).
    pub region_parent: Option<InstId>,
    /// Variable defined by this instance, if any.
    pub def_var: Option<VarId>,
    /// For array stores: the concrete cell index written.
    pub cell_index: Option<i64>,
    /// Call depth at which the instance executed (0 = `main`).
    pub call_depth: u32,
}

impl EventRef<'_> {
    /// Whether this instance is a predicate evaluation.
    pub fn is_predicate(&self) -> bool {
        self.branch.is_some()
    }

    /// Materializes an owned [`Event`].
    pub fn to_owned(&self) -> Event {
        Event {
            stmt: self.stmt,
            value: self.value,
            branch: self.branch,
            data_deps: self.data_deps.to_vec(),
            cd_parent: self.cd_parent,
            region_parent: self.region_parent,
            def_var: self.def_var,
            cell_index: self.cell_index,
            call_depth: self.call_depth,
        }
    }
}

/// An observable output: a `print` instance and the value it emitted.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct OutputRecord {
    /// The `print` instance.
    pub inst: InstId,
    /// The emitted value.
    pub value: Value,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn event_new_is_empty() {
        let e = Event::new(StmtId(4));
        assert_eq!(e.stmt, StmtId(4));
        assert!(e.data_deps.is_empty());
        assert!(!e.is_predicate());
    }

    #[test]
    fn predicate_detection() {
        let mut e = Event::new(StmtId(0));
        e.branch = Some(false);
        assert!(e.is_predicate());
    }

    #[test]
    fn inst_ordering_is_execution_order() {
        assert!(InstId(3) < InstId(10));
        assert_eq!(InstId(5).to_string(), "t5");
    }
}
