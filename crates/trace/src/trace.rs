//! The execution trace: the dynamic dependence graph of one run.

use crate::columnar::{ColumnarTrace, RawEvent};
use crate::event::{Event, EventRef, InstId, OutputRecord};
use crate::index::TraceIndex;
use crate::outcome::CrashKind;
use crate::value::Value;
use omislice_lang::StmtId;
use std::sync::{Arc, OnceLock};

/// A complete execution trace.
///
/// The events *are* the dynamic dependence graph: each event carries its
/// data-dependence edges and its dynamic control-dependence parent. The
/// trace additionally records the observable outputs and how the run
/// ended. Events live in a columnar store ([`ColumnarTrace`]); queries
/// go through the [`EventRef`] view, which borrows the columns.
#[derive(Debug, Clone)]
pub struct Trace {
    /// Shared so checkpoint resumes can borrow this trace's columns as
    /// their prefix ([`ColumnarTrace::share_prefix`]) instead of
    /// copying them; the store is immutable once the trace exists.
    cols: Arc<ColumnarTrace>,
    outputs: Vec<OutputRecord>,
    /// Lazily built statement → instances map. Switched re-executions
    /// (hundreds per verification batch) never query it — only the base
    /// trace and test oracles do — so building it eagerly would cost an
    /// O(trace) pass per verified candidate for nothing.
    by_stmt: OnceLock<ByStmt>,
    termination: Termination,
    /// Lazily built query index (Euler-tour CD timestamps + postings).
    index: OnceLock<TraceIndex>,
}

/// Statement → instances, as a CSR over dense statement ids (statement
/// ids are dense per program, so a flat offset table replaces the old
/// per-statement `HashMap<StmtId, Vec<InstId>>` of heap-allocated
/// vectors).
#[derive(Debug, Clone, Default)]
struct ByStmt {
    off: Vec<u32>,
    insts: Vec<InstId>,
}

impl ByStmt {
    /// Counting sort of instance ids by statement; preserves execution
    /// order within each statement.
    fn build(cols: &ColumnarTrace) -> ByStmt {
        let n = cols.len();
        let mut n_stmts = 0usize;
        cols.for_each_stmt(n, &mut |_, s| n_stmts = n_stmts.max(s.0 as usize + 1));
        let mut off = vec![0u32; n_stmts + 1];
        cols.for_each_stmt(n, &mut |_, s| off[s.0 as usize + 1] += 1);
        for i in 1..off.len() {
            off[i] += off[i - 1];
        }
        let mut insts = vec![InstId(0); n];
        let mut cursor = off.clone();
        cols.for_each_stmt(n, &mut |i, s| {
            let c = &mut cursor[s.0 as usize];
            insts[*c as usize] = InstId(i as u32);
            *c += 1;
        });
        ByStmt { off, insts }
    }

    fn instances_of(&self, stmt: StmtId) -> &[InstId] {
        let s = stmt.0 as usize;
        if s + 1 >= self.off.len() {
            return &[];
        }
        &self.insts[self.off[s] as usize..self.off[s + 1] as usize]
    }
}

/// How an execution ended.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Termination {
    /// `main` returned normally.
    Normal,
    /// The step budget was exhausted (the paper's verification timer).
    BudgetExhausted,
    /// A runtime error: the structured failure class plus a
    /// human-readable message attributed to the crashing statement.
    RuntimeError(CrashKind, String),
}

impl Termination {
    /// Whether the run completed without error or timeout.
    pub fn is_normal(&self) -> bool {
        *self == Termination::Normal
    }

    /// The failure class, for crashed runs.
    pub fn crash_kind(&self) -> Option<CrashKind> {
        match self {
            Termination::RuntimeError(kind, _) => Some(*kind),
            _ => None,
        }
    }
}

impl Trace {
    /// Assembles a trace from owned events — the legacy row-major
    /// builder, kept as the differential oracle for the columnar path
    /// (see the `columnar_equivalence` property tests) and as the
    /// convenient constructor for hand-written test traces. Hidden from
    /// docs: product code records through [`Recorder`](crate::Recorder)
    /// and loads through [`load_trace`](crate::load_trace).
    #[doc(hidden)]
    pub fn from_parts(
        events: Vec<Event>,
        outputs: Vec<OutputRecord>,
        termination: Termination,
    ) -> Self {
        let mut cols = ColumnarTrace::with_capacity(events.len(), 0);
        for e in &events {
            cols.push(RawEvent::from(e));
        }
        Trace::from_recorded(cols, outputs, termination, None)
    }

    /// Assembles a trace directly from a columnar store, optionally with
    /// a query index the recorder already built concurrently.
    pub fn from_recorded(
        cols: ColumnarTrace,
        outputs: Vec<OutputRecord>,
        termination: Termination,
        index: Option<TraceIndex>,
    ) -> Self {
        let cell = OnceLock::new();
        if let Some(idx) = index {
            cell.set(idx).ok();
        }
        Trace {
            cols: Arc::new(cols),
            outputs,
            by_stmt: OnceLock::new(),
            termination,
            index: cell,
        }
    }

    /// The columnar event store.
    pub fn columns(&self) -> &ColumnarTrace {
        &self.cols
    }

    /// The columnar store behind its shared handle — what a checkpoint
    /// resume passes to [`ColumnarTrace::share_prefix`] so the resumed
    /// run borrows this trace's head instead of copying it.
    pub fn columns_arc(&self) -> Arc<ColumnarTrace> {
        Arc::clone(&self.cols)
    }

    /// The query index over this trace, built serially on first use.
    pub fn index(&self) -> &TraceIndex {
        self.index.get_or_init(|| TraceIndex::build(self))
    }

    /// Eagerly builds the query index with up to `jobs` worker threads
    /// (a no-op if the index already exists). The index contents are
    /// identical for any `jobs`.
    pub fn build_index(&self, jobs: usize) -> &TraceIndex {
        self.index
            .get_or_init(|| TraceIndex::build_with_jobs(self, jobs))
    }

    /// Whether the query index has already been built (or prebuilt by
    /// the pipelined recorder).
    pub fn has_index(&self) -> bool {
        self.index.get().is_some()
    }

    /// Number of statement instances.
    pub fn len(&self) -> usize {
        self.cols.len()
    }

    /// Whether the trace is empty.
    pub fn is_empty(&self) -> bool {
        self.cols.is_empty()
    }

    /// The event for instance `inst`, as a borrowed columnar view.
    ///
    /// # Panics
    ///
    /// Panics if `inst` is out of range.
    pub fn event(&self, inst: InstId) -> EventRef<'_> {
        self.cols.event(inst)
    }

    /// Iterates all events in execution order.
    pub fn iter_events(&self) -> impl Iterator<Item = EventRef<'_>> {
        (0..self.cols.len() as u32).map(|i| self.cols.event(InstId(i)))
    }

    /// Materializes all events as owned rows (tests and oracles; the
    /// query paths use [`Trace::event`] / [`Trace::iter_events`]).
    pub fn events_vec(&self) -> Vec<Event> {
        self.cols.to_events()
    }

    /// Iterates instance ids in execution order.
    pub fn insts(&self) -> impl Iterator<Item = InstId> {
        (0..self.cols.len() as u32).map(InstId)
    }

    /// The instances of a statement, in execution order. The underlying
    /// map is built serially on first use.
    pub fn instances_of(&self, stmt: StmtId) -> &[InstId] {
        self.by_stmt
            .get_or_init(|| ByStmt::build(&self.cols))
            .instances_of(stmt)
    }

    /// The k-th (0-based) instance of a statement, if it executed that
    /// often.
    pub fn nth_instance(&self, stmt: StmtId, k: usize) -> Option<InstId> {
        self.instances_of(stmt).get(k).copied()
    }

    /// Which occurrence of its statement `inst` is (0-based): the inverse
    /// of [`Trace::nth_instance`].
    pub fn occurrence_index(&self, inst: InstId) -> usize {
        let stmt = self.cols.stmt_of(inst);
        self.instances_of(stmt)
            .binary_search(&inst)
            .expect("instance belongs to its statement's list")
    }

    /// Observable outputs in emission order.
    pub fn outputs(&self) -> &[OutputRecord] {
        &self.outputs
    }

    /// The output emitted by instance `inst`, if it was a `print`.
    pub fn output_of(&self, inst: InstId) -> Option<Value> {
        self.outputs
            .iter()
            .find(|o| o.inst == inst)
            .map(|o| o.value)
    }

    /// How the run ended.
    pub fn termination(&self) -> &Termination {
        &self.termination
    }

    /// The dynamic control-dependence ancestors of `inst` (the `cd_parent`
    /// chain), nearest first.
    pub fn cd_ancestors(&self, inst: InstId) -> Vec<InstId> {
        let mut out = Vec::new();
        let mut cur = self.cols.cd_parent_of(inst);
        while let Some(p) = cur {
            out.push(p);
            cur = self.cols.cd_parent_of(p);
        }
        out
    }

    /// Whether `inst` is (transitively) dynamically control dependent on
    /// `pred_inst`. O(1) via the Euler-tour timestamps of
    /// [`Trace::index`].
    pub fn cd_depends_on(&self, inst: InstId, pred_inst: InstId) -> bool {
        self.index().cd_is_ancestor(pred_inst, inst)
    }

    /// Reference implementation of [`Trace::cd_depends_on`]: the original
    /// parent-pointer walk. Kept as the oracle for the index equivalence
    /// property tests.
    #[doc(hidden)]
    pub fn cd_depends_on_naive(&self, inst: InstId, pred_inst: InstId) -> bool {
        let mut cur = self.cols.cd_parent_of(inst);
        while let Some(p) = cur {
            if p == pred_inst {
                return true;
            }
            // Parents always have smaller timestamps; stop early.
            if p < pred_inst {
                return false;
            }
            cur = self.cols.cd_parent_of(p);
        }
        false
    }

    /// Printed values as a plain vector — the "program output" used to
    /// compare runs.
    pub fn output_values(&self) -> Vec<Value> {
        self.outputs.iter().map(|o| o.value).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mk_event(stmt: u32, cd_parent: Option<u32>) -> Event {
        let mut e = Event::new(StmtId(stmt));
        e.cd_parent = cd_parent.map(InstId);
        e
    }

    fn sample() -> Trace {
        // t0: S0 (pred), t1: S1 under t0, t2: S0 again, t3: S1 under t2
        let events = vec![
            mk_event(0, None),
            mk_event(1, Some(0)),
            mk_event(0, None),
            mk_event(1, Some(2)),
        ];
        let outputs = vec![OutputRecord {
            inst: InstId(3),
            value: Value::Int(9),
        }];
        Trace::from_parts(events, outputs, Termination::Normal)
    }

    #[test]
    fn instances_are_grouped_by_statement() {
        let t = sample();
        assert_eq!(t.instances_of(StmtId(0)), &[InstId(0), InstId(2)]);
        assert_eq!(t.instances_of(StmtId(1)), &[InstId(1), InstId(3)]);
        assert_eq!(t.instances_of(StmtId(9)), &[] as &[InstId]);
    }

    #[test]
    fn nth_instance_and_occurrence_are_inverse() {
        let t = sample();
        assert_eq!(t.nth_instance(StmtId(1), 1), Some(InstId(3)));
        assert_eq!(t.nth_instance(StmtId(1), 2), None);
        assert_eq!(t.occurrence_index(InstId(3)), 1);
        assert_eq!(t.occurrence_index(InstId(0)), 0);
    }

    #[test]
    fn cd_ancestors_chain() {
        let t = sample();
        assert_eq!(t.cd_ancestors(InstId(3)), vec![InstId(2)]);
        assert!(t.cd_depends_on(InstId(3), InstId(2)));
        assert!(!t.cd_depends_on(InstId(3), InstId(0)));
        assert!(!t.cd_depends_on(InstId(0), InstId(0)));
        // The indexed test agrees with the parent-pointer walk.
        for u in t.insts() {
            for p in t.insts() {
                assert_eq!(t.cd_depends_on(u, p), t.cd_depends_on_naive(u, p));
            }
        }
    }

    #[test]
    fn outputs_are_recorded() {
        let t = sample();
        assert_eq!(t.output_values(), vec![Value::Int(9)]);
        assert_eq!(t.output_of(InstId(3)), Some(Value::Int(9)));
        assert_eq!(t.output_of(InstId(0)), None);
    }

    #[test]
    fn termination_flags() {
        assert!(Termination::Normal.is_normal());
        assert!(!Termination::BudgetExhausted.is_normal());
        let crash = Termination::RuntimeError(CrashKind::DivByZero, "x".into());
        assert!(!crash.is_normal());
        assert_eq!(crash.crash_kind(), Some(CrashKind::DivByZero));
        assert_eq!(Termination::Normal.crash_kind(), None);
    }

    #[test]
    fn empty_trace() {
        let t = Trace::from_parts(vec![], vec![], Termination::Normal);
        assert!(t.is_empty());
        assert_eq!(t.len(), 0);
        assert_eq!(t.insts().count(), 0);
    }

    #[test]
    fn events_round_trip_through_columns() {
        let t = sample();
        let events = t.events_vec();
        assert_eq!(events.len(), 4);
        let rebuilt = Trace::from_parts(events.clone(), t.outputs().to_vec(), Termination::Normal);
        assert_eq!(rebuilt.events_vec(), events);
        assert_eq!(
            t.iter_events().map(|e| e.stmt).collect::<Vec<_>>(),
            events.iter().map(|e| e.stmt).collect::<Vec<_>>()
        );
    }
}
