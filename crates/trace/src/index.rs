//! Indexed queries over a [`Trace`] — the layer that makes slicing and
//! potential-dependence discovery scale to very large traces.
//!
//! Three sub-indexes, each built in one O(n) pass:
//!
//! * an **Euler-tour timestamp index** over the dynamic control-dependence
//!   forest (the `cd_parent` pointers): every instance gets an entry/exit
//!   interval, and `p` is a CD ancestor of `u` iff `p`'s interval strictly
//!   contains `u`'s — an O(1) test replacing the parent-pointer walk in
//!   [`Trace::cd_depends_on`];
//! * **predicate postings**: for every `(statement, taken-branch)` pair,
//!   the sorted list of instances that evaluated that predicate to that
//!   outcome, so "instances of `p` with branch `b` in the window
//!   `[def, u)`" (Definition 1, conditions (i)+(iii)+(iv)) is a binary
//!   search plus a contiguous range scan;
//! * **definition postings**: for every variable, the sorted list of
//!   instances defining it, giving "latest definition before `t`" by
//!   binary search.
//!
//! Construction parallelizes with the same `std::thread::scope` fan-out
//! the verification engine uses: one worker owns the Euler tour, the rest
//! build postings over contiguous trace chunks that are merged in trace
//! order, so the result is identical for any thread count.

use crate::columnar::ColumnarTrace;
use crate::event::InstId;
use crate::trace::Trace;
use omislice_lang::{StmtId, VarId};
use std::collections::HashMap;

/// Below this trace length the serial build wins; above it, chunked
/// postings construction amortizes the thread spawns.
const PARALLEL_BUILD_THRESHOLD: usize = 4096;

/// Query index over one trace. Built once (lazily via [`Trace::index`] or
/// eagerly via [`Trace::build_index`]); all queries are read-only.
#[derive(Debug, Clone)]
pub struct TraceIndex {
    /// Euler-tour entry timestamps over the dynamic CD forest.
    cd_tin: Vec<u32>,
    /// Euler-tour exit timestamps over the dynamic CD forest.
    cd_tout: Vec<u32>,
    /// Sorted instances of each predicate statement that took branch `b`.
    preds: HashMap<(StmtId, bool), Vec<InstId>>,
    /// Sorted defining instances of each variable.
    defs: HashMap<VarId, Vec<InstId>>,
}

impl TraceIndex {
    /// Builds the index serially.
    pub fn build(trace: &Trace) -> Self {
        Self::build_with_jobs(trace, 1)
    }

    /// Builds the index using up to `jobs` worker threads. The result is
    /// identical for any `jobs`; only the wall time changes.
    ///
    /// # Panics
    ///
    /// Panics if an event's `cd_parent` does not precede it (the
    /// interpreter records parents before children by construction).
    pub fn build_with_jobs(trace: &Trace, jobs: usize) -> Self {
        let n = trace.len();
        let jobs = jobs.max(1).min(n.max(1));
        if jobs == 1 || n < PARALLEL_BUILD_THRESHOLD {
            let (cd_tin, cd_tout) = euler_tour(trace.columns());
            let (preds, defs) = postings(trace.columns(), 0, n);
            return TraceIndex {
                cd_tin,
                cd_tout,
                preds,
                defs,
            };
        }
        std::thread::scope(|s| {
            let euler = s.spawn(|| euler_tour(trace.columns()));
            let chunk = n.div_ceil(jobs);
            let handles: Vec<_> = (0..n)
                .step_by(chunk)
                .map(|start| {
                    let end = (start + chunk).min(n);
                    s.spawn(move || postings(trace.columns(), start, end))
                })
                .collect();
            // Chunks join in trace order, so every postings list stays
            // sorted and the merged maps are thread-count independent.
            let mut preds: HashMap<(StmtId, bool), Vec<InstId>> = HashMap::new();
            let mut defs: HashMap<VarId, Vec<InstId>> = HashMap::new();
            for h in handles {
                let (p, d) = h.join().expect("postings workers do not panic");
                for (k, mut v) in p {
                    preds.entry(k).or_default().append(&mut v);
                }
                for (k, mut v) in d {
                    defs.entry(k).or_default().append(&mut v);
                }
            }
            let (cd_tin, cd_tout) = euler.join().expect("euler worker does not panic");
            TraceIndex {
                cd_tin,
                cd_tout,
                preds,
                defs,
            }
        })
    }

    /// Assembles an index from parts the pipelined recorder built
    /// incrementally. The parts must match what [`TraceIndex::build`]
    /// would produce for the same trace (the columnar-equivalence
    /// property tests pin this down).
    pub(crate) fn assemble(
        cd_tin: Vec<u32>,
        cd_tout: Vec<u32>,
        preds: HashMap<(StmtId, bool), Vec<InstId>>,
        defs: HashMap<VarId, Vec<InstId>>,
    ) -> Self {
        TraceIndex {
            cd_tin,
            cd_tout,
            preds,
            defs,
        }
    }

    /// Whether `anc` is a *proper* CD ancestor of `desc` — i.e. `desc` is
    /// (transitively) dynamically control dependent on `anc`. O(1).
    #[inline]
    pub fn cd_is_ancestor(&self, anc: InstId, desc: InstId) -> bool {
        self.cd_tin[anc.index()] < self.cd_tin[desc.index()]
            && self.cd_tout[desc.index()] <= self.cd_tout[anc.index()]
    }

    /// All instances of predicate `stmt` whose evaluation took branch
    /// `taken`, sorted by timestamp.
    pub fn pred_instances(&self, stmt: StmtId, taken: bool) -> &[InstId] {
        self.preds.get(&(stmt, taken)).map_or(&[], Vec::as_slice)
    }

    /// The instances of predicate `stmt` with branch `taken` inside the
    /// half-open timestamp window `[lo, hi)` — a binary search on each
    /// end of the postings list.
    pub fn pred_instances_between(
        &self,
        stmt: StmtId,
        taken: bool,
        lo: InstId,
        hi: InstId,
    ) -> &[InstId] {
        let list = self.pred_instances(stmt, taken);
        let a = list.partition_point(|&i| i < lo);
        let b = list.partition_point(|&i| i < hi);
        &list[a..b]
    }

    /// All instances defining `var`, sorted by timestamp.
    pub fn defs_of(&self, var: VarId) -> &[InstId] {
        self.defs.get(&var).map_or(&[], Vec::as_slice)
    }

    /// The latest instance defining `var` strictly before `before`.
    pub fn latest_def_before(&self, var: VarId, before: InstId) -> Option<InstId> {
        let list = self.defs_of(var);
        let k = list.partition_point(|&i| i < before);
        k.checked_sub(1).map(|k| list[k])
    }
}

/// Entry/exit timestamps of an iterative DFS over the CD forest. One
/// global clock across the roots (in trace order) gives disjoint
/// intervals to separate trees, so the containment test needs no
/// root bookkeeping.
pub(crate) fn euler_tour(cols: &ColumnarTrace) -> (Vec<u32>, Vec<u32>) {
    let n = cols.len();
    // Children in CSR form: counting pass, prefix sums, fill pass.
    let mut counts = vec![0u32; n];
    for i in 0..n {
        if let Some(p) = cols.cd_parent_of(InstId(i as u32)) {
            counts[p.index()] += 1;
        }
    }
    let mut offsets = vec![0u32; n + 1];
    for i in 0..n {
        offsets[i + 1] = offsets[i] + counts[i];
    }
    let mut cursor: Vec<u32> = offsets[..n].to_vec();
    let mut children = vec![0u32; offsets[n] as usize];
    let mut roots: Vec<u32> = Vec::new();
    for i in 0..n {
        match cols.cd_parent_of(InstId(i as u32)) {
            Some(p) => {
                assert!(p.index() < i, "cd parent {p} not before child t{i}");
                children[cursor[p.index()] as usize] = i as u32;
                cursor[p.index()] += 1;
            }
            None => roots.push(i as u32),
        }
    }
    let mut tin = vec![0u32; n];
    let mut tout = vec![0u32; n];
    let mut clock = 0u32;
    let mut stack: Vec<(u32, u32)> = Vec::new();
    for &r in &roots {
        tin[r as usize] = clock;
        clock += 1;
        stack.push((r, offsets[r as usize]));
        while let Some(top) = stack.last_mut() {
            let node = top.0 as usize;
            if top.1 < offsets[node + 1] {
                let c = children[top.1 as usize] as usize;
                top.1 += 1;
                tin[c] = clock;
                clock += 1;
                stack.push((c as u32, offsets[c]));
            } else {
                tout[node] = clock;
                clock += 1;
                stack.pop();
            }
        }
    }
    (tin, tout)
}

pub(crate) type Postings = (
    HashMap<(StmtId, bool), Vec<InstId>>,
    HashMap<VarId, Vec<InstId>>,
);

/// Predicate and definition postings for the chunk `[start, end)`.
pub(crate) fn postings(cols: &ColumnarTrace, start: usize, end: usize) -> Postings {
    let mut preds: HashMap<(StmtId, bool), Vec<InstId>> = HashMap::new();
    let mut defs: HashMap<VarId, Vec<InstId>> = HashMap::new();
    for i in start..end {
        let inst = InstId(i as u32);
        let ev = cols.event(inst);
        if let Some(b) = ev.branch {
            preds.entry((ev.stmt, b)).or_default().push(inst);
        }
        if let Some(v) = ev.def_var {
            defs.entry(v).or_default().push(inst);
        }
    }
    (preds, defs)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::Event;
    use crate::trace::Termination;

    fn mk(stmt: u32, cd_parent: Option<u32>, branch: Option<bool>) -> Event {
        let mut e = Event::new(StmtId(stmt));
        e.cd_parent = cd_parent.map(InstId);
        e.branch = branch;
        e
    }

    /// t0:S0(T) ─ t1:S1, t2:S0(F), t3:S1 under t2, t4:S2 under t3's chain.
    fn sample() -> Trace {
        let events = vec![
            mk(0, None, Some(true)),
            mk(1, Some(0), None),
            mk(0, None, Some(false)),
            mk(1, Some(2), Some(true)),
            mk(2, Some(3), None),
        ];
        Trace::from_parts(events, vec![], Termination::Normal)
    }

    #[test]
    fn euler_matches_ancestor_walk() {
        let t = sample();
        let idx = TraceIndex::build(&t);
        for u in t.insts() {
            let ancestors = t.cd_ancestors(u);
            for p in t.insts() {
                assert_eq!(
                    idx.cd_is_ancestor(p, u),
                    ancestors.contains(&p),
                    "p={p} u={u}"
                );
            }
        }
    }

    #[test]
    fn self_is_not_an_ancestor() {
        let t = sample();
        let idx = TraceIndex::build(&t);
        for u in t.insts() {
            assert!(!idx.cd_is_ancestor(u, u));
        }
    }

    #[test]
    fn predicate_postings_split_by_branch() {
        let t = sample();
        let idx = TraceIndex::build(&t);
        assert_eq!(idx.pred_instances(StmtId(0), true), &[InstId(0)]);
        assert_eq!(idx.pred_instances(StmtId(0), false), &[InstId(2)]);
        assert_eq!(idx.pred_instances(StmtId(1), true), &[InstId(3)]);
        assert_eq!(idx.pred_instances(StmtId(7), true), &[] as &[InstId]);
    }

    #[test]
    fn window_queries_are_half_open() {
        let t = sample();
        let idx = TraceIndex::build(&t);
        let w = idx.pred_instances_between(StmtId(0), false, InstId(0), InstId(2));
        assert!(w.is_empty(), "hi bound is exclusive");
        let w = idx.pred_instances_between(StmtId(0), false, InstId(2), InstId(5));
        assert_eq!(w, &[InstId(2)], "lo bound is inclusive");
    }

    #[test]
    fn def_postings_and_latest_def() {
        let mut e0 = Event::new(StmtId(0));
        e0.def_var = Some(VarId(4));
        let e1 = Event::new(StmtId(1));
        let mut e2 = Event::new(StmtId(0));
        e2.def_var = Some(VarId(4));
        let t = Trace::from_parts(vec![e0, e1, e2], vec![], Termination::Normal);
        let idx = TraceIndex::build(&t);
        assert_eq!(idx.defs_of(VarId(4)), &[InstId(0), InstId(2)]);
        assert_eq!(idx.latest_def_before(VarId(4), InstId(2)), Some(InstId(0)));
        assert_eq!(idx.latest_def_before(VarId(4), InstId(3)), Some(InstId(2)));
        assert_eq!(idx.latest_def_before(VarId(4), InstId(0)), None);
        assert_eq!(idx.latest_def_before(VarId(9), InstId(3)), None);
    }

    #[test]
    fn parallel_build_is_identical() {
        // Big enough to cross the parallel threshold: a chain of nested
        // regions plus alternating predicates.
        let n = 10_000u32;
        let events: Vec<Event> = (0..n)
            .map(|i| {
                let mut e = Event::new(StmtId(i % 7));
                if i % 3 == 0 {
                    e.branch = Some(i % 2 == 0);
                }
                if i % 5 == 0 {
                    e.def_var = Some(VarId(i % 4));
                }
                if i > 0 {
                    e.cd_parent = Some(InstId(i / 2));
                }
                e
            })
            .collect();
        let t = Trace::from_parts(events, vec![], Termination::Normal);
        let serial = TraceIndex::build(&t);
        let parallel = TraceIndex::build_with_jobs(&t, 4);
        assert_eq!(serial.cd_tin, parallel.cd_tin);
        assert_eq!(serial.cd_tout, parallel.cd_tout);
        assert_eq!(serial.preds, parallel.preds);
        assert_eq!(serial.defs, parallel.defs);
    }

    #[test]
    #[should_panic(expected = "cd parent")]
    fn forward_cd_parent_panics() {
        let events = vec![mk(0, Some(1), None), mk(1, None, None)];
        let t = Trace::from_parts(events, vec![], Termination::Normal);
        let _ = TraceIndex::build(&t);
    }
}
