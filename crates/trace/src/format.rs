//! The `omitrace/v1` on-disk trace format.
//!
//! A saved trace lets `locate` (and any offline analysis) skip
//! re-execution entirely: `omislice trace --save t.omitrace` writes the
//! columnar store, and `omislice locate --trace-in t.omitrace` reloads
//! it byte-identically. The layout mirrors [`ColumnarTrace`] — one
//! *section* per column — so serialization is a straight walk over each
//! dense array, no row materialization.
//!
//! ## Layout (all integers little-endian)
//!
//! ```text
//! header   : magic b"OMITRACE" | version u32 = 1 | section count u32
//! sections : tag u16 | encoding u8 | reserved u8 | payload len u64 | payload
//! trailer  : FNV-1a/64 checksum over header + sections
//! ```
//!
//! Section payloads use three encodings: `raw` (byte-per-entry columns),
//! `varint` (LEB128, for small unsigned values), and `delta-varint`
//! (LEB128 of a difference). Instance-id columns are delta-compressed
//! against their *owning event index*: a dependence edge `d` of event
//! `i` is stored as `i - d`, which is small (locality) and positive
//! (trace edges always point backwards in time), and the optional parent
//! columns store `i - parent + 1` with `0` meaning "none".
//!
//! ## Integrity
//!
//! [`decode_trace`] never panics on hostile input: the magic, version,
//! checksum, section framing, column lengths, and the backwards-edge /
//! monotone-offset invariants are all validated, and violations surface
//! as structured [`TraceFileError`]s. This is load-bearing for the CLI
//! contract that corrupted or truncated files produce an error message,
//! not a crash.

use crate::columnar::ColumnarTrace;
use crate::event::{InstId, OutputRecord};
use crate::outcome::CrashKind;
use crate::trace::{Termination, Trace};
use crate::value::Value;
use omislice_lang::StmtId;
use std::fmt;
use std::path::Path;

/// First bytes of every trace file.
pub const MAGIC: &[u8; 8] = b"OMITRACE";
/// Current format version.
pub const VERSION: u32 = 1;

/// Statement ids above this bound are rejected as corrupt (the
/// statement table is dense, and no generated program approaches this).
const MAX_STMT_ID: u32 = 1 << 24;

// Section tags.
const SEC_COUNTS: u16 = 1;
const SEC_TERMINATION: u16 = 2;
const SEC_OUTPUTS: u16 = 3;
const SEC_STMT: u16 = 10;
const SEC_META: u16 = 11;
const SEC_VALUE: u16 = 12;
const SEC_CALL_DEPTH: u16 = 13;
const SEC_CD_PARENT: u16 = 14;
const SEC_REGION_PARENT: u16 = 15;
const SEC_DEF_VAR: u16 = 16;
const SEC_DEPS_OFF: u16 = 17;
const SEC_DEPS: u16 = 18;
const SEC_CELL_INDEX: u16 = 19;

// Encoding bytes (descriptive; decoders are tag-specific).
const ENC_RAW: u8 = 0;
const ENC_VARINT: u8 = 1;
const ENC_DELTA: u8 = 2;

/// Why a trace file failed to load.
#[derive(Debug)]
pub enum TraceFileError {
    /// The underlying file could not be read or written.
    Io(std::io::Error),
    /// The file does not start with the `OMITRACE` magic.
    BadMagic,
    /// The file declares a format version this build cannot read.
    UnsupportedVersion(u32),
    /// The file ends before the declared structure does.
    Truncated {
        /// What was being read when the bytes ran out.
        context: &'static str,
    },
    /// The trailer checksum does not match the file contents.
    ChecksumMismatch {
        /// Checksum stored in the trailer.
        stored: u64,
        /// Checksum recomputed over the file.
        computed: u64,
    },
    /// The framing is intact but a value violates a format invariant.
    Malformed(String),
}

impl fmt::Display for TraceFileError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TraceFileError::Io(e) => write!(f, "trace file i/o error: {e}"),
            TraceFileError::BadMagic => {
                write!(f, "not an omitrace file (bad magic; expected `OMITRACE`)")
            }
            TraceFileError::UnsupportedVersion(v) => {
                write!(f, "unsupported omitrace version {v} (this build reads v{VERSION})")
            }
            TraceFileError::Truncated { context } => {
                write!(f, "trace file truncated while reading {context}")
            }
            TraceFileError::ChecksumMismatch { stored, computed } => write!(
                f,
                "trace file corrupt: checksum mismatch (stored {stored:#018x}, computed {computed:#018x})"
            ),
            TraceFileError::Malformed(msg) => write!(f, "trace file malformed: {msg}"),
        }
    }
}

impl std::error::Error for TraceFileError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            TraceFileError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for TraceFileError {
    fn from(e: std::io::Error) -> Self {
        TraceFileError::Io(e)
    }
}

fn malformed(msg: impl Into<String>) -> TraceFileError {
    TraceFileError::Malformed(msg.into())
}

// --- FNV-1a/64 ---------------------------------------------------------

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h = FNV_OFFSET;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(FNV_PRIME);
    }
    h
}

// --- primitive writers -------------------------------------------------

fn put_varint(out: &mut Vec<u8>, mut v: u64) {
    loop {
        let byte = (v & 0x7f) as u8;
        v >>= 7;
        if v == 0 {
            out.push(byte);
            return;
        }
        out.push(byte | 0x80);
    }
}

fn zigzag(v: i64) -> u64 {
    ((v << 1) ^ (v >> 63)) as u64
}

fn unzigzag(v: u64) -> i64 {
    ((v >> 1) as i64) ^ -((v & 1) as i64)
}

// --- primitive readers -------------------------------------------------

/// Bounds-checked sequential reader over a byte buffer.
struct Cursor<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Cursor<'a> {
    fn new(buf: &'a [u8]) -> Self {
        Cursor { buf, pos: 0 }
    }

    fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    fn take(&mut self, n: usize, context: &'static str) -> Result<&'a [u8], TraceFileError> {
        if self.remaining() < n {
            return Err(TraceFileError::Truncated { context });
        }
        let s = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    fn u32(&mut self, context: &'static str) -> Result<u32, TraceFileError> {
        Ok(u32::from_le_bytes(
            self.take(4, context)?.try_into().unwrap(),
        ))
    }

    fn u64(&mut self, context: &'static str) -> Result<u64, TraceFileError> {
        Ok(u64::from_le_bytes(
            self.take(8, context)?.try_into().unwrap(),
        ))
    }

    fn varint(&mut self, context: &'static str) -> Result<u64, TraceFileError> {
        let mut v: u64 = 0;
        for shift in (0..64).step_by(7) {
            let b = self.take(1, context)?[0];
            v |= ((b & 0x7f) as u64) << shift;
            if b & 0x80 == 0 {
                return Ok(v);
            }
        }
        Err(malformed(format!("overlong varint in {context}")))
    }
}

// --- encoding ----------------------------------------------------------

fn push_section(out: &mut Vec<u8>, tag: u16, encoding: u8, payload: &[u8]) {
    out.extend_from_slice(&tag.to_le_bytes());
    out.push(encoding);
    out.push(0); // reserved
    out.extend_from_slice(&(payload.len() as u64).to_le_bytes());
    out.extend_from_slice(payload);
}

/// Serializes a trace to `omitrace/v1` bytes.
pub fn encode_trace(trace: &Trace) -> Vec<u8> {
    // The encoder walks raw contiguous columns; a prefix-shared trace
    // (checkpoint resume) is materialized first. Base traces — the only
    // ones saved on hot paths — are always flat, so this copy is only
    // paid when explicitly persisting a resumed run.
    let flat;
    let cols = if trace.columns().has_prefix() {
        flat = trace.columns().clone_prefix(trace.len());
        &flat
    } else {
        trace.columns()
    };
    let n = cols.len();
    let mut out = Vec::with_capacity(64 + cols.bytes() / 4);
    out.extend_from_slice(MAGIC);
    out.extend_from_slice(&VERSION.to_le_bytes());
    out.extend_from_slice(&13u32.to_le_bytes()); // section count

    let mut buf = Vec::new();

    // counts
    buf.extend_from_slice(&(n as u64).to_le_bytes());
    buf.extend_from_slice(&(cols.deps_len() as u64).to_le_bytes());
    push_section(&mut out, SEC_COUNTS, ENC_RAW, &buf);

    // termination
    buf.clear();
    match trace.termination() {
        Termination::Normal => buf.push(0),
        Termination::BudgetExhausted => buf.push(1),
        Termination::RuntimeError(kind, msg) => {
            buf.push(2);
            buf.push(crash_kind_code(*kind));
            put_varint(&mut buf, msg.len() as u64);
            buf.extend_from_slice(msg.as_bytes());
        }
    }
    push_section(&mut out, SEC_TERMINATION, ENC_RAW, &buf);

    // outputs: ascending instance ids, delta-compressed
    buf.clear();
    put_varint(&mut buf, trace.outputs().len() as u64);
    let mut prev = 0u32;
    for o in trace.outputs() {
        put_varint(&mut buf, (o.inst.0 - prev) as u64);
        prev = o.inst.0;
        match o.value {
            Value::Int(v) => {
                buf.push(1);
                put_varint(&mut buf, zigzag(v));
            }
            Value::Bool(b) => {
                buf.push(2);
                buf.push(b as u8);
            }
        }
    }
    push_section(&mut out, SEC_OUTPUTS, ENC_DELTA, &buf);

    // stmt
    buf.clear();
    for s in &cols.stmt {
        put_varint(&mut buf, s.0 as u64);
    }
    push_section(&mut out, SEC_STMT, ENC_VARINT, &buf);

    // meta (byte per event, raw)
    push_section(&mut out, SEC_META, ENC_RAW, &cols.meta);

    // value (zigzag varint; mostly small magnitudes)
    buf.clear();
    for &v in &cols.value {
        put_varint(&mut buf, zigzag(v));
    }
    push_section(&mut out, SEC_VALUE, ENC_VARINT, &buf);

    // call_depth
    buf.clear();
    for &d in &cols.call_depth {
        put_varint(&mut buf, d as u64);
    }
    push_section(&mut out, SEC_CALL_DEPTH, ENC_VARINT, &buf);

    // optional parent columns: 0 = none, else i - parent (>= 1 offset by +1
    // is unnecessary since parent < i strictly, so i - parent >= 1)
    for (tag, col) in [
        (SEC_CD_PARENT, &cols.cd_parent),
        (SEC_REGION_PARENT, &cols.region_parent),
    ] {
        buf.clear();
        for (i, &p) in col.iter().enumerate() {
            if p == u32::MAX {
                put_varint(&mut buf, 0);
            } else {
                put_varint(&mut buf, (i as u32 - p) as u64);
            }
        }
        push_section(&mut out, tag, ENC_DELTA, &buf);
    }

    // def_var: 0 = none, else var + 1
    buf.clear();
    for &v in &cols.def_var {
        put_varint(&mut buf, if v == u32::MAX { 0 } else { v as u64 + 1 });
    }
    push_section(&mut out, SEC_DEF_VAR, ENC_VARINT, &buf);

    // deps_off: monotone, delta-compressed
    buf.clear();
    let mut prev_off = 0u32;
    for &o in &cols.deps_off {
        put_varint(&mut buf, (o - prev_off) as u64);
        prev_off = o;
    }
    push_section(&mut out, SEC_DEPS_OFF, ENC_DELTA, &buf);

    // deps: each edge relative to its owning event (backwards in time,
    // so i - d >= 1 always)
    buf.clear();
    for i in 0..n {
        let start = cols.deps_off[i] as usize;
        let end = cols.deps_off[i + 1] as usize;
        for d in &cols.deps[start..end] {
            put_varint(&mut buf, (i as u32 - d.0) as u64);
        }
    }
    push_section(&mut out, SEC_DEPS, ENC_DELTA, &buf);

    // cell_index: sparse sorted (inst, value) pairs
    buf.clear();
    put_varint(&mut buf, cols.cell_index.len() as u64);
    let mut prev_inst = 0u32;
    for &(inst, v) in &cols.cell_index {
        put_varint(&mut buf, (inst - prev_inst) as u64);
        prev_inst = inst;
        put_varint(&mut buf, zigzag(v));
    }
    push_section(&mut out, SEC_CELL_INDEX, ENC_DELTA, &buf);

    let checksum = fnv1a(&out);
    out.extend_from_slice(&checksum.to_le_bytes());
    out
}

fn crash_kind_code(kind: CrashKind) -> u8 {
    match kind {
        CrashKind::OobIndex => 0,
        CrashKind::MissingCallee => 1,
        CrashKind::DivByZero => 2,
        CrashKind::TypeError => 3,
        CrashKind::StackOverflow => 4,
        CrashKind::UninitRead => 5,
        CrashKind::Panic => 6,
    }
}

fn crash_kind_from(code: u8) -> Result<CrashKind, TraceFileError> {
    Ok(match code {
        0 => CrashKind::OobIndex,
        1 => CrashKind::MissingCallee,
        2 => CrashKind::DivByZero,
        3 => CrashKind::TypeError,
        4 => CrashKind::StackOverflow,
        5 => CrashKind::UninitRead,
        6 => CrashKind::Panic,
        other => return Err(malformed(format!("unknown crash kind code {other}"))),
    })
}

// --- decoding ----------------------------------------------------------

/// Deserializes `omitrace/v1` bytes into a [`Trace`].
///
/// # Errors
///
/// Returns a structured [`TraceFileError`] on any framing, checksum, or
/// invariant violation; never panics on hostile input.
pub fn decode_trace(bytes: &[u8]) -> Result<Trace, TraceFileError> {
    if bytes.len() < MAGIC.len() || &bytes[..MAGIC.len()] != MAGIC {
        return Err(TraceFileError::BadMagic);
    }
    if bytes.len() < MAGIC.len() + 8 + 8 {
        return Err(TraceFileError::Truncated { context: "header" });
    }
    let body = &bytes[..bytes.len() - 8];
    let stored = u64::from_le_bytes(bytes[bytes.len() - 8..].try_into().unwrap());
    let computed = fnv1a(body);
    if stored != computed {
        return Err(TraceFileError::ChecksumMismatch { stored, computed });
    }

    let mut cur = Cursor::new(body);
    cur.take(MAGIC.len(), "magic")?;
    let version = cur.u32("version")?;
    if version != VERSION {
        return Err(TraceFileError::UnsupportedVersion(version));
    }
    let n_sections = cur.u32("section count")?;

    // Collect section payloads; decode in a fixed order afterwards since
    // later columns (deps) need earlier ones (deps_off).
    let mut sections: Vec<(u16, &[u8])> = Vec::with_capacity(n_sections as usize);
    for _ in 0..n_sections {
        let tag = u16::from_le_bytes(cur.take(2, "section tag")?.try_into().unwrap());
        cur.take(2, "section header")?; // encoding + reserved
        let len = cur.u64("section length")? as usize;
        let payload = cur.take(len, "section payload")?;
        sections.push((tag, payload));
    }
    let section = |tag: u16| -> Result<&[u8], TraceFileError> {
        sections
            .iter()
            .find(|(t, _)| *t == tag)
            .map(|(_, p)| *p)
            .ok_or_else(|| malformed(format!("missing section {tag}")))
    };

    // counts
    let mut c = Cursor::new(section(SEC_COUNTS)?);
    let n = c.u64("event count")? as usize;
    let n_deps = c.u64("dep count")? as usize;
    if n > u32::MAX as usize - 1 {
        return Err(malformed("event count exceeds u32 instance-id space"));
    }

    // termination
    let mut c = Cursor::new(section(SEC_TERMINATION)?);
    let termination = match c.take(1, "termination tag")?[0] {
        0 => Termination::Normal,
        1 => Termination::BudgetExhausted,
        2 => {
            let kind = crash_kind_from(c.take(1, "crash kind")?[0])?;
            let len = c.varint("crash message length")? as usize;
            let msg = std::str::from_utf8(c.take(len, "crash message")?)
                .map_err(|_| malformed("crash message is not UTF-8"))?
                .to_string();
            Termination::RuntimeError(kind, msg)
        }
        other => return Err(malformed(format!("unknown termination tag {other}"))),
    };

    // outputs
    let mut c = Cursor::new(section(SEC_OUTPUTS)?);
    let n_outputs = c.varint("output count")? as usize;
    if n_outputs > n {
        return Err(malformed("more outputs than events"));
    }
    let mut outputs = Vec::with_capacity(n_outputs);
    let mut prev = 0u32;
    for k in 0..n_outputs {
        let delta = c.varint("output instance")? as u32;
        let inst = if k == 0 {
            delta
        } else {
            prev.checked_add(delta)
                .ok_or_else(|| malformed("output instance overflow"))?
        };
        prev = inst;
        if inst as usize >= n {
            return Err(malformed("output instance out of range"));
        }
        let value = match c.take(1, "output value tag")?[0] {
            1 => Value::Int(unzigzag(c.varint("output value")?)),
            2 => Value::Bool(c.take(1, "output value")?[0] != 0),
            other => return Err(malformed(format!("unknown value tag {other}"))),
        };
        outputs.push(OutputRecord {
            inst: InstId(inst),
            value,
        });
    }

    // dense columns
    let mut cols = ColumnarTrace::with_capacity(n, n_deps);

    let mut c = Cursor::new(section(SEC_STMT)?);
    for _ in 0..n {
        let s = c.varint("stmt column")? as u32;
        if s >= MAX_STMT_ID {
            return Err(malformed(format!("statement id {s} out of sane range")));
        }
        cols.stmt.push(StmtId(s));
    }

    let meta = section(SEC_META)?;
    if meta.len() != n {
        return Err(malformed("meta column length mismatch"));
    }
    cols.meta.extend_from_slice(meta);

    let mut c = Cursor::new(section(SEC_VALUE)?);
    for _ in 0..n {
        cols.value.push(unzigzag(c.varint("value column")?));
    }

    let mut c = Cursor::new(section(SEC_CALL_DEPTH)?);
    for _ in 0..n {
        cols.call_depth.push(c.varint("call depth column")? as u32);
    }

    for (tag, name) in [
        (SEC_CD_PARENT, "cd parent"),
        (SEC_REGION_PARENT, "region parent"),
    ] {
        let mut c = Cursor::new(section(tag)?);
        let col = if tag == SEC_CD_PARENT {
            &mut cols.cd_parent
        } else {
            &mut cols.region_parent
        };
        for i in 0..n as u32 {
            let delta = c.varint("parent column")? as u32;
            if delta == 0 {
                col.push(u32::MAX);
            } else if delta > i {
                return Err(malformed(format!(
                    "{name} of instance {i} is not backwards"
                )));
            } else {
                col.push(i - delta);
            }
        }
    }

    let mut c = Cursor::new(section(SEC_DEF_VAR)?);
    for _ in 0..n {
        let v = c.varint("def var column")?;
        cols.def_var
            .push(if v == 0 { u32::MAX } else { (v - 1) as u32 });
    }

    let mut c = Cursor::new(section(SEC_DEPS_OFF)?);
    cols.deps_off.clear();
    let mut off = 0u32;
    for k in 0..=n {
        let delta = c.varint("deps offsets")? as u32;
        if k == 0 && delta != 0 {
            return Err(malformed("deps offsets must start at 0"));
        }
        off = off
            .checked_add(delta)
            .ok_or_else(|| malformed("deps offset overflow"))?;
        cols.deps_off.push(off);
    }
    if off as usize != n_deps {
        return Err(malformed("deps offsets do not cover the dep arena"));
    }

    let mut c = Cursor::new(section(SEC_DEPS)?);
    for i in 0..n {
        let start = cols.deps_off[i];
        let end = cols.deps_off[i + 1];
        for _ in start..end {
            let delta = c.varint("deps column")? as u32;
            if delta == 0 || delta > i as u32 {
                return Err(malformed(format!(
                    "dependence edge of instance {i} is not backwards"
                )));
            }
            cols.deps.push(InstId(i as u32 - delta));
        }
    }

    let mut c = Cursor::new(section(SEC_CELL_INDEX)?);
    let n_cells = c.varint("cell index count")? as usize;
    if n_cells > n {
        return Err(malformed("more cell indices than events"));
    }
    let mut prev = 0u32;
    for k in 0..n_cells {
        let delta = c.varint("cell index instance")? as u32;
        let inst = if k == 0 {
            delta
        } else {
            prev.checked_add(delta)
                .ok_or_else(|| malformed("cell instance overflow"))?
        };
        if k > 0 && delta == 0 {
            return Err(malformed("cell index instances must be strictly ascending"));
        }
        prev = inst;
        if inst as usize >= n {
            return Err(malformed("cell index instance out of range"));
        }
        let v = unzigzag(c.varint("cell index value")?);
        cols.cell_index.push((inst, v));
    }

    Ok(Trace::from_recorded(cols, outputs, termination, None))
}

// --- file i/o ----------------------------------------------------------

/// The crash-safe sibling a save writes before renaming into place:
/// same directory (so the rename cannot cross filesystems), hidden, and
/// pid-tagged so concurrent processes never collide.
fn temp_sibling(path: &Path) -> std::path::PathBuf {
    let name = path
        .file_name()
        .map(|n| n.to_string_lossy().into_owned())
        .unwrap_or_else(|| "omitrace".to_string());
    path.with_file_name(format!(".{name}.{}.tmp", std::process::id()))
}

/// Writes `bytes` to `tmp`, honouring injected save faults: a
/// `save=short-write` plan persists only half the image (a torn write),
/// `save=enospc` fails with a simulated out-of-space error.
fn write_with_chaos(tmp: &Path, bytes: &[u8]) -> Result<(), TraceFileError> {
    match crate::supervisor::chaos_hit(crate::supervisor::ChaosSite::Save) {
        Some(crate::supervisor::ChaosAction::ShortWrite) => {
            std::fs::write(tmp, &bytes[..bytes.len() / 2])?;
            Ok(())
        }
        Some(crate::supervisor::ChaosAction::Enospc) => Err(TraceFileError::Io(
            std::io::Error::other("no space left on device (injected)"),
        )),
        _ => {
            std::fs::write(tmp, bytes)?;
            Ok(())
        }
    }
}

/// Verifies that the bytes that reached the disk are exactly the bytes
/// we meant to write: full length and a trailer checksum that matches a
/// recomputation over the body. Catches torn writes *and* in-memory
/// encode corruption before the file can replace a good one.
fn verify_written(tmp: &Path, expected_len: usize) -> Result<(), TraceFileError> {
    let back = std::fs::read(tmp)?;
    if back.len() != expected_len || back.len() < MAGIC.len() + 8 {
        return Err(TraceFileError::Truncated {
            context: "save verification read-back",
        });
    }
    let body = back.len() - 8;
    let stored = u64::from_le_bytes(back[body..].try_into().expect("8 bytes"));
    let computed = fnv1a(&back[..body]);
    if stored != computed {
        return Err(TraceFileError::ChecksumMismatch { stored, computed });
    }
    Ok(())
}

/// Writes `trace` to `path` in `omitrace/v1` format, **atomically and
/// verified**: the image is written to a temp sibling in the target
/// directory, read back and checksum-verified, and only then renamed
/// over `path`. A crash (or injected fault) at any point leaves either
/// the old file or no file — never a partial `.omitrace`.
///
/// # Errors
///
/// Propagates filesystem errors as [`TraceFileError::Io`]; a torn write
/// caught by verification surfaces as [`TraceFileError::Truncated`] or
/// [`TraceFileError::ChecksumMismatch`]. The temp sibling is removed on
/// every failure path.
pub fn save_trace(trace: &Trace, path: &Path) -> Result<(), TraceFileError> {
    let mut bytes = encode_trace(trace);
    if crate::supervisor::chaos_hit(crate::supervisor::ChaosSite::Encode).is_some() {
        // Injected encode corruption: flip one body bit so the
        // read-back verification must catch it.
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0x40;
    }
    let tmp = temp_sibling(path);
    let result = write_with_chaos(&tmp, &bytes)
        .and_then(|()| verify_written(&tmp, bytes.len()))
        .and_then(|()| std::fs::rename(&tmp, path).map_err(TraceFileError::from));
    if result.is_err() {
        let _ = std::fs::remove_file(&tmp);
    }
    result
}

/// Reads a trace from `path`, memory-mapping the file where supported
/// (x86-64 Linux) and falling back to a buffered read elsewhere.
///
/// # Errors
///
/// Returns [`TraceFileError::Io`] for filesystem problems and the
/// structured decode errors of [`decode_trace`] for corrupt contents.
pub fn load_trace(path: &Path) -> Result<Trace, TraceFileError> {
    let bytes = crate::mmap::read_file(path)?;
    if crate::supervisor::chaos_hit(crate::supervisor::ChaosSite::Decode).is_some() {
        // Injected decode corruption: flip one bit in a private copy of
        // the image (the file itself is untouched, so a retry is clean).
        let mut owned = bytes.to_vec();
        if !owned.is_empty() {
            let mid = owned.len() / 2;
            owned[mid] ^= 0x40;
        }
        return decode_trace(&owned);
    }
    decode_trace(&bytes)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::Event;
    use omislice_lang::VarId;

    fn sample() -> Trace {
        let mut e0 = Event::new(StmtId(0));
        e0.branch = Some(true);
        e0.value = Some(Value::Bool(true));
        let mut e1 = Event::new(StmtId(3));
        e1.cd_parent = Some(InstId(0));
        e1.region_parent = Some(InstId(0));
        e1.data_deps = vec![InstId(0)];
        e1.value = Some(Value::Int(-7));
        e1.def_var = Some(VarId(2));
        let mut e2 = Event::new(StmtId(5));
        e2.data_deps = vec![InstId(0), InstId(1)];
        e2.value = Some(Value::Int(123_456_789));
        e2.def_var = Some(VarId(0));
        e2.cell_index = Some(4);
        e2.call_depth = 2;
        Trace::from_parts(
            vec![e0, e1, e2],
            vec![OutputRecord {
                inst: InstId(2),
                value: Value::Int(9),
            }],
            Termination::RuntimeError(CrashKind::DivByZero, "x / 0 in S5 `print`".into()),
        )
    }

    #[test]
    fn round_trips_exactly() {
        let t = sample();
        let bytes = encode_trace(&t);
        let back = decode_trace(&bytes).unwrap();
        assert_eq!(back.events_vec(), t.events_vec());
        assert_eq!(back.outputs(), t.outputs());
        assert_eq!(back.termination(), t.termination());
        assert_eq!(back.columns(), t.columns());
    }

    #[test]
    fn empty_trace_round_trips() {
        let t = Trace::from_parts(vec![], vec![], Termination::Normal);
        let back = decode_trace(&encode_trace(&t)).unwrap();
        assert!(back.is_empty());
        assert_eq!(back.termination(), &Termination::Normal);
    }

    #[test]
    fn encoding_is_deterministic() {
        let a = encode_trace(&sample());
        let b = encode_trace(&sample());
        assert_eq!(a, b);
    }

    #[test]
    fn rejects_bad_magic() {
        let mut bytes = encode_trace(&sample());
        bytes[0] = b'X';
        assert!(matches!(
            decode_trace(&bytes),
            Err(TraceFileError::BadMagic)
        ));
    }

    #[test]
    fn rejects_unsupported_version() {
        let mut bytes = encode_trace(&sample());
        bytes[8] = 99;
        // fix the checksum so version is what's reported
        let body_len = bytes.len() - 8;
        let sum = fnv1a(&bytes[..body_len]);
        bytes[body_len..].copy_from_slice(&sum.to_le_bytes());
        assert!(matches!(
            decode_trace(&bytes),
            Err(TraceFileError::UnsupportedVersion(99))
        ));
    }

    #[test]
    fn rejects_truncation_everywhere() {
        let bytes = encode_trace(&sample());
        for cut in 0..bytes.len() {
            let err = decode_trace(&bytes[..cut]).unwrap_err();
            assert!(
                matches!(
                    err,
                    TraceFileError::BadMagic
                        | TraceFileError::Truncated { .. }
                        | TraceFileError::ChecksumMismatch { .. }
                        | TraceFileError::Malformed(_)
                ),
                "cut at {cut} gave unexpected {err:?}"
            );
        }
    }

    #[test]
    fn rejects_bit_flips() {
        let bytes = encode_trace(&sample());
        // Flip one bit in every byte of the body: the checksum must catch
        // each (the trailer itself then mismatches the recomputation).
        for i in 0..bytes.len() {
            let mut corrupt = bytes.clone();
            corrupt[i] ^= 0x40;
            assert!(
                decode_trace(&corrupt).is_err(),
                "bit flip at byte {i} was not detected"
            );
        }
    }

    #[test]
    fn save_and_load_via_file() {
        let dir = std::env::temp_dir().join("omitrace-format-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("t.omitrace");
        let t = sample();
        save_trace(&t, &path).unwrap();
        let back = load_trace(&path).unwrap();
        assert_eq!(back.events_vec(), t.events_vec());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn load_missing_file_is_io_error() {
        let err = load_trace(Path::new("/nonexistent/trace.omitrace")).unwrap_err();
        assert!(matches!(err, TraceFileError::Io(_)));
    }

    /// No entry in `dir` looks like a leftover partial save.
    fn no_partials(dir: &Path) -> bool {
        std::fs::read_dir(dir)
            .unwrap()
            .all(|e| !e.unwrap().file_name().to_string_lossy().ends_with(".tmp"))
    }

    #[test]
    fn torn_write_never_leaves_a_partial_omitrace() {
        use crate::supervisor::{ChaosPlan, ChaosScope};
        let dir = std::env::temp_dir().join("omitrace-atomic-test-torn");
        std::fs::remove_dir_all(&dir).ok();
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("t.omitrace");
        let t = sample();
        {
            // A mid-write crash, simulated as a torn (half-length) write.
            let plan = ChaosPlan::parse("save=short-write").unwrap();
            let _scope = ChaosScope::install(Some(&plan), None);
            let err = save_trace(&t, &path).unwrap_err();
            assert!(matches!(err, TraceFileError::Truncated { .. }));
        }
        // The crash-only contract: no target file, no temp litter.
        assert!(!path.exists());
        assert!(no_partials(&dir));
        // And a clean retry (the entry fired once) fully succeeds.
        save_trace(&t, &path).unwrap();
        let back = load_trace(&path).unwrap();
        assert_eq!(back.events_vec(), t.events_vec());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn torn_write_never_clobbers_an_existing_good_file() {
        use crate::supervisor::{ChaosPlan, ChaosScope};
        let dir = std::env::temp_dir().join("omitrace-atomic-test-clobber");
        std::fs::remove_dir_all(&dir).ok();
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("t.omitrace");
        let t = sample();
        save_trace(&t, &path).unwrap();
        let good = std::fs::read(&path).unwrap();
        {
            let plan = ChaosPlan::parse("save=short-write").unwrap();
            let _scope = ChaosScope::install(Some(&plan), None);
            assert!(save_trace(&t, &path).is_err());
        }
        // The previous good bytes survive untouched.
        assert_eq!(std::fs::read(&path).unwrap(), good);
        assert!(no_partials(&dir));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn enospc_fails_cleanly_and_retry_succeeds() {
        use crate::supervisor::{ChaosPlan, ChaosScope};
        let dir = std::env::temp_dir().join("omitrace-atomic-test-enospc");
        std::fs::remove_dir_all(&dir).ok();
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("t.omitrace");
        let t = sample();
        {
            let plan = ChaosPlan::parse("save=enospc").unwrap();
            let _scope = ChaosScope::install(Some(&plan), None);
            let err = save_trace(&t, &path).unwrap_err();
            assert!(matches!(err, TraceFileError::Io(_)));
            assert!(!path.exists());
            assert!(no_partials(&dir));
            // Retry inside the same scope: the entry already fired.
            save_trace(&t, &path).unwrap();
        }
        assert_eq!(load_trace(&path).unwrap().events_vec(), t.events_vec());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn encode_corruption_is_caught_before_rename() {
        use crate::supervisor::{ChaosPlan, ChaosScope};
        let dir = std::env::temp_dir().join("omitrace-atomic-test-encode");
        std::fs::remove_dir_all(&dir).ok();
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("t.omitrace");
        let t = sample();
        {
            let plan = ChaosPlan::parse("encode=corrupt").unwrap();
            let _scope = ChaosScope::install(Some(&plan), None);
            let err = save_trace(&t, &path).unwrap_err();
            assert!(matches!(err, TraceFileError::ChecksumMismatch { .. }));
        }
        assert!(!path.exists());
        assert!(no_partials(&dir));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn decode_corruption_is_rejected_and_file_stays_clean() {
        use crate::supervisor::{ChaosPlan, ChaosScope};
        let dir = std::env::temp_dir().join("omitrace-atomic-test-decode");
        std::fs::remove_dir_all(&dir).ok();
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("t.omitrace");
        let t = sample();
        save_trace(&t, &path).unwrap();
        {
            let plan = ChaosPlan::parse("decode=corrupt").unwrap();
            let _scope = ChaosScope::install(Some(&plan), None);
            assert!(load_trace(&path).is_err());
            // The corruption lived in a private copy: a second load in
            // the same scope (the entry fired) reads the intact file.
            assert_eq!(load_trace(&path).unwrap().events_vec(), t.events_vec());
        }
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn mmap_chaos_falls_back_to_buffered_read() {
        use crate::supervisor::{take_recovery, ChaosPlan, ChaosScope, RecoveryKind};
        let dir = std::env::temp_dir().join("omitrace-atomic-test-mmap");
        std::fs::remove_dir_all(&dir).ok();
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("t.omitrace");
        let t = sample();
        save_trace(&t, &path).unwrap();
        let _ = take_recovery();
        {
            let plan = ChaosPlan::parse("mmap=fail").unwrap();
            let _scope = ChaosScope::install(Some(&plan), None);
            assert_eq!(load_trace(&path).unwrap().events_vec(), t.events_vec());
        }
        let log = take_recovery();
        if cfg!(all(target_os = "linux", target_arch = "x86_64")) {
            assert_eq!(log.count(RecoveryKind::MmapFallback), 1);
        }
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn supervisor_save_retries_once_and_matches_clean_bytes() {
        use crate::supervisor::{take_recovery, ChaosPlan, RecoveryKind, Supervisor};
        let dir = std::env::temp_dir().join("omitrace-atomic-test-supervised");
        std::fs::remove_dir_all(&dir).ok();
        std::fs::create_dir_all(&dir).unwrap();
        let t = sample();
        let clean = dir.join("clean.omitrace");
        Supervisor::new().save_trace(&t, &clean).unwrap();
        let _ = take_recovery();
        for chaos in ["save=short-write", "save=enospc", "encode=corrupt"] {
            let faulted = dir.join("faulted.omitrace");
            let sup = Supervisor::new().with_chaos(Some(ChaosPlan::parse(chaos).unwrap()));
            sup.save_trace(&t, &faulted).unwrap();
            assert_eq!(
                std::fs::read(&faulted).unwrap(),
                std::fs::read(&clean).unwrap(),
                "retried save must equal clean save under `{chaos}`"
            );
            std::fs::remove_file(&faulted).ok();
        }
        let log = take_recovery();
        assert_eq!(log.count(RecoveryKind::SaveRetry), 3);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn supervisor_load_retries_decode_corruption() {
        use crate::supervisor::{take_recovery, ChaosPlan, RecoveryKind, Supervisor};
        let dir = std::env::temp_dir().join("omitrace-atomic-test-loadretry");
        std::fs::remove_dir_all(&dir).ok();
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("t.omitrace");
        let t = sample();
        save_trace(&t, &path).unwrap();
        let _ = take_recovery();
        let sup = Supervisor::new().with_chaos(Some(ChaosPlan::parse("decode=corrupt").unwrap()));
        let back = sup.load_trace(&path).unwrap();
        assert_eq!(back.events_vec(), t.events_vec());
        assert_eq!(take_recovery().count(RecoveryKind::LoadRetry), 1);
        std::fs::remove_dir_all(&dir).ok();
    }
}
