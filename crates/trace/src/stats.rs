//! Summary statistics over a trace — the quick health check a debugging
//! session starts with (`omislice trace --stats` in the CLI).

use crate::trace::Trace;
use omislice_lang::StmtId;
use std::collections::HashMap;
use std::fmt;

/// Aggregate counts for one trace.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceStats {
    /// Total statement instances.
    pub instances: usize,
    /// Distinct statements executed.
    pub unique_stmts: usize,
    /// Predicate instances (branch evaluations).
    pub predicate_instances: usize,
    /// Total dynamic data-dependence edges.
    pub data_edges: usize,
    /// Instances with a dynamic control-dependence parent.
    pub control_edges: usize,
    /// Observable outputs emitted.
    pub outputs: usize,
    /// Deepest call depth reached.
    pub max_call_depth: u32,
    /// The most executed statement and its instance count.
    pub hottest: Option<(StmtId, usize)>,
}

impl TraceStats {
    /// Computes statistics for `trace`.
    pub fn compute(trace: &Trace) -> Self {
        let mut per_stmt: HashMap<StmtId, usize> = HashMap::new();
        let mut predicate_instances = 0;
        let mut data_edges = 0;
        let mut control_edges = 0;
        let mut max_call_depth = 0;
        for ev in trace.events() {
            *per_stmt.entry(ev.stmt).or_insert(0) += 1;
            if ev.is_predicate() {
                predicate_instances += 1;
            }
            data_edges += ev.data_deps.len();
            if ev.cd_parent.is_some() {
                control_edges += 1;
            }
            max_call_depth = max_call_depth.max(ev.call_depth);
        }
        let hottest = per_stmt
            .iter()
            .max_by_key(|(stmt, n)| (**n, std::cmp::Reverse(**stmt)))
            .map(|(&s, &n)| (s, n));
        TraceStats {
            instances: trace.len(),
            unique_stmts: per_stmt.len(),
            predicate_instances,
            data_edges,
            control_edges,
            outputs: trace.outputs().len(),
            max_call_depth,
            hottest,
        }
    }
}

impl fmt::Display for TraceStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "instances        : {}", self.instances)?;
        writeln!(f, "unique statements: {}", self.unique_stmts)?;
        writeln!(f, "predicates       : {}", self.predicate_instances)?;
        writeln!(f, "data edges       : {}", self.data_edges)?;
        writeln!(f, "control edges    : {}", self.control_edges)?;
        writeln!(f, "outputs          : {}", self.outputs)?;
        writeln!(f, "max call depth   : {}", self.max_call_depth)?;
        match self.hottest {
            Some((s, n)) => writeln!(f, "hottest statement: {s} ({n} instances)"),
            None => writeln!(f, "hottest statement: -"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::{Event, InstId, OutputRecord};
    use crate::trace::Termination;
    use crate::value::Value;

    fn sample() -> Trace {
        let mut guard = Event::new(StmtId(0));
        guard.branch = Some(true);
        let mut a = Event::new(StmtId(1));
        a.cd_parent = Some(InstId(0));
        a.data_deps = vec![InstId(0)];
        a.value = Some(Value::Int(1));
        let mut b = Event::new(StmtId(1));
        b.cd_parent = Some(InstId(0));
        b.data_deps = vec![InstId(0), InstId(1)];
        b.call_depth = 2;
        Trace::from_parts(
            vec![guard, a, b],
            vec![OutputRecord {
                inst: InstId(1),
                value: Value::Int(1),
            }],
            Termination::Normal,
        )
    }

    #[test]
    fn counts_are_accurate() {
        let stats = TraceStats::compute(&sample());
        assert_eq!(stats.instances, 3);
        assert_eq!(stats.unique_stmts, 2);
        assert_eq!(stats.predicate_instances, 1);
        assert_eq!(stats.data_edges, 3);
        assert_eq!(stats.control_edges, 2);
        assert_eq!(stats.outputs, 1);
        assert_eq!(stats.max_call_depth, 2);
        assert_eq!(stats.hottest, Some((StmtId(1), 2)));
    }

    #[test]
    fn empty_trace_stats() {
        let stats = TraceStats::compute(&Trace::from_parts(vec![], vec![], Termination::Normal));
        assert_eq!(stats.instances, 0);
        assert_eq!(stats.hottest, None);
        assert!(stats.to_string().contains("hottest statement: -"));
    }

    #[test]
    fn display_lists_every_field() {
        let text = TraceStats::compute(&sample()).to_string();
        for needle in ["instances", "predicates", "data edges", "hottest"] {
            assert!(text.contains(needle), "{text}");
        }
    }
}
