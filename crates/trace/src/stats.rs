//! Summary statistics over a trace — the quick health check a debugging
//! session starts with (`omislice trace --stats` in the CLI) — plus the
//! per-run instrumentation of the verification engine
//! ([`VerificationStats`], `omislice locate --stats`).

use crate::trace::Trace;
use omislice_lang::StmtId;
use std::fmt;
use std::time::Duration;

/// Aggregate counts for one trace.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceStats {
    /// Total statement instances.
    pub instances: usize,
    /// Distinct statements executed.
    pub unique_stmts: usize,
    /// Predicate instances (branch evaluations).
    pub predicate_instances: usize,
    /// Total dynamic data-dependence edges.
    pub data_edges: usize,
    /// Instances with a dynamic control-dependence parent.
    pub control_edges: usize,
    /// Observable outputs emitted.
    pub outputs: usize,
    /// Deepest call depth reached.
    pub max_call_depth: u32,
    /// The most executed statement and its instance count.
    pub hottest: Option<(StmtId, usize)>,
}

impl TraceStats {
    /// Computes statistics for `trace`.
    pub fn compute(trace: &Trace) -> Self {
        // Statement ids are small and dense, so per-statement counts live
        // in a plain vector indexed by id instead of a hash map.
        let mut per_stmt: Vec<usize> = Vec::new();
        let mut predicate_instances = 0;
        let mut data_edges = 0;
        let mut control_edges = 0;
        let mut max_call_depth = 0;
        for ev in trace.iter_events() {
            let s = ev.stmt.0 as usize;
            if s >= per_stmt.len() {
                per_stmt.resize(s + 1, 0);
            }
            per_stmt[s] += 1;
            if ev.is_predicate() {
                predicate_instances += 1;
            }
            data_edges += ev.data_deps.len();
            if ev.cd_parent.is_some() {
                control_edges += 1;
            }
            max_call_depth = max_call_depth.max(ev.call_depth);
        }
        // Scanning in id order makes strict `>` keep the lowest statement
        // id among equally hot ones (the documented tie-break).
        let mut hottest: Option<(StmtId, usize)> = None;
        for (s, &n) in per_stmt.iter().enumerate() {
            if n > 0 && hottest.is_none_or(|(_, best)| n > best) {
                hottest = Some((StmtId(s as u32), n));
            }
        }
        TraceStats {
            instances: trace.len(),
            unique_stmts: per_stmt.iter().filter(|&&n| n > 0).count(),
            predicate_instances,
            data_edges,
            control_edges,
            outputs: trace.outputs().len(),
            max_call_depth,
            hottest,
        }
    }
}

impl fmt::Display for TraceStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "instances        : {}", self.instances)?;
        writeln!(f, "unique statements: {}", self.unique_stmts)?;
        writeln!(f, "predicates       : {}", self.predicate_instances)?;
        writeln!(f, "data edges       : {}", self.data_edges)?;
        writeln!(f, "control edges    : {}", self.control_edges)?;
        writeln!(f, "outputs          : {}", self.outputs)?;
        writeln!(f, "max call depth   : {}", self.max_call_depth)?;
        match self.hottest {
            Some((s, n)) => writeln!(f, "hottest statement: {s} ({n} instances)"),
            None => writeln!(f, "hottest statement: -"),
        }
    }
}

/// Instrumentation counters for one verification engine run: how many
/// switched re-executions ran, how much work checkpoint resumption and
/// the caches avoided, and where the wall time went.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct VerificationStats {
    /// `VerifyDep` invocations that missed the verdict cache.
    pub verifications: usize,
    /// `VerifyDep` invocations answered from the verdict cache.
    pub cache_hits: usize,
    /// Switched executions performed (resumed + from-scratch); requests
    /// sharing a switch spec share one execution.
    pub reexecutions: usize,
    /// Switched executions that resumed from a checkpoint.
    pub resumed_runs: usize,
    /// Switched executions that ran from scratch (no checkpoint, a
    /// non-resumable one, or resumption disabled).
    pub scratch_runs: usize,
    /// Instrumented base re-runs performed to capture checkpoints.
    pub capture_runs: usize,
    /// Trace events *not* re-executed thanks to resumption (the summed
    /// prefix lengths of the resumed runs).
    pub steps_saved: usize,
    /// Switched executions that completed normally with the switch
    /// landed.
    pub completed_runs: usize,
    /// Switched executions cut off by the step budget even at the final
    /// escalation rung (the paper's expired timer).
    pub budget_exhausted_runs: usize,
    /// Switched executions that crashed (structured runtime error or an
    /// isolated panic).
    pub crashed_runs: usize,
    /// Switched executions that terminated normally without the switch
    /// ever landing.
    pub switch_not_landed_runs: usize,
    /// Switched executions that needed at least one budget escalation
    /// retry before settling.
    pub escalated_runs: usize,
    /// Total escalation retries across all switched executions.
    pub budget_retries: usize,
    /// Checkpoints rejected by validation (or whose resumption failed /
    /// panicked); each one fell back to from-scratch execution.
    pub invalid_checkpoints: usize,
    /// From-scratch executions forced by an invalid checkpoint.
    pub scratch_fallbacks: usize,
    /// Panics caught at the per-candidate isolation boundary.
    pub panics_isolated: usize,
    /// Candidates cancelled by an expired cooperative deadline before
    /// their switched run was dispatched (verdict: NotId, the paper's
    /// expired-timer rule applied at the batch level).
    pub deadline_cancelled: usize,
    /// `input()` calls that ran past the end of the input stream (and
    /// yielded 0) across all switched executions.
    pub input_underflows: usize,
    /// Switched runs answered from the persistent cross-iteration memo
    /// without executing anything.
    pub memo_hits: usize,
    /// Entries (runs or checkpoints) evicted from the persistent memo to
    /// stay inside its byte budget.
    pub memo_evictions: usize,
    /// High-water mark of bytes held by memoized checkpoints (a gauge,
    /// not a counter: `absorb` takes the max).
    pub checkpoint_bytes: usize,
    /// Checkpoint captures declined by the cost model's break-even (the
    /// gap to the best available donor was under the capture threshold).
    pub captures_skipped: usize,
    /// Checkpoints captured inline by spine runs on their way to the
    /// switch (the trie's replacement for dedicated capture runs).
    pub inline_captures: usize,
    /// Candidates cancelled by batch-level early exit after the batch's
    /// top-ranked use resolved StrongId (expired-timer rule: NotId
    /// without executing).
    pub early_exit_cancelled: usize,
    /// Wall time spent executing switched runs (and building their
    /// region trees).
    pub execution_wall: Duration,
    /// Wall time spent capturing checkpoints.
    pub capture_wall: Duration,
    /// Wall time spent aligning and judging verdicts.
    pub verdict_wall: Duration,
}

impl VerificationStats {
    /// Fraction of switched executions that resumed from a checkpoint,
    /// in `[0, 1]`; `0` when nothing ran.
    pub fn resume_ratio(&self) -> f64 {
        if self.reexecutions == 0 {
            0.0
        } else {
            self.resumed_runs as f64 / self.reexecutions as f64
        }
    }

    /// Folds another run's counters into this one (for aggregating over
    /// several faults or phases).
    pub fn absorb(&mut self, other: &VerificationStats) {
        self.verifications += other.verifications;
        self.cache_hits += other.cache_hits;
        self.reexecutions += other.reexecutions;
        self.resumed_runs += other.resumed_runs;
        self.scratch_runs += other.scratch_runs;
        self.capture_runs += other.capture_runs;
        self.steps_saved += other.steps_saved;
        self.completed_runs += other.completed_runs;
        self.budget_exhausted_runs += other.budget_exhausted_runs;
        self.crashed_runs += other.crashed_runs;
        self.switch_not_landed_runs += other.switch_not_landed_runs;
        self.escalated_runs += other.escalated_runs;
        self.budget_retries += other.budget_retries;
        self.invalid_checkpoints += other.invalid_checkpoints;
        self.scratch_fallbacks += other.scratch_fallbacks;
        self.panics_isolated += other.panics_isolated;
        self.deadline_cancelled += other.deadline_cancelled;
        self.input_underflows += other.input_underflows;
        self.memo_hits += other.memo_hits;
        self.memo_evictions += other.memo_evictions;
        self.checkpoint_bytes = self.checkpoint_bytes.max(other.checkpoint_bytes);
        self.captures_skipped += other.captures_skipped;
        self.inline_captures += other.inline_captures;
        self.early_exit_cancelled += other.early_exit_cancelled;
        self.execution_wall += other.execution_wall;
        self.capture_wall += other.capture_wall;
        self.verdict_wall += other.verdict_wall;
    }
}

impl fmt::Display for VerificationStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "verifications    : {}", self.verifications)?;
        writeln!(f, "verdict cache hit: {}", self.cache_hits)?;
        writeln!(
            f,
            "re-executions    : {} ({} resumed, {} from scratch)",
            self.reexecutions, self.resumed_runs, self.scratch_runs
        )?;
        writeln!(
            f,
            "capture runs     : {} ({} inline, {} skipped)",
            self.capture_runs, self.inline_captures, self.captures_skipped
        )?;
        writeln!(f, "steps saved      : {}", self.steps_saved)?;
        writeln!(
            f,
            "memo             : {} hits, {} evictions, {} checkpoint bytes",
            self.memo_hits, self.memo_evictions, self.checkpoint_bytes
        )?;
        writeln!(
            f,
            "run outcomes     : {} completed, {} budget-exhausted, {} crashed, {} switch-not-landed",
            self.completed_runs,
            self.budget_exhausted_runs,
            self.crashed_runs,
            self.switch_not_landed_runs
        )?;
        writeln!(
            f,
            "escalations      : {} runs escalated ({} retries)",
            self.escalated_runs, self.budget_retries
        )?;
        writeln!(
            f,
            "fault isolation  : {} invalid checkpoints, {} scratch fallbacks, {} panics isolated",
            self.invalid_checkpoints, self.scratch_fallbacks, self.panics_isolated
        )?;
        writeln!(
            f,
            "deadline cancels : {} (+ {} early-exit)",
            self.deadline_cancelled, self.early_exit_cancelled
        )?;
        writeln!(f, "input underflows : {}", self.input_underflows)?;
        writeln!(
            f,
            "wall: execute {:?}, capture {:?}, verdicts {:?}",
            self.execution_wall, self.capture_wall, self.verdict_wall
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::{Event, InstId, OutputRecord};
    use crate::trace::Termination;
    use crate::value::Value;

    fn sample() -> Trace {
        let mut guard = Event::new(StmtId(0));
        guard.branch = Some(true);
        let mut a = Event::new(StmtId(1));
        a.cd_parent = Some(InstId(0));
        a.data_deps = vec![InstId(0)];
        a.value = Some(Value::Int(1));
        let mut b = Event::new(StmtId(1));
        b.cd_parent = Some(InstId(0));
        b.data_deps = vec![InstId(0), InstId(1)];
        b.call_depth = 2;
        Trace::from_parts(
            vec![guard, a, b],
            vec![OutputRecord {
                inst: InstId(1),
                value: Value::Int(1),
            }],
            Termination::Normal,
        )
    }

    #[test]
    fn counts_are_accurate() {
        let stats = TraceStats::compute(&sample());
        assert_eq!(stats.instances, 3);
        assert_eq!(stats.unique_stmts, 2);
        assert_eq!(stats.predicate_instances, 1);
        assert_eq!(stats.data_edges, 3);
        assert_eq!(stats.control_edges, 2);
        assert_eq!(stats.outputs, 1);
        assert_eq!(stats.max_call_depth, 2);
        assert_eq!(stats.hottest, Some((StmtId(1), 2)));
    }

    #[test]
    fn empty_trace_stats() {
        let stats = TraceStats::compute(&Trace::from_parts(vec![], vec![], Termination::Normal));
        assert_eq!(stats.instances, 0);
        assert_eq!(stats.hottest, None);
        assert!(stats.to_string().contains("hottest statement: -"));
    }

    #[test]
    fn display_lists_every_field() {
        let text = TraceStats::compute(&sample()).to_string();
        for needle in ["instances", "predicates", "data edges", "hottest"] {
            assert!(text.contains(needle), "{text}");
        }
    }

    #[test]
    fn verification_stats_aggregate_and_ratio() {
        let mut a = VerificationStats {
            verifications: 3,
            cache_hits: 1,
            reexecutions: 2,
            resumed_runs: 1,
            scratch_runs: 1,
            capture_runs: 1,
            steps_saved: 40,
            completed_runs: 1,
            budget_exhausted_runs: 1,
            crashed_runs: 2,
            switch_not_landed_runs: 3,
            escalated_runs: 1,
            budget_retries: 2,
            invalid_checkpoints: 1,
            scratch_fallbacks: 1,
            panics_isolated: 1,
            deadline_cancelled: 1,
            input_underflows: 5,
            memo_hits: 2,
            memo_evictions: 1,
            checkpoint_bytes: 4096,
            captures_skipped: 3,
            inline_captures: 2,
            early_exit_cancelled: 1,
            execution_wall: Duration::from_millis(2),
            capture_wall: Duration::from_millis(1),
            verdict_wall: Duration::from_millis(3),
        };
        assert_eq!(a.resume_ratio(), 0.5);
        let b = a.clone();
        a.absorb(&b);
        assert_eq!(a.verifications, 6);
        assert_eq!(a.reexecutions, 4);
        assert_eq!(a.steps_saved, 80);
        assert_eq!(a.completed_runs, 2);
        assert_eq!(a.budget_exhausted_runs, 2);
        assert_eq!(a.crashed_runs, 4);
        assert_eq!(a.switch_not_landed_runs, 6);
        assert_eq!(a.escalated_runs, 2);
        assert_eq!(a.budget_retries, 4);
        assert_eq!(a.invalid_checkpoints, 2);
        assert_eq!(a.scratch_fallbacks, 2);
        assert_eq!(a.panics_isolated, 2);
        assert_eq!(a.deadline_cancelled, 2);
        assert_eq!(a.input_underflows, 10);
        assert_eq!(a.memo_hits, 4);
        assert_eq!(a.memo_evictions, 2);
        assert_eq!(a.checkpoint_bytes, 4096, "gauge takes the max, not the sum");
        assert_eq!(a.captures_skipped, 6);
        assert_eq!(a.inline_captures, 4);
        assert_eq!(a.early_exit_cancelled, 2);
        assert_eq!(a.execution_wall, Duration::from_millis(4));
        let text = a.to_string();
        for needle in [
            "re-executions",
            "resumed",
            "steps saved",
            "capture runs",
            "run outcomes",
            "escalations",
            "fault isolation",
            "input underflows",
            "memo",
            "early-exit",
        ] {
            assert!(text.contains(needle), "{text}");
        }
        assert_eq!(VerificationStats::default().resume_ratio(), 0.0);
    }
}
