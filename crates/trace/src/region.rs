//! Region trees (Definition 3 of the paper).
//!
//! > *"A statement execution s and the statement executions that are
//! > control dependent on s form a region."*
//!
//! The tree is built from each event's `region_parent` pointer, which the
//! interpreter maintains as the innermost guarding predicate instance
//! (crossing call boundaries, and chaining `while` iterations so that a
//! whole loop execution forms one region headed by the first evaluation
//! of its predicate — exactly the decomposition the paper uses to align
//! `[6,7,8,11,12,6]` as a unit).
//!
//! Every statement instance heads a region: a leaf region for
//! non-predicates, a subtree for predicates.

use crate::columnar::NONE_U32;
use crate::event::InstId;
use crate::trace::Trace;
use std::fmt::Write as _;

/// The region tree of one trace.
///
/// Stored as flat columns plus a CSR child arena — no per-node heap
/// vectors. The verifier builds one of these per *switched run*, so for
/// a 200k-event trace the old `Vec<Vec<InstId>>` layout cost ~200k
/// small allocations (and as many frees on eviction) per verified
/// candidate; the CSR layout is seven flat allocations total.
#[derive(Debug, Clone)]
pub struct RegionTree {
    /// Region-nesting parent per instance; [`NO_PARENT`] at top level.
    parent: Vec<u32>,
    /// CSR offsets into `child_arena`; `len + 1` entries.
    child_off: Vec<u32>,
    /// Children of every instance, grouped by parent, execution order
    /// within each group.
    child_arena: Vec<InstId>,
    /// Position of each instance within its sibling list.
    child_index: Vec<u32>,
    roots: Vec<InstId>,
    /// Subtree size (self included) per instance: `in_region` in O(1).
    ///
    /// The interpreter maintains `region_parent` as a stack — a child's
    /// parent is always the innermost *open* region, parents strictly
    /// precede children, and a region never reopens once control leaves
    /// it — so every region's descendants form the contiguous instance
    /// interval `[head, head + size)`. Containment is an interval test,
    /// with no Euler tour to build.
    size: Vec<u32>,
}

/// Sentinel in `RegionTree::parent` for top-level instances.
const NO_PARENT: u32 = u32::MAX;

impl RegionTree {
    /// Builds the region tree of `trace` from its `region_parent`
    /// pointers.
    ///
    /// # Panics
    ///
    /// Panics if a parent pointer refers to a later instance (parents
    /// must precede children in execution order).
    pub fn build(trace: &Trace) -> Self {
        let n = trace.len();
        let mut parent = vec![NO_PARENT; n];
        let mut child_off = vec![0u32; n + 1];
        let mut child_index = vec![0u32; n];
        let mut roots = Vec::new();
        // Pass 1: parent pointers and per-parent child counts, straight
        // off the raw column (materializing an event view per instance
        // costs more than the whole rest of the build); prefix-shared
        // traces iterate the donor's slice then their own tail.
        trace.columns().for_each_region_parent(n, &mut |i, rp| {
            if rp == NONE_U32 {
                child_index[i] = roots.len() as u32;
                roots.push(InstId(i as u32));
            } else {
                assert!((rp as usize) < i, "region parent {rp} not before child {i}");
                parent[i] = rp;
                child_off[rp as usize + 1] += 1;
            }
        });
        for i in 1..=n {
            child_off[i] += child_off[i - 1];
        }
        // Pass 2: counting sort of children into the arena. Instances
        // are visited in execution order, so each parent's children land
        // in execution order within its CSR slice.
        let mut child_arena = vec![InstId(0); child_off[n] as usize];
        let mut cursor = child_off[..n].to_vec();
        for (i, &p) in parent.iter().enumerate() {
            if p != NO_PARENT {
                let c = &mut cursor[p as usize];
                child_index[i] = *c - child_off[p as usize];
                child_arena[*c as usize] = InstId(i as u32);
                *c += 1;
            }
        }
        // Pass 3: subtree sizes, one reverse sweep. Children have larger
        // instance ids than their parents, so by the time `i` is folded
        // into its parent, `size[i]` is already complete.
        let mut size = vec![1u32; n];
        for i in (0..n).rev() {
            let p = parent[i];
            if p != NO_PARENT {
                size[p as usize] += size[i];
            }
        }
        RegionTree {
            parent,
            child_off,
            child_arena,
            child_index,
            roots,
            size,
        }
    }

    /// Top-level instances (the virtual whole-execution region's
    /// children), in execution order.
    pub fn roots(&self) -> &[InstId] {
        &self.roots
    }

    /// The region-nesting parent of `inst`, or `None` at top level.
    pub fn parent(&self, inst: InstId) -> Option<InstId> {
        match self.parent[inst.index()] {
            NO_PARENT => None,
            p => Some(InstId(p)),
        }
    }

    /// The sub-regions of the region headed by `inst`, in execution order.
    pub fn children(&self, inst: InstId) -> &[InstId] {
        let i = inst.index();
        &self.child_arena[self.child_off[i] as usize..self.child_off[i + 1] as usize]
    }

    /// The first sub-region of `inst`'s region (`FirstSubRegion` in
    /// Algorithm 1), if any.
    pub fn first_child(&self, inst: InstId) -> Option<InstId> {
        self.children(inst).first().copied()
    }

    /// The next sibling region of `inst` (`SiblingRegion` in Algorithm 1),
    /// or `None` if `inst` is the last sub-region of its parent — the
    /// signal Algorithm 1 uses for the single-entry-multiple-exit case.
    pub fn next_sibling(&self, inst: InstId) -> Option<InstId> {
        let idx = self.child_index[inst.index()] as usize;
        let siblings = match self.parent(inst) {
            Some(p) => self.children(p),
            None => &self.roots,
        };
        siblings.get(idx + 1).copied()
    }

    /// Position of `inst` within its sibling list.
    pub fn child_index(&self, inst: InstId) -> usize {
        self.child_index[inst.index()] as usize
    }

    /// Whether `inst` lies inside the region headed by `head`
    /// (`InRegion` in Algorithm 1): true when `inst == head` or `head`
    /// is a nesting ancestor of `inst`. O(1): a region's descendants are
    /// the contiguous instance interval `[head, head + size)` (non-strict
    /// containment, unlike the strict CD-ancestor test).
    pub fn in_region(&self, head: InstId, inst: InstId) -> bool {
        let h = head.index();
        let i = inst.index();
        h <= i && i < h + self.size[h] as usize
    }

    /// The chain of nesting ancestors of `inst`, nearest first.
    pub fn ancestors(&self, inst: InstId) -> Vec<InstId> {
        let mut out = Vec::new();
        let mut cur = self.parent(inst);
        while let Some(p) = cur {
            out.push(p);
            cur = self.parent(p);
        }
        out
    }

    /// Nesting depth of `inst` (0 for top-level instances).
    pub fn depth(&self, inst: InstId) -> usize {
        self.ancestors(inst).len()
    }

    /// Renders the region headed by `inst` in the paper's bracket
    /// notation over statement ids, e.g. `[13,[14,[15],[16]],[17],[18]]`
    /// — leaf regions print as bare statement numbers.
    pub fn render(&self, trace: &Trace, inst: InstId) -> String {
        let mut out = String::new();
        self.render_into(trace, inst, &mut out);
        out
    }

    /// Renders the whole execution as a sibling list of top-level regions.
    pub fn render_all(&self, trace: &Trace) -> String {
        let parts: Vec<String> = self.roots.iter().map(|&r| self.render(trace, r)).collect();
        parts.join(", ")
    }

    fn render_into(&self, trace: &Trace, inst: InstId, out: &mut String) {
        let stmt = trace.event(inst).stmt.0;
        if self.children(inst).is_empty() {
            let _ = write!(out, "{stmt}");
        } else {
            let _ = write!(out, "[{stmt}");
            for &c in self.children(inst) {
                out.push(',');
                self.render_into(trace, c, out);
            }
            out.push(']');
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::Event;
    use crate::trace::Termination;
    use omislice_lang::StmtId;

    fn mk(stmt: u32, region_parent: Option<u32>) -> Event {
        let mut e = Event::new(StmtId(stmt));
        e.region_parent = region_parent.map(InstId);
        e
    }

    /// t0:S13 [ t1:S14 [ t2:S15, t3:S16 ], t4:S17, t5:S18 ]  — mirrors the
    /// paper's `[13,[14,15,16],17,18]` region of Figure 2.
    fn sample() -> (Trace, RegionTree) {
        let events = vec![
            mk(13, None),
            mk(14, Some(0)),
            mk(15, Some(1)),
            mk(16, Some(1)),
            mk(17, Some(0)),
            mk(18, Some(0)),
        ];
        let t = Trace::from_parts(events, vec![], Termination::Normal);
        let r = RegionTree::build(&t);
        (t, r)
    }

    #[test]
    fn structure_matches_parents() {
        let (_, r) = sample();
        assert_eq!(r.roots(), &[InstId(0)]);
        assert_eq!(r.children(InstId(0)), &[InstId(1), InstId(4), InstId(5)]);
        assert_eq!(r.children(InstId(1)), &[InstId(2), InstId(3)]);
        assert_eq!(r.parent(InstId(2)), Some(InstId(1)));
        assert_eq!(r.parent(InstId(0)), None);
    }

    #[test]
    fn navigation_ops() {
        let (_, r) = sample();
        assert_eq!(r.first_child(InstId(0)), Some(InstId(1)));
        assert_eq!(r.first_child(InstId(2)), None);
        assert_eq!(r.next_sibling(InstId(1)), Some(InstId(4)));
        assert_eq!(r.next_sibling(InstId(5)), None);
        assert_eq!(r.next_sibling(InstId(2)), Some(InstId(3)));
        assert_eq!(r.next_sibling(InstId(0)), None);
        assert_eq!(r.child_index(InstId(4)), 1);
    }

    #[test]
    fn in_region_semantics() {
        let (_, r) = sample();
        assert!(r.in_region(InstId(0), InstId(3)));
        assert!(r.in_region(InstId(1), InstId(2)));
        assert!(r.in_region(InstId(1), InstId(1)), "head is in its region");
        assert!(!r.in_region(InstId(1), InstId(4)));
        assert!(
            !r.in_region(InstId(2), InstId(1)),
            "child region excludes parent"
        );
    }

    /// The O(1) interval containment test must agree with the defining
    /// ancestor-chain walk on every pair — this is what licenses storing
    /// subtree sizes instead of Euler-tour timestamps.
    #[test]
    fn in_region_matches_ancestor_walk_on_every_pair() {
        // Two top-level regions and a call-shaped nesting chain.
        let events = vec![
            mk(1, None),
            mk(2, Some(0)),
            mk(3, Some(1)),
            mk(4, Some(2)),
            mk(5, Some(0)),
            mk(6, None),
            mk(7, Some(5)),
            mk(8, Some(5)),
        ];
        let n = events.len() as u32;
        let t = Trace::from_parts(events, vec![], Termination::Normal);
        let r = RegionTree::build(&t);
        for h in 0..n {
            for i in 0..n {
                let mut cur = Some(InstId(i));
                let mut walked = false;
                while let Some(x) = cur {
                    if x == InstId(h) {
                        walked = true;
                        break;
                    }
                    cur = r.parent(x);
                }
                assert_eq!(
                    r.in_region(InstId(h), InstId(i)),
                    walked,
                    "in_region({h}, {i}) disagrees with the ancestor walk"
                );
            }
        }
    }

    #[test]
    fn ancestors_and_depth() {
        let (_, r) = sample();
        assert_eq!(r.ancestors(InstId(2)), vec![InstId(1), InstId(0)]);
        assert_eq!(r.depth(InstId(2)), 2);
        assert_eq!(r.depth(InstId(0)), 0);
    }

    #[test]
    fn render_matches_paper_notation() {
        let (t, r) = sample();
        assert_eq!(r.render(&t, InstId(0)), "[13,[14,15,16],17,18]");
        assert_eq!(r.render_all(&t), "[13,[14,15,16],17,18]");
    }

    #[test]
    fn multiple_roots_are_siblings() {
        let events = vec![mk(1, None), mk(2, None), mk(3, Some(1))];
        let t = Trace::from_parts(events, vec![], Termination::Normal);
        let r = RegionTree::build(&t);
        assert_eq!(r.roots(), &[InstId(0), InstId(1)]);
        assert_eq!(r.next_sibling(InstId(0)), Some(InstId(1)));
        assert_eq!(r.render_all(&t), "1, [2,3]");
        // Separate trees have disjoint timestamp intervals.
        assert!(!r.in_region(InstId(0), InstId(1)));
        assert!(!r.in_region(InstId(0), InstId(2)));
        assert!(r.in_region(InstId(1), InstId(2)));
    }

    #[test]
    #[should_panic(expected = "region parent")]
    fn forward_parent_pointer_panics() {
        let mut e1 = Event::new(StmtId(0));
        e1.region_parent = Some(InstId(1));
        let e2 = Event::new(StmtId(1));
        let t = Trace::from_parts(vec![e1, e2], vec![], Termination::Normal);
        let _ = RegionTree::build(&t);
    }
}
