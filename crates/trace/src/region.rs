//! Region trees (Definition 3 of the paper).
//!
//! > *"A statement execution s and the statement executions that are
//! > control dependent on s form a region."*
//!
//! The tree is built from each event's `region_parent` pointer, which the
//! interpreter maintains as the innermost guarding predicate instance
//! (crossing call boundaries, and chaining `while` iterations so that a
//! whole loop execution forms one region headed by the first evaluation
//! of its predicate — exactly the decomposition the paper uses to align
//! `[6,7,8,11,12,6]` as a unit).
//!
//! Every statement instance heads a region: a leaf region for
//! non-predicates, a subtree for predicates.

use crate::event::InstId;
use crate::trace::Trace;
use std::fmt::Write as _;

/// The region tree of one trace.
#[derive(Debug, Clone)]
pub struct RegionTree {
    parent: Vec<Option<InstId>>,
    children: Vec<Vec<InstId>>,
    /// Position of each instance within its sibling list.
    child_index: Vec<u32>,
    roots: Vec<InstId>,
    /// Euler-tour entry timestamps: `in_region` in O(1).
    tin: Vec<u32>,
    /// Euler-tour exit timestamps.
    tout: Vec<u32>,
}

impl RegionTree {
    /// Builds the region tree of `trace` from its `region_parent`
    /// pointers.
    ///
    /// # Panics
    ///
    /// Panics if a parent pointer refers to a later instance (parents
    /// must precede children in execution order).
    pub fn build(trace: &Trace) -> Self {
        let n = trace.len();
        let mut parent = vec![None; n];
        let mut children: Vec<Vec<InstId>> = vec![Vec::new(); n];
        let mut child_index = vec![0u32; n];
        let mut roots = Vec::new();
        for inst in trace.insts() {
            let p = trace.event(inst).region_parent;
            parent[inst.index()] = p;
            match p {
                Some(p) => {
                    assert!(p < inst, "region parent {p} not before child {inst}");
                    child_index[inst.index()] = children[p.index()].len() as u32;
                    children[p.index()].push(inst);
                }
                None => {
                    child_index[inst.index()] = roots.len() as u32;
                    roots.push(inst);
                }
            }
        }
        // Euler tour over the forest: one global clock gives disjoint
        // timestamp intervals to separate top-level regions, making
        // `in_region` a single interval-containment test.
        let mut tin = vec![0u32; n];
        let mut tout = vec![0u32; n];
        let mut clock = 0u32;
        let mut stack: Vec<(InstId, usize)> = Vec::new();
        for &r in &roots {
            tin[r.index()] = clock;
            clock += 1;
            stack.push((r, 0));
            while let Some(top) = stack.last_mut() {
                let node = top.0;
                if let Some(&c) = children[node.index()].get(top.1) {
                    top.1 += 1;
                    tin[c.index()] = clock;
                    clock += 1;
                    stack.push((c, 0));
                } else {
                    tout[node.index()] = clock;
                    clock += 1;
                    stack.pop();
                }
            }
        }
        RegionTree {
            parent,
            children,
            child_index,
            roots,
            tin,
            tout,
        }
    }

    /// Top-level instances (the virtual whole-execution region's
    /// children), in execution order.
    pub fn roots(&self) -> &[InstId] {
        &self.roots
    }

    /// The region-nesting parent of `inst`, or `None` at top level.
    pub fn parent(&self, inst: InstId) -> Option<InstId> {
        self.parent[inst.index()]
    }

    /// The sub-regions of the region headed by `inst`, in execution order.
    pub fn children(&self, inst: InstId) -> &[InstId] {
        &self.children[inst.index()]
    }

    /// The first sub-region of `inst`'s region (`FirstSubRegion` in
    /// Algorithm 1), if any.
    pub fn first_child(&self, inst: InstId) -> Option<InstId> {
        self.children(inst).first().copied()
    }

    /// The next sibling region of `inst` (`SiblingRegion` in Algorithm 1),
    /// or `None` if `inst` is the last sub-region of its parent — the
    /// signal Algorithm 1 uses for the single-entry-multiple-exit case.
    pub fn next_sibling(&self, inst: InstId) -> Option<InstId> {
        let idx = self.child_index[inst.index()] as usize;
        let siblings = match self.parent(inst) {
            Some(p) => self.children(p),
            None => &self.roots,
        };
        siblings.get(idx + 1).copied()
    }

    /// Position of `inst` within its sibling list.
    pub fn child_index(&self, inst: InstId) -> usize {
        self.child_index[inst.index()] as usize
    }

    /// Whether `inst` lies inside the region headed by `head`
    /// (`InRegion` in Algorithm 1): true when `inst == head` or `head`
    /// is a nesting ancestor of `inst`. O(1) via Euler-tour timestamps
    /// (non-strict containment, unlike the strict CD-ancestor test).
    pub fn in_region(&self, head: InstId, inst: InstId) -> bool {
        self.tin[head.index()] <= self.tin[inst.index()]
            && self.tout[inst.index()] <= self.tout[head.index()]
    }

    /// The chain of nesting ancestors of `inst`, nearest first.
    pub fn ancestors(&self, inst: InstId) -> Vec<InstId> {
        let mut out = Vec::new();
        let mut cur = self.parent(inst);
        while let Some(p) = cur {
            out.push(p);
            cur = self.parent(p);
        }
        out
    }

    /// Nesting depth of `inst` (0 for top-level instances).
    pub fn depth(&self, inst: InstId) -> usize {
        self.ancestors(inst).len()
    }

    /// Renders the region headed by `inst` in the paper's bracket
    /// notation over statement ids, e.g. `[13,[14,[15],[16]],[17],[18]]`
    /// — leaf regions print as bare statement numbers.
    pub fn render(&self, trace: &Trace, inst: InstId) -> String {
        let mut out = String::new();
        self.render_into(trace, inst, &mut out);
        out
    }

    /// Renders the whole execution as a sibling list of top-level regions.
    pub fn render_all(&self, trace: &Trace) -> String {
        let parts: Vec<String> = self.roots.iter().map(|&r| self.render(trace, r)).collect();
        parts.join(", ")
    }

    fn render_into(&self, trace: &Trace, inst: InstId, out: &mut String) {
        let stmt = trace.event(inst).stmt.0;
        if self.children(inst).is_empty() {
            let _ = write!(out, "{stmt}");
        } else {
            let _ = write!(out, "[{stmt}");
            for &c in self.children(inst) {
                out.push(',');
                self.render_into(trace, c, out);
            }
            out.push(']');
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::Event;
    use crate::trace::Termination;
    use omislice_lang::StmtId;

    fn mk(stmt: u32, region_parent: Option<u32>) -> Event {
        let mut e = Event::new(StmtId(stmt));
        e.region_parent = region_parent.map(InstId);
        e
    }

    /// t0:S13 [ t1:S14 [ t2:S15, t3:S16 ], t4:S17, t5:S18 ]  — mirrors the
    /// paper's `[13,[14,15,16],17,18]` region of Figure 2.
    fn sample() -> (Trace, RegionTree) {
        let events = vec![
            mk(13, None),
            mk(14, Some(0)),
            mk(15, Some(1)),
            mk(16, Some(1)),
            mk(17, Some(0)),
            mk(18, Some(0)),
        ];
        let t = Trace::from_parts(events, vec![], Termination::Normal);
        let r = RegionTree::build(&t);
        (t, r)
    }

    #[test]
    fn structure_matches_parents() {
        let (_, r) = sample();
        assert_eq!(r.roots(), &[InstId(0)]);
        assert_eq!(r.children(InstId(0)), &[InstId(1), InstId(4), InstId(5)]);
        assert_eq!(r.children(InstId(1)), &[InstId(2), InstId(3)]);
        assert_eq!(r.parent(InstId(2)), Some(InstId(1)));
        assert_eq!(r.parent(InstId(0)), None);
    }

    #[test]
    fn navigation_ops() {
        let (_, r) = sample();
        assert_eq!(r.first_child(InstId(0)), Some(InstId(1)));
        assert_eq!(r.first_child(InstId(2)), None);
        assert_eq!(r.next_sibling(InstId(1)), Some(InstId(4)));
        assert_eq!(r.next_sibling(InstId(5)), None);
        assert_eq!(r.next_sibling(InstId(2)), Some(InstId(3)));
        assert_eq!(r.next_sibling(InstId(0)), None);
        assert_eq!(r.child_index(InstId(4)), 1);
    }

    #[test]
    fn in_region_semantics() {
        let (_, r) = sample();
        assert!(r.in_region(InstId(0), InstId(3)));
        assert!(r.in_region(InstId(1), InstId(2)));
        assert!(r.in_region(InstId(1), InstId(1)), "head is in its region");
        assert!(!r.in_region(InstId(1), InstId(4)));
        assert!(
            !r.in_region(InstId(2), InstId(1)),
            "child region excludes parent"
        );
    }

    #[test]
    fn ancestors_and_depth() {
        let (_, r) = sample();
        assert_eq!(r.ancestors(InstId(2)), vec![InstId(1), InstId(0)]);
        assert_eq!(r.depth(InstId(2)), 2);
        assert_eq!(r.depth(InstId(0)), 0);
    }

    #[test]
    fn render_matches_paper_notation() {
        let (t, r) = sample();
        assert_eq!(r.render(&t, InstId(0)), "[13,[14,15,16],17,18]");
        assert_eq!(r.render_all(&t), "[13,[14,15,16],17,18]");
    }

    #[test]
    fn multiple_roots_are_siblings() {
        let events = vec![mk(1, None), mk(2, None), mk(3, Some(1))];
        let t = Trace::from_parts(events, vec![], Termination::Normal);
        let r = RegionTree::build(&t);
        assert_eq!(r.roots(), &[InstId(0), InstId(1)]);
        assert_eq!(r.next_sibling(InstId(0)), Some(InstId(1)));
        assert_eq!(r.render_all(&t), "1, [2,3]");
        // Separate trees have disjoint timestamp intervals.
        assert!(!r.in_region(InstId(0), InstId(1)));
        assert!(!r.in_region(InstId(0), InstId(2)));
        assert!(r.in_region(InstId(1), InstId(2)));
    }

    #[test]
    #[should_panic(expected = "region parent")]
    fn forward_parent_pointer_panics() {
        let mut e1 = Event::new(StmtId(0));
        e1.region_parent = Some(InstId(1));
        let e2 = Event::new(StmtId(1));
        let t = Trace::from_parts(vec![e1, e2], vec![], Termination::Normal);
        let _ = RegionTree::build(&t);
    }
}
