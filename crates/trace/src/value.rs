//! Runtime values of the mini-language.

use std::fmt;

/// A runtime value: the mini-language has 64-bit integers and booleans
/// (arrays are storage, not first-class values).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Value {
    /// A signed 64-bit integer.
    Int(i64),
    /// A boolean.
    Bool(bool),
}

impl Value {
    /// The integer payload, if this is an `Int`.
    pub fn as_int(self) -> Option<i64> {
        match self {
            Value::Int(n) => Some(n),
            Value::Bool(_) => None,
        }
    }

    /// The boolean payload, if this is a `Bool`.
    pub fn as_bool(self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(b),
            Value::Int(_) => None,
        }
    }

    /// Whether the value is "truthy" in a predicate position: booleans
    /// are themselves; integers are true iff non-zero (C-style), which
    /// keeps corpus programs terse.
    pub fn truthy(self) -> bool {
        match self {
            Value::Bool(b) => b,
            Value::Int(n) => n != 0,
        }
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Int(n) => write!(f, "{n}"),
            Value::Bool(b) => write!(f, "{b}"),
        }
    }
}

impl From<i64> for Value {
    fn from(n: i64) -> Self {
        Value::Int(n)
    }
}

impl From<bool> for Value {
    fn from(b: bool) -> Self {
        Value::Bool(b)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accessors() {
        assert_eq!(Value::Int(3).as_int(), Some(3));
        assert_eq!(Value::Int(3).as_bool(), None);
        assert_eq!(Value::Bool(true).as_bool(), Some(true));
        assert_eq!(Value::Bool(true).as_int(), None);
    }

    #[test]
    fn truthiness() {
        assert!(Value::Bool(true).truthy());
        assert!(!Value::Bool(false).truthy());
        assert!(Value::Int(1).truthy());
        assert!(Value::Int(-5).truthy());
        assert!(!Value::Int(0).truthy());
    }

    #[test]
    fn display_and_from() {
        assert_eq!(Value::from(7).to_string(), "7");
        assert_eq!(Value::from(true).to_string(), "true");
    }
}
