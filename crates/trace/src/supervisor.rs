//! Supervised pipeline runtime: deterministic chaos injection, recovery
//! accounting, cooperative deadlines, and the unified [`PipelineError`]
//! taxonomy.
//!
//! PR 2 gave the *interpreter* a fault-injection harness (`FaultPlan`);
//! this module extends the idea to every non-interpreter stage of the
//! pipeline. A [`ChaosPlan`] names a *site* (recorder builder thread,
//! SPSC channel, bounded queue, trace encode/decode, save I/O, mmap,
//! deadline clock), an occurrence index, and an *action*; the hooks at
//! each site consult the plan through [`chaos_hit`] and fire the fault
//! deterministically. Every injected fault is paired with a recovery
//! ladder (pipelined recorder → inline recorder, mmap → `fs::read`,
//! torn save → retry, corrupt load → retry → re-trace) whose steps are
//! counted in a [`RecoveryLog`] and surfaced as `recovery.*` counters.
//!
//! # Determinism
//!
//! Chaos state is **thread-local** and installed only around
//! pipeline-level supervised operations (the initial trace, save, load)
//! on the calling thread. The verifier's switched re-executions never
//! see an active plan, so verdicts, counters, and journals stay
//! byte-identical across `--jobs` and resume modes even while chaos is
//! firing upstream. Each plan entry fires exactly once; retries after a
//! recovery therefore run clean.
//!
//! # Zero-cost happy path
//!
//! With no plan installed, every hook is one thread-local read of a
//! `bool`-like option; deadline checks only happen at chunk/candidate
//! boundaries. Nothing on the per-event hot path changes.

use crate::format::TraceFileError;
use crate::outcome::RunOutcome;
use crate::recorder::RecorderError;
use std::cell::RefCell;
use std::fmt;
use std::sync::atomic::{AtomicBool, AtomicU32, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

// ---------------------------------------------------------------------
// Chaos plans
// ---------------------------------------------------------------------

/// A pipeline stage where a fault can be injected.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ChaosSite {
    /// The recorder's builder thread (action: `panic`).
    Builder,
    /// The SPSC chunk channel (action: `disconnect`).
    Channel,
    /// The bounded chunk queue (action: `stall`).
    Queue,
    /// Trace encoding, before bytes hit the disk (action: `corrupt`).
    Encode,
    /// Trace decoding, after bytes leave the disk (action: `corrupt`).
    Decode,
    /// The save path (actions: `short-write`, `enospc`).
    Save,
    /// The mmap-backed load path (action: `fail`).
    Mmap,
    /// The cooperative deadline clock (action: `expire`).
    Deadline,
    /// A serve request handler, after parsing but before the pipeline
    /// runs (action: `panic`) — exercises the server's fault isolation.
    Handler,
}

const SITES: [(ChaosSite, &str); 9] = [
    (ChaosSite::Builder, "builder"),
    (ChaosSite::Channel, "channel"),
    (ChaosSite::Queue, "queue"),
    (ChaosSite::Encode, "encode"),
    (ChaosSite::Decode, "decode"),
    (ChaosSite::Save, "save"),
    (ChaosSite::Mmap, "mmap"),
    (ChaosSite::Deadline, "deadline"),
    (ChaosSite::Handler, "handler"),
];

impl ChaosSite {
    pub fn as_str(self) -> &'static str {
        SITES.iter().find(|(s, _)| *s == self).expect("listed").1
    }

    fn index(self) -> usize {
        SITES.iter().position(|(s, _)| *s == self).expect("listed")
    }
}

/// What happens when a chaos entry fires.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ChaosAction {
    /// Panic the builder thread.
    Panic,
    /// Drop the builder's receiver mid-stream.
    Disconnect,
    /// Force the producer onto the blocking (queue-full) send path.
    Stall,
    /// Flip a byte in the encoded/decoded image.
    Corrupt,
    /// Persist only a prefix of the encoded trace.
    ShortWrite,
    /// Fail the write with a simulated out-of-space error.
    Enospc,
    /// Make the mmap attempt fail.
    Fail,
    /// Expire the deadline at this counted check.
    Expire,
}

const ACTIONS: [(ChaosAction, &str); 8] = [
    (ChaosAction::Panic, "panic"),
    (ChaosAction::Disconnect, "disconnect"),
    (ChaosAction::Stall, "stall"),
    (ChaosAction::Corrupt, "corrupt"),
    (ChaosAction::ShortWrite, "short-write"),
    (ChaosAction::Enospc, "enospc"),
    (ChaosAction::Fail, "fail"),
    (ChaosAction::Expire, "expire"),
];

impl ChaosAction {
    pub fn as_str(self) -> &'static str {
        ACTIONS.iter().find(|(a, _)| *a == self).expect("listed").1
    }
}

/// Which actions make sense at which site.
fn compatible(site: ChaosSite, action: ChaosAction) -> bool {
    use ChaosAction::*;
    use ChaosSite::*;
    matches!(
        (site, action),
        (Builder, Panic)
            | (Channel, Disconnect)
            | (Queue, Stall)
            | (Encode, Corrupt)
            | (Decode, Corrupt)
            | (Save, ShortWrite)
            | (Save, Enospc)
            | (Mmap, Fail)
            | (Deadline, Expire)
            | (Handler, Panic)
    )
}

/// One `<site>[:occ]=<action>` injection directive.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ChaosEntry {
    pub site: ChaosSite,
    /// Zero-based occurrence of the site at which to fire. For recorder
    /// sites occurrences count chunk rotations; elsewhere they count
    /// operations (saves, loads, deadline checks).
    pub occurrence: u32,
    pub action: ChaosAction,
}

/// A deterministic pipeline-wide fault plan: the `--chaos` flag.
///
/// Parsed from a comma-separated list of `<site>[:occ]=<action>`
/// directives, mirroring the interpreter-level
/// `FaultPlan` syntax (`S<id>[:occ]=<action>`).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ChaosPlan {
    pub entries: Vec<ChaosEntry>,
}

impl ChaosPlan {
    /// Parses `--chaos builder=panic,save:1=enospc` style specs.
    pub fn parse(text: &str) -> Result<ChaosPlan, String> {
        let mut entries = Vec::new();
        for part in text.split(',') {
            let part = part.trim();
            if part.is_empty() {
                continue;
            }
            let (lhs, action_text) = part.split_once('=').ok_or_else(|| {
                format!("bad chaos entry `{part}` (expected <site>[:occ]=<action>)")
            })?;
            let (site_text, occ) = match lhs.split_once(':') {
                Some((s, o)) => (
                    s,
                    o.parse::<u32>()
                        .map_err(|_| format!("bad occurrence in chaos entry `{part}`"))?,
                ),
                None => (lhs, 0),
            };
            let site = SITES
                .iter()
                .find(|(_, n)| *n == site_text.trim())
                .map(|(s, _)| *s)
                .ok_or_else(|| {
                    format!(
                        "unknown chaos site `{}` (expected one of: {})",
                        site_text.trim(),
                        SITES.map(|(_, n)| n).join(", ")
                    )
                })?;
            let action = ACTIONS
                .iter()
                .find(|(_, n)| *n == action_text.trim())
                .map(|(a, _)| *a)
                .ok_or_else(|| {
                    format!(
                        "unknown chaos action `{}` (expected one of: {})",
                        action_text.trim(),
                        ACTIONS.map(|(_, n)| n).join(", ")
                    )
                })?;
            if !compatible(site, action) {
                return Err(format!(
                    "chaos action `{}` does not apply to site `{}`",
                    action.as_str(),
                    site.as_str()
                ));
            }
            entries.push(ChaosEntry {
                site,
                occurrence: occ,
                action,
            });
        }
        if entries.is_empty() {
            return Err("empty chaos plan".to_string());
        }
        Ok(ChaosPlan { entries })
    }

    /// The forced-expiry check index, when the plan injects a deadline
    /// expiry.
    pub fn forced_deadline(&self) -> Option<u32> {
        self.entries
            .iter()
            .find(|e| e.site == ChaosSite::Deadline)
            .map(|e| e.occurrence)
    }
}

impl fmt::Display for ChaosPlan {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (i, e) in self.entries.iter().enumerate() {
            if i > 0 {
                write!(f, ",")?;
            }
            if e.occurrence == 0 {
                write!(f, "{}={}", e.site.as_str(), e.action.as_str())?;
            } else {
                write!(
                    f,
                    "{}:{}={}",
                    e.site.as_str(),
                    e.occurrence,
                    e.action.as_str()
                )?;
            }
        }
        Ok(())
    }
}

struct ActiveChaos {
    /// Plan entries, each paired with a fired flag: every entry injects
    /// exactly once so that post-recovery retries run clean.
    entries: Vec<(ChaosEntry, bool)>,
    /// Per-site occurrence counters.
    counts: [u32; SITES.len()],
}

thread_local! {
    static ACTIVE: RefCell<Option<ActiveChaos>> = const { RefCell::new(None) };
    static SCOPED_DEADLINE: RefCell<Option<Deadline>> = const { RefCell::new(None) };
}

/// Consults the active chaos plan at an injection site. Counts the
/// occurrence and returns the action to perform when an un-fired entry
/// matches. One thread-local read when no plan is installed.
pub fn chaos_hit(site: ChaosSite) -> Option<ChaosAction> {
    ACTIVE.with(|a| {
        let mut a = a.borrow_mut();
        let active = a.as_mut()?;
        let occ = active.counts[site.index()];
        active.counts[site.index()] = occ.saturating_add(1);
        for (entry, fired) in &mut active.entries {
            if !*fired && entry.site == site && entry.occurrence == occ {
                *fired = true;
                return Some(entry.action);
            }
        }
        None
    })
}

/// Installs a chaos plan (and optionally a deadline visible to the
/// recorder's chunk boundaries) on the current thread for the guard's
/// lifetime. The previous state is restored on drop, so scopes nest.
pub struct ChaosScope {
    prev: Option<ActiveChaos>,
    prev_deadline: Option<Deadline>,
}

impl ChaosScope {
    pub fn install(plan: Option<&ChaosPlan>, deadline: Option<&Deadline>) -> ChaosScope {
        let next = plan.map(|p| ActiveChaos {
            entries: p.entries.iter().map(|&e| (e, false)).collect(),
            counts: [0; SITES.len()],
        });
        let prev = ACTIVE.with(|a| a.replace(next));
        let prev_deadline = SCOPED_DEADLINE.with(|d| d.replace(deadline.cloned()));
        ChaosScope {
            prev,
            prev_deadline,
        }
    }
}

impl Drop for ChaosScope {
    fn drop(&mut self) {
        ACTIVE.with(|a| {
            *a.borrow_mut() = self.prev.take();
        });
        SCOPED_DEADLINE.with(|d| {
            *d.borrow_mut() = self.prev_deadline.take();
        });
    }
}

/// Counted deadline check for the recorder's chunk boundaries: true when
/// a deadline is in scope on this thread and has expired.
pub fn scoped_deadline_check() -> bool {
    SCOPED_DEADLINE.with(|d| match d.borrow().as_ref() {
        Some(deadline) => deadline.check(),
        None => false,
    })
}

// ---------------------------------------------------------------------
// Recovery accounting
// ---------------------------------------------------------------------

/// One rung of a degradation ladder that actually ran.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RecoveryKind {
    /// Pipelined recorder failed; the run was re-traced inline.
    InlineFallback,
    /// The chunk queue filled (or a stall was injected) and the producer
    /// blocked.
    QueueStall,
    /// A torn or failed save was retried.
    SaveRetry,
    /// A corrupt load was retried.
    LoadRetry,
    /// mmap failed (or was failed); the load fell back to `fs::read`.
    MmapFallback,
    /// A trace file could not be loaded at all; the pipeline re-traced
    /// from source.
    RetraceFallback,
    /// A cooperative deadline expired.
    DeadlineExpired,
}

const RECOVERY_KINDS: [(RecoveryKind, &str); 7] = [
    (RecoveryKind::InlineFallback, "recovery.inline_fallbacks"),
    (RecoveryKind::QueueStall, "recovery.queue_stalls"),
    (RecoveryKind::SaveRetry, "recovery.save_retries"),
    (RecoveryKind::LoadRetry, "recovery.load_retries"),
    (RecoveryKind::MmapFallback, "recovery.mmap_fallbacks"),
    (RecoveryKind::RetraceFallback, "recovery.retrace_fallbacks"),
    (
        RecoveryKind::DeadlineExpired,
        "recovery.deadline_expirations",
    ),
];

impl RecoveryKind {
    /// The `recovery.*` counter this rung increments.
    pub fn counter_name(self) -> &'static str {
        RECOVERY_KINDS
            .iter()
            .find(|(k, _)| *k == self)
            .expect("listed")
            .1
    }

    fn index(self) -> usize {
        RECOVERY_KINDS
            .iter()
            .position(|(k, _)| *k == self)
            .expect("listed")
    }
}

/// Ordered record of every recovery rung the pipeline climbed.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct RecoveryLog {
    counts: [u64; RECOVERY_KINDS.len()],
    events: Vec<&'static str>,
}

impl RecoveryLog {
    pub fn note(&mut self, kind: RecoveryKind) {
        self.counts[kind.index()] += 1;
        self.events.push(kind.counter_name());
    }

    pub fn is_empty(&self) -> bool {
        self.counts.iter().all(|&c| c == 0)
    }

    /// Total recovery events of every kind.
    pub fn total(&self) -> u64 {
        self.counts.iter().sum()
    }

    pub fn count(&self, kind: RecoveryKind) -> u64 {
        self.counts[kind.index()]
    }

    /// The non-zero `recovery.*` counters, in declaration order.
    pub fn counters(&self) -> Vec<(&'static str, u64)> {
        RECOVERY_KINDS
            .iter()
            .map(|&(k, name)| (name, self.counts[k.index()]))
            .filter(|&(_, c)| c > 0)
            .collect()
    }

    /// The recovery events in the order they happened.
    pub fn events(&self) -> &[&'static str] {
        &self.events
    }

    pub fn absorb(&mut self, other: &RecoveryLog) {
        for (i, c) in other.counts.iter().enumerate() {
            self.counts[i] += c;
        }
        self.events.extend_from_slice(&other.events);
    }
}

thread_local! {
    static RECOVERY: RefCell<RecoveryLog> = RefCell::new(RecoveryLog::default());
}

/// Records one recovery rung on the current thread's log and mirrors it
/// to the observability counter set when the span recorder is on.
pub fn note_recovery(kind: RecoveryKind) {
    RECOVERY.with(|r| r.borrow_mut().note(kind));
    if omislice_obs::enabled() {
        omislice_obs::counter_add(kind.counter_name(), 1);
    }
}

/// Drains the current thread's recovery log.
pub fn take_recovery() -> RecoveryLog {
    RECOVERY.with(|r| std::mem::take(&mut *r.borrow_mut()))
}

// ---------------------------------------------------------------------
// Deadlines
// ---------------------------------------------------------------------

/// A cooperative wall-clock deadline with counted checks.
///
/// Checks happen only at serial pipeline boundaries (locate iteration
/// top, verification batch entry, per-candidate dispatch, recorder chunk
/// rotation), so cancellation never races the parallel workers: a
/// candidate is either dispatched or cancelled before any thread runs.
/// Expiry is sticky. `deadline[:K]=expire` chaos pins expiry to the
/// K-th counted check, making deadline behaviour fully deterministic in
/// tests; real wall-clock expiry is inherently best-effort.
#[derive(Debug, Clone)]
pub struct Deadline {
    start: Instant,
    limit: Option<Duration>,
    force_expire_at: Option<u32>,
    checks: Arc<AtomicU32>,
    expired: Arc<AtomicBool>,
}

impl Deadline {
    /// A deadline `ms` milliseconds from now.
    pub fn after_ms(ms: u64) -> Deadline {
        Deadline {
            start: Instant::now(),
            limit: Some(Duration::from_millis(ms)),
            force_expire_at: None,
            checks: Arc::new(AtomicU32::new(0)),
            expired: Arc::new(AtomicBool::new(false)),
        }
    }

    /// A deadline that never expires on its own (chaos can still force
    /// it).
    pub fn unlimited() -> Deadline {
        Deadline {
            start: Instant::now(),
            limit: None,
            force_expire_at: None,
            checks: Arc::new(AtomicU32::new(0)),
            expired: Arc::new(AtomicBool::new(false)),
        }
    }

    /// Forces expiry at the `at`-th counted check (zero-based).
    pub fn with_force_expire(mut self, at: u32) -> Deadline {
        self.force_expire_at = Some(at);
        self
    }

    /// One counted check: returns true once the deadline has expired.
    /// The first expiring check notes a
    /// [`RecoveryKind::DeadlineExpired`] event.
    pub fn check(&self) -> bool {
        if self.expired.load(Ordering::Relaxed) {
            return true;
        }
        let n = self.checks.fetch_add(1, Ordering::Relaxed);
        let hit = match self.force_expire_at {
            Some(k) => n >= k,
            None => false,
        } || match self.limit {
            Some(limit) => self.start.elapsed() >= limit,
            None => false,
        };
        if hit && !self.expired.swap(true, Ordering::Relaxed) {
            note_recovery(RecoveryKind::DeadlineExpired);
        }
        hit
    }

    /// Whether a previous check already expired (does not count a
    /// check).
    pub fn expired(&self) -> bool {
        self.expired.load(Ordering::Relaxed)
    }
}

// ---------------------------------------------------------------------
// The unified error taxonomy
// ---------------------------------------------------------------------

/// Everything that can go wrong anywhere in the supervised pipeline,
/// folded into one structured, journal-visible surface.
#[derive(Debug)]
pub enum PipelineError {
    /// A (switched) execution terminated abnormally.
    Run {
        stage: &'static str,
        outcome: RunOutcome,
    },
    /// A trace file could not be written or read back.
    TraceFile {
        stage: &'static str,
        error: TraceFileError,
    },
    /// The pipelined recorder lost its builder.
    Recorder {
        stage: &'static str,
        error: RecorderError,
    },
    /// A cooperative deadline expired before the stage finished.
    DeadlineExpired { stage: &'static str },
}

impl PipelineError {
    /// The pipeline stage that failed.
    pub fn stage(&self) -> &'static str {
        match self {
            PipelineError::Run { stage, .. }
            | PipelineError::TraceFile { stage, .. }
            | PipelineError::Recorder { stage, .. }
            | PipelineError::DeadlineExpired { stage } => stage,
        }
    }

    /// A stable machine-readable class for journals and metrics.
    pub fn code(&self) -> &'static str {
        match self {
            PipelineError::Run { .. } => "run",
            PipelineError::TraceFile { .. } => "trace-file",
            PipelineError::Recorder { .. } => "recorder",
            PipelineError::DeadlineExpired { .. } => "deadline-expired",
        }
    }
}

impl fmt::Display for PipelineError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PipelineError::Run { stage, outcome } => {
                write!(f, "{stage}: run terminated abnormally ({outcome})")
            }
            PipelineError::TraceFile { stage, error } => write!(f, "{stage}: {error}"),
            PipelineError::Recorder { stage, error } => write!(f, "{stage}: {error}"),
            PipelineError::DeadlineExpired { stage } => {
                write!(f, "{stage}: deadline expired")
            }
        }
    }
}

impl std::error::Error for PipelineError {}

// ---------------------------------------------------------------------
// The supervisor
// ---------------------------------------------------------------------

/// Per-stage supervision for pipeline-level operations: installs the
/// chaos plan and scoped deadline around the initial trace, and wraps
/// save/load with retry ladders.
#[derive(Debug, Clone, Default)]
pub struct Supervisor {
    chaos: Option<ChaosPlan>,
    deadline: Option<Deadline>,
}

impl Supervisor {
    pub fn new() -> Supervisor {
        Supervisor::default()
    }

    /// Installs a chaos plan. A `deadline[:K]=expire` entry forces an
    /// (otherwise unlimited) deadline to expire at its K-th counted
    /// check.
    pub fn with_chaos(mut self, plan: Option<ChaosPlan>) -> Supervisor {
        if let Some(forced) = plan.as_ref().and_then(|p| p.forced_deadline()) {
            let base = self.deadline.take().unwrap_or_else(Deadline::unlimited);
            self.deadline = Some(base.with_force_expire(forced));
        }
        self.chaos = plan;
        self
    }

    /// Installs a wall-clock deadline of `ms` milliseconds.
    pub fn with_deadline_ms(mut self, ms: u64) -> Supervisor {
        let forced = self.deadline.as_ref().and_then(|d| d.force_expire_at);
        let mut d = Deadline::after_ms(ms);
        d.force_expire_at = forced;
        self.deadline = Some(d);
        self
    }

    /// The shared deadline, for wiring into downstream configs. Clones
    /// share the check counter and sticky expiry flag.
    pub fn deadline(&self) -> Option<Deadline> {
        self.deadline.clone()
    }

    /// Whether the shared deadline has already expired.
    pub fn deadline_expired(&self) -> bool {
        self.deadline.as_ref().is_some_and(|d| d.expired())
    }

    /// One counted deadline check at a pipeline boundary.
    pub fn check_deadline(&self) -> bool {
        self.deadline.as_ref().is_some_and(|d| d.check())
    }

    /// Runs `f` with the chaos plan and scoped deadline installed on
    /// the current thread. Use for the supervised initial trace.
    pub fn run<T>(&self, f: impl FnOnce() -> T) -> T {
        let _scope = ChaosScope::install(self.chaos.as_ref(), self.deadline.as_ref());
        f()
    }

    /// Atomic, verified, supervised save: one transparent retry on a
    /// torn or failed write (noted as [`RecoveryKind::SaveRetry`]).
    pub fn save_trace(
        &self,
        trace: &crate::trace::Trace,
        path: &std::path::Path,
    ) -> Result<(), PipelineError> {
        self.run(|| {
            if let Err(first) = crate::format::save_trace(trace, path) {
                note_recovery(RecoveryKind::SaveRetry);
                let _ = first;
                crate::format::save_trace(trace, path).map_err(|error| PipelineError::TraceFile {
                    stage: "save",
                    error,
                })
            } else {
                Ok(())
            }
        })
    }

    /// Supervised load: one transparent retry on decode-level failures
    /// (noted as [`RecoveryKind::LoadRetry`]); I/O errors (missing
    /// file) fail immediately. Callers can climb the next rung of the
    /// ladder — re-tracing from source — on error.
    pub fn load_trace(&self, path: &std::path::Path) -> Result<crate::trace::Trace, PipelineError> {
        self.run(|| match crate::format::load_trace(path) {
            Ok(t) => Ok(t),
            Err(TraceFileError::Io(e)) => Err(PipelineError::TraceFile {
                stage: "load",
                error: TraceFileError::Io(e),
            }),
            Err(_) => {
                note_recovery(RecoveryKind::LoadRetry);
                crate::format::load_trace(path).map_err(|error| PipelineError::TraceFile {
                    stage: "load",
                    error,
                })
            }
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn plans_parse_and_render() {
        let plan = ChaosPlan::parse("builder=panic, save:1=enospc,decode=corrupt").unwrap();
        assert_eq!(plan.entries.len(), 3);
        assert_eq!(
            plan.to_string(),
            "builder=panic,save:1=enospc,decode=corrupt"
        );
        assert_eq!(plan.entries[1].occurrence, 1);
        assert_eq!(plan.entries[1].action, ChaosAction::Enospc);
    }

    #[test]
    fn bad_plans_are_rejected() {
        assert!(ChaosPlan::parse("").is_err());
        assert!(ChaosPlan::parse("builder").is_err());
        assert!(ChaosPlan::parse("nowhere=panic").is_err());
        assert!(ChaosPlan::parse("builder=explode").is_err());
        assert!(ChaosPlan::parse("builder:x=panic").is_err());
        // Incompatible site/action pairs are caught at parse time.
        assert!(ChaosPlan::parse("builder=corrupt").is_err());
        assert!(ChaosPlan::parse("save=panic").is_err());
    }

    #[test]
    fn handler_site_parses_and_fires() {
        let plan = ChaosPlan::parse("handler=panic").unwrap();
        assert!(ChaosPlan::parse("handler=corrupt").is_err());
        let _scope = ChaosScope::install(Some(&plan), None);
        assert_eq!(chaos_hit(ChaosSite::Handler), Some(ChaosAction::Panic));
        assert_eq!(chaos_hit(ChaosSite::Handler), None); // fired already
    }

    #[test]
    fn entries_fire_once_at_their_occurrence() {
        let plan = ChaosPlan::parse("queue:2=stall").unwrap();
        let _scope = ChaosScope::install(Some(&plan), None);
        assert_eq!(chaos_hit(ChaosSite::Queue), None); // occ 0
        assert_eq!(chaos_hit(ChaosSite::Builder), None); // other site
        assert_eq!(chaos_hit(ChaosSite::Queue), None); // occ 1
        assert_eq!(chaos_hit(ChaosSite::Queue), Some(ChaosAction::Stall)); // occ 2
        assert_eq!(chaos_hit(ChaosSite::Queue), None); // fired already
    }

    #[test]
    fn scopes_nest_and_restore() {
        assert_eq!(chaos_hit(ChaosSite::Save), None);
        let outer = ChaosPlan::parse("save=enospc").unwrap();
        let _o = ChaosScope::install(Some(&outer), None);
        {
            let inner = ChaosPlan::parse("mmap=fail").unwrap();
            let _i = ChaosScope::install(Some(&inner), None);
            assert_eq!(chaos_hit(ChaosSite::Save), None);
            assert_eq!(chaos_hit(ChaosSite::Mmap), Some(ChaosAction::Fail));
        }
        // Outer plan restored, its counts untouched by the inner scope.
        assert_eq!(chaos_hit(ChaosSite::Save), Some(ChaosAction::Enospc));
    }

    #[test]
    fn recovery_log_counts_and_orders_events() {
        let _ = take_recovery();
        note_recovery(RecoveryKind::MmapFallback);
        note_recovery(RecoveryKind::SaveRetry);
        note_recovery(RecoveryKind::MmapFallback);
        let log = take_recovery();
        assert_eq!(log.total(), 3);
        assert_eq!(log.count(RecoveryKind::MmapFallback), 2);
        assert_eq!(
            log.counters(),
            vec![("recovery.save_retries", 1), ("recovery.mmap_fallbacks", 2)]
        );
        assert_eq!(
            log.events(),
            [
                "recovery.mmap_fallbacks",
                "recovery.save_retries",
                "recovery.mmap_fallbacks"
            ]
        );
        assert!(take_recovery().is_empty());
    }

    #[test]
    fn forced_deadline_expires_at_counted_check() {
        let _ = take_recovery();
        let d = Deadline::unlimited().with_force_expire(2);
        assert!(!d.check()); // check 0
        assert!(!d.check()); // check 1
        assert!(!d.expired());
        assert!(d.check()); // check 2 expires
        assert!(d.expired());
        assert!(d.check()); // sticky
        let log = take_recovery();
        assert_eq!(log.count(RecoveryKind::DeadlineExpired), 1);
    }

    #[test]
    fn deadline_clones_share_expiry() {
        let d = Deadline::unlimited().with_force_expire(0);
        let clone = d.clone();
        assert!(clone.check());
        assert!(d.expired());
        let _ = take_recovery();
    }

    #[test]
    fn wall_clock_deadline_expires() {
        let d = Deadline::after_ms(0);
        std::thread::sleep(Duration::from_millis(2));
        assert!(d.check());
        let _ = take_recovery();
    }

    #[test]
    fn pipeline_error_surface() {
        let e = PipelineError::Run {
            stage: "initial-trace",
            outcome: RunOutcome::BudgetExhausted,
        };
        assert_eq!(e.stage(), "initial-trace");
        assert_eq!(e.code(), "run");
        assert!(e.to_string().contains("initial-trace"));
        let e = PipelineError::DeadlineExpired { stage: "locate" };
        assert_eq!(e.code(), "deadline-expired");
    }
}
