//! Structured run outcomes for the verification engine.
//!
//! The paper's §4.2 acknowledges that a switched re-execution is a
//! hostile environment: negating a branch can send the program into an
//! infinite loop (handled by the "expired timer" — our step budget) or
//! crash it outright (wild index, spurious call, division by zero).
//! [`RunOutcome`] classifies how each switched run ended so the verifier
//! can count, report, and degrade gracefully instead of panicking, and
//! [`CrashKind`] names the specific failure class of a crashed run.

use std::fmt;

/// The specific failure class of a crashed execution.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum CrashKind {
    /// Array access with a negative or too-large index.
    OobIndex,
    /// Call to a function the program does not define (possible only on
    /// unchecked programs; checked programs catch this statically).
    MissingCallee,
    /// Integer division or remainder by zero.
    DivByZero,
    /// Operand/shape mismatch: wrong operand types, array used as a
    /// scalar, unknown variable, non-integer index.
    TypeError,
    /// Call depth exceeded the interpreter's stack limit.
    StackOverflow,
    /// A variable was read before any assignment reached it.
    UninitRead,
    /// A host-level panic escaped the interpreter and was caught at the
    /// isolation boundary (only injected faults do this in practice).
    Panic,
}

impl CrashKind {
    /// Stable machine-readable name (used by the CLI fault-plan syntax).
    pub fn as_str(self) -> &'static str {
        match self {
            CrashKind::OobIndex => "oob-index",
            CrashKind::MissingCallee => "missing-callee",
            CrashKind::DivByZero => "div-by-zero",
            CrashKind::TypeError => "type-error",
            CrashKind::StackOverflow => "stack-overflow",
            CrashKind::UninitRead => "uninit-read",
            CrashKind::Panic => "panic",
        }
    }
}

impl fmt::Display for CrashKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// How one switched re-execution fared, as the verifier sees it.
///
/// `Completed` is the only outcome under which a verdict can be judged
/// from the switched trace; every other value makes the verification
/// fail conservatively (`NotId`), mirroring the paper's rule that an
/// expired timer "aggressively concludes the verification fails".
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum RunOutcome {
    /// The switched run terminated normally with the switch landed.
    Completed,
    /// The step budget (the paper's timer) expired, even after every
    /// escalation attempt.
    BudgetExhausted,
    /// The run crashed with the given failure class.
    Crashed(CrashKind),
    /// The run terminated normally but the switch never landed (the
    /// instance was not reached — e.g. an earlier switch changed the
    /// path, or the occurrence lies beyond the run).
    SwitchNotLanded,
    /// A checkpoint failed validation (or resumption itself failed) and
    /// no from-scratch fallback was possible.
    CheckpointInvalid,
}

impl RunOutcome {
    /// Whether a verdict may be judged from the switched trace.
    pub fn is_usable(self) -> bool {
        self == RunOutcome::Completed
    }
}

impl fmt::Display for RunOutcome {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RunOutcome::Completed => f.write_str("completed"),
            RunOutcome::BudgetExhausted => f.write_str("budget-exhausted"),
            RunOutcome::Crashed(kind) => write!(f, "crashed({kind})"),
            RunOutcome::SwitchNotLanded => f.write_str("switch-not-landed"),
            RunOutcome::CheckpointInvalid => f.write_str("checkpoint-invalid"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn only_completed_is_usable() {
        assert!(RunOutcome::Completed.is_usable());
        for o in [
            RunOutcome::BudgetExhausted,
            RunOutcome::Crashed(CrashKind::OobIndex),
            RunOutcome::SwitchNotLanded,
            RunOutcome::CheckpointInvalid,
        ] {
            assert!(!o.is_usable(), "{o}");
        }
    }

    #[test]
    fn display_is_stable() {
        assert_eq!(RunOutcome::Completed.to_string(), "completed");
        assert_eq!(
            RunOutcome::Crashed(CrashKind::DivByZero).to_string(),
            "crashed(div-by-zero)"
        );
        assert_eq!(CrashKind::StackOverflow.to_string(), "stack-overflow");
        assert_eq!(CrashKind::Panic.as_str(), "panic");
    }
}
