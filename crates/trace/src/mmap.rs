//! Read-only file mapping for the trace loader, dependency-free.
//!
//! The repository vendors no platform crates, so on x86-64 Linux the
//! `mmap`/`munmap` system calls are issued directly via inline assembly;
//! every other target falls back to a buffered [`std::fs::read`]. Either
//! way the caller sees one contiguous `&[u8]` — [`FileBytes`] hides
//! which path produced it — and the decoder copies column payloads into
//! owned arrays, so the mapping only needs to outlive the decode.

use std::io;
use std::ops::Deref;
use std::path::Path;

/// The bytes of a file: memory-mapped where supported, owned otherwise.
pub(crate) enum FileBytes {
    /// Heap-allocated copy of the file.
    Owned(Vec<u8>),
    /// A live read-only mapping.
    #[cfg(all(target_os = "linux", target_arch = "x86_64"))]
    Mapped(linux::Mmap),
}

impl Deref for FileBytes {
    type Target = [u8];

    fn deref(&self) -> &[u8] {
        match self {
            FileBytes::Owned(v) => v,
            #[cfg(all(target_os = "linux", target_arch = "x86_64"))]
            FileBytes::Mapped(m) => m,
        }
    }
}

/// Reads a whole file, preferring a memory mapping where the platform
/// supports it. Mapping failures — real ones (e.g. exotic filesystems)
/// or injected `mmap=fail` chaos — degrade to a buffered read rather
/// than erroring, and the fallback is counted as a
/// [`crate::supervisor::RecoveryKind::MmapFallback`] recovery.
pub(crate) fn read_file(path: &Path) -> io::Result<FileBytes> {
    #[cfg(all(target_os = "linux", target_arch = "x86_64"))]
    {
        use crate::supervisor::{chaos_hit, note_recovery, ChaosSite, RecoveryKind};
        let file = std::fs::File::open(path)?;
        let len = file.metadata()?.len();
        if len > 0 && len <= usize::MAX as u64 {
            if chaos_hit(ChaosSite::Mmap).is_none() {
                if let Ok(map) = linux::Mmap::map(&file, len as usize) {
                    return Ok(FileBytes::Mapped(map));
                }
            }
            note_recovery(RecoveryKind::MmapFallback);
        } else if len == 0 {
            return Ok(FileBytes::Owned(Vec::new()));
        }
    }
    Ok(FileBytes::Owned(std::fs::read(path)?))
}

#[cfg(all(target_os = "linux", target_arch = "x86_64"))]
mod linux {
    use std::arch::asm;
    use std::fs::File;
    use std::io;
    use std::os::fd::AsRawFd;

    const SYS_MMAP: usize = 9;
    const SYS_MUNMAP: usize = 11;
    const PROT_READ: usize = 1;
    const MAP_PRIVATE: usize = 2;

    /// A read-only, private mapping of one file, unmapped on drop.
    pub(crate) struct Mmap {
        ptr: *const u8,
        len: usize,
    }

    // The mapping is immutable shared memory backed by the page cache.
    unsafe impl Send for Mmap {}
    unsafe impl Sync for Mmap {}

    impl Mmap {
        /// Maps `len` bytes of `file` read-only from offset 0.
        pub(crate) fn map(file: &File, len: usize) -> io::Result<Mmap> {
            let fd = file.as_raw_fd();
            let ret: isize;
            // SAFETY: a well-formed mmap(2) invocation; all arguments are
            // owned by this frame and the kernel validates the fd/length.
            unsafe {
                asm!(
                    "syscall",
                    inlateout("rax") SYS_MMAP as isize => ret,
                    in("rdi") 0usize,
                    in("rsi") len,
                    in("rdx") PROT_READ,
                    in("r10") MAP_PRIVATE,
                    in("r8") fd as isize,
                    in("r9") 0usize,
                    lateout("rcx") _,
                    lateout("r11") _,
                    options(nostack)
                );
            }
            if (-4095..0).contains(&ret) {
                return Err(io::Error::from_raw_os_error(-ret as i32));
            }
            Ok(Mmap {
                ptr: ret as *const u8,
                len,
            })
        }
    }

    impl std::ops::Deref for Mmap {
        type Target = [u8];

        fn deref(&self) -> &[u8] {
            // SAFETY: the mapping covers `len` readable bytes until
            // munmap in Drop; the file is opened read-only and mapped
            // MAP_PRIVATE, so concurrent writers cannot shrink our view
            // of already-mapped pages.
            unsafe { std::slice::from_raw_parts(self.ptr, self.len) }
        }
    }

    impl Drop for Mmap {
        fn drop(&mut self) {
            let ret: isize;
            // SAFETY: unmaps exactly the region mapped in `map`.
            unsafe {
                asm!(
                    "syscall",
                    inlateout("rax") SYS_MUNMAP as isize => ret,
                    in("rdi") self.ptr,
                    in("rsi") self.len,
                    lateout("rcx") _,
                    lateout("r11") _,
                    options(nostack)
                );
            }
            debug_assert_eq!(ret, 0, "munmap failed");
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reads_file_contents() {
        let dir = std::env::temp_dir().join("omitrace-mmap-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("payload.bin");
        let data: Vec<u8> = (0..=255u8).cycle().take(10_000).collect();
        std::fs::write(&path, &data).unwrap();
        let bytes = read_file(&path).unwrap();
        assert_eq!(&*bytes, &data[..]);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn empty_file_reads_empty() {
        let dir = std::env::temp_dir().join("omitrace-mmap-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("empty.bin");
        std::fs::write(&path, b"").unwrap();
        let bytes = read_file(&path).unwrap();
        assert!(bytes.is_empty());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn missing_file_errors() {
        assert!(read_file(Path::new("/nonexistent/x.bin")).is_err());
    }
}
