//! Columnar (structure-of-arrays) event storage.
//!
//! The trace used to be a `Vec<Event>`: ~90 bytes per instance plus one
//! heap allocation per event for its `data_deps`. At production scales
//! (hundreds of thousands of instances per run, and the verifier
//! re-executing dozens of runs per batch) the allocator traffic of that
//! layout dominated tracing cost. [`ColumnarTrace`] stores each event
//! field in its own dense parallel array and the variable-length
//! dependence lists in one shared CSR arena, so recording an event is a
//! handful of `Vec::push`es with amortized-zero allocation, cloning a
//! checkpoint prefix is a few `memcpy`s, and the whole trace serializes
//! to the `omitrace/v1` on-disk format column by column.
//!
//! Instance ids stay *absolute* `u32`s in memory so dependence lists can
//! be returned as `&[InstId]` slices without decoding; delta compression
//! is applied only at the serialization boundary (see
//! [`crate::format`]).

use crate::event::{Event, EventRef, InstId};
use crate::value::Value;
use omislice_lang::{StmtId, VarId};
use std::sync::Arc;

/// Sentinel for "no instance" in the optional-parent columns.
pub(crate) const NONE_U32: u32 = u32::MAX;

// `meta` column bit layout.
const VALUE_TAG_MASK: u8 = 0b0000_0011; // 0=None, 1=Int, 2=Bool
const VALUE_INT: u8 = 1;
const VALUE_BOOL: u8 = 2;
const BRANCH_SHIFT: u8 = 2; // 2-bit field: 0=None, 1=false, 2=true
const BRANCH_MASK: u8 = 0b0000_1100;
const HAS_CELL: u8 = 0b0001_0000;

/// A borrowed, allocation-free event record: what the interpreter hands
/// the recorder for each executed instance.
#[derive(Debug, Clone, Copy)]
pub struct RawEvent<'a> {
    /// The statement that executed.
    pub stmt: StmtId,
    /// The value this instance computed, if any.
    pub value: Option<Value>,
    /// For predicates: the branch outcome taken.
    pub branch: Option<bool>,
    /// Dynamic data dependences, in evaluation order, deduplicated.
    pub deps: &'a [InstId],
    /// Dynamic control-dependence parent.
    pub cd_parent: Option<InstId>,
    /// Region-nesting parent.
    pub region_parent: Option<InstId>,
    /// Variable defined by this instance.
    pub def_var: Option<VarId>,
    /// For array stores: the concrete cell index written.
    pub cell_index: Option<i64>,
    /// Call depth at which the instance executed.
    pub call_depth: u32,
}

impl<'a> From<&'a Event> for RawEvent<'a> {
    fn from(e: &'a Event) -> Self {
        RawEvent {
            stmt: e.stmt,
            value: e.value,
            branch: e.branch,
            deps: &e.data_deps,
            cd_parent: e.cd_parent,
            region_parent: e.region_parent,
            def_var: e.def_var,
            cell_index: e.cell_index,
            call_depth: e.call_depth,
        }
    }
}

/// A shared checkpoint prefix: the head of this store is the first
/// `len` events of a donor trace, held by reference count instead of
/// copied. Resuming a switched re-execution from a deep checkpoint used
/// to memcpy every column of the prefix (megabytes per verification
/// leaf at production scales); sharing makes seeding a resumed recorder
/// O(1) regardless of checkpoint depth. The donor's columns are
/// immutable once its run finishes, so the borrow is sound by
/// construction — all writes land in the owning store's tail columns.
#[derive(Debug, Clone, PartialEq, Eq)]
struct Prefix {
    /// Donor columns. May itself be prefix-shared; chains stay shallow
    /// because [`ColumnarTrace::share_prefix`] collapses onto the
    /// donor's own prefix whenever the requested length fits inside it.
    cols: Arc<ColumnarTrace>,
    /// Events taken from the donor.
    len: u32,
    /// Dependence edges within those events (the logical CSR base of
    /// the tail's `deps_off`, which stays tail-local).
    deps: u32,
}

/// The columnar event store: one dense array per event field, a CSR
/// arena for dependence lists, and a sparse sorted column for the rare
/// array-store cell indices. Optionally the first events are a shared
/// [`Prefix`] into a donor trace (checkpoint resume); the dense arrays
/// then hold only the tail recorded past the prefix, and every accessor
/// routes prefix instances to the donor.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ColumnarTrace {
    /// Shared immutable head, if this store was seeded from a
    /// checkpoint prefix of another trace.
    prefix: Option<Prefix>,
    /// Statement id per instance.
    pub(crate) stmt: Vec<StmtId>,
    /// Packed value/branch/cell tags per instance.
    pub(crate) meta: Vec<u8>,
    /// Value payload per instance (int value, or bool as 0/1; 0 if none).
    pub(crate) value: Vec<i64>,
    /// Call depth per instance.
    pub(crate) call_depth: Vec<u32>,
    /// Dynamic CD parent per instance ([`NONE_U32`] = none).
    pub(crate) cd_parent: Vec<u32>,
    /// Region-nesting parent per instance ([`NONE_U32`] = none).
    pub(crate) region_parent: Vec<u32>,
    /// Defined variable per instance ([`NONE_U32`] = none).
    pub(crate) def_var: Vec<u32>,
    /// CSR offsets into `deps`; `tail len + 1` entries, tail-local (the
    /// shared prefix's edge count is cached in [`Prefix::deps`]).
    pub(crate) deps_off: Vec<u32>,
    /// CSR arena of data-dependence edges (absolute instance ids).
    pub(crate) deps: Vec<InstId>,
    /// Sparse `(inst, cell)` pairs for array stores, sorted by instance
    /// (absolute ids, also when a prefix is shared).
    pub(crate) cell_index: Vec<(u32, i64)>,
}

impl ColumnarTrace {
    /// An empty store.
    pub fn new() -> Self {
        let mut c = ColumnarTrace::default();
        c.deps_off.push(0);
        c
    }

    /// An empty store with room for `events` instances and `deps` edges.
    pub fn with_capacity(events: usize, deps: usize) -> Self {
        let mut c = ColumnarTrace {
            prefix: None,
            stmt: Vec::with_capacity(events),
            meta: Vec::with_capacity(events),
            value: Vec::with_capacity(events),
            call_depth: Vec::with_capacity(events),
            cd_parent: Vec::with_capacity(events),
            region_parent: Vec::with_capacity(events),
            def_var: Vec::with_capacity(events),
            deps_off: Vec::with_capacity(events + 1),
            deps: Vec::with_capacity(deps),
            cell_index: Vec::new(),
        };
        c.deps_off.push(0);
        c
    }

    /// Number of stored instances (shared prefix included).
    pub fn len(&self) -> usize {
        self.prefix_len() + self.stmt.len()
    }

    /// Whether no instance is stored.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Total dependence edges across all instances.
    pub fn deps_len(&self) -> usize {
        self.prefix_deps() + self.deps.len()
    }

    /// Events held by the shared prefix (0 when the store is flat).
    #[inline]
    fn prefix_len(&self) -> usize {
        self.prefix.as_ref().map_or(0, |p| p.len as usize)
    }

    /// Dependence edges held by the shared prefix.
    #[inline]
    fn prefix_deps(&self) -> usize {
        self.prefix.as_ref().map_or(0, |p| p.deps as usize)
    }

    /// Whether this store shares its head with a donor trace.
    pub(crate) fn has_prefix(&self) -> bool {
        self.prefix.is_some()
    }

    /// Dependence edges recorded before event `i` (the logical CSR
    /// offset; `i` may equal `len()`).
    fn deps_start(&self, i: usize) -> usize {
        match &self.prefix {
            Some(p) if i <= p.len as usize => p.cols.deps_start(i),
            _ => self.prefix_deps() + self.deps_off[i - self.prefix_len()] as usize,
        }
    }

    /// Appends one event. Ids are assigned densely in push order.
    pub fn push(&mut self, ev: RawEvent<'_>) -> InstId {
        let id = InstId(self.len() as u32);
        let mut meta = match ev.value {
            None => 0,
            Some(Value::Int(_)) => VALUE_INT,
            Some(Value::Bool(_)) => VALUE_BOOL,
        };
        meta |= match ev.branch {
            None => 0,
            Some(false) => 1 << BRANCH_SHIFT,
            Some(true) => 2 << BRANCH_SHIFT,
        };
        let payload = match ev.value {
            None => 0,
            Some(Value::Int(n)) => n,
            Some(Value::Bool(b)) => b as i64,
        };
        if let Some(cell) = ev.cell_index {
            meta |= HAS_CELL;
            self.cell_index.push((id.0, cell));
        }
        self.stmt.push(ev.stmt);
        self.meta.push(meta);
        self.value.push(payload);
        self.call_depth.push(ev.call_depth);
        self.cd_parent.push(ev.cd_parent.map_or(NONE_U32, |p| p.0));
        self.region_parent
            .push(ev.region_parent.map_or(NONE_U32, |p| p.0));
        self.def_var.push(ev.def_var.map_or(NONE_U32, |v| v.0));
        self.deps.extend_from_slice(ev.deps);
        self.deps_off.push(self.deps.len() as u32);
        id
    }

    /// Appends every event of `other` (used by the chunked recorder).
    /// `other`'s dependence and parent ids must already be absolute;
    /// its own instance ids (the sparse cell column) are rebased.
    pub fn append(&mut self, other: &ColumnarTrace) {
        assert!(other.prefix.is_none(), "appended chunks are always flat");
        let id_base = self.len() as u32;
        self.stmt.extend_from_slice(&other.stmt);
        self.meta.extend_from_slice(&other.meta);
        self.value.extend_from_slice(&other.value);
        self.call_depth.extend_from_slice(&other.call_depth);
        self.cd_parent.extend_from_slice(&other.cd_parent);
        self.region_parent.extend_from_slice(&other.region_parent);
        self.def_var.extend_from_slice(&other.def_var);
        let base = self.deps.len() as u32;
        self.deps.extend_from_slice(&other.deps);
        self.deps_off
            .extend(other.deps_off[1..].iter().map(|&o| o + base));
        self.cell_index
            .extend(other.cell_index.iter().map(|&(i, c)| (i + id_base, c)));
    }

    /// Overwrites the defined-variable column of the most recent event
    /// (the interpreter learns the resolved variable only after the
    /// assignment's side effect lands).
    pub fn set_def_var_last(&mut self, var: VarId) {
        *self.def_var.last_mut().expect("set_def_var on empty trace") = var.0;
    }

    /// The event at `inst`, as a borrowed view.
    ///
    /// # Panics
    ///
    /// Panics if `inst` is out of range.
    pub fn event(&self, inst: InstId) -> EventRef<'_> {
        let i = inst.index();
        if let Some(p) = &self.prefix {
            if i < p.len as usize {
                return p.cols.event(inst);
            }
        }
        let i = i - self.prefix_len();
        let meta = self.meta[i];
        let value = match meta & VALUE_TAG_MASK {
            VALUE_INT => Some(Value::Int(self.value[i])),
            VALUE_BOOL => Some(Value::Bool(self.value[i] != 0)),
            _ => None,
        };
        let branch = match (meta & BRANCH_MASK) >> BRANCH_SHIFT {
            1 => Some(false),
            2 => Some(true),
            _ => None,
        };
        let cell_index = if meta & HAS_CELL != 0 {
            self.cell_of(inst.0)
        } else {
            None
        };
        let deps = &self.deps[self.deps_off[i] as usize..self.deps_off[i + 1] as usize];
        EventRef {
            stmt: self.stmt[i],
            value,
            branch,
            data_deps: deps,
            cd_parent: opt(self.cd_parent[i]),
            region_parent: opt(self.region_parent[i]),
            def_var: match self.def_var[i] {
                NONE_U32 => None,
                v => Some(VarId(v)),
            },
            cell_index,
            call_depth: self.call_depth[i],
        }
    }

    /// Routes `inst` to its home store: the donor for prefix instances
    /// (`Err`), the local tail index otherwise (`Ok`).
    #[inline]
    fn route(&self, inst: InstId) -> Result<usize, &ColumnarTrace> {
        let i = inst.index();
        if let Some(p) = &self.prefix {
            if i < p.len as usize {
                return Err(&p.cols);
            }
        }
        Ok(i - self.prefix_len())
    }

    /// The statement of `inst` (cheaper than materializing the full view).
    pub fn stmt_of(&self, inst: InstId) -> StmtId {
        match self.route(inst) {
            Ok(i) => self.stmt[i],
            Err(donor) => donor.stmt_of(inst),
        }
    }

    /// The variable defined by `inst`, if any.
    pub fn def_var_of(&self, inst: InstId) -> Option<VarId> {
        match self.route(inst) {
            Ok(i) => match self.def_var[i] {
                NONE_U32 => None,
                v => Some(VarId(v)),
            },
            Err(donor) => donor.def_var_of(inst),
        }
    }

    /// The branch outcome of `inst`, if it is a predicate instance.
    pub fn branch_of(&self, inst: InstId) -> Option<bool> {
        match self.route(inst) {
            Ok(i) => match (self.meta[i] & BRANCH_MASK) >> BRANCH_SHIFT {
                1 => Some(false),
                2 => Some(true),
                _ => None,
            },
            Err(donor) => donor.branch_of(inst),
        }
    }

    /// The CD parent of `inst`.
    pub fn cd_parent_of(&self, inst: InstId) -> Option<InstId> {
        match self.route(inst) {
            Ok(i) => opt(self.cd_parent[i]),
            Err(donor) => donor.cd_parent_of(inst),
        }
    }

    /// The region parent of `inst`.
    pub fn region_parent_of(&self, inst: InstId) -> Option<InstId> {
        match self.route(inst) {
            Ok(i) => opt(self.region_parent[i]),
            Err(donor) => donor.region_parent_of(inst),
        }
    }

    /// The dependence list of `inst`.
    pub fn deps_of(&self, inst: InstId) -> &[InstId] {
        match self.route(inst) {
            Ok(i) => &self.deps[self.deps_off[i] as usize..self.deps_off[i + 1] as usize],
            Err(donor) => donor.deps_of(inst),
        }
    }

    fn cell_of(&self, inst: u32) -> Option<i64> {
        if let Some(p) = &self.prefix {
            if inst < p.len {
                return p.cols.cell_of(inst);
            }
        }
        self.cell_index
            .binary_search_by_key(&inst, |&(i, _)| i)
            .ok()
            .map(|k| self.cell_index[k].1)
    }

    /// A new *flat* store holding the first `len` events (a checkpoint
    /// prefix): column-wise truncating copies, no per-event work. On a
    /// prefix-shared store the donor's head is materialized too, so the
    /// result always owns its columns (the serializer and the oracle
    /// tests want contiguous arrays).
    pub fn clone_prefix(&self, len: usize) -> ColumnarTrace {
        assert!(len <= self.len(), "prefix beyond trace");
        let Some(p) = &self.prefix else {
            let deps_end = self.deps_off[len] as usize;
            let cells = self
                .cell_index
                .partition_point(|&(i, _)| (i as usize) < len);
            return ColumnarTrace {
                prefix: None,
                stmt: self.stmt[..len].to_vec(),
                meta: self.meta[..len].to_vec(),
                value: self.value[..len].to_vec(),
                call_depth: self.call_depth[..len].to_vec(),
                cd_parent: self.cd_parent[..len].to_vec(),
                region_parent: self.region_parent[..len].to_vec(),
                def_var: self.def_var[..len].to_vec(),
                deps_off: self.deps_off[..len + 1].to_vec(),
                deps: self.deps[..deps_end].to_vec(),
                cell_index: self.cell_index[..cells].to_vec(),
            };
        };
        let plen = p.len as usize;
        let mut out = p.cols.clone_prefix(len.min(plen));
        if len > plen {
            let t = len - plen; // tail events to copy
            let deps_end = self.deps_off[t] as usize;
            let cells = self
                .cell_index
                .partition_point(|&(i, _)| (i as usize) < len);
            out.stmt.extend_from_slice(&self.stmt[..t]);
            out.meta.extend_from_slice(&self.meta[..t]);
            out.value.extend_from_slice(&self.value[..t]);
            out.call_depth.extend_from_slice(&self.call_depth[..t]);
            out.cd_parent.extend_from_slice(&self.cd_parent[..t]);
            out.region_parent
                .extend_from_slice(&self.region_parent[..t]);
            out.def_var.extend_from_slice(&self.def_var[..t]);
            let base = out.deps.len() as u32;
            out.deps.extend_from_slice(&self.deps[..deps_end]);
            out.deps_off
                .extend(self.deps_off[1..=t].iter().map(|&o| o + base));
            out.cell_index.extend_from_slice(&self.cell_index[..cells]);
        }
        out
    }

    /// A new store whose first `len` events are *shared* with `base` by
    /// reference count instead of copied — how a resumed recorder is
    /// seeded. O(1) regardless of prefix depth, where [`clone_prefix`]
    /// memcpys every column (megabytes per verification leaf at
    /// production scales).
    ///
    /// When `base` itself shares a prefix and the requested length fits
    /// inside it, the new store references the deeper donor directly,
    /// so chains stay as shallow as the checkpoint trie allows and
    /// access cost does not grow with resume generations.
    ///
    /// [`clone_prefix`]: ColumnarTrace::clone_prefix
    pub fn share_prefix(base: &Arc<ColumnarTrace>, len: usize) -> ColumnarTrace {
        assert!(len <= base.len(), "prefix beyond trace");
        if len == 0 {
            return ColumnarTrace::new();
        }
        if let Some(p) = &base.prefix {
            if len <= p.len as usize {
                return ColumnarTrace::share_prefix(&p.cols, len);
            }
        }
        let deps = base.deps_start(len) as u32;
        let mut c = ColumnarTrace {
            prefix: Some(Prefix {
                cols: Arc::clone(base),
                len: len as u32,
                deps,
            }),
            ..ColumnarTrace::default()
        };
        c.deps_off.push(0);
        c
    }

    /// Calls `f(i, raw_region_parent)` for the first `n` instances in
    /// execution order ([`NONE_U32`] = top level): the prefix-aware
    /// replacement for iterating the raw column, used by the region-tree
    /// build's hot pass.
    pub(crate) fn for_each_region_parent(&self, n: usize, f: &mut impl FnMut(usize, u32)) {
        let plen = self.prefix_len();
        if let Some(p) = &self.prefix {
            p.cols.for_each_region_parent(n.min(plen), f);
        }
        for (j, &rp) in self.region_parent[..n.saturating_sub(plen)]
            .iter()
            .enumerate()
        {
            f(plen + j, rp);
        }
    }

    /// Calls `f(i, stmt)` for the first `n` instances in execution
    /// order: the prefix-aware replacement for iterating the raw
    /// statement column (statement → instances map construction).
    pub(crate) fn for_each_stmt(&self, n: usize, f: &mut impl FnMut(usize, StmtId)) {
        let plen = self.prefix_len();
        if let Some(p) = &self.prefix {
            p.cols.for_each_stmt(n.min(plen), f);
        }
        for (j, &s) in self.stmt[..n.saturating_sub(plen)].iter().enumerate() {
            f(plen + j, s);
        }
    }

    /// Materializes the legacy owned-event representation (tests and the
    /// equivalence oracle; not a hot path).
    pub fn to_events(&self) -> Vec<Event> {
        (0..self.len() as u32)
            .map(|i| self.event(InstId(i)).to_owned())
            .collect()
    }

    /// Resident column bytes *owned by this store* (the
    /// `columnar.bytes` observability counter). A shared checkpoint
    /// prefix is charged to its donor, not double-counted: the memo's
    /// capacity accounting would otherwise bill the same resident
    /// arrays once per resumed run that borrows them.
    pub fn bytes(&self) -> usize {
        self.stmt.len() * std::mem::size_of::<StmtId>()
            + self.meta.len()
            + self.value.len() * 8
            + self.call_depth.len() * 4
            + self.cd_parent.len() * 4
            + self.region_parent.len() * 4
            + self.def_var.len() * 4
            + self.deps_off.len() * 4
            + self.deps.len() * 4
            + self.cell_index.len() * 12
    }
}

fn opt(raw: u32) -> Option<InstId> {
    if raw == NONE_U32 {
        None
    } else {
        Some(InstId(raw))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_events() -> Vec<Event> {
        let mut a = Event::new(StmtId(0));
        a.value = Some(Value::Bool(true));
        a.branch = Some(true);
        let mut b = Event::new(StmtId(3));
        b.value = Some(Value::Int(-7));
        b.data_deps = vec![InstId(0)];
        b.cd_parent = Some(InstId(0));
        b.region_parent = Some(InstId(0));
        b.def_var = Some(VarId(2));
        b.call_depth = 1;
        let mut c = Event::new(StmtId(4));
        c.cell_index = Some(9);
        c.data_deps = vec![InstId(0), InstId(1)];
        vec![a, b, c]
    }

    fn build(events: &[Event]) -> ColumnarTrace {
        let mut cols = ColumnarTrace::new();
        for e in events {
            cols.push(RawEvent::from(e));
        }
        cols
    }

    #[test]
    fn push_then_view_round_trips() {
        let events = sample_events();
        let cols = build(&events);
        assert_eq!(cols.len(), 3);
        assert_eq!(cols.deps_len(), 3);
        assert_eq!(cols.to_events(), events);
        assert_eq!(cols.event(InstId(1)).data_deps, &[InstId(0)]);
        assert_eq!(cols.event(InstId(2)).cell_index, Some(9));
        assert_eq!(cols.event(InstId(0)).cell_index, None);
        assert!(cols.event(InstId(0)).is_predicate());
    }

    #[test]
    fn prefix_clone_is_column_exact() {
        let events = sample_events();
        let cols = build(&events);
        for len in 0..=events.len() {
            let prefix = cols.clone_prefix(len);
            assert_eq!(prefix.to_events(), events[..len].to_vec());
        }
    }

    #[test]
    fn append_rebases_offsets() {
        let events = sample_events();
        let mut whole = build(&events[..1]);
        let mut tail = ColumnarTrace::new();
        for e in &events[1..] {
            // Recreate with absolute ids (they already are).
            tail.push(RawEvent::from(e));
        }
        whole.append(&tail);
        assert_eq!(whole.to_events(), events);
    }

    #[test]
    fn shared_prefix_matches_cloned_prefix() {
        let events = sample_events();
        let base = Arc::new(build(&events));
        for len in 0..=events.len() {
            let shared = ColumnarTrace::share_prefix(&base, len);
            assert_eq!(shared.len(), len);
            assert_eq!(shared.to_events(), events[..len].to_vec());
            assert_eq!(shared.deps_len(), base.clone_prefix(len).deps_len());
            // Flattening a shared store reproduces the owned copy.
            assert_eq!(shared.clone_prefix(len), base.clone_prefix(len));
        }
    }

    #[test]
    fn shared_prefix_extends_like_a_flat_store() {
        let events = sample_events();
        let base = Arc::new(build(&events));
        for cut in 0..events.len() {
            let mut shared = ColumnarTrace::share_prefix(&base, cut);
            let mut flat = base.clone_prefix(cut);
            for e in &events[cut..] {
                assert_eq!(shared.push(RawEvent::from(e)), flat.push(RawEvent::from(e)));
            }
            assert_eq!(shared.to_events(), events);
            assert_eq!(shared.len(), flat.len());
            assert_eq!(shared.deps_len(), flat.deps_len());
            for i in 0..events.len() as u32 {
                let inst = InstId(i);
                assert_eq!(shared.stmt_of(inst), flat.stmt_of(inst));
                assert_eq!(shared.deps_of(inst), flat.deps_of(inst));
                assert_eq!(shared.def_var_of(inst), flat.def_var_of(inst));
                assert_eq!(shared.branch_of(inst), flat.branch_of(inst));
                assert_eq!(shared.cd_parent_of(inst), flat.cd_parent_of(inst));
                assert_eq!(shared.region_parent_of(inst), flat.region_parent_of(inst));
            }
            // Mid-prefix re-cuts (an ancestor resume off a resumed run).
            for recut in 0..=events.len() {
                assert_eq!(
                    shared.clone_prefix(recut).to_events(),
                    events[..recut].to_vec()
                );
            }
        }
    }

    #[test]
    fn nested_share_collapses_onto_deepest_donor() {
        let events = sample_events();
        let base = Arc::new(build(&events));
        let mut mid = ColumnarTrace::share_prefix(&base, 2);
        mid.push(RawEvent::from(&events[2]));
        let mid = Arc::new(mid);
        // Cut inside mid's own prefix: the new store must reference the
        // base columns directly, not chain through mid.
        let leaf = ColumnarTrace::share_prefix(&mid, 1);
        assert!(Arc::ptr_eq(&leaf.prefix.as_ref().unwrap().cols, &base));
        assert_eq!(leaf.to_events(), events[..1].to_vec());
        // Cut past mid's prefix: chains one level through mid.
        let deep = ColumnarTrace::share_prefix(&mid, 3);
        assert_eq!(deep.to_events(), events[..3].to_vec());
        assert_eq!(deep.deps_len(), base.clone_prefix(3).deps_len());
    }

    #[test]
    fn def_var_patch_hits_last_event() {
        let mut cols = build(&sample_events());
        cols.set_def_var_last(VarId(11));
        assert_eq!(cols.event(InstId(2)).def_var, Some(VarId(11)));
    }

    #[test]
    fn bytes_grow_with_events() {
        let cols = build(&sample_events());
        assert!(cols.bytes() > 0);
        assert!(cols.bytes() < 400);
    }
}
