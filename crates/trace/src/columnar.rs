//! Columnar (structure-of-arrays) event storage.
//!
//! The trace used to be a `Vec<Event>`: ~90 bytes per instance plus one
//! heap allocation per event for its `data_deps`. At production scales
//! (hundreds of thousands of instances per run, and the verifier
//! re-executing dozens of runs per batch) the allocator traffic of that
//! layout dominated tracing cost. [`ColumnarTrace`] stores each event
//! field in its own dense parallel array and the variable-length
//! dependence lists in one shared CSR arena, so recording an event is a
//! handful of `Vec::push`es with amortized-zero allocation, cloning a
//! checkpoint prefix is a few `memcpy`s, and the whole trace serializes
//! to the `omitrace/v1` on-disk format column by column.
//!
//! Instance ids stay *absolute* `u32`s in memory so dependence lists can
//! be returned as `&[InstId]` slices without decoding; delta compression
//! is applied only at the serialization boundary (see
//! [`crate::format`]).

use crate::event::{Event, EventRef, InstId};
use crate::value::Value;
use omislice_lang::{StmtId, VarId};

/// Sentinel for "no instance" in the optional-parent columns.
pub(crate) const NONE_U32: u32 = u32::MAX;

// `meta` column bit layout.
const VALUE_TAG_MASK: u8 = 0b0000_0011; // 0=None, 1=Int, 2=Bool
const VALUE_INT: u8 = 1;
const VALUE_BOOL: u8 = 2;
const BRANCH_SHIFT: u8 = 2; // 2-bit field: 0=None, 1=false, 2=true
const BRANCH_MASK: u8 = 0b0000_1100;
const HAS_CELL: u8 = 0b0001_0000;

/// A borrowed, allocation-free event record: what the interpreter hands
/// the recorder for each executed instance.
#[derive(Debug, Clone, Copy)]
pub struct RawEvent<'a> {
    /// The statement that executed.
    pub stmt: StmtId,
    /// The value this instance computed, if any.
    pub value: Option<Value>,
    /// For predicates: the branch outcome taken.
    pub branch: Option<bool>,
    /// Dynamic data dependences, in evaluation order, deduplicated.
    pub deps: &'a [InstId],
    /// Dynamic control-dependence parent.
    pub cd_parent: Option<InstId>,
    /// Region-nesting parent.
    pub region_parent: Option<InstId>,
    /// Variable defined by this instance.
    pub def_var: Option<VarId>,
    /// For array stores: the concrete cell index written.
    pub cell_index: Option<i64>,
    /// Call depth at which the instance executed.
    pub call_depth: u32,
}

impl<'a> From<&'a Event> for RawEvent<'a> {
    fn from(e: &'a Event) -> Self {
        RawEvent {
            stmt: e.stmt,
            value: e.value,
            branch: e.branch,
            deps: &e.data_deps,
            cd_parent: e.cd_parent,
            region_parent: e.region_parent,
            def_var: e.def_var,
            cell_index: e.cell_index,
            call_depth: e.call_depth,
        }
    }
}

/// The columnar event store: one dense array per event field, a CSR
/// arena for dependence lists, and a sparse sorted column for the rare
/// array-store cell indices.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ColumnarTrace {
    /// Statement id per instance.
    pub(crate) stmt: Vec<StmtId>,
    /// Packed value/branch/cell tags per instance.
    pub(crate) meta: Vec<u8>,
    /// Value payload per instance (int value, or bool as 0/1; 0 if none).
    pub(crate) value: Vec<i64>,
    /// Call depth per instance.
    pub(crate) call_depth: Vec<u32>,
    /// Dynamic CD parent per instance ([`NONE_U32`] = none).
    pub(crate) cd_parent: Vec<u32>,
    /// Region-nesting parent per instance ([`NONE_U32`] = none).
    pub(crate) region_parent: Vec<u32>,
    /// Defined variable per instance ([`NONE_U32`] = none).
    pub(crate) def_var: Vec<u32>,
    /// CSR offsets into `deps`; `len + 1` entries.
    pub(crate) deps_off: Vec<u32>,
    /// CSR arena of data-dependence edges (absolute instance ids).
    pub(crate) deps: Vec<InstId>,
    /// Sparse `(inst, cell)` pairs for array stores, sorted by instance.
    pub(crate) cell_index: Vec<(u32, i64)>,
}

impl ColumnarTrace {
    /// An empty store.
    pub fn new() -> Self {
        let mut c = ColumnarTrace::default();
        c.deps_off.push(0);
        c
    }

    /// An empty store with room for `events` instances and `deps` edges.
    pub fn with_capacity(events: usize, deps: usize) -> Self {
        let mut c = ColumnarTrace {
            stmt: Vec::with_capacity(events),
            meta: Vec::with_capacity(events),
            value: Vec::with_capacity(events),
            call_depth: Vec::with_capacity(events),
            cd_parent: Vec::with_capacity(events),
            region_parent: Vec::with_capacity(events),
            def_var: Vec::with_capacity(events),
            deps_off: Vec::with_capacity(events + 1),
            deps: Vec::with_capacity(deps),
            cell_index: Vec::new(),
        };
        c.deps_off.push(0);
        c
    }

    /// Number of stored instances.
    pub fn len(&self) -> usize {
        self.stmt.len()
    }

    /// Whether no instance is stored.
    pub fn is_empty(&self) -> bool {
        self.stmt.is_empty()
    }

    /// Total dependence edges across all instances.
    pub fn deps_len(&self) -> usize {
        self.deps.len()
    }

    /// Appends one event. Ids are assigned densely in push order.
    pub fn push(&mut self, ev: RawEvent<'_>) -> InstId {
        let id = InstId(self.stmt.len() as u32);
        let mut meta = match ev.value {
            None => 0,
            Some(Value::Int(_)) => VALUE_INT,
            Some(Value::Bool(_)) => VALUE_BOOL,
        };
        meta |= match ev.branch {
            None => 0,
            Some(false) => 1 << BRANCH_SHIFT,
            Some(true) => 2 << BRANCH_SHIFT,
        };
        let payload = match ev.value {
            None => 0,
            Some(Value::Int(n)) => n,
            Some(Value::Bool(b)) => b as i64,
        };
        if let Some(cell) = ev.cell_index {
            meta |= HAS_CELL;
            self.cell_index.push((id.0, cell));
        }
        self.stmt.push(ev.stmt);
        self.meta.push(meta);
        self.value.push(payload);
        self.call_depth.push(ev.call_depth);
        self.cd_parent.push(ev.cd_parent.map_or(NONE_U32, |p| p.0));
        self.region_parent
            .push(ev.region_parent.map_or(NONE_U32, |p| p.0));
        self.def_var.push(ev.def_var.map_or(NONE_U32, |v| v.0));
        self.deps.extend_from_slice(ev.deps);
        self.deps_off.push(self.deps.len() as u32);
        id
    }

    /// Appends every event of `other` (used by the chunked recorder).
    /// `other`'s dependence and parent ids must already be absolute;
    /// its own instance ids (the sparse cell column) are rebased.
    pub fn append(&mut self, other: &ColumnarTrace) {
        let id_base = self.stmt.len() as u32;
        self.stmt.extend_from_slice(&other.stmt);
        self.meta.extend_from_slice(&other.meta);
        self.value.extend_from_slice(&other.value);
        self.call_depth.extend_from_slice(&other.call_depth);
        self.cd_parent.extend_from_slice(&other.cd_parent);
        self.region_parent.extend_from_slice(&other.region_parent);
        self.def_var.extend_from_slice(&other.def_var);
        let base = self.deps.len() as u32;
        self.deps.extend_from_slice(&other.deps);
        self.deps_off
            .extend(other.deps_off[1..].iter().map(|&o| o + base));
        self.cell_index
            .extend(other.cell_index.iter().map(|&(i, c)| (i + id_base, c)));
    }

    /// Overwrites the defined-variable column of the most recent event
    /// (the interpreter learns the resolved variable only after the
    /// assignment's side effect lands).
    pub fn set_def_var_last(&mut self, var: VarId) {
        *self.def_var.last_mut().expect("set_def_var on empty trace") = var.0;
    }

    /// The event at `inst`, as a borrowed view.
    ///
    /// # Panics
    ///
    /// Panics if `inst` is out of range.
    pub fn event(&self, inst: InstId) -> EventRef<'_> {
        let i = inst.index();
        let meta = self.meta[i];
        let value = match meta & VALUE_TAG_MASK {
            VALUE_INT => Some(Value::Int(self.value[i])),
            VALUE_BOOL => Some(Value::Bool(self.value[i] != 0)),
            _ => None,
        };
        let branch = match (meta & BRANCH_MASK) >> BRANCH_SHIFT {
            1 => Some(false),
            2 => Some(true),
            _ => None,
        };
        let cell_index = if meta & HAS_CELL != 0 {
            self.cell_of(inst.0)
        } else {
            None
        };
        let deps = &self.deps[self.deps_off[i] as usize..self.deps_off[i + 1] as usize];
        EventRef {
            stmt: self.stmt[i],
            value,
            branch,
            data_deps: deps,
            cd_parent: opt(self.cd_parent[i]),
            region_parent: opt(self.region_parent[i]),
            def_var: match self.def_var[i] {
                NONE_U32 => None,
                v => Some(VarId(v)),
            },
            cell_index,
            call_depth: self.call_depth[i],
        }
    }

    /// The statement of `inst` (cheaper than materializing the full view).
    pub fn stmt_of(&self, inst: InstId) -> StmtId {
        self.stmt[inst.index()]
    }

    /// The variable defined by `inst`, if any.
    pub fn def_var_of(&self, inst: InstId) -> Option<VarId> {
        match self.def_var[inst.index()] {
            NONE_U32 => None,
            v => Some(VarId(v)),
        }
    }

    /// The branch outcome of `inst`, if it is a predicate instance.
    pub fn branch_of(&self, inst: InstId) -> Option<bool> {
        match (self.meta[inst.index()] & BRANCH_MASK) >> BRANCH_SHIFT {
            1 => Some(false),
            2 => Some(true),
            _ => None,
        }
    }

    /// The CD parent of `inst`.
    pub fn cd_parent_of(&self, inst: InstId) -> Option<InstId> {
        opt(self.cd_parent[inst.index()])
    }

    /// The region parent of `inst`.
    pub fn region_parent_of(&self, inst: InstId) -> Option<InstId> {
        opt(self.region_parent[inst.index()])
    }

    /// The dependence list of `inst`.
    pub fn deps_of(&self, inst: InstId) -> &[InstId] {
        let i = inst.index();
        &self.deps[self.deps_off[i] as usize..self.deps_off[i + 1] as usize]
    }

    fn cell_of(&self, inst: u32) -> Option<i64> {
        self.cell_index
            .binary_search_by_key(&inst, |&(i, _)| i)
            .ok()
            .map(|k| self.cell_index[k].1)
    }

    /// A new store holding the first `len` events (a checkpoint prefix):
    /// column-wise truncating copies, no per-event work.
    pub fn clone_prefix(&self, len: usize) -> ColumnarTrace {
        assert!(len <= self.len(), "prefix beyond trace");
        let deps_end = self.deps_off[len] as usize;
        let cells = self
            .cell_index
            .partition_point(|&(i, _)| (i as usize) < len);
        ColumnarTrace {
            stmt: self.stmt[..len].to_vec(),
            meta: self.meta[..len].to_vec(),
            value: self.value[..len].to_vec(),
            call_depth: self.call_depth[..len].to_vec(),
            cd_parent: self.cd_parent[..len].to_vec(),
            region_parent: self.region_parent[..len].to_vec(),
            def_var: self.def_var[..len].to_vec(),
            deps_off: self.deps_off[..len + 1].to_vec(),
            deps: self.deps[..deps_end].to_vec(),
            cell_index: self.cell_index[..cells].to_vec(),
        }
    }

    /// Materializes the legacy owned-event representation (tests and the
    /// equivalence oracle; not a hot path).
    pub fn to_events(&self) -> Vec<Event> {
        (0..self.len() as u32)
            .map(|i| self.event(InstId(i)).to_owned())
            .collect()
    }

    /// Resident column bytes (the `columnar.bytes` observability counter).
    pub fn bytes(&self) -> usize {
        self.stmt.len() * std::mem::size_of::<StmtId>()
            + self.meta.len()
            + self.value.len() * 8
            + self.call_depth.len() * 4
            + self.cd_parent.len() * 4
            + self.region_parent.len() * 4
            + self.def_var.len() * 4
            + self.deps_off.len() * 4
            + self.deps.len() * 4
            + self.cell_index.len() * 12
    }
}

fn opt(raw: u32) -> Option<InstId> {
    if raw == NONE_U32 {
        None
    } else {
        Some(InstId(raw))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_events() -> Vec<Event> {
        let mut a = Event::new(StmtId(0));
        a.value = Some(Value::Bool(true));
        a.branch = Some(true);
        let mut b = Event::new(StmtId(3));
        b.value = Some(Value::Int(-7));
        b.data_deps = vec![InstId(0)];
        b.cd_parent = Some(InstId(0));
        b.region_parent = Some(InstId(0));
        b.def_var = Some(VarId(2));
        b.call_depth = 1;
        let mut c = Event::new(StmtId(4));
        c.cell_index = Some(9);
        c.data_deps = vec![InstId(0), InstId(1)];
        vec![a, b, c]
    }

    fn build(events: &[Event]) -> ColumnarTrace {
        let mut cols = ColumnarTrace::new();
        for e in events {
            cols.push(RawEvent::from(e));
        }
        cols
    }

    #[test]
    fn push_then_view_round_trips() {
        let events = sample_events();
        let cols = build(&events);
        assert_eq!(cols.len(), 3);
        assert_eq!(cols.deps_len(), 3);
        assert_eq!(cols.to_events(), events);
        assert_eq!(cols.event(InstId(1)).data_deps, &[InstId(0)]);
        assert_eq!(cols.event(InstId(2)).cell_index, Some(9));
        assert_eq!(cols.event(InstId(0)).cell_index, None);
        assert!(cols.event(InstId(0)).is_predicate());
    }

    #[test]
    fn prefix_clone_is_column_exact() {
        let events = sample_events();
        let cols = build(&events);
        for len in 0..=events.len() {
            let prefix = cols.clone_prefix(len);
            assert_eq!(prefix.to_events(), events[..len].to_vec());
        }
    }

    #[test]
    fn append_rebases_offsets() {
        let events = sample_events();
        let mut whole = build(&events[..1]);
        let mut tail = ColumnarTrace::new();
        for e in &events[1..] {
            // Recreate with absolute ids (they already are).
            tail.push(RawEvent::from(e));
        }
        whole.append(&tail);
        assert_eq!(whole.to_events(), events);
    }

    #[test]
    fn def_var_patch_hits_last_event() {
        let mut cols = build(&sample_events());
        cols.set_def_var_last(VarId(11));
        assert_eq!(cols.event(InstId(2)).def_var, Some(VarId(11)));
    }

    #[test]
    fn bytes_grow_with_events() {
        let cols = build(&sample_events());
        assert!(cols.bytes() > 0);
        assert!(cols.bytes() < 400);
    }
}
