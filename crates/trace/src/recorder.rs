//! The pipelined trace recorder.
//!
//! The interpreter is a single-threaded producer: it appends compact
//! [`RawEvent`]s into fixed-size columnar chunks. Full chunks travel
//! over a **bounded SPSC queue** (`std::sync::mpsc::sync_channel`, one
//! producer, one consumer) to a builder thread that, *concurrently with
//! execution*, appends them to the global [`ColumnarTrace`] and
//! accumulates the [`TraceIndex`] postings. At [`Recorder::finish`] the
//! tail chunk is shipped, the builder joins, and the Euler tour over the
//! completed CD forest is stamped — so a freshly recorded trace comes
//! back with its query index already built.
//!
//! # Determinism
//!
//! The queue preserves chunk order and a single builder consumes chunks
//! FIFO, so the assembled columns and postings are byte-identical to a
//! serial build no matter how producer and builder interleave in time.
//! Only the *stats* ([`RecorderStats::queue_depth_max`],
//! [`RecorderStats::backpressure_stalls`]) depend on scheduling; they
//! are surfaced as observability counters and are deliberately kept out
//! of the deterministically-compared journal records.
//!
//! Short runs never pay for the pipeline: the builder thread is spawned
//! only once the first chunk fills, so the thousands of small switched
//! re-executions the verifier launches stay single-threaded, and resumed
//! runs (seeded from a checkpoint prefix via [`Recorder::from_prefix`])
//! stay inline as well because their suffixes are typically short.
//!
//! # Failure handling
//!
//! The builder thread is allowed to die. A panic or a dropped receiver
//! surfaces from [`Recorder::finish`] as a structured
//! [`RecorderError`] — never a process abort: the producer marks the
//! pipeline dead on a failed send and keeps accepting events, and
//! `finish` maps the join result instead of unwrapping it. Callers
//! (see `run_traced_capturing`) recover by re-running the deterministic
//! execution with [`Recorder::inline_only`], which never spawns a
//! builder and therefore cannot lose one. Chaos plans
//! ([`crate::supervisor::ChaosPlan`]) inject builder panics, channel
//! disconnects, and queue stalls deterministically at chunk-rotation
//! boundaries to exercise exactly these paths.

use crate::columnar::{ColumnarTrace, RawEvent};
use crate::event::InstId;
use crate::index::{self, TraceIndex};
use crate::supervisor::{self, ChaosSite, RecoveryKind};
use omislice_lang::{StmtId, VarId};
use std::collections::HashMap;
use std::fmt;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::mpsc::{sync_channel, Receiver, SyncSender, TrySendError};
use std::sync::Arc;
use std::thread::JoinHandle;

/// How a pipelined recording can fail. Both variants leave the already
/// shipped chunks unrecoverable (the builder owned them), so the caller
/// re-traces inline; determinism makes the re-run exact.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RecorderError {
    /// The builder thread panicked (its join returned `Err`).
    BuilderPanicked,
    /// The builder's receiver disappeared mid-stream.
    BuilderDisconnected,
}

impl fmt::Display for RecorderError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RecorderError::BuilderPanicked => write!(f, "trace builder thread panicked"),
            RecorderError::BuilderDisconnected => {
                write!(f, "trace builder channel disconnected")
            }
        }
    }
}

impl std::error::Error for RecorderError {}

/// What travels over the chunk queue. The chaos variants let the
/// supervisor kill the builder deterministically from the producer side.
/// `Chunk` is ~100% of traffic, so boxing it to shrink the enum would
/// trade one allocation per 4096 events for nothing.
#[allow(clippy::large_enum_variant)]
enum ChunkMsg {
    Chunk(ColumnarTrace),
    /// Injected fault: the builder panics on receipt.
    Panic,
    /// Injected fault: the builder drops the receiver and exits early.
    Stop,
}

/// Events per chunk. Chunks are the queue's unit of transfer; the tail
/// of the current chunk always stays producer-resident so the
/// interpreter can patch the defined variable of the event it just
/// recorded.
pub(crate) const CHUNK_EVENTS: usize = 4096;

/// Bounded queue capacity, in chunks. A full queue stalls the producer
/// (recorded in [`RecorderStats::backpressure_stalls`]).
const QUEUE_CHUNKS: usize = 8;

/// Scheduling-dependent recorder measurements. Observability-only: these
/// vary run to run and must never feed deterministically-compared
/// output.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RecorderStats {
    /// Deepest the chunk queue ever got (producer-side view).
    pub queue_depth_max: usize,
    /// Times the producer found the queue full and had to block.
    pub backpressure_stalls: u64,
    /// Whether the builder thread was spawned at all.
    pub pipelined: bool,
}

/// Incremental postings accumulator: the builder-thread half of
/// [`TraceIndex`] construction. Chunks absorb in trace order, so the
/// lists match a serial build exactly.
#[derive(Default)]
struct PostingsAcc {
    preds: HashMap<(StmtId, bool), Vec<InstId>>,
    defs: HashMap<VarId, Vec<InstId>>,
}

impl PostingsAcc {
    fn absorb(&mut self, chunk: &ColumnarTrace, base: u32) {
        for i in 0..chunk.len() {
            let inst = InstId(base + i as u32);
            let ev = chunk.event(InstId(i as u32));
            if let Some(b) = ev.branch {
                self.preds.entry((ev.stmt, b)).or_default().push(inst);
            }
            if let Some(v) = ev.def_var {
                self.defs.entry(v).or_default().push(inst);
            }
        }
    }
}

/// What the builder thread hands back when the channel closes.
struct BuiltParts {
    cols: ColumnarTrace,
    postings: PostingsAcc,
}

struct Pipeline {
    tx: SyncSender<ChunkMsg>,
    /// `None` means the builder exited early (injected disconnect).
    handle: JoinHandle<Option<BuiltParts>>,
    depth: Arc<AtomicUsize>,
    /// Set once a send fails: the builder is gone and further chunks
    /// are dropped (they are unrecoverable anyway — the builder owned
    /// the assembled head). `finish` turns this into a
    /// [`RecorderError`].
    dead: bool,
}

/// The streaming recorder the interpreter feeds.
pub struct Recorder {
    /// Completed columns: the checkpoint prefix plus chunks drained
    /// inline while the pipeline was not (or never) running.
    cols: ColumnarTrace,
    /// Postings for everything in `cols` (fresh recordings only; prefix
    /// seeding switches postings accumulation off — see `index_live`).
    postings: PostingsAcc,
    /// The chunk currently being filled.
    chunk: ColumnarTrace,
    /// Events recorded overall (== next instance id).
    total: usize,
    /// Builder thread, once the first chunk fills.
    pipeline: Option<Pipeline>,
    /// Whether postings are being accumulated. Prefix-seeded recorders
    /// skip index prebuilding: their consumers (switched re-executions)
    /// touch at most a few index queries, which the lazy path serves.
    index_live: bool,
    /// Never spawn the builder: chunks drain inline (with postings) on
    /// the producer thread. The recovery mode after a builder failure.
    inline_only: bool,
    /// A scoped deadline expired at a chunk boundary; the interpreter
    /// polls this per event and stops with a budget-style termination.
    deadline_hit: bool,
    stats: RecorderStats,
}

impl Default for Recorder {
    fn default() -> Self {
        Self::new()
    }
}

impl Recorder {
    /// An empty recorder for a fresh run.
    pub fn new() -> Self {
        Recorder {
            cols: ColumnarTrace::new(),
            postings: PostingsAcc::default(),
            chunk: ColumnarTrace::with_capacity(CHUNK_EVENTS, CHUNK_EVENTS),
            total: 0,
            pipeline: None,
            index_live: true,
            inline_only: false,
            deadline_hit: false,
            stats: RecorderStats::default(),
        }
    }

    /// A fresh recorder that never spawns the builder thread: chunks
    /// (and postings) drain inline, so [`Recorder::finish`] cannot fail.
    /// The degraded mode the supervisor falls back to after a builder
    /// failure.
    pub fn inline_only() -> Self {
        Recorder {
            inline_only: true,
            ..Recorder::new()
        }
    }

    /// A recorder seeded with the first `len` events of `base` — the
    /// checkpoint-resume fast path. The prefix is *shared* with the
    /// base trace by reference count ([`ColumnarTrace::share_prefix`]):
    /// seeding is O(1) regardless of checkpoint depth, where even the
    /// column-wise memcpy of the old clone cost megabytes per resumed
    /// verification leaf at production scales.
    pub fn from_prefix(base: &Arc<ColumnarTrace>, len: usize) -> Self {
        Recorder {
            cols: ColumnarTrace::share_prefix(base, len),
            postings: PostingsAcc::default(),
            chunk: ColumnarTrace::with_capacity(CHUNK_EVENTS, CHUNK_EVENTS),
            total: len,
            pipeline: None,
            index_live: false,
            inline_only: false,
            deadline_hit: false,
            stats: RecorderStats::default(),
        }
    }

    /// Whether a scoped deadline expired at a chunk boundary. One field
    /// read: cheap enough for the interpreter's per-event gate.
    pub fn deadline_hit(&self) -> bool {
        self.deadline_hit
    }

    /// Events recorded so far (== the id the next event will get).
    pub fn len(&self) -> usize {
        self.total
    }

    /// Whether nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.total == 0
    }

    /// Records one event, returning its instance id.
    pub fn push(&mut self, ev: RawEvent<'_>) -> InstId {
        if self.chunk.len() == CHUNK_EVENTS {
            self.rotate_chunk();
        }
        self.chunk.push(ev);
        let id = InstId(self.total as u32);
        self.total += 1;
        id
    }

    /// Patches the defined variable of the event just pushed. The tail
    /// chunk is never shipped before the next push, so the target is
    /// always resident.
    pub fn set_def_var_last(&mut self, var: VarId) {
        self.chunk.set_def_var_last(var);
    }

    /// Ships the filled chunk to the builder, spawning it on first use;
    /// prefix-seeded and inline-only recorders drain inline instead. A
    /// failed send marks the pipeline dead instead of panicking; the
    /// loss surfaces from [`Recorder::finish`].
    fn rotate_chunk(&mut self) {
        if supervisor::scoped_deadline_check() {
            self.deadline_hit = true;
        }
        let full = std::mem::replace(
            &mut self.chunk,
            ColumnarTrace::with_capacity(CHUNK_EVENTS, CHUNK_EVENTS),
        );
        if !self.index_live {
            // Resumed run: stay inline.
            self.cols.append(&full);
            return;
        }
        if self.inline_only {
            // Degraded mode: build columns and postings on this thread.
            self.postings.absorb(&full, self.cols.len() as u32);
            self.cols.append(&full);
            return;
        }
        if self.pipeline.is_none() {
            self.spawn_builder();
        }
        let p = self.pipeline.as_mut().expect("just spawned");
        if p.dead {
            return;
        }
        // Injected faults fire at chunk-rotation boundaries, counted
        // per site: kill the builder, drop the receiver, or force the
        // backpressure path.
        if supervisor::chaos_hit(ChaosSite::Builder).is_some() {
            let _ = p.tx.send(ChunkMsg::Panic);
        }
        if supervisor::chaos_hit(ChaosSite::Channel).is_some() {
            let _ = p.tx.send(ChunkMsg::Stop);
        }
        let stall = supervisor::chaos_hit(ChaosSite::Queue).is_some();
        let depth = p.depth.fetch_add(1, Ordering::Relaxed) + 1;
        self.stats.queue_depth_max = self.stats.queue_depth_max.max(depth);
        // One gauge sample per chunk rotation: the builder queue's depth
        // over time becomes a counter track in `--profile-out` traces.
        omislice_obs::profile::counter_sample("recorder.queue.depth", depth as u64);
        if stall {
            supervisor::note_recovery(RecoveryKind::QueueStall);
            self.stats.backpressure_stalls += 1;
            if p.tx.send(ChunkMsg::Chunk(full)).is_err() {
                p.dead = true;
            }
            return;
        }
        match p.tx.try_send(ChunkMsg::Chunk(full)) {
            Ok(()) => {}
            Err(TrySendError::Full(msg)) => {
                self.stats.backpressure_stalls += 1;
                if p.tx.send(msg).is_err() {
                    p.dead = true;
                }
            }
            Err(TrySendError::Disconnected(_)) => {
                p.dead = true;
            }
        }
    }

    fn spawn_builder(&mut self) {
        let (tx, rx): (SyncSender<ChunkMsg>, Receiver<ChunkMsg>) = sync_channel(QUEUE_CHUNKS);
        let depth = Arc::new(AtomicUsize::new(0));
        let consumer_depth = Arc::clone(&depth);
        // Everything recorded so far (the inline head) moves to the
        // builder, which owns column assembly from here on.
        let head = std::mem::take(&mut self.cols);
        let mut postings = std::mem::take(&mut self.postings);
        let handle = std::thread::spawn(move || {
            let mut cols = head;
            loop {
                match rx.recv() {
                    Ok(ChunkMsg::Chunk(chunk)) => {
                        consumer_depth.fetch_sub(1, Ordering::Relaxed);
                        postings.absorb(&chunk, cols.len() as u32);
                        cols.append(&chunk);
                    }
                    Ok(ChunkMsg::Panic) => panic!("injected trace builder panic"),
                    Ok(ChunkMsg::Stop) => return None,
                    Err(_) => break,
                }
            }
            Some(BuiltParts { cols, postings })
        });
        self.stats.pipelined = true;
        self.pipeline = Some(Pipeline {
            tx,
            handle,
            depth,
            dead: false,
        });
    }

    /// Closes the recorder: ships the tail, joins the builder, stamps
    /// the Euler tour. Returns the assembled columns, the query index
    /// when one was built (fresh recordings), and the scheduling stats
    /// — or a [`RecorderError`] when the builder died, in which case the
    /// caller re-traces with [`Recorder::inline_only`]. Inline runs
    /// (never pipelined) cannot fail.
    pub fn finish(
        mut self,
    ) -> Result<(ColumnarTrace, Option<TraceIndex>, RecorderStats), RecorderError> {
        let tail = std::mem::take(&mut self.chunk);
        match self.pipeline.take() {
            Some(p) => {
                let mut dead = p.dead;
                if !tail.is_empty() && !dead {
                    let depth = p.depth.fetch_add(1, Ordering::Relaxed) + 1;
                    self.stats.queue_depth_max = self.stats.queue_depth_max.max(depth);
                    if p.tx.send(ChunkMsg::Chunk(tail)).is_err() {
                        dead = true;
                    }
                }
                drop(p.tx);
                match p.handle.join() {
                    Ok(Some(BuiltParts { cols, mut postings })) if !dead => {
                        let (tin, tout) = index::euler_tour(&cols);
                        let index = TraceIndex::assemble(
                            tin,
                            tout,
                            std::mem::take(&mut postings.preds),
                            std::mem::take(&mut postings.defs),
                        );
                        Ok((cols, Some(index), self.stats))
                    }
                    Ok(_) => Err(RecorderError::BuilderDisconnected),
                    Err(_) => Err(RecorderError::BuilderPanicked),
                }
            }
            None => {
                let mut cols = self.cols;
                if self.index_live {
                    self.postings.absorb(&tail, cols.len() as u32);
                }
                cols.append(&tail);
                if self.index_live && !cols.is_empty() {
                    let (tin, tout) = index::euler_tour(&cols);
                    let index =
                        TraceIndex::assemble(tin, tout, self.postings.preds, self.postings.defs);
                    Ok((cols, Some(index), self.stats))
                } else {
                    Ok((cols, None, self.stats))
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::Event;
    use crate::trace::{Termination, Trace};
    use crate::value::Value;

    /// A synthetic well-formed event stream: a predicate every 7 events,
    /// children hanging off the latest predicate, defs cycling over a
    /// few variables.
    fn synthetic(n: usize) -> Vec<Event> {
        let mut out = Vec::with_capacity(n);
        let mut last_pred: Option<InstId> = None;
        for i in 0..n {
            let mut e = Event::new(StmtId((i % 13) as u32));
            if i % 7 == 0 {
                e.branch = Some(i % 2 == 0);
                e.value = Some(Value::Bool(i % 2 == 0));
                last_pred = Some(InstId(i as u32));
            } else {
                e.cd_parent = last_pred;
                e.region_parent = last_pred;
                e.value = Some(Value::Int(i as i64));
                e.def_var = Some(VarId((i % 5) as u32));
                if i > 0 {
                    e.data_deps = vec![InstId((i - 1) as u32)];
                }
            }
            out.push(e);
        }
        out
    }

    fn record(events: &[Event]) -> (ColumnarTrace, Option<TraceIndex>, RecorderStats) {
        let mut r = Recorder::new();
        for e in events {
            r.push(RawEvent::from(e));
        }
        r.finish().expect("no chaos in scope")
    }

    #[test]
    fn small_runs_stay_inline_and_match_oracle() {
        let events = synthetic(100);
        let (cols, index, stats) = record(&events);
        assert!(!stats.pipelined);
        assert!(index.is_some());
        assert_eq!(cols.to_events(), events);
    }

    #[test]
    fn pipelined_run_matches_oracle_exactly() {
        let events = synthetic(3 * CHUNK_EVENTS + 17);
        let (cols, index, stats) = record(&events);
        assert!(stats.pipelined);
        assert_eq!(cols.to_events(), events);

        // The prebuilt index answers exactly like a fresh serial build.
        let recorded = Trace::from_recorded(cols, vec![], Termination::Normal, index);
        let oracle = Trace::from_parts(events, vec![], Termination::Normal);
        oracle.build_index(1);
        for inst in oracle.insts() {
            let ev = oracle.event(inst);
            if let Some(b) = ev.branch {
                assert_eq!(
                    recorded.index().pred_instances(ev.stmt, b),
                    oracle.index().pred_instances(ev.stmt, b)
                );
            }
            if let Some(v) = ev.def_var {
                assert_eq!(recorded.index().defs_of(v), oracle.index().defs_of(v));
            }
        }
        for u in (0..oracle.len() as u32).step_by(97) {
            for p in (0..oracle.len() as u32).step_by(89) {
                assert_eq!(
                    recorded.cd_depends_on(InstId(u), InstId(p)),
                    oracle.cd_depends_on(InstId(u), InstId(p)),
                );
            }
        }
    }

    #[test]
    fn prefix_seeded_recorder_resumes_mid_chunk() {
        let events = synthetic(CHUNK_EVENTS + 500);
        let (base_cols, _, _) = record(&events);
        let base_cols = Arc::new(base_cols);
        for cut in [0, 1, CHUNK_EVENTS - 1, CHUNK_EVENTS, CHUNK_EVENTS + 499] {
            let mut r = Recorder::from_prefix(&base_cols, cut);
            assert_eq!(r.len(), cut);
            for e in &events[cut..] {
                r.push(RawEvent::from(e));
            }
            let (cols, index, stats) = r.finish().expect("resumed recorders never pipeline");
            assert!(index.is_none());
            assert!(!stats.pipelined);
            assert_eq!(cols.to_events(), events);
        }
    }

    #[test]
    fn builder_panic_surfaces_as_error_not_abort() {
        use crate::supervisor::{ChaosPlan, ChaosScope};
        let plan = ChaosPlan::parse("builder=panic").unwrap();
        let _scope = ChaosScope::install(Some(&plan), None);
        let mut r = Recorder::new();
        for e in synthetic(3 * CHUNK_EVENTS + 17) {
            r.push(RawEvent::from(&e));
        }
        assert_eq!(r.finish().unwrap_err(), RecorderError::BuilderPanicked);
    }

    #[test]
    fn channel_disconnect_surfaces_as_error_not_abort() {
        use crate::supervisor::{ChaosPlan, ChaosScope};
        let plan = ChaosPlan::parse("channel:1=disconnect").unwrap();
        let _scope = ChaosScope::install(Some(&plan), None);
        let mut r = Recorder::new();
        for e in synthetic(4 * CHUNK_EVENTS) {
            r.push(RawEvent::from(&e));
        }
        assert_eq!(r.finish().unwrap_err(), RecorderError::BuilderDisconnected);
    }

    #[test]
    fn queue_stall_chaos_recovers_and_matches_oracle() {
        use crate::supervisor::{take_recovery, ChaosPlan, ChaosScope, RecoveryKind};
        let _ = take_recovery();
        let events = synthetic(3 * CHUNK_EVENTS + 17);
        let cols = {
            let plan = ChaosPlan::parse("queue:1=stall").unwrap();
            let _scope = ChaosScope::install(Some(&plan), None);
            let mut r = Recorder::new();
            for e in &events {
                r.push(RawEvent::from(e));
            }
            let (cols, index, stats) = r.finish().expect("stall is survivable");
            assert!(index.is_some());
            assert!(stats.backpressure_stalls >= 1);
            cols
        };
        assert_eq!(cols.to_events(), events);
        assert_eq!(take_recovery().count(RecoveryKind::QueueStall), 1);
    }

    #[test]
    fn inline_only_recorder_matches_pipelined_output() {
        let events = synthetic(3 * CHUNK_EVENTS + 17);
        let mut r = Recorder::inline_only();
        for e in &events {
            r.push(RawEvent::from(e));
        }
        let (cols, index, stats) = r.finish().expect("inline recorders cannot fail");
        assert!(!stats.pipelined);
        assert_eq!(cols.to_events(), events);
        // The index still gets prebuilt, matching the pipelined run.
        let (p_cols, p_index, _) = record(&events);
        assert_eq!(cols.to_events(), p_cols.to_events());
        let index = index.expect("inline-only builds the index");
        let p_index = p_index.expect("pipelined builds the index");
        for v in 0..5 {
            assert_eq!(index.defs_of(VarId(v)), p_index.defs_of(VarId(v)));
        }
    }

    #[test]
    fn scoped_deadline_expiry_sets_deadline_hit() {
        use crate::supervisor::{take_recovery, ChaosScope, Deadline};
        let _ = take_recovery();
        let d = Deadline::unlimited().with_force_expire(1);
        let _scope = ChaosScope::install(None, Some(&d));
        let mut r = Recorder::new();
        for e in synthetic(3 * CHUNK_EVENTS) {
            if r.deadline_hit() {
                break;
            }
            r.push(RawEvent::from(&e));
        }
        assert!(r.deadline_hit());
        // The run still finishes cleanly with whatever was recorded.
        let (cols, _, _) = r.finish().expect("deadline is cooperative, not fatal");
        assert!(cols.len() <= 2 * CHUNK_EVENTS + 1);
        let _ = take_recovery();
    }

    #[test]
    fn def_var_patch_survives_chunk_rotation() {
        let mut r = Recorder::new();
        let events = synthetic(CHUNK_EVENTS);
        for e in &events {
            r.push(RawEvent::from(e));
        }
        // The chunk is exactly full but not yet shipped: the patch must
        // still land on the final event.
        r.set_def_var_last(VarId(77));
        let (cols, _, _) = r.finish().expect("no chaos in scope");
        assert_eq!(
            cols.event(InstId(CHUNK_EVENTS as u32 - 1)).def_var,
            Some(VarId(77))
        );
    }
}
