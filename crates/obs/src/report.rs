//! The one stderr reporter for human-readable diagnostics.
//!
//! Everything a command prints *for a human* — `--stats` tables,
//! warnings, progress notes — goes through a [`Reporter`] so stdout
//! stays machine-clean (slices, reports, JSON, metrics only). The
//! reporter writes sectioned `key : value` lines in the same visual
//! style the stats `Display` impls already use.

use std::io::Write;

/// Writes human-readable observability output to one sink (stderr by
/// default).
pub struct Reporter<W: Write> {
    out: W,
}

impl Reporter<std::io::Stderr> {
    /// The standard reporter: stderr.
    pub fn stderr() -> Self {
        Reporter {
            out: std::io::stderr(),
        }
    }
}

impl<W: Write> Reporter<W> {
    /// A reporter over any sink (tests use a `Vec<u8>`).
    pub fn new(out: W) -> Self {
        Reporter { out }
    }

    /// Starts a titled section.
    pub fn section(&mut self, title: &str) {
        let _ = writeln!(self.out, "{title}:");
    }

    /// Writes one preformatted block (e.g. a stats `Display` output),
    /// indented two spaces per line.
    pub fn block(&mut self, text: &str) {
        for line in text.lines() {
            let _ = writeln!(self.out, "  {line}");
        }
    }

    /// Writes one line verbatim.
    pub fn line(&mut self, text: &str) {
        let _ = writeln!(self.out, "{text}");
    }

    /// Writes a warning with the tool prefix.
    pub fn warn(&mut self, text: &str) {
        let _ = writeln!(self.out, "omislice: warning: {text}");
    }

    /// Consumes the reporter, returning the sink.
    pub fn into_inner(self) -> W {
        self.out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sections_blocks_and_warnings() {
        let mut r = Reporter::new(Vec::new());
        r.section("verification engine");
        r.block("verifications : 3\ncache hits : 1");
        r.warn("2 input() call(s) ran past the end of the input stream");
        let text = String::from_utf8(r.into_inner()).unwrap();
        assert_eq!(
            text,
            "verification engine:\n  verifications : 3\n  cache hits : 1\nomislice: warning: 2 input() call(s) ran past the end of the input stream\n"
        );
    }
}
