//! Hierarchical span timing with a global on/off switch.
//!
//! The recorder is a process-wide static that is **disabled by default**.
//! Every instrumentation site first asks [`enabled`] — a single relaxed
//! atomic load — so a disabled recorder compiles the hot paths down to
//! near-no-ops. When enabled, spans and counters append to a per-thread
//! buffer with no cross-thread synchronization; buffers register
//! themselves once per thread and [`drain`] merges them
//! deterministically (sorted by start time, then by longest-first, then
//! by name), so the merged view does not depend on which thread
//! finished last.

use std::cell::RefCell;
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicBool, AtomicU32, Ordering};
use std::sync::{Arc, Mutex, OnceLock};
use std::time::Instant;

static ENABLED: AtomicBool = AtomicBool::new(false);

/// Whether the recorder is currently capturing spans and counters.
///
/// This is the guard every hot path checks; it is one relaxed atomic
/// load, so leaving the recorder disabled costs nothing measurable.
#[inline(always)]
pub fn enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// Turns the recorder on or off. Spans opened while enabled still close
/// correctly after a disable.
pub fn set_enabled(on: bool) {
    ENABLED.store(on, Ordering::Relaxed);
}

/// The process-wide monotonic time base: all span timestamps are
/// nanoseconds since the first observation.
fn epoch() -> Instant {
    static EPOCH: OnceLock<Instant> = OnceLock::new();
    *EPOCH.get_or_init(Instant::now)
}

/// Nanoseconds since the recorder epoch — shared with the timeline
/// profiler so span and scheduler-event timestamps align on one axis.
pub(crate) fn now_ns() -> u64 {
    epoch().elapsed().as_nanos() as u64
}

/// One closed span.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpanRecord {
    /// The phase name (`"parse"`, `"verify"`, …).
    pub name: &'static str,
    /// A per-candidate or per-iteration index, when the span is one of a
    /// family (e.g. the per-candidate children under `verify`).
    pub index: Option<u64>,
    /// Nesting depth within this thread (0 = top level).
    pub depth: u32,
    /// Registration ordinal of the recording thread.
    pub thread: u32,
    /// Start, nanoseconds since the recorder epoch.
    pub start_ns: u64,
    /// End, nanoseconds since the recorder epoch.
    pub end_ns: u64,
}

#[derive(Default)]
struct LocalBuf {
    spans: Vec<SpanRecord>,
    counters: Vec<(&'static str, u64)>,
    open_depth: u32,
}

struct ThreadSlot {
    ordinal: u32,
    buf: Mutex<LocalBuf>,
}

fn registry() -> &'static Mutex<Vec<Arc<ThreadSlot>>> {
    static REGISTRY: OnceLock<Mutex<Vec<Arc<ThreadSlot>>>> = OnceLock::new();
    REGISTRY.get_or_init(|| Mutex::new(Vec::new()))
}

static NEXT_ORDINAL: AtomicU32 = AtomicU32::new(0);

thread_local! {
    static SLOT: RefCell<Option<Arc<ThreadSlot>>> = const { RefCell::new(None) };
}

fn with_local<R>(f: impl FnOnce(u32, &mut LocalBuf) -> R) -> R {
    SLOT.with(|cell| {
        let mut slot = cell.borrow_mut();
        let slot = slot.get_or_insert_with(|| {
            let s = Arc::new(ThreadSlot {
                ordinal: NEXT_ORDINAL.fetch_add(1, Ordering::Relaxed),
                buf: Mutex::new(LocalBuf::default()),
            });
            registry().lock().unwrap().push(Arc::clone(&s));
            s
        });
        // Uncontended in steady state: only drain() ever takes the lock
        // from another thread.
        let mut buf = slot.buf.lock().unwrap();
        f(slot.ordinal, &mut buf)
    })
}

/// RAII guard for one span; records the span on drop. Inert (and free)
/// when the recorder was disabled at open time.
pub struct SpanGuard {
    open: Option<OpenSpan>,
}

struct OpenSpan {
    name: &'static str,
    index: Option<u64>,
    depth: u32,
    thread: u32,
    start_ns: u64,
}

/// Opens a span named `name`. Returns an inert guard when the recorder
/// is disabled.
#[inline]
pub fn span(name: &'static str) -> SpanGuard {
    span_indexed(name, None)
}

/// Opens a span that is one of a family (`verify.candidate` #i).
#[inline]
pub fn span_indexed(name: &'static str, index: Option<u64>) -> SpanGuard {
    if !enabled() {
        return SpanGuard { open: None };
    }
    let (depth, thread) = with_local(|ordinal, buf| {
        let d = buf.open_depth;
        buf.open_depth += 1;
        (d, ordinal)
    });
    SpanGuard {
        open: Some(OpenSpan {
            name,
            index,
            depth,
            thread,
            start_ns: now_ns(),
        }),
    }
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        let Some(open) = self.open.take() else {
            return;
        };
        let end_ns = now_ns();
        with_local(|_, buf| {
            buf.open_depth = buf.open_depth.saturating_sub(1);
            buf.spans.push(SpanRecord {
                name: open.name,
                index: open.index,
                depth: open.depth,
                thread: open.thread,
                start_ns: open.start_ns,
                end_ns,
            });
        });
    }
}

/// Adds `n` to the named counter. Call sites on hot paths should batch
/// (one call per run or chunk, not per event) and guard with
/// [`enabled`]; the function itself is also a no-op when disabled.
#[inline]
pub fn counter_add(name: &'static str, n: u64) {
    if !enabled() || n == 0 {
        return;
    }
    with_local(|_, buf| {
        if let Some(slot) = buf.counters.iter_mut().find(|(k, _)| *k == name) {
            slot.1 += n;
        } else {
            buf.counters.push((name, n));
        }
    });
}

/// Raises the named counter to at least `n` (a high-water mark, e.g. a
/// queue-depth maximum). Same batching guidance as [`counter_add`].
#[inline]
pub fn counter_max(name: &'static str, n: u64) {
    if !enabled() || n == 0 {
        return;
    }
    with_local(|_, buf| {
        if let Some(slot) = buf.counters.iter_mut().find(|(k, _)| *k == name) {
            slot.1 = slot.1.max(n);
        } else {
            buf.counters.push((name, n));
        }
    });
}

/// Number of log2 duration buckets in [`SpanAgg`]: bucket `i` counts
/// durations in `[2^(i-1), 2^i)` ns, with the last bucket absorbing
/// everything from ~9 minutes up.
pub const DURATION_BUCKETS: usize = 40;

/// Aggregate statistics for one span name.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SpanAgg {
    /// Closed spans with this name.
    pub count: u64,
    /// Summed wall time, nanoseconds.
    pub total_ns: u64,
    /// Shortest instance, nanoseconds.
    pub min_ns: u64,
    /// Longest instance, nanoseconds.
    pub max_ns: u64,
    /// Log2-bucketed duration histogram (see [`DURATION_BUCKETS`]);
    /// powers the p50/p90/p99 estimates in `--metrics`.
    pub buckets: [u64; DURATION_BUCKETS],
}

impl Default for SpanAgg {
    fn default() -> Self {
        SpanAgg {
            count: 0,
            total_ns: 0,
            min_ns: u64::MAX,
            max_ns: 0,
            buckets: [0; DURATION_BUCKETS],
        }
    }
}

impl SpanAgg {
    fn bucket(dur_ns: u64) -> usize {
        ((64 - dur_ns.leading_zeros()) as usize).min(DURATION_BUCKETS - 1)
    }

    /// Estimated `q`-quantile duration (`0.0 < q <= 1.0`): walks the
    /// cumulative histogram to the bucket containing the target rank and
    /// returns its upper bound, clamped to the observed `[min, max]`
    /// range so single-sample aggregates are exact.
    pub fn quantile_ns(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let target = ((self.count as f64) * q).ceil().max(1.0) as u64;
        let mut seen = 0u64;
        for (i, &n) in self.buckets.iter().enumerate() {
            seen += n;
            if seen >= target {
                let upper = if i == 0 { 0 } else { 1u64 << i };
                return upper.clamp(self.min_ns.min(self.max_ns), self.max_ns);
            }
        }
        self.max_ns
    }

    /// Median duration estimate, nanoseconds.
    pub fn p50_ns(&self) -> u64 {
        self.quantile_ns(0.50)
    }

    /// 90th-percentile duration estimate, nanoseconds.
    pub fn p90_ns(&self) -> u64 {
        self.quantile_ns(0.90)
    }

    /// 99th-percentile duration estimate, nanoseconds.
    pub fn p99_ns(&self) -> u64 {
        self.quantile_ns(0.99)
    }
}

/// Everything the recorder captured since the last drain.
#[derive(Debug, Clone, Default)]
pub struct SpanReport {
    /// Closed spans, merged deterministically across threads.
    pub spans: Vec<SpanRecord>,
    /// Counter totals, sorted by name.
    pub counters: BTreeMap<&'static str, u64>,
}

impl SpanReport {
    /// Per-name aggregates (count/total/min/max), sorted by name.
    pub fn histogram(&self) -> BTreeMap<&'static str, SpanAgg> {
        let mut out: BTreeMap<&'static str, SpanAgg> = BTreeMap::new();
        for s in &self.spans {
            let dur = s.end_ns.saturating_sub(s.start_ns);
            let agg = out.entry(s.name).or_default();
            agg.count += 1;
            agg.total_ns += dur;
            agg.min_ns = agg.min_ns.min(dur);
            agg.max_ns = agg.max_ns.max(dur);
            agg.buckets[SpanAgg::bucket(dur)] += 1;
        }
        out
    }

    /// Per-name *self* time — wall time exclusive of nested child spans,
    /// reconstructed from the per-thread timeline. This is what the
    /// sweep's per-phase attribution columns report: a regression in
    /// `verify` self time is scheduler overhead, not candidate work.
    pub fn self_times(&self) -> BTreeMap<&'static str, u64> {
        let mut out: BTreeMap<&'static str, i128> = BTreeMap::new();
        let mut stacks: BTreeMap<u32, Vec<(&'static str, u64)>> = BTreeMap::new();
        for s in &self.spans {
            let stack = stacks.entry(s.thread).or_default();
            while stack.last().is_some_and(|(_, end)| *end <= s.start_ns) {
                stack.pop();
            }
            let dur = s.end_ns.saturating_sub(s.start_ns) as i128;
            *out.entry(s.name).or_insert(0) += dur;
            if let Some((parent, _)) = stack.last() {
                *out.entry(parent).or_insert(0) -= dur;
            }
            stack.push((s.name, s.end_ns));
        }
        out.into_iter().map(|(k, v)| (k, v.max(0) as u64)).collect()
    }

    /// Total wall time of spans named `name`, nanoseconds.
    pub fn total_ns(&self, name: &str) -> u64 {
        self.spans
            .iter()
            .filter(|s| s.name == name)
            .map(|s| s.end_ns.saturating_sub(s.start_ns))
            .sum()
    }
}

/// Collects and clears every thread's buffer. The merge order is
/// deterministic for a fixed set of recorded spans: sorted by start
/// time, then longest first, then by name, then by thread ordinal.
pub fn drain() -> SpanReport {
    let slots: Vec<Arc<ThreadSlot>> = registry().lock().unwrap().clone();
    let mut spans = Vec::new();
    let mut counters: BTreeMap<&'static str, u64> = BTreeMap::new();
    for slot in slots {
        let mut buf = slot.buf.lock().unwrap();
        spans.append(&mut buf.spans);
        for (name, n) in buf.counters.drain(..) {
            *counters.entry(name).or_insert(0) += n;
        }
    }
    spans.sort_by(|a, b| {
        a.start_ns
            .cmp(&b.start_ns)
            .then(b.end_ns.cmp(&a.end_ns))
            .then(a.name.cmp(b.name))
            .then(a.thread.cmp(&b.thread))
    });
    SpanReport { spans, counters }
}

/// Discards everything captured so far without reporting it.
pub fn reset() {
    let _ = drain();
}

#[cfg(test)]
pub(crate) mod tests {
    use super::*;

    // The recorder is process-global; every test serializes on this lock
    // so enable/drain cycles do not interleave. Tests in other modules of
    // this crate must do the same via `test_guard()`.
    pub(crate) fn test_guard() -> std::sync::MutexGuard<'static, ()> {
        static LOCK: Mutex<()> = Mutex::new(());
        LOCK.lock().unwrap_or_else(|e| e.into_inner())
    }

    #[test]
    fn disabled_recorder_captures_nothing() {
        let _g = test_guard();
        set_enabled(false);
        reset();
        {
            let _s = span("parse");
            counter_add("tracer.events", 10);
        }
        let report = drain();
        assert!(report.spans.is_empty());
        assert!(report.counters.is_empty());
    }

    #[test]
    fn spans_nest_and_merge() {
        let _g = test_guard();
        set_enabled(true);
        reset();
        {
            let _outer = span("verify");
            for i in 0..3u64 {
                let _inner = span_indexed("verify.candidate", Some(i));
            }
        }
        counter_add("frontier.claims", 2);
        counter_add("frontier.claims", 3);
        set_enabled(false);
        let report = drain();
        assert_eq!(report.spans.len(), 4);
        let outer = report.spans.iter().find(|s| s.name == "verify").unwrap();
        assert_eq!(outer.depth, 0);
        let inner: Vec<_> = report
            .spans
            .iter()
            .filter(|s| s.name == "verify.candidate")
            .collect();
        assert_eq!(inner.len(), 3);
        for s in &inner {
            assert_eq!(s.depth, 1);
            assert!(s.start_ns >= outer.start_ns && s.end_ns <= outer.end_ns);
        }
        assert_eq!(report.counters.get("frontier.claims"), Some(&5));
        let hist = report.histogram();
        assert_eq!(hist["verify.candidate"].count, 3);
        assert!(hist["verify"].total_ns >= hist["verify.candidate"].total_ns);
        assert!(report.total_ns("verify") >= 1);
    }

    #[test]
    fn quantiles_walk_log_buckets_and_clamp_to_range() {
        let mut agg = SpanAgg::default();
        // 90 fast spans near 1 µs, 10 slow near 1 ms.
        for _ in 0..90 {
            let dur = 1_000u64;
            agg.count += 1;
            agg.total_ns += dur;
            agg.min_ns = agg.min_ns.min(dur);
            agg.max_ns = agg.max_ns.max(dur);
            agg.buckets[SpanAgg::bucket(dur)] += 1;
        }
        for _ in 0..10 {
            let dur = 1_000_000u64;
            agg.count += 1;
            agg.total_ns += dur;
            agg.max_ns = agg.max_ns.max(dur);
            agg.buckets[SpanAgg::bucket(dur)] += 1;
        }
        let p50 = agg.p50_ns();
        let p99 = agg.p99_ns();
        assert!((1_000..4_096).contains(&p50), "p50 = {p50}");
        assert!((524_288..=1_000_000).contains(&p99), "p99 = {p99}");
        assert_eq!(SpanAgg::default().p50_ns(), 0, "empty aggregate");
        // A single sample is exact: clamped to [min, max].
        let mut one = SpanAgg {
            count: 1,
            total_ns: 777,
            min_ns: 777,
            max_ns: 777,
            ..Default::default()
        };
        one.buckets[SpanAgg::bucket(777)] += 1;
        assert_eq!(one.p50_ns(), 777);
        assert_eq!(one.p99_ns(), 777);
    }

    #[test]
    fn self_times_exclude_children() {
        let mk = |name, start, end| SpanRecord {
            name,
            index: None,
            depth: 0,
            thread: 0,
            start_ns: start,
            end_ns: end,
        };
        let report = SpanReport {
            spans: vec![
                mk("locate", 0, 1000),
                mk("verify", 100, 900),
                mk("verify.candidate", 200, 700),
            ],
            counters: BTreeMap::new(),
        };
        let self_times = report.self_times();
        assert_eq!(self_times["locate"], 200);
        assert_eq!(self_times["verify"], 300);
        assert_eq!(self_times["verify.candidate"], 500);
    }

    #[test]
    fn threads_merge_deterministically() {
        let _g = test_guard();
        set_enabled(true);
        reset();
        std::thread::scope(|s| {
            for _ in 0..4 {
                s.spawn(|| {
                    let _sp = span("worker");
                    counter_add("work", 1);
                });
            }
        });
        set_enabled(false);
        let report = drain();
        assert_eq!(report.spans.len(), 4);
        assert_eq!(report.counters.get("work"), Some(&4));
        // Sorted by start time.
        for w in report.spans.windows(2) {
            assert!(w[0].start_ns <= w[1].start_ns);
        }
    }
}
