//! Timeline profiler: per-worker scheduler event rings and exporters.
//!
//! The span layer ([`crate::span`]) answers *how long each phase took*;
//! this module answers *where the scheduler spent its time*: which
//! worker ran which verification candidate, when work was stolen, where
//! wave boundaries fell, which memo probes hit, and how checkpoint
//! bytes and the recorder queue evolved. Events land in a **fixed-
//! capacity per-thread ring**: the hot path never allocates past the
//! preallocated buffer and never blocks — a full ring or a contended
//! slot (only `drain` takes the lock from another thread) degrades to a
//! counted drop, so profiling a saturated scheduler costs a bounded,
//! predictable amount.
//!
//! Three consumers sit on top of one drained [`ProfileReport`]:
//!
//! * [`chrome_trace`] — Chrome trace-event JSON (Perfetto /
//!   `chrome://tracing`), one track per verify worker plus counter
//!   tracks for memo bytes, checkpoint bytes, and recorder queue depth;
//! * [`flamegraph`] — collapsed-stack text derived from the span
//!   hierarchy, one `stack;frames value` line per self-time bucket;
//! * [`render_profile`] — an aggregated text report (per-worker
//!   utilization, steal/task ratios, wave occupancy) for the stderr
//!   reporter.
//!
//! Timelines are inherently nondeterministic, so determinism tests
//! compare [`normalized_structure`] instead: timestamps and worker
//! assignments are stripped and only the *scheduling-independent* event
//! kinds (tasks, waves, memo probes, marks) are kept, sorted by stable
//! ids. That projection is byte-identical across `--jobs`, resume
//! modes, and schedulers.

use crate::json::Json;
use crate::span::SpanReport;
use std::cell::RefCell;
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};

/// Events recorded on the coordinating thread (wave boundaries, memo
/// probes, counter samples) use this sentinel instead of a worker index.
pub const WORKER_MAIN: u32 = u32::MAX;

/// Per-thread ring capacity, in events. Sized so a sed-scale locate run
/// (a few thousand candidate executions) fits with an order of
/// magnitude to spare; overflow is counted, never grown.
pub const RING_CAPACITY: usize = 1 << 14;

/// What a timeline event describes.
///
/// The discriminant order is load-bearing: [`normalized_structure`]
/// keeps only the kinds whose presence and ids are deterministic across
/// jobs × resume × scheduler (`Task`, `Wave`, `MemoHit`, `MemoMiss`,
/// `Mark`). `Steal` depends on scheduling, `Capture`/`CaptureSkip` on
/// resume mode and capture planning, `Evict` on memo pressure, and
/// `Counter` samples on timing — all excluded from the normalization.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum EventKind {
    /// A unit of scheduled work (candidate re-execution); `ts_ns` is the
    /// start and `value` the end timestamp.
    Task,
    /// A wave boundary in `verify_all`.
    Wave,
    /// A memo probe that found its switched run.
    MemoHit,
    /// A memo probe that missed (the candidate joins the batch).
    MemoMiss,
    /// A deterministic point marker (e.g. one locate iteration).
    Mark,
    /// A worker took work from another worker's queue.
    Steal,
    /// A checkpoint was captured for this candidate.
    Capture,
    /// A planned capture was skipped (cheap prefix or existing donor).
    CaptureSkip,
    /// A memo eviction reclaimed `value` entries.
    Evict,
    /// A sampled gauge (`value` = the sample): queue depth, live bytes.
    Counter,
}

impl EventKind {
    /// Stable lowercase label used by the exporters.
    pub fn label(self) -> &'static str {
        match self {
            EventKind::Task => "task",
            EventKind::Wave => "wave",
            EventKind::MemoHit => "memo_hit",
            EventKind::MemoMiss => "memo_miss",
            EventKind::Mark => "mark",
            EventKind::Steal => "steal",
            EventKind::Capture => "capture",
            EventKind::CaptureSkip => "capture_skip",
            EventKind::Evict => "evict",
            EventKind::Counter => "counter",
        }
    }
}

/// One timeline event. 48 bytes; the ring holds [`RING_CAPACITY`] of
/// them per thread.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Event {
    /// What happened.
    pub kind: EventKind,
    /// Event family (`"verify.candidate"`, `"verify.wave"`, …).
    pub name: &'static str,
    /// Worker index within the batch, or [`WORKER_MAIN`].
    pub worker: u32,
    /// Stable id: `batch << 16 | position` for tasks and waves, the
    /// instruction id for memo probes, the iteration number for marks.
    pub id: u64,
    /// Kind-specific payload: end timestamp for tasks, sampled value for
    /// counters, reclaimed entries for evictions, otherwise 0.
    pub value: u64,
    /// Nanoseconds since the shared recorder epoch.
    pub ts_ns: u64,
}

static PROFILING: AtomicBool = AtomicBool::new(false);
static NEXT_SEQ: AtomicU64 = AtomicU64::new(0);

/// Whether the timeline profiler is capturing. One relaxed load; every
/// emit site checks this first, so a disabled profiler is ≈ free.
#[inline(always)]
pub fn profiling() -> bool {
    PROFILING.load(Ordering::Relaxed)
}

/// Turns the timeline profiler on or off (independent of the span
/// recorder switch).
pub fn set_profiling(on: bool) {
    PROFILING.store(on, Ordering::Relaxed);
}

/// Nanoseconds since the shared recorder epoch — the same clock span
/// timestamps use, so tracks and spans align in one trace.
#[inline]
pub fn timestamp_ns() -> u64 {
    crate::span::now_ns()
}

/// Allocates the next batch/sequence number for stable event ids. The
/// counter only advances while profiling, and [`profile_reset`] rewinds
/// it, so two profiled runs of the same workload assign identical ids.
pub fn next_seq() -> u64 {
    NEXT_SEQ.fetch_add(1, Ordering::Relaxed)
}

struct RingSlot {
    /// Preallocated to `RING_CAPACITY`; push checks `len == capacity`
    /// and the buffer is never grown.
    buf: Mutex<Vec<Event>>,
    drops: AtomicU64,
}

fn rings() -> &'static Mutex<Vec<Arc<RingSlot>>> {
    static RINGS: OnceLock<Mutex<Vec<Arc<RingSlot>>>> = OnceLock::new();
    RINGS.get_or_init(|| Mutex::new(Vec::new()))
}

thread_local! {
    static RING: RefCell<Option<Arc<RingSlot>>> = const { RefCell::new(None) };
}

/// Appends one event to this thread's ring. Never blocks and never
/// reallocates: a contended slot (drain in progress) or a full ring
/// increments the drop counter instead.
#[inline]
pub fn record(kind: EventKind, name: &'static str, worker: u32, id: u64, value: u64) {
    if !profiling() {
        return;
    }
    record_at(kind, name, worker, id, value, timestamp_ns());
}

fn record_at(kind: EventKind, name: &'static str, worker: u32, id: u64, value: u64, ts_ns: u64) {
    RING.with(|cell| {
        let mut slot = cell.borrow_mut();
        let slot = slot.get_or_insert_with(|| {
            let s = Arc::new(RingSlot {
                buf: Mutex::new(Vec::with_capacity(RING_CAPACITY)),
                drops: AtomicU64::new(0),
            });
            rings().lock().unwrap().push(Arc::clone(&s));
            s
        });
        match slot.buf.try_lock() {
            Ok(mut buf) => {
                if buf.len() < RING_CAPACITY {
                    buf.push(Event {
                        kind,
                        name,
                        worker,
                        id,
                        value,
                        ts_ns,
                    });
                    debug_assert!(buf.capacity() == RING_CAPACITY, "ring must never grow");
                } else {
                    slot.drops.fetch_add(1, Ordering::Relaxed);
                }
            }
            // Only drain() contends; dropping one event beats stalling a
            // verify worker behind an exporter.
            Err(_) => {
                slot.drops.fetch_add(1, Ordering::Relaxed);
            }
        };
    });
}

/// Records a completed task: `ts_ns` = start, `value` = end.
#[inline]
pub fn task(name: &'static str, worker: u32, id: u64, start_ns: u64, end_ns: u64) {
    if !profiling() {
        return;
    }
    record_at(EventKind::Task, name, worker, id, end_ns, start_ns);
}

/// Records a sampled gauge value (queue depth, live checkpoint bytes).
#[inline]
pub fn counter_sample(name: &'static str, value: u64) {
    record(EventKind::Counter, name, WORKER_MAIN, 0, value);
}

/// Records a deterministic point marker (wave boundary, iteration).
#[inline]
pub fn mark(kind: EventKind, name: &'static str, id: u64) {
    record(kind, name, WORKER_MAIN, id, 0);
}

/// Everything the profiler captured since the last drain.
#[derive(Debug, Clone, Default)]
pub struct ProfileReport {
    /// Events merged across threads, sorted by
    /// `(ts_ns, kind, name, id, worker)` so the merge order does not
    /// depend on which thread drained last.
    pub events: Vec<Event>,
    /// Events lost to full rings or drain contention.
    pub drops: u64,
}

/// Collects and clears every thread's ring.
pub fn profile_drain() -> ProfileReport {
    let slots: Vec<Arc<RingSlot>> = rings().lock().unwrap().clone();
    let mut events = Vec::new();
    let mut drops = 0;
    for slot in slots {
        let mut buf = slot.buf.lock().unwrap();
        events.append(&mut buf);
        // Keep the no-realloc invariant for the next recording window.
        buf.reserve_exact(RING_CAPACITY);
        drops += slot.drops.swap(0, Ordering::Relaxed);
    }
    events.sort_by(|a, b| {
        a.ts_ns
            .cmp(&b.ts_ns)
            .then(a.kind.cmp(&b.kind))
            .then(a.name.cmp(b.name))
            .then(a.id.cmp(&b.id))
            .then(a.worker.cmp(&b.worker))
    });
    ProfileReport { events, drops }
}

/// Discards everything captured so far and rewinds the sequence
/// counter, so the next profiled run assigns ids from zero again. Call
/// before each run whose normalized structure will be compared.
pub fn profile_reset() {
    let _ = profile_drain();
    NEXT_SEQ.store(0, Ordering::Relaxed);
}

/// Per-worker aggregate over one report.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WorkerAgg {
    /// Worker index, or [`WORKER_MAIN`] for the coordinating thread.
    pub worker: u32,
    /// Tasks this worker completed.
    pub tasks: u64,
    /// Tasks it took from another worker's queue.
    pub steals: u64,
    /// Summed task wall time, nanoseconds.
    pub busy_ns: u64,
}

/// The journal-facing summary: small, scheduling-dependent, and emitted
/// only when profiling was on (clean journals stay byte-unchanged).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ProfileSummary {
    /// Total events captured.
    pub events: u64,
    /// Events lost to ring overflow or drain contention.
    pub drops: u64,
    /// Wall window spanned by task events, nanoseconds.
    pub window_ns: u64,
    /// Per-worker aggregates, sorted by worker index (main last).
    pub workers: Vec<WorkerAgg>,
}

impl ProfileSummary {
    /// `busy / window` for one worker row; 0 when the window is empty.
    pub fn utilization(&self, w: &WorkerAgg) -> f64 {
        if self.window_ns == 0 {
            0.0
        } else {
            w.busy_ns as f64 / self.window_ns as f64
        }
    }
}

impl ProfileReport {
    /// The `[min start, max end]` window over task events, nanoseconds.
    pub fn task_window_ns(&self) -> u64 {
        let mut lo = u64::MAX;
        let mut hi = 0;
        for e in self.events.iter().filter(|e| e.kind == EventKind::Task) {
            lo = lo.min(e.ts_ns);
            hi = hi.max(e.value);
        }
        hi.saturating_sub(if lo == u64::MAX { hi } else { lo })
    }

    /// Aggregates per-worker tasks, steals, and busy time.
    pub fn summarize(&self) -> ProfileSummary {
        let mut workers: BTreeMap<u32, WorkerAgg> = BTreeMap::new();
        for e in &self.events {
            match e.kind {
                EventKind::Task => {
                    let w = workers.entry(e.worker).or_insert(WorkerAgg {
                        worker: e.worker,
                        tasks: 0,
                        steals: 0,
                        busy_ns: 0,
                    });
                    w.tasks += 1;
                    w.busy_ns += e.value.saturating_sub(e.ts_ns);
                }
                EventKind::Steal => {
                    let w = workers.entry(e.worker).or_insert(WorkerAgg {
                        worker: e.worker,
                        tasks: 0,
                        steals: 0,
                        busy_ns: 0,
                    });
                    w.steals += 1;
                }
                _ => {}
            }
        }
        // BTreeMap order puts WORKER_MAIN (u32::MAX) last.
        ProfileSummary {
            events: self.events.len() as u64,
            drops: self.drops,
            window_ns: self.task_window_ns(),
            workers: workers.into_values().collect(),
        }
    }
}

/// The deterministic projection of a profile: only scheduling-
/// independent kinds, worker and timestamps stripped, sorted by
/// `(kind, name, id)`. Two runs of the same workload — any `--jobs`,
/// resume mode, or scheduler — produce byte-identical output.
pub fn normalized_structure(report: &ProfileReport) -> String {
    let mut lines: Vec<String> = report
        .events
        .iter()
        .filter(|e| {
            matches!(
                e.kind,
                EventKind::Task
                    | EventKind::Wave
                    | EventKind::MemoHit
                    | EventKind::MemoMiss
                    | EventKind::Mark
            )
        })
        .map(|e| format!("{} {} {}", e.kind.label(), e.name, e.id))
        .collect();
    lines.sort();
    lines.dedup();
    lines.join("\n")
}

fn us(ns: u64) -> Json {
    Json::Float(ns as f64 / 1000.0)
}

fn meta_event(tid: u64, which: &str, name: String) -> Json {
    Json::object([
        ("ph", Json::str("M")),
        ("pid", Json::UInt(0)),
        ("tid", Json::UInt(tid)),
        ("name", Json::str(which)),
        ("args", Json::object([("name", Json::Str(name))])),
    ])
}

/// Offset separating span-thread tracks from worker tracks in the
/// Chrome trace (worker w → tid w+1, span thread t → tid 1000+t).
const SPAN_TID_BASE: u64 = 1000;

/// Builds the Chrome trace-event document: `{"traceEvents": [...]}`,
/// loadable in Perfetto or `chrome://tracing`. Track layout:
///
/// * tid 0 `scheduler` — events from the coordinating thread: spine
///   tasks as `X` slices, waves / memo probes / marks as instants;
/// * tid w+1 `verify-worker-w` — one track per worker: candidate
///   executions as `X` slices, steals as instants;
/// * tid 1000+t `span-thread-t` — the span hierarchy as `X` slices;
/// * counter tracks (`ph:"C"`) for each sampled or high-water gauge.
pub fn chrome_trace(profile: &ProfileReport, spans: &SpanReport) -> Json {
    let mut events: Vec<Json> = Vec::new();
    events.push(meta_event(0, "process_name", "omislice".into()));
    events.push(meta_event(0, "thread_name", "scheduler".into()));

    let mut worker_ids: Vec<u32> = profile
        .events
        .iter()
        .filter(|e| e.worker != WORKER_MAIN)
        .map(|e| e.worker)
        .collect();
    worker_ids.sort_unstable();
    worker_ids.dedup();
    for &w in &worker_ids {
        events.push(meta_event(
            w as u64 + 1,
            "thread_name",
            format!("verify-worker-{w}"),
        ));
    }
    let mut span_threads: Vec<u32> = spans.spans.iter().map(|s| s.thread).collect();
    span_threads.sort_unstable();
    span_threads.dedup();
    for &t in &span_threads {
        events.push(meta_event(
            SPAN_TID_BASE + t as u64,
            "thread_name",
            format!("span-thread-{t}"),
        ));
    }

    for e in &profile.events {
        let tid = if e.worker == WORKER_MAIN {
            0
        } else {
            e.worker as u64 + 1
        };
        match e.kind {
            EventKind::Task => events.push(Json::object([
                ("ph", Json::str("X")),
                ("pid", Json::UInt(0)),
                ("tid", Json::UInt(tid)),
                ("name", Json::str(e.name)),
                ("ts", us(e.ts_ns)),
                ("dur", us(e.value.saturating_sub(e.ts_ns))),
                ("args", Json::object([("id", Json::UInt(e.id))])),
            ])),
            EventKind::Counter => events.push(Json::object([
                ("ph", Json::str("C")),
                ("pid", Json::UInt(0)),
                ("name", Json::str(e.name)),
                ("ts", us(e.ts_ns)),
                ("args", Json::object([("value", Json::UInt(e.value))])),
            ])),
            _ => events.push(Json::object([
                ("ph", Json::str("i")),
                ("s", Json::str("t")),
                ("pid", Json::UInt(0)),
                ("tid", Json::UInt(tid)),
                ("name", Json::str(e.name)),
                ("ts", us(e.ts_ns)),
                (
                    "args",
                    Json::object([
                        ("kind", Json::str(e.kind.label())),
                        ("id", Json::UInt(e.id)),
                        ("value", Json::UInt(e.value)),
                    ]),
                ),
            ])),
        }
    }

    for s in &spans.spans {
        let mut args = vec![("depth", Json::UInt(s.depth as u64))];
        if let Some(i) = s.index {
            args.push(("index", Json::UInt(i)));
        }
        events.push(Json::object([
            ("ph", Json::str("X")),
            ("pid", Json::UInt(0)),
            ("tid", Json::UInt(SPAN_TID_BASE + s.thread as u64)),
            ("name", Json::str(s.name)),
            ("ts", us(s.start_ns)),
            ("dur", us(s.end_ns.saturating_sub(s.start_ns))),
            ("args", Json::object(args)),
        ]));
    }

    // High-water counters from the span layer become one-point counter
    // tracks so Perfetto shows the memo/checkpoint byte ceilings. The
    // two verify byte gauges are part of the document schema
    // (validate_profile requires them), so they are zero-filled even
    // when the run never reached the verify phase.
    let mut byte_tracks: BTreeMap<&'static str, u64> =
        BTreeMap::from([("verify.memo.bytes", 0), ("verify.checkpoint.bytes", 0)]);
    for (name, &v) in &spans.counters {
        if name.ends_with(".bytes") {
            byte_tracks.insert(*name, v);
        }
    }
    for (name, v) in byte_tracks {
        events.push(Json::object([
            ("ph", Json::str("C")),
            ("pid", Json::UInt(0)),
            ("name", Json::str(name)),
            ("ts", us(0)),
            ("args", Json::object([("value", Json::UInt(v))])),
        ]));
    }

    Json::object([("traceEvents", Json::Array(events))])
}

/// Collapsed-stack flamegraph text from the span hierarchy: one
/// `omislice;parent;child self_time_ns` line per stack, sorted, ready
/// for `flamegraph.pl` or speedscope. Self time is exclusive of
/// children (a parent's value shrinks by each nested span).
pub fn flamegraph(spans: &SpanReport) -> String {
    let mut totals: BTreeMap<String, i128> = BTreeMap::new();
    let mut stacks: BTreeMap<u32, Vec<(String, u64)>> = BTreeMap::new();
    for s in &spans.spans {
        let stack = stacks.entry(s.thread).or_default();
        while stack.last().is_some_and(|(_, end)| *end <= s.start_ns) {
            stack.pop();
        }
        let parent_key = match stack.last() {
            Some((key, _)) => key.clone(),
            None => "omislice".to_string(),
        };
        let key = format!("{parent_key};{}", s.name);
        let dur = s.end_ns.saturating_sub(s.start_ns) as i128;
        *totals.entry(key.clone()).or_insert(0) += dur;
        // The parent was credited its full duration when it opened;
        // carve this child's share back out so values are self time.
        *totals.entry(parent_key).or_insert(0) -= dur;
        stack.push((key, s.end_ns));
    }
    let mut out = String::new();
    for (key, v) in &totals {
        if *v > 0 {
            out.push_str(&format!("{key} {v}\n"));
        }
    }
    out
}

/// Renders the aggregated text report: per-worker utilization,
/// steal/task ratio, wave occupancy histogram, and drop counts.
pub fn render_profile(report: &ProfileReport) -> String {
    let summary = report.summarize();
    let mut out = String::new();
    out.push_str(&format!(
        "events {}  drops {}  window {:.3} ms\n",
        summary.events,
        summary.drops,
        summary.window_ns as f64 / 1e6
    ));
    let mut total_tasks = 0u64;
    let mut total_steals = 0u64;
    for w in &summary.workers {
        let label = if w.worker == WORKER_MAIN {
            "main".to_string()
        } else {
            format!("worker {}", w.worker)
        };
        out.push_str(&format!(
            "{label:>9}: {:>5} tasks  {:>4} steals  busy {:>9.3} ms  util {:>5.1}%\n",
            w.tasks,
            w.steals,
            w.busy_ns as f64 / 1e6,
            summary.utilization(w) * 100.0
        ));
        total_tasks += w.tasks;
        total_steals += w.steals;
    }
    if total_tasks > 0 {
        out.push_str(&format!(
            "steal/task ratio: {:.3}\n",
            total_steals as f64 / total_tasks as f64
        ));
    }
    // Wave occupancy: tasks per batch sequence (the id's high bits).
    let mut per_wave: BTreeMap<u64, u64> = BTreeMap::new();
    for e in report.events.iter().filter(|e| e.kind == EventKind::Task) {
        *per_wave.entry(e.id >> 16).or_insert(0) += 1;
    }
    if !per_wave.is_empty() {
        let mut occupancy: BTreeMap<u64, u64> = BTreeMap::new();
        for &n in per_wave.values() {
            // Log2 buckets: 1, 2-3, 4-7, 8-15, …
            let bucket = 63 - n.max(1).leading_zeros() as u64;
            *occupancy.entry(bucket).or_insert(0) += 1;
        }
        out.push_str("wave occupancy (tasks -> waves):\n");
        for (bucket, waves) in &occupancy {
            let lo = 1u64 << bucket;
            let hi = (1u64 << (bucket + 1)) - 1;
            if lo == hi {
                out.push_str(&format!("  {lo:>7}: {waves}\n"));
            } else {
                out.push_str(&format!("  {lo:>3}-{hi:>3}: {waves}\n"));
            }
        }
    }
    out
}

/// What [`check_chrome_trace`] verified about a document.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct ProfileCheck {
    /// `verify-worker-N` tracks found (sorted by worker index).
    pub worker_tracks: Vec<String>,
    /// Counter-track names found.
    pub counter_tracks: Vec<String>,
    /// Total `X` events.
    pub slices: usize,
    /// Σ per-worker busy / window over worker-track slices. Bounded by
    /// the worker count for any physically possible schedule.
    pub utilization_sum: f64,
}

/// Validates a Chrome trace-event document produced by [`chrome_trace`]:
/// the `traceEvents` array exists, every event is well-formed for its
/// phase, every tid that carries events has a `thread_name`, and worker
/// tracks are named contiguously from `verify-worker-0`. Returns the
/// check summary (the CI gate additionally asserts
/// `utilization_sum <= jobs`).
pub fn check_chrome_trace(doc: &Json) -> Result<ProfileCheck, String> {
    let Json::Object(top) = doc else {
        return Err("top level is not an object".into());
    };
    let Some(Json::Array(events)) = top.iter().find(|(k, _)| k == "traceEvents").map(|(_, v)| v)
    else {
        return Err("missing traceEvents array".into());
    };
    let mut thread_names: BTreeMap<u64, String> = BTreeMap::new();
    let mut used_tids: Vec<u64> = Vec::new();
    let mut counter_tracks: Vec<String> = Vec::new();
    let mut slices = 0usize;
    // Per-tid (busy_us, min_ts, max_end) over worker-track slices.
    let mut busy: BTreeMap<u64, (f64, f64, f64)> = BTreeMap::new();
    for (i, e) in events.iter().enumerate() {
        let Json::Object(obj) = e else {
            return Err(format!("event {i} is not an object"));
        };
        let field = |k: &str| obj.iter().find(|(n, _)| n == k).map(|(_, v)| v);
        let num = |k: &str| -> Option<f64> {
            match field(k) {
                Some(Json::Float(f)) => Some(*f),
                Some(Json::UInt(u)) => Some(*u as f64),
                Some(Json::Int(n)) => Some(*n as f64),
                _ => None,
            }
        };
        let Some(Json::Str(ph)) = field("ph") else {
            return Err(format!("event {i}: missing ph"));
        };
        let Some(Json::Str(name)) = field("name") else {
            return Err(format!("event {i}: missing name"));
        };
        match ph.as_str() {
            "M" => {
                if name == "thread_name" {
                    let tid = num("tid").ok_or_else(|| format!("event {i}: missing tid"))? as u64;
                    let Some(Json::Object(args)) = field("args") else {
                        return Err(format!("event {i}: thread_name without args"));
                    };
                    let Some((_, Json::Str(tname))) = args.iter().find(|(k, _)| k == "name") else {
                        return Err(format!("event {i}: thread_name without args.name"));
                    };
                    thread_names.insert(tid, tname.clone());
                }
            }
            "X" => {
                let ts = num("ts").ok_or_else(|| format!("event {i}: X without ts"))?;
                let dur = num("dur").ok_or_else(|| format!("event {i}: X without dur"))?;
                let tid = num("tid").ok_or_else(|| format!("event {i}: X without tid"))? as u64;
                used_tids.push(tid);
                slices += 1;
                if (1..SPAN_TID_BASE).contains(&tid) {
                    let slot = busy.entry(tid).or_insert((0.0, f64::MAX, 0.0));
                    slot.0 += dur;
                    slot.1 = slot.1.min(ts);
                    slot.2 = slot.2.max(ts + dur);
                }
            }
            "C" => {
                if !counter_tracks.contains(name) {
                    counter_tracks.push(name.clone());
                }
                num("ts").ok_or_else(|| format!("event {i}: C without ts"))?;
            }
            "i" | "I" => {
                num("ts").ok_or_else(|| format!("event {i}: instant without ts"))?;
                used_tids.push(num("tid").unwrap_or(0.0) as u64);
            }
            other => return Err(format!("event {i}: unknown phase {other:?}")),
        }
    }
    used_tids.sort_unstable();
    used_tids.dedup();
    for tid in &used_tids {
        if !thread_names.contains_key(tid) {
            return Err(format!("tid {tid} carries events but has no thread_name"));
        }
    }
    let mut worker_tracks: Vec<(u64, String)> = thread_names
        .iter()
        .filter(|(tid, name)| {
            (1..SPAN_TID_BASE).contains(*tid) && name.starts_with("verify-worker-")
        })
        .map(|(tid, name)| (*tid, name.clone()))
        .collect();
    worker_tracks.sort_by_key(|(tid, _)| *tid);
    for (i, (tid, name)) in worker_tracks.iter().enumerate() {
        let expect = format!("verify-worker-{i}");
        if *name != expect || *tid != i as u64 + 1 {
            return Err(format!(
                "worker track {i}: expected tid {} named {expect:?}, found tid {tid} named {name:?}",
                i + 1
            ));
        }
    }
    let window = busy
        .values()
        .fold((f64::MAX, 0.0f64), |(lo, hi), (_, s, e)| {
            (lo.min(*s), hi.max(*e))
        });
    let utilization_sum = if busy.is_empty() || window.1 <= window.0 {
        0.0
    } else {
        busy.values().map(|(b, _, _)| b).sum::<f64>() / (window.1 - window.0)
    };
    counter_tracks.sort();
    Ok(ProfileCheck {
        worker_tracks: worker_tracks.into_iter().map(|(_, n)| n).collect(),
        counter_tracks,
        slices,
        utilization_sum,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::span::tests::test_guard;
    use crate::span::SpanRecord;

    fn reset_all() {
        set_profiling(true);
        profile_reset();
    }

    #[test]
    fn disabled_profiler_records_nothing() {
        let _g = test_guard();
        set_profiling(false);
        profile_reset();
        record(EventKind::Mark, "noop", WORKER_MAIN, 1, 0);
        task("t", 0, 1, 0, 10);
        assert!(profile_drain().events.is_empty());
    }

    #[test]
    fn ring_overflow_degrades_to_counted_drops() {
        let _g = test_guard();
        reset_all();
        for i in 0..(RING_CAPACITY as u64 + 100) {
            record(EventKind::Mark, "m", WORKER_MAIN, i, 0);
        }
        set_profiling(false);
        let report = profile_drain();
        assert_eq!(report.events.len(), RING_CAPACITY);
        assert_eq!(report.drops, 100);
        // Events that fit were kept in order; the overflow was dropped,
        // not spilled into a reallocated buffer.
        assert_eq!(report.events[0].id, 0);
        assert_eq!(report.events.last().unwrap().id, RING_CAPACITY as u64 - 1);
        // The next window starts clean.
        set_profiling(true);
        record(EventKind::Mark, "m2", WORKER_MAIN, 7, 0);
        set_profiling(false);
        let next = profile_drain();
        assert_eq!(next.events.len(), 1);
        assert_eq!(next.drops, 0);
    }

    #[test]
    fn summarize_attributes_busy_time_per_worker() {
        let _g = test_guard();
        reset_all();
        task("verify.candidate", 0, 1, 100, 400);
        task("verify.candidate", 1, 2, 100, 300);
        record(EventKind::Steal, "verify.steal", 1, 2, 0);
        set_profiling(false);
        let report = profile_drain();
        let summary = report.summarize();
        assert_eq!(summary.events, 3);
        assert_eq!(summary.window_ns, 300);
        assert_eq!(summary.workers.len(), 2);
        assert_eq!(summary.workers[0].busy_ns, 300);
        assert_eq!(summary.workers[1].busy_ns, 200);
        assert_eq!(summary.workers[1].steals, 1);
        assert!(summary.utilization(&summary.workers[0]) > 0.99);
    }

    #[test]
    fn normalization_strips_workers_and_time_keeps_stable_ids() {
        let _g = test_guard();
        reset_all();
        task("verify.candidate", 3, 42, 500, 900);
        mark(EventKind::Wave, "verify.wave", 1);
        mark(EventKind::MemoHit, "verify.memo", 7);
        record(EventKind::Steal, "verify.steal", 2, 42, 0);
        counter_sample("queue.depth", 5);
        set_profiling(false);
        let a = normalized_structure(&profile_drain());
        // Same structure, different workers/timestamps/steals.
        set_profiling(true);
        profile_reset();
        mark(EventKind::MemoHit, "verify.memo", 7);
        task("verify.candidate", 0, 42, 100, 200);
        mark(EventKind::Wave, "verify.wave", 1);
        set_profiling(false);
        let b = normalized_structure(&profile_drain());
        assert_eq!(a, b);
        assert!(a.contains("task verify.candidate 42"));
        assert!(!a.contains("steal"));
        assert!(!a.contains("counter"));
    }

    #[test]
    fn chrome_trace_round_trips_through_checker() {
        let _g = test_guard();
        reset_all();
        task("verify.candidate", 0, 1, 1000, 5000);
        task("verify.candidate", 1, 2, 1000, 3000);
        record(EventKind::Steal, "verify.steal", 1, 2, 0);
        mark(EventKind::Wave, "verify.wave", 0);
        counter_sample("recorder.queue.depth", 3);
        set_profiling(false);
        let profile = profile_drain();
        let spans = SpanReport {
            spans: vec![SpanRecord {
                name: "verify",
                index: None,
                depth: 0,
                thread: 0,
                start_ns: 500,
                end_ns: 6000,
            }],
            counters: [("verify.memo.bytes", 4096u64)].into_iter().collect(),
        };
        let doc = chrome_trace(&profile, &spans);
        let text = doc.to_string();
        let parsed = crate::json::parse(&text).expect("exporter emits valid JSON");
        let check = check_chrome_trace(&parsed).expect("well-formed trace");
        assert_eq!(
            check.worker_tracks,
            vec!["verify-worker-0", "verify-worker-1"]
        );
        assert!(check
            .counter_tracks
            .contains(&"recorder.queue.depth".to_string()));
        assert!(check
            .counter_tracks
            .contains(&"verify.memo.bytes".to_string()));
        assert!(check.slices >= 3);
        assert!(check.utilization_sum <= 2.0 + 1e-9);
    }

    #[test]
    fn flamegraph_produces_self_time_stacks() {
        let mk = |name, thread, start, end, depth| SpanRecord {
            name,
            index: None,
            depth,
            thread,
            start_ns: start,
            end_ns: end,
        };
        let spans = SpanReport {
            spans: vec![
                mk("locate", 0, 0, 1000, 0),
                mk("verify", 0, 100, 900, 1),
                mk("verify.candidate", 0, 200, 600, 2),
            ],
            counters: BTreeMap::new(),
        };
        let fg = flamegraph(&spans);
        assert!(fg.contains("omislice;locate 200\n"), "{fg}");
        assert!(fg.contains("omislice;locate;verify 400\n"), "{fg}");
        assert!(
            fg.contains("omislice;locate;verify;verify.candidate 400\n"),
            "{fg}"
        );
    }

    #[test]
    fn render_profile_reports_utilization_and_waves() {
        let _g = test_guard();
        reset_all();
        let seq = next_seq();
        for i in 0..4u64 {
            task(
                "verify.candidate",
                (i % 2) as u32,
                (seq << 16) | i,
                i * 10,
                i * 10 + 8,
            );
        }
        set_profiling(false);
        let report = profile_drain();
        let text = render_profile(&report);
        assert!(text.contains("worker 0"), "{text}");
        assert!(text.contains("worker 1"), "{text}");
        assert!(text.contains("wave occupancy"), "{text}");
    }
}
