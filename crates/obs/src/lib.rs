//! # omislice-obs
//!
//! Structured observability for the omislice pipeline: hierarchical
//! span timing, the locate event journal, and metrics exporters.
//!
//! The crate is a **leaf** — it depends on nothing in the workspace, so
//! every layer (interpreter, slicers, aligner, locator, CLI, bench) can
//! instrument itself without dependency cycles. The semantic record
//! types (verdicts, run outcomes, edge kinds) are carried as strings
//! defined by the journal schema ([`journal::SCHEMA`]); the producing
//! crates own the conversion.
//!
//! Three design rules:
//!
//! 1. **Disabled means free.** The global [`Recorder`](span) is off by
//!    default; every instrumentation site guards on [`enabled`] (one
//!    relaxed atomic load). Hot paths — tracer event append, CSR fill,
//!    frontier claims — batch their counter updates so the enabled cost
//!    is one call per run or chunk, not per event.
//! 2. **Deterministic content.** Journals contain timing only in fields
//!    ending `_ns` (and the `spans` record); everything else is
//!    byte-identical across `--jobs` values and resume modes, which
//!    [`journal::strip_timing`] makes checkable.
//! 3. **Machine output on stdout, human output on stderr.** The
//!    [`Reporter`] is the single stderr sink for `--stats` tables and
//!    warnings.

pub mod journal;
pub mod json;
pub mod metrics;
pub mod profile;
pub mod report;
pub mod span;

pub use journal::{
    strip_timing, to_jsonl, write_jsonl, Validator, EDGE_KINDS, OUTCOMES, RECORD_TYPES, SCHEMA,
    VERDICTS,
};
pub use json::{parse, Json};
pub use metrics::{Metric, MetricSet, KNOWN_COUNTERS};
pub use profile::{profiling, set_profiling, ProfileReport, ProfileSummary};
pub use report::Reporter;
pub use span::{
    counter_add, counter_max, drain, enabled, reset, set_enabled, span, span_indexed, SpanAgg,
    SpanGuard, SpanRecord, SpanReport,
};
