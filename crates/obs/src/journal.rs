//! The locate event journal: schema constants, the JSONL writer, and a
//! validator.
//!
//! A journal is one JSONL file describing one `locate` run:
//!
//! * a `header` record — schema version, program/benchmark label, the
//!   engine configuration (jobs, resume, mode);
//! * one `iteration` record per Algorithm 2 expansion round — the chosen
//!   use, every `VerifyDep` request with its verdict and run outcome,
//!   the edges added by kind, budget escalations, and the pruned-slice
//!   size before/after the round;
//! * a `summary` record — the final counters of the run;
//! * an optional `recovery` record — present only when the pipeline
//!   absorbed injected or real faults (or its deadline expired), with
//!   the `recovery.*` counter totals and the ordered event list;
//! * an optional `profile` record — present only when the timeline
//!   profiler was on (`--profile-out`), with per-worker utilization
//!   aggregates and ring drop counts;
//! * an optional trailing `spans` record — the merged span timeline and
//!   counter totals of the recorder.
//!
//! Everything except fields ending in `_ns` (and the `spans` and
//! `profile` records, which describe timing and scheduling) is
//! deterministic: the journal is byte-identical across `--jobs` values
//! and resume modes once timing fields are stripped with
//! [`strip_timing`].

use crate::json::{parse, Json};
use std::io::Write;

/// The schema identifier every journal header carries.
pub const SCHEMA: &str = "omislice-obs/v1";

/// The record types a journal may contain, in order of appearance.
pub const RECORD_TYPES: [&str; 6] = [
    "header",
    "iteration",
    "summary",
    "recovery",
    "profile",
    "spans",
];

/// Valid `verdict` strings.
pub const VERDICTS: [&str; 3] = ["not-id", "id", "strong-id"];

/// Valid `outcome` strings (crashes carry a `crashed:<kind>` suffix).
pub const OUTCOMES: [&str; 5] = [
    "completed",
    "budget-exhausted",
    "crashed",
    "switch-not-landed",
    "checkpoint-invalid",
];

/// Valid `kind` strings on an added edge.
pub const EDGE_KINDS: [&str; 4] = ["data", "control", "implicit", "strong-implicit"];

/// Writes `records` as one JSONL document.
pub fn write_jsonl(mut w: impl Write, records: &[Json]) -> std::io::Result<()> {
    for r in records {
        writeln!(w, "{r}")?;
    }
    Ok(())
}

/// Renders `records` as a JSONL string.
pub fn to_jsonl(records: &[Json]) -> String {
    let mut out = String::new();
    for r in records {
        out.push_str(&r.to_string());
        out.push('\n');
    }
    out
}

/// Strips the timing content from a journal text: removes every object
/// key ending in `_ns` and drops `spans` and `profile` records entirely
/// (a profile's worker assignments and drop counts are scheduling
/// facts, not run facts). What remains must be byte-identical across
/// thread counts and resume modes.
pub fn strip_timing(jsonl: &str) -> Result<String, String> {
    let mut out = String::new();
    for (i, line) in jsonl.lines().enumerate() {
        if line.trim().is_empty() {
            continue;
        }
        let mut v = parse(line).map_err(|e| format!("line {}: {e}", i + 1))?;
        if matches!(
            v.get("type").and_then(Json::as_str),
            Some("spans") | Some("profile")
        ) {
            continue;
        }
        v.strip_keys(&|k| k.ends_with("_ns"));
        out.push_str(&v.to_string());
        out.push('\n');
    }
    Ok(out)
}

/// Streaming journal validator: feed records (or whole documents) in
/// order; every violation is reported with its record number.
#[derive(Debug, Default)]
pub struct Validator {
    records: usize,
    saw_header: bool,
    saw_summary: bool,
    iterations: usize,
    last_iter: Option<i64>,
}

impl Validator {
    /// Creates a fresh validator.
    pub fn new() -> Self {
        Validator::default()
    }

    /// Number of `iteration` records seen.
    pub fn iterations(&self) -> usize {
        self.iterations
    }

    /// Total records seen.
    pub fn records(&self) -> usize {
        self.records
    }

    /// Validates one full JSONL document.
    pub fn check_document(jsonl: &str) -> Result<Validator, String> {
        let mut v = Validator::new();
        for (i, line) in jsonl.lines().enumerate() {
            if line.trim().is_empty() {
                continue;
            }
            let record = parse(line).map_err(|e| format!("line {}: not valid JSON: {e}", i + 1))?;
            v.check_record(&record)
                .map_err(|e| format!("line {}: {e}", i + 1))?;
        }
        v.finish()?;
        Ok(v)
    }

    /// Validates the next record.
    pub fn check_record(&mut self, record: &Json) -> Result<(), String> {
        self.records += 1;
        let ty = record
            .get("type")
            .and_then(Json::as_str)
            .ok_or("missing `type`")?;
        if !RECORD_TYPES.contains(&ty) {
            return Err(format!("unknown record type `{ty}`"));
        }
        if self.records == 1 && ty != "header" {
            return Err(format!("first record must be `header`, got `{ty}`"));
        }
        if self.saw_summary && ty == "iteration" {
            return Err("iteration record after summary".to_string());
        }
        match ty {
            "header" => {
                if self.saw_header {
                    return Err("duplicate header".to_string());
                }
                self.saw_header = true;
                let schema = record
                    .get("schema")
                    .and_then(Json::as_str)
                    .ok_or("header: missing `schema`")?;
                if schema != SCHEMA {
                    return Err(format!("header: unknown schema `{schema}`"));
                }
                for key in ["program", "jobs", "resume", "mode"] {
                    if record.get(key).is_none() {
                        return Err(format!("header: missing `{key}`"));
                    }
                }
            }
            "iteration" => self.check_iteration(record)?,
            "summary" => {
                if self.saw_summary {
                    return Err("duplicate summary".to_string());
                }
                self.saw_summary = true;
                for key in [
                    "found",
                    "iterations",
                    "verifications",
                    "reexecutions",
                    "expanded_edges",
                    "ips_dynamic",
                ] {
                    if record.get(key).is_none() {
                        return Err(format!("summary: missing `{key}`"));
                    }
                }
                let n = record.get("iterations").and_then(Json::as_int);
                if n != Some(self.iterations as i64) {
                    return Err(format!(
                        "summary: `iterations` {n:?} does not match the {} iteration records",
                        self.iterations
                    ));
                }
            }
            "recovery" => {
                if !self.saw_summary {
                    return Err("recovery record before summary".to_string());
                }
                if record
                    .get("deadline_expired")
                    .and_then(Json::as_bool)
                    .is_none()
                {
                    return Err("recovery: missing boolean `deadline_expired`".to_string());
                }
                if !matches!(record.get("counters"), Some(Json::Object(_))) {
                    return Err("recovery: missing `counters` object".to_string());
                }
                if record.get("events").and_then(Json::as_array).is_none() {
                    return Err("recovery: missing `events` array".to_string());
                }
            }
            "profile" => {
                if !self.saw_summary {
                    return Err("profile record before summary".to_string());
                }
                for key in ["events", "drops"] {
                    if record.get(key).and_then(Json::as_int).is_none() {
                        return Err(format!("profile: missing integer `{key}`"));
                    }
                }
                let workers = record
                    .get("workers")
                    .and_then(Json::as_array)
                    .ok_or("profile: missing `workers` array")?;
                for (i, w) in workers.iter().enumerate() {
                    for key in ["tasks", "steals", "busy_ns"] {
                        if w.get(key).and_then(Json::as_int).is_none() {
                            return Err(format!("profile: workers[{i}] missing integer `{key}`"));
                        }
                    }
                    if w.get("worker").is_none() {
                        return Err(format!("profile: workers[{i}] missing `worker`"));
                    }
                }
            }
            "spans" => self.check_spans(record)?,
            _ => unreachable!("type vetted above"),
        }
        Ok(())
    }

    fn check_iteration(&mut self, record: &Json) -> Result<(), String> {
        self.iterations += 1;
        for key in [
            "iter",
            "use",
            "requests",
            "edges_added",
            "slice_before",
            "slice_after",
        ] {
            if record.get(key).is_none() {
                return Err(format!("iteration: missing `{key}`"));
            }
        }
        let iter = record
            .get("iter")
            .and_then(Json::as_int)
            .ok_or("iteration: `iter` is not an integer")?;
        if let Some(prev) = self.last_iter {
            if iter != prev + 1 {
                return Err(format!(
                    "iteration: `iter` went {prev} -> {iter} (must increase by 1)"
                ));
            }
        } else if iter != 1 {
            return Err(format!("iteration: first `iter` is {iter}, expected 1"));
        }
        self.last_iter = Some(iter);

        let use_rec = record.get("use").unwrap();
        for key in ["inst", "stmt"] {
            if use_rec.get(key).and_then(Json::as_int).is_none() {
                return Err(format!("iteration: `use.{key}` missing or not an integer"));
            }
        }

        let requests = record
            .get("requests")
            .and_then(Json::as_array)
            .ok_or("iteration: `requests` is not an array")?;
        for (i, r) in requests.iter().enumerate() {
            for key in ["p", "p_stmt", "p_occ", "u", "var"] {
                if r.get(key).is_none() {
                    return Err(format!("iteration: requests[{i}] missing `{key}`"));
                }
            }
            let verdict = r
                .get("verdict")
                .and_then(Json::as_str)
                .ok_or_else(|| format!("iteration: requests[{i}] missing `verdict`"))?;
            if !VERDICTS.contains(&verdict) {
                return Err(format!(
                    "iteration: requests[{i}] has invalid verdict `{verdict}`"
                ));
            }
            let outcome = r
                .get("outcome")
                .and_then(Json::as_str)
                .ok_or_else(|| format!("iteration: requests[{i}] missing `outcome`"))?;
            let base = outcome.split(':').next().unwrap_or(outcome);
            if !OUTCOMES.contains(&base) {
                return Err(format!(
                    "iteration: requests[{i}] has invalid outcome `{outcome}`"
                ));
            }
            let phase = r.get("phase").and_then(Json::as_str).unwrap_or("primary");
            if phase != "primary" && phase != "secondary" {
                return Err(format!(
                    "iteration: requests[{i}] has invalid phase `{phase}`"
                ));
            }
        }

        let edges = record
            .get("edges_added")
            .and_then(Json::as_array)
            .ok_or("iteration: `edges_added` is not an array")?;
        for (i, e) in edges.iter().enumerate() {
            for key in ["from", "to"] {
                if e.get(key).and_then(Json::as_int).is_none() {
                    return Err(format!(
                        "iteration: edges_added[{i}] missing integer `{key}`"
                    ));
                }
            }
            let kind = e
                .get("kind")
                .and_then(Json::as_str)
                .ok_or_else(|| format!("iteration: edges_added[{i}] missing `kind`"))?;
            if !EDGE_KINDS.contains(&kind) {
                return Err(format!(
                    "iteration: edges_added[{i}] has invalid kind `{kind}`"
                ));
            }
        }
        Ok(())
    }

    /// Span records are timelines: every span must close after it opens,
    /// and within one thread spans must nest monotonically (a span that
    /// starts inside another must end inside it).
    fn check_spans(&self, record: &Json) -> Result<(), String> {
        let spans = record
            .get("spans")
            .and_then(Json::as_array)
            .ok_or("spans: missing `spans` array")?;
        let mut stacks: std::collections::HashMap<i64, Vec<(u64, u64)>> =
            std::collections::HashMap::new();
        for (i, s) in spans.iter().enumerate() {
            let name = s
                .get("name")
                .and_then(Json::as_str)
                .ok_or_else(|| format!("spans[{i}]: missing `name`"))?;
            let start = s
                .get("start_ns")
                .and_then(Json::as_int)
                .ok_or_else(|| format!("spans[{i}]: missing `start_ns`"))?
                as u64;
            let end =
                s.get("end_ns")
                    .and_then(Json::as_int)
                    .ok_or_else(|| format!("spans[{i}]: missing `end_ns`"))? as u64;
            if end < start {
                return Err(format!(
                    "spans[{i}] `{name}`: end {end} before start {start}"
                ));
            }
            let thread = s.get("thread").and_then(Json::as_int).unwrap_or(0);
            let stack = stacks.entry(thread).or_default();
            // Spans arrive sorted by start time; pop everything that
            // ended before this one starts, then require proper nesting
            // within whatever is still open.
            while stack.last().is_some_and(|&(_, e)| e <= start) {
                stack.pop();
            }
            if let Some(&(ps, pe)) = stack.last() {
                if end > pe {
                    return Err(format!(
                        "spans[{i}] `{name}`: [{start},{end}] not nested in open span [{ps},{pe}]"
                    ));
                }
            }
            stack.push((start, end));
        }
        Ok(())
    }

    /// Final whole-document checks.
    pub fn finish(&self) -> Result<(), String> {
        if !self.saw_header {
            return Err("journal has no header record".to_string());
        }
        if !self.saw_summary {
            return Err("journal has no summary record".to_string());
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn minimal() -> String {
        concat!(
            r#"{"type":"header","schema":"omislice-obs/v1","program":"p","jobs":1,"resume":"auto","mode":"edge"}"#,
            "\n",
            r#"{"type":"iteration","iter":1,"elapsed_ns":12,"use":{"inst":5,"stmt":2},"requests":[{"p":3,"p_stmt":1,"p_occ":0,"u":5,"var":"x","verdict":"id","outcome":"completed","phase":"primary"}],"edges_added":[{"from":5,"to":3,"kind":"implicit"}],"slice_before":4,"slice_after":3}"#,
            "\n",
            r#"{"type":"summary","found":true,"iterations":1,"verifications":1,"reexecutions":1,"expanded_edges":1,"ips_dynamic":3}"#,
            "\n",
        )
        .to_string()
    }

    #[test]
    fn accepts_a_minimal_journal() {
        let v = Validator::check_document(&minimal()).unwrap();
        assert_eq!(v.iterations(), 1);
        assert_eq!(v.records(), 3);
    }

    #[test]
    fn rejects_schema_violations() {
        for (needle, replacement, expect) in [
            ("omislice-obs/v1", "bogus/v9", "unknown schema"),
            (
                "\"verdict\":\"id\"",
                "\"verdict\":\"maybe\"",
                "invalid verdict",
            ),
            (
                "\"outcome\":\"completed\"",
                "\"outcome\":\"vanished\"",
                "invalid outcome",
            ),
            (
                "\"kind\":\"implicit\"",
                "\"kind\":\"psychic\"",
                "invalid kind",
            ),
            ("\"iter\":1", "\"iter\":3", "expected 1"),
            ("\"iterations\":1", "\"iterations\":7", "does not match"),
        ] {
            let doc = minimal().replace(needle, replacement);
            let err = Validator::check_document(&doc).unwrap_err();
            assert!(err.contains(expect), "{needle}: {err}");
        }
    }

    #[test]
    fn rejects_missing_summary_and_header() {
        let doc = minimal();
        let no_summary: String = doc.lines().take(2).map(|l| format!("{l}\n")).collect();
        assert!(Validator::check_document(&no_summary)
            .unwrap_err()
            .contains("no summary"));
        let no_header: String = doc.lines().skip(1).map(|l| format!("{l}\n")).collect();
        assert!(Validator::check_document(&no_header)
            .unwrap_err()
            .contains("must be `header`"));
    }

    #[test]
    fn accepts_crashed_outcome_with_kind_suffix() {
        let doc = minimal().replace("\"outcome\":\"completed\"", "\"outcome\":\"crashed:panic\"");
        Validator::check_document(&doc).unwrap();
    }

    #[test]
    fn accepts_and_validates_recovery_records() {
        let good = minimal()
            + r#"{"type":"recovery","deadline_expired":false,"counters":{"recovery.save_retries":1},"events":["save-retry"]}"#
            + "\n";
        Validator::check_document(&good).unwrap();
        // Recovery must follow the summary and carry its three fields.
        let early: String = {
            let lines: Vec<&str> = good.lines().collect();
            format!("{}\n{}\n{}\n{}\n", lines[0], lines[3], lines[1], lines[2])
        };
        assert!(Validator::check_document(&early)
            .unwrap_err()
            .contains("before summary"));
        for (needle, expect) in [
            ("\"deadline_expired\":false,", "deadline_expired"),
            ("\"counters\":{\"recovery.save_retries\":1},", "counters"),
            (",\"events\":[\"save-retry\"]", "events"),
        ] {
            let doc = good.replace(needle, "");
            let err = Validator::check_document(&doc).unwrap_err();
            assert!(err.contains(expect), "{needle}: {err}");
        }
        // Recovery records survive timing stripping — they are facts
        // about the run, not timing.
        let stripped = strip_timing(&good).unwrap();
        assert!(stripped.contains("\"type\":\"recovery\""));
    }

    #[test]
    fn accepts_and_validates_profile_records() {
        let good = minimal()
            + r#"{"type":"profile","events":42,"drops":0,"window_ns":9000,"workers":[{"worker":0,"tasks":20,"steals":2,"busy_ns":8000,"utilization":0.88}]}"#
            + "\n";
        Validator::check_document(&good).unwrap();
        // Profile must follow the summary.
        let early: String = {
            let lines: Vec<&str> = good.lines().collect();
            format!("{}\n{}\n{}\n{}\n", lines[0], lines[3], lines[1], lines[2])
        };
        assert!(Validator::check_document(&early)
            .unwrap_err()
            .contains("before summary"));
        for (needle, expect) in [
            ("\"events\":42,", "events"),
            ("\"drops\":0,", "drops"),
            ("\"tasks\":20,", "tasks"),
            ("\"steals\":2,", "steals"),
        ] {
            let doc = good.replace(needle, "");
            let err = Validator::check_document(&doc).unwrap_err();
            assert!(err.contains(expect), "{needle}: {err}");
        }
        // Profiles are scheduling facts: stripped alongside spans, so
        // clean determinism comparisons never see them.
        let stripped = strip_timing(&good).unwrap();
        assert!(!stripped.contains("\"type\":\"profile\""));
        assert_eq!(stripped, strip_timing(&minimal()).unwrap());
    }

    #[test]
    fn validates_span_nesting() {
        let good = minimal()
            + r#"{"type":"spans","spans":[{"name":"a","thread":0,"start_ns":0,"end_ns":100},{"name":"b","thread":0,"start_ns":10,"end_ns":50}]}"#
            + "\n";
        Validator::check_document(&good).unwrap();
        let crossing = minimal()
            + r#"{"type":"spans","spans":[{"name":"a","thread":0,"start_ns":0,"end_ns":100},{"name":"b","thread":0,"start_ns":10,"end_ns":200}]}"#
            + "\n";
        assert!(Validator::check_document(&crossing)
            .unwrap_err()
            .contains("not nested"));
        let backwards = minimal()
            + r#"{"type":"spans","spans":[{"name":"a","thread":0,"start_ns":50,"end_ns":10}]}"#
            + "\n";
        assert!(Validator::check_document(&backwards)
            .unwrap_err()
            .contains("before start"));
    }

    #[test]
    fn strip_timing_removes_ns_fields_and_spans() {
        let doc = minimal()
            + r#"{"type":"spans","spans":[{"name":"a","thread":0,"start_ns":0,"end_ns":1}]}"#
            + "\n";
        let stripped = strip_timing(&doc).unwrap();
        assert!(!stripped.contains("elapsed_ns"));
        assert!(!stripped.contains("\"spans\""));
        assert_eq!(stripped.lines().count(), 3);
        // Stripping is idempotent and stable.
        assert_eq!(strip_timing(&stripped).unwrap(), stripped);
    }
}
