//! A minimal JSON value type with an emitter and a parser.
//!
//! The build environment is offline, so the journal and metrics
//! exporters hand-roll their JSON exactly like the sweep harness does —
//! but through one shared, escaping-correct value type instead of ad-hoc
//! `format!` strings. Objects preserve insertion order so emitted
//! records are byte-stable.

use std::fmt;

/// A JSON value. Numbers are split into integers and floats so counters
/// round-trip exactly.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    Null,
    Bool(bool),
    /// Integers (all omislice counters and ids).
    Int(i64),
    /// Unsigned integers that exceed `i64` (nanosecond totals).
    UInt(u64),
    Float(f64),
    Str(String),
    Array(Vec<Json>),
    /// Key-value pairs in insertion order.
    Object(Vec<(String, Json)>),
}

impl Json {
    /// Builds an object from `(key, value)` pairs.
    pub fn object(pairs: impl IntoIterator<Item = (&'static str, Json)>) -> Json {
        Json::Object(pairs.into_iter().map(|(k, v)| (k.to_string(), v)).collect())
    }

    /// Builds a string value.
    pub fn str(s: impl Into<String>) -> Json {
        Json::Str(s.into())
    }

    /// The value under `key`, when this is an object that has it.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Object(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The string content, when this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The boolean content, when this is a boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The integer content, when this is a number without a fraction.
    pub fn as_int(&self) -> Option<i64> {
        match self {
            Json::Int(n) => Some(*n),
            Json::UInt(n) => i64::try_from(*n).ok(),
            _ => None,
        }
    }

    /// The array elements, when this is an array.
    pub fn as_array(&self) -> Option<&[Json]> {
        match self {
            Json::Array(items) => Some(items),
            _ => None,
        }
    }

    /// The object pairs, when this is an object.
    pub fn as_object(&self) -> Option<&[(String, Json)]> {
        match self {
            Json::Object(pairs) => Some(pairs),
            _ => None,
        }
    }

    /// Recursively removes every object key for which `drop` returns
    /// true — how tests strip timing fields before byte-comparing
    /// journals across thread counts.
    pub fn strip_keys(&mut self, drop: &dyn Fn(&str) -> bool) {
        match self {
            Json::Object(pairs) => {
                pairs.retain(|(k, _)| !drop(k));
                for (_, v) in pairs.iter_mut() {
                    v.strip_keys(drop);
                }
            }
            Json::Array(items) => {
                for v in items.iter_mut() {
                    v.strip_keys(drop);
                }
            }
            _ => {}
        }
    }
}

fn escape_into(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

impl fmt::Display for Json {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut buf = String::new();
        self.write_into(&mut buf);
        f.write_str(&buf)
    }
}

impl Json {
    fn write_into(&self, out: &mut String) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Int(n) => out.push_str(&n.to_string()),
            Json::UInt(n) => out.push_str(&n.to_string()),
            Json::Float(x) => {
                if x.is_finite() {
                    // Keep a fraction marker so the value parses back as
                    // a float.
                    if x.fract() == 0.0 && x.abs() < 1e15 {
                        out.push_str(&format!("{x:.1}"));
                    } else {
                        out.push_str(&format!("{x}"));
                    }
                } else {
                    out.push_str("null");
                }
            }
            Json::Str(s) => escape_into(s, out),
            Json::Array(items) => {
                out.push('[');
                for (i, v) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    v.write_into(out);
                }
                out.push(']');
            }
            Json::Object(pairs) => {
                out.push('{');
                for (i, (k, v)) in pairs.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    escape_into(k, out);
                    out.push(':');
                    v.write_into(out);
                }
                out.push('}');
            }
        }
    }
}

/// Parses one JSON document. Rejects trailing garbage and nesting deeper
/// than [`MAX_PARSE_DEPTH`] (a hostile `[[[[...` would otherwise overflow
/// the stack — the parser may see network request bodies).
pub fn parse(text: &str) -> Result<Json, String> {
    let mut p = Parser {
        bytes: text.as_bytes(),
        pos: 0,
        depth: 0,
    };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(format!("trailing characters at byte {}", p.pos));
    }
    Ok(v)
}

/// Maximum container nesting the parser accepts. Journals nest three or
/// four levels; 128 leaves generous headroom without risking the stack.
const MAX_PARSE_DEPTH: usize = 128;

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
    depth: usize,
}

impl<'a> Parser<'a> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if b == b' ' || b == b'\t' || b == b'\n' || b == b'\r' {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!("expected `{}` at byte {}", b as char, self.pos))
        }
    }

    fn literal(&mut self, word: &str, v: Json) -> Result<Json, String> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(v)
        } else {
            Err(format!("bad literal at byte {}", self.pos))
        }
    }

    fn value(&mut self) -> Result<Json, String> {
        match self.peek() {
            Some(b'n') => self.literal("null", Json::Null),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(b'-' | b'0'..=b'9') => self.number(),
            other => Err(format!("unexpected {other:?} at byte {}", self.pos)),
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err("unterminated string".to_string()),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .ok_or("truncated \\u escape")?;
                            let code = u32::from_str_radix(
                                std::str::from_utf8(hex).map_err(|_| "bad \\u escape")?,
                                16,
                            )
                            .map_err(|_| "bad \\u escape")?;
                            out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                            self.pos += 4;
                        }
                        other => return Err(format!("bad escape {other:?}")),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 code point.
                    let rest = &self.bytes[self.pos..];
                    let s = std::str::from_utf8(rest).map_err(|_| "invalid UTF-8")?;
                    let c = s.chars().next().unwrap();
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn number(&mut self) -> Result<Json, String> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(b) = self.peek() {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).unwrap();
        if is_float {
            text.parse::<f64>()
                .map(Json::Float)
                .map_err(|_| format!("bad number `{text}`"))
        } else if let Ok(n) = text.parse::<i64>() {
            Ok(Json::Int(n))
        } else {
            text.parse::<u64>()
                .map(Json::UInt)
                .map_err(|_| format!("bad number `{text}`"))
        }
    }

    fn enter(&mut self) -> Result<(), String> {
        self.depth += 1;
        if self.depth > MAX_PARSE_DEPTH {
            Err(format!(
                "nesting deeper than {MAX_PARSE_DEPTH} levels at byte {}",
                self.pos
            ))
        } else {
            Ok(())
        }
    }

    fn array(&mut self) -> Result<Json, String> {
        self.enter()?;
        let v = self.array_inner();
        self.depth -= 1;
        v
    }

    fn array_inner(&mut self) -> Result<Json, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Array(items));
                }
                _ => return Err(format!("expected `,` or `]` at byte {}", self.pos)),
            }
        }
    }

    fn object(&mut self) -> Result<Json, String> {
        self.enter()?;
        let v = self.object_inner();
        self.depth -= 1;
        v
    }

    fn object_inner(&mut self) -> Result<Json, String> {
        self.expect(b'{')?;
        let mut pairs = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Object(pairs));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            pairs.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Object(pairs));
                }
                _ => return Err(format!("expected `,` or `}}` at byte {}", self.pos)),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_structures() {
        let v = Json::object([
            ("a", Json::Int(-3)),
            ("b", Json::Array(vec![Json::Null, Json::Bool(true)])),
            ("c", Json::str("he\"llo\n")),
            ("d", Json::Float(1.5)),
            ("e", Json::UInt(u64::MAX)),
        ]);
        let text = v.to_string();
        let back = parse(&text).unwrap();
        assert_eq!(back, v);
    }

    #[test]
    fn escapes_control_characters() {
        let text = Json::str("\u{1}\t").to_string();
        assert_eq!(text, "\"\\u0001\\t\"");
        assert_eq!(parse(&text).unwrap(), Json::str("\u{1}\t"));
    }

    #[test]
    fn rejects_garbage() {
        assert!(parse("{\"a\":}").is_err());
        assert!(parse("[1,2,]garbage").is_err());
        assert!(parse("nulL").is_err());
        assert!(parse("").is_err());
    }

    #[test]
    fn hostile_deep_nesting_errors_instead_of_overflowing() {
        let deep_arrays = format!("{}1{}", "[".repeat(100_000), "]".repeat(100_000));
        let err = parse(&deep_arrays).unwrap_err();
        assert!(err.contains("nesting deeper"), "{err}");

        let deep_objects = format!("{}1{}", "{\"k\":".repeat(100_000), "}".repeat(100_000));
        let err = parse(&deep_objects).unwrap_err();
        assert!(err.contains("nesting deeper"), "{err}");
    }

    #[test]
    fn moderate_nesting_still_parses() {
        let nested = format!("{}1{}", "[".repeat(64), "]".repeat(64));
        assert!(parse(&nested).is_ok());
    }

    #[test]
    fn accessors_and_strip() {
        let mut v = parse(r#"{"iter":1,"elapsed_ns":99,"sub":{"wall_ns":5,"n":2}}"#).unwrap();
        assert_eq!(v.get("iter").and_then(Json::as_int), Some(1));
        v.strip_keys(&|k| k.ends_with("_ns"));
        assert_eq!(v.get("elapsed_ns"), None);
        assert_eq!(v.get("sub").unwrap().get("wall_ns"), None);
        assert_eq!(
            v.get("sub").unwrap().get("n").and_then(Json::as_int),
            Some(2)
        );
    }

    #[test]
    fn float_output_keeps_fraction_marker() {
        assert_eq!(Json::Float(2.0).to_string(), "2.0");
        assert!(matches!(parse("2.0").unwrap(), Json::Float(_)));
    }
}
