//! Metrics exporters: Prometheus-style text and JSON.
//!
//! A [`MetricSet`] is an ordered list of named numeric values with help
//! strings. Producers fold whatever counters they have —
//! `TraceStats`, `VerificationStats`, recorder counters, span
//! aggregates — into one set; the exporters render it without knowing
//! where the numbers came from (keeping this crate a leaf).

use crate::json::Json;
use crate::span::SpanReport;
use std::fmt::Write as _;

/// One exported metric.
#[derive(Debug, Clone, PartialEq)]
pub struct Metric {
    /// Metric name; exported with the `omislice_` prefix.
    pub name: String,
    /// One-line description for the `# HELP` header.
    pub help: String,
    /// The value.
    pub value: f64,
}

/// An ordered collection of metrics.
#[derive(Debug, Clone, Default)]
pub struct MetricSet {
    metrics: Vec<Metric>,
}

impl MetricSet {
    /// Creates an empty set.
    pub fn new() -> Self {
        MetricSet::default()
    }

    /// Appends a counter-style metric.
    pub fn push(&mut self, name: impl Into<String>, help: impl Into<String>, value: f64) {
        self.metrics.push(Metric {
            name: name.into(),
            help: help.into(),
            value,
        });
    }

    /// The metrics in insertion order.
    pub fn metrics(&self) -> &[Metric] {
        &self.metrics
    }

    /// Folds a recorder report in: per-span-name `count`/`total_ns`/
    /// `min_ns`/`max_ns` gauges plus every recorder counter.
    pub fn push_spans(&mut self, report: &SpanReport) {
        for (name, agg) in report.histogram() {
            let base = format!("span_{}", sanitize(name));
            self.push(
                format!("{base}_count"),
                format!("Closed `{name}` spans"),
                agg.count as f64,
            );
            self.push(
                format!("{base}_total_ns"),
                format!("Summed wall time of `{name}` spans"),
                agg.total_ns as f64,
            );
            self.push(
                format!("{base}_min_ns"),
                format!("Shortest `{name}` span"),
                agg.min_ns as f64,
            );
            self.push(
                format!("{base}_max_ns"),
                format!("Longest `{name}` span"),
                agg.max_ns as f64,
            );
        }
        for (name, n) in &report.counters {
            self.push(
                format!("counter_{}", sanitize(name)),
                format!("Recorder counter `{name}`"),
                *n as f64,
            );
        }
    }

    /// Renders the set as Prometheus exposition text.
    pub fn to_prometheus(&self) -> String {
        let mut out = String::new();
        for m in &self.metrics {
            let name = format!("omislice_{}", sanitize(&m.name));
            let _ = writeln!(out, "# HELP {name} {}", m.help);
            let _ = writeln!(out, "# TYPE {name} gauge");
            if m.value.fract() == 0.0 && m.value.abs() < 1e15 {
                let _ = writeln!(out, "{name} {}", m.value as i64);
            } else {
                let _ = writeln!(out, "{name} {}", m.value);
            }
        }
        out
    }

    /// Renders the set as one JSON object (`{"name": value, ...}`).
    pub fn to_json(&self) -> Json {
        Json::Object(
            self.metrics
                .iter()
                .map(|m| {
                    let v = if m.value.fract() == 0.0
                        && m.value.abs() < 9e15
                        && m.value >= i64::MIN as f64
                    {
                        Json::Int(m.value as i64)
                    } else {
                        Json::Float(m.value)
                    };
                    (m.name.clone(), v)
                })
                .collect(),
        )
    }
}

/// Maps arbitrary metric names onto the Prometheus charset.
fn sanitize(name: &str) -> String {
    name.chars()
        .map(|c| {
            if c.is_ascii_alphanumeric() || c == '_' {
                c
            } else {
                '_'
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::span::{drain, reset, set_enabled, span};

    #[test]
    fn prometheus_text_shape() {
        let mut set = MetricSet::new();
        set.push("verifications", "VerifyDep invocations", 12.0);
        set.push("resume.ratio", "Share of runs resumed", 0.75);
        let text = set.to_prometheus();
        assert!(text.contains("# HELP omislice_verifications VerifyDep invocations"));
        assert!(text.contains("# TYPE omislice_verifications gauge"));
        assert!(text.contains("omislice_verifications 12"));
        assert!(text.contains("omislice_resume_ratio 0.75"));
    }

    #[test]
    fn json_export_round_trips() {
        let mut set = MetricSet::new();
        set.push("a", "", 3.0);
        set.push("b", "", 0.5);
        let v = set.to_json();
        assert_eq!(v.get("a"), Some(&Json::Int(3)));
        assert_eq!(v.get("b"), Some(&Json::Float(0.5)));
        crate::json::parse(&v.to_string()).unwrap();
    }

    #[test]
    fn folds_span_report() {
        let _g = crate::span::tests::test_guard();
        set_enabled(true);
        reset();
        {
            let _s = span("trace");
        }
        set_enabled(false);
        let report = drain();
        let mut set = MetricSet::new();
        set.push_spans(&report);
        let text = set.to_prometheus();
        assert!(text.contains("omislice_span_trace_count 1"));
        assert!(text.contains("omislice_span_trace_total_ns"));
    }
}
