//! Metrics exporters: Prometheus-style text and JSON.
//!
//! A [`MetricSet`] is an ordered list of named numeric values with help
//! strings. Producers fold whatever counters they have —
//! `TraceStats`, `VerificationStats`, recorder counters, span
//! aggregates — into one set; the exporters render it without knowing
//! where the numbers came from (keeping this crate a leaf).

use crate::json::Json;
use crate::span::SpanReport;
use std::fmt::Write as _;

/// Every counter name an instrumentation site in the workspace can
/// emit. [`MetricSet::push_spans`] zero-fills any name missing from a
/// report, so both `--metrics text` and `--metrics json` always carry
/// the complete key set — a counter that never fired exports as 0
/// instead of silently disappearing from one run's output.
pub const KNOWN_COUNTERS: &[&str] = &[
    "columnar.bytes",
    "csr.fill.edges",
    "frontier.claims",
    "profile.drops",
    "recorder.backpressure_stalls",
    "recorder.queue_depth_max",
    "recovery.deadline_expirations",
    "recovery.inline_fallbacks",
    "recovery.load_retries",
    "recovery.mmap_fallbacks",
    "recovery.queue_stalls",
    "recovery.retrace_fallbacks",
    "recovery.save_retries",
    "tracer.events",
    "tracer.runs",
    "verify.checkpoint.bytes",
    "verify.memo.bytes",
    "verify.sched.steals",
];

/// One exported metric.
#[derive(Debug, Clone, PartialEq)]
pub struct Metric {
    /// Metric name; exported with the `omislice_` prefix.
    pub name: String,
    /// One-line description for the `# HELP` header.
    pub help: String,
    /// The value.
    pub value: f64,
}

/// An ordered collection of metrics.
#[derive(Debug, Clone, Default)]
pub struct MetricSet {
    metrics: Vec<Metric>,
}

impl MetricSet {
    /// Creates an empty set.
    pub fn new() -> Self {
        MetricSet::default()
    }

    /// Appends a counter-style metric.
    pub fn push(&mut self, name: impl Into<String>, help: impl Into<String>, value: f64) {
        self.metrics.push(Metric {
            name: name.into(),
            help: help.into(),
            value,
        });
    }

    /// The metrics in insertion order.
    pub fn metrics(&self) -> &[Metric] {
        &self.metrics
    }

    /// Folds a recorder report in: per-span-name `count`/`total_ns`/
    /// `min_ns`/`max_ns` gauges plus every recorder counter.
    pub fn push_spans(&mut self, report: &SpanReport) {
        for (name, agg) in report.histogram() {
            let base = format!("span_{}", sanitize(name));
            self.push(
                format!("{base}_count"),
                format!("Closed `{name}` spans"),
                agg.count as f64,
            );
            self.push(
                format!("{base}_total_ns"),
                format!("Summed wall time of `{name}` spans"),
                agg.total_ns as f64,
            );
            self.push(
                format!("{base}_min_ns"),
                format!("Shortest `{name}` span"),
                agg.min_ns as f64,
            );
            self.push(
                format!("{base}_max_ns"),
                format!("Longest `{name}` span"),
                agg.max_ns as f64,
            );
            self.push(
                format!("{base}_p50_ns"),
                format!("Median `{name}` span duration (log-bucket estimate)"),
                agg.p50_ns() as f64,
            );
            self.push(
                format!("{base}_p90_ns"),
                format!("90th-percentile `{name}` span duration (log-bucket estimate)"),
                agg.p90_ns() as f64,
            );
            self.push(
                format!("{base}_p99_ns"),
                format!("99th-percentile `{name}` span duration (log-bucket estimate)"),
                agg.p99_ns() as f64,
            );
        }
        for (name, n) in &report.counters {
            self.push(
                format!("counter_{}", sanitize(name)),
                format!("Recorder counter `{name}`"),
                *n as f64,
            );
        }
        // Completeness: a counter that never fired still exports (as 0)
        // in both text and JSON, keeping the key set stable run to run.
        for &name in KNOWN_COUNTERS {
            if !report.counters.contains_key(name) {
                self.push(
                    format!("counter_{}", sanitize(name)),
                    format!("Recorder counter `{name}`"),
                    0.0,
                );
            }
        }
    }

    /// Renders the set as Prometheus exposition text.
    pub fn to_prometheus(&self) -> String {
        let mut out = String::new();
        for m in &self.metrics {
            let name = format!("omislice_{}", sanitize(&m.name));
            let _ = writeln!(out, "# HELP {name} {}", m.help);
            let _ = writeln!(out, "# TYPE {name} gauge");
            if m.value.fract() == 0.0 && m.value.abs() < 1e15 {
                let _ = writeln!(out, "{name} {}", m.value as i64);
            } else {
                let _ = writeln!(out, "{name} {}", m.value);
            }
        }
        out
    }

    /// Renders the set as one JSON object (`{"name": value, ...}`).
    pub fn to_json(&self) -> Json {
        Json::Object(
            self.metrics
                .iter()
                .map(|m| {
                    let v = if m.value.fract() == 0.0
                        && m.value.abs() < 9e15
                        && m.value >= i64::MIN as f64
                    {
                        Json::Int(m.value as i64)
                    } else {
                        Json::Float(m.value)
                    };
                    (m.name.clone(), v)
                })
                .collect(),
        )
    }
}

/// Maps arbitrary metric names onto the Prometheus charset.
fn sanitize(name: &str) -> String {
    name.chars()
        .map(|c| {
            if c.is_ascii_alphanumeric() || c == '_' {
                c
            } else {
                '_'
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::span::{drain, reset, set_enabled, span};

    #[test]
    fn prometheus_text_shape() {
        let mut set = MetricSet::new();
        set.push("verifications", "VerifyDep invocations", 12.0);
        set.push("resume.ratio", "Share of runs resumed", 0.75);
        let text = set.to_prometheus();
        assert!(text.contains("# HELP omislice_verifications VerifyDep invocations"));
        assert!(text.contains("# TYPE omislice_verifications gauge"));
        assert!(text.contains("omislice_verifications 12"));
        assert!(text.contains("omislice_resume_ratio 0.75"));
    }

    #[test]
    fn json_export_round_trips() {
        let mut set = MetricSet::new();
        set.push("a", "", 3.0);
        set.push("b", "", 0.5);
        let v = set.to_json();
        assert_eq!(v.get("a"), Some(&Json::Int(3)));
        assert_eq!(v.get("b"), Some(&Json::Float(0.5)));
        crate::json::parse(&v.to_string()).unwrap();
    }

    #[test]
    fn folds_span_report() {
        let _g = crate::span::tests::test_guard();
        set_enabled(true);
        reset();
        {
            let _s = span("trace");
        }
        set_enabled(false);
        let report = drain();
        let mut set = MetricSet::new();
        set.push_spans(&report);
        let text = set.to_prometheus();
        assert!(text.contains("omislice_span_trace_count 1"));
        assert!(text.contains("omislice_span_trace_total_ns"));
        assert!(text.contains("omislice_span_trace_p50_ns"));
        assert!(text.contains("omislice_span_trace_p99_ns"));
    }

    #[test]
    fn text_and_json_exporters_carry_identical_key_sets() {
        let _g = crate::span::tests::test_guard();
        set_enabled(true);
        reset();
        {
            let _s = span("verify");
        }
        crate::span::counter_add("tracer.events", 5);
        set_enabled(false);
        let report = drain();
        let mut set = MetricSet::new();
        set.push_spans(&report);

        // Key set of the Prometheus text export.
        let text_keys: std::collections::BTreeSet<String> = set
            .to_prometheus()
            .lines()
            .filter(|l| !l.starts_with('#'))
            .filter_map(|l| l.split_whitespace().next())
            .map(str::to_string)
            .collect();
        // Key set of the JSON export, mapped through the same prefixing.
        let Json::Object(pairs) = set.to_json() else {
            panic!("json export is an object");
        };
        let json_keys: std::collections::BTreeSet<String> = pairs
            .iter()
            .map(|(k, _)| format!("omislice_{}", sanitize(k)))
            .collect();
        assert_eq!(text_keys, json_keys, "exporters must agree on keys");

        // Every registered counter appears, fired or not.
        for name in KNOWN_COUNTERS {
            let key = format!("omislice_counter_{}", sanitize(name));
            assert!(text_keys.contains(&key), "missing {key} in text export");
        }
        // The one that fired kept its value; an unfired one reads 0.
        let json = set.to_json();
        assert_eq!(json.get("counter_tracer_events"), Some(&Json::Int(5)));
        assert_eq!(
            json.get("counter_recovery_save_retries"),
            Some(&Json::Int(0))
        );
    }
}
