//! Validates a Chrome trace-event profile produced by `--profile-out`.
//!
//! ```text
//! validate_profile <prof.json> [--jobs N]
//! ```
//!
//! Exits 0 when the document parses, every event is well-formed for its
//! phase, every tid that carries events has a `thread_name`, worker
//! tracks are named contiguously from `verify-worker-0`, and the
//! memo/checkpoint byte counter tracks are present. With `--jobs N` it
//! additionally requires the summed worker utilization to stay within
//! the physical bound of `N` busy workers. CI's `profile-smoke` gate
//! runs this against a fresh `locate --profile-out` trace.

use omislice_obs::json::parse;
use omislice_obs::profile::check_chrome_trace;
use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match run(&args) {
        Ok(summary) => {
            println!("{summary}");
            ExitCode::SUCCESS
        }
        Err(msg) => {
            eprintln!("validate_profile: {msg}");
            ExitCode::FAILURE
        }
    }
}

fn run(args: &[String]) -> Result<String, String> {
    let mut path = None;
    let mut jobs: Option<usize> = None;
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--jobs" => {
                let v = it.next().ok_or("--jobs needs a value")?;
                jobs = Some(v.parse().map_err(|_| format!("bad --jobs `{v}`"))?);
            }
            other if path.is_none() => path = Some(other.to_string()),
            other => return Err(format!("unexpected argument `{other}`")),
        }
    }
    let path = path.ok_or("usage: validate_profile <prof.json> [--jobs N]")?;
    let text = std::fs::read_to_string(&path).map_err(|e| format!("cannot read `{path}`: {e}"))?;
    let doc = parse(&text).map_err(|e| format!("{path}: not valid JSON: {e}"))?;
    let check = check_chrome_trace(&doc).map_err(|e| format!("{path}: {e}"))?;

    for required in ["verify.checkpoint.bytes", "verify.memo.bytes"] {
        if !check.counter_tracks.iter().any(|c| c == required) {
            return Err(format!("{path}: missing counter track `{required}`"));
        }
    }
    if let Some(jobs) = jobs {
        if check.worker_tracks.is_empty() {
            return Err(format!("{path}: no verify-worker tracks"));
        }
        if check.worker_tracks.len() > jobs {
            return Err(format!(
                "{path}: {} worker tracks exceed --jobs {jobs}",
                check.worker_tracks.len()
            ));
        }
        // A schedule can never pack more than `jobs` workers' worth of
        // busy time into the wall window it spans.
        if check.utilization_sum > jobs as f64 + 1e-6 {
            return Err(format!(
                "{path}: utilization sum {:.3} exceeds --jobs {jobs}",
                check.utilization_sum
            ));
        }
    }

    Ok(format!(
        "{path}: OK ({} slices, {} worker tracks, {} counter tracks, utilization sum {:.3})",
        check.slices,
        check.worker_tracks.len(),
        check.counter_tracks.len(),
        check.utilization_sum
    ))
}
