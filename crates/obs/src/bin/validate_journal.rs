//! Validates a locate event journal against the omislice-obs schema.
//!
//! ```text
//! validate_journal <journal.jsonl> [--require-root S<id>]
//! ```
//!
//! Exits 0 when every record validates (and, with `--require-root`, when
//! some iteration added a verified edge landing on the given root-cause
//! statement). Exits 1 with a diagnostic otherwise. CI's `obs-smoke`
//! gate runs this against a fresh `locate --obs-out` journal.

use omislice_obs::journal::Validator;
use omislice_obs::json::{parse, Json};
use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match run(&args) {
        Ok(summary) => {
            println!("{summary}");
            ExitCode::SUCCESS
        }
        Err(msg) => {
            eprintln!("validate_journal: {msg}");
            ExitCode::FAILURE
        }
    }
}

fn run(args: &[String]) -> Result<String, String> {
    let mut path = None;
    let mut require_root: Option<i64> = None;
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--require-root" => {
                let v = it.next().ok_or("--require-root needs a value")?;
                let id: i64 = v
                    .trim_start_matches('S')
                    .parse()
                    .map_err(|_| format!("bad --require-root `{v}`"))?;
                require_root = Some(id);
            }
            other if path.is_none() => path = Some(other.to_string()),
            other => return Err(format!("unexpected argument `{other}`")),
        }
    }
    let path = path.ok_or("usage: validate_journal <journal.jsonl> [--require-root S<id>]")?;
    let text = std::fs::read_to_string(&path).map_err(|e| format!("cannot read `{path}`: {e}"))?;
    let v = Validator::check_document(&text).map_err(|e| format!("{path}: {e}"))?;

    if let Some(root) = require_root {
        if !journal_captures_root(&text, root)? {
            return Err(format!(
                "{path}: the journal's final pruned slice does not contain root statement S{root}"
            ));
        }
    }

    Ok(format!(
        "{path}: OK ({} records, {} iterations)",
        v.records(),
        v.iterations()
    ))
}

/// Whether the summary record's final pruned slice (`ips_stmts`) holds
/// the given root statement and reports the run as found.
fn journal_captures_root(text: &str, root: i64) -> Result<bool, String> {
    for line in text.lines() {
        if line.trim().is_empty() {
            continue;
        }
        let record = parse(line).map_err(|e| e.to_string())?;
        if record.get("type").and_then(Json::as_str) != Some("summary") {
            continue;
        }
        let found = record.get("found") == Some(&Json::Bool(true));
        let in_ips = record
            .get("ips_stmts")
            .and_then(Json::as_array)
            .unwrap_or(&[])
            .iter()
            .any(|s| s.as_int() == Some(root));
        return Ok(found && in_ips);
    }
    Ok(false)
}
