//! Property: the indexed slicers are instance-for-instance identical to
//! the naive reference implementations — for random structured programs,
//! random inputs, and any worker-thread count:
//!
//!   1. `Trace::cd_depends_on` (Euler-interval test) agrees with the
//!      original parent-pointer walk on every instance pair;
//!   2. `potential_deps_by_var` (postings-window queries) returns exactly
//!      the pairs of the original full-instance scan;
//!   3. `DepGraph::backward_slice` (CSR + bitset) equals a hash-set BFS
//!      over the allocated dependence vectors;
//!   4. `relevant_slice_jobs` equals `relevant_slice_naive` for
//!      `jobs ∈ {1, 2, 4}`.
//!
//! This is the safety net under the ISSUE's perf tentpole: every index
//! shortcut must be invisible in results.

use omislice_analysis::ProgramAnalysis;
use omislice_interp::{run_traced, RunConfig};
use omislice_lang::{compile, Program};
use omislice_slicing::{
    potential_deps_by_var, potential_deps_by_var_naive, relevant_slice_jobs, relevant_slice_naive,
    DepGraph, Slice,
};
use omislice_trace::{InstId, Trace};
use proptest::prelude::*;
use std::collections::{HashSet, VecDeque};

// --- tiny structured-program generator ----------------------------------

#[derive(Debug, Clone)]
enum S {
    Assign(usize, usize, i8),
    Print(usize),
    If(usize, Vec<S>, Vec<S>),
    While(u8, Vec<S>),
}

const VARS: [&str; 3] = ["a", "b", "c"];

fn stmt_strategy() -> impl Strategy<Value = S> {
    let leaf = prop_oneof![
        ((0usize..3), (0usize..3), any::<i8>()).prop_map(|(d, u, k)| S::Assign(d, u, k)),
        (0usize..3).prop_map(S::Print),
    ];
    leaf.prop_recursive(3, 20, 4, |inner| {
        prop_oneof![
            (
                0usize..3,
                prop::collection::vec(inner.clone(), 1..4),
                prop::collection::vec(inner.clone(), 0..3),
            )
                .prop_map(|(v, t, e)| S::If(v, t, e)),
            ((1u8..4), prop::collection::vec(inner.clone(), 1..4))
                .prop_map(|(k, b)| S::While(k, b)),
        ]
    })
}

fn render(stmts: &[S], out: &mut String, counter: &mut usize) {
    for s in stmts {
        match s {
            S::Assign(d, u, k) => {
                out.push_str(&format!("{} = {} + {};\n", VARS[*d], VARS[*u], k));
            }
            S::Print(v) => out.push_str(&format!("print({});\n", VARS[*v])),
            S::If(v, t, e) => {
                out.push_str(&format!("if {} > 0 {{\n", VARS[*v]));
                render(t, out, counter);
                if e.is_empty() {
                    out.push_str("}\n");
                } else {
                    out.push_str("} else {\n");
                    render(e, out, counter);
                    out.push_str("}\n");
                }
            }
            S::While(k, b) => {
                let c = *counter;
                *counter += 1;
                out.push_str(&format!("let w{c} = 0;\nwhile w{c} < {k} {{\n"));
                render(b, out, counter);
                out.push_str(&format!("w{c} = w{c} + 1;\n}}\n"));
            }
        }
    }
}

fn program_strategy() -> impl Strategy<Value = Program> {
    prop::collection::vec(stmt_strategy(), 1..8).prop_map(|stmts| {
        let mut body = String::new();
        let mut counter = 0;
        render(&stmts, &mut body, &mut counter);
        // A trailing print guarantees a slicing criterion.
        body.push_str("print(a + b + c);\n");
        let src = format!("global a = 1; global b = 2; global c = 3;\nfn main() {{\n{body}}}\n");
        compile(&src).unwrap_or_else(|e| panic!("generated program invalid: {e}\n{src}"))
    })
}

/// Hash-set BFS over `backward_deps` vectors: the pre-CSR slice closure.
fn backward_slice_naive(graph: &DepGraph<'_>, trace: &Trace, criterion: InstId) -> Slice {
    let mut seen: HashSet<InstId> = HashSet::new();
    let mut queue: VecDeque<InstId> = VecDeque::new();
    seen.insert(criterion);
    queue.push_back(criterion);
    while let Some(i) = queue.pop_front() {
        for d in graph.backward_deps(i) {
            if seen.insert(d) {
                queue.push_back(d);
            }
        }
    }
    Slice::from_insts(trace, seen)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn indexed_slicers_match_naive(
        program in program_strategy(),
        seed_inputs in prop::collection::vec(-2i64..3, 0..4),
        pair_picks in prop::collection::vec((any::<prop::sample::Index>(), any::<prop::sample::Index>()), 8),
    ) {
        let analysis = ProgramAnalysis::build(&program);
        let config = RunConfig::with_inputs(seed_inputs);
        let run = run_traced(&program, &analysis, &config);
        let trace = &run.trace;
        prop_assert!(trace.termination().is_normal());
        prop_assert!(!trace.is_empty());

        // 1. cd_depends_on: indexed == parent-pointer walk on sampled
        // pairs (and on every self pair).
        for (iu, ip) in &pair_picks {
            let u = InstId(iu.index(trace.len()) as u32);
            let p = InstId(ip.index(trace.len()) as u32);
            prop_assert_eq!(
                trace.cd_depends_on(u, p),
                trace.cd_depends_on_naive(u, p),
                "cd_depends_on({}, {}) diverged", u, p
            );
            prop_assert!(!trace.cd_depends_on(u, u), "self-dependence at {}", u);
        }

        // 2. Potential dependences: postings windows == full scan, for
        // every output use.
        for o in trace.outputs() {
            prop_assert_eq!(
                potential_deps_by_var(trace, &analysis, o.inst),
                potential_deps_by_var_naive(trace, &analysis, o.inst),
                "potential deps diverged at {}", o.inst
            );
        }

        // 3+4. Slices, across job counts.
        let criterion = trace.outputs().last().expect("trailing print").inst;
        let rs_ref = relevant_slice_naive(trace, &analysis, criterion);
        for jobs in [1usize, 2, 4] {
            let graph = DepGraph::with_jobs(trace, jobs);
            let ds = graph.backward_slice(criterion);
            prop_assert_eq!(
                &ds,
                &backward_slice_naive(&graph, trace, criterion),
                "backward_slice diverged (jobs={})", jobs
            );
            let rs = relevant_slice_jobs(trace, &analysis, criterion, jobs);
            prop_assert_eq!(&rs, &rs_ref, "relevant_slice diverged (jobs={})", jobs);
        }
    }
}

/// A loop long enough that the relevant-slice BFS frontier crosses the
/// parallel-discovery threshold: the multi-threaded path must agree with
/// the naive slicer too (the proptest programs above stay small and
/// exercise only the serial path).
#[test]
fn parallel_frontier_matches_naive_on_large_trace() {
    let src = "\
        global x = 0;\
        fn main() {\
            let i = 0;\
            while i < 2000 {\
                if input() == 1 { x = i; }\
                i = i + 1;\
            }\
            print(x);\
        }";
    let program = compile(src).unwrap();
    let analysis = ProgramAnalysis::build(&program);
    let config = RunConfig::with_inputs(vec![0; 2000]);
    let run = run_traced(&program, &analysis, &config);
    let trace = &run.trace;
    assert!(trace.termination().is_normal());
    let criterion = trace.outputs().last().unwrap().inst;
    let expected = relevant_slice_naive(trace, &analysis, criterion);
    for jobs in [1usize, 2, 4, 8] {
        let got = relevant_slice_jobs(trace, &analysis, criterion, jobs);
        assert_eq!(got, expected, "jobs={jobs}");
    }
}
