//! The (augmentable) dynamic dependence graph and backward slicing.
//!
//! A [`DepGraph`] wraps a trace with a set of *extra edges* — the verified
//! implicit dependence edges that the demand-driven locator adds
//! (Algorithm 2, line 15: `G = G + p → t`). Classic dynamic slicing is a
//! backward closure over data dependences, dynamic control dependences,
//! and any extra edges.

use omislice_trace::{InstId, Trace};
use std::collections::{HashMap, HashSet, VecDeque};

use omislice_lang::StmtId;

/// Extra dependence edges `from → to` (both in the same trace), where
/// `to` precedes `from` in execution order — e.g. an implicit dependence
/// from a use back to the predicate that suppressed its real definition.
pub type ExtraEdges = HashMap<InstId, Vec<InstId>>;

/// A dynamic dependence graph: a trace plus augmenting edges.
#[derive(Debug, Clone)]
pub struct DepGraph<'a> {
    trace: &'a Trace,
    extra: ExtraEdges,
}

impl<'a> DepGraph<'a> {
    /// A graph with only the trace's own dependences.
    pub fn new(trace: &'a Trace) -> Self {
        DepGraph {
            trace,
            extra: ExtraEdges::new(),
        }
    }

    /// The underlying trace.
    pub fn trace(&self) -> &'a Trace {
        self.trace
    }

    /// Adds an extra (e.g. implicit) dependence edge `from → to`.
    ///
    /// # Panics
    ///
    /// Panics if either endpoint is out of range or `to` does not precede
    /// `from` (dependences point backwards in time).
    pub fn add_edge(&mut self, from: InstId, to: InstId) {
        assert!(
            from.index() < self.trace.len() && to.index() < self.trace.len(),
            "edge endpoints must be trace instances"
        );
        assert!(to < from, "dependence edges point backwards in time");
        let targets = self.extra.entry(from).or_default();
        if !targets.contains(&to) {
            targets.push(to);
        }
    }

    /// Number of extra edges added so far.
    pub fn extra_edge_count(&self) -> usize {
        self.extra.values().map(Vec::len).sum()
    }

    /// The extra edges out of `from`.
    pub fn extra_edges_of(&self, from: InstId) -> &[InstId] {
        self.extra.get(&from).map_or(&[], Vec::as_slice)
    }

    /// All backward dependences of `inst`: data, dynamic control, extra.
    pub fn backward_deps(&self, inst: InstId) -> Vec<InstId> {
        let ev = self.trace.event(inst);
        let mut out: Vec<InstId> = ev.data_deps.clone();
        if let Some(cd) = ev.cd_parent {
            out.push(cd);
        }
        out.extend(self.extra_edges_of(inst));
        out
    }

    /// The classic dynamic slice: the backward closure from `criterion`.
    pub fn backward_slice(&self, criterion: InstId) -> Slice {
        let mut seen: HashSet<InstId> = HashSet::new();
        let mut queue: VecDeque<InstId> = VecDeque::new();
        seen.insert(criterion);
        queue.push_back(criterion);
        while let Some(i) = queue.pop_front() {
            for d in self.backward_deps(i) {
                if seen.insert(d) {
                    queue.push_back(d);
                }
            }
        }
        Slice::from_insts(self.trace, seen)
    }

    /// Dependence distance (in edges) from `criterion` to every instance
    /// in its backward slice; the criterion itself has distance 0.
    pub fn distances_from(&self, criterion: InstId) -> HashMap<InstId, u32> {
        let mut dist: HashMap<InstId, u32> = HashMap::new();
        let mut queue: VecDeque<InstId> = VecDeque::new();
        dist.insert(criterion, 0);
        queue.push_back(criterion);
        while let Some(i) = queue.pop_front() {
            let d = dist[&i];
            for dep in self.backward_deps(i) {
                dist.entry(dep).or_insert_with(|| {
                    queue.push_back(dep);
                    d + 1
                });
            }
        }
        dist
    }

    /// Forward adjacency: for each instance, the instances that depend on
    /// it (reversal of all backward edges). Used by confidence analysis.
    pub fn forward_adjacency(&self) -> Vec<Vec<InstId>> {
        let mut fwd: Vec<Vec<InstId>> = vec![Vec::new(); self.trace.len()];
        for inst in self.trace.insts() {
            for dep in self.backward_deps(inst) {
                fwd[dep.index()].push(inst);
            }
        }
        fwd
    }

    /// A shortest dependence path from `from` back to `to`, if one exists
    /// (used to extract the failure-inducing chain once the root cause is
    /// reachable).
    pub fn path_between(&self, from: InstId, to: InstId) -> Option<Vec<InstId>> {
        let mut parent: HashMap<InstId, InstId> = HashMap::new();
        let mut queue: VecDeque<InstId> = VecDeque::new();
        parent.insert(from, from);
        queue.push_back(from);
        while let Some(i) = queue.pop_front() {
            if i == to {
                let mut path = vec![to];
                let mut cur = to;
                while cur != from {
                    cur = parent[&cur];
                    path.push(cur);
                }
                path.reverse(); // from ... to
                return Some(path);
            }
            for dep in self.backward_deps(i) {
                parent.entry(dep).or_insert_with(|| {
                    queue.push_back(dep);
                    i
                });
            }
        }
        None
    }
}

/// A set of statement instances, with both the paper's size metrics.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Slice {
    insts: Vec<InstId>,
    stmts: HashSet<StmtId>,
}

impl Slice {
    /// Builds a slice from a set of instances.
    pub fn from_insts(trace: &Trace, insts: impl IntoIterator<Item = InstId>) -> Self {
        let mut insts: Vec<InstId> = insts.into_iter().collect();
        insts.sort();
        insts.dedup();
        let stmts = insts.iter().map(|&i| trace.event(i).stmt).collect();
        Slice { insts, stmts }
    }

    /// The instances, in execution order.
    pub fn insts(&self) -> &[InstId] {
        &self.insts
    }

    /// Number of dynamic statement instances (the paper's "dynamic" size).
    pub fn dynamic_size(&self) -> usize {
        self.insts.len()
    }

    /// Number of unique static statements (the paper's "static" size).
    pub fn static_size(&self) -> usize {
        self.stmts.len()
    }

    /// Whether the slice contains any instance of `stmt` — the fault-
    /// capture criterion used throughout the evaluation.
    pub fn contains_stmt(&self, stmt: StmtId) -> bool {
        self.stmts.contains(&stmt)
    }

    /// Whether the slice contains the instance `inst`.
    pub fn contains(&self, inst: InstId) -> bool {
        self.insts.binary_search(&inst).is_ok()
    }

    /// The unique statements in the slice.
    pub fn stmts(&self) -> &HashSet<StmtId> {
        &self.stmts
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use omislice_analysis::ProgramAnalysis;
    use omislice_interp::{run_traced, RunConfig};
    use omislice_lang::compile;

    fn trace_of(src: &str, inputs: Vec<i64>) -> Trace {
        let p = compile(src).unwrap();
        let a = ProgramAnalysis::build(&p);
        run_traced(&p, &a, &RunConfig::with_inputs(inputs)).trace
    }

    #[test]
    fn slice_follows_data_dependences() {
        // S0 x=input, S1 y=x+1, S2 z=input, S3 print(y)
        let t = trace_of(
            "fn main() { let x = input(); let y = x + 1; let z = input(); print(y); }",
            vec![1, 2],
        );
        let g = DepGraph::new(&t);
        let out = t.outputs()[0].inst;
        let s = g.backward_slice(out);
        assert!(s.contains_stmt(StmtId(0)));
        assert!(s.contains_stmt(StmtId(1)));
        assert!(!s.contains_stmt(StmtId(2)), "unrelated stmt excluded");
        assert_eq!(s.dynamic_size(), 3);
        assert_eq!(s.static_size(), 3);
    }

    #[test]
    fn slice_follows_control_dependences() {
        let t = trace_of(
            "global x = 0; fn main() { let c = input(); if c > 0 { x = 1; } print(x); }",
            vec![5],
        );
        let g = DepGraph::new(&t);
        let out = t.outputs()[0].inst;
        let s = g.backward_slice(out);
        // print <- x=1 <- (cd) if <- c=input
        for stmt in 0..4 {
            assert!(s.contains_stmt(StmtId(stmt)), "missing S{stmt}");
        }
    }

    #[test]
    fn omission_error_shape_misses_root_cause() {
        // The defining phenomenon: when the branch is NOT taken, the
        // classic dynamic slice misses the predicate and its inputs.
        let t = trace_of(
            "global x = 0; fn main() { let c = input(); if c > 0 { x = 1; } print(x); }",
            vec![-5],
        );
        let g = DepGraph::new(&t);
        let out = t.outputs()[0].inst;
        let s = g.backward_slice(out);
        assert!(!s.contains_stmt(StmtId(0)), "input excluded");
        assert!(!s.contains_stmt(StmtId(1)), "if excluded");
        assert!(!s.contains_stmt(StmtId(2)), "untaken assign excluded");
        assert_eq!(s.dynamic_size(), 1, "only the print itself");
    }

    #[test]
    fn extra_edges_extend_the_slice() {
        let t = trace_of(
            "global x = 0; fn main() { let c = input(); if c > 0 { x = 1; } print(x); }",
            vec![-5],
        );
        let mut g = DepGraph::new(&t);
        let out = t.outputs()[0].inst;
        let if_inst = t.instances_of(StmtId(1))[0];
        g.add_edge(out, if_inst);
        assert_eq!(g.extra_edge_count(), 1);
        let s = g.backward_slice(out);
        assert!(s.contains_stmt(StmtId(1)));
        assert!(s.contains_stmt(StmtId(0)), "reaches through the predicate");
    }

    #[test]
    #[should_panic(expected = "backwards in time")]
    fn forward_extra_edge_rejected() {
        let t = trace_of("fn main() { print(1); print(2); }", vec![]);
        let mut g = DepGraph::new(&t);
        g.add_edge(InstId(0), InstId(1));
    }

    #[test]
    fn distances_count_edges() {
        let t = trace_of(
            "fn main() { let a = input(); let b = a + 1; let c = b + 1; print(c); }",
            vec![0],
        );
        let g = DepGraph::new(&t);
        let out = t.outputs()[0].inst;
        let d = g.distances_from(out);
        assert_eq!(d[&out], 0);
        assert_eq!(d[&InstId(2)], 1);
        assert_eq!(d[&InstId(1)], 2);
        assert_eq!(d[&InstId(0)], 3);
    }

    #[test]
    fn path_between_follows_dependences() {
        let t = trace_of(
            "fn main() { let a = input(); let b = a + 1; print(b); }",
            vec![0],
        );
        let g = DepGraph::new(&t);
        let out = t.outputs()[0].inst;
        let path = g.path_between(out, InstId(0)).unwrap();
        assert_eq!(path, vec![out, InstId(1), InstId(0)]);
        assert!(g.path_between(InstId(0), out).is_none());
    }

    #[test]
    fn forward_adjacency_inverts_edges() {
        let t = trace_of(
            "fn main() { let a = input(); let b = a + 1; print(b); }",
            vec![0],
        );
        let g = DepGraph::new(&t);
        let fwd = g.forward_adjacency();
        assert_eq!(fwd[0], vec![InstId(1)]);
        assert_eq!(fwd[1], vec![InstId(2)]);
        assert!(fwd[2].is_empty());
    }

    #[test]
    fn duplicate_extra_edges_are_ignored() {
        let t = trace_of("fn main() { let a = 1; print(a); }", vec![]);
        let mut g = DepGraph::new(&t);
        g.add_edge(InstId(1), InstId(0));
        g.add_edge(InstId(1), InstId(0));
        assert_eq!(g.extra_edge_count(), 1);
    }

    #[test]
    fn slice_membership_queries() {
        let t = trace_of("fn main() { let a = 1; print(a); }", vec![]);
        let g = DepGraph::new(&t);
        let s = g.backward_slice(t.outputs()[0].inst);
        assert!(s.contains(InstId(0)) && s.contains(InstId(1)));
        assert_eq!(s.insts(), &[InstId(0), InstId(1)]);
        assert_eq!(s.stmts().len(), 2);
    }
}
