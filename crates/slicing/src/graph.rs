//! The (augmentable) dynamic dependence graph and backward slicing.
//!
//! A [`DepGraph`] wraps a trace with a set of *extra edges* — the verified
//! implicit dependence edges that the demand-driven locator adds
//! (Algorithm 2, line 15: `G = G + p → t`). Classic dynamic slicing is a
//! backward closure over data dependences, dynamic control dependences,
//! and any extra edges.
//!
//! The trace's own edges are frozen into a CSR adjacency (flat offset +
//! edge arrays) at construction, so slicing traverses contiguous memory
//! with a bitset visited-set instead of hashing every instance; only the
//! mutable extra edges stay in a map.

use omislice_analysis::bitset::BitSet;
use omislice_trace::{InstId, Trace};
use std::collections::{HashMap, HashSet, VecDeque};

use omislice_lang::StmtId;

/// Below this many events the serial CSR fill wins; above it, chunked
/// parallel filling amortizes the thread spawns.
const PARALLEL_FILL_THRESHOLD: usize = 4096;

/// Extra dependence edges `from → to` (both in the same trace), where
/// `to` precedes `from` in execution order — e.g. an implicit dependence
/// from a use back to the predicate that suppressed its real definition.
pub type ExtraEdges = HashMap<InstId, Vec<InstId>>;

/// A dynamic dependence graph: a trace plus augmenting edges.
#[derive(Debug, Clone)]
pub struct DepGraph<'a> {
    trace: &'a Trace,
    /// CSR offsets: instance `i`'s base edges live at
    /// `edges[offsets[i]..offsets[i + 1]]`.
    offsets: Vec<u32>,
    /// Flat base-edge array: each instance's data dependences in
    /// evaluation order, then its dynamic control-dependence parent.
    edges: Vec<InstId>,
    extra: ExtraEdges,
}

impl<'a> DepGraph<'a> {
    /// A graph with only the trace's own dependences, built serially.
    pub fn new(trace: &'a Trace) -> Self {
        Self::with_jobs(trace, 1)
    }

    /// A graph with only the trace's own dependences; the CSR adjacency
    /// is filled by up to `jobs` worker threads. Identical to
    /// [`DepGraph::new`] for any `jobs` — chunk boundaries fall on CSR
    /// offsets, so every worker writes a disjoint contiguous range.
    pub fn with_jobs(trace: &'a Trace, jobs: usize) -> Self {
        let _span = omislice_obs::span("graph");
        let n = trace.len();
        let mut offsets = vec![0u32; n + 1];
        let cols = trace.columns();
        for i in 0..n {
            let inst = InstId(i as u32);
            let deg = cols.deps_of(inst).len() as u32 + cols.cd_parent_of(inst).is_some() as u32;
            offsets[i + 1] = offsets[i] + deg;
        }
        let mut edges = vec![InstId(0); offsets[n] as usize];
        // One guarded counter flush per fill, outside the per-event loop.
        if omislice_obs::enabled() {
            omislice_obs::counter_add("csr.fill.edges", offsets[n] as u64);
        }
        let jobs = jobs.max(1).min(n.max(1));
        if jobs == 1 || n < PARALLEL_FILL_THRESHOLD {
            fill_edges(trace, &offsets, 0, n, &mut edges);
        } else {
            let chunk = n.div_ceil(jobs);
            std::thread::scope(|s| {
                let offsets = &offsets;
                let mut rest: &mut [InstId] = &mut edges;
                for start in (0..n).step_by(chunk) {
                    let end = (start + chunk).min(n);
                    let len = (offsets[end] - offsets[start]) as usize;
                    let (head, tail) = std::mem::take(&mut rest).split_at_mut(len);
                    rest = tail;
                    s.spawn(move || fill_edges(trace, offsets, start, end, head));
                }
            });
        }
        DepGraph {
            trace,
            offsets,
            edges,
            extra: ExtraEdges::new(),
        }
    }

    /// The underlying trace.
    pub fn trace(&self) -> &'a Trace {
        self.trace
    }

    /// Adds an extra (e.g. implicit) dependence edge `from → to`.
    ///
    /// # Panics
    ///
    /// Panics if either endpoint is out of range or `to` does not precede
    /// `from` (dependences point backwards in time).
    pub fn add_edge(&mut self, from: InstId, to: InstId) {
        assert!(
            from.index() < self.trace.len() && to.index() < self.trace.len(),
            "edge endpoints must be trace instances"
        );
        assert!(to < from, "dependence edges point backwards in time");
        let targets = self.extra.entry(from).or_default();
        // Sorted + binary-search insert keeps repeated Algorithm-2 edge
        // additions O(log n) instead of a linear containment scan.
        if let Err(pos) = targets.binary_search(&to) {
            targets.insert(pos, to);
        }
    }

    /// Number of extra edges added so far.
    pub fn extra_edge_count(&self) -> usize {
        self.extra.values().map(Vec::len).sum()
    }

    /// The extra edges out of `from`.
    pub fn extra_edges_of(&self, from: InstId) -> &[InstId] {
        self.extra.get(&from).map_or(&[], Vec::as_slice)
    }

    /// The trace's own backward dependences of `inst` (data dependences
    /// in evaluation order, then the dynamic control-dependence parent)
    /// as a contiguous CSR slice — no allocation.
    pub fn base_deps(&self, inst: InstId) -> &[InstId] {
        let i = inst.index();
        &self.edges[self.offsets[i] as usize..self.offsets[i + 1] as usize]
    }

    /// All backward dependences of `inst` — base CSR edges followed by
    /// extra edges — without allocating.
    pub fn deps(&self, inst: InstId) -> impl Iterator<Item = InstId> + '_ {
        self.base_deps(inst)
            .iter()
            .copied()
            .chain(self.extra_edges_of(inst).iter().copied())
    }

    /// All backward dependences of `inst`: data, dynamic control, extra.
    ///
    /// Allocates a fresh `Vec`; prefer [`DepGraph::deps`] in loops.
    pub fn backward_deps(&self, inst: InstId) -> Vec<InstId> {
        self.deps(inst).collect()
    }

    /// The classic dynamic slice: the backward closure from `criterion`.
    pub fn backward_slice(&self, criterion: InstId) -> Slice {
        let mut seen = BitSet::new(self.trace.len());
        let mut stack = vec![criterion];
        seen.insert(criterion.index());
        while let Some(i) = stack.pop() {
            for d in self.deps(i) {
                if seen.insert(d.index()) {
                    stack.push(d);
                }
            }
        }
        Slice::from_insts(self.trace, seen.iter().map(|i| InstId(i as u32)))
    }

    /// Dependence distance (in edges) from `criterion` to every instance
    /// in its backward slice; the criterion itself has distance 0.
    pub fn distances_from(&self, criterion: InstId) -> HashMap<InstId, u32> {
        let mut dist: HashMap<InstId, u32> = HashMap::new();
        let mut queue: VecDeque<InstId> = VecDeque::new();
        dist.insert(criterion, 0);
        queue.push_back(criterion);
        while let Some(i) = queue.pop_front() {
            let d = dist[&i];
            for dep in self.deps(i) {
                dist.entry(dep).or_insert_with(|| {
                    queue.push_back(dep);
                    d + 1
                });
            }
        }
        dist
    }

    /// Forward adjacency: for each instance, the instances that depend on
    /// it (reversal of all backward edges). Used by confidence analysis.
    pub fn forward_adjacency(&self) -> Vec<Vec<InstId>> {
        let mut fwd: Vec<Vec<InstId>> = vec![Vec::new(); self.trace.len()];
        for inst in self.trace.insts() {
            for dep in self.deps(inst) {
                fwd[dep.index()].push(inst);
            }
        }
        fwd
    }

    /// A shortest dependence path from `from` back to `to`, if one exists
    /// (used to extract the failure-inducing chain once the root cause is
    /// reachable).
    pub fn path_between(&self, from: InstId, to: InstId) -> Option<Vec<InstId>> {
        let mut parent: HashMap<InstId, InstId> = HashMap::new();
        let mut queue: VecDeque<InstId> = VecDeque::new();
        parent.insert(from, from);
        queue.push_back(from);
        while let Some(i) = queue.pop_front() {
            if i == to {
                let mut path = vec![to];
                let mut cur = to;
                while cur != from {
                    cur = parent[&cur];
                    path.push(cur);
                }
                path.reverse(); // from ... to
                return Some(path);
            }
            for dep in self.deps(i) {
                parent.entry(dep).or_insert_with(|| {
                    queue.push_back(dep);
                    i
                });
            }
        }
        None
    }
}

/// Fills the CSR edge ranges of instances `[start, end)` — each worker's
/// `out` slice is the contiguous range `offsets[start]..offsets[end]`.
fn fill_edges(trace: &Trace, offsets: &[u32], start: usize, end: usize, out: &mut [InstId]) {
    let base = offsets[start] as usize;
    let cols = trace.columns();
    for (i, &off) in offsets.iter().enumerate().take(end).skip(start) {
        let inst = InstId(i as u32);
        let mut k = off as usize - base;
        let deps = cols.deps_of(inst);
        out[k..k + deps.len()].copy_from_slice(deps);
        k += deps.len();
        if let Some(cd) = cols.cd_parent_of(inst) {
            out[k] = cd;
        }
    }
}

/// A set of statement instances, with both the paper's size metrics.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Slice {
    insts: Vec<InstId>,
    stmts: HashSet<StmtId>,
}

impl Slice {
    /// Builds a slice from a set of instances.
    pub fn from_insts(trace: &Trace, insts: impl IntoIterator<Item = InstId>) -> Self {
        let mut insts: Vec<InstId> = insts.into_iter().collect();
        insts.sort();
        insts.dedup();
        let stmts = insts.iter().map(|&i| trace.columns().stmt_of(i)).collect();
        Slice { insts, stmts }
    }

    /// The instances, in execution order.
    pub fn insts(&self) -> &[InstId] {
        &self.insts
    }

    /// Number of dynamic statement instances (the paper's "dynamic" size).
    pub fn dynamic_size(&self) -> usize {
        self.insts.len()
    }

    /// Number of unique static statements (the paper's "static" size).
    pub fn static_size(&self) -> usize {
        self.stmts.len()
    }

    /// Whether the slice contains any instance of `stmt` — the fault-
    /// capture criterion used throughout the evaluation.
    pub fn contains_stmt(&self, stmt: StmtId) -> bool {
        self.stmts.contains(&stmt)
    }

    /// Whether the slice contains the instance `inst`.
    pub fn contains(&self, inst: InstId) -> bool {
        self.insts.binary_search(&inst).is_ok()
    }

    /// The unique statements in the slice.
    pub fn stmts(&self) -> &HashSet<StmtId> {
        &self.stmts
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use omislice_analysis::ProgramAnalysis;
    use omislice_interp::{run_traced, RunConfig};
    use omislice_lang::compile;

    fn trace_of(src: &str, inputs: Vec<i64>) -> Trace {
        let p = compile(src).unwrap();
        let a = ProgramAnalysis::build(&p);
        run_traced(&p, &a, &RunConfig::with_inputs(inputs)).trace
    }

    #[test]
    fn slice_follows_data_dependences() {
        // S0 x=input, S1 y=x+1, S2 z=input, S3 print(y)
        let t = trace_of(
            "fn main() { let x = input(); let y = x + 1; let z = input(); print(y); }",
            vec![1, 2],
        );
        let g = DepGraph::new(&t);
        let out = t.outputs()[0].inst;
        let s = g.backward_slice(out);
        assert!(s.contains_stmt(StmtId(0)));
        assert!(s.contains_stmt(StmtId(1)));
        assert!(!s.contains_stmt(StmtId(2)), "unrelated stmt excluded");
        assert_eq!(s.dynamic_size(), 3);
        assert_eq!(s.static_size(), 3);
    }

    #[test]
    fn slice_follows_control_dependences() {
        let t = trace_of(
            "global x = 0; fn main() { let c = input(); if c > 0 { x = 1; } print(x); }",
            vec![5],
        );
        let g = DepGraph::new(&t);
        let out = t.outputs()[0].inst;
        let s = g.backward_slice(out);
        // print <- x=1 <- (cd) if <- c=input
        for stmt in 0..4 {
            assert!(s.contains_stmt(StmtId(stmt)), "missing S{stmt}");
        }
    }

    #[test]
    fn omission_error_shape_misses_root_cause() {
        // The defining phenomenon: when the branch is NOT taken, the
        // classic dynamic slice misses the predicate and its inputs.
        let t = trace_of(
            "global x = 0; fn main() { let c = input(); if c > 0 { x = 1; } print(x); }",
            vec![-5],
        );
        let g = DepGraph::new(&t);
        let out = t.outputs()[0].inst;
        let s = g.backward_slice(out);
        assert!(!s.contains_stmt(StmtId(0)), "input excluded");
        assert!(!s.contains_stmt(StmtId(1)), "if excluded");
        assert!(!s.contains_stmt(StmtId(2)), "untaken assign excluded");
        assert_eq!(s.dynamic_size(), 1, "only the print itself");
    }

    #[test]
    fn extra_edges_extend_the_slice() {
        let t = trace_of(
            "global x = 0; fn main() { let c = input(); if c > 0 { x = 1; } print(x); }",
            vec![-5],
        );
        let mut g = DepGraph::new(&t);
        let out = t.outputs()[0].inst;
        let if_inst = t.instances_of(StmtId(1))[0];
        g.add_edge(out, if_inst);
        assert_eq!(g.extra_edge_count(), 1);
        let s = g.backward_slice(out);
        assert!(s.contains_stmt(StmtId(1)));
        assert!(s.contains_stmt(StmtId(0)), "reaches through the predicate");
    }

    #[test]
    #[should_panic(expected = "backwards in time")]
    fn forward_extra_edge_rejected() {
        let t = trace_of("fn main() { print(1); print(2); }", vec![]);
        let mut g = DepGraph::new(&t);
        g.add_edge(InstId(0), InstId(1));
    }

    #[test]
    fn distances_count_edges() {
        let t = trace_of(
            "fn main() { let a = input(); let b = a + 1; let c = b + 1; print(c); }",
            vec![0],
        );
        let g = DepGraph::new(&t);
        let out = t.outputs()[0].inst;
        let d = g.distances_from(out);
        assert_eq!(d[&out], 0);
        assert_eq!(d[&InstId(2)], 1);
        assert_eq!(d[&InstId(1)], 2);
        assert_eq!(d[&InstId(0)], 3);
    }

    #[test]
    fn path_between_follows_dependences() {
        let t = trace_of(
            "fn main() { let a = input(); let b = a + 1; print(b); }",
            vec![0],
        );
        let g = DepGraph::new(&t);
        let out = t.outputs()[0].inst;
        let path = g.path_between(out, InstId(0)).unwrap();
        assert_eq!(path, vec![out, InstId(1), InstId(0)]);
        assert!(g.path_between(InstId(0), out).is_none());
    }

    #[test]
    fn forward_adjacency_inverts_edges() {
        let t = trace_of(
            "fn main() { let a = input(); let b = a + 1; print(b); }",
            vec![0],
        );
        let g = DepGraph::new(&t);
        let fwd = g.forward_adjacency();
        assert_eq!(fwd[0], vec![InstId(1)]);
        assert_eq!(fwd[1], vec![InstId(2)]);
        assert!(fwd[2].is_empty());
    }

    #[test]
    fn duplicate_extra_edges_are_ignored() {
        let t = trace_of("fn main() { let a = 1; print(a); }", vec![]);
        let mut g = DepGraph::new(&t);
        g.add_edge(InstId(1), InstId(0));
        g.add_edge(InstId(1), InstId(0));
        assert_eq!(g.extra_edge_count(), 1);
    }

    #[test]
    fn parallel_csr_fill_matches_serial() {
        // Long enough to cross the parallel-fill threshold.
        let t = trace_of(
            "global s = 0;
             fn main() {
                 let n = input();
                 let i = 0;
                 while i < n { s = s + i; i = i + 1; }
                 print(s);
             }",
            vec![2000],
        );
        let serial = DepGraph::new(&t);
        let parallel = DepGraph::with_jobs(&t, 4);
        assert_eq!(serial.offsets, parallel.offsets);
        assert_eq!(serial.edges, parallel.edges);
        let out = t.outputs()[0].inst;
        assert_eq!(serial.backward_slice(out), parallel.backward_slice(out));
    }

    #[test]
    fn base_deps_order_is_data_then_cd() {
        let t = trace_of(
            "global x = 0; fn main() { let c = input(); if c > 0 { x = c + 1; } print(x); }",
            vec![5],
        );
        let g = DepGraph::new(&t);
        for inst in t.insts() {
            let ev = t.event(inst);
            let mut expect: Vec<InstId> = ev.data_deps.to_vec();
            expect.extend(ev.cd_parent);
            assert_eq!(g.base_deps(inst), expect.as_slice(), "at {inst}");
        }
    }

    #[test]
    fn slice_membership_queries() {
        let t = trace_of("fn main() { let a = 1; print(a); }", vec![]);
        let g = DepGraph::new(&t);
        let s = g.backward_slice(t.outputs()[0].inst);
        assert!(s.contains(InstId(0)) && s.contains(InstId(1)));
        assert_eq!(s.insts(), &[InstId(0), InstId(1)]);
        assert_eq!(s.stmts().len(), 2);
    }
}
