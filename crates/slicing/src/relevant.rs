//! Relevant slicing (Gyimóthy et al., ESEC/FSE 1999) — the baseline the
//! paper compares against (§2, Table 2).
//!
//! A relevant slice is the backward closure over dynamic data/control
//! dependences *plus potential dependence edges* (Definition 1): a use
//! `u` of variable `v` potentially depends on predicate instance `pᵢ` iff
//!
//! 1. `pᵢ` executes before `u`;
//! 2. `u` is not dynamically control dependent on `pᵢ`;
//! 3. the definition actually reaching `u` occurs before `pᵢ`;
//! 4. a different definition could reach `u` had `pᵢ` taken the other
//!    branch — the static component, supplied by
//!    [`PotentialDeps`](omislice_analysis::PotentialDeps).
//!
//! The closure makes the conservatism compound: every potential edge pulls
//! in the predicate's own slice, which is why relevant slices blow up
//! dynamically (the paper's Table 2 RS columns).

use crate::graph::{DepGraph, Slice};
use omislice_analysis::bitset::BitSet;
use omislice_analysis::ProgramAnalysis;
use omislice_lang::VarId;
use omislice_trace::{InstId, Trace};
use std::collections::{HashSet, VecDeque};
use std::sync::atomic::{AtomicUsize, Ordering};

/// Frontiers smaller than this are expanded serially even when `jobs > 1`
/// — thread spawns cost more than the work they would split.
const PARALLEL_FRONTIER_THRESHOLD: usize = 256;

/// How many frontier slots one worker claims per fetch.
const FRONTIER_CLAIM_CHUNK: usize = 64;

/// Computes the set of potential-dependence predicate instances for one
/// use instance `u` (all four conditions of Definition 1).
///
/// Returns instances `pᵢ` such that `u` potentially depends on `pᵢ`.
pub fn potential_dep_instances(
    trace: &Trace,
    analysis: &ProgramAnalysis,
    u: InstId,
) -> Vec<InstId> {
    let mut out: Vec<InstId> = potential_deps_by_var(trace, analysis, u)
        .into_iter()
        .map(|(_, p)| p)
        .collect();
    out.sort();
    out.dedup();
    out
}

/// Like [`potential_dep_instances`], but keeps the variable whose skipped
/// definition links `u` to each predicate instance — the implicit-
/// dependence verifier needs it to identify "the definition of `u'`" in
/// the switched run.
pub fn potential_deps_by_var(
    trace: &Trace,
    analysis: &ProgramAnalysis,
    u: InstId,
) -> Vec<(VarId, InstId)> {
    let idx = trace.index();
    let cols = trace.columns();
    let stmt = cols.stmt_of(u);
    let info = analysis.index().stmt(stmt);
    let mut out: Vec<(VarId, InstId)> = Vec::new();
    for &var in &info.uses {
        // Condition (iii): the definition of `var` actually reaching `u`.
        // Identified as the latest data dependence of `u` that defines
        // `var`; when the value arrived through parameter passing (no
        // def_var match), fall back conservatively to "no lower bound".
        let actual_def: Option<InstId> = cols
            .deps_of(u)
            .iter()
            .copied()
            .filter(|&d| cols.def_var_of(d) == Some(var))
            .max();
        let lo = actual_def.unwrap_or(InstId(0));
        for cp in analysis.static_pd(stmt, var) {
            // Conditions (i)+(iii) and the branch filter collapse into one
            // postings-window query: instances of `cp.pred` that took the
            // non-defining branch inside `[actual_def, u)`. Only condition
            // (ii) remains, as an O(1) Euler-interval test.
            for &p_i in idx.pred_instances_between(cp.pred, !cp.branch, lo, u) {
                if !idx.cd_is_ancestor(p_i, u) {
                    out.push((var, p_i));
                }
            }
        }
    }
    out.sort();
    out.dedup();
    out
}

/// Reference implementation of [`potential_deps_by_var`]: the original
/// full-instance scan with the parent-pointer `cd_depends_on` walk. Kept
/// as the oracle for the index equivalence property tests.
#[doc(hidden)]
pub fn potential_deps_by_var_naive(
    trace: &Trace,
    analysis: &ProgramAnalysis,
    u: InstId,
) -> Vec<(VarId, InstId)> {
    let ev = trace.event(u);
    let info = analysis.index().stmt(ev.stmt);
    let mut out: Vec<(VarId, InstId)> = Vec::new();
    for &var in &info.uses {
        let actual_def: Option<InstId> = ev
            .data_deps
            .iter()
            .copied()
            .filter(|&d| trace.event(d).def_var == Some(var))
            .max();
        for cp in analysis.static_pd(ev.stmt, var) {
            // cp.branch is the outcome that would execute the skipped
            // definition; the run must have taken the opposite branch.
            for &p_i in trace.instances_of(cp.pred) {
                if p_i >= u {
                    break; // condition (i): pᵢ precedes u
                }
                if trace.event(p_i).branch != Some(!cp.branch) {
                    continue; // the defining branch was taken after all
                }
                if let Some(d) = actual_def {
                    if p_i < d {
                        continue; // condition (iii): def must precede pᵢ
                    }
                }
                if trace.cd_depends_on_naive(u, p_i) {
                    continue; // condition (ii)
                }
                out.push((var, p_i));
            }
        }
    }
    out.sort();
    out.dedup();
    out
}

/// Tests Definition 1 for one specific `(use, var, predicate instance)`
/// triple — used by the demand-driven locator when it re-verifies a
/// switched predicate against *other* uses (Algorithm 2 lines 12–18).
pub fn is_potential_dep(
    trace: &Trace,
    analysis: &ProgramAnalysis,
    u: InstId,
    var: omislice_lang::VarId,
    p_i: InstId,
) -> bool {
    if p_i >= u {
        return false; // condition (i)
    }
    let cols = trace.columns();
    let Some(taken) = cols.branch_of(p_i) else {
        return false;
    };
    // Condition (iv): the static relation must hold for the branch the
    // run did NOT take.
    let p_stmt = cols.stmt_of(p_i);
    let statically_possible = analysis
        .static_pd(cols.stmt_of(u), var)
        .iter()
        .any(|cp| cp.pred == p_stmt && cp.branch != taken);
    if !statically_possible {
        return false;
    }
    // Condition (iii).
    let actual_def: Option<InstId> = cols
        .deps_of(u)
        .iter()
        .copied()
        .filter(|&d| cols.def_var_of(d) == Some(var))
        .max();
    if let Some(d) = actual_def {
        if p_i < d {
            return false;
        }
    }
    // Condition (ii).
    !trace.cd_depends_on(u, p_i)
}

/// Computes the relevant slice of `criterion`.
pub fn relevant_slice(trace: &Trace, analysis: &ProgramAnalysis, criterion: InstId) -> Slice {
    relevant_slice_jobs(trace, analysis, criterion, 1)
}

/// Computes the relevant slice of `criterion`, discovering dependences of
/// large BFS frontiers on up to `jobs` worker threads. The slice is
/// identical for any `jobs`.
pub fn relevant_slice_jobs(
    trace: &Trace,
    analysis: &ProgramAnalysis,
    criterion: InstId,
    jobs: usize,
) -> Slice {
    trace.build_index(jobs);
    relevant_slice_on(&DepGraph::with_jobs(trace, jobs), analysis, criterion, jobs)
}

/// Computes the relevant slice of `criterion` over a prebuilt dependence
/// graph — the graph (and the trace index behind it) is built once per
/// trace and amortized over every slice taken on it.
pub fn relevant_slice_on(
    graph: &DepGraph<'_>,
    analysis: &ProgramAnalysis,
    criterion: InstId,
    jobs: usize,
) -> Slice {
    let _span = omislice_obs::span("slice");
    let trace = graph.trace();
    let mut seen = BitSet::new(trace.len());
    seen.insert(criterion.index());
    let mut frontier = vec![criterion];
    let mut next: Vec<InstId> = Vec::new();
    while !frontier.is_empty() {
        if jobs > 1 && frontier.len() >= PARALLEL_FRONTIER_THRESHOLD {
            for d in discover_parallel(graph, trace, analysis, &frontier, jobs) {
                if seen.insert(d.index()) {
                    next.push(d);
                }
            }
        } else {
            for &i in &frontier {
                for d in graph.deps(i) {
                    if seen.insert(d.index()) {
                        next.push(d);
                    }
                }
                for (_, p) in potential_deps_by_var(trace, analysis, i) {
                    if seen.insert(p.index()) {
                        next.push(p);
                    }
                }
            }
        }
        std::mem::swap(&mut frontier, &mut next);
        next.clear();
    }
    Slice::from_insts(trace, seen.iter().map(|i| InstId(i as u32)))
}

/// Expands one BFS frontier on worker threads: slots are claimed in
/// chunks off a shared atomic cursor (the `Verifier::verify_all` fan-out
/// pattern); each worker returns the raw dependence lists, deduplicated
/// by the caller's visited bitset. The discovered *set* is independent of
/// scheduling, so the final slice is deterministic.
fn discover_parallel(
    graph: &DepGraph<'_>,
    trace: &Trace,
    analysis: &ProgramAnalysis,
    frontier: &[InstId],
    jobs: usize,
) -> Vec<InstId> {
    let cursor = AtomicUsize::new(0);
    std::thread::scope(|s| {
        let workers: Vec<_> = (0..jobs)
            .map(|_| {
                s.spawn(|| {
                    let mut local: Vec<InstId> = Vec::new();
                    let mut claims = 0u64;
                    loop {
                        let start = cursor.fetch_add(FRONTIER_CLAIM_CHUNK, Ordering::Relaxed);
                        if start >= frontier.len() {
                            break;
                        }
                        claims += 1;
                        let end = (start + FRONTIER_CLAIM_CHUNK).min(frontier.len());
                        for &i in &frontier[start..end] {
                            local.extend(graph.deps(i));
                            local.extend(
                                potential_deps_by_var(trace, analysis, i)
                                    .into_iter()
                                    .map(|(_, p)| p),
                            );
                        }
                    }
                    // Flush once per worker, not per claim: keeps the
                    // recorder out of the claim loop entirely.
                    if omislice_obs::enabled() {
                        omislice_obs::counter_add("frontier.claims", claims);
                    }
                    local
                })
            })
            .collect();
        let mut out = Vec::new();
        for w in workers {
            out.append(&mut w.join().expect("frontier workers do not panic"));
        }
        out
    })
}

/// Reference implementation of [`relevant_slice`]: the original hash-set
/// BFS over allocated dependence vectors and the naive potential-dep
/// scan. Kept as the oracle for the index equivalence property tests.
#[doc(hidden)]
pub fn relevant_slice_naive(trace: &Trace, analysis: &ProgramAnalysis, criterion: InstId) -> Slice {
    let graph = DepGraph::new(trace);
    let mut seen: HashSet<InstId> = HashSet::new();
    let mut queue: VecDeque<InstId> = VecDeque::new();
    seen.insert(criterion);
    queue.push_back(criterion);
    while let Some(i) = queue.pop_front() {
        for d in graph.backward_deps(i) {
            if seen.insert(d) {
                queue.push_back(d);
            }
        }
        for (_, p) in potential_deps_by_var_naive(trace, analysis, i) {
            if seen.insert(p) {
                queue.push_back(p);
            }
        }
    }
    Slice::from_insts(trace, seen)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::DepGraph;
    use omislice_interp::{run_traced, RunConfig};
    use omislice_lang::{compile, StmtId};

    fn run(src: &str, inputs: Vec<i64>) -> (Trace, ProgramAnalysis) {
        let p = compile(src).unwrap();
        let a = ProgramAnalysis::build(&p);
        let t = run_traced(&p, &a, &RunConfig::with_inputs(inputs)).trace;
        (t, a)
    }

    /// The paper's Figure 1 miniature: the error makes `save` false, the
    /// guard is not taken, `flags` keeps its stale value, and the wrong
    /// value is printed. DS misses the root cause; RS captures it.
    const FIG1: &str = "\
        global flags = 0;\
        global save = 0;\
        fn main() {\
            save = input();\
            flags = 1;\
            if save == 1 { flags = 2; }\
            print(flags);\
        }";

    #[test]
    fn relevant_slice_captures_omission_root_cause() {
        let (t, a) = run(FIG1, vec![0]); // faulty condition: save = 0
        let out = t.outputs()[0].inst;
        let ds = DepGraph::new(&t).backward_slice(out);
        assert!(!ds.contains_stmt(StmtId(0)), "DS misses save = input()");
        assert!(!ds.contains_stmt(StmtId(2)), "DS misses the guard");
        let rs = relevant_slice(&t, &a, out);
        assert!(rs.contains_stmt(StmtId(2)), "RS has the guard");
        assert!(rs.contains_stmt(StmtId(0)), "RS reaches the root cause");
        assert!(rs.dynamic_size() > ds.dynamic_size());
    }

    #[test]
    fn no_potential_edge_when_branch_was_taken() {
        let (t, a) = run(FIG1, vec![1]); // guard taken: normal dependence
        let out = t.outputs()[0].inst;
        let pds = potential_dep_instances(&t, &a, out);
        assert!(
            pds.is_empty(),
            "definition executed; dependence is explicit, not potential"
        );
    }

    #[test]
    fn condition_iii_excludes_killed_definitions() {
        // The def in the branch is killed by x = 2 after the predicate.
        let src = "\
            global x = 0;\
            fn main() {\
                if input() == 1 { x = 1; }\
                x = 2;\
                print(x);\
            }";
        let (t, a) = run(src, vec![0]);
        let out = t.outputs()[0].inst;
        let pds = potential_dep_instances(&t, &a, out);
        assert!(pds.is_empty(), "killed def gives no potential dependence");
    }

    #[test]
    fn condition_ii_excludes_own_guards() {
        // The use is control dependent on the predicate: no potential
        // dependence on it (flipping it would unexecute the use).
        let src = "\
            global x = 0;\
            fn main() {\
                if input() == 0 { x = 5; print(x); }\
            }";
        let (t, a) = run(src, vec![0]);
        let out = t.outputs()[0].inst;
        let pds = potential_dep_instances(&t, &a, out);
        assert!(pds.is_empty());
    }

    #[test]
    fn loop_instances_counted_individually() {
        // Every not-taken guard instance between the reaching def and the
        // use is a separate potential dependence — the dynamic blow-up the
        // paper describes.
        let src = "\
            global x = 0;\
            fn main() {\
                let i = 0;\
                while i < 5 {\
                    if input() == 1 { x = i; }\
                    i = i + 1;\
                }\
                print(x);\
            }";
        let (t, a) = run(src, vec![0, 0, 0, 0, 0]);
        let out = t.outputs()[0].inst;
        let pds = potential_dep_instances(&t, &a, out);
        // All 5 untaken instances of the inner if qualify, plus the final
        // (false) evaluation of the loop head: one more iteration could
        // also have produced a reaching definition.
        let mut expected: Vec<InstId> = t.instances_of(StmtId(2)).to_vec();
        expected.push(*t.instances_of(StmtId(1)).last().unwrap());
        expected.sort();
        assert_eq!(pds, expected);
    }

    #[test]
    fn figure1_array_variant_has_false_positive() {
        // The S7→S10 false dependence of the paper: a conditional store to
        // a *different* output cell still registers as potential at the
        // array granularity. Relevant slicing includes it; implicit-
        // dependence verification will reject it later.
        let src = "\
            global buf = [0; 4];\
            global save = 0;\
            fn main() {\
                save = input();\
                buf[0] = 7;\
                if save == 1 { buf[1] = 9; }\
                print(buf[0]);\
            }";
        let (t, a) = run(src, vec![0]);
        let out = t.outputs()[0].inst;
        let pds = potential_dep_instances(&t, &a, out);
        let guard = t.instances_of(StmtId(2))[0];
        assert_eq!(pds, vec![guard], "conservative array-level dependence");
    }

    #[test]
    fn relevant_slice_is_superset_of_dynamic_slice() {
        let src = "\
            global x = 0; global y = 0;\
            fn main() {\
                let a = input();\
                if a > 0 { x = 1; }\
                if a > 10 { y = 1; }\
                print(x + y);\
            }";
        let (t, a) = run(src, vec![-3]);
        let out = t.outputs()[0].inst;
        let ds = DepGraph::new(&t).backward_slice(out);
        let rs = relevant_slice(&t, &a, out);
        for &i in ds.insts() {
            assert!(rs.contains(i), "RS must contain DS instance {i}");
        }
        assert!(rs.contains_stmt(StmtId(1)));
        assert!(rs.contains_stmt(StmtId(3)));
    }
}
