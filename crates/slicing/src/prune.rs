//! Slice pruning and ranking — the `PruneSlicing()` primitive of the
//! paper's Algorithm 2.
//!
//! Given the (possibly augmented) dependence graph, the observed correct
//! and wrong outputs, and any user feedback, compute the dynamic slice of
//! the wrong output, drop every instance whose confidence is 1, and rank
//! the survivors: lowest confidence first, then closest to the failure
//! point (dependence distance), then latest execution. The head of the
//! ranking is "the most promising" instance for implicit-dependence
//! verification.

use crate::confidence::{analyze, Confidence, ConfidenceParams};
use crate::graph::{DepGraph, Slice};
use crate::profile::ValueProfile;
use omislice_analysis::ProgramAnalysis;
use omislice_trace::InstId;
use std::collections::HashSet;

/// One ranked fault candidate.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RankedInst {
    /// The instance.
    pub inst: InstId,
    /// Its confidence (lower = more suspicious).
    pub confidence: f64,
    /// Dependence distance to the failure point.
    pub distance: u32,
}

/// The outcome of `PruneSlicing()`: the full slice plus the pruned,
/// ranked fault candidate set.
#[derive(Debug, Clone)]
pub struct PrunedSlice {
    /// The full dynamic slice of the wrong output.
    pub slice: Slice,
    /// Remaining candidates, most suspicious first.
    pub ranked: Vec<RankedInst>,
    /// The confidence values the pruning used.
    pub confidence: Confidence,
}

impl PrunedSlice {
    /// The pruned slice as a [`Slice`] (for size reporting).
    pub fn pruned_slice(&self, graph: &DepGraph<'_>) -> Slice {
        Slice::from_insts(graph.trace(), self.ranked.iter().map(|r| r.inst))
    }

    /// The most suspicious candidate, if any remain.
    pub fn top(&self) -> Option<RankedInst> {
        self.ranked.first().copied()
    }

    /// Whether `inst` survived pruning.
    pub fn keeps(&self, inst: InstId) -> bool {
        self.ranked.iter().any(|r| r.inst == inst)
    }
}

/// User feedback accumulated during the interactive pruning session.
#[derive(Debug, Clone, Default)]
pub struct Feedback {
    /// Instances declared to hold benign (correct) state.
    pub benign: HashSet<InstId>,
    /// Instances declared to hold corrupted state.
    pub corrupted: HashSet<InstId>,
}

/// Runs one pruning pass (slice → confidence → prune → rank).
pub fn prune_slice(
    graph: &DepGraph<'_>,
    analysis: &ProgramAnalysis,
    profile: &ValueProfile,
    correct_outputs: &[InstId],
    wrong_output: InstId,
    feedback: &Feedback,
) -> PrunedSlice {
    let _span = omislice_obs::span("confidence-prune");
    let slice = graph.backward_slice(wrong_output);
    let confidence = analyze(&ConfidenceParams {
        graph,
        analysis,
        profile,
        correct_outputs,
        wrong_output,
        benign: &feedback.benign,
        corrupted: &feedback.corrupted,
    });
    let distances = graph.distances_from(wrong_output);
    let mut ranked: Vec<RankedInst> = slice
        .insts()
        .iter()
        .copied()
        .filter(|&i| !confidence.is_prunable(i))
        .map(|inst| RankedInst {
            inst,
            confidence: confidence.of(inst),
            distance: distances.get(&inst).copied().unwrap_or(u32::MAX),
        })
        .collect();
    ranked.sort_by(|a, b| {
        a.confidence
            .partial_cmp(&b.confidence)
            .expect("confidences are never NaN")
            .then(a.distance.cmp(&b.distance))
            .then(b.inst.cmp(&a.inst))
    });
    PrunedSlice {
        slice,
        ranked,
        confidence,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use omislice_interp::{run_traced, RunConfig};
    use omislice_lang::{compile, StmtId};
    use omislice_trace::Trace;

    fn setup(
        src: &str,
        inputs: Vec<i64>,
        profile_inputs: &[i64],
    ) -> (Trace, ProgramAnalysis, ValueProfile) {
        let p = compile(src).unwrap();
        let a = ProgramAnalysis::build(&p);
        let t = run_traced(&p, &a, &RunConfig::with_inputs(inputs)).trace;
        let mut profile = ValueProfile::new();
        for &i in profile_inputs {
            profile.add_trace(&run_traced(&p, &a, &RunConfig::with_inputs(vec![i])).trace);
        }
        (t, a, profile)
    }

    /// Figure 4 again, through the pruning lens: the certain instance is
    /// dropped, the suspicious ones remain, ranked by confidence.
    const FIG4: &str = "\
        global a = 0; global b = 0; global c = 0;\
        fn main() {\
            a = input();\
            b = a % 2;\
            c = a + 2;\
            print(b);\
            print(c);\
        }";

    #[test]
    fn pruning_drops_certain_instances() {
        let (t, a, profile) = setup(FIG4, vec![1], &[1, 3, 5, 7, 9]);
        let graph = DepGraph::new(&t);
        let outs = t.outputs();
        let ps = prune_slice(
            &graph,
            &a,
            &profile,
            &[outs[0].inst],
            outs[1].inst,
            &Feedback::default(),
        );
        let b_inst = t.instances_of(StmtId(1))[0];
        // The slice of the wrong output contains a and c but not b.
        assert!(!ps.slice.contains(b_inst));
        // c (reaches only wrong) and the wrong output rank above a.
        let order: Vec<StmtId> = ps.ranked.iter().map(|r| t.event(r.inst).stmt).collect();
        let pos = |s: u32| order.iter().position(|&x| x == StmtId(s)).unwrap();
        assert!(pos(4) < pos(0), "wrong output before a");
        assert!(pos(2) < pos(0), "c before a (lower confidence)");
    }

    #[test]
    fn ranking_puts_closest_zero_confidence_first() {
        let (t, a, profile) = setup(FIG4, vec![1], &[1, 3, 5]);
        let graph = DepGraph::new(&t);
        let outs = t.outputs();
        let ps = prune_slice(
            &graph,
            &a,
            &profile,
            &[outs[0].inst],
            outs[1].inst,
            &Feedback::default(),
        );
        let top = ps.top().unwrap();
        assert_eq!(top.confidence, 0.0);
        assert_eq!(top.distance, 0, "the failure point itself ranks first");
        assert_eq!(t.event(top.inst).stmt, StmtId(4));
    }

    #[test]
    fn benign_feedback_shrinks_the_candidate_set() {
        let (t, a, profile) = setup(FIG4, vec![1], &[1, 3, 5]);
        let graph = DepGraph::new(&t);
        let outs = t.outputs();
        let base = prune_slice(
            &graph,
            &a,
            &profile,
            &[outs[0].inst],
            outs[1].inst,
            &Feedback::default(),
        );
        let a_inst = t.instances_of(StmtId(0))[0];
        assert!(base.keeps(a_inst));
        let mut fb = Feedback::default();
        fb.benign.insert(a_inst);
        let refined = prune_slice(&graph, &a, &profile, &[outs[0].inst], outs[1].inst, &fb);
        assert!(!refined.keeps(a_inst));
        assert!(refined.ranked.len() < base.ranked.len());
    }

    #[test]
    fn pruned_slice_sizes_are_consistent() {
        let (t, a, profile) = setup(FIG4, vec![1], &[1, 3]);
        let graph = DepGraph::new(&t);
        let outs = t.outputs();
        let ps = prune_slice(
            &graph,
            &a,
            &profile,
            &[outs[0].inst],
            outs[1].inst,
            &Feedback::default(),
        );
        let pruned = ps.pruned_slice(&graph);
        assert_eq!(pruned.dynamic_size(), ps.ranked.len());
        assert!(pruned.dynamic_size() <= ps.slice.dynamic_size());
    }
}
