//! The *union dependence graph* of the paper's prototype (§4): the union
//! of all unique statement-level dependences exercised across a large
//! number of test runs. The paper uses it, together with the static CFG,
//! to compute potential dependences.
//!
//! This module provides the graph plus [`union_pd`], the union-graph
//! flavor of Definition 1's static component: a use of `v` potentially
//! depends on `(p, β)` iff some definition of `v` that was *observed*
//! reaching that use (in any profiled run) is control dependent on
//! `(p, β)`. Because observed definitions are a subset of the statically
//! possible ones, `union_pd ⊆ static_pd` — fewer false candidates at the
//! price of needing a representative test suite (exactly the prototype's
//! trade-off).

use omislice_analysis::{CdParent, ProgramAnalysis};
use omislice_lang::{StmtId, VarId};
use omislice_trace::Trace;
use std::collections::HashSet;

/// Statement-level union of dynamic dependences over profiled runs.
#[derive(Debug, Clone, Default)]
pub struct UnionGraph {
    /// Observed data dependences: `(use statement, variable, defining
    /// statement)`.
    data: HashSet<(StmtId, VarId, StmtId)>,
    /// Observed dynamic control dependences: `(statement, predicate)`.
    control: HashSet<(StmtId, StmtId)>,
    runs: usize,
}

impl UnionGraph {
    /// An empty graph.
    pub fn new() -> Self {
        UnionGraph::default()
    }

    /// Folds one trace's dependences into the union.
    pub fn add_trace(&mut self, trace: &Trace) {
        let cols = trace.columns();
        for i in trace.insts() {
            let stmt = cols.stmt_of(i);
            for &d in cols.deps_of(i) {
                if let Some(var) = cols.def_var_of(d) {
                    self.data.insert((stmt, var, cols.stmt_of(d)));
                }
            }
            if let Some(cd) = cols.cd_parent_of(i) {
                self.control.insert((stmt, cols.stmt_of(cd)));
            }
        }
        self.runs += 1;
    }

    /// Builds the union over several traces.
    pub fn from_traces<'a>(traces: impl IntoIterator<Item = &'a Trace>) -> Self {
        let mut g = UnionGraph::new();
        for t in traces {
            g.add_trace(t);
        }
        g
    }

    /// Number of runs folded in.
    pub fn run_count(&self) -> usize {
        self.runs
    }

    /// Number of unique statement-level data dependences observed.
    pub fn data_edge_count(&self) -> usize {
        self.data.len()
    }

    /// Number of unique statement-level control dependences observed.
    pub fn control_edge_count(&self) -> usize {
        self.control.len()
    }

    /// Whether `use_stmt` was ever observed reading `var` from
    /// `def_stmt`.
    pub fn observed_data_dep(&self, use_stmt: StmtId, var: VarId, def_stmt: StmtId) -> bool {
        self.data.contains(&(use_stmt, var, def_stmt))
    }

    /// The defining statements ever observed supplying `var` to
    /// `use_stmt`.
    pub fn observed_defs(&self, use_stmt: StmtId, var: VarId) -> Vec<StmtId> {
        let mut out: Vec<StmtId> = self
            .data
            .iter()
            .filter(|(u, v, _)| *u == use_stmt && *v == var)
            .map(|(_, _, d)| *d)
            .collect();
        out.sort();
        out.dedup();
        out
    }
}

/// The union-graph flavor of the static potential-dependence component:
/// predicates (with the def-executing branch) controlling a definition of
/// `var` that was *observed* reaching `use_stmt` in some profiled run.
pub fn union_pd(
    union: &UnionGraph,
    analysis: &ProgramAnalysis,
    use_stmt: StmtId,
    var: VarId,
) -> Vec<CdParent> {
    let mut out: Vec<CdParent> = Vec::new();
    for def_stmt in union.observed_defs(use_stmt, var) {
        let func = &analysis.index().stmt(def_stmt).func;
        if let Some(cd) = analysis.control_deps(func) {
            out.extend(cd.ancestors(def_stmt));
        }
    }
    out.sort();
    out.dedup();
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use omislice_interp::{run_traced, RunConfig};
    use omislice_lang::compile;

    const SRC: &str = "\
        global x = 0;\
        fn main() {\
            let c = input();\
            if c == 1 { x = 1; }\
            if c == 2 { x = 2; }\
            print(x);\
        }";

    fn graph_over(inputs: &[i64]) -> (UnionGraph, ProgramAnalysis) {
        let p = compile(SRC).unwrap();
        let a = ProgramAnalysis::build(&p);
        let mut g = UnionGraph::new();
        for &i in inputs {
            g.add_trace(&run_traced(&p, &a, &RunConfig::with_inputs(vec![i])).trace);
        }
        (g, a)
    }

    #[test]
    fn union_accumulates_observed_defs() {
        let (g, a) = graph_over(&[1, 2]);
        let x = a.index().vars().global("x").unwrap();
        // print(x) is S5; defs observed: x=1 (S2) and x=2 (S4).
        let defs = g.observed_defs(StmtId(5), x);
        assert_eq!(defs, vec![StmtId(2), StmtId(4)]);
        assert_eq!(g.run_count(), 2);
        assert!(g.data_edge_count() >= 2);
        assert!(g.control_edge_count() >= 2);
    }

    #[test]
    fn union_pd_is_subset_of_static_pd() {
        let (g, a) = graph_over(&[1, 2, 0]);
        let x = a.index().vars().global("x").unwrap();
        let from_union = union_pd(&g, &a, StmtId(5), x);
        let from_static = a.static_pd(StmtId(5), x);
        for cp in &from_union {
            assert!(
                from_static.contains(cp),
                "union PD {cp:?} missing from static PD"
            );
        }
        // With a suite covering both guards, the sets coincide here.
        assert_eq!(from_union.len(), from_static.len());
    }

    #[test]
    fn unexercised_defs_are_absent_from_union_pd() {
        // The suite never takes the second guard: the union graph knows
        // nothing about x = 2, so that guard is not a PD candidate —
        // while the conservative static analysis keeps it.
        let (g, a) = graph_over(&[1, 0]);
        let x = a.index().vars().global("x").unwrap();
        let from_union = union_pd(&g, &a, StmtId(5), x);
        let from_static = a.static_pd(StmtId(5), x);
        assert!(from_union.iter().all(|cp| cp.pred != StmtId(3)));
        assert!(from_static.iter().any(|cp| cp.pred == StmtId(3)));
        assert!(from_union.len() < from_static.len());
    }

    #[test]
    fn observed_data_dep_queries() {
        let (g, a) = graph_over(&[1]);
        let x = a.index().vars().global("x").unwrap();
        assert!(g.observed_data_dep(StmtId(5), x, StmtId(2)));
        assert!(!g.observed_data_dep(StmtId(5), x, StmtId(4)));
    }

    #[test]
    fn empty_graph_answers_conservatively() {
        let p = compile(SRC).unwrap();
        let a = ProgramAnalysis::build(&p);
        let g = UnionGraph::new();
        let x = a.index().vars().global("x").unwrap();
        assert!(g.observed_defs(StmtId(5), x).is_empty());
        assert!(union_pd(&g, &a, StmtId(5), x).is_empty());
        assert_eq!(g.run_count(), 0);
    }
}
