//! # omislice-slicing
//!
//! The slicing layer of the omislice system:
//!
//! * [`DepGraph`] / [`Slice`] — the dynamic dependence graph (augmentable
//!   with verified implicit edges) and classic backward dynamic slicing
//!   (the paper's **DS**);
//! * [`relevant_slice`] — relevant slicing over potential dependences
//!   (Definition 1), the conservative baseline (**RS**);
//! * [`ValueProfile`] — per-statement value ranges from the test suite;
//! * [`confidence`] — the PLDI 2006 confidence analysis;
//! * [`prune_slice`] — pruning + ranking (**PS**), the `PruneSlicing()`
//!   primitive of Algorithm 2.
//!
//! ```
//! use omislice_analysis::ProgramAnalysis;
//! use omislice_interp::{run_traced, RunConfig};
//! use omislice_lang::{compile, StmtId};
//! use omislice_slicing::{relevant_slice, DepGraph};
//!
//! // The motivating shape: a skipped definition leaves a stale value.
//! let program = compile(
//!     "global x = 0;\
//!      fn main() { let c = input(); if c > 0 { x = 1; } print(x); }",
//! )?;
//! let analysis = ProgramAnalysis::build(&program);
//! let run = run_traced(&program, &analysis, &RunConfig::with_inputs(vec![-1]));
//! let wrong = run.trace.outputs()[0].inst;
//!
//! let ds = DepGraph::new(&run.trace).backward_slice(wrong);
//! assert!(!ds.contains_stmt(StmtId(1)), "dynamic slice misses the guard");
//! let rs = relevant_slice(&run.trace, &analysis, wrong);
//! assert!(rs.contains_stmt(StmtId(1)), "relevant slice captures it");
//! # Ok::<(), omislice_lang::FrontendError>(())
//! ```

pub mod confidence;
pub mod graph;
pub mod profile;
pub mod prune;
pub mod relevant;
pub mod union_graph;

pub use confidence::{
    analyze as analyze_confidence, partial_confidence, Confidence, ConfidenceParams,
};
pub use graph::{DepGraph, ExtraEdges, Slice};
pub use profile::ValueProfile;
pub use prune::{prune_slice, Feedback, PrunedSlice, RankedInst};
pub use relevant::{
    is_potential_dep, potential_dep_instances, potential_deps_by_var, potential_deps_by_var_naive,
    relevant_slice, relevant_slice_jobs, relevant_slice_naive, relevant_slice_on,
};
pub use union_graph::{union_pd, UnionGraph};
