//! Value profiles collected over a test suite.
//!
//! The paper's prototype "executes the binary with a large set of test
//! cases to ... collect value profile for the confidence analysis". A
//! [`ValueProfile`] records the distinct values each statement produced
//! across runs; the observed *range* approximates the domain size used in
//! the PLDI 2006 confidence estimate.

use omislice_lang::StmtId;
use omislice_trace::{Trace, Value};
use std::collections::{HashMap, HashSet};

/// Distinct values observed per statement across profiled runs.
#[derive(Debug, Clone, Default)]
pub struct ValueProfile {
    values: HashMap<StmtId, HashSet<Value>>,
    runs: usize,
}

impl ValueProfile {
    /// An empty profile.
    pub fn new() -> Self {
        ValueProfile::default()
    }

    /// Folds one trace's values into the profile.
    pub fn add_trace(&mut self, trace: &Trace) {
        for ev in trace.iter_events() {
            if let Some(v) = ev.value {
                self.values.entry(ev.stmt).or_default().insert(v);
            }
        }
        self.runs += 1;
    }

    /// Builds a profile from several traces at once.
    pub fn from_traces<'a>(traces: impl IntoIterator<Item = &'a Trace>) -> Self {
        let mut p = ValueProfile::new();
        for t in traces {
            p.add_trace(t);
        }
        p
    }

    /// Number of traces folded in.
    pub fn run_count(&self) -> usize {
        self.runs
    }

    /// Number of distinct values observed at `stmt` (0 if never executed
    /// or it produces no value).
    pub fn range(&self, stmt: StmtId) -> usize {
        self.values.get(&stmt).map_or(0, HashSet::len)
    }

    /// Whether `value` was ever observed at `stmt`.
    pub fn observed(&self, stmt: StmtId, value: Value) -> bool {
        self.values.get(&stmt).is_some_and(|s| s.contains(&value))
    }

    /// The distinct values observed at `stmt`, in sorted order.
    pub fn values(&self, stmt: StmtId) -> Vec<Value> {
        let mut out: Vec<Value> = self
            .values
            .get(&stmt)
            .map(|s| s.iter().copied().collect())
            .unwrap_or_default();
        out.sort();
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use omislice_analysis::ProgramAnalysis;
    use omislice_interp::{run_traced, RunConfig};
    use omislice_lang::compile;

    #[test]
    fn profile_accumulates_distinct_values() {
        let p = compile("fn main() { let x = input(); let y = x % 2; print(y); }").unwrap();
        let a = ProgramAnalysis::build(&p);
        let mut profile = ValueProfile::new();
        for input in 0..10 {
            let run = run_traced(&p, &a, &RunConfig::with_inputs(vec![input]));
            profile.add_trace(&run.trace);
        }
        assert_eq!(profile.run_count(), 10);
        // x saw 10 distinct values; y only 2 (the many-to-one mapping).
        assert_eq!(profile.range(StmtId(0)), 10);
        assert_eq!(profile.range(StmtId(1)), 2);
        assert!(profile.observed(StmtId(1), Value::Int(1)));
        assert!(!profile.observed(StmtId(1), Value::Int(7)));
        assert_eq!(
            profile.values(StmtId(1)),
            vec![Value::Int(0), Value::Int(1)]
        );
    }

    #[test]
    fn unexecuted_statement_has_zero_range() {
        let p = compile("fn main() { if false { print(1); } }").unwrap();
        let a = ProgramAnalysis::build(&p);
        let run = run_traced(&p, &a, &RunConfig::default());
        let profile = ValueProfile::from_traces([&run.trace]);
        assert_eq!(profile.range(StmtId(1)), 0);
        assert_eq!(profile.range(StmtId(99)), 0);
    }
}
