//! Confidence analysis (Zhang, Gupta, Gupta — PLDI 2006), as used by the
//! paper's pruning step (§3.2 "Confidence Analysis Based Pruning").
//!
//! Each instance gets a confidence in `[0, 1]` — the likelihood that it
//! produced a *correct* value:
//!
//! * instances whose value is known correct (correct outputs, instances
//!   the user marked benign) have confidence 1, and certainty propagates
//!   backwards through *invertible* (one-to-one) computations — if
//!   `c = a + 2` is correct, `a` must be too;
//! * the wrong output and user-marked corrupted instances are pinned at 0;
//! * instances that reach a correct output only through many-to-one
//!   computations (`%`, `/`, comparisons, ...) get the partial estimate
//!   `1 − log 2 ⁄ log |range|`, with the range approximated by the value
//!   profile (Figure 4's `C = f(range(A))`);
//! * instances with no correct-output evidence at all get 0.
//!
//! Confidence is computed over the *augmented* graph, so verified
//! implicit dependence edges participate — per the paper, propagating
//! along unverified potential edges would sanitize the root cause, which
//! is exactly why this analysis must not be combined with relevant
//! slicing directly.

use crate::graph::DepGraph;
use crate::profile::ValueProfile;
use omislice_analysis::ProgramAnalysis;
use omislice_trace::InstId;
use std::collections::{HashSet, VecDeque};

/// Inputs to one confidence computation.
#[derive(Debug)]
pub struct ConfidenceParams<'a> {
    /// The (possibly augmented) dependence graph.
    pub graph: &'a DepGraph<'a>,
    /// Static analysis results (for per-statement invertibility).
    pub analysis: &'a ProgramAnalysis,
    /// Value profile from the test suite (for ranges).
    pub profile: &'a ValueProfile,
    /// Output instances observed to be correct.
    pub correct_outputs: &'a [InstId],
    /// The first wrong output — the slicing criterion.
    pub wrong_output: InstId,
    /// Instances the user declared benign (correct program state).
    pub benign: &'a HashSet<InstId>,
    /// Instances the user declared corrupted.
    pub corrupted: &'a HashSet<InstId>,
}

/// Per-instance confidence values.
#[derive(Debug, Clone)]
pub struct Confidence {
    conf: Vec<f64>,
}

impl Confidence {
    /// The confidence of `inst`.
    ///
    /// # Panics
    ///
    /// Panics if `inst` is out of range for the analyzed trace.
    pub fn of(&self, inst: InstId) -> f64 {
        self.conf[inst.index()]
    }

    /// Whether `inst` can be pruned from the fault candidate set
    /// (confidence 1).
    pub fn is_prunable(&self, inst: InstId) -> bool {
        self.of(inst) >= 1.0 - f64::EPSILON
    }
}

/// The partial-confidence estimate for a value whose only correctness
/// evidence passes through many-to-one computations: `1 − log2/log range`
/// (0 when the observed range has two or fewer values).
pub fn partial_confidence(range: usize) -> f64 {
    if range <= 2 {
        0.0
    } else {
        1.0 - (2f64).ln() / (range as f64).ln()
    }
}

/// Runs the analysis.
pub fn analyze(params: &ConfidenceParams<'_>) -> Confidence {
    let trace = params.graph.trace();
    let n = trace.len();

    // 1. Certainty propagation: correct values flow backwards through
    //    invertible computations along data-dependence edges.
    let mut certain = vec![false; n];
    let mut pinned_zero = vec![false; n];
    pinned_zero[params.wrong_output.index()] = true;
    for &c in params.corrupted {
        pinned_zero[c.index()] = true;
    }
    let mut queue: VecDeque<InstId> = VecDeque::new();
    for &seed in params.correct_outputs.iter().chain(params.benign.iter()) {
        if !pinned_zero[seed.index()] && !certain[seed.index()] {
            certain[seed.index()] = true;
            queue.push_back(seed);
        }
    }
    let cols = trace.columns();
    while let Some(j) = queue.pop_front() {
        let mut mark = |i: InstId, queue: &mut VecDeque<InstId>| {
            if !certain[i.index()] && !pinned_zero[i.index()] {
                certain[i.index()] = true;
                queue.push_back(i);
            }
        };
        // One-to-one computations pin their inputs (Figure 4's `+` case);
        // predicates pin operands whose observed domain is binary — the
        // range-based estimate of PLDI 2006 (outcome + two-valued domain
        // determine the value).
        if params.analysis.index().stmt(cols.stmt_of(j)).invertible {
            for &i in cols.deps_of(j) {
                mark(i, &mut queue);
            }
        } else if cols.branch_of(j).is_some() {
            for &i in cols.deps_of(j) {
                if params.profile.range(cols.stmt_of(i)) <= 2 {
                    mark(i, &mut queue);
                }
            }
        }
        // Added dependence edges transfer correctness evidence to their
        // target: `j` (implicitly) depends on the predicate, and `j` being
        // correct exonerates it. This is exactly the Figure 5 pruning the
        // paper wants across *verified* edges — and exactly the
        // root-sanitizing hazard it warns about when the edges are merely
        // *potential* (§3.2), which the ablation harness demonstrates.
        for &i in params.graph.extra_edges_of(j) {
            mark(i, &mut queue);
        }
    }

    // 2. Output reachability over the augmented graph. Dependences point
    //    strictly backwards in time, so one descending sweep suffices.
    const CORRECT: u8 = 1;
    const WRONG: u8 = 2;
    let mut reach = vec![0u8; n];
    for &c in params.correct_outputs {
        reach[c.index()] |= CORRECT;
    }
    reach[params.wrong_output.index()] |= WRONG;
    for idx in (0..n).rev() {
        let mask = reach[idx];
        if mask == 0 {
            continue;
        }
        for d in params.graph.deps(InstId(idx as u32)) {
            reach[d.index()] |= mask;
        }
    }

    // 3. Combine.
    let conf = (0..n)
        .map(|idx| {
            if pinned_zero[idx] {
                0.0
            } else if certain[idx] {
                1.0
            } else if reach[idx] & CORRECT != 0 {
                let stmt = cols.stmt_of(InstId(idx as u32));
                partial_confidence(params.profile.range(stmt))
            } else {
                0.0
            }
        })
        .collect();
    Confidence { conf }
}

#[cfg(test)]
mod tests {
    use super::*;
    use omislice_interp::{run_traced, RunConfig};
    use omislice_lang::{compile, StmtId};
    use omislice_trace::Trace;

    fn run(src: &str, inputs: Vec<i64>) -> (Trace, ProgramAnalysis) {
        let p = compile(src).unwrap();
        let a = ProgramAnalysis::build(&p);
        let t = run_traced(&p, &a, &RunConfig::with_inputs(inputs)).trace;
        (t, a)
    }

    fn profile_over(src: &str, inputs: &[i64]) -> ValueProfile {
        let p = compile(src).unwrap();
        let a = ProgramAnalysis::build(&p);
        let mut profile = ValueProfile::new();
        for &i in inputs {
            profile.add_trace(&run_traced(&p, &a, &RunConfig::with_inputs(vec![i])).trace);
        }
        profile
    }

    /// The paper's Figure 4: `a=1; b=a%2; c=a+2; print(b) ✓; print(c) ✗`.
    const FIG4: &str = "\
        global a = 0; global b = 0; global c = 0;\
        fn main() {\
            a = input();\
            b = a % 2;\
            c = a + 2;\
            print(b);\
            print(c);\
        }";

    #[test]
    fn figure4_confidence_values() {
        let (t, analysis) = run(FIG4, vec![1]);
        let profile = profile_over(FIG4, &[1, 3, 5, 7, 9, 11, 13, 15]);
        let graph = DepGraph::new(&t);
        let outs = t.outputs();
        let (correct, wrong) = (outs[0].inst, outs[1].inst);
        let conf = analyze(&ConfidenceParams {
            graph: &graph,
            analysis: &analysis,
            profile: &profile,
            correct_outputs: &[correct],
            wrong_output: wrong,
            benign: &HashSet::new(),
            corrupted: &HashSet::new(),
        });
        let inst = |s: u32| t.instances_of(StmtId(s))[0];
        // print(b) correct → b = a%2 has confidence 1 (print is identity).
        assert!(conf.is_prunable(inst(1)), "stmt 20 of the paper: conf 1");
        // c = a+2 reaches only the wrong output → 0.
        assert_eq!(conf.of(inst(2)), 0.0, "stmt 30 of the paper: conf 0");
        // a = input(): correctness evidence only through %2 → partial.
        let ca = conf.of(inst(0));
        assert!(ca > 0.0 && ca < 1.0, "stmt 10: range-based, got {ca}");
        // The wrong output itself is 0.
        assert_eq!(conf.of(wrong), 0.0);
        assert!(conf.is_prunable(correct));
    }

    #[test]
    fn certainty_propagates_through_invertible_chain() {
        let src = "\
            fn main() {\
                let a = input();\
                let b = a + 2;\
                let c = b - 5;\
                print(c);\
                print(input());\
            }";
        let (t, analysis) = run(src, vec![10, 0]);
        let profile = profile_over(src, &[1, 2, 3]);
        let graph = DepGraph::new(&t);
        let outs = t.outputs();
        let conf = analyze(&ConfidenceParams {
            graph: &graph,
            analysis: &analysis,
            profile: &profile,
            correct_outputs: &[outs[0].inst],
            wrong_output: outs[1].inst,
            benign: &HashSet::new(),
            corrupted: &HashSet::new(),
        });
        // a, b, c all certain through the + / - chain.
        for s in 0..3 {
            assert!(conf.is_prunable(t.instances_of(StmtId(s))[0]), "S{s}");
        }
    }

    #[test]
    fn benign_marking_acts_like_a_correct_output() {
        let src = "\
            fn main() {\
                let a = input();\
                let b = a + 1;\
                print(b);\
            }";
        let (t, analysis) = run(src, vec![4]);
        let profile = profile_over(src, &[1, 2]);
        let graph = DepGraph::new(&t);
        let wrong = t.outputs()[0].inst;
        // Without benign info: everything suspect (single wrong output).
        let base = analyze(&ConfidenceParams {
            graph: &graph,
            analysis: &analysis,
            profile: &profile,
            correct_outputs: &[],
            wrong_output: wrong,
            benign: &HashSet::new(),
            corrupted: &HashSet::new(),
        });
        let a_inst = t.instances_of(StmtId(0))[0];
        let b_inst = t.instances_of(StmtId(1))[0];
        assert_eq!(base.of(a_inst), 0.0);
        // Mark b as benign: a becomes certain through the + chain.
        let benign: HashSet<InstId> = [b_inst].into_iter().collect();
        let with = analyze(&ConfidenceParams {
            graph: &graph,
            analysis: &analysis,
            profile: &profile,
            correct_outputs: &[],
            wrong_output: wrong,
            benign: &benign,
            corrupted: &HashSet::new(),
        });
        assert!(with.is_prunable(a_inst));
        assert!(with.is_prunable(b_inst));
    }

    #[test]
    fn corrupted_marking_pins_zero_and_blocks_propagation() {
        let src = "\
            fn main() {\
                let a = input();\
                let b = a + 1;\
                print(b);\
                print(a);\
            }";
        let (t, analysis) = run(src, vec![4]);
        let profile = profile_over(src, &[1]);
        let graph = DepGraph::new(&t);
        let outs = t.outputs();
        let a_inst = t.instances_of(StmtId(0))[0];
        let corrupted: HashSet<InstId> = [a_inst].into_iter().collect();
        let conf = analyze(&ConfidenceParams {
            graph: &graph,
            analysis: &analysis,
            profile: &profile,
            correct_outputs: &[outs[0].inst],
            wrong_output: outs[1].inst,
            benign: &HashSet::new(),
            corrupted: &corrupted,
        });
        assert_eq!(conf.of(a_inst), 0.0, "corruption overrides propagation");
    }

    #[test]
    fn extra_edges_extend_reachability() {
        // Without the implicit edge the guard reaches no output → 0; the
        // edge gives it wrong-output reachability (still 0) but its input
        // becomes part of the graph. Verify via slice membership + conf.
        let src = "\
            global x = 0;\
            fn main() {\
                let c = input();\
                if c > 0 { x = 1; }\
                print(x);\
            }";
        let (t, analysis) = run(src, vec![-1]);
        let profile = profile_over(src, &[1, -1]);
        let wrong = t.outputs()[0].inst;
        let guard = t.instances_of(StmtId(1))[0];
        let mut graph = DepGraph::new(&t);
        graph.add_edge(wrong, guard);
        let conf = analyze(&ConfidenceParams {
            graph: &graph,
            analysis: &analysis,
            profile: &profile,
            correct_outputs: &[],
            wrong_output: wrong,
            benign: &HashSet::new(),
            corrupted: &HashSet::new(),
        });
        assert_eq!(conf.of(guard), 0.0, "guard now on the failure path");
        let slice = graph.backward_slice(wrong);
        assert!(slice.contains(guard));
    }

    #[test]
    fn partial_confidence_is_monotone_in_range() {
        assert_eq!(partial_confidence(0), 0.0);
        assert_eq!(partial_confidence(2), 0.0);
        let c4 = partial_confidence(4);
        let c16 = partial_confidence(16);
        let c1000 = partial_confidence(1000);
        assert!(c4 > 0.0 && c4 < c16 && c16 < c1000 && c1000 < 1.0);
        assert!((partial_confidence(4) - 0.5).abs() < 1e-9);
    }
}
