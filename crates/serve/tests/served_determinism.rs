//! Serve-level determinism: concurrent clients hammering one server —
//! cold cache, warm cache, different `jobs` and `scheduler` settings —
//! must all receive the *same* localization journal, byte-identical
//! after normalization, and identical to a journal built in-process
//! without any server at all.
//!
//! Normalization is the diffcheck contract plus one serving-specific
//! allowance: timing fields are stripped, the header's `jobs`/`resume`
//! fields are dropped (configuration echo, not content), and the
//! summary's `reexecutions` counter is dropped — a warm request is
//! answered from the server's shared verification memo without
//! re-executing, so that counter legitimately differs with cache
//! warmth. Everything else must not move.

use omislice_bench::client::ServeClient;
use omislice_obs::{json, strip_timing, to_jsonl, Json};
use omislice_serve::{start, ServeConfig, ServerHandle};
use proptest::prelude::*;
use std::net::SocketAddr;
use std::sync::OnceLock;

const FAULTY: &str = "fn main() { let a = input(); let s = 0; while a > 0 { if a > 3 { s = s + a; } a = a - 1; } print(s); }";
const FIXED: &str = "fn main() { let a = input(); let s = 0; while a > 0 { if a > 2 { s = s + a; } a = a - 1; } print(s); }";

/// One server shared by every test case in this binary; its worker
/// threads live for the process lifetime.
fn server_addr() -> SocketAddr {
    static HANDLE: OnceLock<ServerHandle> = OnceLock::new();
    HANDLE
        .get_or_init(|| {
            start(ServeConfig {
                addr: "127.0.0.1:0".to_string(),
                workers: 4,
                ..ServeConfig::default()
            })
            .expect("in-process server starts")
        })
        .addr()
}

fn locate_body(input: i64, jobs: u64, scheduler: &str) -> Json {
    Json::object([
        ("faulty", Json::str(FAULTY)),
        ("fixed", Json::str(FIXED)),
        ("input", Json::Array(vec![Json::Int(input)])),
        ("jobs", Json::UInt(jobs)),
        ("scheduler", Json::str(scheduler)),
        ("journal", Json::Bool(true)),
        ("label", Json::str("determinism-probe")),
    ])
}

/// Strips timing, then drops the header's `jobs`/`resume` echo and the
/// summary's warmth-dependent `reexecutions` counter.
fn normalize(jsonl: &str) -> String {
    let stripped = strip_timing(jsonl).expect("journal strips");
    let mut out = String::new();
    for line in stripped.lines() {
        let record = json::parse(line).expect("journal line parses");
        let ty = record
            .get("type")
            .and_then(Json::as_str)
            .map(str::to_string);
        let Json::Object(fields) = record else {
            panic!("journal record is not an object: {line}");
        };
        let kept: Vec<(String, Json)> = fields
            .into_iter()
            .filter(|(k, _)| match ty.as_deref() {
                Some("header") => k != "jobs" && k != "resume",
                Some("summary") => k != "reexecutions",
                _ => true,
            })
            .collect();
        out.push_str(&Json::Object(kept).to_string());
        out.push('\n');
    }
    out
}

/// The normalized journal carried by one `/locate` response.
fn normalized_journal(doc: &Json) -> String {
    let records = doc
        .get("journal")
        .and_then(Json::as_array)
        .unwrap_or_else(|| panic!("response lacks a journal: {doc}"));
    normalize(&to_jsonl(records))
}

/// The same journal built entirely in-process, no server involved: the
/// ground truth every served response must match.
fn reference_journal(input: i64) -> String {
    use omislice::omislice_interp::{run_traced, RunConfig};
    use omislice::omislice_lang::compile;
    use omislice::omislice_slicing::ValueProfile;
    use omislice::{build_journal, locate_fault, GroundTruthOracle, JournalMeta, LocateConfig};
    use omislice_analysis::ProgramAnalysis;

    let faulty = compile(FAULTY).expect("faulty compiles");
    let fixed = compile(FIXED).expect("fixed compiles");
    let analysis = ProgramAnalysis::build(&faulty);
    let fixed_analysis = ProgramAnalysis::build(&fixed);
    let config = RunConfig::with_inputs(vec![input]);
    let trace = run_traced(&faulty, &analysis, &config).trace;
    let mut profile = ValueProfile::new();
    profile.add_trace(&trace);
    let roots = omislice_corpus::try_seeded_roots(&fixed, &faulty).expect("seeded roots");
    let oracle = GroundTruthOracle::new(&fixed, &fixed_analysis, &config, roots);
    let lc = LocateConfig::default();
    let outcome = locate_fault(&faulty, &analysis, &config, &trace, &profile, &oracle, &lc)
        .expect("locate succeeds");
    let meta = JournalMeta {
        program: "determinism-probe".to_string(),
    };
    normalize(&to_jsonl(&build_journal(
        &meta, &lc, &outcome, &trace, None, None, None,
    )))
}

fn post_locate(addr: SocketAddr, input: i64, jobs: u64, scheduler: &str) -> Json {
    let response = ServeClient::new(addr.to_string())
        .post("/locate", &locate_body(input, jobs, scheduler))
        .expect("locate round-trips");
    assert_eq!(
        response.status, 200,
        "locate (jobs={jobs}, scheduler={scheduler}) failed: {}",
        response.body
    );
    response.json().expect("locate response parses")
}

/// Cold then warm: one priming request builds the artifacts, then four
/// concurrent clients with different jobs/scheduler settings must all
/// hit the cache and agree byte-for-byte.
fn assert_served_determinism(input: i64) {
    let addr = server_addr();
    let cold = post_locate(addr, input, 1, "trie");
    let cold_journal = normalized_journal(&cold);

    let threads: Vec<_> = [(1u64, "trie"), (4, "trie"), (1, "flat"), (4, "flat")]
        .into_iter()
        .map(|(jobs, scheduler)| {
            std::thread::spawn(move || {
                let doc = post_locate(addr, input, jobs, scheduler);
                (jobs, scheduler, doc)
            })
        })
        .collect();
    for t in threads {
        let (jobs, scheduler, doc) = t.join().expect("client thread completes");
        assert_eq!(
            doc.get("cache").and_then(Json::as_str),
            Some("hit"),
            "warm request (jobs={jobs}, scheduler={scheduler}) missed the artifact cache"
        );
        assert_eq!(
            normalized_journal(&doc),
            cold_journal,
            "served journal (jobs={jobs}, scheduler={scheduler}) differs from the cold one"
        );
    }

    assert_eq!(
        cold_journal,
        reference_journal(input),
        "served journal differs from the in-process pipeline's"
    );
}

/// Four clients racing on a *cold* cache — every one may trigger its own
/// build, yet all four must return the same journal.
#[test]
fn concurrent_cold_clients_agree_with_the_in_process_pipeline() {
    let addr = server_addr();
    let input = 9;
    let threads: Vec<_> = (0..4)
        .map(|_| {
            std::thread::spawn(move || normalized_journal(&post_locate(addr, input, 1, "trie")))
        })
        .collect();
    let journals: Vec<String> = threads
        .into_iter()
        .map(|t| t.join().expect("client thread completes"))
        .collect();
    let reference = reference_journal(input);
    for (i, j) in journals.iter().enumerate() {
        assert_eq!(
            *j, reference,
            "cold racing client {i} got a journal differing from the in-process pipeline"
        );
    }
}

#[test]
fn warm_clients_across_configs_agree() {
    assert_served_determinism(6);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(5))]

    /// Any fault-exposing input (the programs disagree for inputs >= 3)
    /// yields one deterministic journal regardless of cache warmth,
    /// client concurrency, jobs, or scheduler.
    #[test]
    fn served_journals_are_deterministic(input in 3i64..=10) {
        assert_served_determinism(input);
    }
}
