//! Request handlers: JSON body in, JSON value out.
//!
//! Every handler is a pure function from a parsed body to either a
//! response document or an [`ApiError`] carrying the HTTP status — the
//! transport, worker pool, and panic isolation live in
//! [`server`](crate::server). The locate pipeline mirrors the CLI's
//! `cmd_locate` step for step so a served report is byte-identical to
//! the in-process one: artifacts resolve (or build) under a
//! [`Supervisor`], one counted deadline check runs after trace
//! acquisition, and `locate_fault` runs with the deadline and the
//! server's persistent [`VerifyMemo`].

use crate::cache::{fnv64, key_hex, parse_key_hex, SessionArtifacts, SliceArtifacts};
use crate::server::ServerState;
use omislice::omislice_interp::{run_traced, BudgetSchedule, FaultPlan, RunConfig};
use omislice::omislice_lang::{compile, printer::stmt_head, Program};
use omislice::omislice_slicing::{relevant_slice_jobs, DepGraph, Slice, ValueProfile};
use omislice::omislice_trace::supervisor::chaos_hit;
use omislice::omislice_trace::{take_recovery, ChaosAction, ChaosPlan, ChaosSite, Supervisor};
use omislice::{
    build_journal, describe_inst, locate_fault, render_explain, render_report, GroundTruthOracle,
    JournalMeta, LocateConfig, SchedulerMode, VerifierMode,
};
use omislice_analysis::ProgramAnalysis;
use omislice_bench::diffcheck::{run_diffcheck, DiffcheckOptions};
use omislice_obs::{Json, MetricSet};
use std::sync::atomic::Ordering;
use std::sync::Arc;

/// A handler failure: the HTTP status, a stable machine-readable code,
/// and a human-readable message.
#[derive(Debug)]
pub struct ApiError {
    pub status: u16,
    pub code: &'static str,
    pub message: String,
}

impl ApiError {
    pub fn bad(code: &'static str, message: impl Into<String>) -> ApiError {
        ApiError {
            status: 400,
            code,
            message: message.into(),
        }
    }
}

/// The `{"error":{...}}` envelope every failure response uses.
pub fn error_body(code: &str, message: &str) -> Json {
    Json::object([(
        "error",
        Json::object([("code", Json::str(code)), ("message", Json::str(message))]),
    )])
}

// --- request field helpers -------------------------------------------

fn opt_str<'a>(body: &'a Json, key: &str) -> Result<Option<&'a str>, ApiError> {
    match body.get(key) {
        None | Some(Json::Null) => Ok(None),
        Some(v) => v
            .as_str()
            .map(Some)
            .ok_or_else(|| ApiError::bad("bad-field", format!("`{key}` must be a string"))),
    }
}

fn req_str<'a>(body: &'a Json, key: &str) -> Result<&'a str, ApiError> {
    opt_str(body, key)?
        .ok_or_else(|| ApiError::bad("missing-field", format!("`{key}` is required")))
}

fn opt_bool(body: &Json, key: &str) -> Result<bool, ApiError> {
    match body.get(key) {
        None | Some(Json::Null) => Ok(false),
        Some(v) => v
            .as_bool()
            .ok_or_else(|| ApiError::bad("bad-field", format!("`{key}` must be a boolean"))),
    }
}

fn opt_u64(body: &Json, key: &str) -> Result<Option<u64>, ApiError> {
    match body.get(key) {
        None | Some(Json::Null) => Ok(None),
        Some(v) => match v.as_int() {
            Some(n) if n >= 0 => Ok(Some(n as u64)),
            _ => Err(ApiError::bad(
                "bad-field",
                format!("`{key}` must be a non-negative integer"),
            )),
        },
    }
}

/// Parses an input stream field: a JSON array of integers or the CLI's
/// comma-separated string form. Absent means no inputs.
fn inputs_field(body: &Json, key: &str) -> Result<Vec<i64>, ApiError> {
    match body.get(key) {
        None | Some(Json::Null) => Ok(Vec::new()),
        Some(Json::Array(items)) => items
            .iter()
            .map(|v| {
                v.as_int().ok_or_else(|| {
                    ApiError::bad("bad-field", format!("`{key}` must hold integers"))
                })
            })
            .collect(),
        Some(Json::Str(t)) => parse_input_text(t)
            .map_err(|s| ApiError::bad("bad-field", format!("bad value `{s}` in `{key}`"))),
        Some(_) => Err(ApiError::bad(
            "bad-field",
            format!("`{key}` must be an array of integers or a comma-separated string"),
        )),
    }
}

fn parse_input_text(text: &str) -> Result<Vec<i64>, String> {
    if text.trim().is_empty() {
        return Ok(Vec::new());
    }
    text.split(',')
        .map(|s| s.trim().parse::<i64>().map_err(|_| s.to_string()))
        .collect()
}

/// Parses the profile-input field: an array of input streams or the
/// CLI's `;`-separated string form.
fn profiles_field(body: &Json) -> Result<Vec<Vec<i64>>, ApiError> {
    match body.get("profile") {
        None | Some(Json::Null) => Ok(Vec::new()),
        Some(Json::Array(items)) => items
            .iter()
            .map(|part| match part {
                Json::Array(vals) => vals
                    .iter()
                    .map(|v| {
                        v.as_int().ok_or_else(|| {
                            ApiError::bad("bad-field", "`profile` must hold integer arrays")
                        })
                    })
                    .collect(),
                _ => Err(ApiError::bad(
                    "bad-field",
                    "`profile` must be an array of integer arrays",
                )),
            })
            .collect(),
        Some(Json::Str(t)) => t
            .split(';')
            .map(|part| {
                parse_input_text(part).map_err(|s| {
                    ApiError::bad("bad-field", format!("bad value `{s}` in `profile`"))
                })
            })
            .collect(),
        Some(_) => Err(ApiError::bad(
            "bad-field",
            "`profile` must be an array of integer arrays or a `;`-separated string",
        )),
    }
}

fn mode_field(body: &Json) -> Result<VerifierMode, ApiError> {
    Ok(match opt_str(body, "mode")? {
        None | Some("edge") => VerifierMode::Edge,
        Some("path") => VerifierMode::Path,
        Some("value") => VerifierMode::ValueChange,
        Some(other) => {
            return Err(ApiError::bad(
                "bad-field",
                format!("unknown mode `{other}` (edge|path|value)"),
            ))
        }
    })
}

fn jobs_field(body: &Json) -> Result<usize, ApiError> {
    match opt_u64(body, "jobs")? {
        None => Ok(1),
        Some(n) if (1..=256).contains(&n) => Ok(n as usize),
        Some(n) => Err(ApiError::bad(
            "bad-field",
            format!("`jobs` must be between 1 and 256, got {n}"),
        )),
    }
}

/// Builds the supervisor for one request from `chaos`/`deadline_ms`.
fn supervisor_fields(body: &Json) -> Result<Supervisor, ApiError> {
    let chaos = opt_str(body, "chaos")?
        .map(ChaosPlan::parse)
        .transpose()
        .map_err(|e| ApiError::bad("bad-field", e))?;
    let mut sup = Supervisor::new().with_chaos(chaos);
    if let Some(ms) = opt_u64(body, "deadline_ms")? {
        sup = sup.with_deadline_ms(ms);
    }
    Ok(sup)
}

fn compile_src(source: &str, which: &str) -> Result<Program, ApiError> {
    compile(source).map_err(|e| {
        ApiError::bad(
            "compile-error",
            format!(
                "{which} program:\n{}",
                omislice::omislice_lang::render_frontend_error(source, &e)
            ),
        )
    })
}

/// Canonical text forms used for cache keying, so `[1,2]` and `"1,2"`
/// resolve to the same artifacts.
fn canonical_inputs(inputs: &[i64]) -> String {
    inputs
        .iter()
        .map(|v| v.to_string())
        .collect::<Vec<_>>()
        .join(",")
}

fn canonical_profiles(profiles: &[Vec<i64>]) -> String {
    profiles
        .iter()
        .map(|p| canonical_inputs(p))
        .collect::<Vec<_>>()
        .join(";")
}

// --- POST /locate ----------------------------------------------------

/// Resolves the session artifacts for a locate request: by `program`
/// hash (hit required), or by sources (cache hit or a fresh build under
/// the supervisor's chaos/deadline scope).
fn resolve_session(
    state: &ServerState,
    body: &Json,
    sup: &Supervisor,
) -> Result<(Arc<SessionArtifacts>, &'static str), ApiError> {
    if let Some(hex) = opt_str(body, "program")? {
        let key = parse_key_hex(hex)
            .ok_or_else(|| ApiError::bad("bad-field", format!("bad program hash `{hex}`")))?;
        return match state.cache.get_session(key) {
            Some(a) => Ok((a, "hit")),
            None => Err(ApiError {
                status: 404,
                code: "unknown-program",
                message: format!("no cached program {hex}; send sources to (re)build it"),
            }),
        };
    }
    let faulty_src = req_str(body, "faulty")?;
    let fixed_src = req_str(body, "fixed")?;
    let inputs = inputs_field(body, "input")?;
    let profiles = profiles_field(body)?;
    let key = fnv64(&[
        b"locate",
        faulty_src.as_bytes(),
        fixed_src.as_bytes(),
        canonical_inputs(&inputs).as_bytes(),
        canonical_profiles(&profiles).as_bytes(),
    ]);
    if let Some(a) = state.cache.get_session(key) {
        return Ok((a, "hit"));
    }

    // Fresh build: trace recording and profile runs execute under the
    // request's chaos/deadline scope, exactly like the CLI pipeline.
    let built = sup.run(|| -> Result<SessionArtifacts, ApiError> {
        let faulty = compile_src(faulty_src, "faulty")?;
        let fixed = compile_src(fixed_src, "fixed")?;
        let analysis = ProgramAnalysis::build(&faulty);
        let fixed_analysis = ProgramAnalysis::build(&fixed);
        let config = RunConfig::with_inputs(inputs.clone());
        let trace = run_traced(&faulty, &analysis, &config).trace;
        let mut profile = ValueProfile::new();
        profile.add_trace(&trace);
        for spec in &profiles {
            let cfg = RunConfig::with_inputs(spec.clone());
            profile.add_trace(&run_traced(&faulty, &analysis, &cfg).trace);
        }
        let roots = omislice_corpus::try_seeded_roots(&fixed, &faulty)
            .map_err(|m| ApiError::bad("structural-mismatch", m))?;
        if roots.is_empty() {
            return Err(ApiError::bad(
                "identical-programs",
                "fixed and faulty programs are identical",
            ));
        }
        let oracle = GroundTruthOracle::new(&fixed, &fixed_analysis, &config, roots.clone());
        Ok(SessionArtifacts {
            key,
            faulty,
            analysis,
            config,
            trace,
            profile,
            oracle,
            roots,
        })
    })?;

    let bytes = faulty_src.len()
        + fixed_src.len()
        + built.trace.columns().bytes()
        + built.oracle.reference().columns().bytes()
        + 4096;
    let built = Arc::new(built);
    // A deadline that expired during the build leaves a partial trace:
    // serve the partial result but never cache it.
    if !sup.deadline_expired() {
        state.cache.insert_session(key, Arc::clone(&built), bytes);
    }
    Ok((built, "miss"))
}

/// `POST /locate`: run (or replay) fault localization for one program
/// version, sharing artifacts and the verification memo across requests.
pub fn handle_locate(state: &ServerState, body: &Json) -> Result<Json, ApiError> {
    state.locates.fetch_add(1, Ordering::Relaxed);
    let sup = supervisor_fields(body)?;
    // The handler chaos site fires inside the supervised scope so the
    // server's catch_unwind fault isolation is exercised end-to-end.
    sup.run(|| {
        if chaos_hit(ChaosSite::Handler) == Some(ChaosAction::Panic) {
            panic!("injected handler panic");
        }
    });
    let (arts, cache_state) = resolve_session(state, body, &sup)?;
    // Pipeline-top deadline check after trace acquisition: a preloaded
    // (cached) trace must not skip the cooperative deadline.
    let _ = sup.check_deadline();

    let budget = match opt_str(body, "budget")? {
        Some(t) => BudgetSchedule::parse(t).map_err(|e| ApiError::bad("bad-field", e))?,
        None => BudgetSchedule::default(),
    };
    let fault = opt_str(body, "fault_plan")?
        .map(FaultPlan::parse)
        .transpose()
        .map_err(|e| ApiError::bad("bad-field", e))?;
    let scheduler = match opt_str(body, "scheduler")? {
        Some(t) => SchedulerMode::parse(t).map_err(|e| ApiError::bad("bad-field", e))?,
        None => SchedulerMode::default(),
    };
    let capture_threshold = opt_u64(body, "capture_threshold")?.map(|n| n as usize);
    let lc = LocateConfig {
        mode: mode_field(body)?,
        jobs: jobs_field(body)?,
        resume: if opt_bool(body, "no_resume")? {
            omislice::omislice_interp::ResumeMode::Disabled
        } else {
            omislice::omislice_interp::ResumeMode::Auto
        },
        scheduler,
        capture_threshold,
        early_exit: opt_bool(body, "early_exit")?,
        memo: Some(Arc::clone(&state.memo)),
        budget,
        fault,
        deadline: sup.deadline(),
        ..LocateConfig::default()
    };
    let outcome = locate_fault(
        &arts.faulty,
        &arts.analysis,
        &arts.config,
        &arts.trace,
        &arts.profile,
        &arts.oracle,
        &lc,
    )
    .map_err(|e| ApiError {
        status: 422,
        code: "no-wrong-output",
        message: e.to_string(),
    })?;
    let recovery = take_recovery();

    // The human report, byte-identical to the CLI's stdout.
    let mut report = render_report(&outcome, &arts.trace, &arts.analysis);
    report.push('\n');
    if opt_bool(body, "explain")? {
        report.push_str(&render_explain(&outcome, &arts.trace, &arts.analysis));
        report.push('\n');
    }
    report.push_str("seeded root statement(s):\n");
    for r in &arts.roots {
        if let Some(stmt) = arts.faulty.stmt(*r) {
            report.push_str(&format!("  {r} {}\n", stmt_head(stmt)));
        }
    }

    let mut pairs: Vec<(&'static str, Json)> = vec![
        (
            "status",
            Json::str(if outcome.deadline_expired {
                "partial"
            } else {
                "ok"
            }),
        ),
        ("program", Json::str(key_hex(arts.key))),
        ("cache", Json::str(cache_state)),
        ("found", Json::Bool(outcome.found)),
        ("iterations", Json::Int(outcome.iterations as i64)),
        ("verifications", Json::Int(outcome.verifications as i64)),
        ("recoveries", Json::Int(recovery.total() as i64)),
        ("report", Json::str(report)),
        (
            "roots",
            Json::Array(
                arts.roots
                    .iter()
                    .map(|r| Json::str(r.to_string()))
                    .collect(),
            ),
        ),
    ];
    if opt_bool(body, "journal")? {
        let meta = JournalMeta {
            program: opt_str(body, "label")?
                .map(str::to_string)
                .unwrap_or_else(|| key_hex(arts.key)),
        };
        // Per-request journals never carry spans or profiles: the span
        // recorder is process-global and worker threads would interleave.
        let records = build_journal(
            &meta,
            &lc,
            &outcome,
            &arts.trace,
            Some(&recovery),
            None,
            None,
        );
        pairs.push(("journal", Json::Array(records)));
    }
    Ok(Json::Object(
        pairs.into_iter().map(|(k, v)| (k.to_string(), v)).collect(),
    ))
}

// --- POST /slice -----------------------------------------------------

/// `POST /slice`: dynamic backward (or relevant) slice of one program
/// run, with the parsed program and trace cached per version.
pub fn handle_slice(state: &ServerState, body: &Json) -> Result<Json, ApiError> {
    state.slices.fetch_add(1, Ordering::Relaxed);
    let source = req_str(body, "source")?;
    let inputs = inputs_field(body, "input")?;
    let key = fnv64(&[
        b"slice",
        source.as_bytes(),
        canonical_inputs(&inputs).as_bytes(),
    ]);
    let (arts, cache_state) = match state.cache.get_slice(key) {
        Some(a) => (a, "hit"),
        None => {
            let program = compile_src(source, "sliced")?;
            let analysis = ProgramAnalysis::build(&program);
            let config = RunConfig::with_inputs(inputs);
            let trace = run_traced(&program, &analysis, &config).trace;
            let bytes = source.len() + trace.columns().bytes() + 4096;
            let arts = Arc::new(SliceArtifacts {
                key,
                program,
                analysis,
                trace,
            });
            state.cache.insert_slice(key, Arc::clone(&arts), bytes);
            (arts, "miss")
        }
    };
    let outputs = arts.trace.outputs();
    if outputs.is_empty() {
        return Err(ApiError {
            status: 422,
            code: "no-output",
            message: "the program printed nothing; no slicing criterion".to_string(),
        });
    }
    let idx = match opt_u64(body, "output")? {
        Some(n) => n as usize,
        None => outputs.len() - 1,
    };
    let criterion = outputs
        .get(idx)
        .ok_or_else(|| ApiError::bad("bad-field", format!("only {} outputs", outputs.len())))?
        .inst;
    let jobs = jobs_field(body)?;
    let slice = if opt_bool(body, "relevant")? {
        relevant_slice_jobs(&arts.trace, &arts.analysis, criterion, jobs)
    } else {
        arts.trace.build_index(jobs);
        DepGraph::with_jobs(&arts.trace, jobs).backward_slice(criterion)
    };

    Ok(Json::object([
        ("status", Json::str("ok")),
        ("program", Json::str(key_hex(key))),
        ("cache", Json::str(cache_state)),
        ("static_size", Json::Int(slice.static_size() as i64)),
        ("dynamic_size", Json::Int(slice.dynamic_size() as i64)),
        (
            "stmts",
            Json::Array({
                let mut ids: Vec<u32> = slice.stmts().iter().map(|s| s.0).collect();
                ids.sort_unstable();
                ids.into_iter()
                    .map(|s| Json::str(format!("S{s}")))
                    .collect()
            }),
        ),
        ("text", Json::str(render_slice(&arts, &slice))),
    ]))
}

/// The slice body exactly as the CLI prints it.
fn render_slice(arts: &SliceArtifacts, slice: &Slice) -> String {
    let mut out = String::new();
    for &inst in slice.insts() {
        out.push_str(&describe_inst(&arts.trace, &arts.analysis, inst));
        out.push('\n');
    }
    out.push_str(&format!(
        "-- {} statements / {} instances\n",
        slice.static_size(),
        slice.dynamic_size()
    ));
    out
}

// --- POST /diffcheck -------------------------------------------------

/// Cap on seeds per request, so one call cannot occupy a worker for
/// unbounded time.
const MAX_DIFFCHECK_SEEDS: u64 = 500;

/// `POST /diffcheck`: run the differential invariant sweep in-process.
pub fn handle_diffcheck(state: &ServerState, body: &Json) -> Result<Json, ApiError> {
    state.diffchecks.fetch_add(1, Ordering::Relaxed);
    let seeds = opt_u64(body, "seeds")?.unwrap_or(5);
    if seeds == 0 || seeds > MAX_DIFFCHECK_SEEDS {
        return Err(ApiError::bad(
            "bad-field",
            format!("`seeds` must be between 1 and {MAX_DIFFCHECK_SEEDS}"),
        ));
    }
    let opts = DiffcheckOptions {
        seeds,
        start_seed: opt_u64(body, "start_seed")?.unwrap_or(0),
        quick: !opt_bool(body, "thorough")?,
        chaos: opt_bool(body, "chaos")?,
    };
    let summary = run_diffcheck(&opts);
    Ok(Json::object([
        (
            "status",
            Json::str(if summary.failures.is_empty() {
                "ok"
            } else {
                "failed"
            }),
        ),
        ("cases", Json::Int(summary.cases as i64)),
        ("exposed", Json::Int(summary.exposed as i64)),
        ("located", Json::Int(summary.located as i64)),
        (
            "journals_compared",
            Json::Int(summary.journals_compared as i64),
        ),
        (
            "scheduler_configs",
            Json::Int(summary.scheduler_configs as i64),
        ),
        ("chaos_pipelines", Json::Int(summary.chaos_pipelines as i64)),
        (
            "chaos_recoveries",
            Json::Int(summary.chaos_recoveries as i64),
        ),
        (
            "failures",
            Json::Array(summary.failures.iter().map(Json::str).collect()),
        ),
    ]))
}

// --- GET /metrics ----------------------------------------------------

/// Folds request counters, cache occupancy, and the shared memo's
/// snapshot into one exportable set.
pub fn metrics_set(state: &ServerState) -> MetricSet {
    let mut set = MetricSet::new();
    set.push(
        "serve_requests_total",
        "Requests accepted by the worker pool",
        state.requests.load(Ordering::Relaxed) as f64,
    );
    set.push(
        "serve_errors_total",
        "Requests answered with a 4xx/5xx status",
        state.errors.load(Ordering::Relaxed) as f64,
    );
    set.push(
        "serve_panics_total",
        "Handler panics isolated by catch_unwind",
        state.panics.load(Ordering::Relaxed) as f64,
    );
    set.push(
        "serve_overloaded_total",
        "Connections shed with 503 (queue full)",
        state.overloaded.load(Ordering::Relaxed) as f64,
    );
    set.push(
        "serve_locate_requests",
        "POST /locate requests",
        state.locates.load(Ordering::Relaxed) as f64,
    );
    set.push(
        "serve_slice_requests",
        "POST /slice requests",
        state.slices.load(Ordering::Relaxed) as f64,
    );
    set.push(
        "serve_diffcheck_requests",
        "POST /diffcheck requests",
        state.diffchecks.load(Ordering::Relaxed) as f64,
    );
    let cache = state.cache.stats();
    set.push(
        "serve_cache_bytes",
        "Bytes held by the artifact cache (gauge)",
        cache.bytes as f64,
    );
    set.push(
        "serve_cache_entries",
        "Cached program versions (sessions + slices)",
        (cache.sessions + cache.slices) as f64,
    );
    set.push("serve_cache_hits", "Artifact cache hits", cache.hits as f64);
    set.push(
        "serve_cache_misses",
        "Artifact cache misses",
        cache.misses as f64,
    );
    set.push(
        "serve_cache_evictions",
        "Artifact cache evictions",
        cache.evictions as f64,
    );
    let memo = state.memo.snapshot();
    set.push(
        "serve_memo_run_bytes",
        "Bytes of memoized switched runs (gauge)",
        memo.run_bytes as f64,
    );
    set.push(
        "serve_memo_checkpoint_bytes",
        "Bytes of memoized checkpoints (gauge)",
        memo.checkpoint_bytes as f64,
    );
    set.push(
        "serve_memo_evictions",
        "Memo entries evicted by the size-bounded LRU",
        memo.evictions as f64,
    );
    set
}

/// `GET /healthz` body.
pub fn health_body(state: &ServerState) -> Json {
    Json::object([
        ("ok", Json::Bool(true)),
        ("workers", Json::Int(state.workers as i64)),
        (
            "requests",
            Json::Int(state.requests.load(Ordering::Relaxed) as i64),
        ),
    ])
}
