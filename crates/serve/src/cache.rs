//! The byte-budgeted artifact cache behind the serving layer.
//!
//! Requests name a program version by the FNV-1a hash of its sources and
//! inputs; the cache holds everything the pipeline derives from them —
//! parsed programs, the `ProgramAnalysis` (CFGs, control deps, the
//! static union graph), the failing trace, the value profile, and the
//! ground-truth oracle — shared immutably across concurrent requests
//! behind `Arc`s. Eviction follows the `VerifyMemo` discipline: a
//! deterministic logical tick orders entries and the least-recently-used
//! one is dropped when the byte budget overflows, so a request replayed
//! against a warm or a cold cache sees identical artifacts either way.

use omislice::GroundTruthOracle;
use omislice_analysis::ProgramAnalysis;
use omislice_interp::RunConfig;
use omislice_lang::{Program, StmtId};
use omislice_slicing::ValueProfile;
use omislice_trace::Trace;
use std::collections::HashMap;
use std::sync::{Arc, Mutex};

/// Default cache budget: a handful of sed×1000-sized working sets.
pub const DEFAULT_CACHE_CAPACITY: usize = 64 * 1024 * 1024;

/// FNV-1a over length-delimited parts, so `("ab","c")` and `("a","bc")`
/// hash differently.
pub fn fnv64(parts: &[&[u8]]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    let mut byte = |b: u8| {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    };
    for part in parts {
        for b in (part.len() as u64).to_le_bytes() {
            byte(b);
        }
        for &b in *part {
            byte(b);
        }
    }
    h
}

/// Renders a cache key the way responses report it.
pub fn key_hex(key: u64) -> String {
    format!("{key:016x}")
}

/// Parses a `key_hex` string back into a key.
pub fn parse_key_hex(text: &str) -> Option<u64> {
    (text.len() == 16)
        .then(|| u64::from_str_radix(text, 16).ok())
        .flatten()
}

/// Everything `POST /locate` derives from one (faulty, fixed, input,
/// profile) version: built once, shared immutably.
pub struct SessionArtifacts {
    /// The cache key the artifacts were stored under.
    pub key: u64,
    pub faulty: Program,
    pub analysis: ProgramAnalysis,
    pub config: RunConfig,
    pub trace: Trace,
    pub profile: ValueProfile,
    pub oracle: GroundTruthOracle,
    /// Seeded root statements (structural diff of the two versions).
    pub roots: Vec<StmtId>,
}

/// Everything `POST /slice` derives from one (source, input) version.
pub struct SliceArtifacts {
    pub key: u64,
    pub program: Program,
    pub analysis: ProgramAnalysis,
    pub trace: Trace,
}

struct Entry<T> {
    value: T,
    bytes: usize,
    tick: u64,
}

#[derive(Default)]
struct Inner {
    tick: u64,
    sessions: HashMap<u64, Entry<Arc<SessionArtifacts>>>,
    slices: HashMap<u64, Entry<Arc<SliceArtifacts>>>,
    bytes: usize,
    hits: u64,
    misses: u64,
    evictions: u64,
}

/// Occupancy counters for `/metrics`.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    pub bytes: usize,
    pub capacity: usize,
    pub sessions: usize,
    pub slices: usize,
    pub hits: u64,
    pub misses: u64,
    pub evictions: u64,
}

/// The byte-budgeted LRU itself. One mutex guards the index; the cached
/// artifacts live outside it behind `Arc`s, so lookups are cheap and the
/// pipeline never runs under the lock.
pub struct ArtifactCache {
    capacity: usize,
    inner: Mutex<Inner>,
}

impl ArtifactCache {
    pub fn new(capacity: usize) -> Self {
        ArtifactCache {
            capacity,
            inner: Mutex::new(Inner::default()),
        }
    }

    /// Looks up locate artifacts, refreshing their LRU tick on a hit.
    pub fn get_session(&self, key: u64) -> Option<Arc<SessionArtifacts>> {
        let mut inner = self.inner.lock().unwrap();
        inner.tick += 1;
        let tick = inner.tick;
        let hit = inner.sessions.get_mut(&key).map(|e| {
            e.tick = tick;
            Arc::clone(&e.value)
        });
        match hit {
            Some(v) => {
                inner.hits += 1;
                Some(v)
            }
            None => {
                inner.misses += 1;
                None
            }
        }
    }

    /// Inserts locate artifacts, evicting least-recently-used entries
    /// until the byte budget holds. First insert wins on a key race so
    /// concurrent builders agree on the shared value.
    pub fn insert_session(&self, key: u64, value: Arc<SessionArtifacts>, bytes: usize) {
        let mut inner = self.inner.lock().unwrap();
        inner.tick += 1;
        let tick = inner.tick;
        if inner.sessions.contains_key(&key) {
            return;
        }
        inner.sessions.insert(key, Entry { value, bytes, tick });
        inner.bytes += bytes;
        self.evict(&mut inner);
    }

    /// Looks up slice artifacts, refreshing their LRU tick on a hit.
    pub fn get_slice(&self, key: u64) -> Option<Arc<SliceArtifacts>> {
        let mut inner = self.inner.lock().unwrap();
        inner.tick += 1;
        let tick = inner.tick;
        let hit = inner.slices.get_mut(&key).map(|e| {
            e.tick = tick;
            Arc::clone(&e.value)
        });
        match hit {
            Some(v) => {
                inner.hits += 1;
                Some(v)
            }
            None => {
                inner.misses += 1;
                None
            }
        }
    }

    /// Inserts slice artifacts under the same budget as sessions.
    pub fn insert_slice(&self, key: u64, value: Arc<SliceArtifacts>, bytes: usize) {
        let mut inner = self.inner.lock().unwrap();
        inner.tick += 1;
        let tick = inner.tick;
        if inner.slices.contains_key(&key) {
            return;
        }
        inner.slices.insert(key, Entry { value, bytes, tick });
        inner.bytes += bytes;
        self.evict(&mut inner);
    }

    /// Drops least-recently-used entries (across both kinds) until the
    /// budget holds. At least one entry always survives so an oversized
    /// single working set still serves.
    fn evict(&self, inner: &mut Inner) {
        while inner.bytes > self.capacity && inner.sessions.len() + inner.slices.len() > 1 {
            let oldest_session = inner
                .sessions
                .iter()
                .min_by_key(|(_, e)| e.tick)
                .map(|(k, e)| (*k, e.tick));
            let oldest_slice = inner
                .slices
                .iter()
                .min_by_key(|(_, e)| e.tick)
                .map(|(k, e)| (*k, e.tick));
            let evict_session = match (oldest_session, oldest_slice) {
                (Some((_, st)), Some((_, lt))) => st <= lt,
                (Some(_), None) => true,
                (None, Some(_)) => false,
                (None, None) => return,
            };
            let freed = if evict_session {
                let (k, _) = oldest_session.unwrap();
                inner.sessions.remove(&k).map(|e| e.bytes)
            } else {
                let (k, _) = oldest_slice.unwrap();
                inner.slices.remove(&k).map(|e| e.bytes)
            };
            inner.bytes -= freed.unwrap_or(0);
            inner.evictions += 1;
        }
    }

    pub fn stats(&self) -> CacheStats {
        let inner = self.inner.lock().unwrap();
        CacheStats {
            bytes: inner.bytes,
            capacity: self.capacity,
            sessions: inner.sessions.len(),
            slices: inner.slices.len(),
            hits: inner.hits,
            misses: inner.misses,
            evictions: inner.evictions,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn slice_artifacts(src: &str) -> (u64, Arc<SliceArtifacts>) {
        let program = omislice_lang::compile(src).unwrap();
        let analysis = ProgramAnalysis::build(&program);
        let config = RunConfig::with_inputs(vec![]);
        let trace = omislice_interp::run_traced(&program, &analysis, &config).trace;
        let key = fnv64(&[src.as_bytes()]);
        (
            key,
            Arc::new(SliceArtifacts {
                key,
                program,
                analysis,
                trace,
            }),
        )
    }

    #[test]
    fn hex_round_trips() {
        assert_eq!(parse_key_hex(&key_hex(0xdead_beef)), Some(0xdead_beef));
        assert_eq!(parse_key_hex("xyz"), None);
        assert_eq!(parse_key_hex("00"), None);
    }

    #[test]
    fn fnv_separates_parts() {
        assert_ne!(fnv64(&[b"ab", b"c"]), fnv64(&[b"a", b"bc"]));
        assert_eq!(fnv64(&[b"ab", b"c"]), fnv64(&[b"ab", b"c"]));
    }

    #[test]
    fn lru_evicts_oldest_when_over_budget() {
        let cache = ArtifactCache::new(100);
        let (k1, a1) = slice_artifacts("fn main() { print(1); }");
        let (k2, a2) = slice_artifacts("fn main() { print(2); }");
        let (k3, a3) = slice_artifacts("fn main() { print(3); }");
        cache.insert_slice(k1, a1, 60);
        cache.insert_slice(k2, a2, 60); // evicts k1
        assert!(cache.get_slice(k1).is_none());
        assert!(cache.get_slice(k2).is_some()); // refresh k2
        cache.insert_slice(k3, a3, 60); // over budget again: k2 is newest
        let stats = cache.stats();
        assert_eq!(stats.evictions, 2);
        assert!(stats.bytes <= 100 || stats.sessions + stats.slices == 1);
    }

    #[test]
    fn first_insert_wins_on_key_race() {
        let cache = ArtifactCache::new(1 << 20);
        let (k, a) = slice_artifacts("fn main() { print(1); }");
        let (_, b) = slice_artifacts("fn main() { print(1); }");
        cache.insert_slice(k, Arc::clone(&a), 10);
        cache.insert_slice(k, b, 10);
        let got = cache.get_slice(k).unwrap();
        assert!(Arc::ptr_eq(&got, &a));
        assert_eq!(cache.stats().bytes, 10);
    }
}
