//! The resident server: listener, bounded queue, fixed worker pool.
//!
//! Fault isolation follows the PR 7 taxonomy: a panicking handler is
//! caught with `catch_unwind` and becomes a structured 500 while every
//! other worker keeps serving; a full queue sheds load with 503 instead
//! of queueing unboundedly; and a request's recovery ledger is cleared
//! on entry so one request's degradations never leak into the next
//! response on the same worker thread.

use crate::api::{
    error_body, handle_diffcheck, handle_locate, handle_slice, health_body, metrics_set, ApiError,
};
use crate::cache::{ArtifactCache, DEFAULT_CACHE_CAPACITY};
use omislice::omislice_trace::take_recovery;
use omislice::VerifyMemo;
use omislice_obs::Json;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::mpsc::{sync_channel, TrySendError};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::Duration;

/// Server construction knobs; `Default` matches the CLI defaults.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Bind address, e.g. `127.0.0.1:7745` (port 0 picks one).
    pub addr: String,
    /// Fixed worker pool size.
    pub workers: usize,
    /// Bounded connection queue depth; a full queue sheds 503.
    pub queue: usize,
    /// Artifact cache byte budget.
    pub cache_bytes: usize,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            addr: "127.0.0.1:7745".to_string(),
            workers: 4,
            queue: 64,
            cache_bytes: DEFAULT_CACHE_CAPACITY,
        }
    }
}

/// Shared state every worker sees: the artifact cache, the persistent
/// verification memo, and the exported counters.
pub struct ServerState {
    pub cache: ArtifactCache,
    pub memo: Arc<VerifyMemo>,
    pub workers: usize,
    pub requests: AtomicU64,
    pub errors: AtomicU64,
    pub panics: AtomicU64,
    pub overloaded: AtomicU64,
    pub locates: AtomicU64,
    pub slices: AtomicU64,
    pub diffchecks: AtomicU64,
}

impl ServerState {
    fn new(config: &ServeConfig) -> ServerState {
        ServerState {
            cache: ArtifactCache::new(config.cache_bytes),
            memo: VerifyMemo::shared(),
            workers: config.workers,
            requests: AtomicU64::new(0),
            errors: AtomicU64::new(0),
            panics: AtomicU64::new(0),
            overloaded: AtomicU64::new(0),
            locates: AtomicU64::new(0),
            slices: AtomicU64::new(0),
            diffchecks: AtomicU64::new(0),
        }
    }
}

/// A running server; dropping it leaks the threads, so call
/// [`shutdown`](ServerHandle::shutdown) (or keep it alive forever).
pub struct ServerHandle {
    addr: SocketAddr,
    state: Arc<ServerState>,
    stop: Arc<AtomicBool>,
    accept: Option<JoinHandle<()>>,
    workers: Vec<JoinHandle<()>>,
}

impl ServerHandle {
    /// The bound address (resolves port 0 to the actual port).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// The shared state, for in-process inspection in tests.
    pub fn state(&self) -> &Arc<ServerState> {
        &self.state
    }

    /// Stops accepting, drains the workers, and joins every thread.
    pub fn shutdown(mut self) {
        self.stop.store(true, Ordering::SeqCst);
        // Unblock the accept loop with one throwaway connection.
        let _ = TcpStream::connect(self.addr);
        if let Some(t) = self.accept.take() {
            let _ = t.join();
        }
        for t in self.workers.drain(..) {
            let _ = t.join();
        }
    }

    /// Blocks until every thread exits (the server runs until killed).
    pub fn join(mut self) {
        if let Some(t) = self.accept.take() {
            let _ = t.join();
        }
        for t in self.workers.drain(..) {
            let _ = t.join();
        }
    }
}

/// Binds the listener and starts the accept thread and worker pool.
///
/// # Errors
///
/// Returns a message when the address does not bind.
pub fn start(config: ServeConfig) -> Result<ServerHandle, String> {
    let listener = TcpListener::bind(&config.addr)
        .map_err(|e| format!("cannot bind `{}`: {e}", config.addr))?;
    let addr = listener
        .local_addr()
        .map_err(|e| format!("cannot resolve bound address: {e}"))?;
    let state = Arc::new(ServerState::new(&config));
    let stop = Arc::new(AtomicBool::new(false));
    let (tx, rx) = sync_channel::<TcpStream>(config.queue.max(1));
    let rx = Arc::new(Mutex::new(rx));

    let mut workers = Vec::new();
    for i in 0..config.workers.max(1) {
        let rx = Arc::clone(&rx);
        let state = Arc::clone(&state);
        workers.push(
            std::thread::Builder::new()
                .name(format!("omislice-serve-{i}"))
                .spawn(move || loop {
                    let conn = rx.lock().unwrap().recv();
                    match conn {
                        Ok(stream) => handle_connection(&state, stream),
                        Err(_) => break, // accept thread gone: drain done
                    }
                })
                .map_err(|e| format!("cannot spawn worker: {e}"))?,
        );
    }

    let accept = {
        let state = Arc::clone(&state);
        let stop = Arc::clone(&stop);
        std::thread::Builder::new()
            .name("omislice-serve-accept".to_string())
            .spawn(move || {
                for conn in listener.incoming() {
                    if stop.load(Ordering::SeqCst) {
                        break;
                    }
                    let Ok(stream) = conn else { continue };
                    match tx.try_send(stream) {
                        Ok(()) => {}
                        Err(TrySendError::Full(mut returned)) => {
                            // Shed load on the accept thread: never block
                            // behind a slow pipeline.
                            state.overloaded.fetch_add(1, Ordering::Relaxed);
                            respond_json(
                                &mut returned,
                                503,
                                &error_body("overloaded", "request queue is full; retry"),
                            );
                        }
                        Err(TrySendError::Disconnected(_)) => break,
                    }
                }
            })
            .map_err(|e| format!("cannot spawn accept thread: {e}"))?
    };

    Ok(ServerHandle {
        addr,
        state,
        stop,
        accept: Some(accept),
        workers,
    })
}

fn respond_json(stream: &mut TcpStream, status: u16, body: &Json) {
    let text = format!("{body}\n");
    let _ = crate::http::write_response(stream, status, "application/json", text.as_bytes());
}

/// Serves one connection: frame, route, respond. Never panics outward.
fn handle_connection(state: &ServerState, mut stream: TcpStream) {
    state.requests.fetch_add(1, Ordering::Relaxed);
    // One request's recovery ledger must not leak into the next.
    let _ = take_recovery();
    let _ = stream.set_read_timeout(Some(Duration::from_secs(30)));
    let request = match crate::http::read_request(&mut stream) {
        Ok(r) => r,
        Err(e) => {
            state.errors.fetch_add(1, Ordering::Relaxed);
            respond_json(
                &mut stream,
                e.status,
                &error_body("bad-request", &e.message),
            );
            return;
        }
    };

    let (status, body) = route(state, &request);
    if status >= 400 {
        state.errors.fetch_add(1, Ordering::Relaxed);
    }
    match body {
        Body::Json(v) => respond_json(&mut stream, status, &v),
        Body::Text(t) => {
            let _ = crate::http::write_response(
                &mut stream,
                status,
                "text/plain; version=0.0.4",
                t.as_bytes(),
            );
        }
    }
}

enum Body {
    Json(Json),
    Text(String),
}

fn route(state: &ServerState, request: &crate::http::Request) -> (u16, Body) {
    match (request.method.as_str(), request.path.as_str()) {
        ("GET", "/healthz") => (200, Body::Json(health_body(state))),
        ("GET", "/metrics") => {
            let set = metrics_set(state);
            if request.query.as_deref() == Some("format=json") {
                (200, Body::Json(set.to_json()))
            } else {
                (200, Body::Text(set.to_prometheus()))
            }
        }
        ("POST", "/locate") => guarded(state, &request.body, handle_locate),
        ("POST", "/slice") => guarded(state, &request.body, handle_slice),
        ("POST", "/diffcheck") => guarded(state, &request.body, handle_diffcheck),
        (_, "/healthz" | "/metrics" | "/locate" | "/slice" | "/diffcheck") => (
            405,
            Body::Json(error_body(
                "method-not-allowed",
                &format!("{} is not supported on {}", request.method, request.path),
            )),
        ),
        (_, path) => (
            404,
            Body::Json(error_body("not-found", &format!("no route for {path}"))),
        ),
    }
}

/// Parses the JSON body and runs the handler under `catch_unwind`: a
/// crashing request becomes a structured 500, never a dead worker.
fn guarded(
    state: &ServerState,
    raw: &[u8],
    handler: fn(&ServerState, &Json) -> Result<Json, ApiError>,
) -> (u16, Body) {
    let text = match std::str::from_utf8(raw) {
        Ok(t) => t,
        Err(_) => return (400, Body::Json(error_body("bad-json", "body is not UTF-8"))),
    };
    let body = match omislice_obs::json::parse(text) {
        Ok(v) => v,
        Err(e) => return (400, Body::Json(error_body("bad-json", &e))),
    };
    match catch_unwind(AssertUnwindSafe(|| handler(state, &body))) {
        Ok(Ok(v)) => (200, Body::Json(v)),
        Ok(Err(e)) => (e.status, Body::Json(error_body(e.code, &e.message))),
        Err(panic) => {
            state.panics.fetch_add(1, Ordering::Relaxed);
            // The unwound pipeline may have noted recoveries; drop them.
            let _ = take_recovery();
            let message = panic
                .downcast_ref::<&str>()
                .map(|s| (*s).to_string())
                .or_else(|| panic.downcast_ref::<String>().cloned())
                .unwrap_or_else(|| "opaque panic payload".to_string());
            (
                500,
                Body::Json(error_body(
                    "panic",
                    &format!("request handler panicked: {message}"),
                )),
            )
        }
    }
}
