//! `omislice-serve` — the resident fault-localization service.
//!
//! The paper's pipeline (trace → union dependence graph →
//! implicit-dependence verification) is fast enough at scale that
//! process startup and artifact re-parsing dominate a one-shot CLI
//! invocation. This crate promotes the pipeline into a long-running
//! threaded HTTP/JSON server: parsed programs, analyses, failing
//! traces, and the cross-iteration [`VerifyMemo`](omislice::VerifyMemo)
//! persist across requests in a byte-budgeted
//! [`ArtifactCache`](cache::ArtifactCache), shared immutably behind
//! `Arc`s.
//!
//! Endpoints:
//!
//! | Route             | Meaning                                        |
//! |-------------------|------------------------------------------------|
//! | `POST /locate`    | run fault localization for a program version   |
//! | `POST /slice`     | dynamic backward / relevant slice              |
//! | `POST /diffcheck` | differential invariant sweep                   |
//! | `GET /metrics`    | Prometheus text (or `?format=json`)            |
//! | `GET /healthz`    | liveness                                       |
//!
//! Everything is hand-rolled over `std` (`TcpListener`, a bounded
//! `sync_channel`, `catch_unwind`) — the build environment is offline,
//! so the server takes no dependencies the interpreter does not already
//! have.

pub mod api;
pub mod cache;
pub mod http;
pub mod server;

pub use cache::{ArtifactCache, CacheStats, DEFAULT_CACHE_CAPACITY};
pub use server::{start, ServeConfig, ServerHandle, ServerState};
