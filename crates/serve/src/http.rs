//! Minimal HTTP/1.1 framing over a [`TcpStream`].
//!
//! The build environment is offline, so the server hand-rolls its wire
//! protocol exactly like the journal hand-rolls JSON: requests are read
//! with hard caps on head and body size, responses always carry
//! `Content-Length` and `Connection: close`, and anything the reader
//! cannot frame becomes a status code instead of a panic.

use std::io::{Read, Write};
use std::net::TcpStream;

/// Hard cap on the request head (request line + headers).
pub const MAX_HEAD_BYTES: usize = 16 * 1024;

/// Hard cap on the request body. Corpus sources are a few kilobytes;
/// 8 MiB leaves room for large synthetic programs without letting one
/// request exhaust memory.
pub const MAX_BODY_BYTES: usize = 8 * 1024 * 1024;

/// One parsed request.
#[derive(Debug)]
pub struct Request {
    pub method: String,
    /// Path without the query string.
    pub path: String,
    /// Query string after `?`, when present.
    pub query: Option<String>,
    pub body: Vec<u8>,
}

/// A framing failure, carrying the status the response should use.
#[derive(Debug)]
pub struct HttpError {
    pub status: u16,
    pub message: String,
}

impl HttpError {
    fn bad(message: impl Into<String>) -> HttpError {
        HttpError {
            status: 400,
            message: message.into(),
        }
    }
}

/// Reads and frames one request from the stream.
///
/// # Errors
///
/// Returns an [`HttpError`] when the head or body cannot be framed
/// (malformed request line, missing or oversized `Content-Length`, a
/// body larger than [`MAX_BODY_BYTES`], or a closed/timed-out socket).
pub fn read_request(stream: &mut TcpStream) -> Result<Request, HttpError> {
    let (head, mut leftover) = read_head(stream)?;
    let head_text =
        std::str::from_utf8(&head).map_err(|_| HttpError::bad("request head is not UTF-8"))?;
    let mut lines = head_text.split("\r\n");
    let request_line = lines.next().unwrap_or_default();
    let mut parts = request_line.split(' ');
    let method = parts
        .next()
        .filter(|m| !m.is_empty())
        .ok_or_else(|| HttpError::bad("empty request line"))?
        .to_string();
    let target = parts
        .next()
        .ok_or_else(|| HttpError::bad("request line has no target"))?;
    match parts.next() {
        Some(v) if v.starts_with("HTTP/1.") => {}
        _ => return Err(HttpError::bad("expected an HTTP/1.x version")),
    }
    let (path, query) = match target.split_once('?') {
        Some((p, q)) => (p.to_string(), Some(q.to_string())),
        None => (target.to_string(), None),
    };

    let mut content_length: usize = 0;
    for line in lines {
        if let Some((name, value)) = line.split_once(':') {
            if name.trim().eq_ignore_ascii_case("content-length") {
                content_length = value.trim().parse().map_err(|_| {
                    HttpError::bad(format!("bad Content-Length `{}`", value.trim()))
                })?;
            }
        }
    }
    if content_length > MAX_BODY_BYTES {
        return Err(HttpError {
            status: 413,
            message: format!("body of {content_length} bytes exceeds {MAX_BODY_BYTES}"),
        });
    }

    let mut body = std::mem::take(&mut leftover);
    if body.len() > content_length {
        return Err(HttpError::bad("body longer than Content-Length"));
    }
    while body.len() < content_length {
        let mut buf = [0u8; 4096];
        let want = (content_length - body.len()).min(buf.len());
        match stream.read(&mut buf[..want]) {
            Ok(0) => return Err(HttpError::bad("connection closed mid-body")),
            Ok(n) => body.extend_from_slice(&buf[..n]),
            Err(e) => return Err(HttpError::bad(format!("read error: {e}"))),
        }
    }

    Ok(Request {
        method,
        path,
        query,
        body,
    })
}

/// Reads until the blank line ending the head; returns the head bytes
/// and any body bytes that arrived in the same read.
fn read_head(stream: &mut TcpStream) -> Result<(Vec<u8>, Vec<u8>), HttpError> {
    let mut buf = Vec::new();
    loop {
        if let Some(end) = find_head_end(&buf) {
            let leftover = buf.split_off(end + 4);
            buf.truncate(end);
            return Ok((buf, leftover));
        }
        if buf.len() >= MAX_HEAD_BYTES {
            return Err(HttpError {
                status: 431,
                message: format!("request head exceeds {MAX_HEAD_BYTES} bytes"),
            });
        }
        let mut chunk = [0u8; 1024];
        match stream.read(&mut chunk) {
            Ok(0) => {
                return Err(HttpError::bad("connection closed before the head ended"));
            }
            Ok(n) => buf.extend_from_slice(&chunk[..n]),
            Err(e) => return Err(HttpError::bad(format!("read error: {e}"))),
        }
    }
}

fn find_head_end(buf: &[u8]) -> Option<usize> {
    buf.windows(4).position(|w| w == b"\r\n\r\n")
}

/// The reason phrase for the status codes the server emits.
fn reason(status: u16) -> &'static str {
    match status {
        200 => "OK",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        413 => "Payload Too Large",
        422 => "Unprocessable Entity",
        431 => "Request Header Fields Too Large",
        500 => "Internal Server Error",
        503 => "Service Unavailable",
        _ => "Unknown",
    }
}

/// Writes one complete response and flushes. Errors are returned so the
/// worker can drop the connection; they never propagate further.
pub fn write_response(
    stream: &mut TcpStream,
    status: u16,
    content_type: &str,
    body: &[u8],
) -> std::io::Result<()> {
    let head = format!(
        "HTTP/1.1 {status} {}\r\nContent-Type: {content_type}\r\nContent-Length: {}\r\nConnection: close\r\n\r\n",
        reason(status),
        body.len()
    );
    stream.write_all(head.as_bytes())?;
    stream.write_all(body)?;
    stream.flush()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn head_end_is_found() {
        assert_eq!(find_head_end(b"GET / HTTP/1.1\r\n\r\nbody"), Some(14));
        assert_eq!(find_head_end(b"partial\r\n"), None);
    }

    #[test]
    fn reasons_cover_emitted_codes() {
        for s in [200, 400, 404, 405, 413, 422, 431, 500, 503] {
            assert_ne!(reason(s), "Unknown", "{s}");
        }
    }
}
