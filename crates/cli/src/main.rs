//! `omislice` — command-line debugger for execution omission errors.
//!
//! ```text
//! omislice run      <file> [--input 1,2,3]
//! omislice trace    <file> [--input 1,2,3] [--regions] [--dot] [--stats]
//!                   [--save <file.omitrace>] [--chaos <plan>] [--deadline <ms>]
//! omislice slice    <file> [--input 1,2,3] [--output N] [--relevant] [--jobs N]
//! omislice cfg      <file> [--function main]
//! omislice locate   --faulty <file> --fixed <file> [--input 1,2,3]
//!                   [--trace-in <file.omitrace>]
//!                   [--profile 4,5;6,7] [--mode edge|path|value]
//!                   [--jobs N] [--no-resume] [--stats]
//!                   [--scheduler trie|flat] [--capture-threshold N]
//!                   [--early-exit]
//!                   [--budget init[:factor[:attempts]]|off]
//!                   [--fault-plan S<id>[:occ]=<action>]
//!                   [--chaos <site>[:occ]=<action>] [--deadline <ms>]
//! omislice verify   <file> [--input 1,2,3] --pred N[:occ] --use N[:occ]
//!                   [--var name] [--expected v] [--mode edge|path|value]
//! omislice corpus   [list | locate <bench> <fault> [--jobs N] [--no-resume]
//!                   [--scheduler trie|flat] [--capture-threshold N]
//!                   [--early-exit] [--stats] [--budget ...] [--fault-plan ...]
//!                   [--chaos ...] [--deadline <ms>]]
//! ```

use omislice::omislice_analysis::ProgramAnalysis;
use omislice::omislice_interp::{run_plain, run_traced, BudgetSchedule, FaultPlan, RunConfig};
use omislice::omislice_lang::{compile, printer::stmt_head, Program};
use omislice::omislice_slicing::{relevant_slice_jobs, DepGraph, Slice, ValueProfile};
use omislice::omislice_trace::{
    note_recovery, take_recovery, ChaosPlan, RecoveryKind, RecoveryLog, RegionTree, Supervisor,
    Trace, TraceStats,
};
use omislice::{
    build_journal, describe_inst, locate_fault, render_explain, GroundTruthOracle, JournalMeta,
    LocateConfig, LocateOutcome, SchedulerMode, VerifierMode, VerifyMemo,
};
use omislice_corpus::all_benchmarks;
use omislice_obs::{MetricSet, Reporter, SpanReport};
use std::process::ExitCode;

/// Exit code for a run cut short by `--deadline`: the report is partial
/// but well-formed, distinct from both success (0) and usage/pipeline
/// failure (1).
const EXIT_DEADLINE: u8 = 3;

/// Exit code for malformed invocations: unknown commands, missing
/// required flags, and unparsable flag values. Distinct from pipeline
/// failures (1) so scripts can tell "you called it wrong" from "it ran
/// and failed".
const EXIT_USAGE: u8 = 2;

/// A command failure, split by whose fault it is: `Usage` is a
/// malformed invocation (exit 2, help printed), `Failure` is a pipeline
/// or input-file problem (exit 1). Plain `String`/`&str` errors from
/// helpers convert to `Failure`, so only usage sites need to opt in.
enum CliError {
    Usage(String),
    Failure(String),
}

impl From<String> for CliError {
    fn from(msg: String) -> Self {
        CliError::Failure(msg)
    }
}

impl From<&str> for CliError {
    fn from(msg: &str) -> Self {
        CliError::Failure(msg.to_string())
    }
}

/// Shorthand for flagging a malformed invocation.
fn usage_err(msg: impl Into<String>) -> CliError {
    CliError::Usage(msg.into())
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match run(args) {
        Ok(code) => code,
        Err(CliError::Usage(msg)) => {
            let mut rep = Reporter::stderr();
            rep.line(&format!("omislice: {msg}"));
            rep.line("");
            rep.line(USAGE);
            ExitCode::from(EXIT_USAGE)
        }
        Err(CliError::Failure(msg)) => {
            let mut rep = Reporter::stderr();
            rep.line(&format!("omislice: {msg}"));
            ExitCode::FAILURE
        }
    }
}

const USAGE: &str = "usage:
  omislice run     <file> [--input 1,2,3]
  omislice trace   <file> [--input 1,2,3] [--regions] [--dot] [--stats]
                   [--save <file.omitrace>] [--chaos <plan>] [--deadline <ms>]
                   [--profile-out <file.json>]
  omislice slice   <file> [--input 1,2,3] [--output N] [--relevant] [--jobs N]
  omislice cfg     <file> [--function main]
  omislice locate  --faulty <file> --fixed <file> [--input 1,2,3]
                   [--trace-in <file.omitrace>]
                   [--profile 4,5;6,7] [--mode edge|path|value]
                   [--jobs N] [--no-resume] [--stats]
                   [--scheduler trie|flat] [--capture-threshold N]
                   [--early-exit]
                   [--budget init[:factor[:attempts]]|off]
                   [--fault-plan S<id>[:occ]=<action>]
                   [--chaos <plan>] [--deadline <ms>]
                   [--obs-out <file.jsonl>] [--explain] [--metrics text|json]
                   [--profile-out <file.json>]
  omislice verify  <file> [--input 1,2,3] --pred N[:occ] --use N[:occ]
                   [--var name] [--expected v] [--mode edge|path|value]
  omislice corpus  [list | locate <bench> <fault> [--jobs N] [--no-resume]
                   [--scheduler trie|flat] [--capture-threshold N]
                   [--early-exit] [--stats] [--budget ...] [--fault-plan ...]
                   [--chaos <plan>] [--deadline <ms>]
                   [--obs-out <file.jsonl>] [--explain] [--metrics text|json]
                   [--profile-out <file.json>]]
  omislice serve   --addr <host:port> [--workers N] [--queue N]
                   [--cache-mb N]

fault-plan actions: oob, missing-callee, div-zero, type, stack-overflow,
uninit, budget, panic, panic-harness, corrupt-checkpoint

chaos plans are comma-separated <site>[:occ]=<action> entries injecting
one pipeline fault each (the pipeline must recover, not abort):
  builder=panic      channel=disconnect  queue=stall      encode=corrupt
  decode=corrupt     save=short-write    save=enospc      mmap=fail
  deadline[:K]=expire  handler=panic
--deadline <ms> cancels the run cooperatively; exit code 3 marks the
partial report. Malformed invocations exit with code 2.";

fn run(args: Vec<String>) -> Result<ExitCode, CliError> {
    let mut it = args.into_iter();
    match it.next().as_deref() {
        Some("run") => cmd_run(it.collect()),
        Some("trace") => cmd_trace(it.collect()),
        Some("slice") => cmd_slice(it.collect()),
        Some("cfg") => cmd_cfg(it.collect()),
        Some("locate") => cmd_locate(it.collect()),
        Some("verify") => cmd_verify(it.collect()),
        Some("corpus") => cmd_corpus(it.collect()),
        Some("serve") => cmd_serve(it.collect()),
        Some(other) => Err(usage_err(format!("unknown command `{other}`"))),
        None => Err(usage_err("no command given")),
    }
}

/// Parses `--flag value` style options plus positional arguments.
struct Opts {
    positional: Vec<String>,
    flags: Vec<(String, Option<String>)>,
}

impl Opts {
    fn parse(args: Vec<String>, value_flags: &[&str]) -> Result<Opts, CliError> {
        let mut positional = Vec::new();
        let mut flags = Vec::new();
        let mut it = args.into_iter();
        while let Some(a) = it.next() {
            if let Some(name) = a.strip_prefix("--") {
                if value_flags.contains(&name) {
                    let v = it
                        .next()
                        .ok_or_else(|| usage_err(format!("--{name} needs a value")))?;
                    flags.push((name.to_string(), Some(v)));
                } else {
                    flags.push((name.to_string(), None));
                }
            } else {
                positional.push(a);
            }
        }
        Ok(Opts { positional, flags })
    }

    fn value(&self, name: &str) -> Option<&str> {
        self.flags
            .iter()
            .find(|(n, _)| n == name)
            .and_then(|(_, v)| v.as_deref())
    }

    fn has(&self, name: &str) -> bool {
        self.flags.iter().any(|(n, _)| n == name)
    }
}

/// The single chokepoint every numeric flag parses through: a malformed
/// value becomes a usage error (exit 2) naming the flag and the expected
/// shape — never a panic or a silent default.
fn parse_flag<T: std::str::FromStr>(
    opts: &Opts,
    name: &str,
    what: &str,
) -> Result<Option<T>, CliError> {
    match opts.value(name) {
        None => Ok(None),
        Some(t) => t
            .parse::<T>()
            .map(Some)
            .map_err(|_| usage_err(format!("bad --{name} `{t}` (need {what})"))),
    }
}

fn parse_inputs(text: Option<&str>) -> Result<Vec<i64>, CliError> {
    match text {
        None => Ok(Vec::new()),
        Some(t) if t.trim().is_empty() => Ok(Vec::new()),
        Some(t) => t
            .split(',')
            .map(|s| {
                s.trim()
                    .parse::<i64>()
                    .map_err(|_| usage_err(format!("bad input value `{s}`")))
            })
            .collect(),
    }
}

fn load_program(path: &str) -> Result<Program, String> {
    let src = std::fs::read_to_string(path).map_err(|e| format!("cannot read `{path}`: {e}"))?;
    compile(&src).map_err(|e| {
        format!(
            "{path}:\n{}",
            omislice::omislice_lang::render_frontend_error(&src, &e)
        )
    })
}

fn cmd_run(args: Vec<String>) -> Result<ExitCode, CliError> {
    let opts = Opts::parse(args, &["input"])?;
    let path = opts
        .positional
        .first()
        .ok_or_else(|| usage_err("run needs a program file"))?;
    let program = load_program(path)?;
    let config = RunConfig::with_inputs(parse_inputs(opts.value("input"))?);
    let result = run_plain(&program, &config);
    for v in &result.outputs {
        println!("{v}");
    }
    if result.input_underflows > 0 {
        Reporter::stderr().warn(&format!(
            "{} input() call(s) ran past the end of the input stream (yielded 0)",
            result.input_underflows
        ));
    }
    if !result.is_normal() {
        return Err(CliError::Failure(format!(
            "program did not terminate normally: {:?}",
            result.termination
        )));
    }
    Ok(ExitCode::SUCCESS)
}

fn cmd_trace(args: Vec<String>) -> Result<ExitCode, CliError> {
    let opts = Opts::parse(args, &["input", "save", "chaos", "deadline", "profile-out"])?;
    let path = opts
        .positional
        .first()
        .ok_or_else(|| usage_err("trace needs a program file"))?;
    let obs = ObsOpts::parse(&opts)?;
    obs.start_recorder();
    let program = load_program(path)?;
    let analysis = ProgramAnalysis::build(&program);
    let config = RunConfig::with_inputs(parse_inputs(opts.value("input"))?);
    let sup = parse_supervisor(&opts)?;
    let run = sup.run(|| run_traced(&program, &analysis, &config));
    // The traced run is this command's whole pipeline: close the profile
    // here so the early returns below all see it written.
    let (spans, prof) = obs.stop_recorder();
    obs.write_profile(prof.as_ref(), spans.as_ref())?;
    let trace = &run.trace;
    if let Some(out) = opts.value("save") {
        sup.save_trace(trace, std::path::Path::new(out))
            .map_err(|e| format!("cannot save trace to `{out}`: {e}"))?;
        let bytes = std::fs::metadata(out).map(|m| m.len()).unwrap_or(0);
        Reporter::stderr().line(&format!(
            "saved {} instance(s), {} dependence edge(s) to `{out}` ({bytes} bytes, omitrace/v1)",
            trace.len(),
            trace.columns().deps_len(),
        ));
        return Ok(trace_exit(&sup));
    }
    if opts.has("stats") {
        let mut rep = Reporter::stderr();
        rep.section("trace statistics");
        rep.block(&TraceStats::compute(trace).to_string());
        return Ok(trace_exit(&sup));
    }
    if opts.has("regions") {
        if opts.has("dot") {
            print!(
                "{}",
                omislice::omislice_trace::regions_to_dot(trace, analysis.index())
            );
        } else {
            let regions = RegionTree::build(trace);
            println!("{}", regions.render_all(trace));
        }
        return Ok(trace_exit(&sup));
    }
    if opts.has("dot") {
        print!(
            "{}",
            omislice::omislice_trace::ddg_to_dot(trace, analysis.index())
        );
        return Ok(trace_exit(&sup));
    }
    for inst in trace.insts() {
        println!("{}", describe_inst(trace, &analysis, inst));
    }
    println!(
        "-- {} instances, termination {:?}",
        trace.len(),
        trace.termination()
    );
    if run.input_underflows > 0 {
        println!(
            "-- {} input() call(s) ran past the end of the input stream (yielded 0)",
            run.input_underflows
        );
    }
    Ok(trace_exit(&sup))
}

/// Final exit for `trace`: reports any recoveries the supervised run
/// absorbed and maps an expired deadline to the partial-result code.
fn trace_exit(sup: &Supervisor) -> ExitCode {
    let log = take_recovery();
    if !log.is_empty() {
        let mut rep = Reporter::stderr();
        rep.warn(&format!(
            "pipeline recovered from {} fault(s): {}",
            log.total(),
            log.events().join(", ")
        ));
    }
    if sup.deadline_expired() {
        Reporter::stderr().warn("deadline expired: the trace is partial");
        ExitCode::from(EXIT_DEADLINE)
    } else {
        ExitCode::SUCCESS
    }
}

fn print_slice(trace: &Trace, analysis: &ProgramAnalysis, slice: &Slice) {
    for &inst in slice.insts() {
        println!("{}", describe_inst(trace, analysis, inst));
    }
    println!(
        "-- {} statements / {} instances",
        slice.static_size(),
        slice.dynamic_size()
    );
}

fn cmd_slice(args: Vec<String>) -> Result<ExitCode, CliError> {
    let opts = Opts::parse(args, &["input", "output", "jobs"])?;
    let path = opts
        .positional
        .first()
        .ok_or_else(|| usage_err("slice needs a program file"))?;
    let program = load_program(path)?;
    let analysis = ProgramAnalysis::build(&program);
    let config = RunConfig::with_inputs(parse_inputs(opts.value("input"))?);
    let run = run_traced(&program, &analysis, &config);
    let trace = &run.trace;
    let outputs = trace.outputs();
    if outputs.is_empty() {
        return Err("the program printed nothing; no slicing criterion".into());
    }
    let idx: usize =
        parse_flag::<usize>(&opts, "output", "an output index")?.unwrap_or(outputs.len() - 1);
    let criterion = outputs
        .get(idx)
        .ok_or_else(|| format!("only {} outputs", outputs.len()))?
        .inst;
    let jobs = parse_jobs(&opts)?;
    let slice = if opts.has("relevant") {
        relevant_slice_jobs(trace, &analysis, criterion, jobs)
    } else {
        trace.build_index(jobs);
        DepGraph::with_jobs(trace, jobs).backward_slice(criterion)
    };
    print_slice(trace, &analysis, &slice);
    Ok(ExitCode::SUCCESS)
}

fn cmd_cfg(args: Vec<String>) -> Result<ExitCode, CliError> {
    let opts = Opts::parse(args, &["function"])?;
    let path = opts
        .positional
        .first()
        .ok_or_else(|| usage_err("cfg needs a program file"))?;
    let program = load_program(path)?;
    let analysis = ProgramAnalysis::build(&program);
    let func = opts.value("function").unwrap_or("main");
    let cfg = analysis
        .cfg(func)
        .ok_or_else(|| format!("no function `{func}` in `{path}`"))?;
    let index = analysis.index();
    print!("{}", cfg.to_dot(|s| index.stmt(s).head.clone()));
    Ok(ExitCode::SUCCESS)
}

fn parse_mode(text: Option<&str>) -> Result<VerifierMode, CliError> {
    Ok(match text {
        None | Some("edge") => VerifierMode::Edge,
        Some("path") => VerifierMode::Path,
        Some("value") => VerifierMode::ValueChange,
        Some(other) => return Err(usage_err(format!("unknown --mode `{other}`"))),
    })
}

/// Parses `--scheduler trie|flat` (default: trie).
fn parse_scheduler(text: Option<&str>) -> Result<SchedulerMode, CliError> {
    text.map_or(Ok(SchedulerMode::default()), |t| {
        SchedulerMode::parse(t).map_err(usage_err)
    })
}

/// Parses `--capture-threshold N`: the minimum replay-gap (in events)
/// that justifies snapshotting a checkpoint. `None` keeps the built-in
/// break-even default.
fn parse_capture_threshold(opts: &Opts) -> Result<Option<usize>, CliError> {
    parse_flag::<usize>(
        opts,
        "capture-threshold",
        "a non-negative integer of events",
    )
}

fn parse_jobs(opts: &Opts) -> Result<usize, CliError> {
    match parse_flag::<usize>(opts, "jobs", "a positive integer")? {
        None => Ok(1),
        Some(0) => Err(usage_err("bad --jobs `0` (need a positive integer)")),
        Some(n) => Ok(n),
    }
}

/// Parses `--budget init[:factor[:attempts]]` (or `off` to disable
/// escalation) into a [`BudgetSchedule`]. The grammar lives with the
/// type ([`BudgetSchedule::parse`]); this wrapper only names the flag.
fn parse_budget(text: Option<&str>) -> Result<BudgetSchedule, CliError> {
    match text {
        None => Ok(BudgetSchedule::default()),
        Some(t) => {
            BudgetSchedule::parse(t).map_err(|e| usage_err(e.replacen("budget", "--budget", 1)))
        }
    }
}

/// Parses `--fault-plan S<id>[:occ]=<action>` into a [`FaultPlan`].
fn parse_fault_plan(text: Option<&str>) -> Result<Option<FaultPlan>, CliError> {
    text.map(|t| FaultPlan::parse(t).map_err(usage_err))
        .transpose()
}

/// Parses `--chaos <site>[:occ]=<action>,...` into a [`ChaosPlan`].
fn parse_chaos(text: Option<&str>) -> Result<Option<ChaosPlan>, CliError> {
    text.map(|t| ChaosPlan::parse(t).map_err(usage_err))
        .transpose()
}

/// Builds the supervisor for one command from `--chaos`/`--deadline`.
fn parse_supervisor(opts: &Opts) -> Result<Supervisor, CliError> {
    let mut sup = Supervisor::new().with_chaos(parse_chaos(opts.value("chaos"))?);
    if let Some(ms) = parse_flag::<u64>(opts, "deadline", "milliseconds")? {
        sup = sup.with_deadline_ms(ms);
    }
    Ok(sup)
}

/// Renders the recovery ledger for `--stats` output.
fn render_recovery(log: &RecoveryLog) -> String {
    let mut out = String::new();
    for (name, count) in log.counters() {
        out.push_str(&format!("{name:<26}: {count}\n"));
    }
    out
}

#[derive(Clone, Copy, PartialEq)]
enum MetricsFormat {
    Text,
    Json,
}

/// The observability switches shared by `locate` and `corpus locate`.
struct ObsOpts {
    obs_out: Option<String>,
    profile_out: Option<String>,
    explain: bool,
    metrics: Option<MetricsFormat>,
}

impl ObsOpts {
    fn parse(opts: &Opts) -> Result<ObsOpts, CliError> {
        let metrics = match opts.value("metrics") {
            None => None,
            Some("text") => Some(MetricsFormat::Text),
            Some("json") => Some(MetricsFormat::Json),
            Some(other) => {
                return Err(usage_err(format!(
                    "unknown --metrics format `{other}` (text|json)"
                )));
            }
        };
        Ok(ObsOpts {
            obs_out: opts.value("obs-out").map(str::to_string),
            profile_out: opts.value("profile-out").map(str::to_string),
            explain: opts.has("explain"),
            metrics,
        })
    }

    /// Whether the span recorder needs to run at all.
    fn recording(&self) -> bool {
        self.obs_out.is_some() || self.metrics.is_some() || self.profile_out.is_some()
    }

    /// Turns the recorder on (before the pipeline starts, so parse and
    /// analyze spans are captured too). `--profile-out` additionally
    /// arms the scheduler event rings.
    fn start_recorder(&self) {
        if self.recording() {
            omislice_obs::reset();
            omislice_obs::set_enabled(true);
        }
        if self.profile_out.is_some() {
            omislice_obs::profile::profile_reset();
            omislice_obs::profile::set_profiling(true);
        }
    }

    /// Turns the recorder off and collects what it saw. The profiler is
    /// drained first so its drop count can land in the span counters
    /// while they are still recording.
    fn stop_recorder(
        &self,
    ) -> (
        Option<SpanReport>,
        Option<omislice_obs::profile::ProfileReport>,
    ) {
        let profile = if self.profile_out.is_some() {
            omislice_obs::profile::set_profiling(false);
            let report = omislice_obs::profile::profile_drain();
            omislice_obs::counter_add("profile.drops", report.drops);
            Some(report)
        } else {
            None
        };
        let spans = if self.recording() {
            omislice_obs::set_enabled(false);
            Some(omislice_obs::drain())
        } else {
            None
        };
        (spans, profile)
    }

    /// Writes the Chrome-trace JSON and collapsed-stack flamegraph, and
    /// narrates the aggregate scheduler report on stderr.
    fn write_profile(
        &self,
        profile: Option<&omislice_obs::profile::ProfileReport>,
        spans: Option<&SpanReport>,
    ) -> Result<(), String> {
        let (Some(path), Some(report)) = (&self.profile_out, profile) else {
            return Ok(());
        };
        let empty = SpanReport::default();
        let spans = spans.unwrap_or(&empty);
        let doc = omislice_obs::profile::chrome_trace(report, spans);
        std::fs::write(path, format!("{doc}\n"))
            .map_err(|e| format!("cannot write `{path}`: {e}"))?;
        let folded = format!("{path}.folded");
        std::fs::write(&folded, omislice_obs::profile::flamegraph(spans))
            .map_err(|e| format!("cannot write `{folded}`: {e}"))?;
        let mut rep = Reporter::stderr();
        rep.section("timeline profile");
        rep.block(&omislice_obs::profile::render_profile(report));
        Ok(())
    }

    /// Routes the human-readable body: stdout normally, stderr when
    /// `--metrics` owns stdout.
    fn emit_human(&self, text: &str) {
        if self.metrics.is_some() {
            let mut rep = Reporter::stderr();
            for line in text.lines() {
                rep.line(line);
            }
        } else {
            print!("{text}");
        }
    }

    /// Prints the metric set to stdout in the requested format.
    fn emit_metrics(&self, set: &MetricSet) {
        match self.metrics {
            Some(MetricsFormat::Text) => print!("{}", set.to_prometheus()),
            Some(MetricsFormat::Json) => println!("{}", set.to_json()),
            None => {}
        }
    }
}

/// Writes the locate journal as JSONL to `path`.
#[allow(clippy::too_many_arguments)]
fn write_journal_file(
    path: &str,
    meta: &JournalMeta,
    lc: &LocateConfig,
    outcome: &LocateOutcome,
    trace: &Trace,
    recovery: Option<&RecoveryLog>,
    profile: Option<&omislice_obs::profile::ProfileSummary>,
    spans: Option<&SpanReport>,
) -> Result<(), String> {
    let records = build_journal(meta, lc, outcome, trace, recovery, profile, spans);
    let f = std::fs::File::create(path).map_err(|e| format!("cannot create `{path}`: {e}"))?;
    omislice_obs::write_jsonl(std::io::BufWriter::new(f), &records)
        .map_err(|e| format!("cannot write `{path}`: {e}"))
}

/// Folds trace, locate, and verification counters — plus span
/// aggregates when the recorder ran — into one exportable set.
fn locate_metrics(trace: &Trace, outcome: &LocateOutcome, spans: Option<&SpanReport>) -> MetricSet {
    let mut set = MetricSet::new();
    let ts = TraceStats::compute(trace);
    set.push(
        "trace_instances",
        "Instances in the failing trace",
        ts.instances as f64,
    );
    set.push(
        "trace_unique_stmts",
        "Distinct statements executed",
        ts.unique_stmts as f64,
    );
    set.push(
        "trace_predicate_instances",
        "Predicate instances in the failing trace",
        ts.predicate_instances as f64,
    );
    set.push(
        "trace_data_edges",
        "Dynamic data-dependence edges",
        ts.data_edges as f64,
    );
    set.push(
        "trace_control_edges",
        "Dynamic control-dependence edges",
        ts.control_edges as f64,
    );
    set.push("trace_outputs", "Output events", ts.outputs as f64);
    set.push(
        "locate_found",
        "1 when the root cause landed in the IPS",
        u8::from(outcome.found) as f64,
    );
    set.push(
        "locate_iterations",
        "Algorithm 2 iterations",
        outcome.iterations as f64,
    );
    set.push(
        "locate_expanded_edges",
        "Verified implicit edges added",
        outcome.expanded_edges as f64,
    );
    set.push(
        "locate_strong_edges",
        "Strong implicit edges among them",
        outcome.strong_edges as f64,
    );
    set.push(
        "locate_ips_static",
        "Statements in the final IPS",
        outcome.ips.static_size() as f64,
    );
    set.push(
        "locate_ips_dynamic",
        "Instances in the final IPS",
        outcome.ips.dynamic_size() as f64,
    );
    let vs = &outcome.stats;
    set.push(
        "verify_requests",
        "VerifyDep invocations",
        vs.verifications as f64,
    );
    set.push(
        "verify_cache_hits",
        "Verifications answered from cache",
        vs.cache_hits as f64,
    );
    set.push(
        "verify_reexecutions",
        "Switched re-executions",
        vs.reexecutions as f64,
    );
    set.push(
        "verify_resumed_runs",
        "Re-executions resumed from a checkpoint",
        vs.resumed_runs as f64,
    );
    set.push(
        "verify_steps_saved",
        "Interpreter steps skipped by resuming",
        vs.steps_saved as f64,
    );
    set.push(
        "verify_memo_hits",
        "Switched runs answered from the cross-iteration memo",
        vs.memo_hits as f64,
    );
    set.push(
        "verify_memo_evictions",
        "Memo entries evicted by the size-bounded LRU",
        vs.memo_evictions as f64,
    );
    set.push(
        "verify_checkpoint_bytes",
        "Peak bytes of memoized checkpoints (gauge)",
        vs.checkpoint_bytes as f64,
    );
    set.push(
        "verify_inline_captures",
        "Checkpoints captured en route by spine/resumed runs",
        vs.inline_captures as f64,
    );
    set.push(
        "verify_captures_skipped",
        "Checkpoint captures declined by the cost break-even",
        vs.captures_skipped as f64,
    );
    set.push(
        "verify_early_exit_cancelled",
        "Requests cancelled by batch-level early exit",
        vs.early_exit_cancelled as f64,
    );
    set.push(
        "verify_budget_retries",
        "Budget escalation retries",
        vs.budget_retries as f64,
    );
    set.push(
        "verify_crashed_runs",
        "Switched runs that crashed (isolated)",
        vs.crashed_runs as f64,
    );
    set.push(
        "verify_panics_isolated",
        "Interpreter panics contained",
        vs.panics_isolated as f64,
    );
    if let Some(report) = spans {
        set.push_spans(report);
    }
    set
}

fn cmd_locate(args: Vec<String>) -> Result<ExitCode, CliError> {
    let opts = Opts::parse(
        args,
        &[
            "faulty",
            "fixed",
            "input",
            "trace-in",
            "profile",
            "mode",
            "jobs",
            "scheduler",
            "capture-threshold",
            "budget",
            "fault-plan",
            "chaos",
            "deadline",
            "obs-out",
            "profile-out",
            "metrics",
        ],
    )?;
    let obs = ObsOpts::parse(&opts)?;
    let sup = parse_supervisor(&opts)?;
    let faulty_path = opts
        .value("faulty")
        .ok_or_else(|| usage_err("locate needs --faulty"))?;
    let fixed_path = opts
        .value("fixed")
        .ok_or_else(|| usage_err("locate needs --fixed"))?;
    obs.start_recorder();
    let faulty = load_program(faulty_path)?;
    let fixed = load_program(fixed_path)?;
    let inputs = parse_inputs(opts.value("input"))?;
    let config = RunConfig::with_inputs(inputs);

    let analysis = ProgramAnalysis::build(&faulty);
    let fixed_analysis = ProgramAnalysis::build(&fixed);
    // The failing trace: reloaded from an `omitrace/v1` file when
    // `--trace-in` is given (it must come from running the faulty
    // program on the same inputs), freshly recorded otherwise. A file
    // that stays unreadable after the supervisor's retry climbs the last
    // rung of the degradation ladder: re-trace from source.
    let trace = match opts.value("trace-in") {
        Some(p) => match sup.load_trace(std::path::Path::new(p)) {
            Ok(t) => t,
            Err(e) => {
                note_recovery(RecoveryKind::RetraceFallback);
                Reporter::stderr().warn(&format!(
                    "cannot load trace from `{p}` ({e}); re-tracing from source"
                ));
                sup.run(|| run_traced(&faulty, &analysis, &config).trace)
            }
        },
        None => sup.run(|| run_traced(&faulty, &analysis, &config).trace),
    };
    // A `--trace-in` load skips the supervised trace run, so the deadline
    // would otherwise go unchecked until deep inside verification; one
    // counted check here keeps `--deadline` effective on that path too.
    let _ = sup.check_deadline();

    let mut profile = ValueProfile::new();
    profile.add_trace(&trace);
    if let Some(spec) = opts.value("profile") {
        for part in spec.split(';') {
            let extra = parse_inputs(Some(part))?;
            let cfg = RunConfig::with_inputs(extra);
            profile.add_trace(&run_traced(&faulty, &analysis, &cfg).trace);
        }
    }

    // Roots from the structural diff between the two programs.
    let roots = omislice_corpus::try_seeded_roots(&fixed, &faulty)?;
    if roots.is_empty() {
        return Err("fixed and faulty programs are identical".into());
    }
    let oracle = GroundTruthOracle::new(&fixed, &fixed_analysis, &config, roots.clone());
    let lc = LocateConfig {
        mode: parse_mode(opts.value("mode"))?,
        jobs: parse_jobs(&opts)?,
        resume: if opts.has("no-resume") {
            omislice::omislice_interp::ResumeMode::Disabled
        } else {
            omislice::omislice_interp::ResumeMode::Auto
        },
        scheduler: parse_scheduler(opts.value("scheduler"))?,
        capture_threshold: parse_capture_threshold(&opts)?,
        early_exit: opts.has("early-exit"),
        memo: Some(VerifyMemo::shared()),
        budget: parse_budget(opts.value("budget"))?,
        fault: parse_fault_plan(opts.value("fault-plan"))?,
        deadline: sup.deadline(),
        ..LocateConfig::default()
    };
    let outcome = locate_fault(&faulty, &analysis, &config, &trace, &profile, &oracle, &lc)
        .map_err(|e| e.to_string())?;
    let recovery = take_recovery();
    let (spans, prof) = obs.stop_recorder();
    let prof_summary = prof.as_ref().map(|p| p.summarize());
    obs.write_profile(prof.as_ref(), spans.as_ref())?;
    if let Some(path) = &obs.obs_out {
        let meta = JournalMeta {
            program: faulty_path.to_string(),
        };
        write_journal_file(
            path,
            &meta,
            &lc,
            &outcome,
            &trace,
            Some(&recovery),
            prof_summary.as_ref(),
            spans.as_ref(),
        )?;
    }

    let mut human = omislice::render_report(&outcome, &trace, &analysis);
    human.push('\n');
    if obs.explain {
        human.push_str(&render_explain(&outcome, &trace, &analysis));
        human.push('\n');
    }
    human.push_str("seeded root statement(s):\n");
    for r in roots {
        if let Some(stmt) = faulty.stmt(r) {
            human.push_str(&format!("  {r} {}\n", stmt_head(stmt)));
        }
    }
    obs.emit_human(&human);
    if opts.has("stats") {
        let mut rep = Reporter::stderr();
        rep.section("verification engine");
        rep.block(&outcome.stats.to_string());
        if !recovery.is_empty() {
            rep.section("recovery");
            rep.block(&render_recovery(&recovery));
        }
    }
    if obs.metrics.is_some() {
        obs.emit_metrics(&locate_metrics(&trace, &outcome, spans.as_ref()));
    }
    Ok(locate_exit(&outcome, &recovery))
}

/// Final exit for `locate`-style commands: an expired deadline means the
/// report above is partial, signalled by the dedicated exit code.
fn locate_exit(outcome: &LocateOutcome, recovery: &RecoveryLog) -> ExitCode {
    if !recovery.is_empty() {
        Reporter::stderr().warn(&format!(
            "pipeline recovered from {} fault(s): {}",
            recovery.total(),
            recovery.events().join(", ")
        ));
    }
    if outcome.deadline_expired {
        Reporter::stderr().warn("deadline expired: the report is partial");
        ExitCode::from(EXIT_DEADLINE)
    } else {
        ExitCode::SUCCESS
    }
}

/// Parses `N` or `N:occ` into a statement id and occurrence index.
fn parse_stmt_spec(text: &str) -> Result<(omislice::omislice_lang::StmtId, usize), CliError> {
    let (id, occ) = match text.split_once(':') {
        Some((a, b)) => (
            a,
            b.parse()
                .map_err(|_| usage_err(format!("bad occurrence in `{text}`")))?,
        ),
        None => (text, 0),
    };
    let id: u32 = id
        .trim_start_matches('S')
        .parse()
        .map_err(|_| usage_err(format!("bad statement id in `{text}`")))?;
    Ok((omislice::omislice_lang::StmtId(id), occ))
}

fn cmd_verify(args: Vec<String>) -> Result<ExitCode, CliError> {
    use omislice::omislice_trace::Value;
    let opts = Opts::parse(args, &["input", "pred", "use", "var", "expected", "mode"])?;
    let path = opts
        .positional
        .first()
        .ok_or_else(|| usage_err("verify needs a program file"))?;
    let program = load_program(path)?;
    let analysis = ProgramAnalysis::build(&program);
    let config = RunConfig::with_inputs(parse_inputs(opts.value("input"))?);
    let trace = run_traced(&program, &analysis, &config).trace;

    let (pred_stmt, pred_occ) = parse_stmt_spec(
        opts.value("pred")
            .ok_or_else(|| usage_err("verify needs --pred"))?,
    )?;
    let (use_stmt, use_occ) = parse_stmt_spec(
        opts.value("use")
            .ok_or_else(|| usage_err("verify needs --use"))?,
    )?;
    let p = trace
        .nth_instance(pred_stmt, pred_occ)
        .ok_or_else(|| format!("{pred_stmt} did not execute {} time(s)", pred_occ + 1))?;
    let u = trace
        .nth_instance(use_stmt, use_occ)
        .ok_or_else(|| format!("{use_stmt} did not execute {} time(s)", use_occ + 1))?;

    let use_info = analysis.index().stmt(use_stmt);
    let var = match opts.value("var") {
        Some(name) => analysis
            .index()
            .vars()
            .resolve(&use_info.func, name)
            .ok_or_else(|| format!("no variable `{name}` visible in `{}`", use_info.func))?,
        None => *use_info
            .uses
            .first()
            .ok_or_else(|| format!("{use_stmt} uses no variables; pass --var"))?,
    };
    let expected = parse_flag::<i64>(&opts, "expected", "an integer value")?.map(Value::Int);

    let mut verifier = omislice::Verifier::new(
        &program,
        &analysis,
        &config,
        &trace,
        parse_mode(opts.value("mode"))?,
    );
    let result = verifier.verify(p, u, var, u, expected);

    println!("predicate : {}", describe_inst(&trace, &analysis, p));
    println!("use       : {}", describe_inst(&trace, &analysis, u));
    println!("variable  : {}", analysis.index().vars().name(var));
    println!("verdict   : {:?}", result.verdict);
    println!("outcome   : {}", result.outcome);
    match result.matched_use {
        Some(m) => println!(
            "matched   : the use corresponds to t{} in the switched run",
            m.index()
        ),
        None => println!("matched   : the use has NO counterpart in the switched run"),
    }
    if let Some(v) = result.failure_value {
        println!("value at the matched failure point: {v}");
    }
    Ok(ExitCode::SUCCESS)
}

fn cmd_corpus(args: Vec<String>) -> Result<ExitCode, CliError> {
    let opts = Opts::parse(
        args,
        &[
            "jobs",
            "scheduler",
            "capture-threshold",
            "budget",
            "fault-plan",
            "chaos",
            "deadline",
            "obs-out",
            "profile-out",
            "metrics",
        ],
    )?;
    match opts.positional.first().map(String::as_str) {
        None | Some("list") => {
            for b in all_benchmarks() {
                println!(
                    "{} ({} LOC, {} procedures)",
                    b.name,
                    b.loc(),
                    b.procedures()
                );
                for f in &b.faults {
                    println!("  {:8} [{}] {}", f.id, f.kind, f.description);
                }
            }
            Ok(ExitCode::SUCCESS)
        }
        Some("locate") => {
            let bench_name = opts
                .positional
                .get(1)
                .ok_or_else(|| usage_err("corpus locate needs a benchmark name"))?;
            let fault_id = opts
                .positional
                .get(2)
                .ok_or_else(|| usage_err("corpus locate needs a fault id"))?;
            let benchmarks = all_benchmarks();
            // Unknown names are usage errors: `corpus list` is the menu.
            let bench = benchmarks
                .iter()
                .find(|b| b.name == bench_name)
                .ok_or_else(|| usage_err(format!("no benchmark `{bench_name}`")))?;
            let fault = bench
                .fault(fault_id)
                .ok_or_else(|| usage_err(format!("no fault `{fault_id}` in `{bench_name}`")))?;
            let obs = ObsOpts::parse(&opts)?;
            let sup = parse_supervisor(&opts)?;
            obs.start_recorder();
            // The session builder records the failing trace, so it runs
            // under the supervisor's chaos scope like `locate`'s.
            let session = sup
                .run(|| bench.session(fault))
                .map_err(|e| e.to_string())?;
            let lc = LocateConfig {
                jobs: parse_jobs(&opts)?,
                resume: if opts.has("no-resume") {
                    omislice::omislice_interp::ResumeMode::Disabled
                } else {
                    omislice::omislice_interp::ResumeMode::Auto
                },
                scheduler: parse_scheduler(opts.value("scheduler"))?,
                capture_threshold: parse_capture_threshold(&opts)?,
                early_exit: opts.has("early-exit"),
                // One memo for the whole corpus invocation: every locate
                // this process runs shares switched runs and checkpoints.
                memo: Some(VerifyMemo::shared()),
                budget: parse_budget(opts.value("budget"))?,
                fault: parse_fault_plan(opts.value("fault-plan"))?,
                deadline: sup.deadline(),
                ..LocateConfig::default()
            };
            let outcome = session.locate(&lc).map_err(|e| e.to_string())?;
            let recovery = take_recovery();
            let (spans, prof) = obs.stop_recorder();
            let prof_summary = prof.as_ref().map(|p| p.summarize());
            obs.write_profile(prof.as_ref(), spans.as_ref())?;
            if let Some(path) = &obs.obs_out {
                let meta = JournalMeta {
                    program: format!("{bench_name}:{fault_id}"),
                };
                write_journal_file(
                    path,
                    &meta,
                    &lc,
                    &outcome,
                    session.trace(),
                    Some(&recovery),
                    prof_summary.as_ref(),
                    spans.as_ref(),
                )?;
            }

            let mut human = session.report(&outcome);
            human.push('\n');
            if obs.explain {
                human.push_str(&render_explain(
                    &outcome,
                    session.trace(),
                    session.analysis(),
                ));
                human.push('\n');
            }
            let prepared = bench.prepare(fault).map_err(|e| e.to_string())?;
            human.push_str("seeded root statement(s):\n");
            for r in prepared.roots {
                if let Some(stmt) = prepared.faulty.stmt(r) {
                    human.push_str(&format!("  {r} {}\n", stmt_head(stmt)));
                }
            }
            obs.emit_human(&human);
            if opts.has("stats") {
                let mut rep = Reporter::stderr();
                rep.section("verification engine");
                rep.block(&outcome.stats.to_string());
                if !recovery.is_empty() {
                    rep.section("recovery");
                    rep.block(&render_recovery(&recovery));
                }
            }
            if obs.metrics.is_some() {
                obs.emit_metrics(&locate_metrics(session.trace(), &outcome, spans.as_ref()));
            }
            Ok(locate_exit(&outcome, &recovery))
        }
        Some(other) => Err(usage_err(format!("unknown corpus subcommand `{other}`"))),
    }
}

/// `omislice serve --addr <host:port>`: runs the resident localization
/// service until killed. The bound address is printed (and flushed)
/// before blocking, so scripts binding port 0 can read the real port.
fn cmd_serve(args: Vec<String>) -> Result<ExitCode, CliError> {
    let opts = Opts::parse(args, &["addr", "workers", "queue", "cache-mb"])?;
    let addr = opts
        .value("addr")
        .ok_or_else(|| usage_err("serve needs --addr <host:port>"))?;
    let mut config = omislice_serve::ServeConfig {
        addr: addr.to_string(),
        ..omislice_serve::ServeConfig::default()
    };
    if let Some(n) = parse_flag::<usize>(&opts, "workers", "a positive integer")? {
        if n == 0 {
            return Err(usage_err("bad --workers `0` (need a positive integer)"));
        }
        config.workers = n;
    }
    if let Some(n) = parse_flag::<usize>(&opts, "queue", "a positive integer")? {
        if n == 0 {
            return Err(usage_err("bad --queue `0` (need a positive integer)"));
        }
        config.queue = n;
    }
    if let Some(mb) = parse_flag::<usize>(&opts, "cache-mb", "a cache size in MiB")? {
        config.cache_bytes = mb.saturating_mul(1024 * 1024).max(1);
    }
    let workers = config.workers;
    let handle = omislice_serve::start(config)?;
    println!(
        "omislice serve listening on {} ({workers} workers)",
        handle.addr()
    );
    use std::io::Write as _;
    let _ = std::io::stdout().flush();
    handle.join();
    Ok(ExitCode::SUCCESS)
}
