//! `omislice` — command-line debugger for execution omission errors.
//!
//! ```text
//! omislice run      <file> [--input 1,2,3]
//! omislice trace    <file> [--input 1,2,3] [--regions] [--dot] [--stats]
//! omislice slice    <file> [--input 1,2,3] [--output N] [--relevant] [--jobs N]
//! omislice cfg      <file> [--function main]
//! omislice locate   --faulty <file> --fixed <file> [--input 1,2,3]
//!                   [--profile 4,5;6,7] [--mode edge|path|value]
//!                   [--jobs N] [--no-resume] [--stats]
//!                   [--budget init[:factor[:attempts]]|off]
//!                   [--fault-plan S<id>[:occ]=<action>]
//! omislice verify   <file> [--input 1,2,3] --pred N[:occ] --use N[:occ]
//!                   [--var name] [--expected v] [--mode edge|path|value]
//! omislice corpus   [list | locate <bench> <fault> [--jobs N] [--no-resume]
//!                   [--stats] [--budget ...] [--fault-plan ...]]
//! ```

use omislice::omislice_analysis::ProgramAnalysis;
use omislice::omislice_interp::{run_plain, run_traced, BudgetSchedule, FaultPlan, RunConfig};
use omislice::omislice_lang::{compile, printer::stmt_head, Program};
use omislice::omislice_slicing::{relevant_slice_jobs, DepGraph, Slice, ValueProfile};
use omislice::omislice_trace::{RegionTree, Trace};
use omislice::{describe_inst, locate_fault, GroundTruthOracle, LocateConfig, VerifierMode};
use omislice_corpus::all_benchmarks;
use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match run(args) {
        Ok(()) => ExitCode::SUCCESS,
        Err(msg) => {
            eprintln!("omislice: {msg}");
            eprintln!();
            eprintln!("{USAGE}");
            ExitCode::FAILURE
        }
    }
}

const USAGE: &str = "usage:
  omislice run     <file> [--input 1,2,3]
  omislice trace   <file> [--input 1,2,3] [--regions] [--dot] [--stats]
  omislice slice   <file> [--input 1,2,3] [--output N] [--relevant] [--jobs N]
  omislice cfg     <file> [--function main]
  omislice locate  --faulty <file> --fixed <file> [--input 1,2,3]
                   [--profile 4,5;6,7] [--mode edge|path|value]
                   [--jobs N] [--no-resume] [--stats]
                   [--budget init[:factor[:attempts]]|off]
                   [--fault-plan S<id>[:occ]=<action>]
  omislice verify  <file> [--input 1,2,3] --pred N[:occ] --use N[:occ]
                   [--var name] [--expected v] [--mode edge|path|value]
  omislice corpus  [list | locate <bench> <fault> [--jobs N] [--no-resume]
                   [--stats] [--budget ...] [--fault-plan ...]]

fault-plan actions: oob, missing-callee, div-zero, type, stack-overflow,
uninit, budget, panic, corrupt-checkpoint";

fn run(args: Vec<String>) -> Result<(), String> {
    let mut it = args.into_iter();
    match it.next().as_deref() {
        Some("run") => cmd_run(it.collect()),
        Some("trace") => cmd_trace(it.collect()),
        Some("slice") => cmd_slice(it.collect()),
        Some("cfg") => cmd_cfg(it.collect()),
        Some("locate") => cmd_locate(it.collect()),
        Some("verify") => cmd_verify(it.collect()),
        Some("corpus") => cmd_corpus(it.collect()),
        Some(other) => Err(format!("unknown command `{other}`")),
        None => Err("no command given".to_string()),
    }
}

/// Parses `--flag value` style options plus positional arguments.
struct Opts {
    positional: Vec<String>,
    flags: Vec<(String, Option<String>)>,
}

impl Opts {
    fn parse(args: Vec<String>, value_flags: &[&str]) -> Result<Opts, String> {
        let mut positional = Vec::new();
        let mut flags = Vec::new();
        let mut it = args.into_iter();
        while let Some(a) = it.next() {
            if let Some(name) = a.strip_prefix("--") {
                if value_flags.contains(&name) {
                    let v = it.next().ok_or_else(|| format!("--{name} needs a value"))?;
                    flags.push((name.to_string(), Some(v)));
                } else {
                    flags.push((name.to_string(), None));
                }
            } else {
                positional.push(a);
            }
        }
        Ok(Opts { positional, flags })
    }

    fn value(&self, name: &str) -> Option<&str> {
        self.flags
            .iter()
            .find(|(n, _)| n == name)
            .and_then(|(_, v)| v.as_deref())
    }

    fn has(&self, name: &str) -> bool {
        self.flags.iter().any(|(n, _)| n == name)
    }
}

fn parse_inputs(text: Option<&str>) -> Result<Vec<i64>, String> {
    match text {
        None => Ok(Vec::new()),
        Some(t) if t.trim().is_empty() => Ok(Vec::new()),
        Some(t) => t
            .split(',')
            .map(|s| {
                s.trim()
                    .parse::<i64>()
                    .map_err(|_| format!("bad input value `{s}`"))
            })
            .collect(),
    }
}

fn load_program(path: &str) -> Result<Program, String> {
    let src = std::fs::read_to_string(path).map_err(|e| format!("cannot read `{path}`: {e}"))?;
    compile(&src).map_err(|e| {
        format!(
            "{path}:\n{}",
            omislice::omislice_lang::render_frontend_error(&src, &e)
        )
    })
}

fn cmd_run(args: Vec<String>) -> Result<(), String> {
    let opts = Opts::parse(args, &["input"])?;
    let path = opts.positional.first().ok_or("run needs a program file")?;
    let program = load_program(path)?;
    let config = RunConfig::with_inputs(parse_inputs(opts.value("input"))?);
    let result = run_plain(&program, &config);
    for v in &result.outputs {
        println!("{v}");
    }
    if result.input_underflows > 0 {
        eprintln!(
            "omislice: warning: {} input() call(s) ran past the end of the input stream (yielded 0)",
            result.input_underflows
        );
    }
    if !result.is_normal() {
        return Err(format!(
            "program did not terminate normally: {:?}",
            result.termination
        ));
    }
    Ok(())
}

fn cmd_trace(args: Vec<String>) -> Result<(), String> {
    let opts = Opts::parse(args, &["input"])?;
    let path = opts
        .positional
        .first()
        .ok_or("trace needs a program file")?;
    let program = load_program(path)?;
    let analysis = ProgramAnalysis::build(&program);
    let config = RunConfig::with_inputs(parse_inputs(opts.value("input"))?);
    let run = run_traced(&program, &analysis, &config);
    let trace = &run.trace;
    if opts.has("stats") {
        print!("{}", omislice::omislice_trace::TraceStats::compute(trace));
        return Ok(());
    }
    if opts.has("regions") {
        if opts.has("dot") {
            print!(
                "{}",
                omislice::omislice_trace::regions_to_dot(trace, analysis.index())
            );
        } else {
            let regions = RegionTree::build(trace);
            println!("{}", regions.render_all(trace));
        }
        return Ok(());
    }
    if opts.has("dot") {
        print!(
            "{}",
            omislice::omislice_trace::ddg_to_dot(trace, analysis.index())
        );
        return Ok(());
    }
    for inst in trace.insts() {
        println!("{}", describe_inst(trace, &analysis, inst));
    }
    println!(
        "-- {} instances, termination {:?}",
        trace.len(),
        trace.termination()
    );
    if run.input_underflows > 0 {
        println!(
            "-- {} input() call(s) ran past the end of the input stream (yielded 0)",
            run.input_underflows
        );
    }
    Ok(())
}

fn print_slice(trace: &Trace, analysis: &ProgramAnalysis, slice: &Slice) {
    for &inst in slice.insts() {
        println!("{}", describe_inst(trace, analysis, inst));
    }
    println!(
        "-- {} statements / {} instances",
        slice.static_size(),
        slice.dynamic_size()
    );
}

fn cmd_slice(args: Vec<String>) -> Result<(), String> {
    let opts = Opts::parse(args, &["input", "output", "jobs"])?;
    let path = opts
        .positional
        .first()
        .ok_or("slice needs a program file")?;
    let program = load_program(path)?;
    let analysis = ProgramAnalysis::build(&program);
    let config = RunConfig::with_inputs(parse_inputs(opts.value("input"))?);
    let run = run_traced(&program, &analysis, &config);
    let trace = &run.trace;
    let outputs = trace.outputs();
    if outputs.is_empty() {
        return Err("the program printed nothing; no slicing criterion".to_string());
    }
    let idx: usize = match opts.value("output") {
        Some(n) => n.parse().map_err(|_| "bad --output index".to_string())?,
        None => outputs.len() - 1,
    };
    let criterion = outputs
        .get(idx)
        .ok_or_else(|| format!("only {} outputs", outputs.len()))?
        .inst;
    let jobs = parse_jobs(opts.value("jobs"))?;
    let slice = if opts.has("relevant") {
        relevant_slice_jobs(trace, &analysis, criterion, jobs)
    } else {
        trace.build_index(jobs);
        DepGraph::with_jobs(trace, jobs).backward_slice(criterion)
    };
    print_slice(trace, &analysis, &slice);
    Ok(())
}

fn cmd_cfg(args: Vec<String>) -> Result<(), String> {
    let opts = Opts::parse(args, &["function"])?;
    let path = opts.positional.first().ok_or("cfg needs a program file")?;
    let program = load_program(path)?;
    let analysis = ProgramAnalysis::build(&program);
    let func = opts.value("function").unwrap_or("main");
    let cfg = analysis
        .cfg(func)
        .ok_or_else(|| format!("no function `{func}` in `{path}`"))?;
    let index = analysis.index();
    print!("{}", cfg.to_dot(|s| index.stmt(s).head.clone()));
    Ok(())
}

fn parse_mode(text: Option<&str>) -> Result<VerifierMode, String> {
    Ok(match text {
        None | Some("edge") => VerifierMode::Edge,
        Some("path") => VerifierMode::Path,
        Some("value") => VerifierMode::ValueChange,
        Some(other) => return Err(format!("unknown --mode `{other}`")),
    })
}

fn parse_jobs(text: Option<&str>) -> Result<usize, String> {
    match text {
        None => Ok(1),
        Some(t) => match t.parse::<usize>() {
            Ok(n) if n >= 1 => Ok(n),
            _ => Err(format!("bad --jobs `{t}` (need a positive integer)")),
        },
    }
}

/// Parses `--budget init[:factor[:attempts]]` (or `off` to disable
/// escalation) into a [`BudgetSchedule`].
fn parse_budget(text: Option<&str>) -> Result<BudgetSchedule, String> {
    let Some(t) = text else {
        return Ok(BudgetSchedule::default());
    };
    if t == "off" {
        return Ok(BudgetSchedule::disabled());
    }
    let mut parts = t.split(':');
    let default = BudgetSchedule::default();
    let initial = parts
        .next()
        .unwrap_or_default()
        .parse::<u64>()
        .map_err(|_| format!("bad --budget `{t}` (expected init[:factor[:attempts]] or off)"))?;
    let factor = match parts.next() {
        Some(p) => p
            .parse::<u64>()
            .map_err(|_| format!("bad factor in --budget `{t}`"))?,
        None => default.factor,
    };
    let attempts = match parts.next() {
        Some(p) => p
            .parse::<u32>()
            .map_err(|_| format!("bad attempts in --budget `{t}`"))?,
        None => default.attempts,
    };
    if parts.next().is_some() {
        return Err(format!("bad --budget `{t}` (too many fields)"));
    }
    Ok(BudgetSchedule {
        initial,
        factor,
        attempts,
    })
}

/// Parses `--fault-plan S<id>[:occ]=<action>` into a [`FaultPlan`].
fn parse_fault_plan(text: Option<&str>) -> Result<Option<FaultPlan>, String> {
    text.map(FaultPlan::parse).transpose()
}

fn cmd_locate(args: Vec<String>) -> Result<(), String> {
    let opts = Opts::parse(
        args,
        &[
            "faulty",
            "fixed",
            "input",
            "profile",
            "mode",
            "jobs",
            "budget",
            "fault-plan",
        ],
    )?;
    let faulty_path = opts.value("faulty").ok_or("locate needs --faulty")?;
    let fixed_path = opts.value("fixed").ok_or("locate needs --fixed")?;
    let faulty = load_program(faulty_path)?;
    let fixed = load_program(fixed_path)?;
    let inputs = parse_inputs(opts.value("input"))?;
    let config = RunConfig::with_inputs(inputs);

    let analysis = ProgramAnalysis::build(&faulty);
    let fixed_analysis = ProgramAnalysis::build(&fixed);
    let trace = run_traced(&faulty, &analysis, &config).trace;

    let mut profile = ValueProfile::new();
    profile.add_trace(&trace);
    if let Some(spec) = opts.value("profile") {
        for part in spec.split(';') {
            let extra = parse_inputs(Some(part))?;
            let cfg = RunConfig::with_inputs(extra);
            profile.add_trace(&run_traced(&faulty, &analysis, &cfg).trace);
        }
    }

    // Roots from the structural diff between the two programs.
    let roots = omislice_corpus::seeded_roots(&fixed, &faulty);
    if roots.is_empty() {
        return Err("fixed and faulty programs are identical".to_string());
    }
    let oracle = GroundTruthOracle::new(&fixed, &fixed_analysis, &config, roots.clone());
    let lc = LocateConfig {
        mode: parse_mode(opts.value("mode"))?,
        jobs: parse_jobs(opts.value("jobs"))?,
        resume: if opts.has("no-resume") {
            omislice::omislice_interp::ResumeMode::Disabled
        } else {
            omislice::omislice_interp::ResumeMode::Auto
        },
        budget: parse_budget(opts.value("budget"))?,
        fault: parse_fault_plan(opts.value("fault-plan"))?,
        ..LocateConfig::default()
    };
    let outcome = locate_fault(&faulty, &analysis, &config, &trace, &profile, &oracle, &lc)
        .map_err(|e| e.to_string())?;
    println!("{}", omislice::render_report(&outcome, &trace, &analysis));
    if opts.has("stats") {
        println!("verification engine:");
        print!("{}", outcome.stats);
    }
    println!("seeded root statement(s):");
    for r in roots {
        if let Some(stmt) = faulty.stmt(r) {
            println!("  {} {}", r, stmt_head(stmt));
        }
    }
    Ok(())
}

/// Parses `N` or `N:occ` into a statement id and occurrence index.
fn parse_stmt_spec(text: &str) -> Result<(omislice::omislice_lang::StmtId, usize), String> {
    let (id, occ) = match text.split_once(':') {
        Some((a, b)) => (
            a,
            b.parse()
                .map_err(|_| format!("bad occurrence in `{text}`"))?,
        ),
        None => (text, 0),
    };
    let id: u32 = id
        .trim_start_matches('S')
        .parse()
        .map_err(|_| format!("bad statement id in `{text}`"))?;
    Ok((omislice::omislice_lang::StmtId(id), occ))
}

fn cmd_verify(args: Vec<String>) -> Result<(), String> {
    use omislice::omislice_trace::Value;
    let opts = Opts::parse(args, &["input", "pred", "use", "var", "expected", "mode"])?;
    let path = opts
        .positional
        .first()
        .ok_or("verify needs a program file")?;
    let program = load_program(path)?;
    let analysis = ProgramAnalysis::build(&program);
    let config = RunConfig::with_inputs(parse_inputs(opts.value("input"))?);
    let trace = run_traced(&program, &analysis, &config).trace;

    let (pred_stmt, pred_occ) = parse_stmt_spec(opts.value("pred").ok_or("verify needs --pred")?)?;
    let (use_stmt, use_occ) = parse_stmt_spec(opts.value("use").ok_or("verify needs --use")?)?;
    let p = trace
        .nth_instance(pred_stmt, pred_occ)
        .ok_or_else(|| format!("{pred_stmt} did not execute {} time(s)", pred_occ + 1))?;
    let u = trace
        .nth_instance(use_stmt, use_occ)
        .ok_or_else(|| format!("{use_stmt} did not execute {} time(s)", use_occ + 1))?;

    let use_info = analysis.index().stmt(use_stmt);
    let var = match opts.value("var") {
        Some(name) => analysis
            .index()
            .vars()
            .resolve(&use_info.func, name)
            .ok_or_else(|| format!("no variable `{name}` visible in `{}`", use_info.func))?,
        None => *use_info
            .uses
            .first()
            .ok_or_else(|| format!("{use_stmt} uses no variables; pass --var"))?,
    };
    let expected = opts
        .value("expected")
        .map(|t| {
            t.parse::<i64>()
                .map(Value::Int)
                .map_err(|_| format!("bad --expected `{t}`"))
        })
        .transpose()?;

    let mut verifier = omislice::Verifier::new(
        &program,
        &analysis,
        &config,
        &trace,
        parse_mode(opts.value("mode"))?,
    );
    let result = verifier.verify(p, u, var, u, expected);

    println!("predicate : {}", describe_inst(&trace, &analysis, p));
    println!("use       : {}", describe_inst(&trace, &analysis, u));
    println!("variable  : {}", analysis.index().vars().name(var));
    println!("verdict   : {:?}", result.verdict);
    println!("outcome   : {}", result.outcome);
    match result.matched_use {
        Some(m) => println!(
            "matched   : the use corresponds to t{} in the switched run",
            m.index()
        ),
        None => println!("matched   : the use has NO counterpart in the switched run"),
    }
    if let Some(v) = result.failure_value {
        println!("value at the matched failure point: {v}");
    }
    Ok(())
}

fn cmd_corpus(args: Vec<String>) -> Result<(), String> {
    let opts = Opts::parse(args, &["jobs", "budget", "fault-plan"])?;
    match opts.positional.first().map(String::as_str) {
        None | Some("list") => {
            for b in all_benchmarks() {
                println!(
                    "{} ({} LOC, {} procedures)",
                    b.name,
                    b.loc(),
                    b.procedures()
                );
                for f in &b.faults {
                    println!("  {:8} [{}] {}", f.id, f.kind, f.description);
                }
            }
            Ok(())
        }
        Some("locate") => {
            let bench_name = opts
                .positional
                .get(1)
                .ok_or("corpus locate needs a benchmark name")?;
            let fault_id = opts
                .positional
                .get(2)
                .ok_or("corpus locate needs a fault id")?;
            let benchmarks = all_benchmarks();
            let bench = benchmarks
                .iter()
                .find(|b| b.name == bench_name)
                .ok_or_else(|| format!("no benchmark `{bench_name}`"))?;
            let fault = bench
                .fault(fault_id)
                .ok_or_else(|| format!("no fault `{fault_id}` in `{bench_name}`"))?;
            let session = bench.session(fault).map_err(|e| e.to_string())?;
            let lc = LocateConfig {
                jobs: parse_jobs(opts.value("jobs"))?,
                resume: if opts.has("no-resume") {
                    omislice::omislice_interp::ResumeMode::Disabled
                } else {
                    omislice::omislice_interp::ResumeMode::Auto
                },
                budget: parse_budget(opts.value("budget"))?,
                fault: parse_fault_plan(opts.value("fault-plan"))?,
                ..LocateConfig::default()
            };
            let outcome = session.locate(&lc).map_err(|e| e.to_string())?;
            println!("{}", session.report(&outcome));
            if opts.has("stats") {
                println!("verification engine:");
                print!("{}", outcome.stats);
            }
            let prepared = bench.prepare(fault).map_err(|e| e.to_string())?;
            println!("seeded root statement(s):");
            for r in prepared.roots {
                if let Some(stmt) = prepared.faulty.stmt(r) {
                    println!("  {} {}", r, stmt_head(stmt));
                }
            }
            Ok(())
        }
        Some(other) => Err(format!("unknown corpus subcommand `{other}`")),
    }
}
