//! End-to-end tests of the `omislice` binary: every subcommand, driven
//! through the real executable.

use std::io::Write as _;
use std::process::Command;

fn omislice(args: &[&str]) -> std::process::Output {
    Command::new(env!("CARGO_BIN_EXE_omislice"))
        .args(args)
        .output()
        .expect("binary runs")
}

fn write_temp(name: &str, contents: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join("omislice-cli-tests");
    std::fs::create_dir_all(&dir).expect("temp dir");
    let path = dir.join(format!("{name}-{}.omi", std::process::id()));
    let mut f = std::fs::File::create(&path).expect("create temp file");
    f.write_all(contents.as_bytes()).expect("write temp file");
    path
}

const FIXED: &str = "global flags = 0;\n\
    fn main() { let save = input(); flags = 1;\n\
                if save == 1 { flags = 2; } print(flags); }\n";
const FAULTY: &str = "global flags = 0;\n\
    fn main() { let save = input() - 1; flags = 1;\n\
                if save == 1 { flags = 2; } print(flags); }\n";

#[test]
fn run_prints_outputs() {
    let path = write_temp("run", FIXED);
    let out = omislice(&["run", path.to_str().unwrap(), "--input", "1"]);
    assert!(out.status.success());
    assert_eq!(String::from_utf8_lossy(&out.stdout).trim(), "2");
}

#[test]
fn run_reports_runtime_errors() {
    let path = write_temp("runerr", "fn main() { print(1 / 0); }");
    let out = omislice(&["run", path.to_str().unwrap()]);
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("division by zero"));
}

#[test]
fn trace_lists_instances() {
    let path = write_temp("trace", FIXED);
    let out = omislice(&["trace", path.to_str().unwrap(), "--input", "1"]);
    assert!(out.status.success());
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("let save = input();"));
    assert!(text.contains("termination Normal"));
}

#[test]
fn trace_regions_renders_bracket_notation() {
    let path = write_temp("regions", FIXED);
    let out = omislice(&["trace", path.to_str().unwrap(), "--input", "1", "--regions"]);
    assert!(out.status.success());
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("[2,3]"), "guarded region rendered: {text}");
}

#[test]
fn trace_dot_emits_graphviz() {
    let path = write_temp("dot", FIXED);
    let out = omislice(&["trace", path.to_str().unwrap(), "--input", "1", "--dot"]);
    assert!(out.status.success());
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.starts_with("digraph ddg {"));
    assert!(text.contains("style=dashed"));
}

#[test]
fn slice_dynamic_and_relevant() {
    let path = write_temp("slice", FAULTY);
    let ds = omislice(&["slice", path.to_str().unwrap(), "--input", "1"]);
    assert!(ds.status.success());
    let ds_text = String::from_utf8_lossy(&ds.stdout);
    assert!(
        !ds_text.contains("if (save == 1)"),
        "DS misses the guard:\n{ds_text}"
    );
    let rs = omislice(&[
        "slice",
        path.to_str().unwrap(),
        "--input",
        "1",
        "--relevant",
    ]);
    let rs_text = String::from_utf8_lossy(&rs.stdout);
    assert!(
        rs_text.contains("if (save == 1)"),
        "RS captures the guard:\n{rs_text}"
    );
}

#[test]
fn locate_finds_the_seeded_root() {
    let fixed = write_temp("fixed", FIXED);
    let faulty = write_temp("faulty", FAULTY);
    let out = omislice(&[
        "locate",
        "--faulty",
        faulty.to_str().unwrap(),
        "--fixed",
        fixed.to_str().unwrap(),
        "--input",
        "1",
        "--profile",
        "0;2;5",
    ]);
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("root cause captured : yes"), "{text}");
    assert!(text.contains("let save = (input() - 1);"));
}

#[test]
fn corpus_list_shows_all_faults() {
    let out = omislice(&["corpus", "list"]);
    assert!(out.status.success());
    let text = String::from_utf8_lossy(&out.stdout);
    for needle in ["flex", "grep", "gzip", "sed", "V1-F9", "V2-F3", "V3-F2"] {
        assert!(text.contains(needle), "missing {needle}:\n{text}");
    }
}

#[test]
fn corpus_locate_runs_a_session() {
    let out = omislice(&["corpus", "locate", "sed", "V3-F2"]);
    assert!(out.status.success());
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("root cause captured : yes"));
    assert!(text.contains("iterations          : 2"), "{text}");
}

#[test]
fn cfg_emits_graphviz() {
    let path = write_temp("cfg", FIXED);
    let out = omislice(&["cfg", path.to_str().unwrap()]);
    assert!(out.status.success());
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.starts_with("digraph cfg_main {"), "{text}");
    assert!(text.contains("ENTRY") && text.contains("EXIT"));
    let missing = omislice(&["cfg", path.to_str().unwrap(), "--function", "ghost"]);
    assert!(!missing.status.success());
}

#[test]
fn trace_stats_summarizes() {
    let path = write_temp("stats", FIXED);
    let out = omislice(&["trace", path.to_str().unwrap(), "--input", "1", "--stats"]);
    assert!(out.status.success());
    // Stats are human diagnostics: they go to stderr, stdout stays
    // machine-clean.
    assert!(out.stdout.is_empty(), "stdout should stay machine-clean");
    let text = String::from_utf8_lossy(&out.stderr);
    assert!(text.contains("instances        : 5"), "{text}");
    assert!(text.contains("outputs          : 1"));
}

#[test]
fn verify_reports_the_implicit_dependence() {
    let path = write_temp("verify", FAULTY);
    // Predicate S2 (the guard), use S4 (print(flags)), expecting 2.
    let out = omislice(&[
        "verify",
        path.to_str().unwrap(),
        "--input",
        "1",
        "--pred",
        "2",
        "--use",
        "4",
        "--var",
        "flags",
        "--expected",
        "2",
    ]);
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("verdict   : StrongId"), "{text}");
    // Without the expected value the dependence is still observed.
    let out = omislice(&[
        "verify",
        path.to_str().unwrap(),
        "--input",
        "1",
        "--pred",
        "2",
        "--use",
        "4",
        "--var",
        "flags",
    ]);
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("verdict   : Id"), "{text}");
}

#[test]
fn bad_usage_fails_with_help() {
    for args in [
        &["frobnicate"] as &[&str],
        &["locate"],
        &["corpus", "locate", "nope", "X"],
    ] {
        let out = omislice(args);
        assert!(!out.status.success(), "{args:?} should fail");
        assert!(String::from_utf8_lossy(&out.stderr).contains("usage:"));
    }
}

#[test]
fn run_warns_on_input_underflow() {
    let path = write_temp("underflow", FIXED);
    // No --input: the single input() call underflows and yields 0.
    let out = omislice(&["run", path.to_str().unwrap()]);
    assert!(out.status.success());
    assert_eq!(String::from_utf8_lossy(&out.stdout).trim(), "1");
    assert!(
        String::from_utf8_lossy(&out.stderr).contains("ran past the end of the input stream"),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
}

#[test]
fn verify_reports_the_run_outcome() {
    let path = write_temp("verify-outcome", FAULTY);
    let out = omislice(&[
        "verify",
        path.to_str().unwrap(),
        "--input",
        "1",
        "--pred",
        "2",
        "--use",
        "4",
        "--var",
        "flags",
    ]);
    assert!(out.status.success());
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("outcome   : completed"), "{text}");
}

#[test]
fn locate_survives_fault_injection_and_reports_isolation() {
    let fixed = write_temp("fixed3", FIXED);
    let faulty = write_temp("faulty3", FAULTY);
    // S3 (`flags = 2`) only executes in switched runs; a panic planted
    // there must be isolated — the locator degrades instead of crashing.
    let out = omislice(&[
        "locate",
        "--faulty",
        faulty.to_str().unwrap(),
        "--fixed",
        fixed.to_str().unwrap(),
        "--input",
        "1",
        "--fault-plan",
        "S3:0=panic",
        "--stats",
    ]);
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let text = String::from_utf8_lossy(&out.stderr);
    assert!(text.contains("panics isolated"), "{text}");
    let bad = omislice(&[
        "locate",
        "--faulty",
        faulty.to_str().unwrap(),
        "--fixed",
        fixed.to_str().unwrap(),
        "--fault-plan",
        "bogus",
    ]);
    assert!(!bad.status.success());
    assert!(String::from_utf8_lossy(&bad.stderr).contains("bad fault plan"));
}

#[test]
fn corpus_locate_accepts_budget_and_fault_plan() {
    let out = omislice(&[
        "corpus",
        "locate",
        "sed",
        "V3-F2",
        "--budget",
        "64:4:3",
        "--fault-plan",
        "S0:0=corrupt-checkpoint",
        "--stats",
    ]);
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let text = String::from_utf8_lossy(&out.stderr);
    assert!(text.contains("run outcomes"), "{text}");
    assert!(text.contains("escalations"), "{text}");
    let bad = omislice(&["corpus", "locate", "sed", "V3-F2", "--budget", "x:y"]);
    assert!(!bad.status.success());
}

#[test]
fn locate_writes_journal_and_explains() {
    let fixed = write_temp("fixed4", FIXED);
    let faulty = write_temp("faulty4", FAULTY);
    let journal = std::env::temp_dir()
        .join("omislice-cli-tests")
        .join(format!("journal-{}.jsonl", std::process::id()));
    let out = omislice(&[
        "locate",
        "--faulty",
        faulty.to_str().unwrap(),
        "--fixed",
        fixed.to_str().unwrap(),
        "--input",
        "1",
        "--obs-out",
        journal.to_str().unwrap(),
        "--explain",
    ]);
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("slice provenance"), "{text}");
    assert!(text.contains("the wrong output o*"), "{text}");
    let jsonl = std::fs::read_to_string(&journal).expect("journal written");
    assert!(jsonl.contains("\"type\":\"header\""), "{jsonl}");
    assert!(jsonl.contains("\"type\":\"iteration\""), "{jsonl}");
    assert!(jsonl.contains("\"type\":\"summary\""), "{jsonl}");
    assert!(jsonl.contains("\"type\":\"spans\""), "{jsonl}");
}

#[test]
fn locate_metrics_own_stdout() {
    let fixed = write_temp("fixed5", FIXED);
    let faulty = write_temp("faulty5", FAULTY);
    let base: Vec<&str> = vec![
        "locate",
        "--faulty",
        faulty.to_str().unwrap(),
        "--fixed",
        fixed.to_str().unwrap(),
        "--input",
        "1",
    ];
    let mut text_args = base.clone();
    text_args.extend(["--metrics", "text"]);
    let out = omislice(&text_args);
    assert!(out.status.success());
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(
        stdout.contains("# TYPE omislice_locate_found gauge"),
        "{stdout}"
    );
    assert!(stdout.contains("omislice_locate_found 1"), "{stdout}");
    assert!(stdout.contains("omislice_span_verify_count"), "{stdout}");
    // The human report moved to stderr so stdout is pure metrics.
    assert!(!stdout.contains("root cause captured"), "{stdout}");
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("root cause captured : yes"), "{stderr}");

    let mut json_args = base;
    json_args.extend(["--metrics", "json"]);
    let out = omislice(&json_args);
    assert!(out.status.success());
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.trim_start().starts_with('{'), "{stdout}");
    assert!(stdout.contains("\"locate_found\":1"), "{stdout}");

    let bad = omislice(&[
        "locate",
        "--faulty",
        faulty.to_str().unwrap(),
        "--fixed",
        fixed.to_str().unwrap(),
        "--metrics",
        "xml",
    ]);
    assert!(!bad.status.success());
}

#[test]
fn locate_combines_explain_obs_out_and_json_metrics() {
    let fixed = write_temp("fixed6", FIXED);
    let faulty = write_temp("faulty6", FAULTY);
    let journal = std::env::temp_dir()
        .join("omislice-cli-tests")
        .join(format!("combined-journal-{}.jsonl", std::process::id()));
    let out = omislice(&[
        "locate",
        "--faulty",
        faulty.to_str().unwrap(),
        "--fixed",
        fixed.to_str().unwrap(),
        "--input",
        "1",
        "--explain",
        "--obs-out",
        journal.to_str().unwrap(),
        "--metrics",
        "json",
    ]);
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );

    // Metrics own stdout: one JSON object, nothing else.
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.trim_start().starts_with('{'), "{stdout}");
    assert!(stdout.contains("\"locate_found\":1"), "{stdout}");
    assert_eq!(
        stdout.trim().lines().count(),
        1,
        "stdout must be exactly the metrics object:\n{stdout}"
    );
    assert!(!stdout.contains("root cause captured"), "{stdout}");
    assert!(!stdout.contains("slice provenance"), "{stdout}");

    // All human output — the report AND the explain rendering — moved
    // to stderr.
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("root cause captured : yes"), "{stderr}");
    assert!(stderr.contains("slice provenance"), "{stderr}");
    assert!(stderr.contains("the wrong output o*"), "{stderr}");

    // The journal still lands on disk, valid and complete.
    let jsonl = std::fs::read_to_string(&journal).expect("journal written");
    for record in ["header", "iteration", "summary", "spans"] {
        assert!(
            jsonl.contains(&format!("\"type\":\"{record}\"")),
            "missing {record} record:\n{jsonl}"
        );
    }
}

#[test]
fn corpus_locate_supports_obs_flags() {
    let journal = std::env::temp_dir()
        .join("omislice-cli-tests")
        .join(format!("corpus-journal-{}.jsonl", std::process::id()));
    let out = omislice(&[
        "corpus",
        "locate",
        "sed",
        "V3-F2",
        "--obs-out",
        journal.to_str().unwrap(),
        "--explain",
    ]);
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("slice provenance"), "{text}");
    let jsonl = std::fs::read_to_string(&journal).expect("journal written");
    assert!(jsonl.contains("\"program\":\"sed:V3-F2\""), "{jsonl}");
}

/// Journal lines with the wall-clock `spans` record removed: spans
/// carry real durations, so they are the one record that legitimately
/// differs between two otherwise identical locate sessions.
fn journal_sans_spans(path: &std::path::Path) -> String {
    std::fs::read_to_string(path)
        .expect("journal written")
        .lines()
        .filter(|l| !l.contains("\"type\":\"spans\""))
        .collect::<Vec<_>>()
        .join("\n")
}

#[test]
fn trace_save_then_locate_trace_in_round_trips() {
    let fixed = write_temp("fixed-rt", FIXED);
    let faulty = write_temp("faulty-rt", FAULTY);
    let dir = std::env::temp_dir().join("omislice-cli-tests");
    let trace_file = dir.join(format!("rt-{}.omitrace", std::process::id()));
    let saved = omislice(&[
        "trace",
        faulty.to_str().unwrap(),
        "--input",
        "1",
        "--save",
        trace_file.to_str().unwrap(),
    ]);
    assert!(
        saved.status.success(),
        "{}",
        String::from_utf8_lossy(&saved.stderr)
    );
    assert!(saved.stdout.is_empty(), "--save keeps stdout machine-clean");
    assert!(
        String::from_utf8_lossy(&saved.stderr).contains("omitrace/v1"),
        "{}",
        String::from_utf8_lossy(&saved.stderr)
    );

    // The same locate session twice: once tracing in-process, once
    // reloading the saved trace. Reports and journals must agree
    // exactly — the reloaded trace is indistinguishable from the live
    // one.
    let journal_live = dir.join(format!("rt-live-{}.jsonl", std::process::id()));
    let journal_reload = dir.join(format!("rt-reload-{}.jsonl", std::process::id()));
    let run = |journal: &std::path::Path, trace_in: Option<&std::path::Path>| {
        let mut args = vec![
            "locate",
            "--faulty",
            faulty.to_str().unwrap(),
            "--fixed",
            fixed.to_str().unwrap(),
            "--input",
            "1",
            "--obs-out",
            journal.to_str().unwrap(),
        ];
        if let Some(t) = trace_in {
            args.extend(["--trace-in", t.to_str().unwrap()]);
        }
        let out = omislice(&args);
        assert!(
            out.status.success(),
            "{}",
            String::from_utf8_lossy(&out.stderr)
        );
        String::from_utf8_lossy(&out.stdout).into_owned()
    };
    let live = run(&journal_live, None);
    let reloaded = run(&journal_reload, Some(&trace_file));
    assert!(live.contains("root cause captured : yes"), "{live}");
    assert_eq!(live, reloaded, "reports diverge between live and reload");
    assert_eq!(
        journal_sans_spans(&journal_live),
        journal_sans_spans(&journal_reload),
        "journals diverge between live and reload"
    );
}

#[test]
fn locate_trace_in_recovers_from_corrupt_files_by_retracing() {
    let fixed = write_temp("fixed-corrupt", FIXED);
    let faulty = write_temp("faulty-corrupt", FAULTY);
    let dir = std::env::temp_dir().join("omislice-cli-tests");
    let trace_file = dir.join(format!("corrupt-{}.omitrace", std::process::id()));
    let saved = omislice(&[
        "trace",
        faulty.to_str().unwrap(),
        "--input",
        "1",
        "--save",
        trace_file.to_str().unwrap(),
    ]);
    assert!(saved.status.success());
    let good = std::fs::read(&trace_file).expect("trace saved");

    let locate_with = |bytes: &[u8], name: &str| {
        let path = dir.join(format!("{name}-{}.omitrace", std::process::id()));
        std::fs::write(&path, bytes).unwrap();
        omislice(&[
            "locate",
            "--faulty",
            faulty.to_str().unwrap(),
            "--fixed",
            fixed.to_str().unwrap(),
            "--input",
            "1",
            "--trace-in",
            path.to_str().unwrap(),
        ])
    };

    // A trace file that stays unreadable is the last rung of the load
    // ladder: warn, re-trace from source, and still produce the full
    // report — never a panic, never an abort.
    let mut flipped = good.clone();
    let mid = flipped.len() / 2;
    flipped[mid] ^= 0x40;
    for (out, what) in [
        (
            locate_with(&good[..good.len() / 2], "truncated"),
            "truncated",
        ),
        (locate_with(&flipped, "bitflip"), "bit-flipped"),
        (locate_with(b"definitely not a trace", "garbage"), "garbage"),
        (locate_with(b"", "empty"), "empty"),
    ] {
        assert!(
            out.status.success(),
            "{what}: the pipeline must recover, got:\n{}",
            String::from_utf8_lossy(&out.stderr)
        );
        let stderr = String::from_utf8_lossy(&out.stderr);
        assert!(
            stderr.contains("cannot load trace") && stderr.contains("re-tracing from source"),
            "{what}: the degradation must be reported, got:\n{stderr}"
        );
        assert!(
            stderr.contains("pipeline recovered"),
            "{what}: the recovery ledger must surface, got:\n{stderr}"
        );
        assert!(
            !stderr.contains("panicked"),
            "{what}: the CLI must not panic:\n{stderr}"
        );
        let stdout = String::from_utf8_lossy(&out.stdout);
        assert!(
            stdout.contains("root cause captured : yes"),
            "{what}: the recovered run must still locate the root:\n{stdout}"
        );
    }

    // A missing file climbs the same ladder.
    let out = omislice(&[
        "locate",
        "--faulty",
        faulty.to_str().unwrap(),
        "--fixed",
        fixed.to_str().unwrap(),
        "--input",
        "1",
        "--trace-in",
        "/nonexistent/ghost.omitrace",
    ]);
    assert!(out.status.success());
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("cannot load trace") && stderr.contains("re-tracing from source"));
}

#[test]
fn locate_mode_flag_is_respected() {
    let fixed = write_temp("fixed2", FIXED);
    let faulty = write_temp("faulty2", FAULTY);
    for mode in ["edge", "path", "value"] {
        let out = omislice(&[
            "locate",
            "--faulty",
            faulty.to_str().unwrap(),
            "--fixed",
            fixed.to_str().unwrap(),
            "--input",
            "1",
            "--mode",
            mode,
        ]);
        assert!(out.status.success(), "mode {mode}");
    }
    let out = omislice(&[
        "locate",
        "--faulty",
        faulty.to_str().unwrap(),
        "--fixed",
        fixed.to_str().unwrap(),
        "--mode",
        "bogus",
    ]);
    assert!(!out.status.success());
}

// Loop-heavy pair (>4096 trace events) so the recorder actually spills
// chunks across the builder thread — the recorder chaos sites (builder,
// channel, queue) only fire once chunking kicks in. The fix moves the
// `acc = 0` reset under the right guard; with inputs `5,2` the faulty
// program omits it.
const FIXED_LONG: &str = "global acc = 0;\n\
    fn main() {\n\
      let n = input();\n\
      let i = 0;\n\
      while i < 1200 {\n\
        acc = acc + i;\n\
        let j = acc / 7;\n\
        let k = j * 3;\n\
        acc = acc - k / 9;\n\
        i = i + 1;\n\
      }\n\
      let flag = input();\n\
      if flag == 2 { acc = 0; }\n\
      print(acc);\n\
    }\n";
const FAULTY_LONG: &str = "global acc = 0;\n\
    fn main() {\n\
      let n = input();\n\
      let i = 0;\n\
      while i < 1200 {\n\
        acc = acc + i;\n\
        let j = acc / 7;\n\
        let k = j * 3;\n\
        acc = acc - k / 9;\n\
        i = i + 1;\n\
      }\n\
      let flag = input();\n\
      if flag == 1 { acc = 0; }\n\
      print(acc);\n\
    }\n";

#[test]
fn locate_chaos_sweep_recovers_every_site() {
    let fixed = write_temp("fixed-chaos", FIXED_LONG);
    let faulty = write_temp("faulty-chaos", FAULTY_LONG);

    // Clean baseline: the report every chaos run must reproduce.
    let clean = omislice(&[
        "locate",
        "--faulty",
        faulty.to_str().unwrap(),
        "--fixed",
        fixed.to_str().unwrap(),
        "--input",
        "5,2",
    ]);
    assert!(clean.status.success());
    let clean_report = String::from_utf8_lossy(&clean.stdout).to_string();
    assert!(clean_report.contains("root cause captured : yes"));

    for (plan, counter) in [
        ("builder=panic", "recovery.inline_fallbacks"),
        ("channel=disconnect", "recovery.inline_fallbacks"),
        ("queue=stall", "recovery.queue_stalls"),
    ] {
        let out = omislice(&[
            "locate",
            "--faulty",
            faulty.to_str().unwrap(),
            "--fixed",
            fixed.to_str().unwrap(),
            "--input",
            "5,2",
            "--chaos",
            plan,
        ]);
        assert!(
            out.status.success(),
            "{plan}: must recover, got:\n{}",
            String::from_utf8_lossy(&out.stderr)
        );
        let stderr = String::from_utf8_lossy(&out.stderr);
        assert!(
            stderr.contains("pipeline recovered") && stderr.contains(counter),
            "{plan}: expected `{counter}` in the recovery warning, got:\n{stderr}"
        );
        assert_eq!(
            String::from_utf8_lossy(&out.stdout),
            clean_report,
            "{plan}: the recovered report must match the clean one"
        );
    }
}

#[test]
fn locate_chaos_load_faults_recover_and_journal_the_recovery() {
    let fixed = write_temp("fixed-chaosload", FIXED);
    let faulty = write_temp("faulty-chaosload", FAULTY);
    let dir = std::env::temp_dir().join("omislice-cli-tests");
    let trace_file = dir.join(format!("chaosload-{}.omitrace", std::process::id()));
    let journal = dir.join(format!("chaosload-{}.jsonl", std::process::id()));
    let saved = omislice(&[
        "trace",
        faulty.to_str().unwrap(),
        "--input",
        "1",
        "--save",
        trace_file.to_str().unwrap(),
    ]);
    assert!(saved.status.success());

    let out = omislice(&[
        "locate",
        "--faulty",
        faulty.to_str().unwrap(),
        "--fixed",
        fixed.to_str().unwrap(),
        "--input",
        "1",
        "--trace-in",
        trace_file.to_str().unwrap(),
        "--chaos",
        "decode=corrupt,mmap=fail",
        "--obs-out",
        journal.to_str().unwrap(),
    ]);
    assert!(
        out.status.success(),
        "load chaos must recover:\n{}",
        String::from_utf8_lossy(&out.stderr)
    );
    assert!(String::from_utf8_lossy(&out.stdout).contains("root cause captured : yes"));
    let text = std::fs::read_to_string(&journal).expect("journal written");
    let recovery = text
        .lines()
        .find(|l| l.contains("\"type\":\"recovery\""))
        .expect("journal carries a recovery record");
    assert!(recovery.contains("\"deadline_expired\":false"));
    assert!(
        recovery.contains("recovery.load_retries") && recovery.contains("recovery.mmap_fallbacks"),
        "recovery counters journaled: {recovery}"
    );
}

#[test]
fn locate_deadline_expiry_exits_3_with_partial_report() {
    let fixed = write_temp("fixed-deadline", FIXED);
    let faulty = write_temp("faulty-deadline", FAULTY);
    // Pinned expiry at the first counted check — deterministic, unlike a
    // wall-clock `--deadline 0` race (also covered, below).
    let out = omislice(&[
        "locate",
        "--faulty",
        faulty.to_str().unwrap(),
        "--fixed",
        fixed.to_str().unwrap(),
        "--input",
        "1",
        "--chaos",
        "deadline:1=expire",
    ]);
    assert_eq!(out.status.code(), Some(3), "deadline expiry is exit 3");
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("deadline expired") && stderr.contains("partial"));
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(
        stdout.contains("omislice fault localization report"),
        "a partial report must still render:\n{stdout}"
    );

    let wall = omislice(&[
        "locate",
        "--faulty",
        faulty.to_str().unwrap(),
        "--fixed",
        fixed.to_str().unwrap(),
        "--input",
        "1",
        "--deadline",
        "0",
    ]);
    assert_eq!(
        wall.status.code(),
        Some(3),
        "--deadline 0 expires immediately"
    );
}

#[test]
fn chaos_and_deadline_flags_reject_bad_values() {
    let fixed = write_temp("fixed-badflags", FIXED);
    let faulty = write_temp("faulty-badflags", FAULTY);
    for (flag, value, expected) in [
        ("--chaos", "bogus", "bad chaos entry"),
        ("--chaos", "builder=fly", "unknown chaos action"),
        ("--chaos", "nowhere=panic", "unknown chaos site"),
        ("--deadline", "nope", "bad --deadline"),
    ] {
        let out = omislice(&[
            "locate",
            "--faulty",
            faulty.to_str().unwrap(),
            "--fixed",
            fixed.to_str().unwrap(),
            flag,
            value,
        ]);
        assert!(!out.status.success(), "{flag} {value} must be rejected");
        assert!(
            String::from_utf8_lossy(&out.stderr).contains(expected),
            "{flag} {value}: expected `{expected}`"
        );
    }
}

#[test]
fn malformed_numeric_flags_exit_2_with_usage() {
    let fixed = write_temp("fixed-num", FIXED);
    let faulty = write_temp("faulty-num", FAULTY);
    let f = faulty.to_str().unwrap();
    let g = fixed.to_str().unwrap();
    let cases: Vec<(Vec<&str>, &str)> = vec![
        (
            vec!["locate", "--faulty", f, "--fixed", g, "--jobs", "x"],
            "bad --jobs `x`",
        ),
        (
            vec!["locate", "--faulty", f, "--fixed", g, "--jobs", "0"],
            "bad --jobs `0`",
        ),
        (
            vec![
                "locate",
                "--faulty",
                f,
                "--fixed",
                g,
                "--capture-threshold",
                "soon",
            ],
            "bad --capture-threshold `soon`",
        ),
        (
            vec!["locate", "--faulty", f, "--fixed", g, "--budget", "x:y"],
            "bad --budget `x:y`",
        ),
        (
            vec!["locate", "--faulty", f, "--fixed", g, "--deadline", "nope"],
            "bad --deadline `nope`",
        ),
        (vec!["slice", f, "--output", "last"], "bad --output `last`"),
        (vec!["slice", f, "--jobs", "-2"], "bad --jobs `-2`"),
        (
            vec![
                "verify",
                f,
                "--input",
                "1",
                "--pred",
                "2",
                "--use",
                "4",
                "--var",
                "flags",
                "--expected",
                "two",
            ],
            "bad --expected `two`",
        ),
        (
            vec!["serve", "--addr", "127.0.0.1:0", "--workers", "many"],
            "bad --workers `many`",
        ),
        (
            vec!["serve", "--addr", "127.0.0.1:0", "--queue", "0"],
            "bad --queue `0`",
        ),
        (
            vec!["corpus", "locate", "sed", "V3-F3", "--jobs", "x"],
            "bad --jobs `x`",
        ),
    ];
    for (args, expected) in cases {
        let out = omislice(&args);
        assert_eq!(
            out.status.code(),
            Some(2),
            "{args:?} must exit 2, stderr: {}",
            String::from_utf8_lossy(&out.stderr)
        );
        let stderr = String::from_utf8_lossy(&out.stderr);
        assert!(
            stderr.contains(expected),
            "{args:?}: expected `{expected}` in:\n{stderr}"
        );
        assert!(stderr.contains("usage:"), "{args:?}: usage block printed");
    }
}

#[test]
fn usage_errors_exit_2_but_pipeline_failures_exit_1() {
    // Malformed invocations: exit 2.
    for args in [
        &["frobnicate"] as &[&str],
        &["locate"],
        &["corpus", "locate", "nope", "X"],
        &["corpus", "explode"],
        &["serve"],
        &["verify"],
    ] {
        let out = omislice(args);
        assert_eq!(out.status.code(), Some(2), "{args:?} is a usage error");
    }
    // A well-formed invocation that fails in the pipeline: exit 1, and
    // no usage block (the caller did nothing wrong).
    let out = omislice(&["run", "/nonexistent/program.omi"]);
    assert_eq!(out.status.code(), Some(1), "pipeline failure is exit 1");
    assert!(!String::from_utf8_lossy(&out.stderr).contains("usage:"));
}

#[test]
fn locate_structural_mismatch_reports_instead_of_panicking() {
    let fixed = write_temp("fixed-mism", FIXED);
    let faulty = write_temp(
        "faulty-mism",
        "fn main() { let a = input(); print(a); print(a + 1); print(a + 2); }",
    );
    let out = omislice(&[
        "locate",
        "--faulty",
        faulty.to_str().unwrap(),
        "--fixed",
        fixed.to_str().unwrap(),
        "--input",
        "1",
    ]);
    assert_eq!(out.status.code(), Some(1), "mismatch is a pipeline failure");
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(
        stderr.contains("structurally incompatible"),
        "structured error, not a panic:\n{stderr}"
    );
    assert!(!stderr.contains("panicked"), "no panic output:\n{stderr}");
}

#[test]
fn locate_trace_in_with_deadline_exits_3_with_partial_report() {
    let fixed = write_temp("fixed-tid", FIXED);
    let faulty = write_temp("faulty-tid", FAULTY);
    let dir = std::env::temp_dir().join("omislice-cli-tests");
    let trace_file = dir.join(format!("tid-{}.omitrace", std::process::id()));
    let saved = omislice(&[
        "trace",
        faulty.to_str().unwrap(),
        "--input",
        "1",
        "--save",
        trace_file.to_str().unwrap(),
    ]);
    assert!(saved.status.success());

    // A preloaded trace skips the supervised trace run; the pipeline-top
    // deadline check must still see the expiry on both the wall-clock
    // and the chaos-pinned path.
    for extra in [
        &["--deadline", "0"] as &[&str],
        &["--chaos", "deadline:1=expire"],
    ] {
        let mut args = vec![
            "locate",
            "--faulty",
            faulty.to_str().unwrap(),
            "--fixed",
            fixed.to_str().unwrap(),
            "--input",
            "1",
            "--trace-in",
            trace_file.to_str().unwrap(),
        ];
        args.extend(extra);
        let out = omislice(&args);
        assert_eq!(
            out.status.code(),
            Some(3),
            "{extra:?}: --trace-in + deadline is exit 3, stderr: {}",
            String::from_utf8_lossy(&out.stderr)
        );
        let stdout = String::from_utf8_lossy(&out.stdout);
        assert!(
            stdout.contains("omislice fault localization report"),
            "{extra:?}: a partial report must still render:\n{stdout}"
        );
        assert!(String::from_utf8_lossy(&out.stderr).contains("partial"));
    }
}

#[test]
fn serve_starts_serves_and_dies_cleanly() {
    use std::io::{BufRead as _, BufReader, Read as _, Write as _};
    let mut child = Command::new(env!("CARGO_BIN_EXE_omislice"))
        .args(["serve", "--addr", "127.0.0.1:0", "--workers", "2"])
        .stdout(std::process::Stdio::piped())
        .spawn()
        .expect("serve starts");
    let mut reader = BufReader::new(child.stdout.take().expect("stdout piped"));
    let mut line = String::new();
    reader.read_line(&mut line).expect("reads the bind line");
    let addr = line
        .trim()
        .strip_prefix("omislice serve listening on ")
        .and_then(|r| r.split_whitespace().next())
        .unwrap_or_else(|| panic!("unexpected bind line: {line}"))
        .to_string();

    let mut stream = std::net::TcpStream::connect(&addr).expect("connects");
    stream
        .write_all(b"GET /healthz HTTP/1.1\r\nHost: t\r\nConnection: close\r\n\r\n")
        .expect("sends");
    let mut response = String::new();
    stream.read_to_string(&mut response).expect("reads");
    assert!(response.starts_with("HTTP/1.1 200"), "{response}");
    assert!(response.contains("\"ok\":true"), "{response}");

    child.kill().expect("kills the server");
    child.wait().expect("reaps the server");
}
