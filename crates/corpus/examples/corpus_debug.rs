//! Diagnostic dump for corpus authoring: prints fixed/faulty outputs for
//! every fault and input. Not part of the public examples.

use omislice::omislice_interp::{run_plain, RunConfig};
use omislice_corpus::all_benchmarks;

fn main() {
    for b in all_benchmarks() {
        for fault in &b.faults {
            let prepared = match b.prepare(fault) {
                Ok(p) => p,
                Err(e) => {
                    println!("{} {}: COMPILE ERROR {e}", b.name, fault.id);
                    continue;
                }
            };
            let show = |tag: &str, inputs: &[i64]| {
                let cfg = RunConfig::with_inputs(inputs.to_vec());
                let fixed = run_plain(&prepared.fixed, &cfg);
                let faulty = run_plain(&prepared.faulty, &cfg);
                println!(
                    "{} {} {tag} {:?}\n  fixed : {:?} {:?}\n  faulty: {:?} {:?}",
                    b.name,
                    fault.id,
                    inputs,
                    fixed.outputs,
                    fixed.termination,
                    faulty.outputs,
                    faulty.termination
                );
            };
            show("FAIL", &fault.failing_input);
            for (i, pi) in fault.passing_inputs.iter().enumerate() {
                show(&format!("PASS#{i}"), pi);
            }
            println!("  roots: {:?}", prepared.roots);
        }
    }
}
