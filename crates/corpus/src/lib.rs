//! # omislice-corpus
//!
//! Benchmark programs with seeded **execution-omission faults** for the
//! omislice evaluation — the stand-in for the paper's Siemens-suite
//! subjects (flex, grep, gzip, sed from the SIR repository, Table 1).
//!
//! Each [`Benchmark`] is one mini-language program modeled on the
//! corresponding utility, plus a list of [`Fault`]s named after the
//! paper's error ids (e.g. `V2-F3`). A fault is a single-statement
//! mutation of the fixed source that preserves every statement id, so
//! the ground-truth oracle can align faulty and fixed runs positionally.
//!
//! Every fault in the corpus satisfies the defining property of an
//! execution omission error, which the crate's tests enforce:
//!
//! * the failing input produces a wrong output **value**;
//! * the classic dynamic slice of that wrong value does **not** contain
//!   the root cause (the mutation suppressed the execution of the code
//!   that would have connected them);
//! * the demand-driven locator recovers the root cause via implicit
//!   dependences.
//!
//! ```
//! use omislice_corpus::all_benchmarks;
//!
//! let benchmarks = all_benchmarks();
//! assert_eq!(benchmarks.len(), 4);
//! let gzip = benchmarks.iter().find(|b| b.name == "gzip").unwrap();
//! assert!(gzip.fault("V2-F3").is_some());
//! ```

mod programs;
pub mod workload;

pub use programs::{all_benchmarks, excluded_benchmarks};
pub use workload::WorkloadGen;

use omislice::{DebugSession, SessionError};
use omislice_lang::{compile, printer::stmt_head, FrontendError, Program, StmtId};

/// Whether a fault mirrors one of the suite's real bugs or was seeded.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultKind {
    /// Seeded by mutation (most of the suite).
    Seeded,
    /// Modeled on a real bug (the suite's sed errors).
    Real,
}

impl std::fmt::Display for FaultKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            FaultKind::Seeded => "seeded",
            FaultKind::Real => "real",
        })
    }
}

/// One seeded fault: a single-statement mutation plus its exposing and
/// passing inputs.
#[derive(Debug, Clone)]
pub struct Fault {
    /// The paper's error id, e.g. `"V1-F9"`.
    pub id: &'static str,
    /// Seeded or modeled-on-real.
    pub kind: FaultKind,
    /// What the mutation breaks, in one sentence.
    pub description: &'static str,
    /// Exact statement text in the fixed source to replace (must occur
    /// exactly once).
    pub needle: &'static str,
    /// The faulty replacement text.
    pub replacement: &'static str,
    /// The input exposing the failure.
    pub failing_input: Vec<i64>,
    /// Inputs on which faulty and fixed agree (also the profiling suite).
    pub passing_inputs: Vec<Vec<i64>>,
}

impl Fault {
    /// Produces the faulty source from the benchmark's fixed source.
    ///
    /// # Panics
    ///
    /// Panics if the needle does not occur exactly once.
    pub fn apply(&self, fixed_src: &str) -> String {
        assert_eq!(
            fixed_src.matches(self.needle).count(),
            1,
            "fault {}: needle `{}` must occur exactly once",
            self.id,
            self.needle
        );
        fixed_src.replacen(self.needle, self.replacement, 1)
    }
}

/// One benchmark program and its faults.
#[derive(Debug, Clone)]
pub struct Benchmark {
    /// Short name matching the paper's Table 1 (`flex`, `grep`, ...).
    pub name: &'static str,
    /// What the program does.
    pub description: &'static str,
    /// The fault-free source.
    pub fixed_src: &'static str,
    /// The seeded faults.
    pub faults: Vec<Fault>,
}

impl Benchmark {
    /// Looks up a fault by its paper id.
    pub fn fault(&self, id: &str) -> Option<&Fault> {
        self.faults.iter().find(|f| f.id == id)
    }

    /// Non-blank, non-comment source lines (the Table 1 "LOC" metric).
    pub fn loc(&self) -> usize {
        self.fixed_src
            .lines()
            .filter(|l| {
                let t = l.trim();
                !t.is_empty() && !t.starts_with("//")
            })
            .count()
    }

    /// Number of procedures (the Table 1 "# of procedures" metric).
    ///
    /// # Panics
    ///
    /// Panics if the fixed source does not compile (corpus invariant).
    pub fn procedures(&self) -> usize {
        compile(self.fixed_src)
            .expect("corpus programs compile")
            .functions()
            .count()
    }

    /// Compiles the fixed program and one fault's variant, returning the
    /// root-cause statement ids (the statements whose text differs).
    ///
    /// # Errors
    ///
    /// Returns the compile error of whichever version fails.
    pub fn prepare(&self, fault: &Fault) -> Result<PreparedFault, FrontendError> {
        let fixed = compile(self.fixed_src)?;
        let faulty_src = fault.apply(self.fixed_src);
        let faulty = compile(&faulty_src)?;
        let roots = seeded_roots(&fixed, &faulty);
        Ok(PreparedFault {
            fixed,
            faulty,
            faulty_src,
            roots,
        })
    }

    /// Builds a ready [`DebugSession`] for one fault.
    ///
    /// # Errors
    ///
    /// Propagates compilation failures as [`SessionError`].
    pub fn session(&self, fault: &Fault) -> Result<DebugSession, SessionError> {
        let prepared = self.prepare(fault).map_err(SessionError::Faulty)?;
        DebugSession::builder(&prepared.faulty_src)
            .reference(self.fixed_src)
            .failing_input(fault.failing_input.clone())
            .profile_inputs(fault.passing_inputs.iter().cloned())
            .root_cause_stmts(prepared.roots.iter().copied())
            .build()
    }
}

/// Compiled fixed/faulty pair with the seeded statement ids.
#[derive(Debug)]
pub struct PreparedFault {
    /// The fault-free program.
    pub fixed: Program,
    /// The faulty program.
    pub faulty: Program,
    /// The faulty source text.
    pub faulty_src: String,
    /// Statement ids whose text differs (the root cause).
    pub roots: Vec<StmtId>,
}

/// Finds the statements whose rendered text differs between two
/// id-compatible programs.
///
/// # Panics
///
/// Panics if the programs do not have the same number of statements
/// (fault seeding must preserve statement structure).
pub fn seeded_roots(fixed: &Program, faulty: &Program) -> Vec<StmtId> {
    try_seeded_roots(fixed, faulty).expect("fault seeding must preserve statement ids")
}

/// Fallible form of [`seeded_roots`] for callers whose program pair comes
/// from untrusted input (the CLI's `--fixed`/`--faulty` files, a serve
/// request body) rather than the corpus seeding machinery.
///
/// # Errors
///
/// Returns a description of the structural mismatch when the two programs
/// do not have the same number of statements.
pub fn try_seeded_roots(fixed: &Program, faulty: &Program) -> Result<Vec<StmtId>, String> {
    if fixed.stmt_count() != faulty.stmt_count() {
        return Err(format!(
            "fixed and faulty programs are structurally incompatible: \
             {} vs {} statements (fault seeding must preserve statement ids)",
            fixed.stmt_count(),
            faulty.stmt_count()
        ));
    }
    let mut heads_fixed = Vec::new();
    fixed.visit_stmts(&mut |s| heads_fixed.push((s.id, stmt_head(s))));
    let mut heads_faulty = Vec::new();
    faulty.visit_stmts(&mut |s| heads_faulty.push((s.id, stmt_head(s))));
    Ok(heads_fixed
        .iter()
        .zip(&heads_faulty)
        .filter(|((_, a), (_, b))| a != b)
        .map(|((id, _), _)| *id)
        .collect())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_matches_table1() {
        let names: Vec<&str> = all_benchmarks().iter().map(|b| b.name).collect();
        assert_eq!(names, vec!["flex", "grep", "gzip", "sed"]);
        let counts: Vec<usize> = all_benchmarks().iter().map(|b| b.faults.len()).collect();
        assert_eq!(counts, vec![5, 1, 1, 2], "fault counts match Table 2");
    }

    #[test]
    fn try_seeded_roots_reports_structural_mismatch() {
        let a = compile("fn main() { print(1); }").unwrap();
        let b = compile("fn main() { print(1); print(2); }").unwrap();
        let err = try_seeded_roots(&a, &b).unwrap_err();
        assert!(err.contains("structurally incompatible"), "{err}");
        assert!(err.contains("1 vs 2"), "{err}");
        assert_eq!(try_seeded_roots(&a, &a).unwrap(), Vec::<StmtId>::new());
    }

    #[test]
    fn all_sources_compile_and_have_metrics() {
        for b in all_benchmarks() {
            assert!(b.loc() > 30, "{} too small ({})", b.name, b.loc());
            assert!(b.procedures() >= 4, "{}", b.name);
        }
    }

    #[test]
    fn every_fault_prepares_with_single_root() {
        for b in all_benchmarks() {
            for f in &b.faults {
                let p = b
                    .prepare(f)
                    .unwrap_or_else(|e| panic!("{} {}: {e}", b.name, f.id));
                assert_eq!(
                    p.roots.len(),
                    1,
                    "{} {}: expected a single-statement mutation",
                    b.name,
                    f.id
                );
            }
        }
    }

    #[test]
    fn fault_lookup_by_id() {
        let all = all_benchmarks();
        let flex = &all[0];
        assert!(flex.fault("V1-F9").is_some());
        assert!(flex.fault("V9-F9").is_none());
    }

    #[test]
    #[should_panic(expected = "exactly once")]
    fn apply_rejects_missing_needle() {
        let f = Fault {
            id: "X",
            kind: FaultKind::Seeded,
            description: "",
            needle: "no such text",
            replacement: "whatever",
            failing_input: vec![],
            passing_inputs: vec![],
        };
        f.apply("fn main() { }");
    }

    #[test]
    fn make_is_present_but_excluded_like_the_paper() {
        use omislice::omislice_interp::{run_plain, RunConfig};
        let excluded = excluded_benchmarks();
        assert_eq!(excluded.len(), 1);
        let make = &excluded[0];
        assert_eq!(make.name, "make");
        assert!(make.loc() > 30 && make.procedures() >= 4);
        // The mutation exists, but no provided test exposes it: fixed and
        // mutated versions agree on every input in the suite.
        let fault = &make.faults[0];
        let prepared = make.prepare(fault).unwrap();
        for inputs in &fault.passing_inputs {
            let cfg = RunConfig::with_inputs(inputs.clone());
            let fixed = run_plain(&prepared.fixed, &cfg);
            let faulty = run_plain(&prepared.faulty, &cfg);
            assert!(fixed.is_normal() && faulty.is_normal());
            assert_eq!(fixed.outputs, faulty.outputs, "make: {inputs:?}");
        }
        assert!(
            fault.failing_input.is_empty(),
            "no exposing input exists, as the paper reports"
        );
    }

    #[test]
    fn fault_kind_display() {
        assert_eq!(FaultKind::Seeded.to_string(), "seeded");
        assert_eq!(FaultKind::Real.to_string(), "real");
    }
}
