//! `gzip` — an LZ-style compressor with a gzip-like header.
//!
//! This is the corpus program closest to the paper: fault **V2-F3** is a
//! direct transcription of the motivating Figure 1 bug — the assignment
//! to `save_orig_name` computes the wrong value, so the header guard is
//! not taken, `flags` never receives its `ORIG_NAME` bit, and the stale
//! `flags` byte is observed in the emitted archive.

use crate::{Benchmark, Fault, FaultKind};

/// Fixed source of the gzip benchmark.
///
/// Input layout: `[save_orig_name, level, n, byte_0 .. byte_{n-1}]`.
/// Output: the archive bytes in order, then the byte count.
pub const SRC: &str = r#"
// gzip: run-length "deflate" with a gzip-like header and trailer.
global MAGIC1 = 31;
global MAGIC2 = 139;
global DEFLATED = 8;
global ORIG_NAME = 8;
global outbuf = [0; 192];
global outcnt = 0;
global inbuf = [0; 64];
global insize = 0;
global flags = 0;
global save_orig_name = 0;
global level = 0;
global method = 0;
global crc = 0;

// Append one byte to the archive.
fn emit(b) {
    outbuf[outcnt] = b;
    outcnt = outcnt + 1;
}

// Adler-flavored running checksum over the input bytes.
fn update_crc(b) {
    crc = (crc * 31 + b) % 65521;
}

// Slurp the uncompressed payload.
fn read_input(n) {
    let i = 0;
    while i < n {
        let b = input();
        inbuf[i] = b;
        update_crc(b);
        i = i + 1;
    }
    insize = n;
}

// Magic bytes, method, flags, level, and (optionally) the original name.
fn write_header() {
    emit(MAGIC1);
    emit(MAGIC2);
    emit(method);
    if save_orig_name == 1 {
        flags = flags + ORIG_NAME;
    }
    emit(flags);
    emit(level);
    if save_orig_name == 1 {
        emit(111);
        emit(0);
    }
}

// Run-length "deflate": emit (byte, run-length) pairs.
fn deflate() {
    let i = 0;
    let prev = 0 - 1;
    let run = 0;
    while i < insize {
        let b = inbuf[i];
        if b == prev {
            run = run + 1;
        } else {
            if run > 0 {
                emit(prev);
                emit(run);
            }
            prev = b;
            run = 1;
        }
        i = i + 1;
    }
    if run > 0 {
        emit(prev);
        emit(run);
    }
}

// Checksum and original size close the member.
fn write_trailer() {
    emit(crc % 256);
    emit(insize);
}

// The archive is printed byte by byte, like gzip writing its outbuf.
fn flush_output() {
    let i = 0;
    while i < outcnt {
        print(outbuf[i]);
        i = i + 1;
    }
}

fn main() {
    save_orig_name = input();
    level = input();
    method = DEFLATED;
    let n = input();
    read_input(n);
    write_header();
    deflate();
    write_trailer();
    flush_output();
    print(outcnt);
}
"#;

/// The gzip benchmark with its single fault (the paper's gzip V2-F3).
pub fn benchmark() -> Benchmark {
    Benchmark {
        name: "gzip",
        description: "an LZ77-flavored compressor (run-length deflate, gzip-like header)",
        fixed_src: SRC,
        faults: vec![Fault {
            id: "V2-F3",
            kind: FaultKind::Seeded,
            description: "save_orig_name is computed wrong, so the header guard is \
                          skipped and the stale flags byte reaches the archive \
                          (the paper's Figure 1)",
            needle: "save_orig_name = input();",
            replacement: "save_orig_name = input() - 1;",
            failing_input: vec![1, 6, 4, 5, 5, 7, 7],
            passing_inputs: vec![
                vec![0, 6, 4, 5, 5, 7, 7],
                vec![0, 1, 3, 2, 2, 2],
                vec![0, 9, 5, 1, 2, 3, 4, 5],
                vec![0, 3, 1, 42],
                vec![0, 2, 6, 9, 9, 8, 8, 8, 9],
            ],
        }],
    }
}
