//! The benchmark programs, one module per Table 1 subject.

pub mod flex;
pub mod grep;
pub mod gzip;
pub mod make;
pub mod sed;

use crate::Benchmark;

/// All evaluated benchmarks in the paper's Table 1/2 order.
pub fn all_benchmarks() -> Vec<Benchmark> {
    vec![
        flex::benchmark(),
        grep::benchmark(),
        gzip::benchmark(),
        sed::benchmark(),
    ]
}

/// Benchmarks excluded from the evaluation — `make`, for the paper's own
/// reason: its provided test suite exposes no error.
pub fn excluded_benchmarks() -> Vec<Benchmark> {
    vec![make::benchmark()]
}
