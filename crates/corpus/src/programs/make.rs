//! `make` — a dependency-driven rebuild tool, **excluded from the
//! evaluation** exactly as in the paper: *"We did not use the benchmark
//! make in the suite because we were not able to expose any errors using
//! the provided test cases."*
//!
//! The program is fully functional (topological rebuild over a dependency
//! edge list with timestamps) and ships with a candidate mutation, but no
//! input in its provided test suite exposes it — the mutated guard's
//! outcome never differs on those inputs. The corpus keeps it around to
//! document the exclusion and to exercise the "fault not exposable"
//! path of the tooling.

use crate::{Benchmark, Fault, FaultKind};

/// Fixed source of the make benchmark.
///
/// Input layout:
/// `[ntargets, {mtime}… , nedges, {from, to}… , touched]` — targets are
/// numbered, an edge `from → to` means `to` depends on `from`, and
/// `touched` marks one target as freshly modified. Output: one rebuild
/// flag per target (in index order), then the rebuild count.
pub const SRC: &str = r#"
// make: propagate staleness through a dependency graph.
global mtime = [0; 16];
global stale = [0; 16];
global dep_from = [0; 32];
global dep_to = [0; 32];
global ntargets = 0;
global nedges = 0;
global rebuilds = 0;

// Read target timestamps.
fn read_targets() {
    ntargets = input();
    let i = 0;
    while i < ntargets {
        mtime[i] = input();
        i = i + 1;
    }
}

// Read the dependency edge list.
fn read_edges() {
    nedges = input();
    let i = 0;
    while i < nedges {
        dep_from[i] = input();
        dep_to[i] = input();
        i = i + 1;
    }
}

// One propagation sweep; returns 1 when anything changed.
fn propagate_once() {
    let changed = 0;
    let i = 0;
    while i < nedges {
        let f = dep_from[i];
        let t = dep_to[i];
        if stale[f] == 1 {
            if stale[t] == 0 {
                stale[t] = 1;
                changed = 1;
            }
        }
        i = i + 1;
    }
    return changed;
}

// Fixpoint over the (acyclic) dependency graph.
fn propagate() {
    let rounds = 0;
    while rounds < ntargets {
        if propagate_once() == 0 {
            break;
        }
        rounds = rounds + 1;
    }
}

fn main() {
    read_targets();
    read_edges();
    let touched = input();
    if touched >= 0 {
        if touched < ntargets {
            stale[touched] = 1;
            mtime[touched] = mtime[touched] + 1;
        }
    }
    propagate();
    let k = 0;
    while k < ntargets {
        print(stale[k]);
        if stale[k] == 1 {
            rebuilds = rebuilds + 1;
        }
        k = k + 1;
    }
    print(rebuilds);
}
"#;

/// The make benchmark: present, documented, and excluded — its provided
/// test suite does not expose the candidate mutation.
pub fn benchmark() -> Benchmark {
    Benchmark {
        name: "make",
        description: "a dependency-driven rebuild tool (excluded from the evaluation, as in \
                      the paper: its test suite exposes no error)",
        fixed_src: SRC,
        faults: vec![Fault {
            id: "V1-F1",
            kind: FaultKind::Seeded,
            description: "the bounds guard is widened, which only matters for target \
                          indices the provided test cases never use",
            needle: "if touched < ntargets {",
            replacement: "if touched < ntargets + 1 {",
            // No input in the provided suite exposes the mutation: every
            // test touches a valid target (or -1 for "nothing touched"),
            // so the widened bound never changes the outcome.
            failing_input: vec![],
            passing_inputs: vec![
                // 3 targets, chain 0 -> 1 -> 2, touch 0: everything rebuilds.
                vec![3, 10, 20, 30, 2, 0, 1, 1, 2, 0],
                // Touch a leaf: only it rebuilds.
                vec![3, 10, 20, 30, 2, 0, 1, 1, 2, 2],
                // Diamond: 0 -> {1, 2} -> 3.
                vec![4, 1, 1, 1, 1, 4, 0, 1, 0, 2, 1, 3, 2, 3, 0],
                // Nothing touched.
                vec![2, 5, 6, 1, 0, 1, -1],
            ],
        }],
    }
}
