//! `grep` — fixed-string search over a set of lines.
//!
//! True to the paper's characterization, this program prints *nothing*
//! until it terminates: all per-line hit flags and counters come out at
//! the very end, so a corrupted value pollutes a long stretch of program
//! state before it is observed, making this the hardest corpus subject
//! (largest OS, most verifications — like the paper's grep V4-F2).

use crate::{Benchmark, Fault, FaultKind};

/// Fixed source of the grep benchmark.
///
/// Input layout:
/// `[ignore_case, invert, patlen, pat .. , nlines, {len, chars ..} ..]`.
/// Output: one hit flag per line, then the match count and byte total.
pub const SRC: &str = r#"
// grep: print which lines contain the pattern.
global pattern = [0; 16];
global patlen = 0;
global linebuf = [0; 64];
global linelen = 0;
global ignore_case = 0;
global invert = 0;
global match_count = 0;
global line_hits = [0; 32];
global nlines = 0;
global total_bytes = 0;

// Case folding, enabled by -i.
fn to_lower(c) {
    if ignore_case == 1 {
        if c >= 65 {
            if c <= 90 {
                c = c + 32;
            }
        }
    }
    return c;
}

// The pattern is folded once up front.
fn read_pattern() {
    patlen = input();
    let i = 0;
    while i < patlen {
        pattern[i] = to_lower(input());
        i = i + 1;
    }
}

// Read one subject line into the line buffer.
fn read_line() {
    linelen = input();
    let i = 0;
    while i < linelen {
        linebuf[i] = input();
        total_bytes = total_bytes + 1;
        i = i + 1;
    }
}

// Does the pattern match at position pos of the current line?
fn match_at(pos) {
    let j = 0;
    while j < patlen {
        let c = to_lower(linebuf[pos + j]);
        if c != pattern[j] {
            return 0;
        }
        j = j + 1;
    }
    return 1;
}

// First-match search over the current line.
fn search_line() {
    let pos = 0;
    let found = 0;
    while pos + patlen <= linelen {
        if match_at(pos) == 1 {
            found = 1;
            break;
        }
        pos = pos + 1;
    }
    return found;
}

fn main() {
    ignore_case = input();
    invert = input();
    read_pattern();
    nlines = input();
    let i = 0;
    while i < nlines {
        read_line();
        let found = search_line();
        let hit = found;
        if invert == 1 {
            hit = 1 - found;
        }
        if hit == 1 {
            line_hits[i] = 1;
            match_count = match_count + 1;
        }
        i = i + 1;
    }
    // Like grep piping its results: nothing is visible until the end.
    let k = 0;
    while k < nlines {
        print(line_hits[k]);
        k = k + 1;
    }
    print(match_count);
    print(total_bytes);
}
"#;

/// The grep benchmark with the paper's V4-F2 error.
pub fn benchmark() -> Benchmark {
    // Pattern "ab" = 97 98; line "xABy" = 120 65 66 121; line "zz" = 122 122.
    Benchmark {
        name: "grep",
        description: "a fixed-string matcher printing per-line hits at exit",
        fixed_src: SRC,
        faults: vec![Fault {
            id: "V4-F2",
            kind: FaultKind::Seeded,
            description: "the -i option is dropped, so subject characters are \
                          never folded and case-insensitive matches are missed; \
                          the stale hit flags surface only at exit",
            needle: "ignore_case = input();",
            replacement: "ignore_case = input() * 0;",
            // -i, pattern "ab", 3 lines: "xABy" (should match), "zz",
            // "ab" (matches regardless).
            failing_input: vec![
                1, 0, 2, 97, 98, 3, 4, 120, 65, 66, 121, 2, 122, 122, 2, 97, 98,
            ],
            passing_inputs: vec![
                // No -i: identical behavior.
                vec![0, 0, 2, 97, 98, 2, 4, 120, 97, 98, 121, 2, 122, 122],
                // -i but all-lowercase subject: folding is a no-op.
                vec![1, 0, 2, 97, 98, 2, 3, 97, 98, 99, 2, 120, 121],
                // Inverted match without -i.
                vec![0, 1, 1, 122, 2, 2, 97, 98, 1, 122],
                // Empty pattern matches everywhere in both runs.
                vec![0, 0, 0, 2, 1, 97, 1, 98],
            ],
        }],
    }
}
