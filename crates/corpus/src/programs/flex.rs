//! `flex` — a table-driven scanner in the spirit of the fast lexical
//! analyzer generator.
//!
//! The program reads scanner options, initializes its class/kind tables,
//! and tokenizes a character stream, printing `(kind, char, line)` per
//! token as it goes (flex's "results are emitted gradually" character
//! from the paper's discussion) followed by summary statistics.
//!
//! Five faults mirror the paper's five flex errors; each corrupts a value
//! that feeds a guard, so a state update is *omitted* and a stale value
//! reaches the output.

use crate::{Benchmark, Fault, FaultKind};

/// Fixed source of the flex benchmark.
///
/// Input layout:
/// `[caseless, count_nl, count_ws, limit, n, char_0 .. char_{n-1}]`.
pub const SRC: &str = r#"
// flex: a table-driven single-character scanner.
global CLS_LETTER = 1;
global CLS_DIGIT = 2;
global CLS_SPACE = 3;
global CLS_NEWLINE = 4;
global CLS_OTHER = 5;
global KIND_IDENT = 100;
global KIND_NUMBER = 200;
global KIND_OP = 300;
global base = [0; 8];
global accept = [0; 8];
global caseless = 0;
global count_nl = 0;
global count_ws = 0;
global limit = 0;
global yylineno = 1;
global ntokens = 0;
global nident = 0;
global nnumber = 0;
global nop = 0;
global nskipped = 0;
global scan_ok = 9;

// Character class of an ASCII code.
fn classify(c) {
    if c >= 97 {
        if c <= 122 {
            return CLS_LETTER;
        }
    }
    if c >= 65 {
        if c <= 90 {
            return CLS_LETTER;
        }
    }
    if c >= 48 {
        if c <= 57 {
            return CLS_DIGIT;
        }
    }
    if c == 32 {
        return CLS_SPACE;
    }
    if c == 10 {
        return CLS_NEWLINE;
    }
    return CLS_OTHER;
}

// The generated tables: class -> token kind, class -> accepting.
fn init_tables() {
    base[CLS_LETTER] = KIND_IDENT;
    base[CLS_DIGIT] = KIND_NUMBER;
    base[CLS_OTHER] = KIND_OP;
    accept[CLS_LETTER] = 1;
    accept[CLS_DIGIT] = 1;
    accept[CLS_OTHER] = 1;
}

// Case folding, enabled by the caseless option.
fn fold_case(c) {
    if caseless == 1 {
        if c >= 65 {
            if c <= 90 {
                c = c + 32;
            }
        }
    }
    return c;
}

// Kind of an accepted token; 0 means "no rule".
fn token_kind(cl) {
    let kind = 0;
    if accept[cl] == 1 {
        kind = base[cl];
    }
    return kind;
}

// Per-kind statistics.
fn bump_counts(kind) {
    ntokens = ntokens + 1;
    if kind == KIND_IDENT {
        nident = nident + 1;
    }
    if kind == KIND_NUMBER {
        nnumber = nnumber + 1;
    }
    if kind == KIND_OP {
        nop = nop + 1;
    }
}

// The scanner loop: classify, fold, emit.
fn scan(n) {
    let i = 0;
    while i < n {
        let c = input();
        c = fold_case(c);
        let cl = classify(c);
        if cl == CLS_NEWLINE {
            if count_nl == 1 {
                yylineno = yylineno + 1;
            }
        }
        if cl == CLS_SPACE {
            if count_ws == 1 {
                nskipped = nskipped + 1;
            }
        }
        if cl <= 2 {
            let kind = token_kind(cl);
            print(kind);
            print(c);
            print(yylineno);
            bump_counts(kind);
        }
        if cl == CLS_OTHER {
            let kind = token_kind(cl);
            print(kind);
            print(c);
            print(yylineno);
            bump_counts(kind);
        }
        i = i + 1;
    }
    // Scanner-local summary: how much whitespace was skipped.
    print(nskipped);
}

fn main() {
    caseless = input();
    count_nl = input();
    count_ws = input();
    limit = input();
    init_tables();
    let n = input();
    scan(n);
    if ntokens <= limit {
        scan_ok = 0;
    }
    print(scan_ok);
    print(ntokens);
    print(nident);
    print(nnumber);
    print(nop);
    print(yylineno);
}
"#;

/// The flex benchmark with the paper's five error ids.
pub fn benchmark() -> Benchmark {
    // Text "ab\nC1 +" with options varies per fault below. Characters:
    // a=97 b=98 nl=10 C=67 1=49 space=32 +=43.
    Benchmark {
        name: "flex",
        description: "a table-driven scanner (fast lexical analyzer generator)",
        fixed_src: SRC,
        faults: vec![
            Fault {
                id: "V1-F9",
                kind: FaultKind::Seeded,
                description: "count_nl is computed wrong, so yylineno is never \
                              incremented and tokens report a stale line number",
                needle: "count_nl = input();",
                replacement: "count_nl = input() - 1;",
                // caseless=0 count_nl=1 count_ws=0 limit=99, text "a\nb"
                failing_input: vec![0, 1, 0, 99, 3, 97, 10, 98],
                passing_inputs: vec![
                    vec![0, 0, 0, 99, 3, 97, 10, 98],
                    vec![0, 1, 0, 99, 2, 97, 98],
                    vec![0, 0, 1, 99, 4, 97, 32, 98, 43],
                    vec![0, 0, 0, 99, 5, 49, 50, 97, 98, 43],
                ],
            },
            Fault {
                id: "V2-F14",
                kind: FaultKind::Seeded,
                description: "the caseless option is dropped, so uppercase input \
                              is not folded and the raw character is emitted",
                needle: "caseless = input();",
                replacement: "caseless = input() * 0;",
                // caseless=1, text "aB" — 'B' should fold to 'b'.
                failing_input: vec![1, 0, 0, 99, 2, 97, 66],
                passing_inputs: vec![
                    vec![0, 0, 0, 99, 2, 97, 66],
                    vec![1, 0, 0, 99, 2, 97, 98],
                    vec![0, 1, 0, 99, 3, 97, 10, 49],
                    vec![1, 0, 0, 99, 3, 120, 121, 122],
                ],
            },
            Fault {
                id: "V3-F10",
                kind: FaultKind::Seeded,
                description: "the digit rule's accept entry is wrong, so digits \
                              fall through with a stale kind of 0",
                needle: "accept[CLS_DIGIT] = 1;",
                replacement: "accept[CLS_DIGIT] = 2;",
                // text "a1"
                failing_input: vec![0, 0, 0, 99, 2, 97, 49],
                passing_inputs: vec![
                    vec![0, 0, 0, 99, 2, 97, 98],
                    vec![0, 0, 0, 99, 3, 97, 43, 98],
                    vec![0, 1, 0, 99, 3, 120, 10, 121],
                ],
            },
            Fault {
                id: "V4-F6",
                kind: FaultKind::Seeded,
                description: "the token limit is zeroed out, so the final status \
                              check is skipped and the sentinel status escapes",
                needle: "limit = input();",
                replacement: "limit = input() * 0;",
                // 2 tokens <= limit 5 in the fixed run → scan_ok = 0.
                failing_input: vec![0, 0, 0, 5, 2, 97, 98],
                passing_inputs: vec![
                    // ntokens 0: 0 <= limit in both runs.
                    vec![0, 0, 0, 7, 1, 32],
                    vec![0, 0, 1, 3, 2, 32, 10],
                    // ntokens above the limit in both runs.
                    vec![0, 0, 0, 1, 3, 97, 98, 99],
                ],
            },
            Fault {
                id: "V5-F6",
                kind: FaultKind::Seeded,
                description: "the whitespace-counting option is dropped, so \
                              nskipped stays stale in the statistics",
                needle: "count_ws = input();",
                replacement: "count_ws = input() - 1;",
                // count_ws=1, text "a b" (one space).
                failing_input: vec![0, 0, 1, 99, 3, 97, 32, 98],
                passing_inputs: vec![
                    vec![0, 0, 0, 99, 3, 97, 32, 98],
                    vec![0, 0, 1, 99, 2, 97, 98],
                    vec![1, 0, 0, 99, 2, 66, 49],
                ],
            },
        ],
    }
}
