//! `sed` — a tiny stream editor: character substitution with an arming
//! option, autoprint, and line statistics.
//!
//! Fault **V3-F2** models the paper's real sed error whose effect
//! propagates along *two* implicit dependence edges before it is
//! observable: the corrupted option leaves the editor un-armed
//! (first omission), and the un-armed guard in turn skips the
//! substitution (second omission) — the locator must expand twice,
//! exactly like the paper's sed V3-F2 (2 iterations, 2 strong edges).

use crate::{Benchmark, Fault, FaultKind};

/// Fixed source of the sed benchmark.
///
/// Input layout:
/// `[enable_subst, count_emitted, from_char, to_char, nlines,
///   {len, chars ..} ..]`.
/// Output: every edited line character by character (autoprint), then
/// the substitution count and emitted-line count.
pub const SRC: &str = r#"
// sed: s/from/to/ over every line, with autoprint.
global linebuf = [0; 64];
global linelen = 0;
global enable_subst = 0;
global count_emitted = 0;
global from_c = 0;
global to_c = 0;
global armed = 0;
global nsubs = 0;
global nemitted = 0;
global nlines = 0;
global total_bytes = 0;

// Read one subject line into the line buffer.
fn read_line() {
    linelen = input();
    let i = 0;
    while i < linelen {
        linebuf[i] = input();
        total_bytes = total_bytes + 1;
        i = i + 1;
    }
}

// Apply s/from_c/to_c/g to the current line.
fn subst_line() {
    let i = 0;
    while i < linelen {
        if linebuf[i] == from_c {
            linebuf[i] = to_c;
            nsubs = nsubs + 1;
        }
        i = i + 1;
    }
}

// Track how many lines were emitted, when the option is on.
fn note_emitted() {
    nemitted = nemitted + 1;
}

fn main() {
    enable_subst = input();
    count_emitted = input();
    from_c = input();
    to_c = input();
    // The substitute command arms the editor (stage one).
    if enable_subst == 1 {
        armed = 1;
    }
    nlines = input();
    let li = 0;
    while li < nlines {
        read_line();
        // An armed editor substitutes (stage two).
        if armed == 1 {
            subst_line();
        }
        if count_emitted == 1 {
            note_emitted();
        }
        // Autoprint the (possibly edited) line.
        let k = 0;
        while k < linelen {
            print(linebuf[k]);
            k = k + 1;
        }
        li = li + 1;
    }
    print(nsubs);
    print(nemitted);
    print(total_bytes);
}
"#;

/// The sed benchmark with the paper's V3-F2 (real) and V3-F3 (seeded)
/// errors.
pub fn benchmark() -> Benchmark {
    // Line "cat" = 99 97 116; s/a/o/: from 97 to 111.
    Benchmark {
        name: "sed",
        description: "a stream editor: per-character substitution with autoprint",
        fixed_src: SRC,
        faults: vec![
            Fault {
                id: "V3-F2",
                kind: FaultKind::Real,
                description: "the substitute command is mis-parsed, so the editor \
                              is never armed and the substitution is skipped — a \
                              two-stage omission (arming, then substituting)",
                needle: "enable_subst = input();",
                replacement: "enable_subst = input() - 1;",
                // s/a/o/ on "cat" and "dog": fixed prints "cot dog".
                failing_input: vec![1, 0, 97, 111, 2, 3, 99, 97, 116, 3, 100, 111, 103],
                passing_inputs: vec![
                    // No substitute command: both runs copy through.
                    vec![0, 0, 97, 111, 2, 3, 99, 97, 116, 2, 104, 105],
                    vec![0, 1, 120, 121, 1, 4, 97, 98, 99, 100],
                    // Substitution requested but no occurrence: faulty
                    // arming is skipped, yet output matches (nsubs 0).
                    vec![1, 0, 113, 111, 1, 3, 99, 111, 116],
                ],
            },
            Fault {
                id: "V3-F3",
                kind: FaultKind::Seeded,
                description: "the emitted-line-count option is dropped, so \
                              nemitted stays stale in the final statistics",
                needle: "count_emitted = input();",
                replacement: "count_emitted = input() * 0;",
                failing_input: vec![0, 1, 97, 111, 2, 2, 104, 105, 1, 122],
                passing_inputs: vec![
                    vec![0, 0, 97, 111, 1, 3, 99, 97, 116],
                    vec![1, 0, 97, 111, 1, 3, 99, 97, 116],
                    vec![0, 0, 120, 121, 2, 1, 97, 2, 98, 99],
                ],
            },
        ],
    }
}
