//! Random workload generation for the corpus programs.
//!
//! The paper's prototype "executes the binary with a large set of test
//! cases" to build value profiles and the union dependence graph. These
//! generators produce arbitrarily many well-formed inputs per benchmark
//! (seeded, hence reproducible), used by the stress tests and available
//! for profiling at any scale.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A reproducible workload generator for one benchmark's input format.
#[derive(Debug)]
pub struct WorkloadGen {
    rng: StdRng,
}

impl WorkloadGen {
    /// A generator with a fixed seed (same seed ⇒ same workloads).
    pub fn new(seed: u64) -> Self {
        WorkloadGen {
            rng: StdRng::seed_from_u64(seed),
        }
    }

    fn ascii_char(&mut self) -> i64 {
        // Letters (both cases), digits, space, newline, punctuation — the
        // classes the scanner benchmarks distinguish.
        match self.rng.gen_range(0..6) {
            0 => self.rng.gen_range(97..=122), // a-z
            1 => self.rng.gen_range(65..=90),  // A-Z
            2 => self.rng.gen_range(48..=57),  // 0-9
            3 => 32,                           // space
            4 => 10,                           // newline
            _ => self.rng.gen_range(33..=47),  // punctuation
        }
    }

    /// `flex` input: `[caseless, count_nl, count_ws, limit, n, chars…]`.
    pub fn flex(&mut self) -> Vec<i64> {
        let n = self.rng.gen_range(0..20);
        let mut v = vec![
            self.rng.gen_range(0..2),
            self.rng.gen_range(0..2),
            self.rng.gen_range(0..2),
            self.rng.gen_range(0..30),
            n,
        ];
        for _ in 0..n {
            v.push(self.ascii_char());
        }
        v
    }

    /// `grep` input:
    /// `[ignore_case, invert, patlen, pat…, nlines, {len, chars…}…]`.
    pub fn grep(&mut self) -> Vec<i64> {
        let patlen = self.rng.gen_range(0..5);
        let mut v = vec![self.rng.gen_range(0..2), self.rng.gen_range(0..2), patlen];
        for _ in 0..patlen {
            v.push(self.ascii_char());
        }
        let nlines = self.rng.gen_range(0..6);
        v.push(nlines);
        for _ in 0..nlines {
            let len = self.rng.gen_range(0..12);
            v.push(len);
            for _ in 0..len {
                v.push(self.ascii_char());
            }
        }
        v
    }

    /// `gzip` input: `[save_orig_name, level, n, bytes…]`, with runs so
    /// the run-length deflate has something to compress.
    pub fn gzip(&mut self) -> Vec<i64> {
        let n: i64 = self.rng.gen_range(0..24);
        let mut v = vec![self.rng.gen_range(0..2), self.rng.gen_range(1..10), n];
        let mut remaining = n;
        while remaining > 0 {
            let run = self.rng.gen_range(1..=remaining.min(5));
            let byte = self.rng.gen_range(0..256);
            for _ in 0..run {
                v.push(byte);
            }
            remaining -= run;
        }
        v
    }

    /// `sed` input:
    /// `[enable_subst, count_emitted, from, to, nlines, {len, chars…}…]`.
    pub fn sed(&mut self) -> Vec<i64> {
        let mut v = vec![
            self.rng.gen_range(0..2),
            self.rng.gen_range(0..2),
            self.ascii_char(),
            self.ascii_char(),
        ];
        let nlines = self.rng.gen_range(0..5);
        v.push(nlines);
        for _ in 0..nlines {
            let len = self.rng.gen_range(0..10);
            v.push(len);
            for _ in 0..len {
                v.push(self.ascii_char());
            }
        }
        v
    }

    /// A workload for the benchmark named `bench` (`flex`, `grep`,
    /// `gzip`, or `sed`).
    ///
    /// # Panics
    ///
    /// Panics on an unknown benchmark name.
    pub fn for_benchmark(&mut self, bench: &str) -> Vec<i64> {
        match bench {
            "flex" => self.flex(),
            "grep" => self.grep(),
            "gzip" => self.gzip(),
            "sed" => self.sed(),
            other => panic!("no workload generator for `{other}`"),
        }
    }

    /// A workload with roughly `payload` units of work (characters for
    /// flex/gzip, lines for grep/sed), clamped to each program's buffer
    /// capacities where the format is bounded.
    ///
    /// # Panics
    ///
    /// Panics on an unknown benchmark name.
    pub fn sized_for_benchmark(&mut self, bench: &str, payload: usize) -> Vec<i64> {
        match bench {
            "flex" => {
                // The scanner streams characters: no upper bound.
                let n = payload as i64;
                let mut v = vec![
                    self.rng.gen_range(0..2),
                    self.rng.gen_range(0..2),
                    self.rng.gen_range(0..2),
                    self.rng.gen_range(0..1000),
                    n,
                ];
                for _ in 0..n {
                    v.push(self.ascii_char());
                }
                v
            }
            "grep" => {
                // line_hits holds 32 lines; linebuf holds 64 chars.
                let nlines = payload.min(32) as i64;
                let patlen = self.rng.gen_range(1..4);
                let mut v = vec![self.rng.gen_range(0..2), self.rng.gen_range(0..2), patlen];
                for _ in 0..patlen {
                    v.push(self.ascii_char());
                }
                v.push(nlines);
                for _ in 0..nlines {
                    let len = self.rng.gen_range(0..=60);
                    v.push(len);
                    for _ in 0..len {
                        v.push(self.ascii_char());
                    }
                }
                v
            }
            "gzip" => {
                // inbuf holds 64 bytes.
                let n = payload.min(64) as i64;
                let mut v = vec![self.rng.gen_range(0..2), self.rng.gen_range(1..10), n];
                let mut remaining = n;
                while remaining > 0 {
                    let run = self.rng.gen_range(1..=remaining.min(5));
                    let byte = self.rng.gen_range(0..256);
                    for _ in 0..run {
                        v.push(byte);
                    }
                    remaining -= run;
                }
                v
            }
            "sed" => {
                // linebuf is reused per line: lines are unbounded.
                let nlines = payload as i64;
                let mut v = vec![
                    self.rng.gen_range(0..2),
                    self.rng.gen_range(0..2),
                    self.ascii_char(),
                    self.ascii_char(),
                    nlines,
                ];
                for _ in 0..nlines {
                    let len = self.rng.gen_range(0..=60);
                    v.push(len);
                    for _ in 0..len {
                        v.push(self.ascii_char());
                    }
                }
                v
            }
            other => panic!("no workload generator for `{other}`"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generation_is_reproducible() {
        let mut a = WorkloadGen::new(42);
        let mut b = WorkloadGen::new(42);
        for bench in ["flex", "grep", "gzip", "sed"] {
            assert_eq!(a.for_benchmark(bench), b.for_benchmark(bench));
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = WorkloadGen::new(1);
        let mut b = WorkloadGen::new(2);
        let same = (0..8).all(|_| a.flex() == b.flex());
        assert!(!same, "seeds should produce different workloads");
    }

    #[test]
    fn gzip_workloads_declare_their_length() {
        let mut g = WorkloadGen::new(7);
        for _ in 0..50 {
            let w = g.gzip();
            let n = w[2] as usize;
            assert_eq!(w.len(), 3 + n, "payload length matches header: {w:?}");
        }
    }

    #[test]
    #[should_panic(expected = "no workload generator")]
    fn unknown_benchmark_panics() {
        WorkloadGen::new(0).for_benchmark("make");
    }

    #[test]
    fn sized_workloads_respect_buffer_capacities() {
        let mut g = WorkloadGen::new(3);
        let flex = g.sized_for_benchmark("flex", 500);
        assert_eq!(flex[4], 500, "flex streams without bound");
        let grep = g.sized_for_benchmark("grep", 500);
        let patlen = grep[2] as usize;
        assert_eq!(grep[3 + patlen], 32, "grep clamps to line_hits capacity");
        let gzip = g.sized_for_benchmark("gzip", 500);
        assert_eq!(gzip[2], 64, "gzip clamps to inbuf capacity");
        let sed = g.sized_for_benchmark("sed", 200);
        assert_eq!(sed[4], 200, "sed reuses its line buffer");
    }
}
