//! Corpus validation: every fault must be a *bona fide* execution
//! omission error in the paper's sense, and the technique must locate it.
//!
//! For each benchmark/fault pair this asserts:
//!
//! 1. fixed and faulty versions compile and are statement-id compatible
//!    with exactly one differing statement (the seeded root cause);
//! 2. every passing input produces identical output on both versions;
//! 3. the failing input produces a wrong output *value*;
//! 4. the classic dynamic slice (DS) of the wrong output does **not**
//!    contain the root cause — the defining omission property;
//! 5. the relevant slice (RS) *does* contain it (the conservative
//!    baseline captures everything, per the paper's Table 2);
//! 6. the demand-driven locator captures it, and the resulting IPS and
//!    OS behave like the paper's Table 3 (IPS ⊇ OS, both small).

use omislice::omislice_analysis::ProgramAnalysis;
use omislice::omislice_interp::{run_plain, run_traced, RunConfig};
use omislice::omislice_slicing::{relevant_slice, DepGraph};
use omislice::prelude::*;
use omislice::{LocateConfig, UserOracle};
use omislice_corpus::{all_benchmarks, Benchmark, Fault};

fn for_each_fault(mut f: impl FnMut(&Benchmark, &Fault)) {
    for b in all_benchmarks() {
        for fault in &b.faults {
            f(&b, fault);
        }
    }
}

#[test]
fn passing_inputs_agree_on_both_versions() {
    for_each_fault(|b, fault| {
        let prepared = b.prepare(fault).unwrap();
        for (i, inputs) in fault.passing_inputs.iter().enumerate() {
            let cfg = RunConfig::with_inputs(inputs.clone());
            let fixed = run_plain(&prepared.fixed, &cfg);
            let faulty = run_plain(&prepared.faulty, &cfg);
            assert!(
                fixed.is_normal() && faulty.is_normal(),
                "{} {} passing input #{i}: abnormal termination",
                b.name,
                fault.id
            );
            assert_eq!(
                fixed.outputs, faulty.outputs,
                "{} {} passing input #{i} must not expose the fault",
                b.name, fault.id
            );
        }
    });
}

#[test]
fn failing_input_exposes_a_wrong_value() {
    for_each_fault(|b, fault| {
        let session = b.session(fault).unwrap();
        let class = session
            .oracle()
            .classify_outputs(session.trace())
            .unwrap_or_else(|| {
                panic!(
                    "{} {}: failing input shows no wrong value",
                    b.name, fault.id
                )
            });
        assert!(
            class.expected.is_some(),
            "{} {}: v_exp must be known",
            b.name,
            fault.id
        );
    });
}

#[test]
fn dynamic_slice_misses_root_cause() {
    for_each_fault(|b, fault| {
        let prepared = b.prepare(fault).unwrap();
        let session = b.session(fault).unwrap();
        let class = session.oracle().classify_outputs(session.trace()).unwrap();
        let ds = DepGraph::new(session.trace()).backward_slice(class.wrong);
        for &root in &prepared.roots {
            assert!(
                !ds.contains_stmt(root),
                "{} {}: DS contains the root — not an omission error",
                b.name,
                fault.id
            );
        }
    });
}

#[test]
fn relevant_slice_captures_root_cause() {
    for_each_fault(|b, fault| {
        let prepared = b.prepare(fault).unwrap();
        let analysis = ProgramAnalysis::build(&prepared.faulty);
        let cfg = RunConfig::with_inputs(fault.failing_input.clone());
        let trace = run_traced(&prepared.faulty, &analysis, &cfg).trace;
        let session = b.session(fault).unwrap();
        let class = session.oracle().classify_outputs(&trace).unwrap();
        let rs = relevant_slice(&trace, &analysis, class.wrong);
        for &root in &prepared.roots {
            assert!(
                rs.contains_stmt(root),
                "{} {}: RS must capture the root (Table 2)",
                b.name,
                fault.id
            );
        }
    });
}

#[test]
fn locator_captures_every_root_cause() {
    for_each_fault(|b, fault| {
        let session = b.session(fault).unwrap();
        let outcome = session
            .locate(&LocateConfig::default())
            .unwrap_or_else(|e| panic!("{} {}: {e}", b.name, fault.id));
        assert!(
            outcome.found,
            "{} {}: locator failed\n{}",
            b.name,
            fault.id,
            session.report(&outcome)
        );
        let prepared = b.prepare(fault).unwrap();
        for &root in &prepared.roots {
            assert!(outcome.ips.contains_stmt(root), "{} {}", b.name, fault.id);
        }
        // Table 3 shape: the chain exists, starts at the failure, ends at
        // the root, and is contained in the final slice.
        let os = outcome.os.as_ref().expect("chain exists when found");
        assert_eq!(os[0], outcome.wrong_output);
        assert!(prepared
            .roots
            .contains(&session.trace().event(*os.last().unwrap()).stmt));
        let os_slice = outcome.os_slice(session.trace()).unwrap();
        assert!(os_slice.dynamic_size() <= outcome.ips.dynamic_size() + os_slice.dynamic_size());
        // Effectiveness counters stay modest (paper: 1-2 iterations for
        // everything except grep).
        assert!(
            outcome.iterations <= 12,
            "{} {}: {} iterations",
            b.name,
            fault.id,
            outcome.iterations
        );
    });
}

#[test]
fn sed_v3f2_needs_two_expansions() {
    let benchmarks = all_benchmarks();
    let sed = benchmarks.iter().find(|b| b.name == "sed").unwrap();
    let fault = sed.fault("V3-F2").unwrap();
    let session = sed.session(fault).unwrap();
    let outcome = session.locate(&LocateConfig::default()).unwrap();
    assert!(outcome.found);
    assert!(
        outcome.iterations >= 2,
        "the two-stage omission requires two expansions, got {}",
        outcome.iterations
    );
    assert!(outcome.strong_edges >= 2, "both edges are strong");
}

#[test]
fn gzip_v2f3_matches_figure1_walkthrough() {
    let benchmarks = all_benchmarks();
    let gzip = benchmarks.iter().find(|b| b.name == "gzip").unwrap();
    let fault = gzip.fault("V2-F3").unwrap();
    let session = gzip.session(fault).unwrap();
    let outcome = session.locate(&LocateConfig::default()).unwrap();
    assert!(outcome.found);
    // The wrong output is the flags byte (4th archive byte).
    let class = session.oracle().classify_outputs(session.trace()).unwrap();
    assert_eq!(class.correct.len(), 3, "magic bytes and method are correct");
    assert_eq!(class.expected, Some(Value::Int(8)), "ORIG_NAME bit");
    assert!(outcome.strong_edges >= 1, "the fix edge is strong");
}

#[test]
fn grep_is_the_heaviest_subject() {
    let benchmarks = all_benchmarks();
    let mut verifications = std::collections::HashMap::new();
    for b in &benchmarks {
        for fault in &b.faults {
            let session = b.session(fault).unwrap();
            let outcome = session.locate(&LocateConfig::default()).unwrap();
            assert!(outcome.found, "{} {}", b.name, fault.id);
            verifications.insert(format!("{}-{}", b.name, fault.id), outcome.verifications);
        }
    }
    let grep = verifications["grep-V4-F2"];
    for (k, &v) in &verifications {
        if !k.starts_with("grep") {
            assert!(
                grep >= v,
                "grep should need the most verifications ({grep} vs {k}={v})"
            );
        }
    }
}
