//! Stress tests: the corpus programs under randomized workloads.
//!
//! The generators in [`omislice_corpus::workload`] play the role of the
//! paper's "large set of test cases". Properties:
//!
//! * fixed programs terminate normally on every generated workload;
//! * plain and traced execution agree on every workload;
//! * faulty variants never crash — they only compute wrong values (the
//!   corpus contains logic errors, not memory errors);
//! * value profiles built from random workloads keep the locator working.

use omislice::omislice_analysis::ProgramAnalysis;
use omislice::omislice_interp::{run_plain, run_traced, RunConfig};
use omislice::omislice_lang::compile;
use omislice::omislice_slicing::ValueProfile;
use omislice::{locate_fault, GroundTruthOracle, LocateConfig};
use omislice_corpus::{all_benchmarks, WorkloadGen};

const WORKLOADS_PER_BENCH: usize = 40;

#[test]
fn fixed_programs_survive_random_workloads() {
    for b in all_benchmarks() {
        let program = compile(b.fixed_src).unwrap();
        let analysis = ProgramAnalysis::build(&program);
        let mut gen = WorkloadGen::new(0xC0FFEE);
        for i in 0..WORKLOADS_PER_BENCH {
            let inputs = gen.for_benchmark(b.name);
            let config = RunConfig::with_inputs(inputs.clone());
            let plain = run_plain(&program, &config);
            assert!(
                plain.is_normal(),
                "{} workload #{i} {:?}: {:?}",
                b.name,
                inputs,
                plain.termination
            );
            let traced = run_traced(&program, &analysis, &config);
            assert_eq!(
                plain.outputs,
                traced.trace.output_values(),
                "{} workload #{i}",
                b.name
            );
        }
    }
}

#[test]
fn faulty_variants_never_crash_on_random_workloads() {
    for b in all_benchmarks() {
        for fault in &b.faults {
            let prepared = b.prepare(fault).unwrap();
            let mut gen = WorkloadGen::new(0xBADF00D);
            for i in 0..WORKLOADS_PER_BENCH {
                let inputs = gen.for_benchmark(b.name);
                let run = run_plain(&prepared.faulty, &RunConfig::with_inputs(inputs));
                assert!(
                    run.is_normal(),
                    "{} {} workload #{i}: {:?}",
                    b.name,
                    fault.id,
                    run.termination
                );
            }
        }
    }
}

#[test]
fn locator_works_with_random_value_profiles() {
    // Replace the curated passing-input profiles with purely random
    // workloads: the locator must still capture every root cause (the
    // profile only affects ranking quality, not correctness).
    for b in all_benchmarks() {
        for fault in &b.faults {
            let prepared = b.prepare(fault).unwrap();
            let analysis = ProgramAnalysis::build(&prepared.faulty);
            let config = RunConfig::with_inputs(fault.failing_input.clone());
            let trace = run_traced(&prepared.faulty, &analysis, &config).trace;

            let mut profile = ValueProfile::new();
            profile.add_trace(&trace);
            let mut gen = WorkloadGen::new(7);
            for _ in 0..10 {
                let inputs = gen.for_benchmark(b.name);
                let cfg = RunConfig::with_inputs(inputs);
                profile.add_trace(&run_traced(&prepared.faulty, &analysis, &cfg).trace);
            }

            let fixed_analysis = ProgramAnalysis::build(&prepared.fixed);
            let oracle = GroundTruthOracle::new(
                &prepared.fixed,
                &fixed_analysis,
                &config,
                prepared.roots.iter().copied(),
            );
            let outcome = locate_fault(
                &prepared.faulty,
                &analysis,
                &config,
                &trace,
                &profile,
                &oracle,
                &LocateConfig::default(),
            )
            .unwrap();
            assert!(outcome.found, "{} {}", b.name, fault.id);
        }
    }
}

#[test]
fn workloads_are_deterministic_per_seed() {
    for b in all_benchmarks() {
        let mut g1 = WorkloadGen::new(11);
        let mut g2 = WorkloadGen::new(11);
        for _ in 0..5 {
            assert_eq!(g1.for_benchmark(b.name), g2.for_benchmark(b.name));
        }
    }
}
