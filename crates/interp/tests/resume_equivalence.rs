//! Property: resuming a switched execution from a checkpoint is
//! indistinguishable from running the switched execution from scratch —
//! identical event sequence, outputs, termination, and switched
//! instance — over randomly generated structured programs and randomly
//! chosen switch points.
//!
//! This is the contract the verification engine's checkpoint-resume fast
//! path relies on; any divergence here would silently corrupt verdicts.

use omislice_analysis::ProgramAnalysis;
use omislice_interp::{
    resume_switched, run_traced, run_traced_with_checkpoints, RunConfig, SwitchSpec,
};
use omislice_lang::{compile, Program};
use proptest::prelude::*;

// --- tiny structured-program generator ----------------------------------

#[derive(Debug, Clone)]
enum S {
    Assign(usize, usize, i8),
    Print(usize),
    Call(usize),
    If(usize, Vec<S>, Vec<S>),
    While(u8, Vec<S>),
    Break,
}

const VARS: [&str; 3] = ["a", "b", "c"];

fn stmt_strategy() -> impl Strategy<Value = S> {
    let leaf = prop_oneof![
        ((0usize..3), (0usize..3), any::<i8>()).prop_map(|(d, u, k)| S::Assign(d, u, k)),
        (0usize..3).prop_map(S::Print),
        (0usize..3).prop_map(S::Call),
    ];
    leaf.prop_recursive(3, 20, 4, |inner| {
        prop_oneof![
            (
                0usize..3,
                prop::collection::vec(inner.clone(), 1..4),
                prop::collection::vec(inner.clone(), 0..3),
            )
                .prop_map(|(v, t, e)| S::If(v, t, e)),
            ((1u8..4), prop::collection::vec(inner.clone(), 1..4))
                .prop_map(|(k, b)| S::While(k, b)),
            Just(S::Break),
        ]
    })
}

fn render(stmts: &[S], out: &mut String, counter: &mut usize, in_loop: bool) {
    for s in stmts {
        match s {
            S::Assign(d, u, k) => {
                out.push_str(&format!("{} = {} + {};\n", VARS[*d], VARS[*u], k));
            }
            S::Print(v) => out.push_str(&format!("print({});\n", VARS[*v])),
            S::Call(v) => out.push_str(&format!("{0} = bump({0});\n", VARS[*v])),
            S::If(v, t, e) => {
                out.push_str(&format!("if {} > 0 {{\n", VARS[*v]));
                render(t, out, counter, in_loop);
                if e.is_empty() {
                    out.push_str("}\n");
                } else {
                    out.push_str("} else {\n");
                    render(e, out, counter, in_loop);
                    out.push_str("}\n");
                }
            }
            S::While(k, b) => {
                let c = *counter;
                *counter += 1;
                out.push_str(&format!("let w{c} = 0;\nwhile w{c} < {k} {{\n"));
                render(b, out, counter, true);
                out.push_str(&format!("w{c} = w{c} + 1;\n}}\n"));
            }
            S::Break => {
                if in_loop {
                    out.push_str("break;\n");
                }
            }
        }
    }
}

fn program_strategy() -> impl Strategy<Value = Program> {
    prop::collection::vec(stmt_strategy(), 1..8).prop_map(|stmts| {
        let mut body = String::new();
        let mut counter = 0;
        render(&stmts, &mut body, &mut counter, false);
        let src = format!(
            "global a = 1; global b = 2; global c = 3;\n\
             fn bump(x) {{ if x > 5 {{ return x - 1; }} return x + 1; }}\n\
             fn main() {{\n{body}}}\n"
        );
        compile(&src).unwrap_or_else(|e| panic!("generated program invalid: {e}\n{src}"))
    })
}

// --- the property --------------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn resumed_switched_run_equals_from_scratch(
        program in program_strategy(),
        pick in any::<prop::sample::Index>(),
    ) {
        let analysis = ProgramAnalysis::build(&program);
        let config = RunConfig::with_inputs(vec![]);
        let base = run_traced(&program, &analysis, &config);
        prop_assert!(base.trace.termination().is_normal());

        let preds: Vec<_> = base
            .trace
            .insts()
            .filter(|&i| base.trace.event(i).is_predicate())
            .collect();
        if preds.is_empty() {
            return Ok(());
        }
        let p = preds[pick.index(preds.len())];
        let spec = SwitchSpec::new(
            base.trace.event(p).stmt,
            base.trace.occurrence_index(p) as u32,
        );
        let switched_cfg = config.switched(spec);

        let scratch = run_traced(&program, &analysis, &switched_cfg);

        let (_, checkpoints) =
            run_traced_with_checkpoints(&program, &analysis, &config, &[spec]);
        let cp = checkpoints.iter().find(|cp| cp.spec == spec);
        // The switch point was reached in the base run, so the
        // instrumented re-run must capture it.
        prop_assert!(cp.is_some(), "no checkpoint captured for {spec:?}");
        let cp = cp.unwrap();
        if !cp.is_resumable() {
            return Ok(());
        }

        let Ok(resumed) = resume_switched(&program, &analysis, &switched_cfg, cp, &base.trace)
        else {
            return Err(TestCaseError::fail(format!(
                "resumable checkpoint {spec:?} failed to resume"
            )));
        };
        prop_assert_eq!(resumed.switched, scratch.switched);
        prop_assert_eq!(resumed.trace.events_vec(), scratch.trace.events_vec());
        prop_assert_eq!(resumed.trace.outputs(), scratch.trace.outputs());
        prop_assert_eq!(resumed.trace.termination(), scratch.trace.termination());
        prop_assert_eq!(resumed.input_underflows, scratch.input_underflows);
    }
}
