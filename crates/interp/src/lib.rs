//! # omislice-interp
//!
//! Deterministic interpreters for the mini-language — the substrate that
//! replaces the paper's valgrind-2.2.0 instrumentation layer:
//!
//! * [`run_traced`] executes a program while constructing the full dynamic
//!   dependence graph (data dependences, dynamic control dependences,
//!   region nesting, timestamps) — the paper's "Graph" configuration;
//! * [`run_plain`] executes without any tracking — the paper's "Plain"
//!   configuration, also used for cheap output-only re-executions;
//! * both support **predicate switching** ([`SwitchSpec`]): forcing one
//!   dynamic instance of a chosen predicate to take the opposite branch,
//!   the mechanism behind implicit-dependence verification;
//! * both enforce a step budget, replacing the paper's wall-clock timer
//!   for switched runs that no longer terminate.
//!
//! Executions are fully determined by `(program, inputs, switch)`, so the
//! re-execution in Definition 2 ("reexecute with the same input, switch
//! `p`") reproduces the original run exactly up to the switch point.

pub mod plain;
pub mod snapshot;
pub mod store;
pub mod tracer;

pub use plain::{run_plain, PlainRun};
pub use snapshot::{
    resume_switched, resume_switched_capturing, run_traced_with_checkpoints, Checkpoint,
    ResumeError, ResumeMode,
};
pub use tracer::{run_traced, TracedRun, MAX_CALL_DEPTH};

use omislice_lang::StmtId;
use omislice_trace::CrashKind;

/// Selects one dynamic predicate instance whose branch outcome is negated.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct SwitchSpec {
    /// The predicate statement to switch.
    pub pred: StmtId,
    /// Which dynamic occurrence of `pred` to switch (0-based).
    pub occurrence: u32,
}

impl SwitchSpec {
    /// Switch the `occurrence`-th execution of `pred`.
    pub fn new(pred: StmtId, occurrence: u32) -> Self {
        SwitchSpec { pred, occurrence }
    }
}

/// Selects one dynamic assignment instance whose computed value is
/// replaced — *value perturbation*, the stronger (and costlier)
/// alternative to predicate switching the paper proposes in §5 for the
/// nested-predicate soundness gap.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct OverrideSpec {
    /// The `let`/assignment statement to override.
    pub stmt: StmtId,
    /// Which dynamic occurrence of `stmt` to override (0-based).
    pub occurrence: u32,
    /// The value stored instead of the computed one.
    pub value: omislice_trace::Value,
}

impl OverrideSpec {
    /// Override the `occurrence`-th execution of `stmt` with `value`.
    pub fn new(stmt: StmtId, occurrence: u32, value: omislice_trace::Value) -> Self {
        OverrideSpec {
            stmt,
            occurrence,
            value,
        }
    }
}

/// What a deterministic fault injection does when it fires.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FaultAction {
    /// Stop the run with a structured runtime error of this class.
    Crash(CrashKind),
    /// Stop the run as if the step budget had just expired.
    ExhaustBudget,
    /// Raise a host-level panic (exercises the verifier's `catch_unwind`
    /// isolation boundary).
    Panic,
    /// Raise a panic *in the verifier harness itself*, outside the
    /// per-run execution — before the switched run for the planned
    /// statement/occurrence even starts (exercises the per-candidate
    /// isolation boundary around the whole harness, not just the
    /// interpreter). Never fires inside an interpreter.
    PanicHarness,
    /// Emit a deliberately inconsistent [`Checkpoint`] when one is
    /// captured at the planned statement/occurrence (exercises checkpoint
    /// validation and the scratch fallback). Never perturbs the run
    /// itself.
    CorruptCheckpoint,
}

/// A deterministic fault injection: at the `occurrence`-th dynamic
/// instance of `stmt`, perform `action`.
///
/// Both interpreters honor the plan identically, and a resumed run
/// accounts for instances already in its replayed prefix, so fault
/// injection preserves the resumed-equals-scratch equivalence (a plan
/// that would fire *inside* a prefix makes the resume refuse instead,
/// forcing the byte-identical from-scratch run).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct FaultPlan {
    /// The statement whose dynamic instances are counted.
    pub stmt: StmtId,
    /// Which instance (0-based) triggers the action.
    pub occurrence: u32,
    /// What happens when it triggers.
    pub action: FaultAction,
}

impl FaultPlan {
    /// Builds a plan firing at the `occurrence`-th instance of `stmt`.
    pub fn new(stmt: StmtId, occurrence: u32, action: FaultAction) -> Self {
        FaultPlan {
            stmt,
            occurrence,
            action,
        }
    }

    /// Parses the CLI syntax `S<id>[:occ]=<action>`, e.g. `S4:2=panic`.
    ///
    /// Actions: `oob`, `missing-callee`, `div-zero`, `type`,
    /// `stack-overflow`, `uninit`, `budget`, `panic`, `panic-harness`,
    /// `corrupt-checkpoint`.
    ///
    /// # Errors
    ///
    /// Returns a human-readable message on malformed input.
    pub fn parse(spec: &str) -> Result<FaultPlan, String> {
        let (target, action) = spec
            .split_once('=')
            .ok_or_else(|| format!("bad fault plan `{spec}` (expected S<id>[:occ]=<action>)"))?;
        let (id, occ) = match target.split_once(':') {
            Some((a, b)) => (
                a,
                b.parse::<u32>()
                    .map_err(|_| format!("bad occurrence in fault plan `{spec}`"))?,
            ),
            None => (target, 0),
        };
        let id: u32 = id
            .trim_start_matches('S')
            .parse()
            .map_err(|_| format!("bad statement id in fault plan `{spec}`"))?;
        let action = match action {
            "oob" => FaultAction::Crash(CrashKind::OobIndex),
            "missing-callee" => FaultAction::Crash(CrashKind::MissingCallee),
            "div-zero" => FaultAction::Crash(CrashKind::DivByZero),
            "type" => FaultAction::Crash(CrashKind::TypeError),
            "stack-overflow" => FaultAction::Crash(CrashKind::StackOverflow),
            "uninit" => FaultAction::Crash(CrashKind::UninitRead),
            "budget" => FaultAction::ExhaustBudget,
            "panic" => FaultAction::Panic,
            "panic-harness" => FaultAction::PanicHarness,
            "corrupt-checkpoint" => FaultAction::CorruptCheckpoint,
            other => return Err(format!("unknown fault action `{other}`")),
        };
        Ok(FaultPlan::new(StmtId(id), occ, action))
    }
}

/// What an injected fault turns into at its firing site; each
/// interpreter maps this onto its own stop signal.
pub(crate) enum InjectedFault {
    Crash(CrashKind, String),
    Budget,
}

/// Shared fault-firing logic for both interpreters: counts instances of
/// the planned statement in `seen` and, at the planned occurrence,
/// produces the injected stop (or panics, for [`FaultAction::Panic`]).
/// `CorruptCheckpoint` and `PanicHarness` plans never fire here — the
/// former acts at checkpoint capture time, the latter in the verifier
/// harness; both leave execution untouched.
pub(crate) fn fault_fires(
    seen: &mut u32,
    plan: Option<FaultPlan>,
    stmt: StmtId,
) -> Option<InjectedFault> {
    let plan = plan?;
    if plan.stmt != stmt
        || matches!(
            plan.action,
            FaultAction::CorruptCheckpoint | FaultAction::PanicHarness
        )
    {
        return None;
    }
    let n = *seen;
    *seen += 1;
    if n != plan.occurrence {
        return None;
    }
    match plan.action {
        FaultAction::Crash(kind) => {
            Some(InjectedFault::Crash(kind, format!("injected {kind} fault")))
        }
        FaultAction::ExhaustBudget => Some(InjectedFault::Budget),
        FaultAction::Panic => panic!("injected panic at {stmt} (occurrence {n})"),
        FaultAction::PanicHarness | FaultAction::CorruptCheckpoint => None,
    }
}

/// The verifier's adaptive step-budget escalation schedule: switched
/// runs start at `initial` steps and retry with geometrically growing
/// budgets (`factor`) until they terminate within budget or the final
/// rung — the configured full step budget — also expires. `attempts`
/// bounds the total number of executions per switched run.
///
/// The schedule makes the paper's expired-timer rule cheap: a switched
/// run stuck in an infinite loop is cut off after `initial` steps
/// instead of the full budget, while legitimately long runs still get
/// the full budget at the last rung.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BudgetSchedule {
    /// Budget of the first attempt.
    pub initial: u64,
    /// Multiplier between consecutive attempts (≥ 2 effective).
    pub factor: u64,
    /// Maximum attempts, final rung included (≥ 1 effective).
    pub attempts: u32,
}

impl Default for BudgetSchedule {
    fn default() -> Self {
        BudgetSchedule {
            initial: 16_384,
            factor: 8,
            attempts: 3,
        }
    }
}

impl BudgetSchedule {
    /// A schedule with no escalation: one attempt at the full budget.
    pub fn disabled() -> Self {
        BudgetSchedule {
            initial: u64::MAX,
            factor: 2,
            attempts: 1,
        }
    }

    /// Parses the textual schedule form shared by the CLI `--budget`
    /// flag and serve request bodies: `init[:factor[:attempts]]`, or
    /// `off` to disable escalation.
    ///
    /// # Errors
    ///
    /// Returns a description of the malformed field.
    pub fn parse(text: &str) -> Result<Self, String> {
        if text == "off" {
            return Ok(BudgetSchedule::disabled());
        }
        let mut parts = text.split(':');
        let default = BudgetSchedule::default();
        let initial = parts
            .next()
            .unwrap_or_default()
            .parse::<u64>()
            .map_err(|_| {
                format!("bad budget `{text}` (expected init[:factor[:attempts]] or off)")
            })?;
        let factor = match parts.next() {
            Some(p) => p
                .parse::<u64>()
                .map_err(|_| format!("bad factor in budget `{text}`"))?,
            None => default.factor,
        };
        let attempts = match parts.next() {
            Some(p) => p
                .parse::<u32>()
                .map_err(|_| format!("bad attempts in budget `{text}`"))?,
            None => default.attempts,
        };
        if parts.next().is_some() {
            return Err(format!("bad budget `{text}` (too many fields)"));
        }
        Ok(BudgetSchedule {
            initial,
            factor,
            attempts,
        })
    }

    /// The strictly increasing budgets to try, ending at `cap` (the full
    /// configured step budget). Rungs at or above `cap` are dropped, so
    /// the final attempt always runs with exactly `cap`.
    pub fn budgets(&self, cap: u64) -> Vec<u64> {
        let mut out = Vec::new();
        let mut b = self.initial.max(1);
        while (out.len() as u32) + 1 < self.attempts.max(1) && b < cap {
            out.push(b);
            b = b.saturating_mul(self.factor.max(2));
        }
        out.push(cap);
        out
    }
}

/// Everything that determines an execution.
#[derive(Debug, Clone)]
pub struct RunConfig {
    /// Values returned by successive `input()` calls; an exhausted stream
    /// yields `0` (so switched runs that consume extra input keep going).
    /// Each such underflow is counted in the run result.
    pub inputs: Vec<i64>,
    /// Maximum number of statement instances before the run is cut off
    /// with [`Termination::BudgetExhausted`](omislice_trace::Termination).
    pub step_budget: u64,
    /// Optional predicate switch.
    pub switch: Option<SwitchSpec>,
    /// Optional value override (perturbation).
    pub value_override: Option<OverrideSpec>,
    /// Optional deterministic fault injection.
    pub fault: Option<FaultPlan>,
}

/// Default step budget: generous for corpus programs, small enough that a
/// switched run stuck in an infinite loop is cut off quickly.
pub const DEFAULT_STEP_BUDGET: u64 = 2_000_000;

impl Default for RunConfig {
    fn default() -> Self {
        RunConfig {
            inputs: Vec::new(),
            step_budget: DEFAULT_STEP_BUDGET,
            switch: None,
            value_override: None,
            fault: None,
        }
    }
}

impl RunConfig {
    /// A config with the given input stream and default budget.
    pub fn with_inputs(inputs: Vec<i64>) -> Self {
        RunConfig {
            inputs,
            ..RunConfig::default()
        }
    }

    /// Returns a copy of this config with `switch` applied — the
    /// re-execution of Definition 2. A fault plan carries over: injected
    /// faults must hit switched re-executions too.
    pub fn switched(&self, switch: SwitchSpec) -> Self {
        RunConfig {
            inputs: self.inputs.clone(),
            step_budget: self.step_budget,
            switch: Some(switch),
            value_override: None,
            fault: self.fault,
        }
    }

    /// Returns a copy of this config with a value override applied — a
    /// perturbation re-execution (§5).
    pub fn overridden(&self, value_override: OverrideSpec) -> Self {
        RunConfig {
            inputs: self.inputs.clone(),
            step_budget: self.step_budget,
            switch: None,
            value_override: Some(value_override),
            fault: self.fault,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use omislice_analysis::ProgramAnalysis;
    use omislice_lang::{compile, Program};
    use omislice_trace::{InstId, RegionTree, Termination, Value};

    fn setup(src: &str) -> (Program, ProgramAnalysis) {
        let p = compile(src).unwrap();
        let a = ProgramAnalysis::build(&p);
        (p, a)
    }

    fn traced(src: &str, inputs: Vec<i64>) -> TracedRun {
        let (p, a) = setup(src);
        run_traced(&p, &a, &RunConfig::with_inputs(inputs))
    }

    fn outs(run: &TracedRun) -> Vec<i64> {
        run.trace
            .output_values()
            .iter()
            .map(|v| v.as_int().unwrap())
            .collect()
    }

    #[test]
    fn arithmetic_and_output() {
        let run = traced(
            "fn main() { print(2 + 3 * 4); print(10 / 3); print(10 % 3); }",
            vec![],
        );
        assert_eq!(outs(&run), vec![14, 3, 1]);
        assert!(run.trace.termination().is_normal());
    }

    #[test]
    fn input_stream_and_exhaustion() {
        let run = traced(
            "fn main() { print(input()); print(input()); print(input()); }",
            vec![7, 8],
        );
        assert_eq!(outs(&run), vec![7, 8, 0]);
    }

    #[test]
    fn globals_locals_and_shadowing() {
        let run = traced(
            "global v = 10; fn main() { let v = 1; v = v + 1; print(v); } ",
            vec![],
        );
        assert_eq!(outs(&run), vec![2]);
    }

    #[test]
    fn while_loop_computes() {
        let run = traced(
            "fn main() { let i = 0; let s = 0; while i < 5 { s = s + i; i = i + 1; } print(s); }",
            vec![],
        );
        assert_eq!(outs(&run), vec![10]);
    }

    #[test]
    fn break_and_continue() {
        let run = traced(
            "fn main() { let i = 0; let s = 0; while true { i = i + 1; if i > 5 { break; } if i % 2 == 0 { continue; } s = s + i; } print(s); }",
            vec![],
        );
        assert_eq!(outs(&run), vec![9]); // 1 + 3 + 5
    }

    #[test]
    fn functions_params_and_returns() {
        let run = traced(
            "fn add(a, b) { return a + b; } fn main() { print(add(add(1, 2), 4)); }",
            vec![],
        );
        assert_eq!(outs(&run), vec![7]);
    }

    #[test]
    fn recursion() {
        let run = traced(
            "fn fib(n) { if n < 2 { return n; } return fib(n - 1) + fib(n - 2); } fn main() { print(fib(10)); }",
            vec![],
        );
        assert_eq!(outs(&run), vec![55]);
    }

    #[test]
    fn fall_off_function_returns_zero() {
        let run = traced("fn f() { } fn main() { print(f()); }", vec![]);
        assert_eq!(outs(&run), vec![0]);
    }

    #[test]
    fn arrays_read_write() {
        let run = traced(
            "global a = [0; 4]; fn main() { let i = 0; while i < 4 { a[i] = i * i; i = i + 1; } print(a[3]); }",
            vec![],
        );
        assert_eq!(outs(&run), vec![9]);
    }

    #[test]
    fn runtime_error_out_of_bounds() {
        let run = traced("global a = [0; 2]; fn main() { print(a[5]); }", vec![]);
        assert!(matches!(
            run.trace.termination(),
            Termination::RuntimeError(CrashKind::OobIndex, m) if m.contains("out of bounds")
        ));
        assert!(outs(&run).is_empty());
    }

    #[test]
    fn runtime_error_division_by_zero() {
        let run = traced("fn main() { print(1 / (1 - 1)); }", vec![]);
        assert!(matches!(
            run.trace.termination(),
            Termination::RuntimeError(CrashKind::DivByZero, m) if m.contains("division by zero")
        ));
    }

    #[test]
    fn runtime_error_uninitialized_local() {
        let run = traced("fn main() { if 1 > 2 { let x = 1; } print(x); }", vec![]);
        assert!(matches!(
            run.trace.termination(),
            Termination::RuntimeError(CrashKind::UninitRead, m) if m.contains("before initialization")
        ));
    }

    #[test]
    fn budget_cuts_infinite_loop() {
        let (p, a) = setup("fn main() { while true { } }");
        let cfg = RunConfig {
            step_budget: 100,
            ..RunConfig::default()
        };
        let run = run_traced(&p, &a, &cfg);
        assert_eq!(*run.trace.termination(), Termination::BudgetExhausted);
        assert_eq!(run.trace.len(), 100);
    }

    #[test]
    fn recursion_depth_limit() {
        let run = traced("fn f() { f(); } fn main() { f(); }", vec![]);
        assert!(matches!(
            run.trace.termination(),
            Termination::RuntimeError(CrashKind::StackOverflow, m) if m.contains("call depth")
        ));
    }

    #[test]
    fn data_dependences_flow_through_assignments() {
        // S0: let x = input(); S1: let y = x + 1; S2: print(y);
        let run = traced(
            "fn main() { let x = input(); let y = x + 1; print(y); }",
            vec![5],
        );
        let t = &run.trace;
        let print_inst = t.instances_of(omislice_lang::StmtId(2))[0];
        assert_eq!(t.event(print_inst).data_deps, vec![InstId(1)]);
        let y_inst = t.instances_of(omislice_lang::StmtId(1))[0];
        assert_eq!(t.event(y_inst).data_deps, vec![InstId(0)]);
        assert!(t.event(InstId(0)).data_deps.is_empty());
    }

    #[test]
    fn data_dependence_through_array_cells() {
        let run = traced(
            "global a = [0; 2]; fn main() { a[0] = 1; a[1] = 2; print(a[1]); }",
            vec![],
        );
        let t = &run.trace;
        let print_inst = t.instances_of(omislice_lang::StmtId(2))[0];
        assert_eq!(t.event(print_inst).data_deps, vec![InstId(1)]);
    }

    #[test]
    fn data_dependence_through_calls_and_returns() {
        let run = traced(
            "fn id(x) { return x; } fn main() { let a = input(); print(id(a)); }",
            vec![3],
        );
        let t = &run.trace;
        let ret_inst = t.instances_of(omislice_lang::StmtId(0))[0];
        let print_inst = t.instances_of(omislice_lang::StmtId(2))[0];
        assert_eq!(t.event(print_inst).data_deps, vec![ret_inst]);
        assert_eq!(t.event(ret_inst).data_deps, vec![InstId(0)]);
    }

    #[test]
    fn control_dependence_within_function() {
        let run = traced(
            "fn main() { if input() > 0 { print(1); } print(2); }",
            vec![5],
        );
        let t = &run.trace;
        let if_inst = t.instances_of(omislice_lang::StmtId(0))[0];
        let p1 = t.instances_of(omislice_lang::StmtId(1))[0];
        let p2 = t.instances_of(omislice_lang::StmtId(2))[0];
        assert_eq!(t.event(p1).cd_parent, Some(if_inst));
        assert_eq!(t.event(p2).cd_parent, None);
    }

    #[test]
    fn control_dependence_crosses_calls() {
        let run = traced(
            "fn f() { print(9); } fn main() { if input() > 0 { f(); } }",
            vec![1],
        );
        let t = &run.trace;
        let if_inst = t.instances_of(omislice_lang::StmtId(1))[0];
        let print_inst = t.instances_of(omislice_lang::StmtId(0))[0];
        assert_eq!(t.event(print_inst).cd_parent, Some(if_inst));
        assert_eq!(t.event(print_inst).call_depth, 1);
    }

    #[test]
    fn loop_iterations_pick_correct_cd_instance() {
        let run = traced(
            "fn main() { let i = 0; while i < 3 { print(i); i = i + 1; } }",
            vec![],
        );
        let t = &run.trace;
        let whiles = t.instances_of(omislice_lang::StmtId(1));
        let prints = t.instances_of(omislice_lang::StmtId(2));
        assert_eq!(whiles.len(), 4); // 3 true + 1 false
        assert_eq!(prints.len(), 3);
        for (k, &p) in prints.iter().enumerate() {
            assert_eq!(t.event(p).cd_parent, Some(whiles[k]));
        }
    }

    #[test]
    fn while_regions_chain_iterations() {
        let run = traced(
            "fn main() { let i = 0; while i < 2 { i = i + 1; } print(i); }",
            vec![],
        );
        let t = &run.trace;
        let r = RegionTree::build(t);
        let whiles = t.instances_of(omislice_lang::StmtId(1));
        assert_eq!(r.parent(whiles[1]), Some(whiles[0]));
        assert_eq!(r.parent(whiles[2]), Some(whiles[1]));
        assert_eq!(r.parent(whiles[0]), None);
        let print_inst = t.instances_of(omislice_lang::StmtId(3))[0];
        assert_eq!(r.parent(print_inst), None);
        let bodies = t.instances_of(omislice_lang::StmtId(2));
        assert_eq!(r.parent(bodies[0]), Some(whiles[0]));
        assert_eq!(r.parent(bodies[1]), Some(whiles[1]));
    }

    #[test]
    fn callee_regions_nest_under_call_site_guard() {
        let run = traced(
            "fn f() { print(1); } fn main() { if input() > 0 { f(); } print(2); }",
            vec![1],
        );
        let t = &run.trace;
        let r = RegionTree::build(t);
        let if_inst = t.instances_of(omislice_lang::StmtId(1))[0];
        let inner_print = t.instances_of(omislice_lang::StmtId(0))[0];
        assert!(r.in_region(if_inst, inner_print));
    }

    #[test]
    fn switching_takes_the_untaken_branch() {
        let src = "fn main() { if input() > 0 { print(1); } else { print(2); } }";
        let (p, a) = setup(src);
        let base = run_traced(&p, &a, &RunConfig::with_inputs(vec![5]));
        assert_eq!(outs(&base), vec![1]);
        let cfg =
            RunConfig::with_inputs(vec![5]).switched(SwitchSpec::new(omislice_lang::StmtId(0), 0));
        let run = run_traced(&p, &a, &cfg);
        assert_eq!(outs(&run), vec![2]);
        let switched = run.switched.unwrap();
        assert_eq!(run.trace.event(switched).branch, Some(false));
    }

    #[test]
    fn switching_specific_loop_occurrence() {
        let src = "fn main() { let i = 0; while i < 4 { print(i); i = i + 1; } }";
        let (p, a) = setup(src);
        // Statement 1 is the while; switch its third evaluation
        // (occurrence 2): the loop exits after two iterations.
        let cfg = RunConfig::default().switched(SwitchSpec::new(omislice_lang::StmtId(1), 2));
        let run = run_traced(&p, &a, &cfg);
        assert_eq!(outs(&run), vec![0, 1]);
    }

    #[test]
    fn switch_on_unreached_instance_is_noop() {
        let src = "fn main() { if input() > 0 { print(1); } }";
        let (p, a) = setup(src);
        let cfg =
            RunConfig::with_inputs(vec![1]).switched(SwitchSpec::new(omislice_lang::StmtId(0), 5));
        let run = run_traced(&p, &a, &cfg);
        assert!(run.switched.is_none());
        assert_eq!(outs(&run), vec![1]);
    }

    #[test]
    fn switched_prefix_is_identical() {
        let src = "fn main() { let x = input(); if x > 0 { print(1); } print(2); }";
        let (p, a) = setup(src);
        let base = run_traced(&p, &a, &RunConfig::with_inputs(vec![5]));
        let run = run_traced(
            &p,
            &a,
            &RunConfig::with_inputs(vec![5]).switched(SwitchSpec::new(omislice_lang::StmtId(1), 0)),
        );
        let k = run.switched.unwrap().index();
        for i in 0..k {
            assert_eq!(
                base.trace.event(InstId(i as u32)),
                run.trace.event(InstId(i as u32)),
                "prefix diverged at {i}"
            );
        }
    }

    #[test]
    fn plain_and_traced_agree() {
        let cases: &[(&str, Vec<i64>)] = &[
            ("fn main() { print(1 + 2); }", vec![]),
            (
                "fn f(n) { if n < 2 { return n; } return f(n-1) + f(n-2); } fn main() { print(f(12)); }",
                vec![],
            ),
            (
                "global a = [0; 8]; fn main() { let i = 0; while i < 8 { a[i] = input() * 2; i = i + 1; } print(a[3] + a[7]); }",
                vec![1, 2, 3, 4, 5, 6, 7, 8],
            ),
            (
                "fn main() { let i = 0; while true { i = i + 1; if i % 3 == 0 { continue; } if i > 10 { break; } print(i); } }",
                vec![],
            ),
        ];
        for (src, inputs) in cases {
            let (p, a) = setup(src);
            let cfg = RunConfig::with_inputs(inputs.clone());
            let t = run_traced(&p, &a, &cfg);
            let pl = run_plain(&p, &cfg);
            assert_eq!(
                t.trace.output_values(),
                pl.outputs,
                "modes disagree on {src}"
            );
            assert_eq!(t.trace.termination().is_normal(), pl.is_normal());
        }
    }

    #[test]
    fn plain_and_traced_agree_under_switching() {
        let src = "fn main() { let x = input(); if x > 3 { print(1); } else { print(2); } if x > 1 { print(3); } }";
        let (p, a) = setup(src);
        for (pred, occurrence) in [(1u32, 0u32), (4, 0)] {
            let cfg = RunConfig::with_inputs(vec![5])
                .switched(SwitchSpec::new(omislice_lang::StmtId(pred), occurrence));
            let t = run_traced(&p, &a, &cfg);
            let pl = run_plain(&p, &cfg);
            assert_eq!(t.trace.output_values(), pl.outputs);
        }
    }

    #[test]
    fn deterministic_replay() {
        let src = "fn main() { let i = 0; while i < 10 { print(i * input()); i = i + 1; } }";
        let (p, a) = setup(src);
        let cfg = RunConfig::with_inputs(vec![3, 1, 4, 1, 5, 9, 2, 6]);
        let r1 = run_traced(&p, &a, &cfg);
        let r2 = run_traced(&p, &a, &cfg);
        assert_eq!(r1.trace.events_vec(), r2.trace.events_vec());
        assert_eq!(r1.trace.output_values(), r2.trace.output_values());
    }

    #[test]
    fn predicate_events_record_outcome_value() {
        let run = traced("fn main() { if 1 > 2 { print(1); } }", vec![]);
        let e = run.trace.event(InstId(0));
        assert_eq!(e.branch, Some(false));
        assert_eq!(e.value, Some(Value::Bool(false)));
        assert!(e.is_predicate());
    }

    #[test]
    fn store_events_record_cell_index() {
        let run = traced("global a = [0; 4]; fn main() { a[2] = 9; }", vec![]);
        let e = run.trace.event(InstId(0));
        assert_eq!(e.cell_index, Some(2));
        assert_eq!(e.value, Some(Value::Int(9)));
    }

    #[test]
    fn non_short_circuit_evaluation() {
        // `&&` evaluates both sides: the division by zero on the right
        // fires even though the left side is false.
        let run = traced(
            "fn main() { if false && (1 / 0 > 0) { print(1); } }",
            vec![],
        );
        assert!(matches!(
            run.trace.termination(),
            Termination::RuntimeError(..)
        ));
    }

    #[test]
    fn value_override_replaces_the_computed_value() {
        let src = "fn main() { let a = input(); if a > 10 { print(1); } print(a); }";
        let (p, an) = setup(src);
        let base = RunConfig::with_inputs(vec![5]);
        let run = run_traced(&p, &an, &base);
        assert_eq!(outs(&run), vec![5]);
        // Override `let a = input()` (occurrence 0) to 25.
        let cfg = base.overridden(OverrideSpec::new(
            omislice_lang::StmtId(0),
            0,
            Value::Int(25),
        ));
        let run = run_traced(&p, &an, &cfg);
        assert_eq!(outs(&run), vec![1, 25], "the guard now fires");
        let inst = run.overridden.expect("override landed");
        assert_eq!(run.trace.event(inst).value, Some(Value::Int(25)));
        // Plain mode agrees.
        let plain = run_plain(&p, &cfg);
        assert_eq!(plain.outputs, run.trace.output_values());
    }

    #[test]
    fn value_override_targets_a_specific_occurrence() {
        let src = "fn main() { let i = 0; while i < 3 { let v = i * 10; print(v); i = i + 1; } }";
        let (p, an) = setup(src);
        // Override the second evaluation of `let v = i * 10`.
        let cfg = RunConfig::default().overridden(OverrideSpec::new(
            omislice_lang::StmtId(2),
            1,
            Value::Int(999),
        ));
        let run = run_traced(&p, &an, &cfg);
        assert_eq!(outs(&run), vec![0, 999, 20]);
    }

    #[test]
    fn unreached_override_is_noop() {
        let src = "fn main() { if false { let a = 1; } print(7); }";
        let (p, an) = setup(src);
        let cfg = RunConfig::default().overridden(OverrideSpec::new(
            omislice_lang::StmtId(1),
            0,
            Value::Int(0),
        ));
        let run = run_traced(&p, &an, &cfg);
        assert!(run.overridden.is_none());
        assert_eq!(outs(&run), vec![7]);
    }

    #[test]
    fn override_prefix_is_identical() {
        let src = "fn main() { let a = input(); let b = a + 1; print(b); }";
        let (p, an) = setup(src);
        let base = RunConfig::with_inputs(vec![3]);
        let orig = run_traced(&p, &an, &base);
        let cfg = base.overridden(OverrideSpec::new(
            omislice_lang::StmtId(1),
            0,
            Value::Int(100),
        ));
        let run = run_traced(&p, &an, &cfg);
        let k = run.overridden.unwrap().index();
        for i in 0..k {
            assert_eq!(
                orig.trace.event(InstId(i as u32)),
                run.trace.event(InstId(i as u32))
            );
        }
        assert_eq!(outs(&run), vec![100]);
    }

    #[test]
    fn truthy_integer_predicate() {
        let run = traced(
            "fn main() { if 5 { print(1); } if 0 { print(2); } }",
            vec![],
        );
        assert_eq!(outs(&run), vec![1]);
    }

    #[test]
    fn input_underflows_are_counted() {
        let run = traced(
            "fn main() { print(input()); print(input()); print(input()); }",
            vec![7],
        );
        assert_eq!(outs(&run), vec![7, 0, 0]);
        assert_eq!(run.input_underflows, 2);
        let p = compile("fn main() { print(input()); print(input()); }").unwrap();
        let pl = run_plain(&p, &RunConfig::with_inputs(vec![1]));
        assert_eq!(pl.input_underflows, 1);
    }

    #[test]
    fn fault_plan_parse_roundtrip() {
        assert_eq!(
            FaultPlan::parse("S4:2=panic"),
            Ok(FaultPlan::new(StmtId(4), 2, FaultAction::Panic))
        );
        assert_eq!(
            FaultPlan::parse("S0=oob"),
            Ok(FaultPlan::new(
                StmtId(0),
                0,
                FaultAction::Crash(CrashKind::OobIndex)
            ))
        );
        assert_eq!(
            FaultPlan::parse("S7=corrupt-checkpoint"),
            Ok(FaultPlan::new(StmtId(7), 0, FaultAction::CorruptCheckpoint))
        );
        assert!(FaultPlan::parse("S1").is_err());
        assert!(FaultPlan::parse("S1=warp").is_err());
        assert!(FaultPlan::parse("Sx=oob").is_err());
        assert!(FaultPlan::parse("S1:y=oob").is_err());
    }

    #[test]
    fn budget_schedule_rungs_end_at_cap() {
        let s = BudgetSchedule {
            initial: 10,
            factor: 10,
            attempts: 3,
        };
        assert_eq!(s.budgets(5_000), vec![10, 100, 5_000]);
        assert_eq!(s.budgets(50), vec![10, 50]);
        assert_eq!(s.budgets(5), vec![5]);
        assert_eq!(BudgetSchedule::disabled().budgets(7_777), vec![7_777]);
        // Degenerate parameters are clamped, never loop forever.
        let degenerate = BudgetSchedule {
            initial: 0,
            factor: 0,
            attempts: 0,
        };
        assert_eq!(degenerate.budgets(9), vec![9]);
    }

    #[test]
    fn injected_crash_matches_both_interpreters() {
        let src = "fn main() { let i = 0; while i < 5 { print(i); i = i + 1; } }";
        let (p, a) = setup(src);
        // S2 is `print(i)`; crash at its second instance.
        let cfg = RunConfig {
            fault: Some(FaultPlan::parse("S2:1=div-zero").unwrap()),
            ..RunConfig::default()
        };
        let t = run_traced(&p, &a, &cfg);
        assert_eq!(outs(&t), vec![0]);
        let Termination::RuntimeError(kind, msg) = t.trace.termination() else {
            panic!("expected a crash, got {:?}", t.trace.termination());
        };
        assert_eq!(*kind, CrashKind::DivByZero);
        assert!(msg.contains("injected"), "{msg}");
        assert!(msg.contains("in S2"), "{msg}");
        let pl = run_plain(&p, &cfg);
        assert_eq!(pl.outputs, t.trace.output_values());
        assert_eq!(pl.termination, *t.trace.termination());
    }

    #[test]
    fn injected_budget_exhaustion_stops_the_run() {
        let src = "fn main() { print(1); print(2); }";
        let (p, a) = setup(src);
        let cfg = RunConfig {
            fault: Some(FaultPlan::parse("S1=budget").unwrap()),
            ..RunConfig::default()
        };
        let t = run_traced(&p, &a, &cfg);
        assert_eq!(*t.trace.termination(), Termination::BudgetExhausted);
        assert_eq!(t.trace.output_values(), vec![Value::Int(1)]);
        let pl = run_plain(&p, &cfg);
        assert_eq!(pl.termination, Termination::BudgetExhausted);
        assert_eq!(pl.outputs, t.trace.output_values());
    }

    #[test]
    fn injected_panic_fires_at_the_chosen_instance() {
        let src = "fn main() { print(1); print(2); }";
        let (p, a) = setup(src);
        let cfg = RunConfig {
            fault: Some(FaultPlan::parse("S1=panic").unwrap()),
            ..RunConfig::default()
        };
        let err =
            std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| run_traced(&p, &a, &cfg)))
                .expect_err("the injected panic must escape the interpreter");
        let msg = err.downcast_ref::<String>().cloned().unwrap_or_default();
        assert!(msg.contains("injected panic"), "{msg}");
    }

    #[test]
    fn unreached_fault_plan_is_noop() {
        let src = "fn main() { print(1); }";
        let (p, a) = setup(src);
        let cfg = RunConfig {
            fault: Some(FaultPlan::parse("S0:5=oob").unwrap()),
            ..RunConfig::default()
        };
        let t = run_traced(&p, &a, &cfg);
        assert!(t.trace.termination().is_normal());
        assert_eq!(t.trace.output_values(), vec![Value::Int(1)]);
    }
}
